(* FNV-1a 64-bit: endian-free, dependency-free, and one multiply per
   byte — integrity against truncation and bit rot, not an adversary. *)
let checksum text =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

let corrupt contents =
  let contents =
    if Fault.fire Fault.Io_truncate then
      String.sub contents 0 (String.length contents / 2)
    else contents
  in
  if Fault.fire Fault.Io_garble && String.length contents > 0 then begin
    let bytes = Bytes.of_string contents in
    let i = Bytes.length bytes / 2 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x20));
    Bytes.to_string bytes
  end
  else contents

let write_file path contents =
  let contents = corrupt contents in
  let temporary = path ^ ".tmp" in
  let oc = open_out temporary in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename temporary path

let jsonl_trailer body =
  Printf.sprintf "{\"checksum\":\"%s\"}\n" (checksum body)

(* both trailer forms sit on the last non-empty line; the body handed
   back must be byte-exact (including its final newline) because it is
   the checksummed text *)
let split_last_line text =
  let stop = ref (String.length text) in
  while !stop > 0 && text.[!stop - 1] = '\n' do
    decr stop
  done;
  if !stop = 0 then None
  else
    match String.rindex_from_opt text (!stop - 1) '\n' with
    | None -> None
    | Some i -> Some (String.sub text 0 (i + 1), String.sub text (i + 1) (!stop - i - 1))

let strip_prefix ~prefix line =
  let n = String.length prefix in
  if String.length line > n && String.sub line 0 n = prefix then
    Some (String.sub line n (String.length line - n))
  else None

let split_jsonl_trailer text =
  match split_last_line text with
  | Some (body, line) -> (
    match strip_prefix ~prefix:"{\"checksum\":\"" line with
    | Some rest when String.length rest >= 18 && String.sub rest 16 2 = "\"}"
      ->
      (body, Some (String.sub rest 0 16))
    | _ -> (text, None))
  | None -> (text, None)

let split_text_trailer text =
  match split_last_line text with
  | Some (body, line) -> (
    match strip_prefix ~prefix:"checksum " line with
    | Some hex when String.length hex = 16 -> (body, Some hex)
    | _ -> (text, None))
  | None -> (text, None)
