type run = {
  version : int;
  meta : (string * string) list;
  events : Trace.event list;
  dropped : int;
}

let field json key ~default =
  match Json.member json key with
  | Some (Json.Num v) -> int_of_float v
  | _ -> default

let parse_event json =
  let kind =
    match Json.member json "kind" with
    | Some (Json.Str s) -> (
      match Trace_export.kind_of_string s with
      | Some k -> k
      | None -> failwith (Printf.sprintf "trace: unknown event kind %S" s))
    | _ -> failwith "trace: event line is missing \"kind\""
  in
  let num key =
    match Json.member json key with Some (Json.Num v) -> v | _ -> 0.
  in
  let detail =
    match Json.member json "detail" with Some (Json.Str s) -> s | _ -> ""
  in
  {
    Trace.kind;
    t = num "t";
    dur = num "dur";
    gate_index = field json "gate" ~default:(-1);
    state_nodes = field json "state_nodes" ~default:(-1);
    matrix_nodes = field json "matrix_nodes" ~default:(-1);
    hits = field json "hits" ~default:0;
    misses = field json "misses" ~default:0;
    domain = field json "domain" ~default:0;
    detail;
  }

(* every parse failure names the 1-based line it came from, so a
   truncated or hand-edited trace is diagnosable without a hex dump *)
let located line_number message =
  failwith (Printf.sprintf "trace:%d: %s" line_number message)

let strip_prefix message =
  (* parse_event messages already start with "trace: "; drop it before
     re-wrapping with the line number *)
  let prefix = "trace: " in
  let n = String.length prefix in
  if String.length message >= n && String.sub message 0 n = prefix then
    String.sub message n (String.length message - n)
  else message

let parse_jsonl text =
  (* newer writers append a checksum trailer line; verify it when present
     (older files without one still parse) *)
  let body, trailer = Safe_io.split_jsonl_trailer text in
  (match trailer with
  | Some expected when Safe_io.checksum body <> expected ->
    failwith "trace: checksum mismatch (file truncated or corrupted)"
  | _ -> ());
  let lines =
    String.split_on_char '\n' body
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  match lines with
  | [] -> failwith "trace: empty file"
  | (header_line, header_text) :: rest ->
    let header =
      try Json.parse header_text
      with Failure message -> located header_line message
    in
    (match Json.member header "schema" with
    | Some (Json.Str s) when s = Trace_export.schema -> ()
    | Some (Json.Str s) ->
      located header_line (Printf.sprintf "unexpected schema %S" s)
    | _ -> located header_line "header line is missing \"schema\"");
    let version =
      match Json.member header "version" with
      | Some (Json.Num v) -> int_of_float v
      | _ -> located header_line "header line is missing \"version\""
    in
    (* v1 (single-lane, no [domain] field) still parses: every v2
       addition is optional-with-default at the event level *)
    if version < 1 || version > Trace_export.version then
      located header_line
        (Printf.sprintf "unsupported schema version %d (expected 1..%d)"
           version Trace_export.version);
    let meta =
      match Json.member header "meta" with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with Json.Str s -> Some (k, s) | _ -> None)
          fields
      | _ -> []
    in
    let dropped = field header "dropped" ~default:0 in
    let events =
      List.map
        (fun (line_number, line) ->
          match parse_event (Json.parse line) with
          | event -> event
          | exception Failure message ->
            located line_number (strip_prefix message))
        rest
    in
    { version; meta; events; dropped }

let trajectory run =
  let by_gate = Hashtbl.create 256 in
  List.iter
    (fun (e : Trace.event) ->
      if e.gate_index >= 0 && e.state_nodes >= 0 then
        Hashtbl.replace by_gate e.gate_index e.state_nodes)
    run.events;
  Hashtbl.fold (fun g n acc -> (g, n) :: acc) by_gate []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let peak_state_nodes run =
  List.fold_left
    (fun best (g, n) ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ -> Some (g, n))
    None (trajectory run)

type phase = {
  kind : Trace.kind;
  count : int;
  total_seconds : float;
  mean_seconds : float;
  max_seconds : float;
}

let kind_order = function
  | Trace.Gate_applied -> 0
  | Trace.Window_combined -> 1
  | Trace.Mat_vec -> 2
  | Trace.Mat_mat -> 3
  | Trace.Gc -> 4
  | Trace.Fallback -> 5
  | Trace.Renormalize -> 6
  | Trace.Checkpoint -> 7
  | Trace.Measure -> 8
  | Trace.Audit -> 9
  | Trace.Reorder -> 10
  | Trace.Pool_section -> 11

let phases_of_events events =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun (e : Trace.event) ->
      let count, total, max_d =
        match Hashtbl.find_opt acc e.kind with
        | Some v -> v
        | None -> (0, 0., 0.)
      in
      Hashtbl.replace acc e.kind
        (count + 1, total +. e.dur, Float.max max_d e.dur))
    events;
  Hashtbl.fold
    (fun kind (count, total, max_d) out ->
      {
        kind;
        count;
        total_seconds = total;
        mean_seconds = total /. float_of_int count;
        max_seconds = max_d;
      }
      :: out)
    acc []
  |> List.sort (fun a b -> compare (kind_order a.kind) (kind_order b.kind))

let phases run = phases_of_events run.events

(* -- concurrency view -------------------------------------------------- *)

let lane_phases run =
  let domains =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.domain) run.events)
  in
  List.map
    (fun d ->
      ( d,
        phases_of_events
          (List.filter (fun (e : Trace.event) -> e.domain = d) run.events) ))
    domains

(* Amdahl view: wall time inside pool sections vs. the traced total.
   [None] when the trace has no [pool_section] spans (sequential run or
   pre-v2 writer). *)
let serial_fraction run =
  let pool, span_end =
    List.fold_left
      (fun (pool, span_end) (e : Trace.event) ->
        ( (if e.kind = Trace.Pool_section then pool +. e.dur else pool),
          Float.max span_end (e.t +. e.dur) ))
      (0., 0.) run.events
  in
  if
    span_end <= 0.
    || not
         (List.exists
            (fun (e : Trace.event) -> e.kind = Trace.Pool_section)
            run.events)
  then None
  else Some (Float.max 0. (span_end -. pool) /. span_end)

(* terminal-friendly plot: 12 rows of '#' columns over <= 72 buckets *)
let plot_width = 72
let plot_height = 12

let render_plot points =
  match points with
  | [] -> "  (no node-count samples in trace)\n"
  | points ->
    let n = List.length points in
    let values = Array.of_list (List.map snd points) in
    let gates = Array.of_list (List.map fst points) in
    let width = min plot_width n in
    (* bucket consecutive samples; each column shows its bucket maximum so
       downsampling can never hide the peak *)
    let column = Array.make width 0 in
    Array.iteri
      (fun i v ->
        let c = i * width / n in
        if v > column.(c) then column.(c) <- v)
      values;
    let peak = Array.fold_left max 1 column in
    let buffer = Buffer.create 1024 in
    for row = plot_height downto 1 do
      let threshold =
        float_of_int peak *. float_of_int row /. float_of_int plot_height
      in
      let label =
        if row = plot_height then Printf.sprintf "%8d |" peak
        else if row = 1 then Printf.sprintf "%8d |" 0
        else "         |"
      in
      Buffer.add_string buffer label;
      for c = 0 to width - 1 do
        Buffer.add_char buffer
          (if float_of_int column.(c) >= threshold then '#' else ' ')
      done;
      Buffer.add_char buffer '\n'
    done;
    Buffer.add_string buffer ("         +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buffer
      (Printf.sprintf "          gate %d .. %d (%d samples)\n" gates.(0)
         gates.(n - 1) n);
    Buffer.contents buffer

let render run =
  let buffer = Buffer.create 2048 in
  Buffer.add_string buffer
    (Printf.sprintf "trace report (schema %s v%d)\n" Trace_export.schema
       run.version);
  if run.meta <> [] then begin
    Buffer.add_string buffer "meta:\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buffer (Printf.sprintf "  %-12s %s\n" k v))
      run.meta
  end;
  Buffer.add_string buffer
    (Printf.sprintf "events: %d (%d dropped at capture time)\n"
       (List.length run.events) run.dropped);
  if run.events = [] then begin
    (* header-only trace: a breakdown of zero phases and an empty plot
       would only obscure the one fact that matters *)
    Buffer.add_string buffer
      "no events recorded — the run emitted nothing into this trace\n";
    Buffer.contents buffer
  end
  else begin
  let phase_table ps =
    Buffer.add_string buffer
      (Printf.sprintf "\n%-16s %8s %12s %12s %12s\n" "phase" "count"
         "total(ms)" "mean(us)" "max(us)");
    List.iter
      (fun p ->
        Buffer.add_string buffer
          (Printf.sprintf "%-16s %8d %12.3f %12.2f %12.2f\n"
             (Trace_export.kind_to_string p.kind)
             p.count
             (p.total_seconds *. 1e3)
             (p.mean_seconds *. 1e6)
             (p.max_seconds *. 1e6)))
      ps
  in
  let ps = phases run in
  if ps <> [] then phase_table ps;
  (* concurrency view: rendered only when the trace actually carries
     parallel data, so v1 single-lane reports stay byte-identical *)
  let multi_lane =
    List.exists (fun (e : Trace.event) -> e.domain > 0) run.events
  in
  if multi_lane then begin
    List.iter
      (fun (d, lane_ps) ->
        Buffer.add_string buffer
          (Printf.sprintf "\nlane %d%s:" d
             (if d = 0 then " (caller)" else ""));
        phase_table lane_ps)
      (lane_phases run)
  end;
  (match serial_fraction run with
  | Some f ->
    Buffer.add_string buffer
      (Printf.sprintf
         "\nestimated serial fraction: %.1f%% (pool sections cover %.1f%% \
          of the traced span)\n"
         (f *. 100.)
         ((1. -. f) *. 100.))
  | None -> ());
  let points = trajectory run in
  Buffer.add_string buffer "\nstate-DD node-count trajectory:\n";
  Buffer.add_string buffer (render_plot points);
  (match peak_state_nodes run with
  | Some (gate, nodes) ->
    Buffer.add_string buffer
      (Printf.sprintf "peak state nodes: %d at gate %d\n" nodes gate)
  | None -> ());
  Buffer.contents buffer
  end
