type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---- parsing: plain recursive descent over a cursor ---- *)

type cursor = { text : string; mutable pos : int }

let fail c message =
  failwith (Printf.sprintf "JSON parse error at offset %d: %s" c.pos message)

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> fail c (Printf.sprintf "expected %c, got %c" ch got)
  | None -> fail c (Printf.sprintf "expected %c, got end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* \uXXXX escapes are decoded to UTF-8; surrogate pairs are not needed for
   anything this repository writes and decode as two replacement chars *)
let utf8_of_code buffer code =
  if code < 0x80 then Buffer.add_char buffer (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buffer (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buffer (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buffer (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buffer (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buffer = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buffer '"'; advance c
      | Some '\\' -> Buffer.add_char buffer '\\'; advance c
      | Some '/' -> Buffer.add_char buffer '/'; advance c
      | Some 'b' -> Buffer.add_char buffer '\b'; advance c
      | Some 'f' -> Buffer.add_char buffer '\012'; advance c
      | Some 'n' -> Buffer.add_char buffer '\n'; advance c
      | Some 'r' -> Buffer.add_char buffer '\r'; advance c
      | Some 't' -> Buffer.add_char buffer '\t'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
        let hex = String.sub c.text c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code -> utf8_of_code buffer code
        | None -> fail c "malformed \\u escape");
        c.pos <- c.pos + 4
      | _ -> fail c "unknown escape");
      loop ()
    | Some ch ->
      Buffer.add_char buffer ch;
      advance c;
      loop ()
  in
  loop ();
  Buffer.contents buffer

let parse_number c =
  let start = c.pos in
  let continue = ref true in
  while !continue do
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') -> advance c
    | _ -> continue := false
  done;
  let raw = String.sub c.text start (c.pos - start) in
  match float_of_string_opt raw with
  | Some v -> v
  | None -> fail c (Printf.sprintf "malformed number %S" raw)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws c;
        let key = parse_string c in
        skip_ws c;
        expect c ':';
        let value = parse_value c in
        fields := (key, value) :: !fields;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; loop ()
        | Some '}' -> advance c
        | _ -> fail c "expected , or } in object"
      in
      loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      Arr []
    end
    else begin
      let items = ref [] in
      let rec loop () =
        let value = parse_value c in
        items := value :: !items;
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; loop ()
        | Some ']' -> advance c
        | _ -> fail c "expected , or ] in array"
      in
      loop ();
      Arr (List.rev !items)
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> Num (parse_number c)

let parse text =
  let c = { text; pos = 0 } in
  let value = parse_value c in
  skip_ws c;
  if c.pos <> String.length text then fail c "trailing garbage";
  value

let member json key =
  match json with Obj fields -> List.assoc_opt key fields | _ -> None

let to_num = function
  | Num v -> v
  | _ -> failwith "JSON: expected a number"

let to_int json = int_of_float (to_num json)

let to_str = function
  | Str s -> s
  | _ -> failwith "JSON: expected a string"

let to_list = function
  | Arr items -> items
  | _ -> failwith "JSON: expected an array"

let escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\r' -> Buffer.add_string buffer "\\r"
      | '\t' -> Buffer.add_string buffer "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buffer ch)
    s;
  Buffer.contents buffer
