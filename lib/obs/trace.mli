(** Per-operation event timeline of a simulation run.

    The paper's argument (Section III, Figs. 2-3) is about how DD sizes
    evolve *over the course* of a simulation; end-of-run aggregates cannot
    show that.  A trace records one typed event per interesting operation
    — gate applications, matrix-vector and matrix-matrix multiplications,
    combination-window flushes, garbage collections, fallbacks,
    renormalizations, checkpoints and measurements — each stamped with a
    monotonic timestamp ({!Clock}), the current gate index, DD node
    counts, and the compute-table hit/miss traffic the operation caused.

    Tracing is disabled by default and must cost nothing when off: the
    shared {!null} trace answers [false] to {!is_on}, and every
    instrumentation site is expected to check [is_on] before computing any
    event argument, so the disabled path is a single load-and-branch with
    zero allocation (the test suite asserts this).

    Events are appended to a growable buffer bounded by [max_events];
    events beyond the bound are counted in {!dropped} rather than grown
    into (a run-away trace must not OOM the simulation it observes). *)

type kind =
  | Gate_applied  (** one circuit gate absorbed (instant, per gate) *)
  | Window_combined
      (** a combination window of >= 2 gates flushed onto the state *)
  | Mat_vec  (** one matrix-vector multiplication (span) *)
  | Mat_mat  (** one matrix-matrix multiplication (span) *)
  | Gc  (** one {!Dd.Context.collect} (span) *)
  | Fallback  (** an over-budget window degraded to sequential *)
  | Renormalize  (** norm-drift correction applied *)
  | Checkpoint  (** a resumable checkpoint was written *)
  | Measure  (** a qubit was measured and the state collapsed *)
  | Audit  (** one invariant-auditor pass over the live DDs (span) *)
  | Reorder  (** one variable-reordering (sifting) pass on the state DD (span) *)
  | Pool_section
      (** one domain-pool parallel section (span): a window tree-reduction
          or a sampling batch.  Total wall time minus the sum of these
          spans is the run's serial fraction (Amdahl view). *)

type event = {
  kind : kind;
  t : float;  (** seconds since the trace epoch; span start time *)
  dur : float;  (** span duration in seconds; [0.] for instants *)
  gate_index : int;  (** flattened gate index; [-1] when not applicable *)
  state_nodes : int;  (** state-DD nodes after the event; [-1] unknown *)
  matrix_nodes : int;  (** matrix-DD nodes involved; [-1] unknown *)
  hits : int;  (** compute-table hits the operation scored *)
  misses : int;  (** compute-table misses the operation scored *)
  domain : int;
      (** pool member that emitted the event: [0] is the caller domain
          (and every event of a sequential run), workers are [1..crew-1] *)
  detail : string;  (** free-form: gate name, window size, ... *)
}

type t

val null : t
(** The shared disabled trace: {!is_on} is [false], emissions are
    dropped-without-counting, {!set_enabled} on it is a no-op.  Engines
    and contexts hold [null] until a real trace is attached. *)

val create : ?max_events:int -> unit -> t
(** A fresh enabled trace whose epoch is [Clock.now ()] at creation.
    [max_events] (default [2^20]) bounds the buffer; excess events are
    counted in {!dropped}. *)

val is_on : t -> bool
val set_enabled : t -> bool -> unit

val now : t -> float
(** Seconds since the trace epoch (monotone). *)

val rel : t -> float -> float
(** [rel t abs] converts an absolute {!Clock.now} reading to trace time. *)

val set_gate : t -> int -> unit
(** Record the engine's current gate cursor; events emitted from layers
    that do not know the gate index (the DD kernels) stamp this value. *)

val gate : t -> int

val instant :
  t ->
  kind ->
  gate:int ->
  state_nodes:int ->
  matrix_nodes:int ->
  detail:string ->
  unit
(** Append a zero-duration event stamped [now t].  First action is the
    {!is_on} check, and no argument requires allocation, so a disabled
    call allocates nothing. *)

val span :
  t ->
  kind ->
  t0:float ->
  gate:int ->
  state_nodes:int ->
  matrix_nodes:int ->
  hits:int ->
  misses:int ->
  detail:string ->
  unit
(** Append an event covering [t0 .. now t] (trace time).  Emitted at span
    end, so buffer order is completion order and end times are monotone. *)

val length : t -> int
val dropped : t -> int
val events : t -> event array
(** Snapshot copy of the recorded events, in emission order. *)

val iter : (event -> unit) -> t -> unit
val clear : t -> unit
(** Drop recorded events and the dropped count; the epoch is kept. *)

(** {2 Per-domain lanes}

    A pool section must not append to the shared buffer from several
    domains at once.  [arm_lanes t crew] gives each pool member
    ([0..crew-1], index [0] being the caller) a private lane sharing the
    parent's epoch; tasks fetch theirs with [lane] and emit normally.
    [merge_lanes] folds every lane back into the main buffer in end-time
    order, stamping each event's [domain], and disarms.  Arming a
    disabled trace (or [null]) is a no-op: [lane] then returns [t]
    itself and emissions stay free. *)

val arm_lanes : t -> int -> unit
(** [arm_lanes t crew] — allocate [crew] private lanes ([crew <= 1],
    a disabled [t], or a lane itself: no-op). *)

val lanes_armed : t -> bool

val lane : t -> int -> t
(** [lane t i] — the lane for pool member [i]; [t] itself when unarmed
    or [i] is out of range. *)

val merge_lanes : t -> unit
(** Merge all lane events into [t] (end-time order, lane drop counts
    folded into {!dropped}) and disarm.  Call only at quiescence. *)
