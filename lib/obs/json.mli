(** Minimal JSON reader/writer for the trace exporters and [ddsim report].

    Deliberately tiny: the repository bakes no JSON dependency, and the
    only documents parsed are the ones this repository writes (stable,
    machine-generated).  The parser nevertheless accepts any well-formed
    JSON value — objects, arrays, strings with escapes, numbers, booleans,
    null — so hand-edited traces keep working. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> t
(** Raises [Failure] with a position-carrying message on malformed input
    or trailing garbage. *)

val member : t -> string -> t option
(** Field lookup on an [Obj]; [None] on missing field or non-object. *)

val to_num : t -> float
(** Raises [Failure] when the value is not a [Num]. *)

val to_int : t -> int
val to_str : t -> string
val to_list : t -> t list

val escape : string -> string
(** JSON string-literal escaping (without the surrounding quotes). *)
