(** Serializers for a recorded {!Trace}.

    Two machine formats plus a human summary:

    - {!jsonl}: one JSON object per line.  The first line is a header
      carrying [schema]/[version] (see {!schema} and {!version}) plus
      run metadata; each following line is one event.  This is the
      stable interchange format — {!Trace_report} and [ddsim report]
      consume it, and the [version] field is how future schema changes
      stay detectable.
    - {!chrome}: a Chrome trace-event JSON document (one object with a
      [traceEvents] array) loadable in Perfetto / [chrome://tracing].
      Spans become "X" complete events, instants become "i" events;
      timestamps are microseconds as the format requires.
    - {!summary}: per-kind counts and total/mean durations for a quick
      terminal read. *)

val schema : string
(** ["ddsim-trace"]. *)

val version : int
(** Current JSONL schema version (2).  v2 adds the optional per-event
    [domain] field (per-domain trace lanes) and the [pool_section] kind;
    single-lane traces still serialise byte-identically to v1 events,
    and {!Trace_report.parse_jsonl} accepts both versions. *)

val kind_to_string : Trace.kind -> string
val kind_of_string : string -> Trace.kind option

val jsonl : ?meta:(string * string) list -> Trace.t -> string
(** [meta] lands in the header line under ["meta"] (e.g. algorithm,
    qubit count, strategy). *)

val chrome : ?meta:(string * string) list -> Trace.t -> string

val summary : Trace.t -> string

val write_file : string -> string -> unit
(** [write_file path contents] — plain [Out_channel] convenience. *)
