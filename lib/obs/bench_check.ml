type tolerances = {
  time_ratio : float;
  count_ratio : float;
  rate_tol : float;
}

let default = { time_ratio = 10.; count_ratio = 0.1; rate_tol = 0.15 }

type severity = Regression | Note

type finding = { severity : severity; path : string; message : string }

(* -- metric classification ------------------------------------------- *)

type metric_class = Time | Rate | Count | Informational

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub text i m = sub || loop (i + 1)) in
  loop 0

let ends_with text suffix =
  let n = String.length text and m = String.length suffix in
  n >= m && String.sub text (n - m) m = suffix

let starts_with text prefix =
  let n = String.length text and m = String.length prefix in
  n >= m && String.sub text 0 m = prefix

(* The informational check must come first: contention and utilization
   metrics are scheduling-dependent (a "pool_busy_seconds" leaf would
   otherwise classify as Time and gate on a 10x ratio that an unloaded
   CI runner trips freely). *)
let classify name =
  if starts_with name "pool_" || starts_with name "lock_" then Informational
  else if
    (* ledger-derived timing columns (attributed seconds, wall-clock
       coverage) are as scheduling-dependent as the pool family; the
       deterministic ledger columns (windows, fallbacks) stay Count *)
    starts_with name "ledger_"
    && (contains_sub name "seconds" || contains_sub name "coverage")
  then Informational
  else if contains_sub name "seconds" || contains_sub name "time" then Time
  else if ends_with name "_rate" then Rate
  else Count

(* -- identity-keyed array pairing ------------------------------------ *)

let identity_keys =
  [ "name"; "benchmark"; "circuit"; "mode"; "strategy"; "reorder"; "domains" ]

(* "reorder" and "domains" joined the identity after baselines without
   the fields were already committed; a missing key means "off" / "1".
   The default value is dropped from the identity string, so an explicit
   reorder:"off" or domains:"1" candidate still pairs with an older
   baseline, while any other value forms a distinct run. *)
let identity_part key value =
  match key with
  | "reorder" when value = "off" -> None
  | "domains" when value = "1" -> None
  | _ -> Some value

let identity_of = function
  | Json.Obj _ as obj ->
    let parts =
      List.filter_map
        (fun key ->
          match Json.member obj key with
          | Some (Json.Str s) -> identity_part key s
          | _ -> None)
        identity_keys
    in
    if parts = [] then None else Some (String.concat "/" parts)
  | _ -> None

(* -- the walk -------------------------------------------------------- *)

let compare_docs ?(tol = default) ~baseline candidate =
  let findings = ref [] in
  let push severity path message =
    findings := { severity; path; message } :: !findings
  in
  let leaf_name path =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let compare_numbers path base value =
    match classify (leaf_name path) with
    | Time ->
      (* only slower is a regression; a small absolute floor keeps
         microsecond-scale smoke timings from tripping the ratio *)
      if value > (base *. tol.time_ratio) +. 0.1 then
        push Regression path
          (Printf.sprintf "time regressed: %.6f -> %.6f (> %.1fx budget)"
             base value tol.time_ratio)
    | Rate ->
      if Float.abs (value -. base) > tol.rate_tol then
        push Regression path
          (Printf.sprintf "rate moved: %.6f -> %.6f (tolerance %.3f)" base
             value tol.rate_tol)
    | Count ->
      let budget = tol.count_ratio *. Float.max (Float.abs base) 1. in
      if Float.abs (value -. base) > budget then
        push Regression path
          (Printf.sprintf "count moved: %g -> %g (tolerance %.0f%% of %g)"
             base value (tol.count_ratio *. 100.) base)
    | Informational ->
      (* nondeterministic by nature: never gated, never even noted *)
      ()
  in
  let rec walk path baseline candidate =
    match (baseline, candidate) with
    | Json.Obj base_fields, Json.Obj _ ->
      List.iter
        (fun (key, base_value) ->
          let child = path ^ "." ^ key in
          match Json.member candidate key with
          | None -> push Regression child "metric missing from candidate"
          | Some candidate_value -> walk child base_value candidate_value)
        base_fields;
      (match candidate with
      | Json.Obj candidate_fields ->
        List.iter
          (fun (key, _) ->
            if Json.member baseline key = None then
              push Note (path ^ "." ^ key) "new metric (not in baseline)")
          candidate_fields
      | _ -> ())
    | Json.Num base, Json.Num value -> compare_numbers path base value
    | Json.Str base, Json.Str value ->
      if base <> value then
        push Regression path
          (Printf.sprintf "value changed: %S -> %S" base value)
    | Json.Bool base, Json.Bool value ->
      if base <> value then
        push Regression path
          (Printf.sprintf "value changed: %b -> %b" base value)
    | Json.Null, Json.Null -> ()
    | Json.Arr base_items, Json.Arr candidate_items ->
      if List.for_all (fun item -> identity_of item <> None) base_items
         && base_items <> []
      then begin
        List.iter
          (fun base_item ->
            match identity_of base_item with
            | None -> ()
            | Some id -> (
              let child = Printf.sprintf "%s[%s]" path id in
              match
                List.find_opt
                  (fun candidate_item ->
                    identity_of candidate_item = Some id)
                  candidate_items
              with
              | None -> push Regression child "run missing from candidate"
              | Some candidate_item -> walk child base_item candidate_item))
          base_items;
        List.iter
          (fun candidate_item ->
            match identity_of candidate_item with
            | Some id
              when not
                     (List.exists
                        (fun base_item -> identity_of base_item = Some id)
                        base_items) ->
              push Note
                (Printf.sprintf "%s[%s]" path id)
                "new run (not in baseline)"
            | _ -> ())
          candidate_items
      end
      (* arrays without identity (trajectories, weight histograms) are
         data, not metrics: not compared element-wise *)
    | _ ->
      push Regression path "value kind changed between baseline and candidate"
  in
  walk "$" baseline candidate;
  let ordered = List.rev !findings in
  List.filter (fun f -> f.severity = Regression) ordered
  @ List.filter (fun f -> f.severity = Note) ordered

let compare_strings ?tol ~baseline candidate =
  match (Json.parse baseline, Json.parse candidate) with
  | baseline, candidate -> compare_docs ?tol ~baseline candidate
  | exception Failure message ->
    [ { severity = Regression; path = "$"; message } ]

let regressed findings =
  List.exists (fun f -> f.severity = Regression) findings

let render findings =
  let buffer = Buffer.create 1024 in
  let regressions =
    List.filter (fun f -> f.severity = Regression) findings
  in
  let notes = List.filter (fun f -> f.severity = Note) findings in
  List.iter
    (fun f ->
      Buffer.add_string buffer
        (Printf.sprintf "REGRESSION %s: %s\n" f.path f.message))
    regressions;
  List.iter
    (fun f ->
      Buffer.add_string buffer
        (Printf.sprintf "note       %s: %s\n" f.path f.message))
    notes;
  Buffer.add_string buffer
    (if regressions = [] then
       Printf.sprintf "bench-check OK (%d notes)\n" (List.length notes)
     else
       Printf.sprintf "bench-check FAILED: %d regressions (%d notes)\n"
         (List.length regressions) (List.length notes));
  Buffer.contents buffer
