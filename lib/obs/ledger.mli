(** Per-window strategy cost ledger — the attribution layer behind
    [--ledger] and [ddsim explain].

    The paper's trade-off (combine k gates into one matrix DD, paying
    k-1 matrix-matrix products to save k-1 matrix-vector applications)
    is invisible in aggregate statistics: [Sim_stats] says how many
    multiplications ran, not which window paid for them.  A ledger
    entry is recorded for every combination window and for every
    sequential / fast-path stretch between windows, attributing to that
    span of the circuit:

    - its strategy ([mat_vec], [mat_mat k], or [fallback] when a guard
      budget degraded the window to sequential application),
    - build seconds (gate-DD construction and matrix-matrix products)
      vs apply seconds (matrix-vector application onto the state),
    - the peak matrix-DD node count the window materialised,
    - state-DD node counts before and after,
    - the compute-table hit/miss traffic of its primary memo tables,
    - memory gauges at commit time: OCaml heap live words
      ([Gc.quick_stat]) and the DD package's estimated table residency
      bytes.

    Like every observability layer here, the disabled sink is free: the
    engine guards each recording site behind {!is_on} (one load, one
    branch, zero allocation — asserted by the test suite), and a run
    without a ledger is bitwise identical in statistics. *)

type strategy =
  | Mat_vec  (** sequential / fast-path stretch between windows *)
  | Mat_mat of int  (** combination window of the given k *)
  | Fallback
      (** window degraded to sequential by a guard budget; the entry's
          [detail] names the budget that tripped *)

type entry = {
  index : int;  (** commit order, 0-based *)
  strategy : strategy;
  gate_start : int;  (** first gate index covered (inclusive) *)
  gate_end : int;  (** one past the last gate covered *)
  gates : int;  (** gates attributed to this entry *)
  build_seconds : float;
      (** gate-DD construction + matrix-matrix product time; for
          combination windows also carries the window's dispatch slack
          (wall span minus kernel spans), so build + apply across all
          entries tracks the run's wall clock *)
  apply_seconds : float;
      (** matrix-vector application time; sequential stretches carry
          their dispatch slack here *)
  peak_matrix_nodes : int;
      (** largest matrix DD this entry materialised; [-1] when the
          stretch never built one (pure fast-path applications) *)
  state_nodes_before : int;
  state_nodes_after : int;
  hits : int;  (** primary memo-table hits over the entry *)
  misses : int;
  heap_live_words : int;  (** [Gc.quick_stat].live_words at commit *)
  table_bytes : int;
      (** estimated unique-/compute-table residency bytes at commit *)
  detail : string;  (** tripped budget for [Fallback]; free-form else *)
}

type t
(** A ledger sink with one open accumulator entry at a time.  The
    engine opens an entry at a window or stretch boundary, accumulates
    timings / traffic / gate counts into it, and commits it with the
    end-of-window memory gauges. *)

val null : t
(** Disabled sink: never records, cannot be enabled.  The default on
    every engine. *)

val create : ?max_entries:int -> ?stretch:int -> unit -> t
(** A live sink.  [max_entries] (default 65536) bounds retention —
    later commits are counted in {!dropped} instead of retained.
    [stretch] (default 256, must be >= 1) caps how many gates one
    sequential entry may cover before {!rotate_due} asks the engine to
    commit and start a fresh one. *)

val is_on : t -> bool
(** The engine's per-site probe: one load.  Every other call below is
    made only behind it. *)

val active : t -> bool
(** An entry is currently open. *)

val open_entry : t -> seq:bool -> gate:int -> state_nodes:int -> unit
(** Open the accumulator ([seq] marks a sequential stretch, otherwise a
    combination window).  No-op when disabled; must not be called with
    an entry already open (commit first). *)

val add_gates : t -> int -> unit
val add_build : t -> float -> unit
val add_apply : t -> float -> unit
val add_traffic : t -> hits:int -> misses:int -> unit

val note_matrix : t -> int -> unit
(** Fold a materialised matrix DD's node count into the entry peak. *)

val degrade : t -> detail:string -> unit
(** Mark the open window entry as a guard fallback, recording the
    budget that tripped. *)

val note_detail : t -> string -> unit
(** Attach a free-form detail (e.g. repeat-block annotation). *)

val set_window_k : t -> int -> unit
(** Override the k recorded for a [Mat_mat] entry (repeat blocks apply
    one combined k-gate matrix many times, so gates covered <> k). *)

val rotate_due : t -> bool
(** True when the open entry is a sequential stretch that has reached
    the [stretch] cap and should be committed. *)

val commit :
  t ->
  gate_end:int ->
  state_nodes:int ->
  heap_words:int ->
  table_bytes:int ->
  unit
(** Close the open entry.  The wall-clock span since {!open_entry} not
    already attributed by [add_build] / [add_apply] is folded into
    build (combination windows) or apply (sequential stretches).
    No-op when disabled or no entry is open. *)

val length : t -> int
(** Retained committed entries; commits past [max_entries] are counted
    in {!dropped} instead. *)

val dropped : t -> int
val entries : t -> entry list
(** Chronological. *)

val total_build_seconds : t -> float
(** Build seconds over every committed entry, never reset — survives
    entry retention limits.  (The open accumulator is not included.) *)

val total_apply_seconds : t -> float

(* -- JSONL sidecar ---------------------------------------------------- *)

val schema : string
(** ["ddsim-ledger"] *)

val version : int
(** 1 *)

type run = {
  run_version : int;
  run_meta : (string * string) list;
  run_dropped : int;
  run_entries : entry list;
}

val jsonl : ?meta:(string * string) list -> t -> string
(** Header line, one JSON object per entry, checksum trailer
    ({!Safe_io.jsonl_trailer}).  Write through {!Safe_io.write_file}. *)

val parse_jsonl : string -> run
(** Raises [Failure] with a ["ledger:LINE:"]-located message on
    malformed input; verifies the checksum trailer when present. *)

(* -- aggregation ------------------------------------------------------- *)

type totals = {
  mv_entries : int;
  mv_gates : int;
  mv_build : float;
  mv_apply : float;
  mm_entries : int;
  mm_gates : int;
  mm_build : float;
  mm_apply : float;
  fb_entries : int;
  fb_gates : int;
  fb_build : float;
  fb_apply : float;
  peak_matrix : int;
  peak_heap_words : int;
  peak_table_bytes : int;
}

val totals : entry list -> totals

val break_even : entry list -> int option
(** Smallest window size k whose mat-mat per-gate cost (build + apply,
    amortised over the window's gates) beats the ledger's observed
    mat-vec per-gate cost.  [None] when the ledger has no mat-vec
    baseline or no window reaches break-even. *)

val explain : ?top:int -> run -> string
(** The paper-style comparison rendered for the terminal: per-strategy
    totals (mat-vec vs mat-mat time), amortization per window size,
    the observed break-even k, the [top] (default 5) most expensive
    windows with their node bulges, and peak memory gauges.  When the
    run's meta carries a [wall_seconds] entry, also reports what
    fraction of the wall clock the ledger attributes. *)
