(* Clamped wall clock: monotone non-decreasing.  A single global cell is
   enough — the simulator is single-threaded, and even under races the
   worst case is a reading that is slightly too old, never one that goes
   backwards. *)

let last = ref 0.

let now () =
  let t = Unix.gettimeofday () in
  (* fault harness: a skewed reading must never travel backwards through
     the clamp below — tests assert monotonicity under Clock_skew *)
  let t = if Fault.fire Fault.Clock_skew then t -. 3600. else t in
  if t > !last then last := t;
  !last

let elapsed ~since = now () -. since
