(** Cross-run comparison of two recorded simulations — the engine behind
    [ddsim diff].

    Two runs of the same circuit that should behave identically (two
    revisions, two strategies, two oracle parameters) are aligned by gate
    index and compared structurally:

    - the {e first divergence point}: the first gate at which the two
      state-DD node trajectories disagree — downstream of that gate every
      difference is consequence, not cause;
    - the node-trajectory delta, rendered as an ASCII overlay plot
      ([a]/[b]/[*] columns, like the [ddsim report] plot);
    - per-phase time deltas (count and total duration per event kind);
    - compute-table hit-rate deltas for the multiplication kinds.

    Works on three file families: JSONL traces ({!Trace_report.run}),
    structural profiles ({!Dd_profile.run}) and strategy cost ledgers
    ({!Ledger.run}).  For profiles the report additionally breaks the
    divergence down per DD level and compares sharing and
    identity-region fractions; for ledgers it compares per-strategy
    gate counts and attributed seconds, break-even k, and memory
    peaks. *)

type divergence = {
  gate : int;  (** first gate index where the node counts disagree *)
  nodes_a : int;
  nodes_b : int;
  detail : string;  (** gate name at that index, when the trace knows it *)
}

val first_divergence :
  (int * int) list -> (int * int) list -> divergence option
(** On two [(gate, nodes)] trajectories (ascending).  Only gate indexes
    present in both runs are compared; [None] when they agree
    everywhere. *)

val overlay_plot : a:(int * int) list -> b:(int * int) list -> string
(** ASCII overlay of two trajectories over their common gate range:
    [a]-only columns, [b]-only columns, [*] where both curves reach. *)

val render_traces :
  ?label_a:string ->
  ?label_b:string ->
  Trace_report.run ->
  Trace_report.run ->
  string
(** The full report for two parsed traces.  [label_a]/[label_b] (default
    ["A"]/["B"]) name the runs in headings; pass the file names. *)

val render_profiles :
  ?label_a:string ->
  ?label_b:string ->
  Dd_profile.run ->
  Dd_profile.run ->
  string
(** The full report for two parsed structural profiles. *)

val render_ledgers :
  ?label_a:string -> ?label_b:string -> Ledger.run -> Ledger.run -> string
(** The full report for two parsed strategy ledgers: per-strategy totals
    side by side with time deltas, break-even k of each run, and peak
    matrix-DD / memory gauges. *)
