(** Unified registry of named counters, gauges and histograms.

    The repository grew three disjoint families of counters — {!Sim_stats}
    (engine-level), {!Dd.Compute_table.stats} (per-table hit/miss/eviction)
    and {!Dd.Context.gc_stats} (collections and pauses).  This module puts
    them behind one vocabulary: instruments are registered by name, a
    {!snapshot} freezes every instrument into a comparable value, and
    {!diff} subtracts two snapshots so "what did this phase cost" is one
    call instead of ad-hoc bookkeeping (see {!Dd_sim.Telemetry} for the
    bridge that populates a registry from a live engine).

    Histograms use log2 buckets: an observation [v] lands in the bucket
    whose exponent [e] satisfies [2^(e-1) <= v < 2^e] — the natural
    resolution for op latencies and node counts, both of which span many
    orders of magnitude. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Register (or retrieve) the counter [name].  Raises [Invalid_argument]
    if [name] is already registered as a different instrument kind. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val add : counter -> int -> unit
val count : counter -> int
val set : gauge -> float -> unit

val observe : histogram -> float -> unit
(** Record one observation (latency in seconds, a node count, ...). *)

val bucket_exponent : float -> int
(** The log2 bucket an observation lands in: the [e] in [-32, 31] with
    [2^(e-1) <= v < 2^e] (non-positive observations land in -32,
    out-of-range exponents clamp). *)

(** {1 Snapshots} *)

type value =
  | Count of int
  | Value of float
  | Histogram of {
      count : int;
      sum : float;
      buckets : (int * int) list;
          (** sparse [(exponent, observations)] pairs, ascending *)
    }

type snapshot = (string * value) list
(** Sorted by name. *)

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counters and histogram buckets subtract; gauges keep the [after]
    reading.  Instruments absent from [before] appear unchanged. *)

val find : snapshot -> string -> value option
val pp : Format.formatter -> snapshot -> unit

val to_json : snapshot -> string
(** One JSON object keyed by instrument name: counters as integers,
    gauges as numbers, histograms as
    [{"count":..,"sum":..,"buckets":[[exponent,observations],..]}] —
    what [ddsim run --stats-json] writes. *)
