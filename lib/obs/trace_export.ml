let schema = "ddsim-trace"
let version = 2

let kind_to_string = function
  | Trace.Gate_applied -> "gate_applied"
  | Trace.Window_combined -> "window_combined"
  | Trace.Mat_vec -> "mat_vec"
  | Trace.Mat_mat -> "mat_mat"
  | Trace.Gc -> "gc"
  | Trace.Fallback -> "fallback"
  | Trace.Renormalize -> "renormalize"
  | Trace.Checkpoint -> "checkpoint"
  | Trace.Measure -> "measure"
  | Trace.Audit -> "audit"
  | Trace.Reorder -> "reorder"
  | Trace.Pool_section -> "pool_section"

let kind_of_string = function
  | "gate_applied" -> Some Trace.Gate_applied
  | "window_combined" -> Some Trace.Window_combined
  | "mat_vec" -> Some Trace.Mat_vec
  | "mat_mat" -> Some Trace.Mat_mat
  | "gc" -> Some Trace.Gc
  | "fallback" -> Some Trace.Fallback
  | "renormalize" -> Some Trace.Renormalize
  | "checkpoint" -> Some Trace.Checkpoint
  | "measure" -> Some Trace.Measure
  | "audit" -> Some Trace.Audit
  | "reorder" -> Some Trace.Reorder
  | "pool_section" -> Some Trace.Pool_section
  | _ -> None

let meta_json meta =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v))
         meta)
  ^ "}"

(* %.9g keeps nanosecond resolution on second-scale timestamps without
   printing 17 digits for every event *)
let jsonl ?(meta = []) trace =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf
       "{\"schema\":\"%s\",\"version\":%d,\"events\":%d,\"dropped\":%d,\"meta\":%s}\n"
       schema version (Trace.length trace) (Trace.dropped trace)
       (meta_json meta));
  Trace.iter
    (fun (e : Trace.event) ->
      (* [domain] is emitted only when non-zero, so a single-lane trace
         serialises byte-identically to schema v1 events *)
      let domain_field =
        if e.domain > 0 then Printf.sprintf ",\"domain\":%d" e.domain else ""
      in
      Buffer.add_string buffer
        (Printf.sprintf
           "{\"kind\":\"%s\",\"t\":%.9g,\"dur\":%.9g,\"gate\":%d,\"state_nodes\":%d,\"matrix_nodes\":%d,\"hits\":%d,\"misses\":%d%s,\"detail\":\"%s\"}\n"
           (kind_to_string e.kind) e.t e.dur e.gate_index e.state_nodes
           e.matrix_nodes e.hits e.misses domain_field (Json.escape e.detail)))
    trace;
  (* checksum trailer: lets [ddsim fsck] detect truncation/garbling *)
  let body = Buffer.contents buffer in
  body ^ Safe_io.jsonl_trailer body

let chrome_args (e : Trace.event) =
  let fields = ref [] in
  let push k v = fields := Printf.sprintf "\"%s\":%s" k v :: !fields in
  if e.detail <> "" then
    push "detail" (Printf.sprintf "\"%s\"" (Json.escape e.detail));
  if e.misses > 0 || e.hits > 0 then begin
    push "misses" (string_of_int e.misses);
    push "hits" (string_of_int e.hits)
  end;
  if e.matrix_nodes >= 0 then push "matrix_nodes" (string_of_int e.matrix_nodes);
  if e.state_nodes >= 0 then push "state_nodes" (string_of_int e.state_nodes);
  if e.gate_index >= 0 then push "gate" (string_of_int e.gate_index);
  "{" ^ String.concat "," !fields ^ "}"

let chrome ?(meta = []) trace =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\"traceEvents\":[";
  let first = ref true in
  Trace.iter
    (fun (e : Trace.event) ->
      if !first then first := false else Buffer.add_char buffer ',';
      let ts_us = e.t *. 1e6 in
      if e.dur > 0. then
        Buffer.add_string buffer
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,\"args\":%s}"
             (kind_to_string e.kind) ts_us (e.dur *. 1e6) (e.domain + 1)
             (chrome_args e))
      else
        Buffer.add_string buffer
          (Printf.sprintf
             "\n{\"name\":\"%s\",\"ph\":\"i\",\"ts\":%.3f,\"s\":\"t\",\"pid\":1,\"tid\":%d,\"args\":%s}"
             (kind_to_string e.kind) ts_us (e.domain + 1) (chrome_args e)))
    trace;
  Buffer.add_string buffer "\n],";
  Buffer.add_string buffer
    (Printf.sprintf "\"displayTimeUnit\":\"ms\",\"otherData\":%s}"
       (meta_json
          (meta
          @ [
              ("schema", schema);
              ("version", string_of_int version);
              ("dropped", string_of_int (Trace.dropped trace));
            ])));
  Buffer.contents buffer

let all_kinds =
  [
    Trace.Gate_applied;
    Trace.Window_combined;
    Trace.Mat_vec;
    Trace.Mat_mat;
    Trace.Gc;
    Trace.Fallback;
    Trace.Renormalize;
    Trace.Checkpoint;
    Trace.Measure;
    Trace.Audit;
    Trace.Reorder;
    Trace.Pool_section;
  ]

let summary trace =
  let counts = Hashtbl.create 16 in
  Trace.iter
    (fun (e : Trace.event) ->
      let n, total =
        match Hashtbl.find_opt counts e.kind with
        | Some (n, total) -> (n, total)
        | None -> (0, 0.)
      in
      Hashtbl.replace counts e.kind (n + 1, total +. e.dur))
    trace;
  let buffer = Buffer.create 512 in
  Buffer.add_string buffer
    (Printf.sprintf "trace: %d events, %d dropped\n" (Trace.length trace)
       (Trace.dropped trace));
  Buffer.add_string buffer
    (Printf.sprintf "  %-16s %8s %12s %12s\n" "kind" "count" "total(ms)"
       "mean(us)");
  List.iter
    (fun kind ->
      match Hashtbl.find_opt counts kind with
      | None -> ()
      | Some (n, total) ->
        Buffer.add_string buffer
          (Printf.sprintf "  %-16s %8d %12.3f %12.2f\n" (kind_to_string kind)
             n (total *. 1e3)
             (total *. 1e6 /. float_of_int n)))
    all_kinds;
  Buffer.contents buffer

let write_file path contents = Safe_io.write_file path contents
