type counter = { mutable count : int }
type gauge = { mutable reading : float }

(* 64 log2 buckets covering exponents [-32, 31]: index e + 32 *)
type histogram = {
  mutable observations : int;
  mutable sum : float;
  buckets : int array;
}

type instrument = C of counter | G of gauge | H of histogram
type t = (string, instrument) Hashtbl.t

let create () : t = Hashtbl.create 64

let register (t : t) name make match_existing =
  match Hashtbl.find_opt t name with
  | None ->
    let fresh = make () in
    Hashtbl.add t name fresh;
    fresh
  | Some existing -> (
    match match_existing existing with
    | Some instrument -> instrument
    | None ->
      invalid_arg
        (Printf.sprintf
           "Metrics: %S is already registered as a different kind" name))

let counter t name =
  match
    register t name
      (fun () -> C { count = 0 })
      (function C _ as c -> Some c | _ -> None)
  with
  | C c -> c
  | _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> G { reading = 0. })
      (function G _ as g -> Some g | _ -> None)
  with
  | G g -> g
  | _ -> assert false

let histogram t name =
  match
    register t name
      (fun () -> H { observations = 0; sum = 0.; buckets = Array.make 64 0 })
      (function H _ as h -> Some h | _ -> None)
  with
  | H h -> h
  | _ -> assert false

let add (c : counter) n = c.count <- c.count + n
let count (c : counter) = c.count
let set (g : gauge) v = g.reading <- v

let bucket_exponent v =
  if v <= 0. then -32
  else
    let _, e = Float.frexp v in
    if e < -32 then -32 else if e > 31 then 31 else e

let observe (h : histogram) v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v;
  let i = bucket_exponent v + 32 in
  h.buckets.(i) <- h.buckets.(i) + 1

type value =
  | Count of int
  | Value of float
  | Histogram of { count : int; sum : float; buckets : (int * int) list }

type snapshot = (string * value) list

let snapshot (t : t) : snapshot =
  Hashtbl.fold
    (fun name instrument acc ->
      let value =
        match instrument with
        | C c -> Count c.count
        | G g -> Value g.reading
        | H h ->
          let buckets = ref [] in
          for i = 63 downto 0 do
            if h.buckets.(i) > 0 then
              buckets := (i - 32, h.buckets.(i)) :: !buckets
          done;
          Histogram { count = h.observations; sum = h.sum; buckets = !buckets }
      in
      (name, value) :: acc)
    t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sub_buckets after before =
  (* both sparse and ascending; subtract pointwise, drop zeros *)
  let rec go a b =
    match (a, b) with
    | rest, [] -> rest
    | [], (e, n) :: rest -> (e, -n) :: go [] rest
    | (ea, na) :: ra, (eb, nb) :: rb ->
      if ea < eb then (ea, na) :: go ra b
      else if ea > eb then (eb, -nb) :: go a rb
      else
        let d = na - nb in
        if d = 0 then go ra rb else (ea, d) :: go ra rb
  in
  go after before

let diff ~before ~after =
  List.map
    (fun (name, v_after) ->
      match (List.assoc_opt name before, v_after) with
      | Some (Count b), Count a -> (name, Count (a - b))
      | Some (Value _), Value a -> (name, Value a)
      | ( Some (Histogram { count = bc; sum = bs; buckets = bb }),
          Histogram { count = ac; sum = as_; buckets = ab } ) ->
        ( name,
          Histogram
            {
              count = ac - bc;
              sum = as_ -. bs;
              buckets = sub_buckets ab bb;
            } )
      | _, v -> (name, v))
    after

let find (s : snapshot) name = List.assoc_opt name s

let to_json (s : snapshot) =
  let buffer = Buffer.create 1024 in
  Buffer.add_char buffer '{';
  List.iteri
    (fun i (name, value) ->
      if i > 0 then Buffer.add_char buffer ',';
      Buffer.add_string buffer (Printf.sprintf "\"%s\":" (Json.escape name));
      match value with
      | Count n -> Buffer.add_string buffer (string_of_int n)
      | Value v -> Buffer.add_string buffer (Printf.sprintf "%.9g" v)
      | Histogram { count; sum; buckets } ->
        Buffer.add_string buffer
          (Printf.sprintf "{\"count\":%d,\"sum\":%.9g,\"buckets\":[%s]}" count
             sum
             (String.concat ","
                (List.map
                   (fun (e, n) -> Printf.sprintf "[%d,%d]" e n)
                   buckets))))
    s;
  Buffer.add_char buffer '}';
  Buffer.contents buffer

let pp fmt (s : snapshot) =
  List.iter
    (fun (name, value) ->
      match value with
      | Count n -> Format.fprintf fmt "%-36s %d@\n" name n
      | Value v -> Format.fprintf fmt "%-36s %g@\n" name v
      | Histogram { count; sum; buckets } ->
        Format.fprintf fmt "%-36s count=%d sum=%g%s@\n" name count sum
          (String.concat ""
             (List.map
                (fun (e, n) -> Printf.sprintf " 2^%d:%d" e n)
                buckets)))
    s
