(** The simulator's single timebase.

    [Unix.gettimeofday] is wall-clock time: a system clock step (NTP
    adjustment, suspend/resume) can make it jump backwards, which turned
    into negative GC pauses and deadline guards that fire early.  The
    container's OCaml has no monotonic clock source without external
    packages, so this module provides the next best thing: a clamped wall
    clock that never goes backwards.  All durations and deadlines in the
    simulator are measured against it. *)

val now : unit -> float
(** Seconds, monotone non-decreasing across calls (a backwards wall-clock
    step is absorbed by repeating the last reading until real time catches
    up).  The absolute value is Unix epoch seconds, so it is still
    meaningful in exported traces. *)

val elapsed : since:float -> float
(** [elapsed ~since:t0] is [now () -. t0]; never negative when [t0] came
    from {!now}. *)
