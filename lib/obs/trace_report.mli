(** Offline analysis of a JSONL trace — the engine behind [ddsim report].

    Parses the stable JSONL format written by {!Trace_export.jsonl},
    rebuilds the per-gate state-DD node-count trajectory (the Fig. 3-style
    curve the paper uses to argue about intermediate DD sizes), and
    renders a terminal report: run metadata, per-kind phase breakdown,
    and an ASCII plot of the trajectory. *)

type run = {
  version : int;
  meta : (string * string) list;
  events : Trace.event list;  (** in file (= emission) order *)
  dropped : int;
}

val parse_jsonl : string -> run
(** Raises [Failure] on malformed JSON, a missing/mismatched [schema]
    field, or an unsupported [version].  Every message is located:
    ["trace:LINE: ..."] with the 1-based line the problem came from. *)

val trajectory : run -> (int * int) list
(** [(gate_index, state_nodes)] per gate, ascending by gate index.  For
    each gate the last event carrying a non-negative node count wins, so
    the value reflects the state after the gate fully landed. *)

val peak_state_nodes : run -> (int * int) option
(** [(gate_index, nodes)] of the trajectory maximum; [None] when the
    trace carries no node counts. *)

type phase = {
  kind : Trace.kind;
  count : int;
  total_seconds : float;
  mean_seconds : float;
  max_seconds : float;
}

val phases : run -> phase list
(** One entry per kind present in the trace, in declaration order. *)

val lane_phases : run -> (int * phase list) list
(** Per-domain phase breakdown, ascending by domain id.  A single-lane
    (v1 or sequential) trace yields exactly [[(0, phases run)]]. *)

val serial_fraction : run -> float option
(** Amdahl view: the fraction of the traced span spent {e outside}
    [pool_section] spans.  [None] when the trace carries no pool
    sections (sequential run or v1 writer). *)

val render : run -> string
(** The full human-readable report. *)
