(** Baseline comparison over the committed [BENCH_*.json] files — the
    engine behind [ddsim bench-check] and [bench/compare.exe].

    A benchmark document is an object with a [schema] string and a [runs]
    array; each run carries string identity fields (benchmark / circuit /
    mode / strategy) and numeric metrics, possibly with nested arrays of
    named sub-objects (compute tables).  The comparator walks baseline
    and candidate in lockstep, pairing runs (and nested table entries) by
    their identity fields, and classifies every numeric metric by name:

    - {e informational} metrics ([pool_*] / [lock_*] leaves): contention
      and pool-utilization counters are scheduling-dependent and
      nondeterministic from run to run, so they are recorded in the
      documents but never compared — no tolerance, no finding.  Checked
      before the other classes ([pool_busy_seconds] would otherwise
      classify as a time metric);
    - {e time} metrics ([*seconds*]): noisy across machines — a candidate
      may regress by at most [time_ratio] times the baseline; faster
      always passes;
    - {e rate} metrics ([*_rate]): compared with the absolute tolerance
      [rate_tol];
    - everything else is a {e count} (node counts, multiplication and
      lookup counters): deterministic for a given code revision, allowed
      to drift by at most the [count_ratio] fraction of the baseline.

    Missing runs, missing metrics and changed identity fields are always
    failures.  Extra runs or metrics in the candidate are informational.
    Arrays of numbers (trajectories) are not compared element-wise. *)

type tolerances = {
  time_ratio : float;  (** candidate time may be up to [ratio] x baseline *)
  count_ratio : float;  (** allowed fractional drift of counter metrics *)
  rate_tol : float;  (** absolute tolerance for [*_rate] metrics *)
}

val default : tolerances
(** [time_ratio = 10.], [count_ratio = 0.1], [rate_tol = 0.15] — generous
    enough for cross-machine CI, tight enough that an algorithmic
    regression (more multiplications, bigger DDs) fails. *)

type severity = Regression | Note

type finding = {
  severity : severity;
  path : string;  (** e.g. ["runs[ghz_12/seq].final_state_nodes"] *)
  message : string;
}

val compare_docs :
  ?tol:tolerances -> baseline:Json.t -> Json.t -> finding list
(** Regressions first, stable order. *)

val compare_strings :
  ?tol:tolerances -> baseline:string -> string -> finding list
(** Parses both documents; a parse failure is reported as a regression
    finding rather than raised. *)

val regressed : finding list -> bool
(** [true] when any finding is a {!Regression}. *)

val render : finding list -> string
(** Human-readable report; ends with a one-line verdict. *)
