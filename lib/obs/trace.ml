type kind =
  | Gate_applied
  | Window_combined
  | Mat_vec
  | Mat_mat
  | Gc
  | Fallback
  | Renormalize
  | Checkpoint
  | Measure
  | Audit
  | Reorder
  | Pool_section

type event = {
  kind : kind;
  t : float;
  dur : float;
  gate_index : int;
  state_nodes : int;
  matrix_nodes : int;
  hits : int;
  misses : int;
  domain : int;
  detail : string;
}

type t = {
  mutable enabled : bool;
  mutable events : event array;
  mutable len : int;
  max_events : int;
  mutable dropped : int;
  epoch : float;
  mutable gate_index : int;
  is_null : bool;
  domain_id : int;
  mutable lanes : t array;
}

let dummy_event =
  {
    kind = Gc;
    t = 0.;
    dur = 0.;
    gate_index = -1;
    state_nodes = -1;
    matrix_nodes = -1;
    hits = 0;
    misses = 0;
    domain = 0;
    detail = "";
  }

let null =
  {
    enabled = false;
    events = [||];
    len = 0;
    max_events = 0;
    dropped = 0;
    epoch = 0.;
    gate_index = -1;
    is_null = true;
    domain_id = 0;
    lanes = [||];
  }

let create ?(max_events = 1 lsl 20) () =
  if max_events < 1 then
    invalid_arg "Trace.create: max_events must be >= 1";
  {
    enabled = true;
    events = Array.make (min 4096 max_events) dummy_event;
    len = 0;
    max_events;
    dropped = 0;
    epoch = Clock.now ();
    gate_index = -1;
    is_null = false;
    domain_id = 0;
    lanes = [||];
  }

let is_on t = t.enabled
let set_enabled t flag = if not t.is_null then t.enabled <- flag
let now t = Clock.now () -. t.epoch
let rel t abs = abs -. t.epoch
let set_gate t i = t.gate_index <- i
let gate t = t.gate_index

let emit t event =
  if t.len < Array.length t.events then begin
    t.events.(t.len) <- event;
    t.len <- t.len + 1
  end
  else if t.len >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    let grown =
      Array.make (min t.max_events (max 8 (2 * t.len))) dummy_event
    in
    Array.blit t.events 0 grown 0 t.len;
    t.events <- grown;
    t.events.(t.len) <- event;
    t.len <- t.len + 1
  end

let instant t kind ~gate ~state_nodes ~matrix_nodes ~detail =
  if t.enabled then
    emit t
      {
        kind;
        t = now t;
        dur = 0.;
        gate_index = gate;
        state_nodes;
        matrix_nodes;
        hits = 0;
        misses = 0;
        domain = t.domain_id;
        detail;
      }

let span t kind ~t0 ~gate ~state_nodes ~matrix_nodes ~hits ~misses ~detail =
  if t.enabled then begin
    let t1 = now t in
    emit t
      {
        kind;
        t = t0;
        dur = Float.max 0. (t1 -. t0);
        gate_index = gate;
        state_nodes;
        matrix_nodes;
        hits;
        misses;
        domain = t.domain_id;
        detail;
      }
  end

let length t = t.len
let dropped t = t.dropped
let events t = Array.sub t.events 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let clear t =
  t.len <- 0;
  t.dropped <- 0

(* -- per-domain lanes --------------------------------------------------- *)

(* A lane is a private append buffer for one pool member, sharing the
   parent's epoch so lane timestamps land on the same timebase.  Lanes
   exist only between [arm_lanes] and [merge_lanes] — the engine arms
   them when a pool section starts and merges at quiescence, so the main
   buffer is never touched concurrently. *)

let arm_lanes t crew =
  if t.enabled && t.domain_id = 0 && crew > 1 then
    t.lanes <-
      Array.init crew (fun i ->
          {
            enabled = true;
            events = Array.make 256 dummy_event;
            len = 0;
            max_events = t.max_events;
            dropped = 0;
            epoch = t.epoch;
            gate_index = t.gate_index;
            is_null = false;
            domain_id = i;
            lanes = [||];
          })

let lanes_armed t = Array.length t.lanes > 0

let lane t i =
  let lanes = t.lanes in
  if i >= 0 && i < Array.length lanes then lanes.(i) else t

let merge_lanes t =
  let lanes = t.lanes in
  if Array.length lanes > 0 then begin
    t.lanes <- [||];
    let collected = ref [] in
    Array.iter
      (fun l ->
        t.dropped <- t.dropped + l.dropped;
        for i = l.len - 1 downto 0 do
          collected := l.events.(i) :: !collected
        done)
      lanes;
    (* append in end-time order so the merged buffer keeps the
       completion-order / monotone-end-time streaming property *)
    let merged =
      List.stable_sort
        (fun a b -> Float.compare (a.t +. a.dur) (b.t +. b.dur))
        !collected
    in
    List.iter (emit t) merged
  end
