type strategy = Mat_vec | Mat_mat of int | Fallback

type entry = {
  index : int;
  strategy : strategy;
  gate_start : int;
  gate_end : int;
  gates : int;
  build_seconds : float;
  apply_seconds : float;
  peak_matrix_nodes : int;
  state_nodes_before : int;
  state_nodes_after : int;
  hits : int;
  misses : int;
  heap_live_words : int;
  table_bytes : int;
  detail : string;
}

(* -- sink ------------------------------------------------------------- *)

type t = {
  mutable on : bool;
  max_entries : int;
  stretch : int;
  mutable count : int;  (* retained commits *)
  mutable drop_count : int;  (* commits past [max_entries] *)
  mutable items : entry list;  (* reversed *)
  mutable total_build : float;  (* over every commit, never reset *)
  mutable total_apply : float;
  (* the open accumulator entry *)
  mutable cur_open : bool;
  mutable cur_opened : float;  (* wall clock at [open_entry] *)
  mutable cur_seq : bool;
  mutable cur_fallback : bool;
  mutable cur_k : int;  (* explicit window k; -1 = use [cur_gates] *)
  mutable cur_detail : string;
  mutable cur_gate_start : int;
  mutable cur_gates : int;
  mutable cur_build : float;
  mutable cur_apply : float;
  mutable cur_peak_matrix : int;  (* -1 when no matrix DD materialised *)
  mutable cur_state_before : int;
  mutable cur_hits : int;
  mutable cur_misses : int;
}

let make ~on ~max_entries ~stretch =
  {
    on;
    max_entries;
    stretch;
    count = 0;
    drop_count = 0;
    items = [];
    total_build = 0.;
    total_apply = 0.;
    cur_open = false;
    cur_opened = 0.;
    cur_seq = false;
    cur_fallback = false;
    cur_k = -1;
    cur_detail = "";
    cur_gate_start = 0;
    cur_gates = 0;
    cur_build = 0.;
    cur_apply = 0.;
    cur_peak_matrix = -1;
    cur_state_before = 0;
    cur_hits = 0;
    cur_misses = 0;
  }

let null = make ~on:false ~max_entries:0 ~stretch:max_int

let create ?(max_entries = 65536) ?(stretch = 256) () =
  if stretch < 1 then invalid_arg "Ledger.create: stretch must be >= 1";
  make ~on:true ~max_entries ~stretch

(* the disabled path must not allocate: one load, one branch *)
let is_on t = t.on
let active t = t.on && t.cur_open

let open_entry t ~seq ~gate ~state_nodes =
  if t.on then begin
    if t.cur_open then invalid_arg "Ledger.open_entry: entry already open";
    t.cur_open <- true;
    t.cur_opened <- Clock.now ();
    t.cur_seq <- seq;
    t.cur_fallback <- false;
    t.cur_k <- -1;
    t.cur_detail <- "";
    t.cur_gate_start <- gate;
    t.cur_gates <- 0;
    t.cur_build <- 0.;
    t.cur_apply <- 0.;
    t.cur_peak_matrix <- -1;
    t.cur_state_before <- state_nodes;
    t.cur_hits <- 0;
    t.cur_misses <- 0
  end

let add_gates t n = if t.on && t.cur_open then t.cur_gates <- t.cur_gates + n
let add_build t dt = if t.on && t.cur_open then t.cur_build <- t.cur_build +. dt
let add_apply t dt = if t.on && t.cur_open then t.cur_apply <- t.cur_apply +. dt

let add_traffic t ~hits ~misses =
  if t.on && t.cur_open then begin
    t.cur_hits <- t.cur_hits + hits;
    t.cur_misses <- t.cur_misses + misses
  end

let note_matrix t nodes =
  if t.on && t.cur_open && nodes > t.cur_peak_matrix then
    t.cur_peak_matrix <- nodes

let degrade t ~detail =
  if t.on && t.cur_open then begin
    t.cur_fallback <- true;
    t.cur_detail <- detail
  end

let note_detail t detail = if t.on && t.cur_open then t.cur_detail <- detail
let set_window_k t k = if t.on && t.cur_open then t.cur_k <- k

let rotate_due t =
  t.on && t.cur_open && t.cur_seq && t.cur_gates >= t.stretch

let commit t ~gate_end ~state_nodes ~heap_words ~table_bytes =
  if t.on && t.cur_open then begin
    (* the kernel spans (gate-DD builds, matrix products, applications)
       never cover the whole window: dispatch, guard checks and window
       bookkeeping run between them.  Fold that slack into the bucket
       that owns the window's machinery — build for combination windows,
       apply for sequential stretches — so summed build+apply tracks the
       wall clock instead of undercounting it. *)
    let span = Clock.now () -. t.cur_opened in
    let slack = Float.max 0. (span -. t.cur_build -. t.cur_apply) in
    if t.cur_seq then t.cur_apply <- t.cur_apply +. slack
    else t.cur_build <- t.cur_build +. slack;
    let strategy =
      if t.cur_fallback then Fallback
      else if t.cur_seq then Mat_vec
      else Mat_mat (if t.cur_k >= 0 then t.cur_k else t.cur_gates)
    in
    let entry =
      {
        index = t.count + t.drop_count;
        strategy;
        gate_start = t.cur_gate_start;
        gate_end;
        gates = t.cur_gates;
        build_seconds = t.cur_build;
        apply_seconds = t.cur_apply;
        peak_matrix_nodes = t.cur_peak_matrix;
        state_nodes_before = t.cur_state_before;
        state_nodes_after = state_nodes;
        hits = t.cur_hits;
        misses = t.cur_misses;
        heap_live_words = heap_words;
        table_bytes;
        detail = t.cur_detail;
      }
    in
    t.total_build <- t.total_build +. t.cur_build;
    t.total_apply <- t.total_apply +. t.cur_apply;
    if t.count >= t.max_entries then t.drop_count <- t.drop_count + 1
    else begin
      t.items <- entry :: t.items;
      t.count <- t.count + 1
    end;
    t.cur_open <- false
  end

let length t = t.count
let dropped t = t.drop_count
let entries t = List.rev t.items
let total_build_seconds t = t.total_build
let total_apply_seconds t = t.total_apply

(* -- JSONL sidecar ---------------------------------------------------- *)

let schema = "ddsim-ledger"
let version = 1

type run = {
  run_version : int;
  run_meta : (string * string) list;
  run_dropped : int;
  run_entries : entry list;
}

let strategy_name = function
  | Mat_vec -> "mat_vec"
  | Mat_mat _ -> "mat_mat"
  | Fallback -> "fallback"

let entry_to_json e =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer
    (Printf.sprintf "{\"i\":%d,\"strategy\":\"%s\"" e.index
       (strategy_name e.strategy));
  (match e.strategy with
  | Mat_mat k -> Buffer.add_string buffer (Printf.sprintf ",\"k\":%d" k)
  | Mat_vec | Fallback -> ());
  Buffer.add_string buffer
    (Printf.sprintf
       ",\"gates\":%d,\"gate_start\":%d,\"gate_end\":%d,\"build_s\":%.9g,\"apply_s\":%.9g,\"peak_matrix_nodes\":%d,\"state_nodes_before\":%d,\"state_nodes_after\":%d,\"hits\":%d,\"misses\":%d,\"heap_live_words\":%d,\"table_bytes\":%d"
       e.gates e.gate_start e.gate_end e.build_seconds e.apply_seconds
       e.peak_matrix_nodes e.state_nodes_before e.state_nodes_after e.hits
       e.misses e.heap_live_words e.table_bytes);
  if e.detail <> "" then
    Buffer.add_string buffer
      (Printf.sprintf ",\"detail\":\"%s\"" (Json.escape e.detail));
  Buffer.add_char buffer '}';
  Buffer.contents buffer

let meta_json meta =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v))
         meta)
  ^ "}"

let jsonl ?(meta = []) t =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf
       "{\"schema\":\"%s\",\"version\":%d,\"entries\":%d,\"dropped\":%d,\"meta\":%s}\n"
       schema version t.count t.drop_count (meta_json meta));
  List.iter
    (fun e ->
      Buffer.add_string buffer (entry_to_json e);
      Buffer.add_char buffer '\n')
    (entries t);
  (* checksum trailer: lets [ddsim fsck] detect truncation/garbling *)
  let body = Buffer.contents buffer in
  body ^ Safe_io.jsonl_trailer body

let located line_number message =
  failwith (Printf.sprintf "ledger:%d: %s" line_number message)

let int_field json key ~default =
  match Json.member json key with
  | Some (Json.Num v) -> int_of_float v
  | _ -> default

let num_field json key ~default =
  match Json.member json key with Some (Json.Num v) -> v | _ -> default

let str_field json key ~default =
  match Json.member json key with Some (Json.Str s) -> s | _ -> default

let parse_entry json =
  let gates = int_field json "gates" ~default:0 in
  let strategy =
    match str_field json "strategy" ~default:"" with
    | "mat_vec" -> Mat_vec
    | "mat_mat" -> Mat_mat (int_field json "k" ~default:gates)
    | "fallback" -> Fallback
    | s -> failwith (Printf.sprintf "unknown strategy %S" s)
  in
  {
    index = int_field json "i" ~default:(-1);
    strategy;
    gate_start = int_field json "gate_start" ~default:0;
    gate_end = int_field json "gate_end" ~default:0;
    gates;
    build_seconds = num_field json "build_s" ~default:0.;
    apply_seconds = num_field json "apply_s" ~default:0.;
    peak_matrix_nodes = int_field json "peak_matrix_nodes" ~default:(-1);
    state_nodes_before = int_field json "state_nodes_before" ~default:0;
    state_nodes_after = int_field json "state_nodes_after" ~default:0;
    hits = int_field json "hits" ~default:0;
    misses = int_field json "misses" ~default:0;
    heap_live_words = int_field json "heap_live_words" ~default:0;
    table_bytes = int_field json "table_bytes" ~default:0;
    detail = str_field json "detail" ~default:"";
  }

let parse_jsonl text =
  (* verify the checksum trailer when present (files written by hand or
     truncated mid-write may lack one; they still parse) *)
  let body, trailer = Safe_io.split_jsonl_trailer text in
  (match trailer with
  | Some expected when Safe_io.checksum body <> expected ->
    failwith "ledger: checksum mismatch (file truncated or corrupted)"
  | _ -> ());
  let lines =
    String.split_on_char '\n' body
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  match lines with
  | [] -> failwith "ledger: empty file"
  | (header_line, header_text) :: rest ->
    let header =
      try Json.parse header_text
      with Failure message -> located header_line message
    in
    (match Json.member header "schema" with
    | Some (Json.Str s) when s = schema -> ()
    | Some (Json.Str s) ->
      located header_line (Printf.sprintf "unexpected schema %S" s)
    | _ -> located header_line "header line is missing \"schema\"");
    let run_version =
      match Json.member header "version" with
      | Some (Json.Num v) -> int_of_float v
      | _ -> located header_line "header line is missing \"version\""
    in
    if run_version <> version then
      located header_line
        (Printf.sprintf "unsupported schema version %d (expected %d)"
           run_version version);
    let run_meta =
      match Json.member header "meta" with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with Json.Str s -> Some (k, s) | _ -> None)
          fields
      | _ -> []
    in
    let run_dropped = int_field header "dropped" ~default:0 in
    let run_entries =
      List.map
        (fun (line_number, line) ->
          match parse_entry (Json.parse line) with
          | entry -> entry
          | exception Failure message -> located line_number message)
        rest
    in
    { run_version; run_meta; run_dropped; run_entries }

(* -- aggregation ------------------------------------------------------- *)

type totals = {
  mv_entries : int;
  mv_gates : int;
  mv_build : float;
  mv_apply : float;
  mm_entries : int;
  mm_gates : int;
  mm_build : float;
  mm_apply : float;
  fb_entries : int;
  fb_gates : int;
  fb_build : float;
  fb_apply : float;
  peak_matrix : int;
  peak_heap_words : int;
  peak_table_bytes : int;
}

let totals entries =
  List.fold_left
    (fun acc e ->
      let acc =
        {
          acc with
          peak_matrix = max acc.peak_matrix e.peak_matrix_nodes;
          peak_heap_words = max acc.peak_heap_words e.heap_live_words;
          peak_table_bytes = max acc.peak_table_bytes e.table_bytes;
        }
      in
      match e.strategy with
      | Mat_vec ->
        {
          acc with
          mv_entries = acc.mv_entries + 1;
          mv_gates = acc.mv_gates + e.gates;
          mv_build = acc.mv_build +. e.build_seconds;
          mv_apply = acc.mv_apply +. e.apply_seconds;
        }
      | Mat_mat _ ->
        {
          acc with
          mm_entries = acc.mm_entries + 1;
          mm_gates = acc.mm_gates + e.gates;
          mm_build = acc.mm_build +. e.build_seconds;
          mm_apply = acc.mm_apply +. e.apply_seconds;
        }
      | Fallback ->
        {
          acc with
          fb_entries = acc.fb_entries + 1;
          fb_gates = acc.fb_gates + e.gates;
          fb_build = acc.fb_build +. e.build_seconds;
          fb_apply = acc.fb_apply +. e.apply_seconds;
        })
    {
      mv_entries = 0;
      mv_gates = 0;
      mv_build = 0.;
      mv_apply = 0.;
      mm_entries = 0;
      mm_gates = 0;
      mm_build = 0.;
      mm_apply = 0.;
      fb_entries = 0;
      fb_gates = 0;
      fb_build = 0.;
      fb_apply = 0.;
      peak_matrix = -1;
      peak_heap_words = 0;
      peak_table_bytes = 0;
    }
    entries

(* Per-window-size aggregate over [Mat_mat] entries: k -> (windows,
   gates, build+apply seconds), sorted by k ascending. *)
let by_k entries =
  let table = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e.strategy with
      | Mat_mat k ->
        let windows, gates, seconds =
          match Hashtbl.find_opt table k with
          | Some acc -> acc
          | None -> (0, 0, 0.)
        in
        Hashtbl.replace table k
          ( windows + 1,
            gates + e.gates,
            seconds +. e.build_seconds +. e.apply_seconds )
      | Mat_vec | Fallback -> ())
    entries;
  Hashtbl.fold (fun k acc rows -> (k, acc) :: rows) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mat_vec_per_gate entries =
  let t = totals entries in
  if t.mv_gates > 0 then Some ((t.mv_build +. t.mv_apply) /. float_of_int t.mv_gates)
  else None

let break_even entries =
  match mat_vec_per_gate entries with
  | None -> None
  | Some baseline ->
    List.fold_left
      (fun best (k, (_, gates, seconds)) ->
        if gates > 0 && seconds /. float_of_int gates <= baseline then
          match best with Some b when b <= k -> best | _ -> Some k
        else best)
      None (by_k entries)

let mib bytes = float_of_int bytes /. (1024. *. 1024.)

let explain ?(top = 5) run =
  let buffer = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buffer (s ^ "\n")) fmt in
  line "ledger (schema %s v%d)" schema run.run_version;
  if run.run_meta <> [] then
    line "meta: %s"
      (String.concat " "
         (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) run.run_meta));
  let n = List.length run.run_entries in
  line "entries: %d%s" n
    (if run.run_dropped > 0 then
       Printf.sprintf " (%d dropped past retention)" run.run_dropped
     else "");
  let t = totals run.run_entries in
  line "";
  line "strategy totals (build = gate-DD construction + matrix products,";
  line "                 apply = matrix-vector application):";
  line "  mat-vec : %4d entries  %6d gates  build %8.4fs  apply %8.4fs  total %8.4fs"
    t.mv_entries t.mv_gates t.mv_build t.mv_apply (t.mv_build +. t.mv_apply);
  line "  mat-mat : %4d windows  %6d gates  build %8.4fs  apply %8.4fs  total %8.4fs"
    t.mm_entries t.mm_gates t.mm_build t.mm_apply (t.mm_build +. t.mm_apply);
  line "  fallback: %4d windows  %6d gates  build %8.4fs  apply %8.4fs  total %8.4fs"
    t.fb_entries t.fb_gates t.fb_build t.fb_apply (t.fb_build +. t.fb_apply);
  let baseline = mat_vec_per_gate run.run_entries in
  let groups = by_k run.run_entries in
  if groups <> [] then begin
    line "";
    line "amortization per window size:";
    List.iter
      (fun (k, (windows, gates, seconds)) ->
        let per_gate =
          if gates > 0 then seconds /. float_of_int gates else 0.
        in
        let vs =
          match baseline with
          | Some b when b > 0. ->
            Printf.sprintf "  (%.2fx mat-vec per-gate)" (per_gate /. b)
          | _ -> ""
        in
        line "  k=%-3d %4d windows  %6d gates  %.6f s/gate%s" k windows gates
          per_gate vs)
      groups
  end;
  (match baseline with
  | Some b -> line "mat-vec per-gate: %.6f s" b
  | None -> line "mat-vec per-gate: n/a (no sequential stretch in this run)");
  (match break_even run.run_entries with
  | Some k -> line "break-even k observed: %d (smallest window size beating mat-vec per-gate)" k
  | None -> line "break-even k observed: none");
  let expensive =
    List.filter
      (fun e -> e.build_seconds +. e.apply_seconds > 0. || e.gates > 0)
      run.run_entries
    |> List.sort (fun a b ->
           compare
             (b.build_seconds +. b.apply_seconds)
             (a.build_seconds +. a.apply_seconds))
  in
  if expensive <> [] && top > 0 then begin
    line "";
    line "top %d most expensive windows:" (min top (List.length expensive));
    List.iteri
      (fun i e ->
        if i < top then begin
          let strategy =
            match e.strategy with
            | Mat_vec -> "mat-vec"
            | Mat_mat k -> Printf.sprintf "mat-mat k=%d" k
            | Fallback ->
              if e.detail <> "" then
                Printf.sprintf "fallback (%s)" e.detail
              else "fallback"
          in
          line
            "  %d. gates [%d,%d) %-16s build %8.4fs apply %8.4fs  matrix peak %s  state %d -> %d"
            (i + 1) e.gate_start e.gate_end strategy e.build_seconds
            e.apply_seconds
            (if e.peak_matrix_nodes >= 0 then
               Printf.sprintf "%d nodes" e.peak_matrix_nodes
             else "-")
            e.state_nodes_before e.state_nodes_after
        end)
      expensive
  end;
  if t.peak_heap_words > 0 || t.peak_table_bytes > 0 then begin
    line "";
    line "peak memory: heap %d live words, DD tables ~%.1f MiB%s"
      t.peak_heap_words
      (mib t.peak_table_bytes)
      (if t.peak_matrix >= 0 then
         Printf.sprintf " (largest matrix DD %d nodes)" t.peak_matrix
       else "")
  end;
  (match List.assoc_opt "wall_seconds" run.run_meta with
  | Some w -> (
    match float_of_string_opt w with
    | Some wall when wall > 0. ->
      let attributed =
        t.mv_build +. t.mv_apply +. t.mm_build +. t.mm_apply +. t.fb_build
        +. t.fb_apply
      in
      line "ledger covers %.1f%% of wall clock (%.4fs of %.4fs)"
        (100. *. attributed /. wall)
        attributed wall
    | _ -> ())
  | None -> ());
  Buffer.contents buffer
