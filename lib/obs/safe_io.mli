(** Crash-safe artifact writes and content checksums.

    Every sidecar the simulator produces (traces, profiles, checkpoints,
    metrics JSON, DOT, bench output) goes through {!write_file}:
    write-to-temp, flush, [fsync], close, atomic rename.  A crash or
    exception mid-write therefore never leaves a truncated or
    half-flushed artifact at the destination path — the old file (if
    any) survives intact.

    Formats that want end-to-end integrity additionally carry a checksum
    trailer ({!checksum}, FNV-1a 64 in hex) covering every byte before
    the trailer line; [ddsim fsck] and the parsers verify it. *)

val checksum : string -> string
(** FNV-1a 64-bit hash of the text, as 16 lowercase hex digits. *)

val write_file : string -> string -> unit
(** [write_file path contents] — atomically replace [path] with
    [contents] via a [path ^ ".tmp"] sibling (same filesystem, so the
    rename is atomic), fsynced before the rename. *)

val jsonl_trailer : string -> string
(** [jsonl_trailer body] is the [{"checksum":"<hex>"}] line (newline
    terminated) covering [body]. *)

val split_jsonl_trailer : string -> string * string option
(** [split_jsonl_trailer text] separates a trailing checksum line from a
    JSONL document: [(body, Some hex)] when the last non-empty line is a
    [{"checksum":"..."}] object, [(text, None)] otherwise.  [body]
    retains its terminating newline, i.e. it is exactly the text the
    checksum was computed over. *)

val split_text_trailer : string -> string * string option
(** Same splitting for plain-text formats whose trailer is a final
    [checksum <hex>] line (the checkpoint format). *)
