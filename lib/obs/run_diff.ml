type divergence = {
  gate : int;
  nodes_a : int;
  nodes_b : int;
  detail : string;
}

(* -- alignment ------------------------------------------------------- *)

let first_divergence trajectory_a trajectory_b =
  let by_gate points =
    let table = Hashtbl.create 256 in
    List.iter (fun (g, n) -> Hashtbl.replace table g n) points;
    table
  in
  let table_b = by_gate trajectory_b in
  let rec scan = function
    | [] -> None
    | (gate, nodes_a) :: rest -> (
      match Hashtbl.find_opt table_b gate with
      | Some nodes_b when nodes_b <> nodes_a ->
        Some { gate; nodes_a; nodes_b; detail = "" }
      | _ -> scan rest)
  in
  scan trajectory_a

(* -- overlay plot ---------------------------------------------------- *)

let plot_width = 72
let plot_height = 12

let overlay_plot ~a ~b =
  if a = [] && b = [] then "  (no node-count samples in either run)\n"
  else begin
    let gates = List.map fst a @ List.map fst b in
    let g0 = List.fold_left min max_int gates in
    let g1 = List.fold_left max min_int gates in
    let span = max 1 (g1 - g0 + 1) in
    let width = min plot_width span in
    let columns points =
      let column = Array.make width 0 in
      List.iter
        (fun (g, v) ->
          let c = (g - g0) * width / span in
          if v > column.(c) then column.(c) <- v)
        points;
      column
    in
    let column_a = columns a in
    let column_b = columns b in
    let peak =
      max 1 (max (Array.fold_left max 0 column_a) (Array.fold_left max 0 column_b))
    in
    let buffer = Buffer.create 1024 in
    for row = plot_height downto 1 do
      let threshold =
        float_of_int peak *. float_of_int row /. float_of_int plot_height
      in
      let label =
        if row = plot_height then Printf.sprintf "%8d |" peak
        else if row = 1 then Printf.sprintf "%8d |" 0
        else "         |"
      in
      Buffer.add_string buffer label;
      for c = 0 to width - 1 do
        let hit_a = float_of_int column_a.(c) >= threshold in
        let hit_b = float_of_int column_b.(c) >= threshold in
        Buffer.add_char buffer
          (match (hit_a, hit_b) with
          | true, true -> '*'
          | true, false -> 'a'
          | false, true -> 'b'
          | false, false -> ' ')
      done;
      Buffer.add_char buffer '\n'
    done;
    Buffer.add_string buffer ("         +" ^ String.make width '-' ^ "\n");
    Buffer.add_string buffer
      (Printf.sprintf
         "          gate %d .. %d   (a only, b only, * both reach)\n" g0 g1);
    Buffer.contents buffer
  end

(* -- shared rendering helpers ---------------------------------------- *)

let peak_of trajectory =
  List.fold_left
    (fun best (g, n) ->
      match best with
      | Some (_, bn) when bn >= n -> best
      | _ -> Some (g, n))
    None trajectory

let delta_percent base value =
  if base = 0. then if value = 0. then 0. else infinity
  else (value -. base) /. base *. 100.

let add_heading buffer label_a label_b =
  Buffer.add_string buffer
    (Printf.sprintf "run diff: a = %s, b = %s\n" label_a label_b)

let add_divergence buffer = function
  | None ->
    Buffer.add_string buffer
      "first divergence: none — node trajectories agree at every aligned \
       gate\n"
  | Some d ->
    Buffer.add_string buffer
      (Printf.sprintf
         "first divergence: gate %d%s — %d nodes (a) vs %d nodes (b)\n"
         d.gate
         (if d.detail = "" then "" else Printf.sprintf " (%s)" d.detail)
         d.nodes_a d.nodes_b)

let add_peaks buffer trajectory_a trajectory_b =
  match (peak_of trajectory_a, peak_of trajectory_b) with
  | Some (ga, na), Some (gb, nb) ->
    Buffer.add_string buffer
      (Printf.sprintf
         "peak state nodes: a = %d at gate %d, b = %d at gate %d (%+.1f%%)\n"
         na ga nb gb
         (delta_percent (float_of_int na) (float_of_int nb)))
  | _ -> ()

(* -- trace diff ------------------------------------------------------ *)

let gate_name_at (run : Trace_report.run) gate =
  List.fold_left
    (fun acc (e : Trace.event) ->
      if e.kind = Trace.Gate_applied && e.gate_index = gate && e.detail <> ""
      then e.detail
      else acc)
    "" run.events

let add_phase_deltas buffer (phases_a : Trace_report.phase list)
    (phases_b : Trace_report.phase list) =
  let find phases kind =
    List.find_opt (fun (p : Trace_report.phase) -> p.kind = kind) phases
  in
  let kinds =
    List.sort_uniq compare
      (List.map (fun (p : Trace_report.phase) -> p.kind) phases_a
      @ List.map (fun (p : Trace_report.phase) -> p.kind) phases_b)
  in
  if kinds <> [] then begin
    Buffer.add_string buffer
      (Printf.sprintf "\n%-16s %8s %8s %12s %12s %9s\n" "phase" "count(a)"
         "count(b)" "total(a,ms)" "total(b,ms)" "dt");
    List.iter
      (fun kind ->
        let count p =
          match p with Some (q : Trace_report.phase) -> q.count | None -> 0
        in
        let total p =
          match p with
          | Some (q : Trace_report.phase) -> q.total_seconds
          | None -> 0.
        in
        let pa = find phases_a kind and pb = find phases_b kind in
        Buffer.add_string buffer
          (Printf.sprintf "%-16s %8d %8d %12.3f %12.3f %8.1f%%\n"
             (Trace_export.kind_to_string kind)
             (count pa) (count pb)
             (total pa *. 1e3)
             (total pb *. 1e3)
             (delta_percent (total pa) (total pb))))
      kinds
  end

let hit_rates (run : Trace_report.run) =
  let table = Hashtbl.create 4 in
  List.iter
    (fun (e : Trace.event) ->
      match e.kind with
      | Trace.Mat_vec | Trace.Mat_mat ->
        let hits, misses =
          match Hashtbl.find_opt table e.kind with
          | Some v -> v
          | None -> (0, 0)
        in
        Hashtbl.replace table e.kind (hits + e.hits, misses + e.misses)
      | _ -> ())
    run.events;
  table

let add_hit_rate_deltas buffer run_a run_b =
  let rates_a = hit_rates run_a and rates_b = hit_rates run_b in
  let describe table kind =
    match Hashtbl.find_opt table kind with
    | Some (hits, misses) when hits + misses > 0 ->
      Some (float_of_int hits /. float_of_int (hits + misses))
    | _ -> None
  in
  let line kind =
    match (describe rates_a kind, describe rates_b kind) with
    | None, None -> ()
    | rate_a, rate_b ->
      let show = function
        | Some r -> Printf.sprintf "%6.1f%%" (r *. 100.)
        | None -> "      -"
      in
      let delta =
        match (rate_a, rate_b) with
        | Some ra, Some rb -> Printf.sprintf "%+6.1fpp" ((rb -. ra) *. 100.)
        | _ -> "       -"
      in
      Buffer.add_string buffer
        (Printf.sprintf "  %-10s %s (a)  %s (b)  %s\n"
           (Trace_export.kind_to_string kind)
           (show rate_a) (show rate_b) delta)
  in
  Buffer.add_string buffer "\ncompute-table hit rates:\n";
  line Trace.Mat_vec;
  line Trace.Mat_mat

let render_traces ?(label_a = "A") ?(label_b = "B") (run_a : Trace_report.run)
    (run_b : Trace_report.run) =
  let buffer = Buffer.create 4096 in
  add_heading buffer label_a label_b;
  let show_meta label (run : Trace_report.run) =
    if run.meta <> [] then
      Buffer.add_string buffer
        (Printf.sprintf "meta (%s): %s\n" label
           (String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ v) run.meta)))
  in
  show_meta "a" run_a;
  show_meta "b" run_b;
  let trajectory_a = Trace_report.trajectory run_a in
  let trajectory_b = Trace_report.trajectory run_b in
  (match first_divergence trajectory_a trajectory_b with
  | None -> add_divergence buffer None
  | Some d ->
    let detail = gate_name_at run_a d.gate in
    add_divergence buffer (Some { d with detail }));
  add_peaks buffer trajectory_a trajectory_b;
  Buffer.add_string buffer "\nnode-trajectory overlay:\n";
  Buffer.add_string buffer (overlay_plot ~a:trajectory_a ~b:trajectory_b);
  add_phase_deltas buffer
    (Trace_report.phases run_a)
    (Trace_report.phases run_b);
  add_hit_rate_deltas buffer run_a run_b;
  Buffer.contents buffer

(* -- profile diff ---------------------------------------------------- *)

let profile_trajectory (run : Dd_profile.run) =
  List.map
    (fun (s : Dd_profile.snapshot) -> (s.gate_index, s.nodes))
    run.run_snapshots
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot_at (run : Dd_profile.run) gate =
  List.find_opt
    (fun (s : Dd_profile.snapshot) -> s.gate_index = gate)
    run.run_snapshots

let add_level_comparison buffer (snapshot_a : Dd_profile.snapshot)
    (snapshot_b : Dd_profile.snapshot) =
  Buffer.add_string buffer
    (Printf.sprintf "\nper-level breakdown at gate %d:\n"
       snapshot_a.gate_index);
  Buffer.add_string buffer
    (Printf.sprintf "%8s %10s %10s %10s %10s\n" "level" "nodes(a)"
       "nodes(b)" "edges(a)" "edges(b)");
  let find (s : Dd_profile.snapshot) level =
    List.find_opt (fun (l : Dd_profile.level) -> l.level = level) s.levels
  in
  let levels =
    List.sort_uniq
      (fun a b -> compare b a)
      (List.map (fun (l : Dd_profile.level) -> l.level) snapshot_a.levels
      @ List.map (fun (l : Dd_profile.level) -> l.level) snapshot_b.levels)
  in
  List.iter
    (fun level ->
      let nodes s =
        match find s level with
        | Some (l : Dd_profile.level) -> l.nodes
        | None -> 0
      in
      let edges s =
        match find s level with
        | Some (l : Dd_profile.level) -> l.edges
        | None -> 0
      in
      let marker =
        if nodes snapshot_a <> nodes snapshot_b then "  <-- diverges"
        else ""
      in
      Buffer.add_string buffer
        (Printf.sprintf "%8d %10d %10d %10d %10d%s\n" level
           (nodes snapshot_a) (nodes snapshot_b) (edges snapshot_a)
           (edges snapshot_b) marker))
    levels;
  Buffer.add_string buffer
    (Printf.sprintf
       "sharing: %.3f (a) vs %.3f (b); identity fraction: %.3f (a) vs %.3f \
        (b)\n"
       snapshot_a.sharing snapshot_b.sharing snapshot_a.identity_fraction
       snapshot_b.identity_fraction)

(* -- ledger diff ----------------------------------------------------- *)

let add_strategy_deltas buffer (totals_a : Ledger.totals)
    (totals_b : Ledger.totals) =
  Buffer.add_string buffer
    (Printf.sprintf "\n%-9s %9s %9s %12s %12s %9s\n" "strategy" "gates(a)"
       "gates(b)" "total(a,ms)" "total(b,ms)" "dt");
  let line name gates_a gates_b seconds_a seconds_b =
    Buffer.add_string buffer
      (Printf.sprintf "%-9s %9d %9d %12.3f %12.3f %8.1f%%\n" name gates_a
         gates_b (seconds_a *. 1e3) (seconds_b *. 1e3)
         (delta_percent seconds_a seconds_b))
  in
  line "mat-vec" totals_a.Ledger.mv_gates totals_b.Ledger.mv_gates
    (totals_a.Ledger.mv_build +. totals_a.Ledger.mv_apply)
    (totals_b.Ledger.mv_build +. totals_b.Ledger.mv_apply);
  line "mat-mat" totals_a.Ledger.mm_gates totals_b.Ledger.mm_gates
    (totals_a.Ledger.mm_build +. totals_a.Ledger.mm_apply)
    (totals_b.Ledger.mm_build +. totals_b.Ledger.mm_apply);
  line "fallback" totals_a.Ledger.fb_gates totals_b.Ledger.fb_gates
    (totals_a.Ledger.fb_build +. totals_a.Ledger.fb_apply)
    (totals_b.Ledger.fb_build +. totals_b.Ledger.fb_apply)

let render_ledgers ?(label_a = "A") ?(label_b = "B") (run_a : Ledger.run)
    (run_b : Ledger.run) =
  let buffer = Buffer.create 4096 in
  add_heading buffer label_a label_b;
  let show_meta label (run : Ledger.run) =
    if run.Ledger.run_meta <> [] then
      Buffer.add_string buffer
        (Printf.sprintf "meta (%s): %s\n" label
           (String.concat ", "
              (List.map (fun (k, v) -> k ^ "=" ^ v) run.Ledger.run_meta)))
  in
  show_meta "a" run_a;
  show_meta "b" run_b;
  Buffer.add_string buffer
    (Printf.sprintf "entries: %d (a) vs %d (b)\n"
       (List.length run_a.Ledger.run_entries)
       (List.length run_b.Ledger.run_entries));
  let totals_a = Ledger.totals run_a.Ledger.run_entries in
  let totals_b = Ledger.totals run_b.Ledger.run_entries in
  add_strategy_deltas buffer totals_a totals_b;
  let show_break_even label run =
    Buffer.add_string buffer
      (Printf.sprintf "break-even k (%s): %s\n" label
         (match Ledger.break_even run.Ledger.run_entries with
         | Some k -> string_of_int k
         | None -> "none"))
  in
  Buffer.add_string buffer "\n";
  show_break_even "a" run_a;
  show_break_even "b" run_b;
  (if totals_a.Ledger.peak_matrix >= 0 || totals_b.Ledger.peak_matrix >= 0
   then
     Buffer.add_string buffer
       (Printf.sprintf "peak matrix nodes: %d (a) vs %d (b)\n"
          totals_a.Ledger.peak_matrix totals_b.Ledger.peak_matrix));
  if totals_a.Ledger.peak_heap_words > 0 || totals_b.Ledger.peak_heap_words > 0
  then
    Buffer.add_string buffer
      (Printf.sprintf
         "peak memory: heap %d vs %d live words, tables %d vs %d bytes\n"
         totals_a.Ledger.peak_heap_words totals_b.Ledger.peak_heap_words
         totals_a.Ledger.peak_table_bytes totals_b.Ledger.peak_table_bytes);
  Buffer.contents buffer

let render_profiles ?(label_a = "A") ?(label_b = "B") (run_a : Dd_profile.run)
    (run_b : Dd_profile.run) =
  let buffer = Buffer.create 4096 in
  add_heading buffer label_a label_b;
  let trajectory_a = profile_trajectory run_a in
  let trajectory_b = profile_trajectory run_b in
  let divergence = first_divergence trajectory_a trajectory_b in
  add_divergence buffer divergence;
  add_peaks buffer trajectory_a trajectory_b;
  Buffer.add_string buffer "\nnode-trajectory overlay:\n";
  Buffer.add_string buffer (overlay_plot ~a:trajectory_a ~b:trajectory_b);
  (match divergence with
  | Some d -> (
    match (snapshot_at run_a d.gate, snapshot_at run_b d.gate) with
    | Some snapshot_a, Some snapshot_b ->
      add_level_comparison buffer snapshot_a snapshot_b
    | _ -> ())
  | None -> (
    (* no divergence: still compare the final structural snapshots *)
    match
      (List.rev run_a.run_snapshots, List.rev run_b.run_snapshots)
    with
    | last_a :: _, last_b :: _ -> add_level_comparison buffer last_a last_b
    | _ -> ()));
  Buffer.contents buffer
