type level = {
  level : int;
  qubit : int;  (* qubit hosted at this level; = level under identity order *)
  nodes : int;
  edges : int;
  zero_edges : int;
  weights : (int * int) list;
}

type snapshot = {
  gate_index : int;
  t : float;
  dd : string;
  nodes : int;
  edges : int;
  sharing : float;
  identity_fraction : float;
  levels : level list;
}

(* -- sinks ----------------------------------------------------------- *)

type sink = {
  mutable on : bool;
  cadence : int;
  max_snapshots : int;
  mutable last : int;  (* gate index of the last emission; -1 initially *)
  mutable count : int;
  mutable drop_count : int;
  mutable items : snapshot list;  (* reversed *)
}

let null =
  {
    on = false;
    cadence = max_int;
    max_snapshots = 0;
    last = -1;
    count = 0;
    drop_count = 0;
    items = [];
  }

let create ?(every = 1) ?(max_snapshots = 65536) () =
  if every < 1 then invalid_arg "Dd_profile.create: every must be >= 1";
  {
    on = true;
    cadence = every;
    max_snapshots;
    last = -1;
    count = 0;
    drop_count = 0;
    items = [];
  }

let is_on sink = sink.on
let every sink = sink.cadence

(* the disabled path must not allocate: one load, one branch *)
let due sink ~gate =
  sink.on && (sink.last < 0 || gate - sink.last >= sink.cadence)

let emit sink snapshot =
  if sink.on then begin
    sink.last <- snapshot.gate_index;
    if sink.count >= sink.max_snapshots then
      sink.drop_count <- sink.drop_count + 1
    else begin
      sink.items <- snapshot :: sink.items;
      sink.count <- sink.count + 1
    end
  end

let last_gate sink = sink.last
let snapshots sink = List.rev sink.items
let length sink = sink.count
let dropped sink = sink.drop_count

(* -- JSONL sidecar --------------------------------------------------- *)

let schema = "ddsim-profile"
let version = 1

let pairs_json pairs =
  "["
  ^ String.concat ","
      (List.map (fun (a, b) -> Printf.sprintf "[%d,%d]" a b) pairs)
  ^ "]"

let level_to_json l =
  Printf.sprintf
    "{\"level\":%d,\"qubit\":%d,\"nodes\":%d,\"edges\":%d,\"zero_edges\":%d,\"weights\":%s}"
    l.level l.qubit l.nodes l.edges l.zero_edges (pairs_json l.weights)

let snapshot_to_json s =
  Printf.sprintf
    "{\"gate\":%d,\"t\":%.9g,\"dd\":\"%s\",\"nodes\":%d,\"edges\":%d,\"sharing\":%.6f,\"identity_fraction\":%.6f,\"levels\":[%s]}"
    s.gate_index s.t (Json.escape s.dd) s.nodes s.edges s.sharing
    s.identity_fraction
    (String.concat "," (List.map level_to_json s.levels))

let meta_json meta =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (Json.escape k) (Json.escape v))
         meta)
  ^ "}"

let jsonl ?(meta = []) sink =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf
       "{\"schema\":\"%s\",\"version\":%d,\"every\":%d,\"snapshots\":%d,\"dropped\":%d,\"meta\":%s}\n"
       schema version sink.cadence sink.count sink.drop_count
       (meta_json meta));
  List.iter
    (fun s ->
      Buffer.add_string buffer (snapshot_to_json s);
      Buffer.add_char buffer '\n')
    (snapshots sink);
  (* checksum trailer: lets [ddsim fsck] detect truncation/garbling *)
  let body = Buffer.contents buffer in
  body ^ Safe_io.jsonl_trailer body

(* -- bulge detection -------------------------------------------------- *)

(* A "level bulge" — one level holding disproportionately many nodes — is
   the structural signature of a bad variable order (entangled qubits
   forced far apart).  Detected against the median per-level count so a
   uniformly large DD does not trigger; [min_nodes] keeps tiny DDs from
   tripping on noise.  Returns the worst bulging level. *)
let bulge ?(factor = 4.0) ?(min_nodes = 16) counts =
  let n = Array.length counts in
  if n = 0 then None
  else begin
    let sorted = Array.copy counts in
    Array.sort compare sorted;
    let median = float_of_int sorted.(n / 2) in
    let worst = ref (-1) in
    Array.iteri
      (fun level count ->
        if
          count >= min_nodes
          && float_of_int count > factor *. median
          && (!worst < 0 || count > counts.(!worst))
        then worst := level)
      counts;
    if !worst < 0 then None else Some !worst
  end

type run = {
  run_version : int;
  run_meta : (string * string) list;
  run_every : int;
  run_snapshots : snapshot list;
}

let located line_number message =
  failwith (Printf.sprintf "profile:%d: %s" line_number message)

let int_field json key ~default =
  match Json.member json key with
  | Some (Json.Num v) -> int_of_float v
  | _ -> default

let num_field json key ~default =
  match Json.member json key with Some (Json.Num v) -> v | _ -> default

let parse_pairs = function
  | Json.Arr entries ->
    List.map
      (function
        | Json.Arr [ Json.Num a; Json.Num b ] ->
          (int_of_float a, int_of_float b)
        | _ -> failwith "expected a [int,int] pair")
      entries
  | _ -> failwith "expected an array of pairs"

let parse_level json =
  let level = int_field json "level" ~default:(-1) in
  {
    level;
    (* absent in sidecars written before variable reordering existed,
       which could only mean the identity order *)
    qubit = int_field json "qubit" ~default:level;
    nodes = int_field json "nodes" ~default:0;
    edges = int_field json "edges" ~default:0;
    zero_edges = int_field json "zero_edges" ~default:0;
    weights =
      (match Json.member json "weights" with
      | Some w -> parse_pairs w
      | None -> []);
  }

let parse_snapshot json =
  {
    gate_index = int_field json "gate" ~default:(-1);
    t = num_field json "t" ~default:0.;
    dd =
      (match Json.member json "dd" with
      | Some (Json.Str s) -> s
      | _ -> "vector");
    nodes = int_field json "nodes" ~default:0;
    edges = int_field json "edges" ~default:0;
    sharing = num_field json "sharing" ~default:0.;
    identity_fraction = num_field json "identity_fraction" ~default:0.;
    levels =
      (match Json.member json "levels" with
      | Some (Json.Arr ls) -> List.map parse_level ls
      | _ -> []);
  }

let parse_jsonl text =
  (* newer writers append a checksum trailer line; verify it when present
     (older files without one still parse) *)
  let body, trailer = Safe_io.split_jsonl_trailer text in
  (match trailer with
  | Some expected when Safe_io.checksum body <> expected ->
    failwith "profile: checksum mismatch (file truncated or corrupted)"
  | _ -> ());
  let lines =
    String.split_on_char '\n' body
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter (fun (_, line) -> String.trim line <> "")
  in
  match lines with
  | [] -> failwith "profile: empty file"
  | (header_line, header_text) :: rest ->
    let header =
      try Json.parse header_text
      with Failure message -> located header_line message
    in
    (match Json.member header "schema" with
    | Some (Json.Str s) when s = schema -> ()
    | Some (Json.Str s) ->
      located header_line (Printf.sprintf "unexpected schema %S" s)
    | _ -> located header_line "header line is missing \"schema\"");
    let run_version =
      match Json.member header "version" with
      | Some (Json.Num v) -> int_of_float v
      | _ -> located header_line "header line is missing \"version\""
    in
    if run_version <> version then
      located header_line
        (Printf.sprintf "unsupported schema version %d (expected %d)"
           run_version version);
    let run_meta =
      match Json.member header "meta" with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) ->
            match v with Json.Str s -> Some (k, s) | _ -> None)
          fields
      | _ -> []
    in
    let run_every = int_field header "every" ~default:1 in
    let run_snapshots =
      List.map
        (fun (line_number, line) ->
          match parse_snapshot (Json.parse line) with
          | snapshot -> snapshot
          | exception Failure message -> located line_number message)
        rest
    in
    { run_version; run_meta; run_every; run_snapshots }
