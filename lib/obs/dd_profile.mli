(** Structural snapshots of a decision diagram — the *why* behind a node
    count.

    The paper's cost model (Section III) is structural: multiplication
    effort follows the number of distinct sub-diagrams per level, how much
    they are shared, and how the edge weights spread — not the [2^n]
    width.  A scalar node count (what {!Trace} records per gate) says
    *when* a state DD explodes; a {!snapshot} says *where*: per-level node
    and edge counts, log2 histograms of edge-weight magnitudes, the
    subtree-sharing factor, and the fraction of structurally trivial
    ("identity-region") nodes.

    This module owns the data model, the bounded in-memory {!sink}
    collecting snapshots at a gate cadence, and the versioned JSONL
    sidecar format ([ddsim-profile] v1) written next to a trace.  The
    walks that actually *produce* snapshots live in [Dd.Profile] (they
    need node access); the engine emits through a sink so that a disabled
    profiler is a single load-and-branch with zero allocation (asserted by
    the test suite, like the disabled-trace guarantee). *)

type level = {
  level : int;  (** DD level, counted from the terminal ([0] adjacent) *)
  qubit : int;
      (** qubit hosted at this level under the run's variable order;
          equals [level] under the identity order (and when parsing
          sidecars written before reordering existed) *)
  nodes : int;  (** distinct nodes at this level *)
  edges : int;  (** non-zero out-edges leaving those nodes *)
  zero_edges : int;  (** zero stubs leaving those nodes *)
  weights : (int * int) list;
      (** sparse log2 histogram of out-edge weight magnitudes: pairs
          [(exponent, count)] with {!Metrics.bucket_exponent} semantics,
          ascending by exponent *)
}

type snapshot = {
  gate_index : int;  (** flattened gate index the DD reflects; [-1] n/a *)
  t : float;  (** seconds since the profile epoch; [0.] when untimed *)
  dd : string;  (** ["vector"] or ["matrix"] *)
  nodes : int;  (** total distinct non-terminal nodes *)
  edges : int;  (** total non-zero edges (including the root edge) *)
  sharing : float;
      (** mean in-degree of non-terminal nodes: non-zero edges targeting
          non-terminals (root included) divided by [nodes]; [1.] means a
          tree, higher means re-use *)
  identity_fraction : float;
      (** fraction of nodes that are structurally trivial: for a vector
          DD, nodes whose low and high edges are equal (an unentangled,
          unbiased qubit); for a matrix DD, nodes acting as the identity
          on their level (diagonal quadrants equal, off-diagonals zero) *)
  levels : level list;  (** descending by level (root first) *)
}

(** {1 Sinks}

    A sink collects snapshots at a gate cadence.  Engines hold {!null}
    (disabled, records nothing, costs one branch per {!due} probe) until a
    real sink is attached. *)

type sink

val null : sink
(** The shared disabled sink: {!is_on} is [false], {!due} is always
    [false], {!emit} drops. *)

val create : ?every:int -> ?max_snapshots:int -> unit -> sink
(** A fresh enabled sink snapshotting every [every] gates (default [1]).
    [max_snapshots] (default [65536]) bounds memory; excess snapshots are
    counted in {!dropped} instead of stored. *)

val is_on : sink -> bool

val every : sink -> int

val due : sink -> gate:int -> bool
(** [true] when the sink is enabled and at least [every] gates landed
    since the last emission (or nothing was emitted yet).  First action is
    the enabled check; no argument allocates, so a disabled probe
    allocates nothing. *)

val emit : sink -> snapshot -> unit
(** Record a snapshot and advance the cadence cursor to its
    [gate_index]. *)

val last_gate : sink -> int
(** Gate index of the last emitted snapshot; [-1] before the first. *)

val snapshots : sink -> snapshot list
(** In emission order. *)

val length : sink -> int
val dropped : sink -> int

(** {1 JSONL sidecar} *)

val schema : string
(** ["ddsim-profile"]. *)

val version : int
(** Current sidecar schema version (1). *)

val snapshot_to_json : snapshot -> string
(** One JSON object, no trailing newline. *)

val jsonl : ?meta:(string * string) list -> sink -> string
(** Header line carrying [schema]/[version]/[every]/[meta], then one line
    per snapshot. *)

val bulge : ?factor:float -> ?min_nodes:int -> int array -> int option
(** [bulge counts] — the worst "level bulge" in a per-level node-count
    array (index = level), if any: a level whose count exceeds [factor]
    (default [4.0]) times the median count and is at least [min_nodes]
    (default [16]).  A bulge is the structural signature of a bad
    variable order; the engine's adaptive reorder policy uses this as its
    sifting trigger. *)

type run = {
  run_version : int;
  run_meta : (string * string) list;
  run_every : int;
  run_snapshots : snapshot list;
}

val parse_jsonl : string -> run
(** Raises [Failure] with a line-located message on malformed JSON, a
    missing or foreign [schema], or an unsupported [version]. *)
