type point =
  | Weight_flip
  | Table_poison
  | Table_skip_sweep
  | Unique_drop
  | Forced_gc
  | Alloc_fail
  | Io_truncate
  | Io_garble
  | Clock_skew

type trigger = Always | After of int | Probability of float

type slot = {
  spoint : point;
  trigger : trigger;
  mutable probes : int;  (* fire () calls for this point under this plan *)
  mutable fired : int;
}

type plan = { slots : slot list; mutable rng : int64 }

(* one global cell: the disarmed probe is a load and a branch *)
let state : plan option ref = ref None

let armed () = Option.is_some !state

let arm ?(seed = 0) points =
  let slots =
    List.map
      (fun (spoint, trigger) ->
        (match trigger with
        | After n when n < 1 ->
          invalid_arg "Fault.arm: After n needs n >= 1"
        | Probability p when not (p >= 0. && p <= 1.) ->
          invalid_arg "Fault.arm: Probability p needs p in [0, 1]"
        | _ -> ());
        { spoint; trigger; probes = 0; fired = 0 })
      points
  in
  (* golden-ratio offset keeps seed 0 from being the all-zero state *)
  state :=
    Some
      {
        slots;
        rng = Int64.add (Int64.of_int seed) 0x9E3779B97F4A7C15L;
      }

let disarm () = state := None

(* splitmix64: deterministic, stateless-per-step, good enough to spread a
   probability trigger over a run *)
let next_unit plan =
  let open Int64 in
  plan.rng <- add plan.rng 0x9E3779B97F4A7C15L;
  let z = plan.rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_float (shift_right_logical z 11) /. 9007199254740992.

let fire point =
  match !state with
  | None -> false
  | Some plan -> (
    match List.find_opt (fun s -> s.spoint = point) plan.slots with
    | None -> false
    | Some slot ->
      slot.probes <- slot.probes + 1;
      let hit =
        match slot.trigger with
        | Always -> true
        | After n -> slot.probes = n
        | Probability p -> next_unit plan < p
      in
      if hit then slot.fired <- slot.fired + 1;
      hit)

let fired_count point =
  match !state with
  | None -> 0
  | Some plan -> (
    match List.find_opt (fun s -> s.spoint = point) plan.slots with
    | None -> 0
    | Some slot -> slot.fired)

let flip_float ?(bit = 51) x =
  if bit < 0 || bit > 51 then invalid_arg "Fault.flip_float: bit in [0, 51]";
  Int64.float_of_bits
    (Int64.logxor (Int64.bits_of_float x) (Int64.shift_left 1L bit))

let point_to_string = function
  | Weight_flip -> "weight-flip"
  | Table_poison -> "table-poison"
  | Table_skip_sweep -> "table-skip-sweep"
  | Unique_drop -> "unique-drop"
  | Forced_gc -> "forced-gc"
  | Alloc_fail -> "alloc-fail"
  | Io_truncate -> "io-truncate"
  | Io_garble -> "io-garble"
  | Clock_skew -> "clock-skew"
