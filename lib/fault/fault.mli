(** Deterministic, seed-driven fault injection.

    The runtime carries no-op injection points ({!fire}) at the places a
    DD simulation can realistically be corrupted: weight interning, the
    lossy compute tables, garbage collection, node allocation, artifact
    I/O and the wall clock.  Disarmed — the default, and the only state
    production code ever runs in — a probe is one load of a global ref
    and one branch, nothing allocated.  Tests {!arm} a plan, run the
    scenario, and assert that the auditor / checksum layer detects the
    corruption or that the runtime recovers bitwise-correctly.

    The subsystem is deliberately global (like the GC alarm it emulates):
    hooks sit on hot paths shared by every context, and threading a
    handle through them would make the disabled path pay for the
    plumbing. *)

type point =
  | Weight_flip  (** flip a mantissa bit while interning an edge weight *)
  | Table_poison  (** a compute-table hit returns the dummy value *)
  | Table_skip_sweep
      (** GC skips the compute-table sweeps, leaving stale entries that
          resolve to freed nodes *)
  | Unique_drop
      (** GC drops one reachable node from a unique table, so a live DD
          node is no longer the unique-table representative *)
  | Forced_gc  (** force a garbage collection at an adversarial point *)
  | Alloc_fail  (** node allocation raises [Out_of_memory] *)
  | Io_truncate  (** a sidecar/checkpoint write drops its second half *)
  | Io_garble  (** a sidecar/checkpoint write flips one byte *)
  | Clock_skew  (** the wall clock reads an hour in the past *)

type trigger =
  | Always  (** fire on every probe *)
  | After of int
      (** fire exactly once, on the [n]-th probe of this point (1-based) *)
  | Probability of float  (** fire each probe with probability [p] *)

val arm : ?seed:int -> (point * trigger) list -> unit
(** Install a fault plan, replacing any previous one.  [seed] (default 0)
    drives the [Probability] triggers through a splitmix64 stream, so a
    seeded plan replays identically. *)

val disarm : unit -> unit
(** Remove the plan; every probe is a no-op again.  Tests must disarm in
    a [Fun.protect] finally so a failing assertion cannot leak faults
    into the next test. *)

val armed : unit -> bool

val fire : point -> bool
(** The injection probe.  Disarmed: one load, one branch, false.  Armed:
    true when the plan's trigger for [point] decides to fire. *)

val fired_count : point -> int
(** Number of times [point] actually fired under the current plan
    (0 when disarmed). *)

val flip_float : ?bit:int -> float -> float
(** Flip one mantissa bit of an IEEE double ([bit] 0–51, default 51 —
    the most significant, a ~25–50% relative error). *)

val point_to_string : point -> string
