open Dd_complex

type kind =
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx
  | Sxdg
  | Sy
  | Sydg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float
  | Custom of { matrix : Cnum.t array; label : string }

type control = { qubit : int; positive : bool }
type t = { kind : kind; target : int; controls : control list }

let make ?(controls = []) kind target = { kind; target; controls }

let inv_sqrt2 = 1. /. sqrt 2.

let c re im = Cnum.make re im
let r x = Cnum.of_float x

let build_matrix = function
  | X -> [| Cnum.zero; Cnum.one; Cnum.one; Cnum.zero |]
  | Y -> [| Cnum.zero; c 0. (-1.); c 0. 1.; Cnum.zero |]
  | Z -> [| Cnum.one; Cnum.zero; Cnum.zero; r (-1.) |]
  | H -> [| r inv_sqrt2; r inv_sqrt2; r inv_sqrt2; r (-.inv_sqrt2) |]
  | S -> [| Cnum.one; Cnum.zero; Cnum.zero; c 0. 1. |]
  | Sdg -> [| Cnum.one; Cnum.zero; Cnum.zero; c 0. (-1.) |]
  | T -> [| Cnum.one; Cnum.zero; Cnum.zero; Cnum.of_polar 1. (Float.pi /. 4.) |]
  | Tdg ->
    [| Cnum.one; Cnum.zero; Cnum.zero; Cnum.of_polar 1. (-.Float.pi /. 4.) |]
  | Sx -> [| c 0.5 0.5; c 0.5 (-0.5); c 0.5 (-0.5); c 0.5 0.5 |]
  | Sxdg -> [| c 0.5 (-0.5); c 0.5 0.5; c 0.5 0.5; c 0.5 (-0.5) |]
  | Sy -> [| c 0.5 0.5; c (-0.5) (-0.5); c 0.5 0.5; c 0.5 0.5 |]
  | Sydg -> [| c 0.5 (-0.5); c 0.5 (-0.5); c (-0.5) 0.5; c 0.5 (-0.5) |]
  | Rx theta ->
    let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
    [| r ct; c 0. (-.st); c 0. (-.st); r ct |]
  | Ry theta ->
    let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
    [| r ct; r (-.st); r st; r ct |]
  | Rz theta ->
    [|
      Cnum.of_polar 1. (-.theta /. 2.); Cnum.zero; Cnum.zero;
      Cnum.of_polar 1. (theta /. 2.);
    |]
  | Phase theta ->
    [| Cnum.one; Cnum.zero; Cnum.zero; Cnum.of_polar 1. theta |]
  | Custom { matrix; label = _ } -> matrix

(* Per-kind memoisation of the 2x2 matrix, so the hot apply path does not
   re-allocate (and re-evaluate the trigonometry of) the same four complex
   numbers on every application.  Fixed kinds are keyed by a constructor
   index, parameterised rotations by (index, angle bits) — bit-exact, so
   two angles that differ in the last ulp stay distinct.  Custom gates
   already carry their array and bypass the cache (their label is not a
   trustworthy identity).  Callers must treat the result as read-only;
   every in-repo consumer copies before mutating.  The cache is reset if a
   parameter sweep ever accumulates more distinct angles than
   [matrix_cache_limit]. *)
type matrix_key = Fixed of int | Angle of int * int64

let matrix_key = function
  | X -> Some (Fixed 0)
  | Y -> Some (Fixed 1)
  | Z -> Some (Fixed 2)
  | H -> Some (Fixed 3)
  | S -> Some (Fixed 4)
  | Sdg -> Some (Fixed 5)
  | T -> Some (Fixed 6)
  | Tdg -> Some (Fixed 7)
  | Sx -> Some (Fixed 8)
  | Sxdg -> Some (Fixed 9)
  | Sy -> Some (Fixed 10)
  | Sydg -> Some (Fixed 11)
  | Rx theta -> Some (Angle (12, Int64.bits_of_float theta))
  | Ry theta -> Some (Angle (13, Int64.bits_of_float theta))
  | Rz theta -> Some (Angle (14, Int64.bits_of_float theta))
  | Phase theta -> Some (Angle (15, Int64.bits_of_float theta))
  | Custom _ -> None

let matrix_cache : (matrix_key, Cnum.t array) Hashtbl.t = Hashtbl.create 64
let matrix_cache_limit = 4096

let matrix kind =
  match matrix_key kind with
  | None -> build_matrix kind
  | Some key -> (
    match Hashtbl.find_opt matrix_cache key with
    | Some m -> m
    | None ->
      if Hashtbl.length matrix_cache >= matrix_cache_limit then
        Hashtbl.reset matrix_cache;
      let m = build_matrix kind in
      Hashtbl.add matrix_cache key m;
      m)

let adjoint_kind = function
  | X -> X
  | Y -> Y
  | Z -> Z
  | H -> H
  | S -> Sdg
  | Sdg -> S
  | T -> Tdg
  | Tdg -> T
  | Sx -> Sxdg
  | Sxdg -> Sx
  | Sy -> Sydg
  | Sydg -> Sy
  | Rx theta -> Rx (-.theta)
  | Ry theta -> Ry (-.theta)
  | Rz theta -> Rz (-.theta)
  | Phase theta -> Phase (-.theta)
  | Custom { matrix = m; label } ->
    Custom
      {
        matrix =
          [|
            Cnum.conj m.(0); Cnum.conj m.(2); Cnum.conj m.(1); Cnum.conj m.(3);
          |];
        label = label ^ "_dg";
      }

let adjoint gate = { gate with kind = adjoint_kind gate.kind }

let qubits gate = gate.target :: List.map (fun ctl -> ctl.qubit) gate.controls

let max_qubit gate = List.fold_left max gate.target (List.tl (qubits gate))

let kind_name = function
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Sx -> "sx"
  | Sxdg -> "sxdg"
  | Sy -> "sy"
  | Sydg -> "sydg"
  | Rx theta -> Printf.sprintf "rx(%.6g)" theta
  | Ry theta -> Printf.sprintf "ry(%.6g)" theta
  | Rz theta -> Printf.sprintf "rz(%.6g)" theta
  | Phase theta -> Printf.sprintf "p(%.6g)" theta
  | Custom { label; matrix = _ } -> label

let name gate =
  let prefix =
    String.concat ""
      (List.map (fun ctl -> if ctl.positive then "c" else "n") gate.controls)
  in
  prefix ^ kind_name gate.kind

let ctrl qubit = { qubit; positive = true }
let nctrl qubit = { qubit; positive = false }

let x target = make X target
let y target = make Y target
let z target = make Z target
let h target = make H target
let s target = make S target
let sdg target = make Sdg target
let t_gate target = make T target
let tdg target = make Tdg target
let sx target = make Sx target
let sy target = make Sy target
let rx theta target = make (Rx theta) target
let ry theta target = make (Ry theta) target
let rz theta target = make (Rz theta) target
let phase theta target = make (Phase theta) target
let cx control target = make ~controls:[ ctrl control ] X target
let cz control target = make ~controls:[ ctrl control ] Z target

let cphase theta control target =
  make ~controls:[ ctrl control ] (Phase theta) target

let ccx control1 control2 target =
  make ~controls:[ ctrl control1; ctrl control2 ] X target

let mcz controls target = make ~controls:(List.map ctrl controls) Z target
let mcx controls target = make ~controls:(List.map ctrl controls) X target

let pp fmt gate =
  Format.fprintf fmt "%s %s" (name gate)
    (String.concat ","
       (List.map string_of_int (qubits gate)))
