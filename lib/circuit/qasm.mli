(** OpenQASM 2.0 subset: export of circuits whose gates have a standard
    spelling, and a parser for the common gate set (enough to load external
    benchmark circuits).

    Export lowers negative controls by conjugating the control qubit with
    [x] gates.  Gates with no QASM 2.0 spelling (e.g. multi-controlled
    rotations with three or more controls, or the non-standard [sy]) raise
    {!Unsupported}. *)

exception Unsupported of string

exception Parse_error of { line : int; message : string }
(** Malformed input.  [line] locates the offending token (for a truncated
    file, the last line of the source); [message] names what was expected
    and the token actually found.  Out-of-range qubit indices (against the
    declared [qreg] size), non-integer indices, duplicate qubit arguments
    to one gate and degenerate register sizes are all rejected here, at
    parse time — [of_string] raises [Parse_error] on malformed input,
    never a bare [Invalid_argument] from the circuit layer (the QASM fuzz
    suite enforces this). *)

val to_string : Circuit.t -> string
(** OpenQASM 2.0 source for the circuit (repeat blocks are unrolled). *)

val of_string : ?name:string -> string -> Circuit.t
(** Parse OpenQASM 2.0 source.  Supports one [qreg]; [creg], [measure],
    [barrier] and comments are ignored; gate parameters may use [pi],
    numeric literals, parentheses and [+ - * /]. *)
