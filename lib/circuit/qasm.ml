exception Unsupported of string
exception Parse_error of { line : int; message : string }

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let base_spelling (kind : Gate.kind) =
  match kind with
  | Gate.X -> ("x", [])
  | Gate.Y -> ("y", [])
  | Gate.Z -> ("z", [])
  | Gate.H -> ("h", [])
  | Gate.S -> ("s", [])
  | Gate.Sdg -> ("sdg", [])
  | Gate.T -> ("t", [])
  | Gate.Tdg -> ("tdg", [])
  | Gate.Sx -> ("sx", [])
  | Gate.Sxdg -> ("sxdg", [])
  | Gate.Sy -> raise (Unsupported "sy has no OpenQASM 2.0 spelling")
  | Gate.Sydg -> raise (Unsupported "sydg has no OpenQASM 2.0 spelling")
  | Gate.Rx theta -> ("rx", [ theta ])
  | Gate.Ry theta -> ("ry", [ theta ])
  | Gate.Rz theta -> ("rz", [ theta ])
  | Gate.Phase theta -> ("p", [ theta ])
  | Gate.Custom { label; matrix = _ } ->
    raise (Unsupported ("custom gate " ^ label))

let controlled_spelling (kind : Gate.kind) n_controls =
  match (kind, n_controls) with
  | Gate.X, 1 -> Some "cx"
  | Gate.Y, 1 -> Some "cy"
  | Gate.Z, 1 -> Some "cz"
  | Gate.H, 1 -> Some "ch"
  | Gate.Rz _, 1 -> Some "crz"
  | Gate.Phase _, 1 -> Some "cp"
  | Gate.X, 2 -> Some "ccx"
  | _, _ -> None

let params_string = function
  | [] -> ""
  | ps ->
    "("
    ^ String.concat "," (List.map (fun p -> Printf.sprintf "%.12g" p) ps)
    ^ ")"

let emit_gate buf (gate : Gate.t) =
  let q i = Printf.sprintf "q[%d]" i in
  let negatives =
    List.filter_map
      (fun (c : Gate.control) -> if c.positive then None else Some c.qubit)
      gate.controls
  in
  List.iter (fun i -> Buffer.add_string buf ("x " ^ q i ^ ";\n")) negatives;
  let control_qubits = List.map (fun (c : Gate.control) -> c.qubit) gate.controls in
  let base, params = base_spelling gate.kind in
  let line =
    match control_qubits with
    | [] -> Printf.sprintf "%s%s %s;" base (params_string params) (q gate.target)
    | _ -> (
      match controlled_spelling gate.kind (List.length control_qubits) with
      | Some spelled ->
        Printf.sprintf "%s%s %s;" spelled (params_string params)
          (String.concat ","
             (List.map q control_qubits @ [ q gate.target ]))
      | None ->
        raise
          (Unsupported
             (Printf.sprintf "%s with %d controls" base
                (List.length control_qubits))))
  in
  Buffer.add_string buf line;
  Buffer.add_char buf '\n';
  List.iter (fun i -> Buffer.add_string buf ("x " ^ q i ^ ";\n")) negatives

let to_string circuit =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "OPENQASM 2.0;\n";
  Buffer.add_string buf "include \"qelib1.inc\";\n";
  Buffer.add_string buf
    (Printf.sprintf "qreg q[%d];\n" circuit.Circuit.qubits);
  List.iter (emit_gate buf) (Circuit.flatten circuit);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Import                                                              *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Semicolon
  | Plus
  | Minus
  | Star
  | Slash
  | Arrow
  | Str of string

let tokenize source =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length source in
  let fail message = raise (Parse_error { line = !line; message }) in
  let i = ref 0 in
  let push t = tokens := (t, !line) :: !tokens in
  while !i < n do
    let c = source.[!i] in
    (match c with
    | '\n' ->
      incr line;
      incr i
    | ' ' | '\t' | '\r' -> incr i
    | '/' when !i + 1 < n && source.[!i + 1] = '/' ->
      while !i < n && source.[!i] <> '\n' do
        incr i
      done
    | '(' -> push Lparen; incr i
    | ')' -> push Rparen; incr i
    | '[' -> push Lbracket; incr i
    | ']' -> push Rbracket; incr i
    | ',' -> push Comma; incr i
    | ';' -> push Semicolon; incr i
    | '+' -> push Plus; incr i
    | '*' -> push Star; incr i
    | '/' -> push Slash; incr i
    | '-' ->
      if !i + 1 < n && source.[!i + 1] = '>' then begin
        push Arrow;
        i := !i + 2
      end
      else begin
        push Minus;
        incr i
      end
    | '"' ->
      let start = !i + 1 in
      let stop = ref start in
      while !stop < n && source.[!stop] <> '"' do
        incr stop
      done;
      if !stop >= n then fail "unterminated string";
      push (Str (String.sub source start (!stop - start)));
      i := !stop + 1
    | '0' .. '9' | '.' ->
      let start = !i in
      while
        !i < n
        && (match source.[!i] with
           | '0' .. '9' | '.' | 'e' | 'E' -> true
           | '+' | '-' ->
             !i > start
             && (source.[!i - 1] = 'e' || source.[!i - 1] = 'E')
           | _ -> false)
      do
        incr i
      done;
      let text = String.sub source start (!i - start) in
      (match float_of_string_opt text with
      | Some v -> push (Number v)
      | None -> fail ("bad number: " ^ text))
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
      let start = !i in
      while
        !i < n
        && (match source.[!i] with
           | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
           | _ -> false)
      do
        incr i
      done;
      push (Ident (String.sub source start (!i - start)))
    | _ -> fail (Printf.sprintf "unexpected character %C" c));
  done;
  List.rev !tokens

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Number v -> Printf.sprintf "number %g" v
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Comma -> "','"
  | Semicolon -> "';'"
  | Plus -> "'+'"
  | Minus -> "'-'"
  | Star -> "'*'"
  | Slash -> "'/'"
  | Arrow -> "'->'"
  | Str s -> Printf.sprintf "string %S" s

(* [last_line] remembers the line of the most recently consumed token, so
   an error at end of input (truncated file) is reported at the final line
   of the source rather than at a meaningless line 0. *)
type parser_state = {
  mutable tokens : (token * int) list;
  mutable last_line : int;
}

let peek state =
  match state.tokens with [] -> None | (t, _) :: _ -> Some t

let current_line state =
  match state.tokens with
  | [] -> state.last_line
  | (_, l) :: _ -> l

let fail state message =
  raise (Parse_error { line = current_line state; message })

let advance state =
  match state.tokens with
  | [] -> fail state "unexpected end of input"
  | (t, l) :: rest ->
    state.tokens <- rest;
    state.last_line <- l;
    t

let expect state token message =
  match state.tokens with
  | [] -> fail state (message ^ " (got end of input)")
  | _ ->
    let got = advance state in
    if got <> token then
      fail state (Printf.sprintf "%s (got %s)" message (token_to_string got))

(* expression := term (('+'|'-') term)*
   term := factor (('*'|'/') factor)*
   factor := number | pi | '-' factor | '(' expression ')' *)
let rec parse_expression state =
  let acc = ref (parse_term state) in
  let rec loop () =
    match peek state with
    | Some Plus ->
      ignore (advance state);
      acc := !acc +. parse_term state;
      loop ()
    | Some Minus ->
      ignore (advance state);
      acc := !acc -. parse_term state;
      loop ()
    | Some
        ( Ident _ | Number _ | Lparen | Rparen | Lbracket | Rbracket | Comma
        | Semicolon | Star | Slash | Arrow | Str _ )
    | None ->
      ()
  in
  loop ();
  !acc

and parse_term state =
  let acc = ref (parse_factor state) in
  let rec loop () =
    match peek state with
    | Some Star ->
      ignore (advance state);
      acc := !acc *. parse_factor state;
      loop ()
    | Some Slash ->
      ignore (advance state);
      acc := !acc /. parse_factor state;
      loop ()
    | Some
        ( Ident _ | Number _ | Lparen | Rparen | Lbracket | Rbracket | Comma
        | Semicolon | Plus | Minus | Arrow | Str _ )
    | None ->
      ()
  in
  loop ();
  !acc

and parse_factor state =
  match advance state with
  | Number v -> v
  | Ident "pi" -> Float.pi
  | Minus -> -.parse_factor state
  | Lparen ->
    let v = parse_expression state in
    expect state Rparen "expected )";
    v
  | Ident other -> fail state ("unknown identifier in expression: " ^ other)
  | Plus | Star | Slash | Rparen | Lbracket | Rbracket | Comma | Semicolon
  | Arrow | Str _ ->
    fail state "malformed expression"

let parse_qubit_ref state register ~size =
  match advance state with
  | Ident name when name = register ->
    expect state Lbracket "expected [";
    let index =
      match advance state with
      | Number v when Float.is_integer v -> int_of_float v
      | Number v ->
        fail state (Printf.sprintf "qubit index %g is not an integer" v)
      | other ->
        fail state ("expected qubit index, got " ^ token_to_string other)
    in
    expect state Rbracket "expected ]";
    if index < 0 || index >= size then
      fail state
        (Printf.sprintf
           "qubit index %d out of range (register %s has %d qubits)" index
           register size);
    index
  | Ident other -> fail state ("unknown register: " ^ other)
  | other ->
    fail state ("expected qubit reference, got " ^ token_to_string other)

let skip_statement state =
  let rec loop () =
    match advance state with
    | Semicolon -> ()
    | Ident _ | Number _ | Lparen | Rparen | Lbracket | Rbracket | Comma
    | Plus | Minus | Star | Slash | Arrow | Str _ ->
      loop ()
  in
  loop ()

(* OpenQASM u3(theta, phi, lambda) as an explicit 2x2 matrix *)
let u3_kind theta phi lambda =
  let open Dd_complex in
  let ct = cos (theta /. 2.) and st = sin (theta /. 2.) in
  Gate.Custom
    {
      matrix =
        [|
          Cnum.of_float ct;
          Cnum.of_polar (-.st) lambda;
          Cnum.of_polar st phi;
          Cnum.of_polar ct (phi +. lambda);
        |];
      label = Printf.sprintf "u3(%.6g,%.6g,%.6g)" theta phi lambda;
    }

let gate_of_spelling state spelling params qubits =
  let p i = List.nth params i in
  let q i = List.nth qubits i in
  let need np nq =
    if List.length params <> np || List.length qubits <> nq then
      fail state ("bad arity for " ^ spelling)
  in
  match spelling with
  | "x" -> need 0 1; [ Gate.x (q 0) ]
  | "y" -> need 0 1; [ Gate.y (q 0) ]
  | "z" -> need 0 1; [ Gate.z (q 0) ]
  | "h" -> need 0 1; [ Gate.h (q 0) ]
  | "s" -> need 0 1; [ Gate.s (q 0) ]
  | "sdg" -> need 0 1; [ Gate.sdg (q 0) ]
  | "t" -> need 0 1; [ Gate.t_gate (q 0) ]
  | "tdg" -> need 0 1; [ Gate.tdg (q 0) ]
  | "sx" -> need 0 1; [ Gate.sx (q 0) ]
  | "sxdg" -> need 0 1; [ Gate.make Gate.Sxdg (q 0) ]
  | "id" -> need 0 1; []
  | "rx" -> need 1 1; [ Gate.rx (p 0) (q 0) ]
  | "ry" -> need 1 1; [ Gate.ry (p 0) (q 0) ]
  | "rz" -> need 1 1; [ Gate.rz (p 0) (q 0) ]
  | "p" | "u1" -> need 1 1; [ Gate.phase (p 0) (q 0) ]
  | "cx" -> need 0 2; [ Gate.cx (q 0) (q 1) ]
  | "cy" -> need 0 2; [ Gate.make ~controls:[ Gate.ctrl (q 0) ] Gate.Y (q 1) ]
  | "cz" -> need 0 2; [ Gate.cz (q 0) (q 1) ]
  | "ch" -> need 0 2; [ Gate.make ~controls:[ Gate.ctrl (q 0) ] Gate.H (q 1) ]
  | "crz" ->
    need 1 2;
    [ Gate.make ~controls:[ Gate.ctrl (q 0) ] (Gate.Rz (p 0)) (q 1) ]
  | "cp" | "cu1" -> need 1 2; [ Gate.cphase (p 0) (q 0) (q 1) ]
  | "ccx" -> need 0 3; [ Gate.ccx (q 0) (q 1) (q 2) ]
  | "swap" -> need 0 2; [ Gate.cx (q 0) (q 1); Gate.cx (q 1) (q 0); Gate.cx (q 0) (q 1) ]
  | "cswap" ->
    need 0 3;
    [ Gate.cx (q 2) (q 1); Gate.ccx (q 0) (q 1) (q 2); Gate.cx (q 2) (q 1) ]
  | "crx" ->
    need 1 2;
    [ Gate.make ~controls:[ Gate.ctrl (q 0) ] (Gate.Rx (p 0)) (q 1) ]
  | "cry" ->
    need 1 2;
    [ Gate.make ~controls:[ Gate.ctrl (q 0) ] (Gate.Ry (p 0)) (q 1) ]
  | "rzz" ->
    need 1 2;
    [ Gate.cx (q 0) (q 1); Gate.rz (p 0) (q 1); Gate.cx (q 0) (q 1) ]
  | "u2" ->
    need 2 1;
    [ Gate.make (u3_kind (Float.pi /. 2.) (p 0) (p 1)) (q 0) ]
  | "u3" | "u" ->
    need 3 1;
    [ Gate.make (u3_kind (p 0) (p 1) (p 2)) (q 0) ]
  | other -> fail state ("unsupported gate: " ^ other)

let of_string ?(name = "qasm") source =
  let state = { tokens = tokenize source; last_line = 1 } in
  let register = ref None in
  let qubits = ref 0 in
  let gates = ref [] in
  let rec loop () =
    match peek state with
    | None -> ()
    | Some (Ident "OPENQASM") | Some (Ident "include") | Some (Ident "creg")
    | Some (Ident "barrier") | Some (Ident "measure") ->
      skip_statement state;
      loop ()
    | Some (Ident "qreg") ->
      ignore (advance state);
      (match advance state with
      | Ident reg_name ->
        if !register <> None then fail state "multiple qreg declarations";
        register := Some reg_name;
        expect state Lbracket "expected [";
        (match advance state with
        | Number v when Float.is_integer v && v >= 1. ->
          qubits := int_of_float v
        | Number v ->
          fail state
            (Printf.sprintf "register size %g is not a positive integer" v)
        | other ->
          fail state ("expected register size, got " ^ token_to_string other));
        expect state Rbracket "expected ]";
        expect state Semicolon "expected ;"
      | other ->
        fail state ("expected register name, got " ^ token_to_string other));
      loop ()
    | Some (Ident spelling) ->
      ignore (advance state);
      let reg =
        match !register with
        | Some r -> r
        | None -> fail state "gate before qreg declaration"
      in
      let params =
        match peek state with
        | Some Lparen ->
          ignore (advance state);
          let rec collect acc =
            let v = parse_expression state in
            match advance state with
            | Comma -> collect (v :: acc)
            | Rparen -> List.rev (v :: acc)
            | Ident _ | Number _ | Lparen | Lbracket | Rbracket | Semicolon
            | Plus | Minus | Star | Slash | Arrow | Str _ ->
              fail state "expected , or ) in parameter list"
          in
          collect []
        | Some
            ( Ident _ | Number _ | Rparen | Lbracket | Rbracket | Comma
            | Semicolon | Plus | Minus | Star | Slash | Arrow | Str _ )
        | None ->
          []
      in
      let rec collect_qubits acc =
        let q = parse_qubit_ref state reg ~size:!qubits in
        match advance state with
        | Comma -> collect_qubits (q :: acc)
        | Semicolon -> List.rev (q :: acc)
        | Ident _ | Number _ | Lparen | Rparen | Lbracket | Rbracket | Plus
        | Minus | Star | Slash | Arrow | Str _ ->
          fail state "expected , or ; after qubit"
      in
      let qs = collect_qubits [] in
      (* Circuit.of_gates rejects a gate touching the same wire twice with a
         bare Invalid_argument; report it here instead, with a line number *)
      let rec distinct = function
        | [] -> ()
        | q :: rest ->
          if List.mem q rest then
            fail state
              (Printf.sprintf "duplicate qubit argument %s[%d] to %s" reg q
                 spelling);
          distinct rest
      in
      distinct qs;
      gates := List.rev_append (gate_of_spelling state spelling params qs) !gates;
      loop ()
    | Some
        ( Number _ | Lparen | Rparen | Lbracket | Rbracket | Comma | Semicolon
        | Plus | Minus | Star | Slash | Arrow | Str _ ) ->
      fail state "expected statement"
  in
  loop ();
  if !qubits <= 0 then fail state "no qreg declaration";
  Circuit.of_gates ~name ~qubits:!qubits (List.rev !gates)
