open Dd_complex

type gc_stats = {
  mutable collections : int;
  mutable pause_total : float;
  mutable last_pause : float;
  mutable v_reclaimed_total : int;
  mutable m_reclaimed_total : int;
  mutable entries_invalidated : int;
}

type t = {
  ctable : Ctable.t;
  v_unique : Hashcons.V.t;
  m_unique : Hashcons.M.t;
  add_v : Types.vedge Compute_table.t;
  add_m : Types.medge Compute_table.t;
  mul_mv : Types.vedge Compute_table.t;
  mul_mm : Types.medge Compute_table.t;
  apply_v : Types.vedge Compute_table.t;
  dot : Cnum.t Compute_table.t;
  adjoint : Types.medge Compute_table.t;
  norm : float Compute_table.t;
  max_mag : float Compute_table.t;
  identity_cache : (int, Types.medge) Hashtbl.t;
  (* Collision-free small-integer keys for the structured-apply compute
     table: a gate kind is the quadruple of interned 2x2 entry tags, a
     layout is (target, sorted controls).  Interning instead of bit-packing
     keeps the compute-table key exact for any qubit count — equal ids
     imply equal gates, so a stale entry can never answer for a different
     gate.  Ids are dense and never reused. *)
  apply_kind_ids : (int * int * int * int, int) Hashtbl.t;
  apply_layout_ids : (int * (int * bool) list, int) Hashtbl.t;
  (* node id -> "a hash-cons rebuild of this subtree is bitwise the
     identity"; intrinsic to the immutable node, computed lazily by the
     structured-apply kernel (see apply.ml) *)
  apply_stable : (int, bool) Hashtbl.t;
  gc : gc_stats;
  (* structured-apply rebuild-stable short-circuits: cache-equivalent wins
     that never probe apply_v, counted separately so bench rows can show
     why a cache-friendly circuit reports few probe hits (see apply.ml) *)
  mutable apply_skips : int;
  (* attached by Engine.set_trace; Trace.null (disabled) by default so the
     kernels never pay more than a flag check *)
  mutable trace : Obs.Trace.t;
  (* the live level<->qubit map; Order.identity until a reorder.  Node
     semantics are purely level-based, so changing the order never
     invalidates unique tables or compute caches — it only changes how
     qubit-facing entry points (basis, gate targets, measurement,
     amplitudes) translate into levels. *)
  mutable order : Order.t;
}

let default_cache_bits = 16

let create ?tolerance ?(cache_bits = default_cache_bits) () =
  if cache_bits < 4 || cache_bits > 24 then
    invalid_arg "Context.create: cache_bits must be in [4, 24]";
  let ctable = Ctable.create ?tolerance () in
  (* the hash-cons normalisation funnel: every child weight of every new
     node passes through here, which makes it the one spot where the
     fault harness can corrupt a weight the way cosmic FP noise would *)
  let intern z =
    let z =
      if Fault.fire Fault.Weight_flip then
        Cnum.make (Fault.flip_float (Cnum.re z)) (Cnum.im z)
      else z
    in
    Ctable.intern ctable z
  in
  let table name bits dummy = Compute_table.create ~name ~bits ~dummy in
  let small = max 4 (cache_bits - 4) in
  {
    ctable;
    v_unique = Hashcons.V.create ~intern ();
    m_unique = Hashcons.M.create ~intern ();
    add_v = table "add_v" cache_bits Types.v_zero;
    add_m = table "add_m" cache_bits Types.m_zero;
    mul_mv = table "mul_mv" cache_bits Types.v_zero;
    mul_mm = table "mul_mm" cache_bits Types.m_zero;
    apply_v = table "apply" cache_bits Types.v_zero;
    dot = table "dot" small Cnum.zero;
    adjoint = table "adjoint" small Types.m_zero;
    norm = table "norm" cache_bits 0.;
    max_mag = table "max_mag" cache_bits 0.;
    identity_cache = Hashtbl.create 64;
    apply_kind_ids = Hashtbl.create 64;
    apply_layout_ids = Hashtbl.create 64;
    apply_stable = Hashtbl.create 1024;
    gc =
      {
        collections = 0;
        pause_total = 0.;
        last_pause = 0.;
        v_reclaimed_total = 0;
        m_reclaimed_total = 0;
        entries_invalidated = 0;
      };
    apply_skips = 0;
    trace = Obs.Trace.null;
    order = Order.identity;
  }

let set_trace ctx trace = ctx.trace <- trace
let set_order ctx order = ctx.order <- order
let order ctx = ctx.order
let level_of_qubit ctx q = Order.level_of_qubit ctx.order q
let qubit_of_level ctx l = Order.qubit_of_level ctx.order l

let cnum ctx z = Ctable.intern ctx.ctable z

(* Dense intern of a structured-apply gate kind / control layout; see the
   field comments above.  Lookups dominate (a circuit has few distinct
   gates), so a plain Hashtbl is fine. *)
let apply_kind_id ctx key =
  match Hashtbl.find_opt ctx.apply_kind_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.apply_kind_ids + 1 in
    Hashtbl.add ctx.apply_kind_ids key id;
    id

let apply_layout_id ctx key =
  match Hashtbl.find_opt ctx.apply_layout_ids key with
  | Some id -> id
  | None ->
    let id = Hashtbl.length ctx.apply_layout_ids + 1 in
    Hashtbl.add ctx.apply_layout_ids key id;
    id

let clear_compute_caches ctx =
  Compute_table.clear ctx.add_v;
  Compute_table.clear ctx.add_m;
  Compute_table.clear ctx.mul_mv;
  Compute_table.clear ctx.mul_mm;
  Compute_table.clear ctx.apply_v;
  Compute_table.clear ctx.dot;
  Compute_table.clear ctx.adjoint;
  Compute_table.clear ctx.norm;
  Compute_table.clear ctx.max_mag

let v_unique_size ctx = Hashcons.V.created ctx.v_unique
let m_unique_size ctx = Hashcons.M.created ctx.m_unique
let live_v_nodes ctx = Hashcons.V.length ctx.v_unique
let live_m_nodes ctx = Hashcons.M.length ctx.m_unique

let table_stats ctx =
  [
    Compute_table.stats ctx.add_v;
    Compute_table.stats ctx.add_m;
    Compute_table.stats ctx.mul_mv;
    Compute_table.stats ctx.mul_mm;
    Compute_table.stats ctx.apply_v;
    Compute_table.stats ctx.dot;
    Compute_table.stats ctx.adjoint;
    Compute_table.stats ctx.norm;
    Compute_table.stats ctx.max_mag;
  ]

(* Stripe-lock contention, one entry per lockable shared structure.  The
   Ctable record is mirrored (dd_complex sits below dd), so convert it
   here into the shared shape. *)
let lock_stats ctx =
  let of_ctable (s : Ctable.lock_stats) =
    {
      Compute_table.acquisitions = s.Ctable.acquisitions;
      contended = s.Ctable.contended;
      wait_seconds = s.Ctable.wait_seconds;
      wait_buckets = s.Ctable.wait_buckets;
    }
  in
  let table t = (Compute_table.name t, Compute_table.lock_stats t) in
  [
    ("cnum", of_ctable (Ctable.lock_stats ctx.ctable));
    ("unique_v", Hashcons.V.lock_stats ctx.v_unique);
    ("unique_m", Hashcons.M.lock_stats ctx.m_unique);
    table ctx.add_v;
    table ctx.add_m;
    table ctx.mul_mv;
    table ctx.mul_mm;
    table ctx.apply_v;
    table ctx.dot;
    table ctx.adjoint;
    table ctx.norm;
    table ctx.max_mag;
  ]

let reset_lock_stats ctx =
  Ctable.reset_lock_stats ctx.ctable;
  Hashcons.V.reset_lock_stats ctx.v_unique;
  Hashcons.M.reset_lock_stats ctx.m_unique;
  Compute_table.reset_lock_stats ctx.add_v;
  Compute_table.reset_lock_stats ctx.add_m;
  Compute_table.reset_lock_stats ctx.mul_mv;
  Compute_table.reset_lock_stats ctx.mul_mm;
  Compute_table.reset_lock_stats ctx.apply_v;
  Compute_table.reset_lock_stats ctx.dot;
  Compute_table.reset_lock_stats ctx.adjoint;
  Compute_table.reset_lock_stats ctx.norm;
  Compute_table.reset_lock_stats ctx.max_mag

(* -- table residency estimates ---------------------------------------- *)

(* Per-entry heap-word costs, from the record layouts in types.ml / the
   packed compute-table slots.  A vnode is a 5-word block (header + vid,
   level, v_low, v_high) plus two boxed vedges at 3 words each — 11 words.
   An mnode is a 7-word block plus four boxed medges — 19 words.  A packed
   compute-table entry is four key/value slots plus the boxed result edge
   and weight sharing — call it 8 words.  A canonical-weight entry is a
   boxed Cnum (3 words) plus its table slot — call it 6.  These are
   estimates for telemetry gauges, not an allocator census: hash-table
   bucket overhead and weight sharing pull in opposite directions and
   roughly cancel. *)
let vnode_words = 11
let mnode_words = 19
let compute_entry_words = 8
let cnum_entry_words = 6
let bytes_per_word = 8

let unique_table_bytes ctx =
  bytes_per_word
  * ((live_v_nodes ctx * vnode_words)
    + (live_m_nodes ctx * mnode_words)
    + (Ctable.size ctx.ctable * cnum_entry_words))

(* O(1): every Compute_table.length is one atomic load, never the
   [table_stats] allocation path — this runs on the ledger commit path. *)
let compute_table_bytes ctx =
  let entries =
    Compute_table.length ctx.add_v
    + Compute_table.length ctx.add_m
    + Compute_table.length ctx.mul_mv
    + Compute_table.length ctx.mul_mm
    + Compute_table.length ctx.apply_v
    + Compute_table.length ctx.dot
    + Compute_table.length ctx.adjoint
    + Compute_table.length ctx.norm
    + Compute_table.length ctx.max_mag
  in
  bytes_per_word * compute_entry_words * entries

let residency_bytes ctx = unique_table_bytes ctx + compute_table_bytes ctx

let gc_stats ctx = ctx.gc
let apply_skips ctx = ctx.apply_skips
let note_apply_skip ctx = ctx.apply_skips <- ctx.apply_skips + 1

(* Arm (or disarm) every shared table for cross-domain use: the canonical
   weight table, both unique tables and all nine compute tables.  The
   Hashtbl-backed members (identity_cache, apply_kind_ids,
   apply_layout_ids, apply_stable) are NOT made concurrent — worker
   domains must not touch them, which the engine guarantees by building
   gate DDs and layout ids on the main domain before fanning out and by
   running only Vdd.add / Mdd.mul / Measure.sample in workers. *)
let set_parallel ctx flag =
  Ctable.set_parallel ctx.ctable flag;
  Hashcons.V.set_parallel ctx.v_unique flag;
  Hashcons.M.set_parallel ctx.m_unique flag;
  Compute_table.set_parallel ctx.add_v flag;
  Compute_table.set_parallel ctx.add_m flag;
  Compute_table.set_parallel ctx.mul_mv flag;
  Compute_table.set_parallel ctx.mul_mm flag;
  Compute_table.set_parallel ctx.apply_v flag;
  Compute_table.set_parallel ctx.dot flag;
  Compute_table.set_parallel ctx.adjoint flag;
  Compute_table.set_parallel ctx.norm flag;
  Compute_table.set_parallel ctx.max_mag flag

let per_level_v_nodes ctx ~levels =
  Hashcons.V.per_level_counts ctx.v_unique ~levels

let reset_stats ctx =
  Compute_table.reset_counters ctx.add_v;
  Compute_table.reset_counters ctx.add_m;
  Compute_table.reset_counters ctx.mul_mv;
  Compute_table.reset_counters ctx.mul_mm;
  Compute_table.reset_counters ctx.apply_v;
  Compute_table.reset_counters ctx.dot;
  Compute_table.reset_counters ctx.adjoint;
  Compute_table.reset_counters ctx.norm;
  Compute_table.reset_counters ctx.max_mag;
  let gc = ctx.gc in
  gc.collections <- 0;
  gc.pause_total <- 0.;
  gc.last_pause <- 0.;
  gc.v_reclaimed_total <- 0;
  gc.m_reclaimed_total <- 0;
  gc.entries_invalidated <- 0;
  ctx.apply_skips <- 0

let pp_stats fmt ctx =
  Format.fprintf fmt "nodes created: %d vector, %d matrix (live %d / %d)@\n"
    (v_unique_size ctx) (m_unique_size ctx) (live_v_nodes ctx)
    (live_m_nodes ctx);
  List.iter
    (fun s -> Format.fprintf fmt "%a@\n" Compute_table.pp_stats s)
    (table_stats ctx);
  let gc = ctx.gc in
  Format.fprintf fmt
    "gc: %d collections, %.3f ms total pause (last %.3f ms), reclaimed %d \
     vector / %d matrix nodes, %d cache entries dropped@\n"
    gc.collections (1000. *. gc.pause_total) (1000. *. gc.last_pause)
    gc.v_reclaimed_total gc.m_reclaimed_total gc.entries_invalidated

(* Generation-aware mark-and-sweep.  Nodes unreachable from the roots are
   dropped from the unique tables.  Compute-cache entries are swept
   individually: an entry survives the collection iff every node its key
   refers to is still live and its result edge targets a live node —
   marking is recursive, so a live result target implies the whole result
   subgraph was retained.  Surviving entries stay warm, which is the whole
   point: the wholesale cache clear this replaces made every collection
   also a cold-start of the memoisation layer.

   The identity cache acts as a GC root: identities are at most O(n)
   nodes, are rebuilt constantly by gate construction, and rooting them
   keeps both the cache and the shared substructure of every gate DD
   warm. *)
let collect ctx ~v_roots ~m_roots =
  let t0 = Obs.Clock.now () in
  let v_marked = Hashtbl.create 4096 in
  let m_marked = Hashtbl.create 4096 in
  let rec mark_v (node : Types.vnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem v_marked node.Types.vid)
    then begin
      Hashtbl.add v_marked node.Types.vid ();
      mark_v node.Types.v_low.Types.vt;
      mark_v node.Types.v_high.Types.vt
    end
  in
  let rec mark_m (node : Types.mnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem m_marked node.Types.mid)
    then begin
      Hashtbl.add m_marked node.Types.mid ();
      mark_m node.Types.m00.Types.mt;
      mark_m node.Types.m01.Types.mt;
      mark_m node.Types.m10.Types.mt;
      mark_m node.Types.m11.Types.mt
    end
  in
  List.iter (fun (e : Types.vedge) -> mark_v e.Types.vt) v_roots;
  List.iter (fun (e : Types.medge) -> mark_m e.Types.mt) m_roots;
  Hashtbl.iter (fun _ (e : Types.medge) -> mark_m e.Types.mt)
    ctx.identity_cache;
  (* fault harness: drop one *marked* (reachable) node from the vector
     unique table — the over-eager-GC corruption the auditor's
     canonicity walk must detect *)
  let drop_budget = ref (if Fault.fire Fault.Unique_drop then 1 else 0) in
  let v_removed =
    Hashcons.V.prune ctx.v_unique ~keep:(fun n ->
        if Hashtbl.mem v_marked n.Types.vid then
          if !drop_budget > 0 then begin
            decr drop_budget;
            false
          end
          else true
        else false)
  in
  let m_removed =
    Hashcons.M.prune ctx.m_unique ~keep:(fun n ->
        Hashtbl.mem m_marked n.Types.mid)
  in
  (* node ids are never reused, so a key naming a dead id can only ever be
     a harmless miss — but the *values* must not resurrect dead nodes, so
     any entry touching a dead id goes *)
  let v_live id = id = 0 || Hashtbl.mem v_marked id in
  let m_live id = id = 0 || Hashtbl.mem m_marked id in
  let v_edge_live (e : Types.vedge) = v_live e.Types.vt.Types.vid in
  let m_edge_live (e : Types.medge) = m_live e.Types.mt.Types.mid in
  let dropped = ref 0 in
  let ( += ) r n = r := !r + n in
  (* fault harness: skipping the sweeps leaves entries whose values
     resolve to freed nodes — the staleness the table audit must catch *)
  if not (Fault.fire Fault.Table_skip_sweep) then begin
  dropped
  += Compute_table.sweep ctx.add_v ~keep:(fun a b _ v ->
         v_live a && v_live b && v_edge_live v);
  dropped
  += Compute_table.sweep ctx.add_m ~keep:(fun a b _ v ->
         m_live a && m_live b && m_edge_live v);
  dropped
  += Compute_table.sweep ctx.mul_mv ~keep:(fun m v _ r ->
         m_live m && v_live v && v_edge_live r);
  dropped
  += Compute_table.sweep ctx.mul_mm ~keep:(fun a b _ v ->
         m_live a && m_live b && m_edge_live v);
  (* apply_v keys are (state node id, gate kind id, layout id): only the
     first key word names a node; the other two index intern tables that
     never shrink, so they are always valid *)
  dropped
  += Compute_table.sweep ctx.apply_v ~keep:(fun s _ _ r ->
         v_live s && v_edge_live r);
  dropped
  += Compute_table.sweep ctx.dot ~keep:(fun a b _ _ -> v_live a && v_live b);
  dropped
  += Compute_table.sweep ctx.adjoint ~keep:(fun a _ _ v ->
         m_live a && m_edge_live v);
  dropped += Compute_table.sweep ctx.norm ~keep:(fun a _ _ _ -> v_live a);
  dropped += Compute_table.sweep ctx.max_mag ~keep:(fun a _ _ _ -> v_live a)
  end;
  (* rebuild-stability flags are intrinsic to their (immutable) nodes and
     ids are never reused, so stale entries are harmless — dropping the
     dead ones just returns the memory with the nodes *)
  Hashtbl.filter_map_inplace
    (fun id s -> if v_live id then Some s else None)
    ctx.apply_stable;
  let pause = Obs.Clock.now () -. t0 in
  let gc = ctx.gc in
  gc.collections <- gc.collections + 1;
  gc.last_pause <- pause;
  gc.pause_total <- gc.pause_total +. pause;
  gc.v_reclaimed_total <- gc.v_reclaimed_total + v_removed;
  gc.m_reclaimed_total <- gc.m_reclaimed_total + m_removed;
  gc.entries_invalidated <- gc.entries_invalidated + !dropped;
  if Obs.Trace.is_on ctx.trace then
    Obs.Trace.span ctx.trace Obs.Trace.Gc
      ~t0:(Obs.Trace.rel ctx.trace t0)
      ~gate:(Obs.Trace.gate ctx.trace)
      ~state_nodes:(live_v_nodes ctx) ~matrix_nodes:(live_m_nodes ctx)
      ~hits:0 ~misses:0
      ~detail:
        (Printf.sprintf "reclaimed %d+%d nodes, %d cache entries" v_removed
           m_removed !dropped);
  (v_removed, m_removed)
