(* The level<->qubit indirection at the heart of dynamic variable
   reordering.  A DD node's [level] is a purely structural coordinate
   (terminal at -1, root of an n-qubit state at n-1); which *qubit* a
   level represents is recorded here and nowhere else.  The identity
   order is the empty permutation, which stands for "level k is qubit k"
   at every width — the representation every context starts with, so the
   unordered fast paths never pay for the indirection. *)

type t = { level_of_qubit : int array; qubit_of_level : int array }

let identity = { level_of_qubit = [||]; qubit_of_level = [||] }
let is_identity order = Array.length order.qubit_of_level = 0
let size order = Array.length order.qubit_of_level

let level_of_qubit order q =
  if q < Array.length order.level_of_qubit then order.level_of_qubit.(q)
  else q

let qubit_of_level order l =
  if l < Array.length order.qubit_of_level then order.qubit_of_level.(l)
  else l

let invert image =
  let n = Array.length image in
  let inverse = Array.make n (-1) in
  Array.iteri (fun i v -> if v >= 0 && v < n then inverse.(v) <- i) image;
  inverse

let is_permutation image =
  let n = Array.length image in
  let seen = Array.make n false in
  Array.for_all
    (fun v ->
      v >= 0 && v < n
      &&
      if seen.(v) then false
      else begin
        seen.(v) <- true;
        true
      end)
    image

(* collapse a literal identity permutation to the canonical sentinel so
   [is_identity] (and every fast path behind it) recognises it *)
let normalise order =
  let id = ref true in
  Array.iteri (fun l q -> if l <> q then id := false) order.qubit_of_level;
  if !id then identity else order

let of_qubit_of_level image =
  if not (is_permutation image) then
    invalid_arg "Order.of_qubit_of_level: not a permutation";
  normalise { qubit_of_level = Array.copy image; level_of_qubit = invert image }

let of_level_of_qubit image =
  if not (is_permutation image) then
    invalid_arg "Order.of_level_of_qubit: not a permutation";
  normalise { level_of_qubit = Array.copy image; qubit_of_level = invert image }

let is_valid order =
  let l = order.level_of_qubit and q = order.qubit_of_level in
  Array.length l = Array.length q
  && is_permutation q
  && Array.for_all (fun x -> x) (Array.mapi (fun i v -> l.(v) = i) q)

(* materialise the identity sentinel to an explicit width-n permutation *)
let extend order n =
  let m = size order in
  if m >= n then order
  else
    {
      level_of_qubit = Array.init n (fun q -> level_of_qubit order q);
      qubit_of_level = Array.init n (fun l -> qubit_of_level order l);
    }

let swap_levels order ~n level =
  if level < 0 || level + 1 >= n then
    invalid_arg "Order.swap_levels: level out of range";
  let order = extend order n in
  let q = Array.copy order.qubit_of_level in
  let tmp = q.(level) in
  q.(level) <- q.(level + 1);
  q.(level + 1) <- tmp;
  normalise { qubit_of_level = q; level_of_qubit = invert q }

let equal a b ~n =
  let rec check l =
    l >= n || (qubit_of_level a l = qubit_of_level b l && check (l + 1))
  in
  check 0

let to_string order =
  if is_identity order then "identity"
  else
    String.concat " "
      (Array.to_list (Array.map string_of_int order.qubit_of_level))

let of_string text =
  let text = String.trim text in
  if text = "identity" || text = "" then identity
  else
    let tokens =
      String.split_on_char ' ' text
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (fun t -> t <> "")
    in
    let image =
      Array.of_list
        (List.map
           (fun t ->
             match int_of_string_opt t with
             | Some v -> v
             | None -> invalid_arg ("Order.of_string: bad token " ^ t))
           tokens)
    in
    of_qubit_of_level image
