open Dd_complex
open Types

type edge = Types.vedge

let zero = v_zero

(* Normalisation and hash-consing live in the shared core (Hashcons):
   both children are divided by the maximal-magnitude child weight (low
   wins ties), which becomes the weight of the returned edge. *)
let make ctx level low high =
  Hashcons.V.make ctx.Context.v_unique ~level [| low; high |]

let scale ctx s edge =
  if Cnum.is_exact_zero s || v_is_zero edge then v_zero
  else if Cnum.is_exact_one s then edge
  else
    let w = Context.cnum ctx (Cnum.mul s edge.vw) in
    if Cnum.is_exact_zero w then v_zero else { vw = w; vt = edge.vt }

let terminal_edge ctx w =
  let w = Context.cnum ctx w in
  if Cnum.is_exact_zero w then v_zero else { vw = w; vt = v_terminal }

(* Qubit-facing constructors and readers translate index bits through the
   level<->qubit order: the bit steering level [l] is bit
   [qubit_of_level l] of the basis index.  Under the identity order this
   is the plain [bit l] recursion the module always had. *)

let basis ctx ~n index =
  if index < 0 || (n < 63 && index >= 1 lsl n) then
    invalid_arg "Vdd.basis: index out of range";
  let order = ctx.Context.order in
  let rec build level edge =
    if level >= n then edge
    else
      let bit = (index lsr Order.qubit_of_level order level) land 1 in
      let next =
        if bit = 0 then make ctx level edge v_zero
        else make ctx level v_zero edge
      in
      build (level + 1) next
  in
  build 0 (terminal_edge ctx Cnum.one)

let of_array ctx amplitudes =
  let len = Array.length amplitudes in
  if len = 0 || len land (len - 1) <> 0 then
    invalid_arg "Vdd.of_array: length must be a positive power of two";
  let order = ctx.Context.order in
  let rec build level index =
    if level < 0 then terminal_edge ctx amplitudes.(index)
    else
      let high = 1 lsl Order.qubit_of_level order level in
      make ctx level (build (level - 1) index)
        (build (level - 1) (index lor high))
  in
  let rec log2 k acc = if k = 1 then acc else log2 (k lsr 1) (acc + 1) in
  build (log2 len 0 - 1) 0

let to_array ?(order = Order.identity) edge ~n =
  if n > 24 then invalid_arg "Vdd.to_array: too many qubits";
  let out = Array.make (1 lsl n) Cnum.zero in
  let rec fill edge weight index =
    if not (v_is_zero edge) then begin
      let weight = Cnum.mul weight edge.vw in
      if v_is_terminal edge.vt then out.(index) <- weight
      else begin
        let high = 1 lsl Order.qubit_of_level order edge.vt.level in
        fill edge.vt.v_low weight index;
        fill edge.vt.v_high weight (index lor high)
      end
    end
  in
  fill edge Cnum.one 0;
  out

let amplitude ?(order = Order.identity) edge ~n index =
  let rec walk edge level acc =
    if v_is_zero edge then Cnum.zero
    else
      let acc = Cnum.mul acc edge.vw in
      if level < 0 then acc
      else
        let bit = (index lsr Order.qubit_of_level order level) land 1 in
        let child = if bit = 0 then edge.vt.v_low else edge.vt.v_high in
        walk child (level - 1) acc
  in
  walk edge (n - 1) Cnum.one

(* Memoised addition with the first operand's weight factored out:
   wa*A + wb*B = wa * (A + (wb/wa) * B); the cache key is
   (A.id, B.id, tag (wb/wa)) after a commutativity-normalising swap. *)
let rec add ctx a b =
  if v_is_zero a then b
  else if v_is_zero b then a
  else if v_is_terminal a.vt && v_is_terminal b.vt then
    terminal_edge ctx (Cnum.add a.vw b.vw)
  else begin
    assert (a.vt.level = b.vt.level);
    let a, b =
      if
        a.vt.vid < b.vt.vid
        || (a.vt.vid = b.vt.vid && Cnum.tag a.vw <= Cnum.tag b.vw)
      then (a, b)
      else (b, a)
    in
    let ratio = Context.cnum ctx (Cnum.div b.vw a.vw) in
    let table = ctx.Context.add_v in
    let k1 = a.vt.vid and k2 = b.vt.vid and k3 = Cnum.tag ratio in
    let unit_result =
      match Compute_table.find table ~k1 ~k2 ~k3 with
      | Some r -> r
      | None ->
        let na = a.vt and nb = b.vt in
        let low = add ctx na.v_low (scale ctx ratio nb.v_low) in
        let high = add ctx na.v_high (scale ctx ratio nb.v_high) in
        let r = make ctx na.level low high in
        Compute_table.store table ~k1 ~k2 ~k3 r;
        r
    in
    scale ctx a.vw unit_result
  end

let dot ctx a b =
  let rec unit_dot na nb =
    if v_is_terminal na then Cnum.one
    else
      match
        Compute_table.find ctx.Context.dot ~k1:na.vid ~k2:nb.vid ~k3:0
      with
      | Some r -> r
      | None ->
        let part ea eb =
          if v_is_zero ea || v_is_zero eb then Cnum.zero
          else
            Cnum.mul
              (Cnum.mul (Cnum.conj ea.vw) eb.vw)
              (unit_dot ea.vt eb.vt)
        in
        let r =
          Cnum.add (part na.v_low nb.v_low) (part na.v_high nb.v_high)
        in
        Compute_table.store ctx.Context.dot ~k1:na.vid ~k2:nb.vid ~k3:0 r;
        r
  in
  if v_is_zero a || v_is_zero b then Cnum.zero
  else begin
    assert (a.vt.level = b.vt.level);
    Cnum.mul (Cnum.mul (Cnum.conj a.vw) b.vw) (unit_dot a.vt b.vt)
  end

let iter_nodes f edge =
  let seen = Hashtbl.create 256 in
  let rec walk node =
    if (not (v_is_terminal node)) && not (Hashtbl.mem seen node.vid) then begin
      Hashtbl.add seen node.vid ();
      f node;
      if not (v_is_zero node.v_low) then walk node.v_low.vt;
      if not (v_is_zero node.v_high) then walk node.v_high.vt
    end
  in
  if not (v_is_zero edge) then walk edge.vt

let node_count edge =
  let count = ref 0 in
  iter_nodes (fun _ -> incr count) edge;
  !count

let equal = v_edge_equal

let approx_equal_array ?(tol = 1e-9) xs ys =
  Array.length xs = Array.length ys
  && begin
       let ok = ref true in
       Array.iteri
         (fun i x -> if not (Cnum.approx_equal ~tol x ys.(i)) then ok := false)
         xs;
       !ok
     end

(* largest |amplitude| of any path below a node (top weight excluded),
   cached per context *)
let rec node_max_magnitude ctx node =
  if v_is_terminal node then 1.
  else
    match
      Compute_table.find ctx.Context.max_mag ~k1:node.vid ~k2:0 ~k3:0
    with
    | Some x -> x
    | None ->
      let part e =
        if v_is_zero e then 0.
        else Cnum.mag e.vw *. node_max_magnitude ctx e.vt
      in
      let x = Float.max (part node.v_low) (part node.v_high) in
      Compute_table.store ctx.Context.max_mag ~k1:node.vid ~k2:0 ~k3:0 x;
      x

let top_amplitudes ctx ~n k edge =
  let order = ctx.Context.order in
  if v_is_zero edge then []
  else begin
    (* best-first search: a frontier of (bound, index-prefix, edge) sorted
       by decreasing bound; a completed path's bound is its exact
       magnitude, so when a terminal pops first it is globally maximal *)
    let module Frontier = Set.Make (struct
      type t = float * int * Cnum.t * vnode

      let compare (ba, ia, _, na) (bb, ib, _, nb) =
        (* decreasing bound; disambiguate by index and node id *)
        let c = compare bb ba in
        if c <> 0 then c
        else
          let c = compare ia ib in
          if c <> 0 then c else compare na.vid nb.vid
    end) in
    let initial_bound = Cnum.mag edge.vw *. node_max_magnitude ctx edge.vt in
    let frontier =
      ref (Frontier.singleton (initial_bound, 0, edge.vw, edge.vt))
    in
    let results = ref [] in
    let found = ref 0 in
    while !found < k && not (Frontier.is_empty !frontier) do
      let ((_, index, amp, node) as entry) = Frontier.min_elt !frontier in
      frontier := Frontier.remove entry !frontier;
      if v_is_terminal node then begin
        results := (index, amp) :: !results;
        incr found
      end
      else begin
        let push bit child =
          if not (v_is_zero child) then begin
            let amp = Cnum.mul amp child.vw in
            let bound = Cnum.mag amp *. node_max_magnitude ctx child.vt in
            let index =
              if bit = 0 then index
              else index lor (1 lsl Order.qubit_of_level order node.level)
            in
            frontier := Frontier.add (bound, index, amp, child.vt) !frontier
          end
        in
        push 0 node.v_low;
        push 1 node.v_high
      end
    done;
    ignore n;
    List.rev !results
  end

let truncate ctx ~threshold edge =
  if v_is_zero edge then invalid_arg "Vdd.truncate: zero state";
  let memo = Hashtbl.create 256 in
  let rec prune node =
    match Hashtbl.find_opt memo node.vid with
    | Some e -> e
    | None ->
      let descend child =
        if v_is_zero child then v_zero
        else if Cnum.mag child.vw *. node_max_magnitude ctx child.vt < threshold
        then v_zero
        else scale ctx child.vw (prune child.vt)
      in
      let e =
        if v_is_terminal node then { vw = Cnum.one; vt = v_terminal }
        else make ctx node.level (descend node.v_low) (descend node.v_high)
      in
      Hashtbl.replace memo node.vid e;
      e
  in
  let pruned = scale ctx edge.vw (prune edge.vt) in
  if v_is_zero pruned then
    invalid_arg "Vdd.truncate: threshold removes the whole state";
  (* renormalise to unit norm *)
  let rec norm2 node =
    if v_is_terminal node then 1.
    else
      let part e =
        if v_is_zero e then 0. else Cnum.mag2 e.vw *. norm2 e.vt
      in
      part node.v_low +. part node.v_high
  in
  let total = Cnum.mag2 pruned.vw *. norm2 pruned.vt in
  scale ctx (Cnum.of_float (1. /. sqrt total)) pruned
