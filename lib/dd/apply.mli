(** Structured gate application: apply a gate given as
    [{target; controls; 2x2 matrix}] directly to a vector DD, without
    constructing the n-qubit gate matrix DD.  Identity levels are skipped
    by plain recursion, control levels descend only the active branch, and
    the 2x2 matrix is applied in closed form at the target level, so
    per-gate work is proportional to the state DD — never to n.  Results
    are memoised in {!Context.t.apply_v}. *)

open Dd_complex

type control = { qubit : int; positive : bool }

val apply :
  Context.t ->
  n:int ->
  target:int ->
  ?controls:control list ->
  Cnum.t array ->
  Types.vedge ->
  Types.vedge
(** [apply ctx ~n ~target ~controls entries state] — [entries] is the
    row-major 2x2 matrix [|m00; m01; m10; m11|].  Controls may sit on any
    wire, above or below the target.  Raises {!Dd_error.Error}
    ([Invalid_operand]) on malformed input (bad ranges, duplicate
    controls, control equal to target, wrong state height). *)
