(** Fixed-capacity, lossy memoisation tables for the DD kernels.

    A table is a direct-mapped array of [2^bits] slots addressed by a hash
    of the packed integer key [(k1, k2, k3)].  A colliding {!store}
    overwrites the previous entry (lossy — memoisation is purely an
    optimisation, every recursion is structural); a {!find} compares the
    full key, so a collision can never return the value of a different
    key, it only reads as a miss.  Entries carry the generation of the
    last garbage collection that validated them; {!sweep} drops entries a
    collection invalidated and keeps the rest warm. *)

type 'v t

type stats = {
  table : string;
  capacity : int;
  entries : int;
  lookups : int;
  hits : int;
  misses : int;  (** always [lookups - hits] *)
  stores : int;
  evictions : int;  (** live entries overwritten by a colliding store *)
  invalidated : int;  (** entries dropped by {!sweep} *)
  generation : int;
}

val create : name:string -> bits:int -> dummy:'v -> 'v t
(** [2^bits] slots ([bits] in [1, 28]); [dummy] fills unoccupied value
    slots and is never returned. *)

val find : 'v t -> k1:int -> k2:int -> k3:int -> 'v option
val store : 'v t -> k1:int -> k2:int -> k3:int -> 'v -> unit

val set_parallel : 'v t -> bool -> unit
(** Arm (or disarm) the per-slot-group mutexes taken by {!find}/{!store}
    so concurrent domains cannot tear a slot's key/value pair.  Off by
    default (no locks, the pre-sharing behaviour).  {!sweep}, {!clear}
    and {!iter} remain unlocked — run them only while the domain pool is
    quiescent. *)

val clear : 'v t -> unit
(** Drop every entry.  Counters are kept. *)

val iter : (int -> int -> int -> 'v -> unit) -> 'v t -> unit
(** [iter f t] applies [f k1 k2 k3 v] to every occupied entry — the
    auditor's table-consistency walk. *)

val sweep : 'v t -> keep:(int -> int -> int -> 'v -> bool) -> int
(** One garbage collection over the table: bump the generation, re-stamp
    every entry for which [keep k1 k2 k3 v] holds, drop the rest.  Returns
    the number of entries dropped. *)

val capacity : 'v t -> int
val name : 'v t -> string
val length : 'v t -> int
val generation : 'v t -> int
val hits : 'v t -> int
(** Running hit count — cheap accessor for per-operation deltas, so
    tracing need not build a full {!stats} record per op. *)

val lookups : 'v t -> int
val hit_rate : 'v t -> float
val stats : 'v t -> stats
val reset_counters : 'v t -> unit
val pp_stats : Format.formatter -> stats -> unit

(** {2 Lock-contention accounting}

    When {!set_parallel} is armed, every stripe acquisition is counted;
    an acquisition whose initial [Mutex.try_lock] fails is additionally
    counted as {e contended} and its blocking wait is timed.  The
    per-stripe counters are mutated only under that stripe's lock (no
    atomics, no allocation on the uncontended path) and nothing at all
    runs when the flag is off — [--domains 1] behaviour is bitwise
    unchanged.  This record shape is shared by {!Hashcons} and mirrored
    by [Cnum.Ctable]. *)

type lock_stats = {
  acquisitions : int;  (** stripe acquisitions while [parallel] was armed *)
  contended : int;  (** acquisitions that had to block *)
  wait_seconds : float;  (** total time spent blocked *)
  wait_buckets : int array;
      (** log2 histogram of contended waits: index [e + 32] holds waits
          in [2^(e-1), 2^e) seconds; 64 buckets *)
}

val hist_buckets : int
(** Number of wait-histogram buckets (64). *)

val lock_stats : 'v t -> lock_stats
(** Aggregated over all 64 stripes.  Read at quiescence. *)

val reset_lock_stats : 'v t -> unit
