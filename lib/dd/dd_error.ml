type t =
  | Malformed_dd of { line : string option; message : string }
  | Degenerate_state of { operation : string; message : string }
  | Invalid_operand of { operation : string; message : string }

exception Error of t

let to_string = function
  | Malformed_dd { line = None; message } ->
    Printf.sprintf "malformed DD: %s" message
  | Malformed_dd { line = Some line; message } ->
    Printf.sprintf "malformed DD: %s in %S" message line
  | Degenerate_state { operation; message } ->
    Printf.sprintf "%s: %s" operation message
  | Invalid_operand { operation; message } ->
    Printf.sprintf "%s: %s" operation message

let malformed ?line message = raise (Error (Malformed_dd { line; message }))

let degenerate ~operation message =
  raise (Error (Degenerate_state { operation; message }))

let invalid_operand ~operation message =
  raise (Error (Invalid_operand { operation; message }))

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Dd_error.Error (%s)" (to_string e))
    | _ -> None)
