open Dd_complex
open Types

(* Per-level accumulator shared by the vector and matrix walks. *)
type acc = {
  mutable a_nodes : int;
  mutable a_edges : int;
  mutable a_zero : int;
  buckets : (int, int) Hashtbl.t;  (* log2 magnitude exponent -> count *)
}

let fresh_acc () =
  { a_nodes = 0; a_edges = 0; a_zero = 0; buckets = Hashtbl.create 8 }

let acc_for table level =
  match Hashtbl.find_opt table level with
  | Some acc -> acc
  | None ->
    let acc = fresh_acc () in
    Hashtbl.add table level acc;
    acc

let note_weight acc w =
  let exponent = Obs.Metrics.bucket_exponent (Cnum.mag w) in
  let count =
    match Hashtbl.find_opt acc.buckets exponent with
    | Some c -> c
    | None -> 0
  in
  Hashtbl.replace acc.buckets exponent (count + 1)

let finish_levels ~order table =
  Hashtbl.fold
    (fun level acc out ->
      {
        Obs.Dd_profile.level;
        qubit = Order.qubit_of_level order level;
        nodes = acc.a_nodes;
        edges = acc.a_edges;
        zero_edges = acc.a_zero;
        weights =
          Hashtbl.fold (fun e c l -> (e, c) :: l) acc.buckets []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
      }
      :: out)
    table []
  |> List.sort (fun a b ->
         compare b.Obs.Dd_profile.level a.Obs.Dd_profile.level)

let build ~gate ~t ~dd ~nodes ~edges ~references ~identity_nodes levels =
  {
    Obs.Dd_profile.gate_index = gate;
    t;
    dd;
    nodes;
    edges;
    sharing =
      (if nodes = 0 then 1.
       else float_of_int references /. float_of_int nodes);
    identity_fraction =
      (if nodes = 0 then 0.
       else float_of_int identity_nodes /. float_of_int nodes);
    levels;
  }

let vector ?(gate = -1) ?(t = 0.) ?(order = Order.identity) edge =
  let table = Hashtbl.create 32 in
  let nodes = ref 0 in
  let edges = ref 0 in
  let references = ref 0 in
  let identity_nodes = ref 0 in
  let note_edge acc (child : vedge) =
    if v_is_zero child then acc.a_zero <- acc.a_zero + 1
    else begin
      acc.a_edges <- acc.a_edges + 1;
      incr edges;
      note_weight acc child.vw;
      if not (v_is_terminal child.vt) then incr references
    end
  in
  Vdd.iter_nodes
    (fun node ->
      incr nodes;
      let acc = acc_for table node.level in
      acc.a_nodes <- acc.a_nodes + 1;
      note_edge acc node.v_low;
      note_edge acc node.v_high;
      if v_edge_equal node.v_low node.v_high then incr identity_nodes)
    edge;
  (* the root edge is an edge too: it contributes to the edge total and
     to the in-degree of the root node *)
  if not (v_is_zero edge) then begin
    incr edges;
    if not (v_is_terminal edge.vt) then incr references
  end;
  build ~gate ~t ~dd:"vector" ~nodes:!nodes ~edges:!edges
    ~references:!references ~identity_nodes:!identity_nodes
    (finish_levels ~order table)

let matrix ?(gate = -1) ?(t = 0.) ?(order = Order.identity) edge =
  let table = Hashtbl.create 32 in
  let nodes = ref 0 in
  let edges = ref 0 in
  let references = ref 0 in
  let identity_nodes = ref 0 in
  let note_edge acc (child : medge) =
    if m_is_zero child then acc.a_zero <- acc.a_zero + 1
    else begin
      acc.a_edges <- acc.a_edges + 1;
      incr edges;
      note_weight acc child.mw;
      if not (m_is_terminal child.mt) then incr references
    end
  in
  Mdd.iter_nodes
    (fun node ->
      incr nodes;
      let acc = acc_for table node.level in
      acc.a_nodes <- acc.a_nodes + 1;
      note_edge acc node.m00;
      note_edge acc node.m01;
      note_edge acc node.m10;
      note_edge acc node.m11;
      if
        m_edge_equal node.m00 node.m11
        && m_is_zero node.m01 && m_is_zero node.m10
      then incr identity_nodes)
    edge;
  if not (m_is_zero edge) then begin
    incr edges;
    if not (m_is_terminal edge.mt) then incr references
  end;
  build ~gate ~t ~dd:"matrix" ~nodes:!nodes ~edges:!edges
    ~references:!references ~identity_nodes:!identity_nodes
    (finish_levels ~order table)

let pp ppf (s : Obs.Dd_profile.snapshot) =
  Format.fprintf ppf
    "%s DD: %d nodes, %d edges, sharing %.3f, identity fraction %.3f@."
    s.dd s.nodes s.edges s.sharing s.identity_fraction;
  Format.fprintf ppf "%8s %8s %8s %8s %8s  %s@." "level" "qubit" "nodes"
    "edges" "zeroes" "weight |w| log2 histogram";
  List.iter
    (fun (l : Obs.Dd_profile.level) ->
      let histogram =
        String.concat " "
          (List.map
             (fun (e, c) -> Printf.sprintf "2^%d:%d" e c)
             l.weights)
      in
      Format.fprintf ppf "%8d %8s %8d %8d %8d  %s@." l.level
        (Printf.sprintf "q%d" l.qubit)
        l.nodes l.edges l.zero_edges histogram)
    s.levels
