(* Dynamic variable reordering: the classic adjacent-level BDD swap,
   specialised to weighted quantum DDs, plus a sifting search on top.

   A swap of levels [l] and [l+1] is a local rewrite.  Writing the four
   "grandchild" sub-vectors of a node [v] at level [l+1] as
   g(b, c) = weight(child b) * child(b).child(c) — b the branch taken at
   the old top level, c at the old lower level — the swapped node is

     make (l+1) [make l (g 0 0) (g 1 0)]  [make l (g 0 1) (g 1 1)]

   i.e. the steering bits trade places.  Every rebuilt node goes through
   [Vdd.make], so normalisation (pivot rule) and unique-table canonicity
   are preserved by construction; nodes strictly below level [l] are
   shared untouched, nodes above are rebuilt bottom-up (their children
   changed identity).  The order map swaps the two levels' qubits in
   lockstep, so the qubit-space semantics of the state are unchanged. *)

open Types

type stats = { mutable swaps : int; nodes_before : int; mutable nodes_after : int }

(* Swap levels [level] and [level + 1] of a vector DD.  Pure structural
   rewrite: the caller is responsible for swapping the order map (see
   [swap] below).  The edge must reach at least level [level + 1]. *)
let swap_vector ctx (edge : Vdd.edge) ~level =
  let lo = level and hi = level + 1 in
  if v_is_zero edge then edge
  else if edge.vt.level < hi then
    invalid_arg "Reorder.swap_vector: level out of range"
  else begin
    let memo = Hashtbl.create 256 in
    let swap_node (v : vnode) =
      (* children of a level-hi node sit exactly at level lo (dense-level
         invariant), so the grandchild picture above always applies *)
      let g b c =
        let child = if b = 0 then v.v_low else v.v_high in
        if v_is_zero child then v_zero
        else
          let gc = if c = 0 then child.vt.v_low else child.vt.v_high in
          Vdd.scale ctx child.vw gc
      in
      let new_low = Vdd.make ctx lo (g 0 0) (g 1 0) in
      let new_high = Vdd.make ctx lo (g 0 1) (g 1 1) in
      Vdd.make ctx hi new_low new_high
    in
    let rec walk (v : vnode) =
      match Hashtbl.find_opt memo v.vid with
      | Some e -> e
      | None ->
        let e =
          if v.level = hi then swap_node v
          else
            let descend (child : vedge) =
              if v_is_zero child then v_zero
              else Vdd.scale ctx child.vw (walk child.vt)
            in
            Vdd.make ctx v.level (descend v.v_low) (descend v.v_high)
        in
        Hashtbl.add memo v.vid e;
        e
    in
    Vdd.scale ctx edge.vw (walk edge.vt)
  end

(* Matrix analogue: the four quadrants of a level-(l+1) node trade nesting
   with their own quadrants.  Provided for completeness and tests; the
   engine never swaps live matrices (gate DDs are rebuilt per gate through
   the order, and the identity cache is order-agnostic). *)
let swap_matrix ctx (edge : Mdd.edge) ~level =
  let lo = level and hi = level + 1 in
  if m_is_zero edge then edge
  else if edge.mt.level < hi then
    invalid_arg "Reorder.swap_matrix: level out of range"
  else begin
    let memo = Hashtbl.create 256 in
    let quadrant (v : mnode) i =
      match i with 0 -> v.m00 | 1 -> v.m01 | 2 -> v.m10 | _ -> v.m11
    in
    let swap_node (v : mnode) =
      let g i j =
        let child = quadrant v i in
        if m_is_zero child then m_zero
        else Mdd.scale ctx child.mw (quadrant child.mt j)
      in
      let sub j = Mdd.make ctx lo (g 0 j) (g 1 j) (g 2 j) (g 3 j) in
      Mdd.make ctx hi (sub 0) (sub 1) (sub 2) (sub 3)
    in
    let rec walk (v : mnode) =
      match Hashtbl.find_opt memo v.mid with
      | Some e -> e
      | None ->
        let e =
          if v.level = hi then swap_node v
          else
            let descend (child : medge) =
              if m_is_zero child then m_zero
              else Mdd.scale ctx child.mw (walk child.mt)
            in
            Mdd.make ctx v.level (descend v.m00) (descend v.m01)
              (descend v.m10) (descend v.m11)
        in
        Hashtbl.add memo v.mid e;
        e
    in
    Mdd.scale ctx edge.mw (walk edge.mt)
  end

(* One full adjacent swap: rewrite the state and swap the context's order
   map, keeping both views consistent. *)
let swap ctx (edge : Vdd.edge) ~level =
  let n = v_height edge in
  let swapped = swap_vector ctx edge ~level in
  Context.set_order ctx (Order.swap_levels (Context.order ctx) ~n level);
  swapped

(* Permute the state to an explicit target order by bubbling each qubit to
   its destination level with adjacent swaps (selection sort from the top
   level down: O(n^2) swaps, each linear in the DD size). *)
let apply_order ctx (edge : Vdd.edge) target =
  let n = v_height edge in
  let edge = ref edge in
  let swaps = ref 0 in
  for level = n - 1 downto 1 do
    let wanted = Order.qubit_of_level target level in
    (* current level of the wanted qubit; by induction it sits at or
       below [level] (higher levels are already settled) *)
    let current = ref (-1) in
    for l = 0 to level do
      if Order.qubit_of_level (Context.order ctx) l = wanted then current := l
    done;
    if !current < 0 then
      invalid_arg "Reorder.apply_order: order width mismatch";
    for l = !current to level - 1 do
      edge := swap ctx !edge ~level:l;
      incr swaps
    done
  done;
  (!edge, !swaps)

let per_level_nodes (edge : Vdd.edge) =
  let n = v_height edge in
  let counts = Array.make (max n 1) 0 in
  Vdd.iter_nodes
    (fun node -> counts.(node.level) <- counts.(node.level) + 1)
    edge;
  counts

(* Sifting (Rudell): move one variable through every level by adjacent
   swaps, remember the position minimising the total node count, return
   there; process variables in decreasing order of their level's node
   count; repeat passes while the total shrinks.  [max_growth] aborts a
   direction early when the intermediate DD grows beyond that factor of
   the running best — the standard guard against blow-up mid-sift. *)
let sift ?(max_growth = 2.0) ?(max_passes = 4) ctx (edge : Vdd.edge) =
  let n = v_height edge in
  let stats =
    { swaps = 0; nodes_before = Vdd.node_count edge; nodes_after = 0 }
  in
  if n < 2 || v_is_zero edge then begin
    stats.nodes_after <- stats.nodes_before;
    (edge, stats)
  end
  else begin
    let edge = ref edge in
    let do_swap level =
      edge := swap ctx !edge ~level;
      stats.swaps <- stats.swaps + 1
    in
    let sift_one qubit =
      let best = ref (Vdd.node_count !edge) in
      let limit =
        int_of_float (max_growth *. float_of_int !best) + 1
      in
      let position () = Order.level_of_qubit (Context.order ctx) qubit in
      let start = position () in
      let best_pos = ref start in
      (* explore the shorter side first, then the other *)
      let down_first = start <= (n - 1) / 2 in
      let explore step =
        (* move one level at a time in direction [step] until the wall or
           the growth limit, tracking the best position seen *)
        let continue = ref true in
        while
          !continue
          &&
          let p = position () in
          if step < 0 then p > 0 else p < n - 1
        do
          let p = position () in
          do_swap (if step < 0 then p - 1 else p);
          let count = Vdd.node_count !edge in
          if count < !best then begin
            best := count;
            best_pos := position ()
          end;
          if count > limit then continue := false
        done
      in
      let return_to target =
        while position () <> target do
          let p = position () in
          do_swap (if p > target then p - 1 else p)
        done
      in
      if down_first then begin
        explore (-1);
        return_to start;
        explore 1
      end
      else begin
        explore 1;
        return_to start;
        explore (-1)
      end;
      return_to !best_pos
    in
    let pass () =
      let before = Vdd.node_count !edge in
      (* variables by decreasing node count of their current level *)
      let counts = per_level_nodes !edge in
      let order = Context.order ctx in
      let by_weight =
        List.sort
          (fun (_, a) (_, b) -> compare b a)
          (List.init n (fun l -> (Order.qubit_of_level order l, counts.(l))))
      in
      List.iter (fun (qubit, _) -> sift_one qubit) by_weight;
      Vdd.node_count !edge < before
    in
    let passes = ref 0 in
    while !passes < max_passes && pass () do
      incr passes
    done;
    stats.nodes_after <- Vdd.node_count !edge;
    (!edge, stats)
  end
