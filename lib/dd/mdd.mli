(** Matrix decision diagrams (the four-successor nodes of the paper's
    Section II-B) and the operations the paper's strategies are built from:
    matrix-vector multiplication (Fig. 3), matrix-matrix multiplication and
    matrix addition, plus constructors for elementary-gate DDs and for
    directly-constructed oracle DDs (the [DD-construct] strategy). *)

open Dd_complex

type edge = Types.medge

type control = { c_qubit : int; c_positive : bool }
(** A control line: the gate fires when the qubit is [|1>] (positive) or
    [|0>] (negative). *)

val zero : edge

val make : Context.t -> int -> edge -> edge -> edge -> edge -> edge
(** [make ctx level e00 e01 e10 e11] — normalised, hash-consed matrix node
    with the given quadrants (paper order: upper-left, upper-right,
    lower-left, lower-right). *)

val scale : Context.t -> Cnum.t -> edge -> edge

val identity : Context.t -> int -> edge
(** [identity ctx n] is the identity on [n] qubits — a linear-size chain of
    nodes, as the paper notes. Cached per [n]. *)

val gate :
  Context.t -> n:int -> target:int -> ?controls:control list ->
  Cnum.t array -> edge
(** [gate ctx ~n ~target ~controls entries] builds the DD of an elementary
    operation: [entries] is the row-major 2x2 matrix [|m00; m01; m10; m11|]
    applied to qubit [target], guarded by [controls], identity elsewhere.
    Qubit indices are translated to DD levels through the context's live
    {!Order.t}, so circuits are untouched by reordering.  Raises
    [Invalid_argument] on out-of-range or duplicated qubits. *)

val of_permutation : Context.t -> n:int -> (int -> int) -> edge
(** [of_permutation ctx ~n f] is the unitary [sum_x |f x><x|]; [f] must be a
    bijection on [0, 2^n).  Used by the DD-construct strategy to build
    modular-exponentiation oracles without gate decomposition. *)

val of_dense : Context.t -> Cnum.t array array -> edge
(** Build from a dense square matrix of power-of-two dimension (row-major:
    [m.(row).(col)]); intended for tests. *)

val control_top : Context.t -> n:int -> ?positive:bool -> edge -> edge
(** [control_top ctx ~n u] turns a unitary on [n] qubits into a controlled
    unitary on [n + 1] qubits whose control is the new top qubit. *)

val apply : Context.t -> edge -> Vdd.edge -> Vdd.edge
(** Matrix-vector multiplication on DDs (paper's Fig. 3, Eq. 1 step). *)

val mul : Context.t -> edge -> edge -> edge
(** Matrix-matrix multiplication on DDs (Eq. 2 step): [mul ctx a b] is the
    matrix product [A x B]. *)

val mul_par :
  Context.t ->
  par:((unit -> edge) array -> edge array) ->
  edge -> edge -> edge
(** [mul ctx a b] with the top level split for a domain pool: on a memo
    miss at the root, the eight independent inner products of the four
    quadrant entries are passed as thunks to [par], which must evaluate
    all of them (on any domains) and return their results in order; the
    additions and the node build stay on the calling domain.  Requires
    {!Context.set_parallel} when [par] actually runs thunks concurrently.
    The product is canonical but not bitwise-reproducible across domain
    counts (node-id creation order feeds [add]'s operand swap). *)

val add : Context.t -> edge -> edge -> edge

val adjoint : Context.t -> edge -> edge
(** Conjugate transpose. *)

val kron : Context.t -> edge -> edge -> edge
(** [kron ctx a b] is [A (x) B] with [A] on the more significant qubits. *)

val to_dense : ?order:Order.t -> edge -> n:int -> Cnum.t array array
(** Expand to a dense matrix indexed by qubit bits; [order] (default
    identity) must be the order the DD was built under.  Tests only
    (raises above 12 qubits). *)

val entry : ?order:Order.t -> edge -> n:int -> row:int -> col:int -> Cnum.t

val node_count : edge -> int
val iter_nodes : (Types.mnode -> unit) -> edge -> unit
val equal : edge -> edge -> bool

val of_diagonal : Context.t -> n:int -> (int -> Cnum.t) -> edge
(** [of_diagonal ctx ~n f] is the diagonal matrix [diag (f 0, ..., f
    (2^n - 1))] — the natural DD-construct form of phase oracles
    (e.g. Grover's).  Shared sub-diagonals are merged by hash-consing. *)
