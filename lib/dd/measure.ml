open Dd_complex
open Types

(* node_norm n = sum over all paths below n of the squared magnitude of the
   path weight product; the top edge weight is excluded so the value can be
   cached per node. *)
let rec node_norm ctx node =
  if v_is_terminal node then 1.
  else
    match Compute_table.find ctx.Context.norm ~k1:node.vid ~k2:0 ~k3:0 with
    | Some x -> x
    | None ->
      let part e =
        if v_is_zero e then 0. else Cnum.mag2 e.vw *. node_norm ctx e.vt
      in
      let x = part node.v_low +. part node.v_high in
      Compute_table.store ctx.Context.norm ~k1:node.vid ~k2:0 ~k3:0 x;
      x

let norm2 ctx edge =
  if v_is_zero edge then 0.
  else Cnum.mag2 edge.vw *. node_norm ctx edge.vt

let probability_one ctx edge ~qubit =
  if v_is_zero edge then
    Dd_error.degenerate ~operation:"Measure.probability_one" "zero state";
  if qubit < 0 || qubit > edge.vt.level then
    Dd_error.invalid_operand ~operation:"Measure.probability_one"
      (Printf.sprintf "qubit %d out of range" qubit);
  (* the measured wire is a qubit; find the level hosting it *)
  let level = Context.level_of_qubit ctx qubit in
  let memo = Hashtbl.create 64 in
  (* weight of all paths through the |1> branch at [level], per node *)
  let rec mass node =
    match Hashtbl.find_opt memo node.vid with
    | Some x -> x
    | None ->
      let x =
        if node.level = level then
          if v_is_zero node.v_high then 0.
          else Cnum.mag2 node.v_high.vw *. node_norm ctx node.v_high.vt
        else
          let part e =
            if v_is_zero e then 0. else Cnum.mag2 e.vw *. mass e.vt
          in
          part node.v_low +. part node.v_high
      in
      Hashtbl.add memo node.vid x;
      x
  in
  let total = norm2 ctx edge in
  Cnum.mag2 edge.vw *. mass edge.vt /. total

let collapse ctx edge ~qubit ~outcome =
  if v_is_zero edge then
    Dd_error.degenerate ~operation:"Measure.collapse" "zero state";
  if qubit < 0 || qubit > edge.vt.level then
    Dd_error.invalid_operand ~operation:"Measure.collapse"
      (Printf.sprintf "qubit %d out of range" qubit);
  let level = Context.level_of_qubit ctx qubit in
  let memo = Hashtbl.create 64 in
  let rec project node =
    match Hashtbl.find_opt memo node.vid with
    | Some e -> e
    | None ->
      let descend child =
        if v_is_zero child then v_zero
        else Vdd.scale ctx child.vw (project child.vt)
      in
      let e =
        if node.level = level then
          if outcome then Vdd.make ctx node.level v_zero node.v_high
          else Vdd.make ctx node.level node.v_low v_zero
        else
          Vdd.make ctx node.level (descend node.v_low) (descend node.v_high)
      in
      Hashtbl.add memo node.vid e;
      e
  in
  let full = Vdd.scale ctx edge.vw (project edge.vt) in
  let p = norm2 ctx full in
  if p < 1e-24 then
    Dd_error.degenerate ~operation:"Measure.collapse"
      "zero-probability outcome";
  Vdd.scale ctx (Cnum.of_float (1. /. sqrt p)) full

let measure_qubit ctx rng edge ~qubit =
  let p1 = probability_one ctx edge ~qubit in
  let outcome = Random.State.float rng 1. < p1 in
  (outcome, collapse ctx edge ~qubit ~outcome)

let sample ctx rng edge =
  if v_is_zero edge then
    Dd_error.degenerate ~operation:"Measure.sample" "zero state";
  let rec walk node acc =
    if v_is_terminal node then acc
    else
      let mass e =
        if v_is_zero e then 0. else Cnum.mag2 e.vw *. node_norm ctx e.vt
      in
      let p0 = mass node.v_low and p1 = mass node.v_high in
      let pick_high = Random.State.float rng (p0 +. p1) >= p0 in
      if pick_high then
        walk node.v_high.vt
          (acc lor (1 lsl Context.qubit_of_level ctx node.level))
      else walk node.v_low.vt acc
  in
  walk edge.vt 0

let probabilities ?order edge ~n =
  let amps = Vdd.to_array ?order edge ~n in
  Array.map Cnum.mag2 amps
