(** Measurement on vector DDs: cached squared norms, single-qubit marginals,
    projective collapse, and full-register sampling.  Needed both for
    reading out results and for Beauregard-style circuits with intermediate
    measurements. *)

val norm2 : Context.t -> Vdd.edge -> float
(** Squared 2-norm of the represented vector (cached per node). *)

val probability_one : Context.t -> Vdd.edge -> qubit:int -> float
(** Probability that measuring [qubit] yields [1], normalised by the state's
    norm.  [qubit] is a qubit index, translated to its hosting level
    through the context's live {!Order.t} (as in {!collapse} and
    {!measure_qubit}); {!sample} likewise reports indices in qubit
    space. *)

val collapse : Context.t -> Vdd.edge -> qubit:int -> outcome:bool -> Vdd.edge
(** Project onto the given outcome and renormalise.  Raises
    {!Dd_error.Error} ([Degenerate_state]) if the outcome has
    (numerically) zero probability. *)

val measure_qubit :
  Context.t -> Random.State.t -> Vdd.edge -> qubit:int -> bool * Vdd.edge
(** Sample one qubit and return the outcome together with the collapsed,
    renormalised state. *)

val sample : Context.t -> Random.State.t -> Vdd.edge -> int
(** Sample a full basis-state index from the state's distribution without
    collapsing. *)

val probabilities : ?order:Order.t -> Vdd.edge -> n:int -> float array
(** Dense outcome distribution indexed by qubit bits ([order] defaults to
    identity); tests and small [n] only. *)
