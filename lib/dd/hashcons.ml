(* Shared hash-consing core for vector and matrix DD nodes.

   Vdd.make and Mdd.make used to duplicate the same three steps with
   different arities: (1) normalise the children by the first
   maximal-magnitude child weight, (2) intern the normalised weights,
   (3) look the node up in a unique table keyed by (level, child weight
   tags, child node ids).  The functor below is that code path once,
   over an open-addressed table specialised to the node type — no tuple
   keys, no polymorphic hashing.

   The table is sharded into [stripes] independent sub-tables selected by
   high bits of the key hash, each with its own slot array, resize cycle
   and mutex.  In the default sequential mode no lock is ever taken and
   the behaviour is identical to a single flat table (striping only moves
   slots around; which node a key resolves to never depends on placement).
   When [set_parallel] arms the locks, concurrent domains intern through
   the same table: two domains only contend when their keys land in the
   same stripe, and node ids stay unique because the creation counter is
   atomic.  Id *order* under concurrency is racy by design — ids feed the
   commutativity-normalising swaps of Vdd.add/Mdd.add, so parallel runs
   are canonical but not bitwise-reproducible (see docs/dd-internals.md,
   "Concurrency model"). *)

open Dd_complex

module type NODE = sig
  type node
  type edge

  val arity : int
  val terminal : node
  val zero_edge : edge
  val is_zero : edge -> bool
  val weight : edge -> Cnum.t
  val target : edge -> node
  val edge : Cnum.t -> node -> edge
  val id : node -> int
  val level : node -> int
  val child : node -> int -> edge
  val build : id:int -> level:int -> edge array -> node
end

module type S = sig
  type node
  type edge
  type t

  val create : intern:(Cnum.t -> Cnum.t) -> unit -> t

  (* Normalise [children] (mutated in place), intern the node, return the
     canonical edge.  [children] must have length [arity]; non-zero
     children must sit one level below [level]. *)
  val make : t -> level:int -> edge array -> edge

  val length : t -> int
  val created : t -> int
  val iter : (node -> unit) -> t -> unit
  val prune : t -> keep:(node -> bool) -> int

  (* Is this exact node (physical equality) the table's representative?
     The invariant auditor uses it to detect reachable nodes that were
     dropped from, or never entered, the unique table. *)
  val mem : t -> node -> bool

  val set_parallel : t -> bool -> unit
  val per_level_counts : t -> levels:int -> int array

  (* Aggregated stripe-lock contention counters (see
     Compute_table.lock_stats); read at quiescence. *)
  val lock_stats : t -> Compute_table.lock_stats
  val reset_lock_stats : t -> unit
end

module Make (N : NODE) :
  S with type node = N.node and type edge = N.edge = struct
  type node = N.node
  type edge = N.edge

  type stripe = {
    lock : Mutex.t;
    (* contention counters, mutated only while holding [lock] *)
    mutable lock_acquisitions : int;
    mutable lock_contended : int;
    mutable lock_wait : float;
    wait_buckets : int array;
    mutable slots : N.node array; (* N.terminal (id 0) marks empty *)
    mutable mask : int;
    mutable entries : int;
    (* resident nodes per level, maintained on insert and rebuilt on
       prune — the O(levels) bulge probe reads these instead of walking
       the DD (each stripe owns its own array, so under [parallel] the
       updates stay inside the stripe lock) *)
    mutable level_counts : int array;
  }

  type t = {
    intern : Cnum.t -> Cnum.t;
    stripes : stripe array;
    created : int Atomic.t; (* ids handed out so far; monotone *)
    mutable parallel : bool;
  }

  let stripe_bits = 4
  let stripe_count = 1 lsl stripe_bits

  (* 16 stripes x 2^12 slots = the 2^16 initial capacity the flat table
     had *)
  let initial_bits = 12

  let create ~intern () =
    let capacity = 1 lsl initial_bits in
    {
      intern;
      stripes =
        Array.init stripe_count (fun _ ->
            {
              lock = Mutex.create ();
              lock_acquisitions = 0;
              lock_contended = 0;
              lock_wait = 0.;
              wait_buckets = Array.make Compute_table.hist_buckets 0;
              slots = Array.make capacity N.terminal;
              mask = capacity - 1;
              entries = 0;
              level_counts = Array.make 8 0;
            });
      created = Atomic.make 0;
      parallel = false;
    }

  let set_parallel t flag = t.parallel <- flag

  let length t =
    Array.fold_left (fun acc s -> acc + s.entries) 0 t.stripes

  let created t = Atomic.get t.created

  let iter f t =
    Array.iter
      (fun s -> Array.iter (fun n -> if N.id n <> 0 then f n) s.slots)
      t.stripes

  let mix1 = 0x2545F4914F6CDD1D
  let mix2 = 0x27D4EB2F165667C5
  let mix3 = 0x165667B19E3779F9

  let hash_children ~level (children : N.edge array) =
    let h = ref (level * mix1) in
    for i = 0 to N.arity - 1 do
      let c = children.(i) in
      h := (!h lxor Cnum.tag (N.weight c)) * mix2;
      h := (!h lxor N.id (N.target c)) * mix3
    done;
    !h lxor (!h lsr 29)

  let hash_node n =
    let level = N.level n in
    let h = ref (level * mix1) in
    for i = 0 to N.arity - 1 do
      let c = N.child n i in
      h := (!h lxor Cnum.tag (N.weight c)) * mix2;
      h := (!h lxor N.id (N.target c)) * mix3
    done;
    !h lxor (!h lsr 29)

  (* stripe selection uses hash bits far above any in-stripe mask, so the
     two indices stay independent *)
  let stripe_of t h = t.stripes.((h lsr 48) land (stripe_count - 1))

  let node_matches n ~level (children : N.edge array) =
    N.level n = level
    &&
    let ok = ref true in
    for i = 0 to N.arity - 1 do
      let c = N.child n i and d = children.(i) in
      if
        N.id (N.target c) <> N.id (N.target d)
        || Cnum.tag (N.weight c) <> Cnum.tag (N.weight d)
      then ok := false
    done;
    !ok

  let insert_rehashed s n =
    let i = ref (hash_node n land s.mask) in
    while N.id s.slots.(!i) <> 0 do
      i := (!i + 1) land s.mask
    done;
    s.slots.(!i) <- n

  let resize s =
    let old = s.slots in
    let capacity = 2 * Array.length old in
    s.slots <- Array.make capacity N.terminal;
    s.mask <- capacity - 1;
    Array.iter (fun n -> if N.id n <> 0 then insert_rehashed s n) old

  (* keep the load factor at or below 1/2 so linear probes stay short *)
  let ensure_room s =
    if 2 * (s.entries + 1) > s.mask + 1 then resize s

  let count_level s level =
    let len = Array.length s.level_counts in
    if level >= len then begin
      let grown = Array.make (max (level + 1) (2 * len)) 0 in
      Array.blit s.level_counts 0 grown 0 len;
      s.level_counts <- grown
    end;
    s.level_counts.(level) <- s.level_counts.(level) + 1

  let per_level_counts t ~levels =
    let out = Array.make levels 0 in
    Array.iter
      (fun s ->
        let len = min levels (Array.length s.level_counts) in
        for level = 0 to len - 1 do
          out.(level) <- out.(level) + s.level_counts.(level)
        done)
      t.stripes;
    out

  (* probe-or-insert under an armed stripe lock; split out so [make] can
     release the lock on the Alloc_fail fault path *)
  let find_or_insert t s ~level ~h (children : N.edge array) =
    ensure_room s;
    let i = ref (h land s.mask) in
    while
      let n = s.slots.(!i) in
      N.id n <> 0 && not (node_matches n ~level children)
    do
      i := (!i + 1) land s.mask
    done;
    let n = s.slots.(!i) in
    if N.id n <> 0 then n
    else begin
      if Fault.fire Fault.Alloc_fail then raise Out_of_memory;
      let id = Atomic.fetch_and_add t.created 1 + 1 in
      let node = N.build ~id ~level children in
      s.slots.(!i) <- node;
      s.entries <- s.entries + 1;
      count_level s level;
      node
    end

  let make t ~level (children : N.edge array) =
    let all_zero = ref true in
    for i = 0 to N.arity - 1 do
      if not (N.is_zero children.(i)) then all_zero := false
    done;
    if !all_zero then N.zero_edge
    else begin
      assert (level >= 0);
      assert (
        let ok = ref true in
        for i = 0 to N.arity - 1 do
          let c = children.(i) in
          if not (N.is_zero c || N.level (N.target c) = level - 1) then
            ok := false
        done;
        !ok);
      (* Normalisation: divide every child weight by the first
         maximal-magnitude child weight, which becomes the weight of the
         returned edge.  Canonical because weights are canonical
         (interning merges FP noise); stable because normalised child
         weights have magnitude <= 1. *)
      let pivot = ref Cnum.zero and best = ref 0. in
      for i = 0 to N.arity - 1 do
        let w = N.weight children.(i) in
        let m = Cnum.mag2 w in
        if m > !best then begin
          best := m;
          pivot := w
        end
      done;
      let pivot = !pivot in
      for i = 0 to N.arity - 1 do
        let c = children.(i) in
        if N.is_zero c then children.(i) <- N.zero_edge
        else
          children.(i) <-
            N.edge (t.intern (Cnum.div (N.weight c) pivot)) (N.target c)
      done;
      let h = hash_children ~level children in
      let s = stripe_of t h in
      let node =
        if t.parallel then begin
          (* contention-instrumented acquisition: try_lock success is
             the uncontended path; a failure times the blocking wait *)
          if Mutex.try_lock s.lock then
            s.lock_acquisitions <- s.lock_acquisitions + 1
          else begin
            let t0 = Unix.gettimeofday () in
            Mutex.lock s.lock;
            let wait = Float.max 0. (Unix.gettimeofday () -. t0) in
            s.lock_acquisitions <- s.lock_acquisitions + 1;
            s.lock_contended <- s.lock_contended + 1;
            s.lock_wait <- s.lock_wait +. wait;
            let b = Obs.Metrics.bucket_exponent wait + 32 in
            s.wait_buckets.(b) <- s.wait_buckets.(b) + 1
          end;
          match find_or_insert t s ~level ~h children with
          | node ->
            Mutex.unlock s.lock;
            node
          | exception e ->
            Mutex.unlock s.lock;
            raise e
        end
        else find_or_insert t s ~level ~h children
      in
      N.edge pivot node
    end

  let mem t node =
    let s = stripe_of t (hash_node node) in
    let i = ref (hash_node node land s.mask) in
    let result = ref false in
    let probing = ref true in
    while !probing do
      let n = s.slots.(!i) in
      if N.id n = 0 then probing := false
      else if n == node then begin
        result := true;
        probing := false
      end
      else i := (!i + 1) land s.mask
    done;
    !result

  let lock_stats t =
    let buckets = Array.make Compute_table.hist_buckets 0 in
    let acq = ref 0 and cont = ref 0 and wait = ref 0. in
    Array.iter
      (fun s ->
        acq := !acq + s.lock_acquisitions;
        cont := !cont + s.lock_contended;
        wait := !wait +. s.lock_wait;
        Array.iteri (fun b n -> buckets.(b) <- buckets.(b) + n) s.wait_buckets)
      t.stripes;
    {
      Compute_table.acquisitions = !acq;
      contended = !cont;
      wait_seconds = !wait;
      wait_buckets = buckets;
    }

  let reset_lock_stats t =
    Array.iter
      (fun s ->
        s.lock_acquisitions <- 0;
        s.lock_contended <- 0;
        s.lock_wait <- 0.;
        Array.fill s.wait_buckets 0 (Array.length s.wait_buckets) 0)
      t.stripes

  let prune t ~keep =
    let removed = ref 0 in
    Array.iter
      (fun s ->
        let survivors = ref [] in
        Array.iter
          (fun n ->
            if N.id n <> 0 then
              if keep n then survivors := n :: !survivors else incr removed)
          s.slots;
        Array.fill s.slots 0 (Array.length s.slots) N.terminal;
        Array.fill s.level_counts 0 (Array.length s.level_counts) 0;
        List.iter
          (fun n ->
            insert_rehashed s n;
            count_level s (N.level n))
          !survivors;
        s.entries <- List.length !survivors)
      t.stripes;
    !removed
end

module V = Make (struct
  type node = Types.vnode
  type edge = Types.vedge

  let arity = 2
  let terminal = Types.v_terminal
  let zero_edge = Types.v_zero
  let is_zero = Types.v_is_zero
  let weight (e : edge) = e.Types.vw
  let target (e : edge) = e.Types.vt
  let edge w t = { Types.vw = w; Types.vt = t }
  let id (n : node) = n.Types.vid
  let level (n : node) = n.Types.level

  let child (n : node) i =
    if i = 0 then n.Types.v_low else n.Types.v_high

  let build ~id ~level (c : edge array) =
    { Types.vid = id; Types.level; Types.v_low = c.(0); Types.v_high = c.(1) }
end)

module M = Make (struct
  type node = Types.mnode
  type edge = Types.medge

  let arity = 4
  let terminal = Types.m_terminal
  let zero_edge = Types.m_zero
  let is_zero = Types.m_is_zero
  let weight (e : edge) = e.Types.mw
  let target (e : edge) = e.Types.mt
  let edge w t = { Types.mw = w; Types.mt = t }
  let id (n : node) = n.Types.mid
  let level (n : node) = n.Types.level

  let child (n : node) i =
    match i with
    | 0 -> n.Types.m00
    | 1 -> n.Types.m01
    | 2 -> n.Types.m10
    | _ -> n.Types.m11

  let build ~id ~level (c : edge array) =
    {
      Types.mid = id;
      Types.level;
      Types.m00 = c.(0);
      Types.m01 = c.(1);
      Types.m10 = c.(2);
      Types.m11 = c.(3);
    }
end)
