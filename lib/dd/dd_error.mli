(** Structured errors of the DD package layer.

    Replaces the ad-hoc [failwith]/[Invalid_argument] raises on the paths
    that can fail mid-simulation with data the caller can act on: which
    operation failed, and why.  Programming-error precondition checks
    (bad array shapes in construction helpers, conversion size limits)
    keep raising [Invalid_argument]; this module is for failures of the
    *data* — a malformed serialised DD, a numerically degenerate state,
    an operand that arrived out of range from user input. *)

type t =
  | Malformed_dd of { line : string option; message : string }
      (** A serialised DD could not be parsed; [line] is the offending
          input line when one is known. *)
  | Degenerate_state of { operation : string; message : string }
      (** An operation met a state it cannot handle numerically (zero
          vector, zero-probability measurement outcome). *)
  | Invalid_operand of { operation : string; message : string }
      (** An operation was handed operands it cannot apply to — a
          measurement of an out-of-range qubit, a gate whose control
          equals its target.  Unlike [Invalid_argument] assertions these
          sites sit on the simulation execution path, where bad values
          arrive from user input (circuit files, CLI flags) rather than
          from programming errors. *)

exception Error of t

val to_string : t -> string

val malformed : ?line:string -> string -> 'a
(** [malformed ?line message] raises {!Error} with [Malformed_dd]. *)

val degenerate : operation:string -> string -> 'a
(** [degenerate ~operation message] raises {!Error} with
    [Degenerate_state]. *)

val invalid_operand : operation:string -> string -> 'a
(** [invalid_operand ~operation message] raises {!Error} with
    [Invalid_operand]. *)
