(** Structured errors of the DD package layer.

    Replaces the ad-hoc [failwith]/[Invalid_argument] raises on the paths
    that can fail mid-simulation with data the caller can act on: which
    operation failed, and why.  Programming-error precondition checks
    (out-of-range qubits, bad array shapes) keep raising
    [Invalid_argument]; this module is for failures of the *data* — a
    malformed serialised DD, a numerically degenerate state. *)

type t =
  | Malformed_dd of { line : string option; message : string }
      (** A serialised DD could not be parsed; [line] is the offending
          input line when one is known. *)
  | Degenerate_state of { operation : string; message : string }
      (** An operation met a state it cannot handle numerically (zero
          vector, zero-probability measurement outcome). *)

exception Error of t

val to_string : t -> string

val malformed : ?line:string -> string -> 'a
(** [malformed ?line message] raises {!Error} with [Malformed_dd]. *)

val degenerate : operation:string -> string -> 'a
(** [degenerate ~operation message] raises {!Error} with
    [Degenerate_state]. *)
