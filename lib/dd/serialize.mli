(** Plain-text (de)serialisation of decision diagrams.

    The format lists nodes bottom-up (children before parents), one per
    line, with local ids ([0] is the terminal); loading re-canonicalises
    every node through the target context's unique tables, so a DD written
    from one context can be read into another (e.g. caching directly
    constructed oracles across runs). *)

val vector_to_string : Vdd.edge -> string
val vector_of_string : Context.t -> string -> Vdd.edge
(** Raises {!Dd_error.Error} ([Malformed_dd]) on malformed input. *)

val matrix_to_string : Mdd.edge -> string
val matrix_of_string : Context.t -> string -> Mdd.edge

val write_file : string -> string -> unit
(** [write_file path contents] — plain helper for the above. *)

val read_file : string -> string
