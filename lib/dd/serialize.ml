open Dd_complex
open Types

let float_repr x = Printf.sprintf "%.17g" x

(* --- vectors --------------------------------------------------------- *)

let vector_to_string edge =
  let buf = Buffer.create 1024 in
  let nodes = ref [] in
  Vdd.iter_nodes (fun node -> nodes := node :: !nodes) edge;
  let ordered =
    List.sort (fun (a : vnode) (b : vnode) -> compare a.level b.level) !nodes
  in
  Buffer.add_string buf (Printf.sprintf "ddvec %d\n" (List.length ordered));
  let emit_child (child : vedge) =
    Printf.sprintf "%s %s %d"
      (float_repr (Cnum.re child.vw))
      (float_repr (Cnum.im child.vw))
      child.vt.vid
  in
  List.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %d %s %s\n" node.vid node.level
           (emit_child node.v_low) (emit_child node.v_high)))
    ordered;
  Buffer.add_string buf
    (Printf.sprintf "root %s %s %d\n"
       (float_repr (Cnum.re edge.vw))
       (float_repr (Cnum.im edge.vw))
       edge.vt.vid);
  Buffer.contents buf

let tokens_of_line line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_failure line message = Dd_error.malformed ~line message

let float_field line text =
  match float_of_string_opt text with
  | Some v -> v
  | None -> parse_failure line ("bad number " ^ text)

let int_field line text =
  match int_of_string_opt text with
  | Some v -> v
  | None -> parse_failure line ("bad integer " ^ text)

let vector_of_string ctx text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let table : (int, Vdd.edge) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.add table 0 { vw = Cnum.one; vt = v_terminal };
  let edge_of line re im target =
    let w = Cnum.make (float_field line re) (float_field line im) in
    if Cnum.is_exact_zero w then v_zero
    else
      match Hashtbl.find_opt table (int_field line target) with
      | Some e -> Vdd.scale ctx (Context.cnum ctx w) e
      | None -> parse_failure line "forward reference"
  in
  let root = ref None in
  List.iter
    (fun line ->
      match tokens_of_line line with
      | [ "ddvec"; _count ] -> ()
      | [ "node"; id; level; lre; lim; lt; hre; him; ht ] ->
        let low = edge_of line lre lim lt in
        let high = edge_of line hre him ht in
        let rebuilt = Vdd.make ctx (int_field line level) low high in
        Hashtbl.replace table (int_field line id) rebuilt
      | [ "root"; re; im; target ] -> root := Some (edge_of line re im target)
      | _ -> parse_failure line "unrecognised line")
    lines;
  match !root with
  | Some e -> e
  | None -> Dd_error.malformed "missing root line"

(* --- matrices --------------------------------------------------------- *)

let matrix_to_string edge =
  let buf = Buffer.create 1024 in
  let nodes = ref [] in
  Mdd.iter_nodes (fun node -> nodes := node :: !nodes) edge;
  let ordered =
    List.sort (fun (a : mnode) (b : mnode) -> compare a.level b.level) !nodes
  in
  Buffer.add_string buf (Printf.sprintf "ddmat %d\n" (List.length ordered));
  let emit_child (child : medge) =
    Printf.sprintf "%s %s %d"
      (float_repr (Cnum.re child.mw))
      (float_repr (Cnum.im child.mw))
      child.mt.mid
  in
  List.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %d %s %s %s %s\n" node.mid node.level
           (emit_child node.m00) (emit_child node.m01) (emit_child node.m10)
           (emit_child node.m11)))
    ordered;
  Buffer.add_string buf
    (Printf.sprintf "root %s %s %d\n"
       (float_repr (Cnum.re edge.mw))
       (float_repr (Cnum.im edge.mw))
       edge.mt.mid);
  Buffer.contents buf

let matrix_of_string ctx text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let table : (int, Mdd.edge) Hashtbl.t = Hashtbl.create 256 in
  Hashtbl.add table 0 { mw = Cnum.one; mt = m_terminal };
  let edge_of line re im target =
    let w = Cnum.make (float_field line re) (float_field line im) in
    if Cnum.is_exact_zero w then m_zero
    else
      match Hashtbl.find_opt table (int_field line target) with
      | Some e -> Mdd.scale ctx (Context.cnum ctx w) e
      | None -> parse_failure line "forward reference"
  in
  let root = ref None in
  List.iter
    (fun line ->
      match tokens_of_line line with
      | [ "ddmat"; _count ] -> ()
      | [ "node"; id; level; re00; im00; t00; re01; im01; t01; re10; im10;
          t10; re11; im11; t11 ] ->
        let e00 = edge_of line re00 im00 t00 in
        let e01 = edge_of line re01 im01 t01 in
        let e10 = edge_of line re10 im10 t10 in
        let e11 = edge_of line re11 im11 t11 in
        let rebuilt = Mdd.make ctx (int_field line level) e00 e01 e10 e11 in
        Hashtbl.replace table (int_field line id) rebuilt
      | [ "root"; re; im; target ] -> root := Some (edge_of line re im target)
      | _ -> parse_failure line "unrecognised line")
    lines;
  match !root with
  | Some e -> e
  | None -> Dd_error.malformed "missing root line"

(* --- files ------------------------------------------------------------ *)

(* write-to-temp + fsync + atomic rename: a crash mid-write can never
   leave a truncated DD file at the destination *)
let write_file path contents = Obs.Safe_io.write_file path contents

let read_file path =
  let ic = open_in path in
  let length = in_channel_length ic in
  let contents = really_input_string ic length in
  close_in ic;
  contents
