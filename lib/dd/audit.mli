(** DD invariant auditor.

    Everything the paper measures — node counts, mat-vec/mat-mat costs,
    sharing — is only meaningful while the package's invariants actually
    hold: reachable nodes are unique-table representatives, child
    weights obey the hash-cons pivot rule, the state norm is conserved,
    and no compute-table entry resolves to a freed node.  The auditor
    re-derives those invariants from the live structures (trusting no
    cache: norms are recomputed, not read from [ctx.norm]) and reports
    every violation with its level/node evidence.

    {!Dd_sim.Engine} exposes the auditor as a [--audit-every] cadence
    with a recovery ladder; see [docs/robustness.md]. *)

type violation =
  | Unrepresented_node of { dd : string; level : int; id : int }
      (** a reachable node is not its unique table's representative *)
  | Pivot_rule of { dd : string; level : int; id : int; detail : string }
      (** child weights violate the normalisation rule: some child weight
          must be exactly one (the pivot's quotient by itself), all child
          magnitudes at most one *)
  | Zero_stub of { dd : string; level : int; id : int }
      (** a zero-weight edge targets a non-terminal node *)
  | Uninterned_weight of { dd : string; level : int; id : int }
      (** an edge weight escaped the canonical complex table (tag -1) *)
  | Level_skew of { dd : string; level : int; id : int }
      (** a non-zero child edge skips a level *)
  | Norm_drift of { norm : float; tolerance : float }
      (** the recomputed state norm left the tolerance band around 1 *)
  | Stale_entry of { table : string; k1 : int; k2 : int; k3 : int }
      (** a compute-table value resolves to a node no longer resident *)
  | Order_skew of { detail : string }
      (** the context's level<->qubit arrays are not mutually inverse
          permutations — qubit-facing translations would read the wrong
          wires *)

type violation_class = Canonicity | Norm | Table

val class_of : violation -> violation_class
val to_string : violation -> string

val check_vector :
  ?norm_tol:float -> Context.t -> Types.vedge -> violation list
(** Walk every reachable node of a vector DD and verify the structural
    invariants; with [norm_tol], additionally recompute the norm (no
    caches) and flag drift beyond the tolerance. *)

val check_matrix : Context.t -> Types.medge -> violation list
(** Structural invariants of a matrix DD (no norm check). *)

val check_order : Context.t -> violation list
(** Verify the context's live {!Order.t} is self-consistent (mutually
    inverse permutations).  Cheap — O(n) in the register width. *)

val check_tables : Context.t -> violation list
(** Unique-/compute-table consistency: every occupied entry of every
    edge-valued compute table must resolve to a resident node — a stale
    generation entry surviving a sweep is exactly the corruption that
    would silently resurrect freed nodes on the next hit. *)

val norm2_uncached : Types.vedge -> float
(** Squared norm recomputed from the raw structure, bypassing the
    context's memoised norm table (which could itself be corrupt). *)

val rebuild_vector : Context.t -> Types.vedge -> Types.vedge
(** Canonical rebuild: re-intern the whole DD bottom-up through
    {!Vdd.make}, restoring normalisation and unique-table residency.
    Amplitudes are preserved exactly when the weights were canonical;
    weight corruption is re-normalised into the edge weights (detectable
    afterwards as norm drift). *)
