(** Shared state of a DD package instance: the canonical complex table, the
    unique (hash-consing) tables for vector and matrix nodes, and the
    fixed-capacity compute tables that memoise addition and multiplication —
    the machinery the paper relies on when it argues that "re-occurring
    sub-products only have to be computed once". *)

open Dd_complex

type gc_stats = {
  mutable collections : int;
  mutable pause_total : float;  (** seconds spent in {!collect}, cumulative *)
  mutable last_pause : float;  (** seconds spent in the last {!collect} *)
  mutable v_reclaimed_total : int;
  mutable m_reclaimed_total : int;
  mutable entries_invalidated : int;
      (** compute-table entries dropped because they referenced dead nodes *)
}

type t = {
  ctable : Ctable.t;
  v_unique : Hashcons.V.t;
  m_unique : Hashcons.M.t;
  add_v : Types.vedge Compute_table.t;
  add_m : Types.medge Compute_table.t;
  mul_mv : Types.vedge Compute_table.t;
  mul_mm : Types.medge Compute_table.t;
  apply_v : Types.vedge Compute_table.t;
      (** structured-apply memo: (state node id, gate kind id, layout id) *)
  dot : Cnum.t Compute_table.t;
  adjoint : Types.medge Compute_table.t;
  norm : float Compute_table.t;
  max_mag : float Compute_table.t;
  identity_cache : (int, Types.medge) Hashtbl.t;
  apply_kind_ids : (int * int * int * int, int) Hashtbl.t;
  apply_layout_ids : (int * (int * bool) list, int) Hashtbl.t;
  apply_stable : (int, bool) Hashtbl.t;
      (** node id -> "a hash-cons rebuild of this subtree is bitwise the
          identity"; lazily filled by the structured-apply kernel, swept
          with the unique table on {!collect} *)
  gc : gc_stats;
  mutable apply_skips : int;
      (** structured-apply rebuild-stable short-circuits — cache-equivalent
          wins that never probe the [apply_v] table *)
  mutable trace : Obs.Trace.t;
      (** event sink for kernel-level spans ({!collect} emits [Gc]);
          {!Obs.Trace.null} — disabled, zero-cost — until one is attached *)
  mutable order : Order.t;
      (** the live level<->qubit map ({!Order.identity} by default).
          Node semantics are level-based, so installing a new order never
          invalidates the unique tables or compute caches — it only
          retargets the qubit-facing entry points. *)
}

val create : ?tolerance:float -> ?cache_bits:int -> unit -> t
(** Fresh package instance.  [tolerance] is forwarded to {!Ctable.create}.
    [cache_bits] (default 16) sizes the hot compute tables at
    [2^cache_bits] slots each; the cold tables (dot, adjoint) get
    [2^(cache_bits - 4)].  Raises [Invalid_argument] outside [4, 24]. *)

val cnum : t -> Cnum.t -> Cnum.t
(** Intern a complex number in this context's table. *)

val set_trace : t -> Obs.Trace.t -> unit
(** Attach an event sink; pass {!Obs.Trace.null} to detach. *)

val set_order : t -> Order.t -> unit
(** Install a level<->qubit order.  The caller is responsible for keeping
    any live DDs consistent with it — {!Reorder} changes the order and
    the state together; setting an order against an entangled state built
    under a different one silently re-labels its qubits. *)

val order : t -> Order.t

val level_of_qubit : t -> int -> int
(** Level hosting a qubit under the context's live order. *)

val qubit_of_level : t -> int -> int
(** Qubit hosted at a level under the context's live order. *)

val apply_kind_id : t -> int * int * int * int -> int
(** Dense collision-free id for a structured-apply gate kind — the
    quadruple of interned 2x2 entry tags.  Equal ids imply equal
    matrices, so the id is safe as a compute-table key word. *)

val apply_layout_id : t -> int * (int * bool) list -> int
(** Dense id for a (target, sorted controls) layout; same guarantee. *)

val clear_compute_caches : t -> unit
(** Drop all memoisation tables (unique tables are kept, so canonicity is
    unaffected).  Useful between timed runs. *)

val v_unique_size : t -> int
(** Number of distinct vector nodes ever created (monotone). *)

val m_unique_size : t -> int

val live_v_nodes : t -> int
(** Vector nodes currently resident in the unique table. *)

val live_m_nodes : t -> int

val table_stats : t -> Compute_table.stats list
(** Hit/miss/eviction counters of every compute table, in a fixed order. *)

val lock_stats : t -> (string * Compute_table.lock_stats) list
(** Stripe-lock contention counters of every lockable shared structure,
    labelled: ["cnum"] (the canonical weight table), ["unique_v"] /
    ["unique_m"] (the hash-cons tables), then one entry per compute
    table under its {!Compute_table.name}.  Counters only advance while
    {!set_parallel} is armed; read at quiescence. *)

val reset_lock_stats : t -> unit

val unique_table_bytes : t -> int
(** Estimated bytes resident in the unique tables and the canonical
    weight table, from live entry counts times documented per-entry
    layout costs (vnode 11 words, mnode 19, weight 6; 8-byte words).
    O(1) — safe on hot observability paths. *)

val compute_table_bytes : t -> int
(** Estimated bytes resident across all nine compute tables (8 words
    per packed entry).  O(1). *)

val residency_bytes : t -> int
(** {!unique_table_bytes} + {!compute_table_bytes} — the [mem.*]
    telemetry gauge and the ledger's per-window memory column. *)

val gc_stats : t -> gc_stats

val apply_skips : t -> int
(** Structured-apply rebuild-stable short-circuits since the last
    {!reset_stats}: subtrees the kernel proved a rebuild would return
    unchanged, answered in O(1) without probing the apply table.  On
    cache-friendly circuits these skips, not probe hits, carry most of
    the reuse. *)

val note_apply_skip : t -> unit
(** Count one rebuild-stable short-circuit (called by the apply kernel). *)

val set_parallel : t -> bool -> unit
(** Arm (or disarm) every shared table — the canonical weight table, both
    unique tables, all compute tables — for concurrent interning from
    worker domains.  The plain-Hashtbl members (identity cache, apply
    kind/layout ids, rebuild-stable flags) stay single-domain: the engine
    only runs [Vdd.add]/[Mdd.mul]/[Measure.sample] in workers, which
    never touch them.  Toggle only while no worker domain is running. *)

val per_level_v_nodes : t -> levels:int -> int array
(** Resident vector nodes per level, straight from the unique table's
    incrementally maintained counters — O(levels), no DD walk.  Between
    collections this counts the whole resident table (a superset of any
    one root's reachable set), which is exactly what the adaptive-reorder
    bulge probe wants to bound. *)

val reset_stats : t -> unit
(** Zero the compute-table counters and the GC statistics.  Node-creation
    totals ({!v_unique_size}) are identifiers and stay monotone. *)

val pp_stats : Format.formatter -> t -> unit

val collect : t -> v_roots:Types.vedge list -> m_roots:Types.medge list ->
  int * int
(** Generation-aware mark-and-sweep garbage collection: every node
    unreachable from the given root edges (plus the identity cache, which
    is rooted) is dropped from the unique tables.  Compute-table entries
    are swept individually — entries whose nodes all survive stay warm
    across the collection; only entries referencing dead nodes are
    invalidated.  Long-running simulations call this periodically with the
    current state (and any cached oracle matrices) as roots.  Returns the
    numbers of vector and matrix nodes removed. *)
