(* Structured gate application: apply a gate described as
   {target; controls; 2x2 matrix} directly to a vector DD, without ever
   materialising the n-qubit gate matrix DD.

   [Mdd.gate] pads the 2x2 target matrix with explicit identity levels and
   control branching, and [Mdd.apply] then recurses over that identity
   structure — paying node construction, compute-table traffic and
   multiplications that all multiply by exactly 1.  "Stripping Quantum
   Decision Diagrams of their Identity" (Sander et al.) observes that most
   of a gate DD *is* identity; the kernel below skips it:

   * levels above the target whose qubit is not a control are traversed
     with plain recursion — children rebuilt, weights untouched;
   * control levels recurse only into the active branch; the inactive
     branch is acted on by the identity, which collapses to a single
     weight product instead of a subtree traversal;
   * at the target level the 2x2 matrix is applied in closed form on the
     two children;
   * controls *below* the target descend the four quadrant blocks of the
     virtual gate the same way [Mdd.gate] builds them — branch selection
     at control levels, identity short-cuts everywhere else.

   Per-gate work is therefore proportional to the state DD — never to the
   qubit count n.

   Exactness: the kernel is value-identical to [Mdd.apply] on the DD that
   [Mdd.gate] would have built — same complex operations, same operand
   order, same normalisation pivots.  This is not a luxury.  The complex
   table merges within a tolerance, so interning is order-dependent:
   computing mathematically equal weights along different arithmetic
   routes lets them drift to distinct representatives, and the state DD
   fragments (observed on a 20-qubit Grover iteration: 1226 nodes where
   the canonical state has 39).  To stay on the generic path's arithmetic
   the prelude below replays the weight algebra of [Mdd.gate] +
   [Hashcons.make] — normalisation pivots chosen by the same
   first-maximal-magnitude rule, normalised weights interned the same way
   — without allocating a single DD node.  The recursion then mirrors
   [Mdd.apply]: all work happens on unit-weight nodes, weights combine as
   (gate edge weight x state edge weight) exactly as the generic kernel
   multiplies them.

   Results are memoised in [Context.apply_v] under the key
   (state node id, gate kind id, layout id packed with the recursion
   role); kind and layout ids are interned in the context (see
   context.ml), so equal keys imply equal gates and a collision can never
   produce a wrong answer. *)

open Dd_complex
open Types

type control = { qubit : int; positive : bool }

(* Virtual gate-DD level descriptors, precomputed by the cascade below.
   [Skip] is an uninvolved level (both children carry weight one);
   [Ctrl] is a control level: the active branch continues into the
   sub-structure with weight [active_w], the inactive branch sees the
   identity scaled by [ident_w] ([None] for off-diagonal blocks, whose
   inactive branch is zero). *)
type step =
  | Skip
  | Ctrl of { active_high : bool; ident_w : Cnum.t option; active_w : Cnum.t }

(* First-maximal-magnitude pivot over raw child weights, in child order —
   exactly [Hashcons.make]'s rule (strict >, so the first maximum wins;
   zero weights have magnitude 0 and never win). *)
let pivot4 w0 w1 w2 w3 =
  let pivot = ref Cnum.zero and best = ref 0. in
  let consider w =
    let m = Cnum.mag2 w in
    if m > !best then begin
      best := m;
      pivot := w
    end
  in
  consider w0;
  consider w1;
  consider w2;
  consider w3;
  !pivot

(* role codes packed into the compute-table's third key word *)
let role_main = 0
let role_block ij = 1 + ij

(* Gate-independent identity-rebuild memo: stored under (node id, 0, 5).
   Gate entries use k2 = kind_id >= 1 and k3 = (layout_id lsl 3) lor role
   with layout_id >= 1, i.e. k3 >= 8 — so the key spaces are disjoint.
   Sharing the slot across gates mirrors the generic kernel, whose
   identity chains are hash-consed and hence share mul_mv entries. *)
let role_ident = 5

(* A canonical subtree passes through [Hashcons.make] unchanged iff every
   node's normalisation pivot — the first child weight of strictly maximal
   magnitude — is exactly one.  That is usually true by construction, but
   not always: tolerance interning can merge a normalised child weight
   with a representative of magnitude exactly 1, leaving stored children
   such as [-1; 1] whose rebuild picks a different pivot and yields a
   different node.  The generic kernel re-normalises those nodes when it
   drags the state through a gate's identity structure, so the fast path
   may only skip a subtree that is provably rebuild-stable.  The flag is
   intrinsic to the (immutable) node and memoised per node id. *)
let rec rebuild_stable ctx (v : vnode) =
  v_is_terminal v
  ||
  match Hashtbl.find_opt ctx.Context.apply_stable v.vid with
  | Some s -> s
  | None ->
    let stable_edge (e : vedge) = v_is_zero e || rebuild_stable ctx e.vt in
    let s =
      Cnum.is_exact_one (pivot4 v.v_low.vw v.v_high.vw Cnum.zero Cnum.zero)
      && stable_edge v.v_low && stable_edge v.v_high
    in
    Hashtbl.add ctx.Context.apply_stable v.vid s;
    s

let apply ctx ~n ~target ?(controls = []) entries state =
  let reject message =
    Dd_error.invalid_operand ~operation:"Apply.apply" message
  in
  if Array.length entries <> 4 then reject "entries must hold 4 values";
  if target < 0 || target >= n then
    reject (Printf.sprintf "target %d out of range for %d qubits" target n);
  (* qubit -> level translation through the live order; everything below
     (polarity array, cascade, layout key) is level-indexed, mirroring
     the virtual gate DD [Mdd.gate] would build under the same order *)
  let polarity = Array.make n None in
  List.iter
    (fun { qubit; positive } ->
      if qubit < 0 || qubit >= n then
        reject (Printf.sprintf "control %d out of range for %d qubits" qubit n);
      if qubit = target then reject "control equals target";
      let level = Context.level_of_qubit ctx qubit in
      if polarity.(level) <> None then
        reject (Printf.sprintf "duplicate control %d" qubit);
      polarity.(level) <- Some positive)
    controls;
  let target = Context.level_of_qubit ctx target in
  if v_is_zero state then v_zero
  else begin
    if state.vt.level <> n - 1 then
      reject
        (Printf.sprintf "state has height %d, expected %d"
           (state.vt.level + 1) n);
    let intern z = Context.cnum ctx z in
    let e = Array.map intern entries in
    (* the layout is keyed by *levels* (target already translated above):
       a reorder changes the layout id, so apply_v entries recorded under
       one order can never answer for another *)
    let sorted =
      List.sort compare
        (List.map
           (fun c -> (Context.level_of_qubit ctx c.qubit, c.positive))
           controls)
    in
    let kind_id =
      Context.apply_kind_id ctx
        (Cnum.tag e.(0), Cnum.tag e.(1), Cnum.tag e.(2), Cnum.tag e.(3))
    in
    let layout_id = Context.apply_layout_id ctx (target, sorted) in
    (* ---- weight cascade: replay Mdd.gate's normalisation bottom-up ----
       Below the target, each of the four quadrant blocks carries a top
       weight (bw) and a zero flag (bz); diagonal blocks stop being zero at
       their first control level, where an identity branch appears. *)
    let bw = Array.copy e in
    let bz = Array.map Cnum.is_exact_zero e in
    let below = Array.init 4 (fun _ -> Array.make (max target 1) Skip) in
    for z = 0 to target - 1 do
      match polarity.(z) with
      | None -> () (* [b,0,0,b]: pivot b, children one, weight unchanged *)
      | Some pos ->
        for ij = 0 to 3 do
          let diagonal = ij = 0 || ij = 3 in
          if diagonal then begin
            let sub_w = if bz.(ij) then Cnum.zero else bw.(ij) in
            let p =
              if pos then pivot4 Cnum.one Cnum.zero Cnum.zero sub_w
              else pivot4 sub_w Cnum.zero Cnum.zero Cnum.one
            in
            (* intern in child-index order, as Hashcons.make does when the
               gate DD is built: positive controls put the identity branch
               first, negative controls the active branch.  Interning order
               assigns tags, and tags feed Vdd.add's canonical operand
               swap — a different order here would de-synchronise a
               fast-path context from a generic-path one. *)
            let ident_w, active_w =
              if pos then begin
                let iw = intern (Cnum.div Cnum.one p) in
                let aw =
                  if bz.(ij) then Cnum.zero else intern (Cnum.div sub_w p)
                in
                (iw, aw)
              end
              else begin
                let aw =
                  if bz.(ij) then Cnum.zero else intern (Cnum.div sub_w p)
                in
                let iw = intern (Cnum.div Cnum.one p) in
                (iw, aw)
              end
            in
            below.(ij).(z) <-
              Ctrl { active_high = pos; ident_w = Some ident_w; active_w };
            bw.(ij) <- p;
            bz.(ij) <- false
          end
          else if not bz.(ij) then begin
            (* [0,0,0,b] (or mirrored): pivot = b, active child one *)
            below.(ij).(z) <-
              Ctrl
                {
                  active_high = pos;
                  ident_w = None;
                  active_w = intern (Cnum.div bw.(ij) bw.(ij));
                }
            (* weight stays bw *)
          end
        done
    done;
    (* Lowest control level of each block ([target] when there is none):
       below it every step is an uninvolved identity level, so a subtree
       living entirely under it is acted on by the identity only — for a
       rebuild-stable subtree a single weight product instead of a
       traversal (see [rebuild_stable]).  For an uncontrolled gate this
       collapses the whole below-target region: the 2x2 matrix acts in
       closed form on the target's two children. *)
    let lowest_ctrl = Array.make 4 target in
    Array.iteri
      (fun ij steps ->
        for z = target - 1 downto 0 do
          match steps.(z) with
          | Ctrl _ -> lowest_ctrl.(ij) <- z
          | Skip -> ()
        done)
      below;
    let traw =
      Array.init 4 (fun ij -> if bz.(ij) then Cnum.zero else bw.(ij))
    in
    let p = pivot4 traw.(0) traw.(1) traw.(2) traw.(3) in
    if Cnum.is_exact_zero p then v_zero (* zero matrix *)
    else begin
      let nw =
        Array.map
          (fun w ->
            if Cnum.is_exact_zero w then Cnum.zero
            else intern (Cnum.div w p))
          traw
      in
      (* Above the target a single edge weight propagates upward; control
         levels normalise it against the identity branch's weight one. *)
      let above = Array.make (max (n - target - 1) 1) Skip in
      let cur = ref p in
      for z = target + 1 to n - 1 do
        match polarity.(z) with
        | None -> () (* [w,0,0,w]: children one, weight unchanged *)
        | Some pos ->
          let pv =
            if pos then pivot4 Cnum.one Cnum.zero Cnum.zero !cur
            else pivot4 !cur Cnum.zero Cnum.zero Cnum.one
          in
          (* child-index intern order again, see the below-target cascade *)
          let ident_w, active_w =
            if pos then begin
              let iw = intern (Cnum.div Cnum.one pv) in
              let aw = intern (Cnum.div !cur pv) in
              (iw, aw)
            end
            else begin
              let aw = intern (Cnum.div !cur pv) in
              let iw = intern (Cnum.div Cnum.one pv) in
              (iw, aw)
            end
          in
          above.(z - target - 1) <-
            Ctrl { active_high = pos; ident_w = Some ident_w; active_w };
          cur := pv
      done;
      let w_root = !cur in
      (* ---- recursion: Mdd.apply on the virtual gate DD ---- *)
      let table = ctx.Context.apply_v in
      let k3_of role = (layout_id lsl 3) lor role in
      (* Identity acting on a subtree.  Rebuild-stable subtrees collapse
         to a single weight product — the one place the kernel beats the
         generic path asymptotically.  Unstable subtrees (rare; see
         [rebuild_stable]) replay the generic kernel's identity descent
         node for node, so the re-normalisation it performs happens here
         too and both paths stay bitwise in lockstep. *)
      let rec ident_unit (v : vnode) =
        match Compute_table.find table ~k1:v.vid ~k2:0 ~k3:role_ident with
        | Some r -> r
        | None ->
          let low = ident_sub v.v_low in
          let high = ident_sub v.v_high in
          let r = Vdd.make ctx v.level low high in
          Compute_table.store table ~k1:v.vid ~k2:0 ~k3:role_ident r;
          r
      and ident_sub (edge : vedge) =
        if v_is_zero edge then v_zero
        else if v_is_terminal edge.vt then edge
        else if rebuild_stable ctx edge.vt then begin
          (* cache-equivalent win without a table probe — counted so the
             bench can see the reuse the apply_v hit rate misses *)
          Context.note_apply_skip ctx;
          edge
        end
        else Vdd.scale ctx (Cnum.mul Cnum.one edge.vw) (ident_unit edge.vt)
      in
      let ident_edge w (edge : vedge) =
        if v_is_zero edge then v_zero
        else if v_is_terminal edge.vt then begin
          let w = intern (Cnum.mul w edge.vw) in
          if Cnum.is_exact_zero w then v_zero else { vw = w; vt = v_terminal }
        end
        else if rebuild_stable ctx edge.vt then begin
          (* the generic rebuild returns the same node under its raw
             normalisation pivot (bitwise one, but a tagged representative
             — tags feed Vdd.add's operand swap, so the exact value
             matters, not just its bits) *)
          Context.note_apply_skip ctx;
          let v = edge.vt in
          Vdd.scale ctx
            (Cnum.mul w edge.vw)
            {
              vw = pivot4 v.v_low.vw v.v_high.vw Cnum.zero Cnum.zero;
              vt = v;
            }
        end
        else Vdd.scale ctx (Cnum.mul w edge.vw) (ident_unit edge.vt)
      in
      let rec unit_main (v : vnode) =
        let k3 = k3_of role_main in
        match Compute_table.find table ~k1:v.vid ~k2:kind_id ~k3 with
        | Some r -> r
        | None ->
          let level = v.level in
          (* Child evaluation order mirrors Mdd.apply exactly: low branch
             first, then high, and inside each Vdd.add the high-side
             operand before the low-side one (the generic kernel passes
             both sub-applications as arguments, which OCaml evaluates
             right to left).  Order matters because node and tag creation
             order feeds Vdd.add's canonical operand swap — see the
             exactness note at the top of this file. *)
          let r =
            if level > target then
              match above.(level - target - 1) with
              | Skip ->
                let low = main_edge Cnum.one v.v_low in
                let high = main_edge Cnum.one v.v_high in
                Vdd.make ctx level low high
              | Ctrl { active_high; ident_w; active_w } ->
                let iw = Option.get ident_w in
                if active_high then begin
                  let low = ident_edge iw v.v_low in
                  let high = main_edge active_w v.v_high in
                  Vdd.make ctx level low high
                end
                else begin
                  let low = main_edge active_w v.v_low in
                  let high = ident_edge iw v.v_high in
                  Vdd.make ctx level low high
                end
            else begin
              (* level = target: no level skipping, so the descent from
                 the root hits every level down to here *)
              let a01 = block_edge 1 nw.(1) v.v_high in
              let a00 = block_edge 0 nw.(0) v.v_low in
              let low = Vdd.add ctx a00 a01 in
              let a11 = block_edge 3 nw.(3) v.v_high in
              let a10 = block_edge 2 nw.(2) v.v_low in
              let high = Vdd.add ctx a10 a11 in
              Vdd.make ctx level low high
            end
          in
          Compute_table.store table ~k1:v.vid ~k2:kind_id ~k3 r;
          r
      and main_edge w (edge : vedge) =
        if v_is_zero edge then v_zero
        else Vdd.scale ctx (Cnum.mul w edge.vw) (unit_main edge.vt)
      and block_edge ij w (edge : vedge) =
        if Cnum.is_exact_zero w || v_is_zero edge then v_zero
        else if v_is_terminal edge.vt then begin
          let w = intern (Cnum.mul w edge.vw) in
          if Cnum.is_exact_zero w then v_zero else { vw = w; vt = v_terminal }
        end
        else if edge.vt.level < lowest_ctrl.(ij) then
          (* only identity levels below: the identity acts on the subtree *)
          ident_edge w edge
        else Vdd.scale ctx (Cnum.mul w edge.vw) (unit_block ij edge.vt)
      and unit_block ij (v : vnode) =
        let k3 = k3_of (role_block ij) in
        match Compute_table.find table ~k1:v.vid ~k2:kind_id ~k3 with
        | Some r -> r
        | None ->
          let level = v.level in
          (* low before high, as in unit_main *)
          let r =
            match below.(ij).(level) with
            | Skip ->
              let low = block_edge ij Cnum.one v.v_low in
              let high = block_edge ij Cnum.one v.v_high in
              Vdd.make ctx level low high
            | Ctrl { active_high; ident_w; active_w } ->
              let inactive edge =
                match ident_w with
                | None -> v_zero
                | Some w -> ident_edge w edge
              in
              if active_high then begin
                let low = inactive v.v_low in
                let high = block_edge ij active_w v.v_high in
                Vdd.make ctx level low high
              end
              else begin
                let low = block_edge ij active_w v.v_low in
                let high = inactive v.v_high in
                Vdd.make ctx level low high
              end
          in
          Compute_table.store table ~k1:v.vid ~k2:kind_id ~k3 r;
          r
      in
      main_edge w_root state
    end
  end
