open Dd_complex

type violation =
  | Unrepresented_node of { dd : string; level : int; id : int }
  | Pivot_rule of { dd : string; level : int; id : int; detail : string }
  | Zero_stub of { dd : string; level : int; id : int }
  | Uninterned_weight of { dd : string; level : int; id : int }
  | Level_skew of { dd : string; level : int; id : int }
  | Norm_drift of { norm : float; tolerance : float }
  | Stale_entry of { table : string; k1 : int; k2 : int; k3 : int }
  | Order_skew of { detail : string }

type violation_class = Canonicity | Norm | Table

let class_of = function
  | Unrepresented_node _ | Pivot_rule _ | Zero_stub _ | Uninterned_weight _
  | Level_skew _ | Order_skew _ ->
    Canonicity
  | Norm_drift _ -> Norm
  | Stale_entry _ -> Table

let to_string = function
  | Unrepresented_node { dd; level; id } ->
    Printf.sprintf "%s node %d (level %d) is not its unique table's \
                    representative" dd id level
  | Pivot_rule { dd; level; id; detail } ->
    Printf.sprintf "%s node %d (level %d) violates the pivot rule: %s" dd id
      level detail
  | Zero_stub { dd; level; id } ->
    Printf.sprintf
      "%s node %d (level %d) has a zero-weight edge to a non-terminal" dd id
      level
  | Uninterned_weight { dd; level; id } ->
    Printf.sprintf "%s node %d (level %d) carries an uninterned weight" dd id
      level
  | Level_skew { dd; level; id } ->
    Printf.sprintf "%s node %d (level %d) has a child skipping a level" dd id
      level
  | Norm_drift { norm; tolerance } ->
    Printf.sprintf "state norm drifted to %.12g (tolerance %g)" norm
      tolerance
  | Stale_entry { table; k1; k2; k3 } ->
    Printf.sprintf
      "compute table %s entry (%d, %d, %d) resolves to a freed node" table
      k1 k2 k3
  | Order_skew { detail } ->
    Printf.sprintf "level<->qubit order is inconsistent: %s" detail

(* slack for "magnitude at most one": normalised weights are exact
   quotients, but interning may merge a weight with a canonical value up
   to the table tolerance away *)
let mag_slack = 1e-9

(* One node's structural checks, shared by both arities.  [children] are
   the node's child edges; [mem] probes the node's unique table. *)
let check_node ~dd ~push ~mem ~level ~id children =
  if not (mem ()) then push (Unrepresented_node { dd; level; id });
  let best = ref 0. in
  Array.iteri
    (fun i (weight, target_level) ->
      if Cnum.is_exact_zero weight then begin
        if target_level >= 0 then push (Zero_stub { dd; level; id })
      end
      else begin
        if Cnum.tag weight < 0 then
          push (Uninterned_weight { dd; level; id });
        if target_level <> level - 1 then push (Level_skew { dd; level; id });
        let m = Cnum.mag2 weight in
        if m > 1. +. mag_slack then
          push
            (Pivot_rule
               {
                 dd;
                 level;
                 id;
                 detail =
                   Printf.sprintf "child %d weight magnitude^2 = %.12g > 1"
                     i m;
               });
        if m > !best then best := m
      end)
    children;
  if !best = 0. then
    push (Pivot_rule { dd; level; id; detail = "every child edge is zero" })
  else begin
    (* the normalisation pivot was the first child of maximal magnitude
       *before* the division, an ordering interning noise makes
       unrecoverable under near-ties — but whichever child it was, its
       stored quotient is exactly one.  So the checkable invariant is:
       some child carries weight exactly one (and the magnitude bound
       above caps everything else at 1) *)
    let has_unit =
      Array.exists (fun (weight, _) -> Cnum.is_exact_one weight) children
    in
    if not has_unit then
      push
        (Pivot_rule
           {
             dd;
             level;
             id;
             detail = "no child carries weight 1 (normalisation pivot lost)";
           })
  end

let norm2_uncached (edge : Types.vedge) =
  let memo = Hashtbl.create 256 in
  let rec node_norm (node : Types.vnode) =
    if node.Types.level < 0 then 1.
    else
      match Hashtbl.find_opt memo node.Types.vid with
      | Some v -> v
      | None ->
        let contribution (child : Types.vedge) =
          if Cnum.is_exact_zero child.Types.vw then 0.
          else Cnum.mag2 child.Types.vw *. node_norm child.Types.vt
        in
        let v =
          contribution node.Types.v_low +. contribution node.Types.v_high
        in
        Hashtbl.add memo node.Types.vid v;
        v
  in
  if Cnum.is_exact_zero edge.Types.vw then 0.
  else Cnum.mag2 edge.Types.vw *. node_norm edge.Types.vt

let check_vector ?norm_tol ctx (edge : Types.vedge) =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let seen = Hashtbl.create 256 in
  let rec walk (node : Types.vnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem seen node.Types.vid) then begin
      Hashtbl.add seen node.Types.vid ();
      check_node ~dd:"vector" ~push
        ~mem:(fun () -> Hashcons.V.mem ctx.Context.v_unique node)
        ~level:node.Types.level ~id:node.Types.vid
        [|
          (node.Types.v_low.Types.vw, node.Types.v_low.Types.vt.Types.level);
          (node.Types.v_high.Types.vw, node.Types.v_high.Types.vt.Types.level);
        |];
      walk node.Types.v_low.Types.vt;
      walk node.Types.v_high.Types.vt
    end
  in
  if not (Cnum.is_exact_zero edge.Types.vw) then begin
    if Cnum.tag edge.Types.vw < 0 then
      push
        (Uninterned_weight
           { dd = "vector"; level = edge.Types.vt.Types.level + 1; id = 0 });
    walk edge.Types.vt
  end;
  (match norm_tol with
  | None -> ()
  | Some tolerance ->
    let n2 = norm2_uncached edge in
    let norm = sqrt n2 in
    if (not (Float.is_finite norm)) || Float.abs (norm -. 1.) > tolerance
    then push (Norm_drift { norm; tolerance }));
  List.rev !violations

let check_matrix ctx (edge : Types.medge) =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let seen = Hashtbl.create 256 in
  let child (e : Types.medge) = (e.Types.mw, e.Types.mt.Types.level) in
  let rec walk (node : Types.mnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem seen node.Types.mid) then begin
      Hashtbl.add seen node.Types.mid ();
      check_node ~dd:"matrix" ~push
        ~mem:(fun () -> Hashcons.M.mem ctx.Context.m_unique node)
        ~level:node.Types.level ~id:node.Types.mid
        [|
          child node.Types.m00; child node.Types.m01; child node.Types.m10;
          child node.Types.m11;
        |];
      walk node.Types.m00.Types.mt;
      walk node.Types.m01.Types.mt;
      walk node.Types.m10.Types.mt;
      walk node.Types.m11.Types.mt
    end
  in
  if not (Cnum.is_exact_zero edge.Types.mw) then begin
    if Cnum.tag edge.Types.mw < 0 then
      push
        (Uninterned_weight
           { dd = "matrix"; level = edge.Types.mt.Types.level + 1; id = 0 });
    walk edge.Types.mt
  end;
  List.rev !violations

let check_tables ctx =
  let violations = ref [] in
  let v_resident = Hashtbl.create 4096 in
  let m_resident = Hashtbl.create 4096 in
  Hashcons.V.iter
    (fun (n : Types.vnode) -> Hashtbl.replace v_resident n.Types.vid ())
    ctx.Context.v_unique;
  Hashcons.M.iter
    (fun (n : Types.mnode) -> Hashtbl.replace m_resident n.Types.mid ())
    ctx.Context.m_unique;
  let v_live id = id = 0 || Hashtbl.mem v_resident id in
  let m_live id = id = 0 || Hashtbl.mem m_resident id in
  (* Only the *values* matter: node ids are never reused, so a key naming
     a dead id is a harmless miss, but a value edge to a freed node would
     resurrect it on the next hit (see Context.collect). *)
  let check_v table =
    let name = Compute_table.name table in
    Compute_table.iter
      (fun k1 k2 k3 (v : Types.vedge) ->
        if not (v_live v.Types.vt.Types.vid) then
          violations := Stale_entry { table = name; k1; k2; k3 } :: !violations)
      table
  in
  let check_m table =
    let name = Compute_table.name table in
    Compute_table.iter
      (fun k1 k2 k3 (v : Types.medge) ->
        if not (m_live v.Types.mt.Types.mid) then
          violations := Stale_entry { table = name; k1; k2; k3 } :: !violations)
      table
  in
  check_v ctx.Context.add_v;
  check_v ctx.Context.mul_mv;
  check_v ctx.Context.apply_v;
  check_m ctx.Context.add_m;
  check_m ctx.Context.mul_mm;
  check_m ctx.Context.adjoint;
  List.rev !violations

(* The order map is part of the representation's meaning: if the two
   arrays stop being mutually inverse permutations, every qubit-facing
   translation (gate targets, measurement, amplitudes) silently reads the
   wrong wire.  Re-derive the invariant from the arrays themselves. *)
let check_order ctx =
  let order = Context.order ctx in
  if Order.is_identity order || Order.is_valid order then []
  else
    [
      Order_skew
        {
          detail =
            Printf.sprintf
              "qubit_of_level [%s] and level_of_qubit are not mutually \
               inverse permutations"
              (Order.to_string order);
        };
    ]

let rebuild_vector ctx (edge : Types.vedge) =
  let memo = Hashtbl.create 256 in
  (* bottom-up: rebuild every node through Vdd.make (re-normalising and
     re-interning), then scale by the original edge weight *)
  let rec rebuild (e : Types.vedge) =
    if Cnum.is_exact_zero e.Types.vw then Types.v_zero
    else if e.Types.vt.Types.level < 0 then
      { Types.vw = Context.cnum ctx e.Types.vw; Types.vt = Types.v_terminal }
    else begin
      let node = e.Types.vt in
      let rebuilt =
        match Hashtbl.find_opt memo node.Types.vid with
        | Some r -> r
        | None ->
          let low = rebuild node.Types.v_low in
          let high = rebuild node.Types.v_high in
          let r = Vdd.make ctx node.Types.level low high in
          Hashtbl.add memo node.Types.vid r;
          r
      in
      Vdd.scale ctx (Context.cnum ctx e.Types.vw) rebuilt
    end
  in
  rebuild edge
