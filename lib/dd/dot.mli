(** Graphviz export of decision diagrams, for inspecting the size effects
    the paper illustrates in Fig. 2 and Fig. 5. *)

val vector_to_dot : ?name:string -> ?annotate:bool -> Vdd.edge -> string
(** DOT source for a vector DD; edge labels carry the weights (weights equal
    to one are omitted, zero stubs are drawn as small boxes, as in the
    paper's drawing convention).  With [~annotate:true] every non-zero edge
    label additionally carries the weight magnitude and its log2 bucket
    ([|w|=0.7071 (2^0)]), and nodes are grouped into [rank=same] rows with
    a plaintext level label per DD level — the view used by
    [ddsim inspect --dot]. *)

val matrix_to_dot : ?name:string -> ?annotate:bool -> Mdd.edge -> string
(** DOT source for a matrix DD; the four out-edges are labelled 00/01/10/11
    for the quadrants.  [~annotate:true] behaves as for
    {!vector_to_dot}. *)
