(** Graphviz export of decision diagrams, for inspecting the size effects
    the paper illustrates in Fig. 2 and Fig. 5. *)

val vector_to_dot :
  ?name:string -> ?annotate:bool -> ?order:Order.t -> Vdd.edge -> string
(** DOT source for a vector DD; edge labels carry the weights (weights equal
    to one are omitted, zero stubs are drawn as small boxes, as in the
    paper's drawing convention).  Node labels name the *qubit* hosted at
    the node's level under [order] (default identity) — under a reordered
    run [q2] at the top level really means qubit 2, not level 2.  With
    [~annotate:true] every non-zero edge label additionally carries the
    weight magnitude and its log2 bucket ([|w|=0.7071 (2^0)]), and nodes
    are grouped into [rank=same] rows labelled [level N (qubit Q)] — the
    view used by [ddsim inspect --dot]. *)

val matrix_to_dot :
  ?name:string -> ?annotate:bool -> ?order:Order.t -> Mdd.edge -> string
(** DOT source for a matrix DD; the four out-edges are labelled 00/01/10/11
    for the quadrants.  [~annotate:true] and [order] behave as for
    {!vector_to_dot}. *)
