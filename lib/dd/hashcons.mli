(** Shared hash-consing core for vector and matrix DD nodes: one
    normalisation + unique-table code path, instantiated per node arity.
    See {!Vdd.make} / {!Mdd.make} for the public entry points. *)

open Dd_complex

module type NODE = sig
  type node
  type edge

  val arity : int
  val terminal : node
  val zero_edge : edge
  val is_zero : edge -> bool
  val weight : edge -> Cnum.t
  val target : edge -> node
  val edge : Cnum.t -> node -> edge
  val id : node -> int
  val level : node -> int
  val child : node -> int -> edge
  val build : id:int -> level:int -> edge array -> node
end

module type S = sig
  type node
  type edge
  type t

  val create : intern:(Cnum.t -> Cnum.t) -> unit -> t

  val make : t -> level:int -> edge array -> edge
  (** Normalise [children] (mutated in place: child weights are divided by
      the first maximal-magnitude child weight and interned), hash-cons
      the node, return the canonical edge carrying the factored-out
      weight.  [children] must have length [arity]; non-zero children
      must sit one level below [level]. *)

  val length : t -> int
  (** Nodes currently resident. *)

  val created : t -> int
  (** Nodes ever created (monotone; node ids are [1 .. created]). *)

  val iter : (node -> unit) -> t -> unit

  val prune : t -> keep:(node -> bool) -> int
  (** Drop every node for which [keep] is false; returns how many were
      dropped.  Used by {!Context.collect} — callers must guarantee no
      live edge references a dropped node. *)

  val mem : t -> node -> bool
  (** Is this exact node (physical equality) the table's resident
      representative?  False for a node that was pruned or forged —
      the auditor's canonicity probe. *)

  val set_parallel : t -> bool -> unit
  (** Arm (or disarm) the per-stripe mutexes so concurrent domains can
      intern through this table.  Sequential mode ([false], the default)
      takes no locks and behaves exactly as the pre-sharded table.
      Toggle only while no other domain is using the table. *)

  val per_level_counts : t -> levels:int -> int array
  (** Resident-node count per level, [0 .. levels-1], maintained
      incrementally on insert and rebuilt on {!prune} — O(levels), not a
      DD walk.  Counts nodes in the unique table, which between GC
      sweeps is a superset of any single root's reachable set. *)

  val lock_stats : t -> Compute_table.lock_stats
  (** Stripe-lock contention counters aggregated over the 16 stripes
      (counted only while {!set_parallel} is armed).  Read at
      quiescence. *)

  val reset_lock_stats : t -> unit
end

module Make (N : NODE) : S with type node = N.node and type edge = N.edge
module V : S with type node = Types.vnode and type edge = Types.vedge
module M : S with type node = Types.mnode and type edge = Types.medge
