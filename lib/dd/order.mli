(** The level<->qubit indirection for dynamic variable reordering.

    DD nodes are indexed by a structural [level] (terminal at -1, root of
    an n-qubit state at n-1); an order says which {e qubit} each level
    represents.  The identity order — the state every {!Context.t} starts
    in — is a zero-width sentinel meaning "level k is qubit k" at any
    width, so code paths that never reorder pay nothing.

    Orders are immutable values; {!Context.set_order} installs one in a
    package instance, and {!Reorder} produces new ones by adjacent-level
    swaps. *)

type t = private { level_of_qubit : int array; qubit_of_level : int array }

val identity : t
(** "Level k is qubit k" at every width. *)

val is_identity : t -> bool

val size : t -> int
(** Width of the explicit permutation; [0] for {!identity}. *)

val level_of_qubit : t -> int -> int
(** Level hosting a qubit; qubits beyond {!size} map to themselves. *)

val qubit_of_level : t -> int -> int
(** Qubit hosted at a level; levels beyond {!size} map to themselves. *)

val of_qubit_of_level : int array -> t
(** Build from the level->qubit image ([image.(l)] is the qubit at level
    [l]).  Raises [Invalid_argument] unless the image is a permutation of
    [0 .. length - 1].  A literal identity collapses to {!identity}. *)

val of_level_of_qubit : int array -> t
(** Build from the inverse image ([image.(q)] is the level of qubit [q]). *)

val is_valid : t -> bool
(** Both arrays are mutually inverse permutations of equal width — the
    invariant {!Audit.check_order} re-derives. *)

val swap_levels : t -> n:int -> int -> t
(** [swap_levels order ~n l] exchanges the qubits at levels [l] and
    [l + 1] of a width-[n] register (the order-map half of an adjacent
    swap).  Raises [Invalid_argument] when [l + 1 >= n]. *)

val equal : t -> t -> n:int -> bool
(** Same qubit at every level of a width-[n] register. *)

val to_string : t -> string
(** ["identity"], or the space-separated qubit-of-level image. *)

val of_string : string -> t
(** Inverse of {!to_string}; also accepts comma separators.  Raises
    [Invalid_argument] on malformed input. *)
