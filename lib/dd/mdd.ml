open Dd_complex
open Types

type edge = Types.medge
type control = { c_qubit : int; c_positive : bool }

let zero = m_zero

(* Normalisation and hash-consing live in the shared core (Hashcons):
   the four quadrants are divided by the first maximal-magnitude quadrant
   weight, which becomes the weight of the returned edge. *)
let make ctx level e00 e01 e10 e11 =
  Hashcons.M.make ctx.Context.m_unique ~level [| e00; e01; e10; e11 |]

let scale ctx s edge =
  if Cnum.is_exact_zero s || m_is_zero edge then m_zero
  else if Cnum.is_exact_one s then edge
  else
    let w = Context.cnum ctx (Cnum.mul s edge.mw) in
    if Cnum.is_exact_zero w then m_zero else { mw = w; mt = edge.mt }

let terminal_edge ctx w =
  let w = Context.cnum ctx w in
  if Cnum.is_exact_zero w then m_zero else { mw = w; mt = m_terminal }

let identity ctx n =
  let rec build k =
    if k = 0 then terminal_edge ctx Cnum.one
    else
      match Hashtbl.find_opt ctx.Context.identity_cache k with
      | Some e -> e
      | None ->
        let below = build (k - 1) in
        let e = make ctx (k - 1) below m_zero m_zero below in
        Hashtbl.add ctx.Context.identity_cache k e;
        e
  in
  if n < 0 then
    Dd_error.invalid_operand ~operation:"Mdd.identity" "negative qubit count"
  else build n

(* Bottom-up gate construction: below the target the four quadrant blocks
   f.(i).(j) are extended level by level (identity on uninvolved qubits,
   branch selection on control qubits: the inactive control value must see
   the identity on the diagonal blocks and zero elsewhere); at the target
   the four blocks become the children of one node; above the target a
   single edge is extended the same way. *)
let gate ctx ~n ~target ?(controls = []) entries =
  let reject message = Dd_error.invalid_operand ~operation:"Mdd.gate" message in
  if Array.length entries <> 4 then reject "entries must hold 4 values";
  if target < 0 || target >= n then
    reject (Printf.sprintf "target %d out of range for %d qubits" target n);
  (* target/control indices are qubits; translate them to levels through
     the context's live order, after which the construction below is
     purely level-indexed (identical to the historical behaviour under
     the identity order) *)
  let polarity = Array.make n None in
  List.iter
    (fun { c_qubit; c_positive } ->
      if c_qubit < 0 || c_qubit >= n then
        reject (Printf.sprintf "control %d out of range for %d qubits" c_qubit n);
      if c_qubit = target then reject "control equals target";
      let c_level = Context.level_of_qubit ctx c_qubit in
      if polarity.(c_level) <> None then
        reject (Printf.sprintf "duplicate control %d" c_qubit);
      polarity.(c_level) <- Some c_positive)
    controls;
  let target = Context.level_of_qubit ctx target in
  let blocks =
    Array.map (fun w -> terminal_edge ctx w)
      (Array.map (Context.cnum ctx) entries)
  in
  for z = 0 to target - 1 do
    let extend block =
      match polarity.(z) with
      | None -> fun _diag -> make ctx z block m_zero m_zero block
      | Some true -> fun diag -> make ctx z diag m_zero m_zero block
      | Some false -> fun diag -> make ctx z block m_zero m_zero diag
    in
    for idx = 0 to 3 do
      let on_diagonal = idx = 0 || idx = 3 in
      let diag = if on_diagonal then identity ctx z else m_zero in
      blocks.(idx) <- extend blocks.(idx) diag
    done
  done;
  let top = ref (make ctx target blocks.(0) blocks.(1) blocks.(2) blocks.(3)) in
  for z = target + 1 to n - 1 do
    let e = !top in
    top :=
      (match polarity.(z) with
      | None -> make ctx z e m_zero m_zero e
      | Some true -> make ctx z (identity ctx z) m_zero m_zero e
      | Some false -> make ctx z e m_zero m_zero (identity ctx z))
  done;
  !top

(* |row><col| on [n] qubits: a single path of nodes. *)
let outer_product ctx ~n ~row ~col =
  let order = ctx.Context.order in
  let rec build level edge =
    if level >= n then edge
    else
      let q = Order.qubit_of_level order level in
      let rbit = (row lsr q) land 1 and cbit = (col lsr q) land 1 in
      let place i j = if i = rbit && j = cbit then edge else m_zero in
      build (level + 1)
        (make ctx level (place 0 0) (place 0 1) (place 1 0) (place 1 1))
  in
  build 0 (terminal_edge ctx Cnum.one)

let rec add ctx a b =
  if m_is_zero a then b
  else if m_is_zero b then a
  else if m_is_terminal a.mt && m_is_terminal b.mt then
    terminal_edge ctx (Cnum.add a.mw b.mw)
  else begin
    assert (a.mt.level = b.mt.level);
    let a, b =
      if
        a.mt.mid < b.mt.mid
        || (a.mt.mid = b.mt.mid && Cnum.tag a.mw <= Cnum.tag b.mw)
      then (a, b)
      else (b, a)
    in
    let ratio = Context.cnum ctx (Cnum.div b.mw a.mw) in
    let table = ctx.Context.add_m in
    let k1 = a.mt.mid and k2 = b.mt.mid and k3 = Cnum.tag ratio in
    let unit_result =
      match Compute_table.find table ~k1 ~k2 ~k3 with
      | Some r -> r
      | None ->
        let na = a.mt and nb = b.mt in
        let part qa qb = add ctx qa (scale ctx ratio qb) in
        let r =
          make ctx na.level (part na.m00 nb.m00) (part na.m01 nb.m01)
            (part na.m10 nb.m10) (part na.m11 nb.m11)
        in
        Compute_table.store table ~k1 ~k2 ~k3 r;
        r
    in
    scale ctx a.mw unit_result
  end

let of_permutation ctx ~n f =
  if n > 30 then invalid_arg "Mdd.of_permutation: too many qubits";
  let size = 1 lsl n in
  let seen = Array.make size false in
  let acc = ref m_zero in
  for col = 0 to size - 1 do
    let row = f col in
    if row < 0 || row >= size then
      invalid_arg "Mdd.of_permutation: image out of range";
    if seen.(row) then invalid_arg "Mdd.of_permutation: not a bijection";
    seen.(row) <- true;
    acc := add ctx !acc (outer_product ctx ~n ~row ~col)
  done;
  !acc

let of_dense ctx matrix =
  let dim = Array.length matrix in
  if dim = 0 || dim land (dim - 1) <> 0 then
    invalid_arg "Mdd.of_dense: dimension must be a power of two";
  Array.iter
    (fun row ->
      if Array.length row <> dim then invalid_arg "Mdd.of_dense: not square")
    matrix;
  let order = ctx.Context.order in
  let rec build level rowidx colidx =
    if level < 0 then terminal_edge ctx matrix.(rowidx).(colidx)
    else
      let high = 1 lsl Order.qubit_of_level order level in
      make ctx level
        (build (level - 1) rowidx colidx)
        (build (level - 1) rowidx (colidx lor high))
        (build (level - 1) (rowidx lor high) colidx)
        (build (level - 1) (rowidx lor high) (colidx lor high))
  in
  let rec log2 k acc = if k = 1 then acc else log2 (k lsr 1) (acc + 1) in
  build (log2 dim 0 - 1) 0 0

let control_top ctx ~n ?(positive = true) u =
  if positive then make ctx n (identity ctx n) m_zero m_zero u
  else make ctx n u m_zero m_zero (identity ctx n)

(* Matrix-vector multiplication, Fig. 3 of the paper: the result for a
   (matrix node, vector node) pair — with unit top weights — is memoised, so
   re-occurring sub-products are computed once. *)
let rec apply ctx me ve =
  if m_is_zero me || v_is_zero ve then v_zero
  else if m_is_terminal me.mt then begin
    assert (v_is_terminal ve.vt);
    let w = Context.cnum ctx (Cnum.mul me.mw ve.vw) in
    if Cnum.is_exact_zero w then v_zero else { vw = w; vt = v_terminal }
  end
  else begin
    assert (me.mt.level = ve.vt.level);
    let table = ctx.Context.mul_mv in
    let k1 = me.mt.mid and k2 = ve.vt.vid in
    let unit_result =
      match Compute_table.find table ~k1 ~k2 ~k3:0 with
      | Some r -> r
      | None ->
        let m = me.mt and v = ve.vt in
        let low =
          Vdd.add ctx (apply ctx m.m00 v.v_low) (apply ctx m.m01 v.v_high)
        in
        let high =
          Vdd.add ctx (apply ctx m.m10 v.v_low) (apply ctx m.m11 v.v_high)
        in
        let r = Vdd.make ctx m.level low high in
        Compute_table.store table ~k1 ~k2 ~k3:0 r;
        r
    in
    Vdd.scale ctx (Cnum.mul me.mw ve.vw) unit_result
  end

let rec mul ctx ae be =
  if m_is_zero ae || m_is_zero be then m_zero
  else if m_is_terminal ae.mt then begin
    assert (m_is_terminal be.mt);
    terminal_edge ctx (Cnum.mul ae.mw be.mw)
  end
  else begin
    assert (ae.mt.level = be.mt.level);
    let table = ctx.Context.mul_mm in
    let k1 = ae.mt.mid and k2 = be.mt.mid in
    let unit_result =
      match Compute_table.find table ~k1 ~k2 ~k3:0 with
      | Some r -> r
      | None ->
        let a = ae.mt and b = be.mt in
        let entry ai0 ai1 b0j b1j =
          add ctx (mul ctx ai0 b0j) (mul ctx ai1 b1j)
        in
        let r =
          make ctx a.level
            (entry a.m00 a.m01 b.m00 b.m10)
            (entry a.m00 a.m01 b.m01 b.m11)
            (entry a.m10 a.m11 b.m00 b.m10)
            (entry a.m10 a.m11 b.m01 b.m11)
        in
        Compute_table.store table ~k1 ~k2 ~k3:0 r;
        r
    in
    scale ctx (Cnum.mul ae.mw be.mw) unit_result
  end

(* Top-split parallel product: the eight inner products of Eq. 2's four
   quadrant entries are independent recursions, so on a memo miss at the
   root they are handed to [par] — the engine's domain-pool scatter — and
   only the four additions, the node build and the store run on the
   calling domain.  Everything below the top level is plain [mul]; the
   compute tables are shared, so concurrent tasks still see each other's
   sub-products (locked, when the context is armed for parallel use).
   Results are canonical but not bitwise-reproducible: node-id creation
   order feeds [add]'s commutativity swap, and that order is racy across
   domains.  [par] must evaluate every thunk and return the results in
   order; it may run them on any domain, including the caller's. *)
let mul_par ctx ~par ae be =
  if m_is_zero ae || m_is_zero be then m_zero
  else if m_is_terminal ae.mt then begin
    assert (m_is_terminal be.mt);
    terminal_edge ctx (Cnum.mul ae.mw be.mw)
  end
  else begin
    assert (ae.mt.level = be.mt.level);
    let table = ctx.Context.mul_mm in
    let k1 = ae.mt.mid and k2 = be.mt.mid in
    let unit_result =
      match Compute_table.find table ~k1 ~k2 ~k3:0 with
      | Some r -> r
      | None ->
        let a = ae.mt and b = be.mt in
        let p =
          par
            [|
              (fun () -> mul ctx a.m00 b.m00);
              (fun () -> mul ctx a.m01 b.m10);
              (fun () -> mul ctx a.m00 b.m01);
              (fun () -> mul ctx a.m01 b.m11);
              (fun () -> mul ctx a.m10 b.m00);
              (fun () -> mul ctx a.m11 b.m10);
              (fun () -> mul ctx a.m10 b.m01);
              (fun () -> mul ctx a.m11 b.m11);
            |]
        in
        let r =
          make ctx a.level
            (add ctx p.(0) p.(1))
            (add ctx p.(2) p.(3))
            (add ctx p.(4) p.(5))
            (add ctx p.(6) p.(7))
        in
        Compute_table.store table ~k1 ~k2 ~k3:0 r;
        r
    in
    scale ctx (Cnum.mul ae.mw be.mw) unit_result
  end

let rec adjoint ctx e =
  if m_is_zero e then m_zero
  else if m_is_terminal e.mt then terminal_edge ctx (Cnum.conj e.mw)
  else
    let unit_result =
      match
        Compute_table.find ctx.Context.adjoint ~k1:e.mt.mid ~k2:0 ~k3:0
      with
      | Some r -> r
      | None ->
        let n = e.mt in
        let r =
          make ctx n.level (adjoint ctx n.m00) (adjoint ctx n.m10)
            (adjoint ctx n.m01) (adjoint ctx n.m11)
        in
        Compute_table.store ctx.Context.adjoint ~k1:n.mid ~k2:0 ~k3:0 r;
        r
    in
    scale ctx (Cnum.conj e.mw) unit_result

let kron ctx a b =
  if m_is_zero a || m_is_zero b then m_zero
  else begin
    let height_b = m_height b in
    let memo = Hashtbl.create 64 in
    let rec lift e =
      if m_is_zero e then m_zero
      else if m_is_terminal e.mt then scale ctx e.mw b
      else
        let node =
          match Hashtbl.find_opt memo e.mt.mid with
          | Some r -> r
          | None ->
            let n = e.mt in
            let r =
              make ctx (n.level + height_b) (lift n.m00) (lift n.m01)
                (lift n.m10) (lift n.m11)
            in
            Hashtbl.add memo n.mid r;
            r
        in
        scale ctx e.mw node
    in
    lift a
  end

let entry ?(order = Order.identity) edge ~n ~row ~col =
  let rec walk edge level acc =
    if m_is_zero edge then Cnum.zero
    else
      let acc = Cnum.mul acc edge.mw in
      if level < 0 then acc
      else
        let q = Order.qubit_of_level order level in
        let rbit = (row lsr q) land 1 and cbit = (col lsr q) land 1 in
        let child =
          match (rbit, cbit) with
          | 0, 0 -> edge.mt.m00
          | 0, 1 -> edge.mt.m01
          | 1, 0 -> edge.mt.m10
          | _, _ -> edge.mt.m11
        in
        walk child (level - 1) acc
  in
  walk edge (n - 1) Cnum.one

let to_dense ?(order = Order.identity) edge ~n =
  if n > 12 then invalid_arg "Mdd.to_dense: too many qubits";
  let dim = 1 lsl n in
  Array.init dim (fun row ->
      Array.init dim (fun col -> entry ~order edge ~n ~row ~col))

let iter_nodes f edge =
  let seen = Hashtbl.create 256 in
  let rec walk node =
    if (not (m_is_terminal node)) && not (Hashtbl.mem seen node.mid) then begin
      Hashtbl.add seen node.mid ();
      f node;
      List.iter
        (fun e -> if not (m_is_zero e) then walk e.mt)
        [ node.m00; node.m01; node.m10; node.m11 ]
    end
  in
  if not (m_is_zero edge) then walk edge.mt

let node_count edge =
  let count = ref 0 in
  iter_nodes (fun _ -> incr count) edge;
  !count

let equal = m_edge_equal

let of_diagonal ctx ~n f =
  if n > 30 then invalid_arg "Mdd.of_diagonal: too many qubits";
  let order = ctx.Context.order in
  let rec build level index =
    if level < 0 then terminal_edge ctx (f index)
    else
      let high = 1 lsl Order.qubit_of_level order level in
      make ctx level
        (build (level - 1) index)
        m_zero m_zero
        (build (level - 1) (index lor high))
  in
  build (n - 1) 0
