(** Dynamic variable reordering: adjacent-level swaps (the classic BDD
    swap, specialised to weighted quantum DDs) and a sifting search.

    A swap is a local hash-consed rewrite — every rebuilt node goes
    through {!Vdd.make}, so the pivot/normalisation rule and unique-table
    canonicity are preserved by construction, and nodes below the swapped
    pair are shared untouched.  {!swap} keeps the context's
    {!Order.t} in lockstep with the structure, so the qubit-space
    semantics of the state never change. *)

type stats = {
  mutable swaps : int;  (** adjacent swaps applied *)
  nodes_before : int;  (** state DD nodes when sifting started *)
  mutable nodes_after : int;  (** state DD nodes when sifting returned *)
}

val swap_vector : Context.t -> Vdd.edge -> level:int -> Vdd.edge
(** Exchange levels [level] and [level + 1] of a vector DD — the pure
    structural half of a swap; the caller must swap the order map too
    (use {!swap} unless testing the rewrite itself).  Raises
    [Invalid_argument] when the edge does not reach level [level + 1]. *)

val swap_matrix : Context.t -> Mdd.edge -> level:int -> Mdd.edge
(** Matrix analogue of {!swap_vector}.  The engine never swaps live
    matrices (gate DDs are rebuilt per gate through the order); provided
    for completeness and tests. *)

val swap : Context.t -> Vdd.edge -> level:int -> Vdd.edge
(** One full adjacent swap: {!swap_vector} plus the matching
    {!Order.swap_levels} on the context — structure and order map stay
    consistent. *)

val apply_order : Context.t -> Vdd.edge -> Order.t -> Vdd.edge * int
(** Permute the state to an explicit target order by bubbling each qubit
    to its destination level with adjacent swaps (O(n^2) swaps, each
    linear in the DD size).  Returns the permuted state and the number of
    swaps applied; the context's order becomes the target. *)

val per_level_nodes : Vdd.edge -> int array
(** Node count per level, index = level — the input to bulge detection
    ({!Obs.Dd_profile.bulge}) and to sifting's variable ordering. *)

val sift :
  ?max_growth:float ->
  ?max_passes:int ->
  Context.t ->
  Vdd.edge ->
  Vdd.edge * stats
(** Sifting (Rudell's algorithm on the state DD): each variable in turn —
    heaviest level first — is moved through every level by adjacent
    swaps and parked where the total node count was minimal; passes
    repeat while the total shrinks, up to [max_passes] (default 4).
    [max_growth] (default 2.0) aborts a direction when the intermediate
    DD exceeds that factor of the running best.  Returns the reordered
    state and swap/node statistics; the context's order reflects the
    final variable placement. *)
