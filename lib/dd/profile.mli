(** Structural profiling walks over decision diagrams.

    Produces the {!Obs.Dd_profile.snapshot} data model — per-level node
    and edge counts, log2 edge-weight-magnitude histograms, the
    subtree-sharing factor, and the identity-region fraction — from a
    live VDD or MDD.  One pass over the distinct nodes, so the cost is
    proportional to the DD size (the quantity being measured), not to
    [2^n]. *)

val vector :
  ?gate:int -> ?t:float -> ?order:Order.t -> Vdd.edge ->
  Obs.Dd_profile.snapshot
(** [gate] (default [-1]) and [t] (default [0.]) stamp the snapshot;
    [order] (default identity) labels each level with the qubit it hosts.
    A node counts toward the identity fraction when its low and high
    edges are equal — the qubit at that level is unentangled and
    unbiased below this node. *)

val matrix :
  ?gate:int -> ?t:float -> ?order:Order.t -> Mdd.edge ->
  Obs.Dd_profile.snapshot
(** A node counts toward the identity fraction when it acts as the
    identity at its level: equal diagonal quadrants and zero
    off-diagonals. *)

val pp : Format.formatter -> Obs.Dd_profile.snapshot -> unit
(** Terminal-friendly per-level table (the [ddsim inspect] rendering). *)
