(** Vector decision diagrams: the state-vector representation of the paper's
    Section II-B (Fig. 2c), with edge weights and shared sub-vectors. *)

open Dd_complex

type edge = Types.vedge

val zero : edge
(** Zero vector of any height. *)

val make : Context.t -> int -> edge -> edge -> edge
(** [make ctx level low high] is the normalised, hash-consed node whose low
    and high children are [low] and [high] (both of height [level], with
    canonical weights).  Normalisation divides both child weights by the one
    with the largest magnitude (low on ties), which is propagated to the
    returned edge. *)

val scale : Context.t -> Cnum.t -> edge -> edge
(** Multiply an edge weight by a scalar (result weight re-interned). *)

val basis : Context.t -> n:int -> int -> edge
(** [basis ctx ~n i] is the computational basis state [|i>] on [n] qubits
    (bit [k] of [i] is the value of qubit [k]).  Levels are assigned
    through the context's live {!Order.t}. *)

val of_array : Context.t -> Cnum.t array -> edge
(** Build a DD from a dense amplitude vector (length must be a power of
    two).  Index bit [k] corresponds to qubit [k]; the context's live
    order decides which level hosts each qubit. *)

val to_array : ?order:Order.t -> edge -> n:int -> Cnum.t array
(** Expand to a dense vector indexed by qubit bits; [order] (default
    identity) must be the order the DD was built under.  Intended for
    tests and small [n] (raises [Invalid_argument] above 24 qubits). *)

val amplitude : ?order:Order.t -> edge -> n:int -> int -> Cnum.t
(** Amplitude of basis state [i]: the product of the edge weights along the
    path selected by the bits of [i] (paper's Example 2), with each
    level's steering bit picked through [order] (default identity). *)

val add : Context.t -> edge -> edge -> edge
(** Pointwise sum, memoised with the top weights factored out (paper's
    Fig. 4). Operands must have equal heights. *)

val dot : Context.t -> edge -> edge -> Cnum.t
(** Inner product [<a|b>] (conjugate-linear in the first argument). *)

val node_count : edge -> int
(** Number of distinct non-terminal nodes reachable from the edge — the
    paper's measure of DD size. *)

val iter_nodes : (Types.vnode -> unit) -> edge -> unit
(** Apply a function to every distinct non-terminal node (top-down order not
    specified). *)

val equal : edge -> edge -> bool
(** Canonical equality (same node, same weight tag). *)

val approx_equal_array : ?tol:float -> Cnum.t array -> Cnum.t array -> bool
(** Component-wise comparison helper for tests. *)

val top_amplitudes : Context.t -> n:int -> int -> edge -> (int * Dd_complex.Cnum.t) list
(** [top_amplitudes ctx ~n k e] — basis indices are reported in qubit
    space (mapped through the context's live order); the [k] basis states with the largest
    amplitude magnitudes, best first, found by best-first search over the
    DD with per-node magnitude bounds (no dense expansion, so it works on
    registers far too wide for {!to_array}). *)

val truncate : Context.t -> threshold:float -> edge -> edge
(** Approximate simulation support: rebuild the DD with every sub-vector
    whose total contribution (edge-weight magnitude times the sub-vector's
    largest path magnitude) falls below [threshold] replaced by zero, then
    renormalise to unit norm.  Raises [Invalid_argument] if everything
    would be truncated. *)
