open Dd_complex
open Types

let weight_label ?(annotate = false) w =
  if annotate then
    Printf.sprintf " [label=\"%s |w|=%.4g (2^%d)\"]" (Cnum.to_string w)
      (Cnum.mag w)
      (Obs.Metrics.bucket_exponent (Cnum.mag w))
  else if Cnum.is_exact_one w then ""
  else Printf.sprintf " [label=\"%s\"]" (Cnum.to_string w)

(* [rank=same] rows per level, with a plaintext level label, so annotated
   drawings line qubits up horizontally.  The label names both the level
   and the qubit it hosts under [order] — distinct once reordering is in
   play, and worth spelling out even for the identity order. *)
let add_level_ranks ~order buf by_level =
  let levels =
    Hashtbl.fold (fun level _ acc -> level :: acc) by_level []
    |> List.sort_uniq (fun a b -> compare b a)
  in
  List.iter
    (fun level ->
      let ids = Hashtbl.find_all by_level level in
      Buffer.add_string buf
        (Printf.sprintf
           "  level%d [shape=plaintext, label=\"level %d (qubit %d)\"];\n\
           \  { rank=same; level%d; %s }\n"
           level level
           (Order.qubit_of_level order level)
           level
           (String.concat "; " (List.rev ids))))
    levels

let vector_to_dot ?(name = "vector_dd") ?(annotate = false)
    ?(order = Order.identity) edge =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  terminal [shape=box, label=\"1\"];\n";
  let stub = ref 0 in
  let by_level = Hashtbl.create 64 in
  let edge_line src child style =
    if v_is_zero child then begin
      incr stub;
      Buffer.add_string buf
        (Printf.sprintf "  zero%d [shape=point];\n  %s -> zero%d%s;\n" !stub
           src !stub style)
    end
    else
      let dst =
        if v_is_terminal child.vt then "terminal"
        else Printf.sprintf "v%d" child.vt.vid
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s%s%s;\n" src dst style
           (weight_label ~annotate child.vw))
  in
  Vdd.iter_nodes
    (fun node ->
      let src = Printf.sprintf "v%d" node.vid in
      if annotate then Hashtbl.add by_level node.level src;
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"q%d\"];\n" src
           (Order.qubit_of_level order node.level));
      edge_line src node.v_low " [style=dashed]";
      edge_line src node.v_high "")
    edge;
  if not (v_is_zero edge) then begin
    let dst =
      if v_is_terminal edge.vt then "terminal"
      else Printf.sprintf "v%d" edge.vt.vid
    in
    Buffer.add_string buf
      (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> %s%s;\n"
         dst (weight_label ~annotate edge.vw))
  end;
  if annotate then add_level_ranks ~order buf by_level;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let matrix_to_dot ?(name = "matrix_dd") ?(annotate = false)
    ?(order = Order.identity) edge =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle];\n";
  Buffer.add_string buf "  terminal [shape=box, label=\"1\"];\n";
  let stub = ref 0 in
  let by_level = Hashtbl.create 64 in
  let edge_line src quadrant child =
    if m_is_zero child then begin
      incr stub;
      Buffer.add_string buf
        (Printf.sprintf
           "  zero%d [shape=point];\n  %s -> zero%d [label=\"%s\"];\n" !stub
           src !stub quadrant)
    end
    else
      let dst =
        if m_is_terminal child.mt then "terminal"
        else Printf.sprintf "m%d" child.mt.mid
      in
      let wl =
        if annotate then
          Printf.sprintf ", %s |w|=%.4g (2^%d)" (Cnum.to_string child.mw)
            (Cnum.mag child.mw)
            (Obs.Metrics.bucket_exponent (Cnum.mag child.mw))
        else if Cnum.is_exact_one child.mw then ""
        else ", " ^ Cnum.to_string child.mw
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [label=\"%s%s\"];\n" src dst quadrant wl)
  in
  Mdd.iter_nodes
    (fun node ->
      let src = Printf.sprintf "m%d" node.mid in
      if annotate then Hashtbl.add by_level node.level src;
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"q%d\"];\n" src
           (Order.qubit_of_level order node.level));
      edge_line src "00" node.m00;
      edge_line src "01" node.m01;
      edge_line src "10" node.m10;
      edge_line src "11" node.m11)
    edge;
  if not (m_is_zero edge) then begin
    let dst =
      if m_is_terminal edge.mt then "terminal"
      else Printf.sprintf "m%d" edge.mt.mid
    in
    Buffer.add_string buf
      (Printf.sprintf "  root [shape=none, label=\"\"];\n  root -> %s%s;\n"
         dst (weight_label ~annotate edge.mw))
  end;
  if annotate then add_level_ranks ~order buf by_level;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
