(* Fixed-capacity, lossy memoisation tables for the DD kernels.

   Production DD packages do not memoise in unbounded hash maps: they use
   direct-mapped arrays with packed integer keys, overwrite on collision,
   and accept the recomputation a lost entry costs (Wille, Hillmich,
   Burgholzer, "Decision Diagrams for Quantum Computing", 2023).  This
   bounds the memory of a long run, removes rehash pauses from the hot
   path, and makes a lookup one multiply-shift index plus a full key
   comparison — a collision can therefore never return the value of a
   different key, it only reads as a miss. *)

type 'v t = {
  name : string;
  dummy : 'v;  (* fills unoccupied slots; also the Table_poison payload *)
  mask : int;
  occupied : Bytes.t;
  k1 : int array;
  k2 : int array;
  k3 : int array;
  value : 'v array;
  stamp : int array;  (* generation the entry was written / last validated *)
  mutable entries : int;
  mutable generation : int;
  mutable lookups : int;
  mutable hits : int;
  mutable stores : int;
  mutable evictions : int;
  mutable invalidated : int;
}

type stats = {
  table : string;
  capacity : int;
  entries : int;
  lookups : int;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  invalidated : int;
  generation : int;
}

let create ~name ~bits ~dummy =
  if bits < 1 || bits > 28 then
    invalid_arg "Compute_table.create: bits must be in [1, 28]";
  let capacity = 1 lsl bits in
  {
    name;
    dummy;
    mask = capacity - 1;
    occupied = Bytes.make capacity '\000';
    k1 = Array.make capacity 0;
    k2 = Array.make capacity 0;
    k3 = Array.make capacity 0;
    value = Array.make capacity dummy;
    stamp = Array.make capacity 0;
    entries = 0;
    generation = 0;
    lookups = 0;
    hits = 0;
    stores = 0;
    evictions = 0;
    invalidated = 0;
  }

let capacity (t : _ t) = t.mask + 1
let name (t : _ t) = t.name
let length (t : _ t) = t.entries
let generation (t : _ t) = t.generation

(* Multiplicative mixing of the three key words; the constants are the
   usual 64-bit golden-ratio/xxhash primes.  Only the low bits survive the
   final [land], so the shift folds the high bits back in first. *)
let slot (t : _ t) k1 k2 k3 =
  let h = k1 * 0x2545F4914F6CDD1D in
  let h = (h lxor k2) * 0x27D4EB2F165667C5 in
  let h = (h lxor k3) * 0x165667B19E3779F9 in
  (h lxor (h lsr 29)) land t.mask

let key_matches (t : _ t) i k1 k2 k3 =
  t.k1.(i) = k1 && t.k2.(i) = k2 && t.k3.(i) = k3

let find (t : 'v t) ~k1 ~k2 ~k3 =
  t.lookups <- t.lookups + 1;
  let i = slot t k1 k2 k3 in
  if Bytes.unsafe_get t.occupied i = '\001' && key_matches t i k1 k2 k3
  then begin
    t.hits <- t.hits + 1;
    (* fault harness: a poisoned hit hands back the dummy value — the
       corruption a collision-checking bug or torn store would produce *)
    if Fault.fire Fault.Table_poison then Some t.dummy
    else Some t.value.(i)
  end
  else None

let store (t : 'v t) ~k1 ~k2 ~k3 v =
  let i = slot t k1 k2 k3 in
  if Bytes.unsafe_get t.occupied i = '\001' then begin
    if not (key_matches t i k1 k2 k3) then t.evictions <- t.evictions + 1
  end
  else begin
    Bytes.unsafe_set t.occupied i '\001';
    t.entries <- t.entries + 1
  end;
  t.k1.(i) <- k1;
  t.k2.(i) <- k2;
  t.k3.(i) <- k3;
  t.value.(i) <- v;
  t.stamp.(i) <- t.generation;
  t.stores <- t.stores + 1

let iter f (t : 'v t) =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.occupied i = '\001' then
      f t.k1.(i) t.k2.(i) t.k3.(i) t.value.(i)
  done

let clear (t : _ t) =
  Bytes.fill t.occupied 0 (Bytes.length t.occupied) '\000';
  t.entries <- 0

(* Generation-aware sweep: entries whose keys/values still refer to live
   nodes survive the collection and are re-stamped with the new
   generation; the rest are dropped (and counted).  Returns the number of
   dropped entries. *)
let sweep (t : 'v t) ~keep =
  t.generation <- t.generation + 1;
  let dropped = ref 0 in
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.occupied i = '\001' then
      if keep t.k1.(i) t.k2.(i) t.k3.(i) t.value.(i) then
        t.stamp.(i) <- t.generation
      else begin
        Bytes.unsafe_set t.occupied i '\000';
        t.entries <- t.entries - 1;
        incr dropped
      end
  done;
  t.invalidated <- t.invalidated + !dropped;
  !dropped

let reset_counters (t : _ t) =
  t.lookups <- 0;
  t.hits <- 0;
  t.stores <- 0;
  t.evictions <- 0;
  t.invalidated <- 0

let stats (t : 'v t) : stats =
  {
    table = t.name;
    capacity = capacity t;
    entries = t.entries;
    lookups = t.lookups;
    hits = t.hits;
    misses = t.lookups - t.hits;
    stores = t.stores;
    evictions = t.evictions;
    invalidated = t.invalidated;
    generation = t.generation;
  }

let hits (t : _ t) = t.hits
let lookups (t : _ t) = t.lookups

let hit_rate (t : _ t) =
  if t.lookups = 0 then 0. else float_of_int t.hits /. float_of_int t.lookups

let pp_stats fmt s =
  Format.fprintf fmt
    "%-7s lookups %9d  hits %9d (%5.1f%%)  evictions %8d  entries %d/%d"
    s.table s.lookups s.hits
    (if s.lookups = 0 then 0.
     else 100. *. float_of_int s.hits /. float_of_int s.lookups)
    s.evictions s.entries s.capacity
