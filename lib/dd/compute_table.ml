(* Fixed-capacity, lossy memoisation tables for the DD kernels.

   Production DD packages do not memoise in unbounded hash maps: they use
   direct-mapped arrays with packed integer keys, overwrite on collision,
   and accept the recomputation a lost entry costs (Wille, Hillmich,
   Burgholzer, "Decision Diagrams for Quantum Computing", 2023).  This
   bounds the memory of a long run, removes rehash pauses from the hot
   path, and makes a lookup one multiply-shift index plus a full key
   comparison — a collision can therefore never return the value of a
   different key, it only reads as a miss.

   Cross-domain sharing ([set_parallel]): a slot's three key words and its
   value are written non-atomically, so an unguarded racing reader could
   match the keys of one store against the value of another.  When the
   parallel flag is armed, [find] and [store] take a per-slot-group mutex
   (64 lock stripes indexed by low slot bits) — entries stay lossy memo
   hints, but a hit is always the value that was stored with its key.
   Counters are [Atomic.t] so they stay coherent without widening the
   critical section; [sweep]/[clear]/[iter] run only while the domain
   pool is quiescent and take no locks. *)

type 'v t = {
  name : string;
  dummy : 'v;  (* fills unoccupied slots; also the Table_poison payload *)
  mask : int;
  occupied : Bytes.t;
  k1 : int array;
  k2 : int array;
  k3 : int array;
  value : 'v array;
  stamp : int array;  (* generation the entry was written / last validated *)
  locks : Mutex.t array;
  lock_acquisitions : int array;
  lock_contended : int array;
  lock_wait : float array;
  lock_wait_buckets : int array array;
  mutable parallel : bool;
  entries : int Atomic.t;
  mutable generation : int;
  lookups : int Atomic.t;
  hits : int Atomic.t;
  stores : int Atomic.t;
  evictions : int Atomic.t;
  invalidated : int Atomic.t;
}

(* Aggregated contention counters for one lock-striped structure; the
   per-stripe counters are plain ints mutated only while holding that
   stripe's lock, so they cost no atomics and read consistently at
   quiescence.  [wait_buckets] is a log2 histogram of contended wait
   times: index [e + 32] holds waits in [2^(e-1), 2^e) seconds. *)
type lock_stats = {
  acquisitions : int;
  contended : int;
  wait_seconds : float;
  wait_buckets : int array;
}

let hist_buckets = 64

type stats = {
  table : string;
  capacity : int;
  entries : int;
  lookups : int;
  hits : int;
  misses : int;
  stores : int;
  evictions : int;
  invalidated : int;
  generation : int;
}

let lock_count = 64
let lock_mask = lock_count - 1

let create ~name ~bits ~dummy =
  if bits < 1 || bits > 28 then
    invalid_arg "Compute_table.create: bits must be in [1, 28]";
  let capacity = 1 lsl bits in
  {
    name;
    dummy;
    mask = capacity - 1;
    occupied = Bytes.make capacity '\000';
    k1 = Array.make capacity 0;
    k2 = Array.make capacity 0;
    k3 = Array.make capacity 0;
    value = Array.make capacity dummy;
    stamp = Array.make capacity 0;
    locks = Array.init lock_count (fun _ -> Mutex.create ());
    lock_acquisitions = Array.make lock_count 0;
    lock_contended = Array.make lock_count 0;
    lock_wait = Array.make lock_count 0.;
    lock_wait_buckets = Array.init lock_count (fun _ -> Array.make hist_buckets 0);
    parallel = false;
    entries = Atomic.make 0;
    generation = 0;
    lookups = Atomic.make 0;
    hits = Atomic.make 0;
    stores = Atomic.make 0;
    evictions = Atomic.make 0;
    invalidated = Atomic.make 0;
  }

let capacity (t : _ t) = t.mask + 1
let name (t : _ t) = t.name
let length (t : _ t) = Atomic.get t.entries
let generation (t : _ t) = t.generation
let set_parallel (t : _ t) flag = t.parallel <- flag

(* Multiplicative mixing of the three key words; the constants are the
   usual 64-bit golden-ratio/xxhash primes.  Only the low bits survive the
   final [land], so the shift folds the high bits back in first. *)
let slot (t : _ t) k1 k2 k3 =
  let h = k1 * 0x2545F4914F6CDD1D in
  let h = (h lxor k2) * 0x27D4EB2F165667C5 in
  let h = (h lxor k3) * 0x165667B19E3779F9 in
  (h lxor (h lsr 29)) land t.mask

let key_matches (t : _ t) i k1 k2 k3 =
  t.k1.(i) = k1 && t.k2.(i) = k2 && t.k3.(i) = k3

let probe (t : 'v t) i k1 k2 k3 =
  if Bytes.unsafe_get t.occupied i = '\001' && key_matches t i k1 k2 k3
  then begin
    Atomic.incr t.hits;
    (* fault harness: a poisoned hit hands back the dummy value — the
       corruption a collision-checking bug or torn store would produce *)
    if Fault.fire Fault.Table_poison then Some t.dummy
    else Some t.value.(i)
  end
  else None

(* Contention-instrumented acquisition: a [try_lock] success is the
   uncontended path; a failure counts as contended and times the
   blocking wait.  Runs only when [parallel] is armed, so [--domains 1]
   stays lock- and allocation-free. *)
let lock_stripe (t : _ t) s =
  let lock = t.locks.(s) in
  if Mutex.try_lock lock then
    t.lock_acquisitions.(s) <- t.lock_acquisitions.(s) + 1
  else begin
    let t0 = Unix.gettimeofday () in
    Mutex.lock lock;
    let wait = Float.max 0. (Unix.gettimeofday () -. t0) in
    t.lock_acquisitions.(s) <- t.lock_acquisitions.(s) + 1;
    t.lock_contended.(s) <- t.lock_contended.(s) + 1;
    t.lock_wait.(s) <- t.lock_wait.(s) +. wait;
    let b = Obs.Metrics.bucket_exponent wait + 32 in
    let h = t.lock_wait_buckets.(s) in
    h.(b) <- h.(b) + 1
  end

let find (t : 'v t) ~k1 ~k2 ~k3 =
  Atomic.incr t.lookups;
  let i = slot t k1 k2 k3 in
  if t.parallel then begin
    let s = i land lock_mask in
    lock_stripe t s;
    match probe t i k1 k2 k3 with
    | r ->
      Mutex.unlock t.locks.(s);
      r
    | exception e ->
      Mutex.unlock t.locks.(s);
      raise e
  end
  else probe t i k1 k2 k3

let write (t : 'v t) i k1 k2 k3 v =
  if Bytes.unsafe_get t.occupied i = '\001' then begin
    if not (key_matches t i k1 k2 k3) then Atomic.incr t.evictions
  end
  else begin
    Bytes.unsafe_set t.occupied i '\001';
    Atomic.incr t.entries
  end;
  t.k1.(i) <- k1;
  t.k2.(i) <- k2;
  t.k3.(i) <- k3;
  t.value.(i) <- v;
  t.stamp.(i) <- t.generation;
  Atomic.incr t.stores

let store (t : 'v t) ~k1 ~k2 ~k3 v =
  let i = slot t k1 k2 k3 in
  if t.parallel then begin
    let s = i land lock_mask in
    lock_stripe t s;
    write t i k1 k2 k3 v;
    Mutex.unlock t.locks.(s)
  end
  else write t i k1 k2 k3 v

let iter f (t : 'v t) =
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.occupied i = '\001' then
      f t.k1.(i) t.k2.(i) t.k3.(i) t.value.(i)
  done

let clear (t : _ t) =
  Bytes.fill t.occupied 0 (Bytes.length t.occupied) '\000';
  Atomic.set t.entries 0

(* Generation-aware sweep: entries whose keys/values still refer to live
   nodes survive the collection and are re-stamped with the new
   generation; the rest are dropped (and counted).  Returns the number of
   dropped entries. *)
let sweep (t : 'v t) ~keep =
  t.generation <- t.generation + 1;
  let dropped = ref 0 in
  for i = 0 to t.mask do
    if Bytes.unsafe_get t.occupied i = '\001' then
      if keep t.k1.(i) t.k2.(i) t.k3.(i) t.value.(i) then
        t.stamp.(i) <- t.generation
      else begin
        Bytes.unsafe_set t.occupied i '\000';
        Atomic.decr t.entries;
        incr dropped
      end
  done;
  ignore (Atomic.fetch_and_add t.invalidated !dropped);
  !dropped

let reset_counters (t : _ t) =
  Atomic.set t.lookups 0;
  Atomic.set t.hits 0;
  Atomic.set t.stores 0;
  Atomic.set t.evictions 0;
  Atomic.set t.invalidated 0

let lock_stats (t : _ t) =
  let buckets = Array.make hist_buckets 0 in
  let acq = ref 0 and cont = ref 0 and wait = ref 0. in
  for s = 0 to lock_count - 1 do
    acq := !acq + t.lock_acquisitions.(s);
    cont := !cont + t.lock_contended.(s);
    wait := !wait +. t.lock_wait.(s);
    Array.iteri
      (fun b n -> buckets.(b) <- buckets.(b) + n)
      t.lock_wait_buckets.(s)
  done;
  {
    acquisitions = !acq;
    contended = !cont;
    wait_seconds = !wait;
    wait_buckets = buckets;
  }

let reset_lock_stats (t : _ t) =
  Array.fill t.lock_acquisitions 0 lock_count 0;
  Array.fill t.lock_contended 0 lock_count 0;
  Array.fill t.lock_wait 0 lock_count 0.;
  Array.iter (fun h -> Array.fill h 0 hist_buckets 0) t.lock_wait_buckets

let stats (t : 'v t) : stats =
  let lookups = Atomic.get t.lookups and hits = Atomic.get t.hits in
  {
    table = t.name;
    capacity = capacity t;
    entries = Atomic.get t.entries;
    lookups;
    hits;
    misses = lookups - hits;
    stores = Atomic.get t.stores;
    evictions = Atomic.get t.evictions;
    invalidated = Atomic.get t.invalidated;
    generation = t.generation;
  }

let hits (t : _ t) = Atomic.get t.hits
let lookups (t : _ t) = Atomic.get t.lookups

let hit_rate (t : _ t) =
  let lookups = Atomic.get t.lookups in
  if lookups = 0 then 0.
  else float_of_int (Atomic.get t.hits) /. float_of_int lookups

let pp_stats fmt s =
  Format.fprintf fmt
    "%-7s lookups %9d  hits %9d (%5.1f%%)  evictions %8d  entries %d/%d"
    s.table s.lookups s.hits
    (if s.lookups = 0 then 0.
     else 100. *. float_of_int s.hits /. float_of_int s.lookups)
    s.evictions s.entries s.capacity
