(** Canonical table of complex numbers.

    Decision-diagram edge weights are interned here so that numerically equal
    weights (up to the table tolerance) are represented by one physically
    shared {!Cnum.t} with a unique tag.  This is the mechanism that makes
    node hash-consing and compute-cache keys exact integer comparisons, and
    it also implements the machine-accuracy merging discussed in the paper's
    reference [21] (Zulehner et al., DATE 2019). *)

type t

val create : ?tolerance:float -> unit -> t
(** Fresh table; [0] and [1] are pre-registered under {!zero_tag} and
    {!one_tag}.  [tolerance] (default [1e-12]) is the component-wise merging
    radius — tight enough that legitimately distinct amplitudes of deep
    circuits never collide (a coarser radius makes wrong merges that
    fragment DD sharing), wide enough to absorb floating-point noise. *)

val zero_tag : int
(** Tag of the canonical zero, [0]. *)

val one_tag : int
(** Tag of the canonical one, [1]. *)

val tolerance : t -> float

val set_parallel : t -> bool -> unit
(** Enable (or disable) cross-domain sharing: when set, the slow path of
    {!intern} — tag assignment for a weight the table has not seen — runs
    under a mutex so concurrent domains cannot assign duplicate tags.
    The fast path (an already-tagged weight) is lock-free either way.
    Toggle only while no other domain is using the table. *)

val intern : t -> Cnum.t -> Cnum.t
(** [intern table z] returns the canonical representative of [z]: an existing
    entry within [tolerance] component-wise, or [z] itself freshly tagged.
    Values within tolerance of [0] and [1] intern to the exact constants.
    Already-tagged values (tag >= 0) are returned unchanged — a table only
    ever sees weights it produced. *)

val size : t -> int
(** Number of distinct canonical values. *)

(** {2 Lock-contention accounting}

    Counted only while {!set_parallel} is armed; the sequential intern
    path never touches these.  Structurally identical to
    [Dd.Compute_table.lock_stats] (this library sits below [dd], so the
    shape is mirrored rather than shared). *)

type lock_stats = {
  acquisitions : int;  (** slow-path lock acquisitions while parallel *)
  contended : int;  (** acquisitions that had to block *)
  wait_seconds : float;  (** total time spent blocked *)
  wait_buckets : int array;
      (** log2 histogram of contended waits: index [e + 32] holds waits
          in [2^(e-1), 2^e) seconds; 64 buckets *)
}

val lock_stats : t -> lock_stats
(** Read at quiescence. *)

val reset_lock_stats : t -> unit
