type t = {
  tolerance : float;
  buckets : (int * int, Cnum.t list) Hashtbl.t;
  mutable next_tag : int;
  (* Taken around the slow path of [intern] when [parallel] is set, so
     worker domains can funnel weights through one shared table.  A single
     mutex (not a stripe array): the neighbour-bucket scan of
     [find_existing] crosses bucket boundaries, so striping could not
     keep a lookup and a racing insert apart.  The common case — an
     already-tagged weight — never reaches the lock. *)
  lock : Mutex.t;
  mutable parallel : bool;
  (* contention counters, mutated only while holding [lock] *)
  mutable lock_acquisitions : int;
  mutable lock_contended : int;
  mutable lock_wait : float;
  wait_buckets : int array;
}

(* Mirror of [Dd.Compute_table.lock_stats] (this library sits below
   [dd], so the shape is duplicated rather than shared). *)
type lock_stats = {
  acquisitions : int;
  contended : int;
  wait_seconds : float;
  wait_buckets : int array;
}

let hist_buckets = 64

(* local copy of Obs.Metrics.bucket_exponent: bucket [e] holds values in
   [2^(e-1), 2^e), clamped to [-32, 31] *)
let bucket_exponent v =
  if v <= 0. then -32
  else
    let _, e = Float.frexp v in
    if e < -32 then -32 else if e > 31 then 31 else e

let zero_tag = 0
let one_tag = 1

let bucket_key table z =
  let scale x = int_of_float (floor ((x /. table.tolerance) +. 0.5)) in
  (scale (Cnum.re z), scale (Cnum.im z))

let add_entry table key z =
  let entries = try Hashtbl.find table.buckets key with Not_found -> [] in
  Hashtbl.replace table.buckets key (z :: entries)

let create ?(tolerance = 1e-12) () =
  let table =
    {
      tolerance;
      buckets = Hashtbl.create 4096;
      next_tag = 2;
      lock = Mutex.create ();
      parallel = false;
      lock_acquisitions = 0;
      lock_contended = 0;
      lock_wait = 0.;
      wait_buckets = Array.make hist_buckets 0;
    }
  in
  add_entry table (bucket_key table Cnum.zero) Cnum.zero;
  add_entry table (bucket_key table Cnum.one) Cnum.one;
  table

let tolerance table = table.tolerance
let set_parallel table flag = table.parallel <- flag

(* A value within [tolerance] of the query may live in a bucket adjacent to
   the query's own bucket, so all nine neighbours are scanned. *)
let find_existing table z =
  let bre, bim = bucket_key table z in
  let rec scan = function
    | [] -> None
    | candidate :: rest ->
      if Cnum.approx_equal ~tol:table.tolerance candidate z then Some candidate
      else scan rest
  in
  let rec loop deltas =
    match deltas with
    | [] -> None
    | (di, dj) :: rest -> (
      let entries =
        try Hashtbl.find table.buckets (bre + di, bim + dj)
        with Not_found -> []
      in
      match scan entries with Some c -> Some c | None -> loop rest)
  in
  loop
    [ (0, 0); (-1, 0); (1, 0); (0, -1); (0, 1);
      (-1, -1); (-1, 1); (1, -1); (1, 1) ]

let intern_locked table z =
  match find_existing table z with
  | Some canonical -> canonical
  | None ->
    let tag = table.next_tag in
    table.next_tag <- tag + 1;
    let canonical = Cnum.with_tag z tag in
    add_entry table (bucket_key table canonical) canonical;
    canonical

let intern table z =
  if Cnum.tag z >= 0 then z
  else if table.parallel then begin
    (* contention-instrumented acquisition: try_lock success is the
       uncontended path; a failure times the blocking wait *)
    if Mutex.try_lock table.lock then
      table.lock_acquisitions <- table.lock_acquisitions + 1
    else begin
      let t0 = Unix.gettimeofday () in
      Mutex.lock table.lock;
      let wait = Float.max 0. (Unix.gettimeofday () -. t0) in
      table.lock_acquisitions <- table.lock_acquisitions + 1;
      table.lock_contended <- table.lock_contended + 1;
      table.lock_wait <- table.lock_wait +. wait;
      let b = bucket_exponent wait + 32 in
      table.wait_buckets.(b) <- table.wait_buckets.(b) + 1
    end;
    match intern_locked table z with
    | canonical ->
      Mutex.unlock table.lock;
      canonical
    | exception e ->
      Mutex.unlock table.lock;
      raise e
  end
  else intern_locked table z

let size table = table.next_tag

let lock_stats table =
  {
    acquisitions = table.lock_acquisitions;
    contended = table.lock_contended;
    wait_seconds = table.lock_wait;
    wait_buckets = Array.copy table.wait_buckets;
  }

let reset_lock_stats table =
  table.lock_acquisitions <- 0;
  table.lock_contended <- 0;
  table.lock_wait <- 0.;
  Array.fill table.wait_buckets 0 hist_buckets 0
