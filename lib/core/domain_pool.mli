(** A scoped work-crew of OCaml 5 domains for the engine's parallel
    sections (window-product tree reduction, multi-shot sampling).
    Stdlib [Domain]/[Atomic]/[Mutex]/[Condition] only.

    The pool runs synchronous scatter/gather batches: {!run_all} returns
    only after every task has finished, so between calls the pool is
    quiescent and the engine can garbage-collect, audit, reorder and
    checkpoint without any further synchronisation. *)

type t

type stats = {
  batches : int;  (** {!run_all} sections completed *)
  section_seconds : float;
      (** wall time spent inside {!run_all}, scatter to gather *)
  worker_tasks : int array;
      (** tasks executed per crew member; slot 0 is the caller *)
  worker_busy_seconds : float array;
      (** time spent running tasks per crew member, same indexing.
          Flushed even for tasks that raised, so a faulted run still
          reports the time its crew actually spent. *)
}

val create : domains:int -> t
(** Spawn a pool of [domains - 1] worker domains (the calling domain is
    the remaining crew member, so [domains = 1] spawns nothing and
    {!run_all} degenerates to a sequential loop).  Raises
    [Invalid_argument] if [domains < 1].  Callers should {!shutdown} the
    pool when done — leaked domains outlive the simulation. *)

val size : t -> int
(** Crew size including the caller: the [domains] it was created with
    (until {!shutdown}, after which it is 1). *)

val run_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** Evaluate every thunk, fanned over the crew (the caller participates),
    and return their outcomes in order.  An exception raised by a thunk
    is captured as [Error] in its slot, never propagated raw and never
    able to kill a worker domain.  Not reentrant: tasks must not call
    {!run_all} on the same pool, and only one domain may act as the
    caller at a time. *)

val self_index : unit -> int
(** Crew index of the calling domain: [0] for the pool's caller (and for
    any domain that is not a pool worker), [i + 1] for worker [i].
    Tasks use this to pick a private per-domain resource — e.g. the
    trace lane they may append to — without any synchronisation. *)

val stats : t -> stats
(** Utilization counters accumulated since creation (or the last
    {!reset_stats}).  Read only at quiescence — never while a
    {!run_all} batch is in flight. *)

val reset_stats : t -> unit

val shutdown : t -> unit
(** Stop and join every worker domain.  Idempotent.  Must not be called
    while a {!run_all} batch is in flight. *)
