(** A scoped work-crew of OCaml 5 domains for the engine's parallel
    sections (window-product tree reduction, multi-shot sampling).
    Stdlib [Domain]/[Atomic]/[Mutex]/[Condition] only.

    The pool runs synchronous scatter/gather batches: {!run_all} returns
    only after every task has finished, so between calls the pool is
    quiescent and the engine can garbage-collect, audit, reorder and
    checkpoint without any further synchronisation. *)

type t

val create : domains:int -> t
(** Spawn a pool of [domains - 1] worker domains (the calling domain is
    the remaining crew member, so [domains = 1] spawns nothing and
    {!run_all} degenerates to a sequential loop).  Raises
    [Invalid_argument] if [domains < 1].  Callers should {!shutdown} the
    pool when done — leaked domains outlive the simulation. *)

val size : t -> int
(** Crew size including the caller: the [domains] it was created with
    (until {!shutdown}, after which it is 1). *)

val run_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** Evaluate every thunk, fanned over the crew (the caller participates),
    and return their outcomes in order.  An exception raised by a thunk
    is captured as [Error] in its slot, never propagated raw and never
    able to kill a worker domain.  Not reentrant: tasks must not call
    {!run_all} on the same pool, and only one domain may act as the
    caller at a time. *)

val shutdown : t -> unit
(** Stop and join every worker domain.  Idempotent.  Must not be called
    while a {!run_all} batch is in flight. *)
