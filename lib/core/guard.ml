type t = {
  max_live_nodes : int option;
  max_matrix_nodes : int option;
  deadline : float option;
  norm_tolerance : float option;
  gc_high_water : int option;
}

let none =
  {
    max_live_nodes = None;
    max_matrix_nodes = None;
    deadline = None;
    norm_tolerance = None;
    gc_high_water = None;
  }

let make ?max_live_nodes ?max_matrix_nodes ?deadline ?norm_tolerance
    ?gc_high_water () =
  let positive name = function
    | Some v when v < 1 ->
      invalid_arg (Printf.sprintf "Guard.make: %s must be >= 1" name)
    | other -> other
  in
  (match deadline with
  | Some d when d < 0. -> invalid_arg "Guard.make: deadline must be >= 0"
  | _ -> ());
  (match norm_tolerance with
  | Some t when t <= 0. ->
    invalid_arg "Guard.make: norm tolerance must be > 0"
  | _ -> ());
  {
    max_live_nodes = positive "max_live_nodes" max_live_nodes;
    max_matrix_nodes = positive "max_matrix_nodes" max_matrix_nodes;
    deadline;
    norm_tolerance;
    gc_high_water = positive "gc_high_water" gc_high_water;
  }

let is_none guard =
  guard.max_live_nodes = None
  && guard.max_matrix_nodes = None
  && guard.deadline = None
  && guard.norm_tolerance = None
  && guard.gc_high_water = None

let to_string guard =
  if is_none guard then "unguarded"
  else
    let field name to_s = function
      | None -> None
      | Some v -> Some (Printf.sprintf "%s=%s" name (to_s v))
    in
    [
      field "max-live-nodes" string_of_int guard.max_live_nodes;
      field "max-matrix-nodes" string_of_int guard.max_matrix_nodes;
      field "deadline" (Printf.sprintf "%gs") guard.deadline;
      field "norm-tol" (Printf.sprintf "%g") guard.norm_tolerance;
      field "auto-gc" string_of_int guard.gc_high_water;
    ]
    |> List.filter_map (fun f -> f)
    |> String.concat " "

let pp fmt guard = Format.pp_print_string fmt (to_string guard)
