(** Resource budgets for a simulation run.

    The paper's combination strategies can backfire: a combined-matrix DD
    may explode while the state stays small, and long runs can exhaust
    memory or a time budget with no recovery path.  A [Guard.t] bundles
    the budgets {!Engine.run} enforces between multiplications:

    - [max_matrix_nodes]: cap on the pending combined-matrix DD.  A
      window whose partial product exceeds it is flushed and the
      remaining gates of the window are applied sequentially (graceful
      degradation, counted in {!Sim_stats.t.fallbacks}).
    - [gc_high_water]: live-node count (vector + matrix unique tables)
      above which the engine garbage-collects automatically
      ({!Sim_stats.t.auto_gcs}).
    - [max_live_nodes]: hard memory budget.  If the live-node count still
      exceeds it after garbage collection, the run aborts with a
      structured {!Error.Error} — the OOM-budget abort.
    - [deadline]: wall-clock seconds for one {!Engine.run} call; on
      breach the run aborts with a structured error (after writing a
      checkpoint when one is configured, so the run can resume).
    - [norm_tolerance]: allowed drift of the state norm from 1.  Beyond
      it the state is renormalised ({!Sim_stats.t.renormalizations});
      if renormalisation is impossible (zero or non-finite norm) the run
      aborts.

    All budgets are optional; {!none} disables every check and costs
    nothing in the engine's hot loop. *)

type t = private {
  max_live_nodes : int option;
  max_matrix_nodes : int option;
  deadline : float option;
  norm_tolerance : float option;
  gc_high_water : int option;
}

val none : t
(** No budgets; the engine's fast path. *)

val make :
  ?max_live_nodes:int ->
  ?max_matrix_nodes:int ->
  ?deadline:float ->
  ?norm_tolerance:float ->
  ?gc_high_water:int ->
  unit ->
  t
(** Raises [Invalid_argument] for non-positive node budgets, a negative
    deadline or a non-positive tolerance. *)

val is_none : t -> bool
(** [true] iff no budget is set. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
