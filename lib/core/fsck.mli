(** Artifact validation — the library behind [ddsim fsck].

    Every sidecar the toolchain writes (checkpoints, JSONL traces,
    JSONL structural profiles, JSONL strategy ledgers) is written
    crash-safely
    ({!Obs.Safe_io}) and carries a checksum trailer; [fsck] closes the
    loop by re-validating files at rest: the checksum, the schema, the
    full parse (checkpoints are reconstructed into a throwaway DD
    context), and cheap semantic invariants — gate indices must never
    go backwards, durations must be non-negative.

    A report never raises: every corruption mode is folded into
    [ok = false] with a human-readable detail naming the fault. *)

type report = {
  path : string;
  family : string;
      (** ["checkpoint"], ["trace"], ["profile"], ["ledger"],
          ["unknown"] *)
  ok : bool;
  detail : string;
      (** on success a one-line summary; on failure the located fault *)
}

val check_file : path:string -> report
(** Sniff the artifact family from the first line and validate the whole
    file.  Unreadable or unrecognised files report [ok = false]. *)

val to_string : report -> string
(** ["PATH: OK family (detail)"] / ["PATH: FAIL family (detail)"]. *)
