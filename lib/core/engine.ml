open Dd_complex

type t = {
  context : Dd.Context.t;
  n : int;
  mutable state_edge : Dd.Vdd.edge;
  mutable rng_state : Random.State.t;
  stats : Sim_stats.t;
  mutable track_peaks : bool;
  (* when set (the default), single-target gates applied outside a
     combination window take the structured fast path (Dd.Apply) instead
     of building the n-qubit gate DD; [--no-fused-apply] clears it for
     A/B measurement and debugging *)
  mutable fused_apply : bool;
  (* event sink; Obs.Trace.null (disabled, zero-cost) unless set_trace
     attached a live one — every instrumentation site below checks
     [Obs.Trace.is_on] before computing any event argument *)
  mutable trace : Obs.Trace.t;
  (* structural-profile sink; Obs.Dd_profile.null (disabled, zero-cost)
     unless set_profile attached a live one — the cadence probe
     [Obs.Dd_profile.due] is the first action at every emission site *)
  mutable profile : Obs.Dd_profile.sink;
  (* per-window strategy cost ledger; Obs.Ledger.null (disabled,
     zero-cost) unless set_ledger attached a live one — every recording
     site below checks [Obs.Ledger.is_on] first *)
  mutable ledger : Obs.Ledger.t;
  (* invariant-auditor cadence in applied gates; 0 = off (the default),
     in which case the per-gate probe is one load and one branch *)
  mutable audit_every : int;
  mutable audit_tol : float;
  mutable last_audit : int;
  (* dynamic variable reordering policy (--reorder); Off costs one load
     and one branch per applied gate *)
  mutable reorder_policy : reorder_policy;
  mutable bulge_factor : float;
  (* domain-pool size for parallel window products and multi-shot
     sampling; 1 (the default) keeps every legacy sequential code path —
     no pool, no locks, bitwise-identical results *)
  mutable domains : int;
  (* minimum applied-gate gap between bulge probes (each probe walks the
     state DD to count nodes per level, so it must not run every gate) *)
  mutable reorder_every : int;
  mutable last_reorder : int;
  mutable reorder_done : bool;
}

and reorder_policy = Reorder_off | Reorder_once | Reorder_adaptive

let create ?(seed = 0xDD) ?context n =
  if n <= 0 then
    Error.invalid_parameter ~what:"Engine.create"
      (Printf.sprintf "need at least one qubit (got %d)" n);
  let context =
    match context with Some c -> c | None -> Dd.Context.create ()
  in
  {
    context;
    n;
    state_edge = Dd.Vdd.basis context ~n 0;
    rng_state = Random.State.make [| seed |];
    stats = Sim_stats.create ();
    track_peaks = false;
    fused_apply = true;
    trace = Obs.Trace.null;
    profile = Obs.Dd_profile.null;
    ledger = Obs.Ledger.null;
    audit_every = 0;
    audit_tol = 1e-6;
    last_audit = 0;
    reorder_policy = Reorder_off;
    bulge_factor = 4.0;
    domains = 1;
    reorder_every = 64;
    last_reorder = 0;
    reorder_done = false;
  }

let context engine = engine.context
let qubits engine = engine.n
let stats engine = engine.stats
let rng engine = engine.rng_state
let set_rng engine rng = engine.rng_state <- rng
let state engine = engine.state_edge

let set_state engine edge =
  if Dd.Types.v_height edge <> engine.n then
    Error.raise_error
      (Error.Width_mismatch
         {
           what = "Engine.set_state";
           expected = engine.n;
           actual = Dd.Types.v_height edge;
         });
  engine.state_edge <- edge

let reset engine =
  Dd.Context.set_order engine.context Dd.Order.identity;
  engine.state_edge <- Dd.Vdd.basis engine.context ~n:engine.n 0;
  engine.last_audit <- 0;
  engine.last_reorder <- 0;
  engine.reorder_done <- false;
  Sim_stats.reset engine.stats

let set_track_peaks engine flag = engine.track_peaks <- flag
let set_fused_apply engine flag = engine.fused_apply <- flag
let fused_apply engine = engine.fused_apply

let set_domains engine d =
  if d < 1 then
    Error.invalid_parameter ~what:"Engine.set_domains"
      (Printf.sprintf "need at least one domain (got %d)" d);
  engine.domains <- d;
  engine.stats.domains <- d

let domains engine = engine.domains

let set_trace engine trace =
  engine.trace <- trace;
  Dd.Context.set_trace engine.context trace

let trace engine = engine.trace
let set_profile engine sink = engine.profile <- sink
let profile engine = engine.profile
let set_ledger engine sink = engine.ledger <- sink
let ledger engine = engine.ledger

let set_audit engine ?(tolerance = 1e-6) every =
  if every < 0 then
    Error.invalid_parameter ~what:"Engine.set_audit"
      (Printf.sprintf "cadence must be >= 0 (got %d)" every);
  if (not (Float.is_finite tolerance)) || tolerance <= 0. then
    Error.invalid_parameter ~what:"Engine.set_audit"
      (Printf.sprintf "tolerance must be positive (got %g)" tolerance);
  engine.audit_every <- every;
  engine.audit_tol <- tolerance;
  engine.last_audit <- 0

let audit_every engine = engine.audit_every

(* disabled path: one load and one branch, zero allocation (asserted by
   the test suite) *)
let audit_due engine ~gate =
  engine.audit_every > 0 && gate - engine.last_audit >= engine.audit_every

(* One auditor pass over the live structures, with the recovery ladder:
   a stale compute-table entry flushes the caches, a canonicity fault
   re-interns the state DD through a canonical rebuild, and norm drift is
   renormalised away.  Violations that survive a full re-check raise a
   structured {!Error.Audit_failure} naming each fault site — the state
   cannot be trusted, resume from the last good checkpoint.  Returns the
   number of violations initially found. *)
let run_audit engine ~gate ~strategy =
  let ctx = engine.context in
  let traced = Obs.Trace.is_on engine.trace in
  let t0 = if traced then Obs.Trace.now engine.trace else 0. in
  engine.last_audit <- gate;
  engine.stats.audits_run <- engine.stats.audits_run + 1;
  let check () =
    Dd.Audit.check_vector ~norm_tol:engine.audit_tol ctx engine.state_edge
    @ Dd.Audit.check_tables ctx
  in
  let emit detail =
    if traced then
      Obs.Trace.span engine.trace Obs.Trace.Audit ~t0 ~gate
        ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
        ~matrix_nodes:(-1) ~hits:0 ~misses:0 ~detail
  in
  let violations = check () in
  let found = List.length violations in
  if found = 0 then emit "clean"
  else begin
    engine.stats.audit_violations <- engine.stats.audit_violations + found;
    let classes = List.map Dd.Audit.class_of violations in
    if List.mem Dd.Audit.Table classes then
      Dd.Context.clear_compute_caches ctx;
    if List.mem Dd.Audit.Canonicity classes then
      engine.state_edge <- Dd.Audit.rebuild_vector ctx engine.state_edge;
    (* rung 3: renormalise drift (whether original or exposed by the
       rebuild folding corrupt weights into the root) *)
    let n2 = Dd.Audit.norm2_uncached engine.state_edge in
    if
      Float.is_finite n2 && n2 > 1e-300
      && Float.abs (sqrt n2 -. 1.) > engine.audit_tol
    then begin
      engine.state_edge <-
        Dd.Vdd.scale ctx (Cnum.of_float (1. /. sqrt n2)) engine.state_edge;
      engine.stats.renormalizations <- engine.stats.renormalizations + 1
    end;
    match check () with
    | [] ->
      engine.stats.audit_repairs <- engine.stats.audit_repairs + 1;
      emit (Printf.sprintf "%d violation%s repaired" found
              (if found = 1 then "" else "s"))
    | remaining ->
      emit
        (Printf.sprintf "%d violation%s, %d unrecovered" found
           (if found = 1 then "" else "s")
           (List.length remaining));
      Error.raise_error
        (Error.Audit_failure
           {
             violations = List.map Dd.Audit.to_string remaining;
             site =
               {
                 Error.gate_index = gate;
                 strategy;
                 state_nodes = Dd.Vdd.node_count engine.state_edge;
                 matrix_nodes = 0;
               };
           })
  end;
  found

let audit_now engine =
  run_audit engine ~gate:engine.stats.gates_seen
    ~strategy:Strategy.Sequential

let set_reorder engine ?(bulge_factor = 4.0) ?(every = 64) policy =
  if (not (Float.is_finite bulge_factor)) || bulge_factor <= 1. then
    Error.invalid_parameter ~what:"Engine.set_reorder"
      (Printf.sprintf "bulge factor must be > 1 (got %g)" bulge_factor);
  if every < 1 then
    Error.invalid_parameter ~what:"Engine.set_reorder"
      (Printf.sprintf "cadence must be >= 1 (got %d)" every);
  engine.reorder_policy <- policy;
  engine.bulge_factor <- bulge_factor;
  engine.reorder_every <- every;
  engine.last_reorder <- 0;
  engine.reorder_done <- false

let reorder_policy engine = engine.reorder_policy

let note_reorder engine ~t0 ~gate ~swaps ~nodes_before ~nodes_after ~detail
    =
  engine.stats.reorders_run <- engine.stats.reorders_run + 1;
  engine.stats.reorder_swaps <- engine.stats.reorder_swaps + swaps;
  engine.stats.reorder_nodes_before <-
    engine.stats.reorder_nodes_before + nodes_before;
  engine.stats.reorder_nodes_after <-
    engine.stats.reorder_nodes_after + nodes_after;
  if Obs.Trace.is_on engine.trace then
    Obs.Trace.span engine.trace Obs.Trace.Reorder ~t0 ~gate
      ~state_nodes:nodes_after ~matrix_nodes:(-1) ~hits:0 ~misses:0
      ~detail:
        (Printf.sprintf "%s: %d swaps, %d -> %d nodes" detail swaps
           nodes_before nodes_after)

(* One sifting pass over the live state: the state edge and the context's
   order move together (every adjacent swap updates both), so callers see
   a semantically identical state under a cheaper order. *)
let reorder_now ?max_growth ?max_passes engine =
  let traced = Obs.Trace.is_on engine.trace in
  let t0 = if traced then Obs.Trace.now engine.trace else 0. in
  let edge, rstats =
    Dd.Reorder.sift ?max_growth ?max_passes engine.context engine.state_edge
  in
  engine.state_edge <- edge;
  note_reorder engine ~t0 ~gate:engine.stats.gates_seen
    ~swaps:rstats.Dd.Reorder.swaps
    ~nodes_before:rstats.Dd.Reorder.nodes_before
    ~nodes_after:rstats.Dd.Reorder.nodes_after ~detail:"sift";
  rstats

(* Permute the live state to an explicit target order (the --order flag).
   Counts as a reordering pass and satisfies the Once policy — a
   hand-picked order should not be second-guessed by a later sift. *)
let set_order engine order =
  if not (Dd.Order.is_identity order) && Dd.Order.size order <> engine.n
  then
    Error.invalid_parameter ~what:"Engine.set_order"
      (Printf.sprintf "order covers %d levels, engine has %d qubits"
         (Dd.Order.size order) engine.n);
  let traced = Obs.Trace.is_on engine.trace in
  let t0 = if traced then Obs.Trace.now engine.trace else 0. in
  let nodes_before = Dd.Vdd.node_count engine.state_edge in
  let edge, swaps =
    Dd.Reorder.apply_order engine.context engine.state_edge order
  in
  engine.state_edge <- edge;
  note_reorder engine ~t0 ~gate:engine.stats.gates_seen ~swaps
    ~nodes_before
    ~nodes_after:(Dd.Vdd.node_count edge)
    ~detail:"explicit order";
  engine.reorder_done <- true;
  swaps

(* Bulge probe + sift, at the [reorder_every] cadence.  The probe reads
   the unique table's incrementally maintained per-level resident counts
   (O(levels), no DD walk) — between GCs these cover every resident
   vector node, a superset of the state's reachable set, which is the
   right quantity to bound: a bulge in residency is memory pressure
   whether or not every node is still reachable. *)
let maybe_reorder engine ~gate =
  match engine.reorder_policy with
  | Reorder_off -> ()
  | Reorder_once when engine.reorder_done -> ()
  | Reorder_once | Reorder_adaptive ->
    if gate - engine.last_reorder >= engine.reorder_every then begin
      engine.last_reorder <- gate;
      let counts =
        Dd.Context.per_level_v_nodes engine.context ~levels:engine.n
      in
      match
        Obs.Dd_profile.bulge ~factor:engine.bulge_factor counts
      with
      | Some _ ->
        engine.reorder_done <- true;
        ignore (reorder_now engine)
      | None -> ()
    end

(* A traced run keeps the peaks too: the report cross-checks the
   trajectory maximum against [peak_state_nodes], and a trace without its
   aggregate counterpart would leave that unverifiable. *)
let note_state_peak engine =
  if engine.track_peaks || Obs.Trace.is_on engine.trace then
    engine.stats.peak_state_nodes <-
      max engine.stats.peak_state_nodes
        (Dd.Vdd.node_count engine.state_edge)

let note_matrix_peak engine matrix =
  if engine.track_peaks || Obs.Trace.is_on engine.trace then
    engine.stats.peak_matrix_nodes <-
      max engine.stats.peak_matrix_nodes (Dd.Mdd.node_count matrix)

let gate_dd engine (gate : Gate.t) =
  let led = engine.ledger in
  let ledgered = Obs.Ledger.is_on led in
  let t0 = if ledgered then Obs.Clock.now () else 0. in
  let controls =
    List.map
      (fun (c : Gate.control) ->
        { Dd.Mdd.c_qubit = c.qubit; c_positive = c.positive })
      gate.controls
  in
  let matrix =
    Dd.Mdd.gate engine.context ~n:engine.n ~target:gate.target ~controls
      (Gate.matrix gate.kind)
  in
  if ledgered then Obs.Ledger.add_build led (Obs.Clock.now () -. t0);
  matrix

(* Per-op compute-table deltas: each multiplication kind is attributed to
   its primary memo table (mul_mv / apply / mul_mm).  Recursive helpers
   (add_v, ...) are not included — the delta answers "did this op hit the
   memo layer", not "every table the recursion touched". *)
let table_mark traced table =
  if traced then (Dd.Compute_table.hits table, Dd.Compute_table.lookups table)
  else (0, 0)

let table_delta table (hits0, lookups0) =
  let hits = Dd.Compute_table.hits table - hits0 in
  let misses = Dd.Compute_table.lookups table - lookups0 - hits in
  (hits, misses)

let apply_matrix engine matrix =
  let trace = engine.trace in
  let traced = Obs.Trace.is_on trace in
  let led = engine.ledger in
  let ledgered = Obs.Ledger.is_on led in
  let t0 = if traced then Obs.Trace.now trace else 0. in
  let lt0 = if ledgered then Obs.Clock.now () else 0. in
  let table = engine.context.Dd.Context.mul_mv in
  let mark = table_mark (traced || ledgered) table in
  engine.state_edge <- Dd.Mdd.apply engine.context matrix engine.state_edge;
  engine.stats.mat_vec_mults <- engine.stats.mat_vec_mults + 1;
  engine.stats.generic_applies <- engine.stats.generic_applies + 1;
  note_matrix_peak engine matrix;
  note_state_peak engine;
  if ledgered then begin
    Obs.Ledger.add_apply led (Obs.Clock.now () -. lt0);
    let hits, misses = table_delta table mark in
    Obs.Ledger.add_traffic led ~hits ~misses;
    Obs.Ledger.note_matrix led (Dd.Mdd.node_count matrix)
  end;
  if traced then begin
    let hits, misses = table_delta table mark in
    Obs.Trace.span trace Obs.Trace.Mat_vec ~t0
      ~gate:(Obs.Trace.gate trace)
      ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
      ~matrix_nodes:(Dd.Mdd.node_count matrix)
      ~hits ~misses ~detail:"generic"
  end

(* Structured fast path: the gate is applied to the state DD directly
   (Dd.Apply), never materialising the n-qubit gate DD — no identity
   nodes, no mul_mv traffic.  Still one logical mat-vec, so
   [mat_vec_mults] counts it alongside [fast_path_applies]. *)
let apply_structured engine (gate : Gate.t) =
  let trace = engine.trace in
  let traced = Obs.Trace.is_on trace in
  let led = engine.ledger in
  let ledgered = Obs.Ledger.is_on led in
  let t0 = if traced then Obs.Trace.now trace else 0. in
  let lt0 = if ledgered then Obs.Clock.now () else 0. in
  let table = engine.context.Dd.Context.apply_v in
  let mark = table_mark (traced || ledgered) table in
  let controls =
    List.map
      (fun (c : Gate.control) ->
        { Dd.Apply.qubit = c.qubit; positive = c.positive })
      gate.controls
  in
  engine.state_edge <-
    Dd.Apply.apply engine.context ~n:engine.n ~target:gate.target ~controls
      (Gate.matrix gate.kind) engine.state_edge;
  engine.stats.mat_vec_mults <- engine.stats.mat_vec_mults + 1;
  engine.stats.fast_path_applies <- engine.stats.fast_path_applies + 1;
  note_state_peak engine;
  if ledgered then begin
    Obs.Ledger.add_apply led (Obs.Clock.now () -. lt0);
    let hits, misses = table_delta table mark in
    Obs.Ledger.add_traffic led ~hits ~misses
  end;
  if traced then begin
    let hits, misses = table_delta table mark in
    Obs.Trace.span trace Obs.Trace.Mat_vec ~t0
      ~gate:(Obs.Trace.gate trace)
      ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
      ~matrix_nodes:(-1) ~hits ~misses ~detail:"fast"
  end

(* one gate onto the state, honouring the fused-apply switch *)
let apply_gate_single engine gate =
  if engine.fused_apply then apply_structured engine gate
  else apply_matrix engine (gate_dd engine gate)

let apply_gate engine gate =
  engine.stats.gates_seen <- engine.stats.gates_seen + 1;
  if Obs.Trace.is_on engine.trace then
    Obs.Trace.set_gate engine.trace (engine.stats.gates_seen - 1);
  apply_gate_single engine gate;
  if Obs.Trace.is_on engine.trace then
    Obs.Trace.instant engine.trace Obs.Trace.Gate_applied
      ~gate:(Obs.Trace.gate engine.trace)
      ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
      ~matrix_nodes:(-1) ~detail:(Gate.name gate)

let multiply_onto engine gate product =
  let trace = engine.trace in
  let traced = Obs.Trace.is_on trace in
  let led = engine.ledger in
  let ledgered = Obs.Ledger.is_on led in
  let t0 = if traced then Obs.Trace.now trace else 0. in
  let lt0 = if ledgered then Obs.Clock.now () else 0. in
  let table = engine.context.Dd.Context.mul_mm in
  let mark = table_mark (traced || ledgered) table in
  engine.stats.mat_mat_mults <- engine.stats.mat_mat_mults + 1;
  let result = Dd.Mdd.mul engine.context gate product in
  note_matrix_peak engine result;
  if ledgered then begin
    Obs.Ledger.add_build led (Obs.Clock.now () -. lt0);
    let hits, misses = table_delta table mark in
    Obs.Ledger.add_traffic led ~hits ~misses;
    Obs.Ledger.note_matrix led (Dd.Mdd.node_count result)
  end;
  if traced then begin
    let hits, misses = table_delta table mark in
    Obs.Trace.span trace Obs.Trace.Mat_mat ~t0
      ~gate:(Obs.Trace.gate trace) ~state_nodes:(-1)
      ~matrix_nodes:(Dd.Mdd.node_count result)
      ~hits ~misses ~detail:""
  end;
  result

let combine engine gates =
  match gates with
  | [] -> Dd.Mdd.identity engine.context engine.n
  | first :: rest ->
    engine.stats.gates_seen <- engine.stats.gates_seen + List.length gates;
    List.fold_left
      (fun product gate -> multiply_onto engine (gate_dd engine gate) product)
      (gate_dd engine first) rest

(* Tree-reduce a window of gate DDs (newest first: [m_p; ...; m_1]) into
   the product m_p x ... x m_1 across the pool.  Each round pairs
   consecutive matrices — association changes, operand order (and hence
   the product) does not.  The final two-element round goes through
   [Mdd.mul_par], which additionally scatters its eight top-level inner
   products, so the reduction's last — largest — multiplication is not a
   single-domain bottleneck.  The shared tables are armed for concurrent
   interning for the duration; stats stay main-domain-only (workers run
   pure [Mdd.mul]).  A task that raises surfaces as a structured
   {!Error.Worker_failure}; worker domains themselves never die. *)
(* Fold a pool's utilization counters into the run stats — call only at
   quiescence, just before the pool is shut down.  Idle time is the crew
   capacity inside pool sections not spent running tasks (waiting on the
   scatter cursor or on stragglers), clamped at zero against clock
   jitter. *)
let absorb_pool_stats engine pool =
  let s = Domain_pool.stats pool in
  let crew = Domain_pool.size pool in
  let busy = Array.fold_left ( +. ) 0. s.Domain_pool.worker_busy_seconds in
  let tasks = Array.fold_left ( + ) 0 s.Domain_pool.worker_tasks in
  let stats = engine.stats in
  stats.pool_batches <- stats.pool_batches + s.Domain_pool.batches;
  stats.pool_tasks <- stats.pool_tasks + tasks;
  stats.pool_busy_seconds <- stats.pool_busy_seconds +. busy;
  stats.pool_idle_seconds <-
    stats.pool_idle_seconds
    +. Float.max 0.
         ((s.Domain_pool.section_seconds *. float_of_int crew) -. busy);
  stats.pool_section_seconds <-
    stats.pool_section_seconds +. s.Domain_pool.section_seconds

let reduce_window engine pool mats =
  let ctx = engine.context in
  let trace = engine.trace in
  let traced = Obs.Trace.is_on trace in
  let value = function
    | Ok v -> v
    | Error e ->
      Error.raise_error
        (Error.Worker_failure
           { task = "window product"; message = Printexc.to_string e })
  in
  (* Worker-side tracing: each task logs its multiplication as a
     [Mat_mat] span on the executing crew member's private lane
     (including the caller, lane 0), so nothing touches the shared
     buffer until [merge_lanes] below runs at quiescence. *)
  let task_mul detail a b () =
    if not traced then Dd.Mdd.mul ctx a b
    else begin
      let lane = Obs.Trace.lane trace (Domain_pool.self_index ()) in
      let t0 = Obs.Trace.now lane in
      let r = Dd.Mdd.mul ctx a b in
      Obs.Trace.span lane Obs.Trace.Mat_mat ~t0 ~gate:(Obs.Trace.gate lane)
        ~state_nodes:(-1)
        ~matrix_nodes:(Dd.Mdd.node_count r)
        ~hits:0 ~misses:0 ~detail;
      r
    end
  in
  let par thunks =
    let thunks =
      if not traced then thunks
      else
        Array.map
          (fun thunk () ->
            let lane = Obs.Trace.lane trace (Domain_pool.self_index ()) in
            let t0 = Obs.Trace.now lane in
            let r = thunk () in
            Obs.Trace.span lane Obs.Trace.Mat_mat ~t0
              ~gate:(Obs.Trace.gate lane) ~state_nodes:(-1) ~matrix_nodes:(-1)
              ~hits:0 ~misses:0 ~detail:"mul_par inner product";
            r)
          thunks
    in
    Array.map value (Domain_pool.run_all pool thunks)
  in
  if traced then Obs.Trace.arm_lanes trace (Domain_pool.size pool);
  let section_t0 = if traced then Obs.Trace.now trace else 0. in
  Dd.Context.set_parallel ctx true;
  Fun.protect
    ~finally:(fun () ->
      Dd.Context.set_parallel ctx false;
      if traced then begin
        (* merge before the section span so buffer end times stay
           monotone: the section ends after every lane event it covers *)
        Obs.Trace.merge_lanes trace;
        Obs.Trace.span trace Obs.Trace.Pool_section ~t0:section_t0
          ~gate:(Obs.Trace.gate trace) ~state_nodes:(-1) ~matrix_nodes:(-1)
          ~hits:0 ~misses:0
          ~detail:
            (Printf.sprintf "window reduce, %d matrices, %d domains"
               (List.length mats) (Domain_pool.size pool))
      end)
    (fun () ->
      let rec reduce mats =
        match mats with
        | [] -> Dd.Mdd.identity ctx engine.n
        | [ m ] -> m
        | [ a; b ] ->
          engine.stats.mat_mat_mults <- engine.stats.mat_mat_mults + 1;
          Dd.Mdd.mul_par ctx ~par a b
        | mats ->
          let arr = Array.of_list mats in
          let n = Array.length arr in
          let pairs = n / 2 in
          let tasks =
            Array.init pairs (fun i ->
                task_mul "window pair" arr.(2 * i) arr.((2 * i) + 1))
          in
          let products = Array.map value (Domain_pool.run_all pool tasks) in
          engine.stats.mat_mat_mults <- engine.stats.mat_mat_mults + pairs;
          let tail = if n land 1 = 1 then [ arr.(n - 1) ] else [] in
          reduce (Array.to_list products @ tail)
      in
      reduce mats)

(* Parallel composition of pre-built operation DDs, in application order
   (first applied first): returns [m_k x ... x m_1] reduced over a fresh
   pool of [domains engine] domains.  Exposed for direct use and for
   fault-injection tests — a worker failure raises the structured
   {!Error.Worker_failure}, never kills a domain. *)
let combine_parallel engine mats =
  match mats with
  | [] -> Dd.Mdd.identity engine.context engine.n
  | mats ->
    let pool = Domain_pool.create ~domains:engine.domains in
    Fun.protect
      ~finally:(fun () ->
        absorb_pool_stats engine pool;
        Domain_pool.shutdown pool)
      (fun () -> reduce_window engine pool (List.rev mats))

(* Window-combination driver shared by the k-operations and max-size
   strategies: gates accumulate into a pending product (mat-mat
   multiplications); the product is flushed onto the state (one mat-vec)
   when the strategy's bound is reached or the gate stream ends.

   When a [Guard.t] is supplied, budgets are enforced between
   multiplications: an over-budget partial product degrades the window to
   sequential application instead of dying, live-node pressure triggers
   automatic garbage collection, norm drift triggers renormalisation, and
   deadline / memory exhaustion aborts with a structured {!Error.Error}
   (after forcing a checkpoint when one is configured, so the run can be
   resumed from where it stopped). *)
let run ?(strategy = Strategy.Sequential) ?(use_repeating = false)
    ?(guard = Guard.none) ?(checkpoint_every = 1024) ?on_checkpoint
    ?(start_gate = 0) engine circuit =
  (match Strategy.check strategy with
  | Ok () -> ()
  | Error message -> Error.invalid_parameter ~what:"Strategy" message);
  if start_gate < 0 then
    Error.invalid_parameter ~what:"Engine.run"
      (Printf.sprintf "negative start_gate (%d)" start_gate);
  if checkpoint_every < 1 then
    Error.invalid_parameter ~what:"Engine.run"
      (Printf.sprintf "checkpoint_every must be >= 1 (got %d)"
         checkpoint_every);
  if Circuit.(circuit.qubits) <> engine.n then
    Error.raise_error
      (Error.Width_mismatch
         {
           what = "Engine.run";
           expected = engine.n;
           actual = Circuit.(circuit.qubits);
         });
  let ctx = engine.context in
  let guarded = not (Guard.is_none guard) in
  let trace = engine.trace in
  let traced = Obs.Trace.is_on trace in
  let profile = engine.profile in
  let run_t0 = Obs.Clock.now () in
  engine.stats.domains <- engine.domains;
  let pool =
    if engine.domains > 1 then
      Some (Domain_pool.create ~domains:engine.domains)
    else None
  in
  (* Parallel windows need the whole window's gate DDs at once (the tree
     reduction), which forfeits the per-multiplication matrix-budget
     check — so a [max_matrix_nodes] guard keeps the sequential
     accumulate-and-degrade path even when a pool exists. *)
  let parallel_windows =
    match (pool, strategy) with
    | Some _, Strategy.K_operations _ ->
      guard.Guard.max_matrix_nodes = None
    | _ -> false
  in
  let pending = ref None in
  let pending_count = ref 0 in
  (* parallel-window accumulator (newest first); reduced at flush *)
  let window = ref [] in
  let window_count = ref 0 in
  (* gates whose effect is in the state; the resume point of checkpoints *)
  let applied = ref start_gate in
  (* gates seen in application order, for skipping on resume *)
  let cursor = ref 0 in
  (* > 0 while a breached window's remaining gates go through sequentially *)
  let fallback_left = ref 0 in
  (* combined Repeat-block matrix, rooted during its application loop so
     an automatic GC cannot reclaim it *)
  let block_root = ref None in
  let last_checkpoint = ref start_gate in
  let write_checkpoint ~force () =
    match on_checkpoint with
    | None -> ()
    | Some callback ->
      if force || !applied - !last_checkpoint >= checkpoint_every then begin
        callback ~gate_index:!applied;
        last_checkpoint := !applied;
        engine.stats.checkpoints_written <-
          engine.stats.checkpoints_written + 1;
        if traced then
          Obs.Trace.instant trace Obs.Trace.Checkpoint ~gate:!applied
            ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
            ~matrix_nodes:(-1)
            ~detail:(if force then "forced" else "periodic")
      end
  in
  let site () =
    {
      Error.gate_index = !applied;
      strategy;
      state_nodes = Dd.Vdd.node_count engine.state_edge;
      matrix_nodes =
        (match !pending with
        | Some p -> Dd.Mdd.node_count p
        | None ->
          List.fold_left (fun acc m -> acc + Dd.Mdd.node_count m) 0 !window);
    }
  in
  let abort kind ~limit ~actual =
    write_checkpoint ~force:true ();
    Error.raise_error
      (Error.Budget_exhausted { kind; limit; actual; site = site () })
  in
  let auto_gc () =
    let m_roots = List.filter_map (fun r -> !r) [ pending; block_root ] in
    let m_roots = !window @ m_roots in
    let v_removed, m_removed =
      Dd.Context.collect ctx ~v_roots:[ engine.state_edge ] ~m_roots
    in
    engine.stats.auto_gcs <- engine.stats.auto_gcs + 1;
    engine.stats.gc_reclaimed_nodes <-
      engine.stats.gc_reclaimed_nodes + v_removed + m_removed;
    engine.stats.gc_pause_seconds <-
      engine.stats.gc_pause_seconds
      +. (Dd.Context.gc_stats ctx).Dd.Context.last_pause
  in
  let deadline_check =
    match guard.Guard.deadline with
    | None -> fun () -> ()
    | Some limit ->
      let t0 = Obs.Clock.now () in
      fun () ->
        let elapsed = Obs.Clock.now () -. t0 in
        if elapsed >= limit then abort Error.Deadline ~limit ~actual:elapsed
  in
  let memory_check =
    if guard.Guard.gc_high_water = None && guard.Guard.max_live_nodes = None
    then fun () -> ()
    else
      let live () =
        Dd.Context.live_v_nodes ctx + Dd.Context.live_m_nodes ctx
      in
      fun () ->
        (match guard.Guard.gc_high_water with
        | Some high_water when live () > high_water -> auto_gc ()
        | _ -> ());
        (match guard.Guard.max_live_nodes with
        | Some limit when live () > limit ->
          (* last-ditch collection before declaring the memory budget
             exhausted *)
          auto_gc ();
          let actual = live () in
          if actual > limit then
            abort Error.Live_nodes ~limit:(float_of_int limit)
              ~actual:(float_of_int actual)
        | _ -> ())
  in
  let norm_check =
    match guard.Guard.norm_tolerance with
    | None -> fun () -> ()
    | Some tolerance ->
      fun () ->
        let n2 = Dd.Measure.norm2 ctx engine.state_edge in
        if not (Float.is_finite n2) || n2 < 1e-300 then begin
          write_checkpoint ~force:true ();
          Error.raise_error
            (Error.Renormalization_failed { norm2 = n2; site = site () })
        end
        else if Float.abs (sqrt n2 -. 1.) > tolerance then begin
          engine.state_edge <-
            Dd.Vdd.scale ctx
              (Cnum.of_float (1. /. sqrt n2))
              engine.state_edge;
          engine.stats.renormalizations <-
            engine.stats.renormalizations + 1;
          if traced then
            Obs.Trace.instant trace Obs.Trace.Renormalize
              ~gate:(Obs.Trace.gate trace)
              ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
              ~matrix_nodes:(-1)
              ~detail:(Printf.sprintf "norm drifted to %.9f" (sqrt n2))
        end
  in
  let matrix_over =
    match guard.Guard.max_matrix_nodes with
    | None -> fun _ -> false
    | Some limit -> fun product -> Dd.Mdd.node_count product > limit
  in
  let led = engine.ledger in
  let ledgered = Obs.Ledger.is_on led in
  (* Commit the open ledger entry with end-of-window gauges.  Commits
     live at the flush call sites, not inside [flush]: a breached
     K-window flushes its partial product but the (degraded) entry must
     stay open through the sequential tail that finishes the window. *)
  let led_commit () =
    if ledgered && Obs.Ledger.active led then begin
      let heap = (Gc.quick_stat ()).Gc.live_words in
      Obs.Ledger.commit led ~gate_end:!applied
        ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
        ~heap_words:heap
        ~table_bytes:(Dd.Context.residency_bytes ctx)
    end
  in
  let led_open ~seq () =
    if ledgered then begin
      if Obs.Ledger.active led then led_commit ();
      Obs.Ledger.open_entry led ~seq ~gate:!applied
        ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
    end
  in
  let fallback_detail () =
    match guard.Guard.max_matrix_nodes with
    | Some limit -> Printf.sprintf "max_matrix_nodes %d" limit
    | None -> "matrix budget"
  in
  let flush () =
    (match !window with
    | [] -> ()
    | mats ->
      let pool = Option.get pool in
      let combined = !window_count > 1 in
      if combined then
        engine.stats.combined_applications <-
          engine.stats.combined_applications + 1;
      let t0 = if traced then Obs.Trace.now trace else 0. in
      let lt0 = if ledgered then Obs.Clock.now () else 0. in
      let product = reduce_window engine pool mats in
      if ledgered then
        Obs.Ledger.add_build led (Obs.Clock.now () -. lt0);
      note_matrix_peak engine product;
      window := [];
      apply_matrix engine product;
      if traced && combined then
        Obs.Trace.span trace Obs.Trace.Window_combined ~t0
          ~gate:(Obs.Trace.gate trace)
          ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
          ~matrix_nodes:(Dd.Mdd.node_count product)
          ~hits:0 ~misses:0
          ~detail:
            (Printf.sprintf "%d gates (parallel, %d domains)" !window_count
               (Domain_pool.size pool));
      applied := !applied + !window_count;
      window_count := 0);
    match !pending with
    | None -> ()
    | Some product ->
      let combined = !pending_count > 1 in
      if combined then
        engine.stats.combined_applications <-
          engine.stats.combined_applications + 1;
      let t0 = if traced then Obs.Trace.now trace else 0. in
      apply_matrix engine product;
      if traced && combined then
        Obs.Trace.span trace Obs.Trace.Window_combined ~t0
          ~gate:(Obs.Trace.gate trace)
          ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
          ~matrix_nodes:(Dd.Mdd.node_count product)
          ~hits:0 ~misses:0
          ~detail:(Printf.sprintf "%d gates" !pending_count);
      applied := !applied + !pending_count;
      pending := None;
      pending_count := 0
  in
  (* structural snapshot of the state DD at the profile sink's cadence;
     only called when the state is an exact gate prefix.  The disabled
     path is the [due] probe alone: one load and one branch, nothing
     allocated (the test suite asserts this) *)
  let maybe_profile () =
    if Obs.Dd_profile.due profile ~gate:!applied then
      Obs.Dd_profile.emit profile
        (Dd.Profile.vector ~gate:!applied
           ~t:(Obs.Clock.now () -. run_t0)
           ~order:(Dd.Context.order ctx) engine.state_edge)
  in
  (* after the state advanced and no window is pending: guard the new
     state, then maybe checkpoint — the only points where a periodic
     checkpoint is taken, so a snapshot is always an exact gate prefix *)
  let after_state_update () =
    (* fault harness: a GC right after the state advanced is the most
       adversarial moment — every compute-table entry for the gate just
       applied is still hot *)
    if Fault.fire Fault.Forced_gc then
      ignore
        (Dd.Context.collect engine.context ~v_roots:[ engine.state_edge ]
           ~m_roots:[]);
    if guarded then begin
      norm_check ();
      memory_check ()
    end;
    if audit_due engine ~gate:!applied then
      ignore (run_audit engine ~gate:!applied ~strategy);
    (* reorder before profiling, so snapshots reflect the new order *)
    maybe_reorder engine ~gate:!applied;
    maybe_profile ();
    write_checkpoint ~force:false ()
  in
  (* Sequential applications — the Sequential strategy itself and the
     sequential tail of a breached combination window — go through
     [apply_gate_single]: with fused apply on, the gate DD is never
     built.  Combined-window products keep the generic [Mdd] path (the
     whole point of mat-mat combination is re-using those DDs). *)
  let note_fallback () =
    engine.stats.fallbacks <- engine.stats.fallbacks + 1;
    if traced then
      Obs.Trace.instant trace Obs.Trace.Fallback
        ~gate:(Obs.Trace.gate trace)
        ~state_nodes:(-1)
        ~matrix_nodes:
          (match !pending with
          | Some p -> Dd.Mdd.node_count p
          | None -> -1)
        ~detail:"window over matrix budget; degrading to sequential"
  in
  let absorb_dispatch gate =
    match strategy with
    | Strategy.Sequential ->
      if ledgered then begin
        if not (Obs.Ledger.active led) then led_open ~seq:true ();
        Obs.Ledger.add_gates led 1
      end;
      apply_gate_single engine gate;
      incr applied;
      (* long sequential stretches rotate into fresh entries so the
         ledger samples memory gauges along the way *)
      if ledgered && Obs.Ledger.rotate_due led then led_commit ();
      after_state_update ()
    | Strategy.K_operations k when parallel_windows ->
      (* no matrix budget on this path (see [parallel_windows]), so no
         degradation logic: accumulate gate DDs and tree-reduce at k *)
      if ledgered then begin
        if !window_count = 0 then led_open ~seq:false ();
        Obs.Ledger.add_gates led 1
      end;
      window := gate_dd engine gate :: !window;
      incr window_count;
      if !window_count >= k then begin
        flush ();
        led_commit ()
      end;
      if !window_count = 0 then after_state_update ()
    | Strategy.K_operations k ->
      if !fallback_left > 0 then begin
        decr fallback_left;
        if ledgered then Obs.Ledger.add_gates led 1;
        apply_gate_single engine gate;
        incr applied;
        (* the degraded window's entry closes with its last tail gate *)
        if ledgered && !fallback_left = 0 then led_commit ();
        after_state_update ()
      end
      else begin
        (match !pending with
        | None ->
          if ledgered then begin
            led_open ~seq:false ();
            Obs.Ledger.add_gates led 1
          end;
          pending := Some (gate_dd engine gate);
          pending_count := 1
        | Some product ->
          if matrix_over product then begin
            (* graceful degradation: flush the oversized partial product
               and apply the remaining gates of this window one by one *)
            note_fallback ();
            if ledgered then begin
              Obs.Ledger.degrade led ~detail:(fallback_detail ());
              Obs.Ledger.add_gates led 1
            end;
            fallback_left := max 0 (k - !pending_count - 1);
            flush ();
            apply_gate_single engine gate;
            incr applied;
            if ledgered && !fallback_left = 0 then led_commit ()
          end
          else begin
            if ledgered then Obs.Ledger.add_gates led 1;
            pending := Some (multiply_onto engine (gate_dd engine gate) product);
            incr pending_count
          end);
        if !pending_count >= k then begin
          flush ();
          led_commit ()
        end;
        if Option.is_none !pending then after_state_update ()
      end
    | Strategy.Max_size bound ->
      (match !pending with
      | None ->
        if ledgered then begin
          led_open ~seq:false ();
          Obs.Ledger.add_gates led 1
        end;
        let gate_matrix = gate_dd engine gate in
        pending := Some gate_matrix;
        pending_count := 1;
        if Dd.Mdd.node_count gate_matrix > bound then begin
          flush ();
          led_commit ()
        end
      | Some product ->
        if matrix_over product then begin
          note_fallback ();
          if ledgered then begin
            Obs.Ledger.degrade led ~detail:(fallback_detail ());
            Obs.Ledger.add_gates led 1
          end;
          flush ();
          apply_gate_single engine gate;
          incr applied;
          led_commit ()
        end
        else begin
          if ledgered then Obs.Ledger.add_gates led 1;
          let product = multiply_onto engine (gate_dd engine gate) product in
          pending := Some product;
          incr pending_count;
          if Dd.Mdd.node_count product > bound then begin
            flush ();
            led_commit ()
          end
        end);
      if Option.is_none !pending then after_state_update ()
  in
  let absorb gate =
    if guarded then deadline_check ();
    engine.stats.gates_seen <- engine.stats.gates_seen + 1;
    absorb_dispatch gate;
    if traced then
      (* node count only when the state actually reflects this gate — a
         pending window means the effect has not landed yet *)
      Obs.Trace.instant trace Obs.Trace.Gate_applied
        ~gate:(Obs.Trace.gate trace)
        ~state_nodes:
          (if Option.is_none !pending && !window = [] then
             Dd.Vdd.node_count engine.state_edge
           else -1)
        ~matrix_nodes:
          (match !pending with
          | Some p -> Dd.Mdd.node_count p
          | None ->
            if !window = [] then -1
            else
              List.fold_left
                (fun acc m -> acc + Dd.Mdd.node_count m)
                0 !window)
        ~detail:(Gate.name gate)
  in
  let absorb_or_skip gate =
    if !cursor >= start_gate then begin
      if traced then Obs.Trace.set_gate trace !cursor;
      absorb gate
    end;
    incr cursor
  in
  let rec walk op =
    match op with
    | Circuit.Gate gate -> absorb_or_skip gate
    | Circuit.Repeat { count; body } ->
      if use_repeating && count > 1 then begin
        let gates = body_gates body in
        let len = List.length gates in
        let todo = ref count in
        (* skip whole repetitions that precede the resume point *)
        while !todo > 0 && !cursor + len <= start_gate do
          cursor := !cursor + len;
          decr todo
        done;
        if !todo > 0 && !cursor < start_gate then begin
          (* the resume point falls inside one repetition: finish that
             repetition gate by gate *)
          List.iter absorb_or_skip gates;
          decr todo
        end;
        if !todo > 0 then begin
          flush ();
          led_commit ();
          led_open ~seq:false ();
          let block = combine engine gates in
          engine.stats.combined_applications <-
            engine.stats.combined_applications + !todo;
          if ledgered then begin
            (* one combined k-gate matrix applied [todo] times: record
               the build k, attribute every covered gate so per-gate
               amortization reflects the reuse *)
            Obs.Ledger.set_window_k led len;
            Obs.Ledger.add_gates led (len * !todo);
            Obs.Ledger.note_detail led
              (Printf.sprintf "repeat block of %d gates x %d" len !todo)
          end;
          block_root := Some block;
          for _ = 1 to !todo do
            if guarded then deadline_check ();
            if traced then Obs.Trace.set_gate trace (!cursor + len - 1);
            apply_matrix engine block;
            applied := !applied + len;
            cursor := !cursor + len;
            if traced then
              Obs.Trace.instant trace Obs.Trace.Window_combined
                ~gate:(!cursor - 1)
                ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
                ~matrix_nodes:(Dd.Mdd.node_count block)
                ~detail:(Printf.sprintf "repeat block of %d gates" len);
            after_state_update ()
          done;
          led_commit ();
          block_root := None
        end
      end
      else
        for _ = 1 to count do
          List.iter walk body
        done
  and body_gates body =
    let circuit = Circuit.create ~qubits:engine.n body in
    Circuit.flatten circuit
  in
  (* wall time and the dropped-event count must survive a structured
     abort (budget exhaustion raises out of [walk]) *)
  Fun.protect
    ~finally:(fun () ->
      (* pool teardown before anything else: no leaked domains, and the
         shared tables are guaranteed quiescent past this point *)
      (match pool with
      | Some p ->
        absorb_pool_stats engine p;
        Domain_pool.shutdown p
      | None -> ());
      (* closes the trailing sequential stretch of a normal run and the
         open entry of an aborted one (budget exhaustion raises out of
         [walk]); a no-op when everything already committed *)
      led_commit ();
      if ledgered then
        engine.stats.ledger_entries <- Obs.Ledger.length led;
      engine.stats.wall_time_seconds <-
        engine.stats.wall_time_seconds +. (Obs.Clock.now () -. run_t0);
      if traced then
        engine.stats.trace_events_dropped <- Obs.Trace.dropped trace)
    (fun () ->
      List.iter walk Circuit.(circuit.ops);
      flush ();
      led_commit ();
      (* one final snapshot so the profile always covers the end state,
         whatever the cadence *)
      if
        Obs.Dd_profile.is_on profile
        && Obs.Dd_profile.last_gate profile <> !applied
      then
        Obs.Dd_profile.emit profile
          (Dd.Profile.vector ~gate:!applied
             ~t:(Obs.Clock.now () -. run_t0)
             ~order:(Dd.Context.order ctx) engine.state_edge);
      if Option.is_none on_checkpoint then ()
      else if !applied > !last_checkpoint then write_checkpoint ~force:true ())

let amplitude engine index =
  Dd.Vdd.amplitude
    ~order:(Dd.Context.order engine.context)
    engine.state_edge ~n:engine.n index

let probability_one engine ~qubit =
  Dd.Measure.probability_one engine.context engine.state_edge ~qubit

let probabilities engine =
  Dd.Measure.probabilities
    ~order:(Dd.Context.order engine.context)
    engine.state_edge ~n:engine.n

let state_node_count engine = Dd.Vdd.node_count engine.state_edge

let measure_qubit engine ~qubit =
  let outcome, collapsed =
    Dd.Measure.measure_qubit engine.context engine.rng_state
      engine.state_edge ~qubit
  in
  engine.state_edge <- collapsed;
  if Obs.Trace.is_on engine.trace then
    Obs.Trace.instant engine.trace Obs.Trace.Measure ~gate:(-1)
      ~state_nodes:(Dd.Vdd.node_count engine.state_edge)
      ~matrix_nodes:(-1)
      ~detail:(Printf.sprintf "qubit %d -> %d" qubit (Bool.to_int outcome));
  outcome

let measure_all engine =
  let rec loop qubit acc =
    if qubit >= engine.n then acc
    else
      let bit = measure_qubit engine ~qubit in
      loop (qubit + 1) (if bit then acc lor (1 lsl qubit) else acc)
  in
  loop 0 0

let sample engine =
  Dd.Measure.sample engine.context engine.rng_state engine.state_edge

(* Multi-shot sampling with pool-size-independent outcomes: the engine
   RNG is consumed exactly [shots] times — one derived seed per shot,
   drawn sequentially — and shot [i] walks the DD under its own
   [Random.State.make [| seed_i |]].  The outcome array therefore depends
   only on the engine RNG stream and the state DD, never on how shots
   were scheduled over domains; [--domains 1] and [--domains 4] agree
   exactly.  (The per-shot walk only reads the DD and memoises subtree
   norms in the context's norm table — float results, identical from
   every shot, so racy table traffic is harmless and locked anyway.) *)
let sample_shots engine shots =
  if shots < 0 then
    Error.invalid_parameter ~what:"Engine.sample_shots"
      (Printf.sprintf "shots must be >= 0 (got %d)" shots);
  let seeds = Array.make (max shots 1) 0 in
  for i = 0 to shots - 1 do
    seeds.(i) <- Random.State.bits engine.rng_state
  done;
  let ctx = engine.context and state = engine.state_edge in
  let run_shot seed =
    Dd.Measure.sample ctx (Random.State.make [| seed |]) state
  in
  if shots = 0 then [||]
  else if engine.domains <= 1 || shots = 1 then
    Array.init shots (fun i -> run_shot seeds.(i))
  else begin
    let pool = Domain_pool.create ~domains:(min engine.domains shots) in
    let trace = engine.trace in
    let traced = Obs.Trace.is_on trace in
    if traced then Obs.Trace.arm_lanes trace (Domain_pool.size pool);
    let section_t0 = if traced then Obs.Trace.now trace else 0. in
    Fun.protect
      ~finally:(fun () ->
        absorb_pool_stats engine pool;
        Domain_pool.shutdown pool;
        Dd.Context.set_parallel ctx false;
        if traced then begin
          Obs.Trace.merge_lanes trace;
          Obs.Trace.span trace Obs.Trace.Pool_section ~t0:section_t0
            ~gate:(Obs.Trace.gate trace) ~state_nodes:(-1) ~matrix_nodes:(-1)
            ~hits:0 ~misses:0
            ~detail:
              (Printf.sprintf "multi-shot sampling, %d shots, %d domains"
                 shots (Domain_pool.size pool))
        end)
      (fun () ->
        Dd.Context.set_parallel ctx true;
        let thunks =
          if not traced then
            Array.init shots (fun i () -> run_shot seeds.(i))
          else
            Array.init shots (fun i () ->
                let lane =
                  Obs.Trace.lane trace (Domain_pool.self_index ())
                in
                let t0 = Obs.Trace.now lane in
                let outcome = run_shot seeds.(i) in
                Obs.Trace.span lane Obs.Trace.Measure ~t0 ~gate:(-1)
                  ~state_nodes:(-1) ~matrix_nodes:(-1) ~hits:0 ~misses:0
                  ~detail:(Printf.sprintf "shot %d" i);
                outcome)
        in
        Array.map
          (function
            | Ok outcome -> outcome
            | Error e ->
              Error.raise_error
                (Error.Worker_failure
                   {
                     task = "multi-shot sampling";
                     message = Printexc.to_string e;
                   }))
          (Domain_pool.run_all pool thunks))
  end

let fidelity_dense engine reference =
  if Array.length reference <> 1 lsl engine.n then
    Error.invalid_parameter ~what:"Engine.fidelity_dense"
      (Printf.sprintf "reference has %d amplitudes, state has %d"
         (Array.length reference) (1 lsl engine.n));
  let reference_edge = Dd.Vdd.of_array engine.context reference in
  let overlap = Dd.Vdd.dot engine.context reference_edge engine.state_edge in
  Cnum.mag2 overlap

let collect_garbage engine =
  let v_removed, m_removed =
    Dd.Context.collect engine.context ~v_roots:[ engine.state_edge ]
      ~m_roots:[]
  in
  engine.stats.gc_reclaimed_nodes <-
    engine.stats.gc_reclaimed_nodes + v_removed + m_removed;
  engine.stats.gc_pause_seconds <-
    engine.stats.gc_pause_seconds
    +. (Dd.Context.gc_stats engine.context).Dd.Context.last_pause;
  (v_removed, m_removed)
