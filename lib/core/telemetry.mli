(** Bridge from a live engine to the unified {!Obs.Metrics} vocabulary.

    {!snapshot} freezes every counter family the engine carries —
    {!Sim_stats} aggregates, per-compute-table hit/miss/eviction counters
    ({!Dd.Context.table_stats}) and DD garbage-collection statistics
    ({!Dd.Context.gc_stats}) — into one sorted {!Obs.Metrics.snapshot}.
    Pair two snapshots with {!Obs.Metrics.diff} to cost a phase. *)

val populate : Obs.Metrics.t -> Engine.t -> unit
(** Write the engine's current readings into a registry (instruments are
    registered on first use, so any registry works). *)

val snapshot : Engine.t -> Obs.Metrics.snapshot
(** [snapshot e] is [populate r e; Obs.Metrics.snapshot r] on a fresh
    registry. *)
