(* A small work-crew of OCaml 5 domains for the engine's parallel
   sections (window-product tree reduction, multi-shot sampling).

   Deliberately minimal — stdlib Domain/Atomic/Mutex/Condition only, no
   work stealing, no futures: the engine's parallel sections are scoped
   scatter/gather batches, so one shared batch drained through an atomic
   cursor is enough.  [run_all] is synchronous: the calling domain
   publishes the batch, participates in draining it, and returns only
   after every task has finished.  That synchrony is what makes the rest
   of the simulator simple — GC, auditing, reordering and checkpointing
   all run between batches, when the pool is provably quiescent, so they
   need no rendezvous protocol of their own.

   Tasks must not leak exceptions (a lost decrement would deadlock the
   batch): [run_all] captures each task's outcome as a [result], and the
   drain loop has a belt-and-braces swallow around the task call. *)

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* scatter cursor: next task index to claim *)
  left : int Atomic.t;  (* tasks not yet completed *)
}

type t = {
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : batch option;
  (* bumped per batch so a worker that drained the cursor dry does not
     spin re-grabbing the same still-completing batch *)
  mutable generation : int;
  mutable stopping : bool;
}

let drain pool batch =
  let n = Array.length batch.tasks in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add batch.next 1 in
    if i >= n then continue := false
    else begin
      (try batch.tasks.(i) () with _ -> ());
      if Atomic.fetch_and_add batch.left (-1) = 1 then begin
        (* last task of the batch: retire it and wake the gatherer *)
        Mutex.lock pool.lock;
        pool.current <- None;
        Condition.broadcast pool.work_done;
        Mutex.unlock pool.lock
      end
    end
  done

let worker_loop pool =
  let served = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while
      (not pool.stopping)
      && (pool.current = None || pool.generation = !served)
    do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      let batch = Option.get pool.current in
      served := pool.generation;
      Mutex.unlock pool.lock;
      drain pool batch
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let pool =
    {
      workers = [||];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun _ ->
        Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers + 1

let run_all pool thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n (Error Exit) in
    let tasks =
      Array.mapi
        (fun i thunk () ->
          results.(i) <- (try Ok (thunk ()) with e -> Error e))
        thunks
    in
    let batch = { tasks; next = Atomic.make 0; left = Atomic.make n } in
    Mutex.lock pool.lock;
    assert (pool.current = None);
    pool.current <- Some batch;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    (* the caller is a crew member too — with zero workers this is just a
       sequential loop over the batch *)
    drain pool batch;
    Mutex.lock pool.lock;
    while pool.current <> None do
      Condition.wait pool.work_done pool.lock
    done;
    Mutex.unlock pool.lock;
    results
  end

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]
