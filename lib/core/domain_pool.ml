(* A small work-crew of OCaml 5 domains for the engine's parallel
   sections (window-product tree reduction, multi-shot sampling).

   Deliberately minimal — stdlib Domain/Atomic/Mutex/Condition only, no
   work stealing, no futures: the engine's parallel sections are scoped
   scatter/gather batches, so one shared batch drained through an atomic
   cursor is enough.  [run_all] is synchronous: the calling domain
   publishes the batch, participates in draining it, and returns only
   after every task has finished.  That synchrony is what makes the rest
   of the simulator simple — GC, auditing, reordering and checkpointing
   all run between batches, when the pool is provably quiescent, so they
   need no rendezvous protocol of their own.

   Tasks must not leak exceptions (a lost decrement would deadlock the
   batch): [run_all] captures each task's outcome as a [result], and the
   drain loop has a belt-and-braces swallow around the task call. *)

type batch = {
  tasks : (unit -> unit) array;
  next : int Atomic.t;  (* scatter cursor: next task index to claim *)
  left : int Atomic.t;  (* tasks not yet completed *)
}

type stats = {
  batches : int;
  section_seconds : float;
  worker_tasks : int array;
  worker_busy_seconds : float array;
}

type t = {
  mutable workers : unit Domain.t array;
  lock : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable current : batch option;
  (* bumped per batch so a worker that drained the cursor dry does not
     spin re-grabbing the same still-completing batch *)
  mutable generation : int;
  mutable stopping : bool;
  (* utilization accounting, one slot per crew member (caller is slot 0).
     Each slot is written only by its own domain while a batch runs and
     read only at quiescence, so plain mutation is safe. *)
  mutable batches : int;
  mutable section_seconds : float;
  tasks_run : int array;
  busy_seconds : float array;
}

(* Crew index of the executing domain: 0 for the pool's caller, [i + 1]
   for worker [i].  Defaults to 0, so code running outside any pool (or
   on the caller) reads 0 without registration. *)
let self_index_key = Domain.DLS.new_key (fun () -> 0)
let self_index () = Domain.DLS.get self_index_key

let drain pool batch =
  let slot = self_index () in
  let n = Array.length batch.tasks in
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add batch.next 1 in
    if i >= n then continue := false
    else begin
      let t0 = Unix.gettimeofday () in
      (try batch.tasks.(i) () with _ -> ());
      (* flush accounting before signalling completion, and regardless of
         whether the task raised: a faulted run must still report the
         time its crew actually spent *)
      pool.busy_seconds.(slot) <-
        pool.busy_seconds.(slot)
        +. Float.max 0. (Unix.gettimeofday () -. t0);
      pool.tasks_run.(slot) <- pool.tasks_run.(slot) + 1;
      if Atomic.fetch_and_add batch.left (-1) = 1 then begin
        (* last task of the batch: retire it and wake the gatherer *)
        Mutex.lock pool.lock;
        pool.current <- None;
        Condition.broadcast pool.work_done;
        Mutex.unlock pool.lock
      end
    end
  done

let worker_loop pool index =
  Domain.DLS.set self_index_key index;
  let served = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.lock;
    while
      (not pool.stopping)
      && (pool.current = None || pool.generation = !served)
    do
      Condition.wait pool.work_ready pool.lock
    done;
    if pool.stopping then begin
      Mutex.unlock pool.lock;
      running := false
    end
    else begin
      let batch = Option.get pool.current in
      served := pool.generation;
      Mutex.unlock pool.lock;
      drain pool batch
    end
  done

let create ~domains =
  if domains < 1 then invalid_arg "Domain_pool.create: domains must be >= 1";
  let pool =
    {
      workers = [||];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      current = None;
      generation = 0;
      stopping = false;
      batches = 0;
      section_seconds = 0.;
      tasks_run = Array.make domains 0;
      busy_seconds = Array.make domains 0.;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () -> worker_loop pool (i + 1)));
  pool

let size pool = Array.length pool.workers + 1

let stats pool =
  {
    batches = pool.batches;
    section_seconds = pool.section_seconds;
    worker_tasks = Array.copy pool.tasks_run;
    worker_busy_seconds = Array.copy pool.busy_seconds;
  }

let reset_stats pool =
  pool.batches <- 0;
  pool.section_seconds <- 0.;
  Array.fill pool.tasks_run 0 (Array.length pool.tasks_run) 0;
  Array.fill pool.busy_seconds 0 (Array.length pool.busy_seconds) 0.

let run_all pool thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else begin
    let results = Array.make n (Error Exit) in
    let tasks =
      Array.mapi
        (fun i thunk () ->
          results.(i) <- (try Ok (thunk ()) with e -> Error e))
        thunks
    in
    let batch = { tasks; next = Atomic.make 0; left = Atomic.make n } in
    let t0 = Unix.gettimeofday () in
    Mutex.lock pool.lock;
    assert (pool.current = None);
    pool.current <- Some batch;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_ready;
    Mutex.unlock pool.lock;
    (* the caller is a crew member too — with zero workers this is just a
       sequential loop over the batch *)
    drain pool batch;
    Mutex.lock pool.lock;
    while pool.current <> None do
      Condition.wait pool.work_done pool.lock
    done;
    Mutex.unlock pool.lock;
    pool.batches <- pool.batches + 1;
    pool.section_seconds <-
      pool.section_seconds +. Float.max 0. (Unix.gettimeofday () -. t0);
    results
  end

let shutdown pool =
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.workers;
  pool.workers <- [||]
