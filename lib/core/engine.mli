(** The DD simulation engine — the paper's primary contribution.

    An engine owns a DD package instance ({!Dd.Context.t}), the current
    state vector (as a vector DD) and a statistics record.  {!run} simulates
    a circuit under a {!Strategy.t}; with [~use_repeating:true], [Repeat]
    blocks are combined into one matrix once and re-applied (the paper's
    DD-repeating strategy).  Directly constructed unitaries (DD-construct)
    are applied through {!apply_matrix}.

    A {!Guard.t} passed to {!run} turns the engine into a resource-governed
    runtime: budgets are checked between multiplications, over-budget
    combination windows degrade gracefully to sequential application, and
    budget exhaustion aborts with a structured {!Error.Error} instead of
    dying arbitrarily.  Together with the checkpoint hooks ([?on_checkpoint],
    [?start_gate], {!set_rng}) this supports exact resumption of
    interrupted runs — see {!Checkpoint}. *)

type t

val create : ?seed:int -> ?context:Dd.Context.t -> int -> t
(** [create n] — an [n]-qubit engine in state [|0...0>].  [seed] initialises
    the measurement RNG (default [0xDD]); [context] shares an existing DD
    package (default: a fresh one). *)

val context : t -> Dd.Context.t
val qubits : t -> int
val stats : t -> Sim_stats.t
val rng : t -> Random.State.t

val set_rng : t -> Random.State.t -> unit
(** Replace the measurement RNG (checkpoint restoration). *)

val state : t -> Dd.Vdd.edge
(** Current state vector. *)

val set_state : t -> Dd.Vdd.edge -> unit
(** Replace the state (e.g. with a custom initial state).  The edge must
    have the engine's height; raises {!Error.Error} ([Width_mismatch])
    otherwise. *)

val reset : t -> unit
(** Back to [|0...0>]; statistics are reset too. *)

val set_fused_apply : t -> bool -> unit
(** Enable/disable the structured-apply fast path (default: enabled).
    When disabled, every gate goes through the explicit gate DD and the
    generic [Mdd.apply] — the A/B switch behind [--no-fused-apply]. *)

val fused_apply : t -> bool

val set_domains : t -> int -> unit
(** Domain-pool size for the parallel sections ([--domains]; default 1).
    At 1 the engine takes exactly the legacy sequential code paths — no
    pool is created, no lock is ever taken, and results are bitwise
    identical to the pre-parallel kernel.  Above 1, {!run} tree-reduces
    k-operations window products over a pool of that many domains and
    {!sample_shots} fans shots out per-domain; final states are equal
    within the interning tolerance but not bitwise reproducible (the
    reduction associates differently and node-id creation order is racy),
    while sampling outcomes remain exactly deterministic.  Raises
    {!Error.Error} ([Invalid_parameter]) below 1.
    [Domain.recommended_domain_count ()] is a sensible upper bound. *)

val domains : t -> int

val set_track_peaks : t -> bool -> unit
(** When enabled, {!Sim_stats.t.peak_state_nodes} and [peak_matrix_nodes]
    are maintained (costs a DD traversal per multiplication; off by
    default).  An attached enabled trace implies peak tracking. *)

val set_trace : t -> Obs.Trace.t -> unit
(** Attach an event sink to the engine *and* its DD context: gate
    applications, multiplications, window flushes, fallbacks,
    renormalizations, checkpoints, measurements and garbage collections
    are recorded as typed {!Obs.Trace} events.  The default is
    {!Obs.Trace.null} — disabled, and every instrumentation site reduces
    to one flag check.  Pass [Obs.Trace.null] to detach. *)

val trace : t -> Obs.Trace.t

val set_profile : t -> Obs.Dd_profile.sink -> unit
(** Attach a structural-profile sink: {!run} snapshots the state DD
    ({!Dd.Profile.vector} — per-level node/edge counts, weight
    histograms, sharing, identity fraction) whenever the sink's gate
    cadence is due and the state is an exact gate prefix, plus once at
    the end of the run.  The default is {!Obs.Dd_profile.null} —
    disabled, and the emission site reduces to one cadence probe with
    zero allocation.  Pass {!Obs.Dd_profile.null} to detach. *)

val profile : t -> Obs.Dd_profile.sink

val set_ledger : t -> Obs.Ledger.t -> unit
(** Attach a strategy cost ledger: {!run} opens one {!Obs.Ledger.entry}
    per combination window (and per sequential/fast-path stretch between
    windows) and attributes build seconds, apply seconds, matrix-DD
    peaks, memo-table traffic and end-of-window memory gauges to it.
    The default is {!Obs.Ledger.null} — disabled, and every recording
    site reduces to one flag check with zero allocation.  Pass
    {!Obs.Ledger.null} to detach. *)

val ledger : t -> Obs.Ledger.t

val set_audit : t -> ?tolerance:float -> int -> unit
(** [set_audit engine k] arms the invariant auditor ({!Dd.Audit}) at a
    cadence of one pass per [k] applied gates ([0] disarms — the
    default, in which case the per-gate probe is a single load and
    branch with zero allocation).  [tolerance] (default [1e-6]) bounds
    the acceptable drift of the recomputed state norm from 1.

    A due pass re-derives canonicity, norm and table invariants from the
    live structures and climbs a recovery ladder on violation: stale
    table entries flush the compute caches, canonicity faults re-intern
    the state through a canonical rebuild, and norm drift is
    renormalised.  Violations surviving a re-check raise {!Error.Error}
    ([Audit_failure]) naming each fault site; the run should then be
    resumed from its last good checkpoint. *)

val audit_every : t -> int
(** Current auditor cadence; [0] when disarmed. *)

val audit_due : t -> gate:int -> bool
(** The cadence probe {!run} evaluates after each state update —
    exposed so the test suite can assert its zero-allocation claim. *)

val audit_now : t -> int
(** Run one auditor pass immediately (outside any run), returning the
    number of violations found before recovery.  Raises {!Error.Error}
    ([Audit_failure]) when violations survive the recovery ladder. *)

(** {1 Dynamic variable reordering}

    The engine owns the policy behind [--reorder]: the state DD's
    level<->qubit order ({!Dd.Order}) may be changed mid-run — by
    sifting ({!Dd.Reorder.sift}) or an explicit target order — while
    circuits keep addressing qubits by their original indices (gate
    application translates through the context's order). *)

type reorder_policy =
  | Reorder_off  (** never reorder (the default) *)
  | Reorder_once
      (** reorder at most once: the first level bulge triggers one
          sifting pass (or {!set_order} counts as the one pass) *)
  | Reorder_adaptive
      (** probe for level bulges at the configured cadence and sift
          whenever one appears *)

val set_reorder : t -> ?bulge_factor:float -> ?every:int -> reorder_policy -> unit
(** Arm the reordering policy.  [bulge_factor] (default [4.0], must be
    [> 1]) is the multiple of the median per-level node count beyond
    which a level counts as a bulge ({!Obs.Dd_profile.bulge});
    [every] (default [64], must be [>= 1]) is the minimum number of
    applied gates between bulge probes (each probe walks the state DD,
    so it must not run per gate). *)

val reorder_policy : t -> reorder_policy

val reorder_now :
  ?max_growth:float -> ?max_passes:int -> t -> Dd.Reorder.stats
(** Run one sifting pass over the live state immediately, updating the
    context's order, the state edge and the reorder statistics
    counters.  Parameters as {!Dd.Reorder.sift}. *)

val set_order : t -> Dd.Order.t -> int
(** Permute the live state to an explicit target order (the [--order]
    flag) via adjacent swaps; returns the number of swaps applied.
    Counts as a reordering pass and satisfies the [Reorder_once]
    policy.  Raises {!Error.Error} ([Invalid_parameter]) when the
    order's width differs from the engine's. *)

val gate_dd : t -> Gate.t -> Dd.Mdd.edge
(** Build the matrix DD of one elementary gate on this engine's width. *)

val apply_gate : t -> Gate.t -> unit
(** One matrix-vector multiplication (the Eq. 1 step). *)

val apply_matrix : t -> Dd.Mdd.edge -> unit
(** Multiply an arbitrary (combined or directly constructed) matrix DD onto
    the state. *)

val combine : t -> Gate.t list -> Dd.Mdd.edge
(** Product of a gate sequence as one matrix DD (in application order:
    [combine e [g1; g2]] is [M_g2 x M_g1]), via matrix-matrix
    multiplications (the Eq. 2 step). *)

val combine_parallel : t -> Dd.Mdd.edge list -> Dd.Mdd.edge
(** Product of pre-built operation DDs in application order
    ([combine_parallel e [m1; m2]] is [M2 x M1]), tree-reduced over a
    fresh pool of {!domains} domains (sequential when that is 1).  The
    result is the same matrix as the sequential fold, canonical under
    the context's interning, but not bitwise-identical across domain
    counts.  A task failing in a worker raises the structured
    {!Error.Error} ([Worker_failure]); worker domains are always joined,
    never leaked or crashed. *)

val run :
  ?strategy:Strategy.t ->
  ?use_repeating:bool ->
  ?guard:Guard.t ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(gate_index:int -> unit) ->
  ?start_gate:int ->
  t ->
  Circuit.t ->
  unit
(** Simulate a circuit.  [strategy] defaults to [Sequential];
    [use_repeating] (default false) applies the DD-repeating treatment to
    [Repeat] blocks.  Raises {!Error.Error} ([Width_mismatch]) when the
    circuit's width differs from the engine's.

    [guard] (default {!Guard.none}, in which case every check below
    compiles away to nothing on the hot path):
    - [max_matrix_nodes]: a combination window whose partial product
      exceeds the budget is flushed and the window's remaining gates are
      applied sequentially (counted in {!Sim_stats.t.fallbacks}) — the run
      completes with the exact same state, just less combination.
    - [gc_high_water]: when the package's live node count exceeds the mark,
      {!Dd.Context.collect} runs automatically (counted in [auto_gcs]).
    - [max_live_nodes]: exceeding this budget triggers one last-ditch
      collection, then aborts with [Budget_exhausted Live_nodes].
    - [deadline]: wall-clock seconds from the start of [run]; exceeding it
      aborts with [Budget_exhausted Deadline].  A deadline of [0.] aborts
      before the first gate.
    - [norm_tolerance]: after each state update, if [| ||state|| - 1 |]
      exceeds the tolerance the state is renormalised (counted in
      [renormalizations]); if the norm has degenerated to zero or a
      non-finite value, aborts with [Renormalization_failed].

    [on_checkpoint] is invoked (with the number of gates whose effect is in
    the state) at window boundaries every [checkpoint_every] applied gates
    (default 1024), once more at the end of the run, and — crucially —
    immediately before any structured abort, so an interrupted run can be
    resumed from the last consistent state.  The callback should snapshot
    the engine (see {!Checkpoint.save}).

    [start_gate] (default 0) skips that many leading gates (in application
    order, as {!Circuit.flatten} orders them): the engine's state is
    assumed to already contain their effect.  Used to resume from a
    checkpoint. *)

val amplitude : t -> int -> Dd_complex.Cnum.t
val probability_one : t -> qubit:int -> float
val probabilities : t -> float array
(** Dense distribution; small engines only. *)

val state_node_count : t -> int
(** DD size of the current state — the quantity plotted in Fig. 5. *)

val measure_qubit : t -> qubit:int -> bool
(** Measure one qubit, collapse the state. *)

val measure_all : t -> int
(** Measure every qubit (collapses to a basis state); returns the index. *)

val sample : t -> int
(** Sample a basis index without collapsing. *)

val sample_shots : t -> int -> int array
(** [sample_shots e n] draws [n] basis indices without collapsing,
    fanned over {!domains} domains when that is above 1.  Outcomes are
    exactly deterministic and independent of the pool size: the engine
    RNG is consumed once per shot to derive a per-shot seed (in shot
    order), and each shot samples under its own RNG seeded from that —
    so [--domains 1] and [--domains 4] return identical arrays.  Note
    the per-shot derivation means [sample_shots e n] is not the same
    stream as [n] successive {!sample} calls.  Raises {!Error.Error}
    ([Invalid_parameter]) on negative [n], ([Worker_failure]) if a shot
    fails in a worker domain. *)

val fidelity_dense : t -> Dd_complex.Cnum.t array -> float
(** [|<dense|state>|^2] against a dense reference vector (tests). *)

val collect_garbage : t -> int * int
(** Drop every DD node not reachable from the current state from the
    package's unique tables (clearing the compute caches).  Use between
    phases of long simulations to bound memory.  Returns the numbers of
    vector and matrix nodes reclaimed. *)
