type t = {
  mutable mat_vec_mults : int;
  mutable mat_mat_mults : int;
  mutable fast_path_applies : int;
  mutable generic_applies : int;
  mutable gates_seen : int;
  mutable combined_applications : int;
  mutable peak_state_nodes : int;
  mutable peak_matrix_nodes : int;
  mutable fallbacks : int;
  mutable auto_gcs : int;
  mutable renormalizations : int;
  mutable checkpoints_written : int;
  mutable gc_pause_seconds : float;
  mutable gc_reclaimed_nodes : int;
  mutable wall_time_seconds : float;
  mutable trace_events_dropped : int;
  mutable audits_run : int;
  mutable audit_violations : int;
  mutable audit_repairs : int;
  mutable reorders_run : int;
  mutable reorder_swaps : int;
  mutable reorder_nodes_before : int;
  mutable reorder_nodes_after : int;
  mutable domains : int;
  mutable pool_batches : int;
  mutable pool_tasks : int;
  mutable pool_busy_seconds : float;
  mutable pool_idle_seconds : float;
  mutable pool_section_seconds : float;
  mutable ledger_entries : int;
}

let create () =
  {
    mat_vec_mults = 0;
    mat_mat_mults = 0;
    fast_path_applies = 0;
    generic_applies = 0;
    gates_seen = 0;
    combined_applications = 0;
    peak_state_nodes = 0;
    peak_matrix_nodes = 0;
    fallbacks = 0;
    auto_gcs = 0;
    renormalizations = 0;
    checkpoints_written = 0;
    gc_pause_seconds = 0.;
    gc_reclaimed_nodes = 0;
    wall_time_seconds = 0.;
    trace_events_dropped = 0;
    audits_run = 0;
    audit_violations = 0;
    audit_repairs = 0;
    reorders_run = 0;
    reorder_swaps = 0;
    reorder_nodes_before = 0;
    reorder_nodes_after = 0;
    domains = 1;
    pool_batches = 0;
    pool_tasks = 0;
    pool_busy_seconds = 0.;
    pool_idle_seconds = 0.;
    pool_section_seconds = 0.;
    ledger_entries = 0;
  }

let reset stats =
  stats.mat_vec_mults <- 0;
  stats.mat_mat_mults <- 0;
  stats.fast_path_applies <- 0;
  stats.generic_applies <- 0;
  stats.gates_seen <- 0;
  stats.combined_applications <- 0;
  stats.peak_state_nodes <- 0;
  stats.peak_matrix_nodes <- 0;
  stats.fallbacks <- 0;
  stats.auto_gcs <- 0;
  stats.renormalizations <- 0;
  stats.checkpoints_written <- 0;
  stats.gc_pause_seconds <- 0.;
  stats.gc_reclaimed_nodes <- 0;
  stats.wall_time_seconds <- 0.;
  stats.trace_events_dropped <- 0;
  stats.audits_run <- 0;
  stats.audit_violations <- 0;
  stats.audit_repairs <- 0;
  stats.reorders_run <- 0;
  stats.reorder_swaps <- 0;
  stats.reorder_nodes_before <- 0;
  stats.reorder_nodes_after <- 0;
  stats.domains <- 1;
  stats.pool_batches <- 0;
  stats.pool_tasks <- 0;
  stats.pool_busy_seconds <- 0.;
  stats.pool_idle_seconds <- 0.;
  stats.pool_section_seconds <- 0.;
  stats.ledger_entries <- 0

let copy stats = { stats with mat_vec_mults = stats.mat_vec_mults }

let assign dst src =
  dst.mat_vec_mults <- src.mat_vec_mults;
  dst.mat_mat_mults <- src.mat_mat_mults;
  dst.fast_path_applies <- src.fast_path_applies;
  dst.generic_applies <- src.generic_applies;
  dst.gates_seen <- src.gates_seen;
  dst.combined_applications <- src.combined_applications;
  dst.peak_state_nodes <- src.peak_state_nodes;
  dst.peak_matrix_nodes <- src.peak_matrix_nodes;
  dst.fallbacks <- src.fallbacks;
  dst.auto_gcs <- src.auto_gcs;
  dst.renormalizations <- src.renormalizations;
  dst.checkpoints_written <- src.checkpoints_written;
  dst.gc_pause_seconds <- src.gc_pause_seconds;
  dst.gc_reclaimed_nodes <- src.gc_reclaimed_nodes;
  dst.wall_time_seconds <- src.wall_time_seconds;
  dst.trace_events_dropped <- src.trace_events_dropped;
  dst.audits_run <- src.audits_run;
  dst.audit_violations <- src.audit_violations;
  dst.audit_repairs <- src.audit_repairs;
  dst.reorders_run <- src.reorders_run;
  dst.reorder_swaps <- src.reorder_swaps;
  dst.reorder_nodes_before <- src.reorder_nodes_before;
  dst.reorder_nodes_after <- src.reorder_nodes_after;
  dst.domains <- src.domains;
  dst.pool_batches <- src.pool_batches;
  dst.pool_tasks <- src.pool_tasks;
  dst.pool_busy_seconds <- src.pool_busy_seconds;
  dst.pool_idle_seconds <- src.pool_idle_seconds;
  dst.pool_section_seconds <- src.pool_section_seconds;
  dst.ledger_entries <- src.ledger_entries

let pp fmt stats =
  let fast_pct =
    let total = stats.fast_path_applies + stats.generic_applies in
    if total = 0 then 0.
    else 100. *. float_of_int stats.fast_path_applies /. float_of_int total
  in
  Format.fprintf fmt
    "gates=%d mat-vec=%d (fast-path=%d generic=%d, %.1f%% fast) mat-mat=%d \
     combined-applications=%d peak-state-nodes=%d peak-matrix-nodes=%d"
    stats.gates_seen stats.mat_vec_mults stats.fast_path_applies
    stats.generic_applies fast_pct stats.mat_mat_mults
    stats.combined_applications stats.peak_state_nodes
    stats.peak_matrix_nodes;
  if
    stats.fallbacks > 0 || stats.auto_gcs > 0
    || stats.renormalizations > 0
    || stats.checkpoints_written > 0
  then
    Format.fprintf fmt
      " fallbacks=%d auto-gcs=%d renormalizations=%d checkpoints=%d"
      stats.fallbacks stats.auto_gcs stats.renormalizations
      stats.checkpoints_written;
  if stats.auto_gcs > 0 || stats.gc_reclaimed_nodes > 0 then
    Format.fprintf fmt " gc-pause=%.3fms gc-reclaimed=%d"
      (1000. *. stats.gc_pause_seconds)
      stats.gc_reclaimed_nodes;
  if stats.wall_time_seconds > 0. then
    Format.fprintf fmt " wall=%.3fs" stats.wall_time_seconds;
  if stats.trace_events_dropped > 0 then
    Format.fprintf fmt " trace-dropped=%d" stats.trace_events_dropped;
  if stats.audits_run > 0 then
    Format.fprintf fmt " audits=%d audit-violations=%d audit-repairs=%d"
      stats.audits_run stats.audit_violations stats.audit_repairs;
  if stats.reorders_run > 0 then
    Format.fprintf fmt
      " reorders=%d reorder-swaps=%d reorder-nodes=%d->%d"
      stats.reorders_run stats.reorder_swaps stats.reorder_nodes_before
      stats.reorder_nodes_after;
  if stats.domains > 1 then Format.fprintf fmt " domains=%d" stats.domains;
  if stats.pool_batches > 0 then
    Format.fprintf fmt
      " pool-batches=%d pool-tasks=%d pool-busy=%.3fs pool-idle=%.3fs \
       pool-sections=%.3fs"
      stats.pool_batches stats.pool_tasks stats.pool_busy_seconds
      stats.pool_idle_seconds stats.pool_section_seconds;
  if stats.ledger_entries > 0 then
    Format.fprintf fmt " ledger-entries=%d" stats.ledger_entries
