(** Checkpoint / resume for simulation runs.

    A checkpoint is a plain-text snapshot of everything {!Engine.run} needs
    to continue exactly where it stopped: the state vector DD (via
    {!Dd.Serialize}), the number of gates already applied, the combination
    strategy, the measurement RNG state and the statistics counters.
    Because loading re-canonicalises the DD, a checkpoint written from one
    context can be restored into a fresh one — the normal case after the
    original process died.

    Typical wiring:
    {[
      (* producer: snapshot at every checkpoint boundary *)
      Engine.run engine circuit ~strategy
        ~guard ~checkpoint_every:256
        ~on_checkpoint:(fun ~gate_index ->
            Checkpoint.save engine ~strategy ~gate_index ~path);

      (* consumer: resume after an interruption *)
      let cp = Checkpoint.load ctx ~path in
      let start_gate = Checkpoint.restore engine cp in
      Engine.run engine circuit ~strategy:cp.strategy ~start_gate
    ]} *)

type t = {
  qubits : int;
  gate_index : int;  (** gates (application order) reflected in [state] *)
  strategy : Strategy.t;
  order : Dd.Order.t;
      (** the live level<->qubit variable order the state DD was built
          under; identity for checkpoints written before format v6 *)
  state : Dd.Vdd.edge;
  rng : Random.State.t;
  stats : Sim_stats.t;
}

val snapshot : Engine.t -> strategy:Strategy.t -> gate_index:int -> t
(** Capture the engine's current state (the RNG and stats are copied, so
    the snapshot is unaffected by further simulation). *)

val to_string : t -> string

val of_string : Dd.Context.t -> ?source:string -> string -> t
(** Parse a checkpoint, re-canonicalising the state DD into [context].
    Raises {!Error.Error} ([Invalid_checkpoint]) on any malformed input;
    [source] names the origin in the error (default ["<string>"]). *)

val save : Engine.t -> strategy:Strategy.t -> gate_index:int -> path:string -> unit
(** {!snapshot} then write to [path] crash-safely (write-to-temp, fsync,
    atomic rename — {!Obs.Safe_io}), rotating the previous generation to
    [path ^ ".prev"] first.  A crash during saving never corrupts an
    existing checkpoint, and a latest file corrupted at rest still
    leaves the previous generation as a resume point. *)

val load : Dd.Context.t -> path:string -> t
(** Read and parse [path].  Raises {!Error.Error} ([Invalid_checkpoint]) —
    also for I/O failures.  The [checksum] trailer is verified when
    present (mandatory from format version 5 on). *)

type generation = Current | Previous

val load_latest : Dd.Context.t -> path:string -> t * generation
(** [load path]; if that fails with [Invalid_checkpoint], fall back to
    the rotated [path ^ ".prev"] generation, reporting which one was
    restored.  When both generations are unreadable, raises
    [Invalid_checkpoint] naming *each* file with its own failure reason
    — not a generic fallback message. *)

val restore : Engine.t -> t -> int
(** Install the checkpoint's state, variable order, RNG and statistics
    into the engine and return its [gate_index] — the value to pass as
    [?start_gate] to {!Engine.run}.  Raises {!Error.Error}
    ([Width_mismatch]) when the checkpoint's width differs from the
    engine's. *)
