(** Instrumentation counters for a simulation run: how many matrix-vector
    and matrix-matrix multiplications were performed, (optionally) the
    peak DD sizes encountered — the quantities Section III of the paper
    reasons about — and the resilience events recorded by a guarded run
    (see {!Guard}). *)

type t = {
  mutable mat_vec_mults : int;
  mutable mat_mat_mults : int;
  mutable fast_path_applies : int;
      (** matrix-vector products served by the structured-apply kernel
          ({!Dd.Apply.apply}) — no gate DD was built *)
  mutable generic_applies : int;
      (** matrix-vector products that went through the generic
          [Mdd.apply] on an explicit matrix DD *)
  mutable gates_seen : int;
  mutable combined_applications : int;
      (** matrix-vector products whose matrix combined >= 2 gates *)
  mutable peak_state_nodes : int;
  mutable peak_matrix_nodes : int;
  mutable fallbacks : int;
      (** combination windows abandoned because the partial product
          exceeded the guard's matrix budget; the remaining gates of each
          such window were applied sequentially *)
  mutable auto_gcs : int;
      (** automatic garbage collections triggered by the guard's
          high-water mark *)
  mutable renormalizations : int;
      (** norm-drift corrections applied by the guard *)
  mutable checkpoints_written : int;
  mutable gc_pause_seconds : float;
      (** wall-clock time spent inside [Dd.Context.collect], cumulative
          over the engine's automatic and explicit collections *)
  mutable gc_reclaimed_nodes : int;
      (** vector + matrix nodes reclaimed by those collections *)
  mutable wall_time_seconds : float;
      (** wall-clock time spent inside {!Engine.run}, cumulative across
          runs on the same engine; accumulated even when a guard budget
          aborts the run *)
  mutable trace_events_dropped : int;
      (** events the attached {!Obs.Trace} discarded after its buffer
          reached [max_events]; [0] when tracing is off *)
  mutable audits_run : int;
      (** invariant-auditor passes executed ([--audit-every]); [0] when
          auditing is off *)
  mutable audit_violations : int;
      (** total invariant violations the auditor detected (before
          recovery) *)
  mutable audit_repairs : int;
      (** audit passes whose violations were fully repaired by the
          recovery ladder *)
  mutable reorders_run : int;
      (** variable-reordering (sifting or explicit-order) passes executed
          by the engine's [--reorder] policy *)
  mutable reorder_swaps : int;
      (** adjacent-level swaps applied across all reordering passes *)
  mutable reorder_nodes_before : int;
      (** cumulative state-DD node count entering reordering passes *)
  mutable reorder_nodes_after : int;
      (** cumulative state-DD node count leaving reordering passes *)
  mutable domains : int;
      (** domain-pool size the run was configured with ([--domains]);
          [1] = sequential.  Persisted in checkpoints (format v7) so a
          resumed run keeps its pool size. *)
  mutable pool_batches : int;
      (** domain-pool scatter/gather sections completed; [0] when the run
          never fanned out.  The pool-utilization family
          ([pool_batches .. pool_section_seconds]) is absorbed from
          {!Domain_pool.stats} at quiescence, is inherently
          nondeterministic (scheduling-dependent), and is {e not}
          persisted in checkpoints. *)
  mutable pool_tasks : int;
      (** tasks executed across all crew members *)
  mutable pool_busy_seconds : float;
      (** summed per-crew-member time spent running tasks *)
  mutable pool_idle_seconds : float;
      (** [section_seconds * crew - busy]: crew capacity inside pool
          sections not spent on tasks (waiting on the cursor or on
          stragglers), clamped at 0 *)
  mutable pool_section_seconds : float;
      (** wall time spent inside pool sections, scatter to gather *)
  mutable ledger_entries : int;
      (** entries committed to the attached {!Obs.Ledger} ([--ledger]);
          [0] when no ledger is attached.  Observability-only, like the
          pool family: not persisted in checkpoints. *)
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val assign : t -> t -> unit
(** [assign dst src] overwrites every counter of [dst] with [src]'s —
    used when restoring a checkpoint. *)

val pp : Format.formatter -> t -> unit
