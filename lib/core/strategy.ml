type t = Sequential | K_operations of int | Max_size of int

let to_string = function
  | Sequential -> "seq"
  | K_operations k -> Printf.sprintf "k:%d" k
  | Max_size s -> Printf.sprintf "size:%d" s

(* Degenerate parameters (k:0, size:-5, overflowing integers) are rejected
   here, at parse time, with a descriptive message — not accepted and left
   for the engine to choke on later. *)
let of_string text =
  let suffix_of prefix =
    let plen = String.length prefix in
    if String.length text > plen && String.sub text 0 plen = prefix then
      Some (String.sub text plen (String.length text - plen))
    else None
  in
  let parameter ~name ~make raw =
    match int_of_string_opt raw with
    | None ->
      Error
        (Printf.sprintf
           "%s parameter %S is not a representable integer" name raw)
    | Some v when v < 1 ->
      Error (Printf.sprintf "%s must be >= 1 (got %d)" name v)
    | Some v -> Ok (make v)
  in
  if text = "seq" || text = "sequential" then Ok Sequential
  else
    match suffix_of "k:" with
    | Some raw -> parameter ~name:"k" ~make:(fun k -> K_operations k) raw
    | None -> (
      match suffix_of "size:" with
      | Some raw -> parameter ~name:"size" ~make:(fun s -> Max_size s) raw
      | None ->
        Error
          (Printf.sprintf
             "cannot parse strategy %S (expected seq, k:N or size:N)" text))

let pp fmt strategy = Format.pp_print_string fmt (to_string strategy)

(* result-returning so this module stays below Error in the dependency
   order (Error.run_site embeds Strategy.t); Engine.run converts a
   rejection into a structured Error.Invalid_parameter *)
let check = function
  | Sequential -> Ok ()
  | K_operations k ->
    if k < 1 then Error (Printf.sprintf "k must be >= 1 (got %d)" k)
    else Ok ()
  | Max_size s ->
    if s < 1 then Error (Printf.sprintf "size must be >= 1 (got %d)" s)
    else Ok ()
