let format_magic = "ddsim-checkpoint"

(* version 2: the stats line gained gc_reclaimed_nodes and
   gc_pause_seconds (the latter as a lossless hex float);
   version 3: the stats line gained fast_path_applies and
   generic_applies (the structured-apply dispatch counters);
   version 4: the stats line gained trace_events_dropped and
   wall_time_seconds (hex float);
   version 5: the stats line gained the auditor counters (audits_run,
   audit_violations, audit_repairs) and the file gained a mandatory
   [checksum <hex>] trailer line (FNV-1a over everything before it);
   version 6: the file gained an [order <spec>] line (the live
   level<->qubit variable order, [Dd.Order.to_string] syntax) between
   the strategy and rng lines, and the stats line gained the four
   reordering counters (reorders_run, reorder_swaps,
   reorder_nodes_before, reorder_nodes_after);
   version 7: the stats line gained domains (the [--domains] pool size,
   so a resumed run keeps its parallelism).
   Readers accept 2 through 7: fields a version did not carry restore
   as zero (domains as 1, the order as identity), and the trailer is
   verified when present (required from version 5 on). *)
let format_version = 7

let oldest_readable_version = 2

type t = {
  qubits : int;
  gate_index : int;
  strategy : Strategy.t;
  order : Dd.Order.t;
  state : Dd.Vdd.edge;
  rng : Random.State.t;
  stats : Sim_stats.t;
}

let snapshot engine ~strategy ~gate_index =
  {
    qubits = Engine.qubits engine;
    gate_index;
    strategy;
    order = Dd.Context.order (Engine.context engine);
    state = Engine.state engine;
    rng = Random.State.copy (Engine.rng engine);
    stats = Sim_stats.copy (Engine.stats engine);
  }

(* The RNG state has no stable textual form of its own; Marshal gives a
   byte-exact snapshot, hex keeps the checkpoint file plain text. *)
let hex_encode bytes =
  let buffer = Buffer.create (2 * String.length bytes) in
  String.iter
    (fun c -> Buffer.add_string buffer (Printf.sprintf "%02x" (Char.code c)))
    bytes;
  Buffer.contents buffer

let invalid ~source message =
  Error.raise_error (Error.Invalid_checkpoint { source; message })

let hex_decode ~source text =
  let n = String.length text in
  if n mod 2 <> 0 then invalid ~source "odd-length hex field";
  String.init (n / 2) (fun i ->
      match int_of_string_opt ("0x" ^ String.sub text (2 * i) 2) with
      | Some code -> Char.chr code
      | None -> invalid ~source "malformed hex field")

let to_string checkpoint =
  let stats = checkpoint.stats in
  let body =
    String.concat "\n"
      [
        Printf.sprintf "%s %d" format_magic format_version;
        Printf.sprintf "qubits %d" checkpoint.qubits;
        Printf.sprintf "gate_index %d" checkpoint.gate_index;
        Printf.sprintf "strategy %s" (Strategy.to_string checkpoint.strategy);
        Printf.sprintf "order %s" (Dd.Order.to_string checkpoint.order);
        Printf.sprintf "rng %s"
          (hex_encode (Marshal.to_string checkpoint.rng []));
        Printf.sprintf
          "stats %d %d %d %d %d %d %d %d %d %d %d %d %d %h %d %h %d %d %d %d \
           %d %d %d %d"
          stats.Sim_stats.mat_vec_mults stats.Sim_stats.mat_mat_mults
          stats.Sim_stats.gates_seen stats.Sim_stats.combined_applications
          stats.Sim_stats.peak_state_nodes stats.Sim_stats.peak_matrix_nodes
          stats.Sim_stats.fallbacks stats.Sim_stats.auto_gcs
          stats.Sim_stats.renormalizations stats.Sim_stats.checkpoints_written
          stats.Sim_stats.fast_path_applies stats.Sim_stats.generic_applies
          stats.Sim_stats.gc_reclaimed_nodes stats.Sim_stats.gc_pause_seconds
          stats.Sim_stats.trace_events_dropped
          stats.Sim_stats.wall_time_seconds stats.Sim_stats.audits_run
          stats.Sim_stats.audit_violations stats.Sim_stats.audit_repairs
          stats.Sim_stats.reorders_run stats.Sim_stats.reorder_swaps
          stats.Sim_stats.reorder_nodes_before
          stats.Sim_stats.reorder_nodes_after stats.Sim_stats.domains;
        "state";
        Dd.Serialize.vector_to_string checkpoint.state;
      ]
  in
  (* body ends with a newline (the serialized DD's); the trailer covers
     every byte before itself, so truncation or garbling anywhere in the
     file is detectable *)
  body ^ "checksum " ^ Obs.Safe_io.checksum body ^ "\n"

let of_string context ?(source = "<string>") text =
  let body, trailer = Obs.Safe_io.split_text_trailer text in
  (match trailer with
  | Some expected when Obs.Safe_io.checksum body <> expected ->
    invalid ~source "checksum mismatch (file truncated or corrupted)"
  | _ -> ());
  let lines = String.split_on_char '\n' body in
  let field ~name line =
    let prefix = name ^ " " in
    let plen = String.length prefix in
    if String.length line > plen && String.sub line 0 plen = prefix then
      String.sub line plen (String.length line - plen)
    else
      invalid ~source
        (Printf.sprintf "expected %S line, got %S" name line)
  in
  let int_field ~name line =
    let raw = field ~name line in
    match int_of_string_opt raw with
    | Some v -> v
    | None ->
      invalid ~source (Printf.sprintf "%s is not an integer: %S" name raw)
  in
  match lines with
  | header :: qubits :: gate_index :: strategy :: rest ->
    let version =
      let ok v =
        v >= oldest_readable_version && v <= format_version
      in
      match String.split_on_char ' ' header with
      | [ magic; v ] when magic = format_magic -> (
        match int_of_string_opt v with
        | Some v when ok v -> v
        | _ -> invalid ~source (Printf.sprintf "bad header %S" header))
      | _ -> invalid ~source (Printf.sprintf "bad header %S" header)
    in
    if version >= 5 && trailer = None then
      invalid ~source "missing checksum trailer";
    (* the order line joined in v6; earlier versions could only have run
       under the identity order *)
    let order, rest =
      if version >= 6 then
        match rest with
        | order_line :: rest -> (
          let raw = field ~name:"order" order_line in
          match Dd.Order.of_string raw with
          | order -> (order, rest)
          | exception Invalid_argument message -> invalid ~source message)
        | [] -> invalid ~source "truncated checkpoint"
      else (Dd.Order.identity, rest)
    in
    let rng, stats, marker, state_lines =
      match rest with
      | rng :: stats :: marker :: state_lines ->
        (rng, stats, marker, state_lines)
      | _ -> invalid ~source "truncated checkpoint"
    in
    let qubits = int_field ~name:"qubits" qubits in
    if qubits < 1 then invalid ~source "qubits must be >= 1";
    let gate_index = int_field ~name:"gate_index" gate_index in
    if gate_index < 0 then invalid ~source "gate_index must be >= 0";
    let strategy =
      match Strategy.of_string (field ~name:"strategy" strategy) with
      | Ok s -> s
      | Error message -> invalid ~source message
    in
    let rng =
      let bytes = hex_decode ~source (field ~name:"rng" rng) in
      try (Marshal.from_string bytes 0 : Random.State.t)
      with Failure message ->
        invalid ~source (Printf.sprintf "bad rng snapshot: %s" message)
    in
    let stats_record = Sim_stats.create () in
    let stats_int raw =
      match int_of_string_opt raw with
      | Some v -> v
      | None ->
        invalid ~source
          (Printf.sprintf "stats field is not an integer: %S" raw)
    in
    let stats_float raw =
      match float_of_string_opt raw with
      | Some v -> v
      | None ->
        invalid ~source (Printf.sprintf "stats field is not a float: %S" raw)
    in
    let common mv mm gs ca ps pm fb gc rn cw fp ga gr gp =
      stats_record.Sim_stats.mat_vec_mults <- stats_int mv;
      stats_record.Sim_stats.mat_mat_mults <- stats_int mm;
      stats_record.Sim_stats.gates_seen <- stats_int gs;
      stats_record.Sim_stats.combined_applications <- stats_int ca;
      stats_record.Sim_stats.peak_state_nodes <- stats_int ps;
      stats_record.Sim_stats.peak_matrix_nodes <- stats_int pm;
      stats_record.Sim_stats.fallbacks <- stats_int fb;
      stats_record.Sim_stats.auto_gcs <- stats_int gc;
      stats_record.Sim_stats.renormalizations <- stats_int rn;
      stats_record.Sim_stats.checkpoints_written <- stats_int cw;
      stats_record.Sim_stats.fast_path_applies <- stats_int fp;
      stats_record.Sim_stats.generic_applies <- stats_int ga;
      stats_record.Sim_stats.gc_reclaimed_nodes <- stats_int gr;
      stats_record.Sim_stats.gc_pause_seconds <- stats_float gp
    in
    (match
       (version, field ~name:"stats" stats |> String.split_on_char ' ')
     with
    | 2, [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; gr; gp ] ->
      (* v2 predates the dispatch counters; zero-fill them *)
      common mv mm gs ca ps pm fb gc rn cw "0" "0" gr gp
    | 3, [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; fp; ga; gr; gp ] ->
      common mv mm gs ca ps pm fb gc rn cw fp ga gr gp
    | 4, [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; fp; ga; gr; gp; td; wt ]
      ->
      common mv mm gs ca ps pm fb gc rn cw fp ga gr gp;
      stats_record.Sim_stats.trace_events_dropped <- stats_int td;
      stats_record.Sim_stats.wall_time_seconds <- stats_float wt
    | ( 5,
        [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; fp; ga; gr; gp; td; wt;
          au; av; ar ] ) ->
      common mv mm gs ca ps pm fb gc rn cw fp ga gr gp;
      stats_record.Sim_stats.trace_events_dropped <- stats_int td;
      stats_record.Sim_stats.wall_time_seconds <- stats_float wt;
      stats_record.Sim_stats.audits_run <- stats_int au;
      stats_record.Sim_stats.audit_violations <- stats_int av;
      stats_record.Sim_stats.audit_repairs <- stats_int ar
    | ( 6,
        [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; fp; ga; gr; gp; td; wt;
          au; av; ar; rr; rs; rb; ra ] ) ->
      common mv mm gs ca ps pm fb gc rn cw fp ga gr gp;
      stats_record.Sim_stats.trace_events_dropped <- stats_int td;
      stats_record.Sim_stats.wall_time_seconds <- stats_float wt;
      stats_record.Sim_stats.audits_run <- stats_int au;
      stats_record.Sim_stats.audit_violations <- stats_int av;
      stats_record.Sim_stats.audit_repairs <- stats_int ar;
      stats_record.Sim_stats.reorders_run <- stats_int rr;
      stats_record.Sim_stats.reorder_swaps <- stats_int rs;
      stats_record.Sim_stats.reorder_nodes_before <- stats_int rb;
      stats_record.Sim_stats.reorder_nodes_after <- stats_int ra
      (* v6 predates the domains field; Sim_stats.create defaults it to 1 *)
    | ( 7,
        [ mv; mm; gs; ca; ps; pm; fb; gc; rn; cw; fp; ga; gr; gp; td; wt;
          au; av; ar; rr; rs; rb; ra; dm ] ) ->
      common mv mm gs ca ps pm fb gc rn cw fp ga gr gp;
      stats_record.Sim_stats.trace_events_dropped <- stats_int td;
      stats_record.Sim_stats.wall_time_seconds <- stats_float wt;
      stats_record.Sim_stats.audits_run <- stats_int au;
      stats_record.Sim_stats.audit_violations <- stats_int av;
      stats_record.Sim_stats.audit_repairs <- stats_int ar;
      stats_record.Sim_stats.reorders_run <- stats_int rr;
      stats_record.Sim_stats.reorder_swaps <- stats_int rs;
      stats_record.Sim_stats.reorder_nodes_before <- stats_int rb;
      stats_record.Sim_stats.reorder_nodes_after <- stats_int ra;
      stats_record.Sim_stats.domains <- stats_int dm;
      if stats_record.Sim_stats.domains < 1 then
        invalid ~source "domains must be >= 1"
    | 2, _ -> invalid ~source "stats line must carry exactly 12 fields"
    | 3, _ -> invalid ~source "stats line must carry exactly 14 fields"
    | 4, _ -> invalid ~source "stats line must carry exactly 16 fields"
    | 5, _ -> invalid ~source "stats line must carry exactly 19 fields"
    | 6, _ -> invalid ~source "stats line must carry exactly 23 fields"
    | _, _ -> invalid ~source "stats line must carry exactly 24 fields");
    if marker <> "state" then
      invalid ~source (Printf.sprintf "expected \"state\" marker, got %S" marker);
    let state =
      let body = String.concat "\n" state_lines in
      try Dd.Serialize.vector_of_string context body with
      | Dd.Dd_error.Error e ->
        invalid ~source (Dd.Dd_error.to_string e)
      | Failure message -> invalid ~source message
    in
    if Dd.Types.v_height state <> qubits then
      invalid ~source
        (Printf.sprintf "state has height %d, expected %d qubits"
           (Dd.Types.v_height state) qubits);
    if not (Dd.Order.is_identity order) && Dd.Order.size order <> qubits
    then
      invalid ~source
        (Printf.sprintf "order covers %d levels, expected %d qubits"
           (Dd.Order.size order) qubits);
    { qubits; gate_index; strategy; order; state; rng; stats = stats_record }
  | _ -> invalid ~source "truncated checkpoint"

let save engine ~strategy ~gate_index ~path =
  let checkpoint = snapshot engine ~strategy ~gate_index in
  (* rotate the last good generation to PATH.prev before the atomic
     write, so even a latest file corrupted at rest (bad disk, stray
     write) leaves a resume point *)
  if Sys.file_exists path then begin
    try Sys.rename path (path ^ ".prev") with Sys_error _ -> ()
  end;
  Obs.Safe_io.write_file path (to_string checkpoint)

let load context ~path =
  let text =
    try Dd.Serialize.read_file path
    with Sys_error message -> invalid ~source:path message
  in
  of_string context ~source:path text

type generation = Current | Previous

let load_latest context ~path =
  match load context ~path with
  | checkpoint -> (checkpoint, Current)
  | exception
      Error.Error
        (Error.Invalid_checkpoint { message = current_message; _ }) -> (
    match load context ~path:(path ^ ".prev") with
    | checkpoint -> (checkpoint, Previous)
    | exception
        Error.Error
          (Error.Invalid_checkpoint { message = previous_message; _ }) ->
      (* both generations failed: report each file with its own reason,
         not just the first failure — the user needs to know the rotated
         generation was tried and why it was rejected too *)
      invalid ~source:path
        (Printf.sprintf
           "no loadable generation: %s (and fallback %s.prev: %s)"
           current_message path previous_message))

let restore engine checkpoint =
  if checkpoint.qubits <> Engine.qubits engine then
    Error.raise_error
      (Error.Width_mismatch
         {
           what = "Checkpoint.restore";
           expected = Engine.qubits engine;
           actual = checkpoint.qubits;
         });
  Dd.Context.set_order (Engine.context engine) checkpoint.order;
  Engine.set_state engine checkpoint.state;
  Engine.set_rng engine (Random.State.copy checkpoint.rng);
  Sim_stats.assign (Engine.stats engine) checkpoint.stats;
  checkpoint.gate_index
