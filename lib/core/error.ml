type budget_kind = Live_nodes | Matrix_nodes | Deadline

type run_site = {
  gate_index : int;
  strategy : Strategy.t;
  state_nodes : int;
  matrix_nodes : int;
}

type t =
  | Budget_exhausted of {
      kind : budget_kind;
      limit : float;
      actual : float;
      site : run_site;
    }
  | Renormalization_failed of { norm2 : float; site : run_site }
  | Invalid_checkpoint of { source : string; message : string }
  | Width_mismatch of { what : string; expected : int; actual : int }
  | Invalid_parameter of { what : string; message : string }
  | Audit_failure of { violations : string list; site : run_site }
  | Worker_failure of { task : string; message : string }

exception Error of t

let budget_kind_to_string = function
  | Live_nodes -> "live-node budget"
  | Matrix_nodes -> "matrix-node budget"
  | Deadline -> "deadline"

let site_to_string site =
  Printf.sprintf
    "at gate %d (strategy %s, state %d nodes, pending matrix %d nodes)"
    site.gate_index
    (Strategy.to_string site.strategy)
    site.state_nodes site.matrix_nodes

let to_string = function
  | Budget_exhausted { kind; limit; actual; site } ->
    Printf.sprintf "%s exhausted: %g > %g %s"
      (budget_kind_to_string kind)
      actual limit (site_to_string site)
  | Renormalization_failed { norm2; site } ->
    Printf.sprintf "renormalization failed: squared norm %g %s" norm2
      (site_to_string site)
  | Invalid_checkpoint { source; message } ->
    Printf.sprintf "invalid checkpoint %s: %s" source message
  | Width_mismatch { what; expected; actual } ->
    Printf.sprintf "%s: expected %d qubits, got %d" what expected actual
  | Invalid_parameter { what; message } ->
    Printf.sprintf "%s: %s" what message
  | Audit_failure { violations; site } ->
    Printf.sprintf "invariant audit failed (%d unrecovered violation%s) %s: %s"
      (List.length violations)
      (if List.length violations = 1 then "" else "s")
      (site_to_string site)
      (String.concat "; " violations)
  | Worker_failure { task; message } ->
    Printf.sprintf "worker domain failed during %s: %s" task message

let pp fmt e = Format.pp_print_string fmt (to_string e)
let raise_error e = raise (Error e)

let invalid_parameter ~what message =
  raise (Error (Invalid_parameter { what; message }))

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Dd_sim.Error.Error (%s)" (to_string e))
    | _ -> None)
