(* absolute assignment, so re-populating a registry replaces readings
   instead of accumulating them *)
let set_count registry name v =
  let c = Obs.Metrics.counter registry name in
  Obs.Metrics.add c (v - Obs.Metrics.count c)

let set_value registry name v =
  let g = Obs.Metrics.gauge registry name in
  Obs.Metrics.set g v

let populate registry engine =
  let stats = Engine.stats engine in
  let ctx = Engine.context engine in
  set_count registry "sim.mat_vec_mults" stats.Sim_stats.mat_vec_mults;
  set_count registry "sim.mat_mat_mults" stats.Sim_stats.mat_mat_mults;
  set_count registry "sim.fast_path_applies" stats.Sim_stats.fast_path_applies;
  set_count registry "sim.generic_applies" stats.Sim_stats.generic_applies;
  set_count registry "sim.gates_seen" stats.Sim_stats.gates_seen;
  set_count registry "sim.combined_applications"
    stats.Sim_stats.combined_applications;
  set_count registry "sim.peak_state_nodes" stats.Sim_stats.peak_state_nodes;
  set_count registry "sim.peak_matrix_nodes" stats.Sim_stats.peak_matrix_nodes;
  set_count registry "sim.fallbacks" stats.Sim_stats.fallbacks;
  set_count registry "sim.auto_gcs" stats.Sim_stats.auto_gcs;
  set_count registry "sim.renormalizations" stats.Sim_stats.renormalizations;
  set_count registry "sim.checkpoints_written"
    stats.Sim_stats.checkpoints_written;
  set_count registry "sim.trace_events_dropped"
    stats.Sim_stats.trace_events_dropped;
  set_count registry "sim.audits_run" stats.Sim_stats.audits_run;
  set_count registry "sim.audit_violations" stats.Sim_stats.audit_violations;
  set_count registry "sim.audit_repairs" stats.Sim_stats.audit_repairs;
  set_count registry "sim.reorders_run" stats.Sim_stats.reorders_run;
  set_count registry "sim.reorder_swaps" stats.Sim_stats.reorder_swaps;
  set_count registry "sim.reorder_nodes_before"
    stats.Sim_stats.reorder_nodes_before;
  set_count registry "sim.reorder_nodes_after"
    stats.Sim_stats.reorder_nodes_after;
  set_count registry "sim.domains" stats.Sim_stats.domains;
  set_count registry "sim.ledger_entries" stats.Sim_stats.ledger_entries;
  set_value registry "sim.wall_time_seconds" stats.Sim_stats.wall_time_seconds;
  set_count registry "nodes.live_vector" (Dd.Context.live_v_nodes ctx);
  set_count registry "nodes.live_matrix" (Dd.Context.live_m_nodes ctx);
  set_count registry "nodes.created_vector" (Dd.Context.v_unique_size ctx);
  set_count registry "nodes.created_matrix" (Dd.Context.m_unique_size ctx);
  List.iter
    (fun (s : Dd.Compute_table.stats) ->
      let field suffix = Printf.sprintf "table.%s.%s" s.table suffix in
      set_count registry (field "hits") s.hits;
      set_count registry (field "misses") s.misses;
      set_count registry (field "evictions") s.evictions;
      set_count registry (field "entries") s.entries)
    (Dd.Context.table_stats ctx);
  (* rebuild-stable short-circuits of the structured-apply kernel:
     cache-equivalent wins that never probe the apply table, so the
     table.apply hit counters alone undercount its reuse *)
  set_count registry "table.apply.ident_skips" (Dd.Context.apply_skips ctx);
  (* memory gauges: OCaml heap occupancy plus the DD package's estimated
     table residency (entry counts x documented per-entry layout costs) *)
  let q = Gc.quick_stat () in
  set_count registry "mem.heap_live_words" q.Gc.live_words;
  set_count registry "mem.heap_top_words" q.Gc.top_heap_words;
  set_count registry "mem.unique_table_bytes" (Dd.Context.unique_table_bytes ctx);
  set_count registry "mem.compute_table_bytes"
    (Dd.Context.compute_table_bytes ctx);
  set_count registry "mem.residency_bytes" (Dd.Context.residency_bytes ctx);
  (* concurrency families: pool utilization from Sim_stats (absorbed at
     pool teardown) and stripe-lock contention per shared structure.
     All zero — but present — on a sequential run. *)
  set_count registry "pool.batches" stats.Sim_stats.pool_batches;
  set_count registry "pool.tasks" stats.Sim_stats.pool_tasks;
  set_value registry "pool.busy_seconds" stats.Sim_stats.pool_busy_seconds;
  set_value registry "pool.idle_seconds" stats.Sim_stats.pool_idle_seconds;
  set_value registry "pool.section_seconds"
    stats.Sim_stats.pool_section_seconds;
  List.iter
    (fun (label, (l : Dd.Compute_table.lock_stats)) ->
      let field suffix = Printf.sprintf "lock.%s.%s" label suffix in
      set_count registry (field "acquisitions") l.acquisitions;
      set_count registry (field "contended") l.contended;
      set_value registry (field "wait_seconds") l.wait_seconds)
    (Dd.Context.lock_stats ctx);
  let gc = Dd.Context.gc_stats ctx in
  set_count registry "gc.collections" gc.Dd.Context.collections;
  set_value registry "gc.pause_seconds" gc.Dd.Context.pause_total;
  set_count registry "gc.reclaimed_vector_nodes" gc.Dd.Context.v_reclaimed_total;
  set_count registry "gc.reclaimed_matrix_nodes" gc.Dd.Context.m_reclaimed_total;
  set_count registry "gc.entries_invalidated" gc.Dd.Context.entries_invalidated

let snapshot engine =
  let registry = Obs.Metrics.create () in
  populate registry engine;
  Obs.Metrics.snapshot registry
