(** Operation-combination strategies (paper Section IV-A).

    [Sequential] is the state of the art the paper improves on (Eq. 1, one
    matrix-vector multiplication per gate).  [K_operations k] multiplies
    each window of [k] gates into one matrix before touching the state
    vector; [Max_size s] grows the combined matrix until its DD exceeds [s]
    nodes.  The knowledge-based strategies (DD-repeating, DD-construct) are
    not variants of this type: DD-repeating is enabled by
    [Engine.run ~use_repeating:true], DD-construct is a different circuit
    construction (see [Quantum_algorithms.Shor]). *)

type t =
  | Sequential
  | K_operations of int  (** combine k >= 1 gates per application *)
  | Max_size of int  (** combine while the product DD has <= s nodes *)

val to_string : t -> string
(** ["seq"], ["k:16"], ["size:4096"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}.  Degenerate parameters are rejected here, at
    parse time, with a descriptive message: [k:0] and [size:-5] violate
    the [>= 1] bound, and integers that overflow the native [int] (e.g.
    [k:99999999999999999999]) are reported as unrepresentable. *)

val pp : Format.formatter -> t -> unit

val check : t -> (unit, string) result
(** [Error message] for non-positive parameters.  Result-returning (not a
    structured raise) because {!Error.run_site} embeds [Strategy.t], so
    this module sits below the error layer; [Engine.run] converts a
    rejection into [Error.Invalid_parameter]. *)
