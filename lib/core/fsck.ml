type report = {
  path : string;
  family : string;
  ok : bool;
  detail : string;
}

let pass ~path ~family detail = { path; family; ok = true; detail }
let fail ~path ~family detail = { path; family; ok = false; detail }

let to_string r =
  Printf.sprintf "%s: %s %s (%s)" r.path
    (if r.ok then "OK" else "FAIL")
    r.family r.detail

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let first_line text =
  match String.index_opt text '\n' with
  | Some i -> String.sub text 0 i
  | None -> text

let is_prefix prefix line =
  String.length line >= String.length prefix
  && String.sub line 0 (String.length prefix) = prefix

(* Parsing into a throwaway context exercises the full validation chain:
   checksum trailer, header, stats arity, DD reconstruction, height. *)
let check_checkpoint ~path text =
  let context = Dd.Context.create () in
  match Checkpoint.of_string context ~source:path text with
  | cp ->
    pass ~path ~family:"checkpoint"
      (Printf.sprintf "gate %d, %d qubits, strategy %s"
         cp.Checkpoint.gate_index cp.Checkpoint.qubits
         (Strategy.to_string cp.Checkpoint.strategy))
  | exception Error.Error e ->
    fail ~path ~family:"checkpoint" (Error.to_string e)

let no_trailer_note text =
  match Obs.Safe_io.split_jsonl_trailer text with
  | _, Some _ -> ""
  | _, None -> " (no checksum trailer)"

let check_trace ~path text =
  match Obs.Trace_report.parse_jsonl text with
  | run ->
    let events = run.Obs.Trace_report.events in
    let bad = ref None in
    let last = ref (-1) in
    List.iteri
      (fun i (e : Obs.Trace.event) ->
        if !bad = None then
          if e.dur < 0. then
            bad :=
              Some (Printf.sprintf "event %d carries a negative duration" i)
          else if e.kind = Obs.Trace.Gate_applied && e.gate_index >= 0 then
            if e.gate_index < !last then
              bad :=
                Some
                  (Printf.sprintf
                     "event %d: gate index %d goes backwards (after %d)" i
                     e.gate_index !last)
            else last := e.gate_index)
      events;
    (match !bad with
    | Some detail -> fail ~path ~family:"trace" detail
    | None ->
      pass ~path ~family:"trace"
        (Printf.sprintf "%d events, schema v%d%s" (List.length events)
           run.Obs.Trace_report.version (no_trailer_note text)))
  | exception Failure message -> fail ~path ~family:"trace" message

let check_profile ~path text =
  match Obs.Dd_profile.parse_jsonl text with
  | run ->
    let snapshots = run.Obs.Dd_profile.run_snapshots in
    let bad = ref None in
    let last = ref (-1) in
    List.iteri
      (fun i (s : Obs.Dd_profile.snapshot) ->
        if !bad = None then
          if s.Obs.Dd_profile.gate_index < !last then
            bad :=
              Some
                (Printf.sprintf
                   "snapshot %d: gate index %d goes backwards (after %d)" i
                   s.Obs.Dd_profile.gate_index !last)
          else last := s.Obs.Dd_profile.gate_index)
      snapshots;
    (match !bad with
    | Some detail -> fail ~path ~family:"profile" detail
    | None ->
      pass ~path ~family:"profile"
        (Printf.sprintf "%d snapshots%s" (List.length snapshots)
           (no_trailer_note text)))
  | exception Failure message -> fail ~path ~family:"profile" message

let check_ledger ~path text =
  match Obs.Ledger.parse_jsonl text with
  | run ->
    let entries = run.Obs.Ledger.run_entries in
    let bad = ref None in
    let last_start = ref min_int in
    List.iteri
      (fun i (e : Obs.Ledger.entry) ->
        if !bad = None then
          if e.Obs.Ledger.gate_end < e.Obs.Ledger.gate_start then
            bad :=
              Some
                (Printf.sprintf "entry %d: gate range [%d,%d) is inverted" i
                   e.Obs.Ledger.gate_start e.Obs.Ledger.gate_end)
          else if e.Obs.Ledger.build_seconds < 0. || e.Obs.Ledger.apply_seconds < 0.
          then
            bad := Some (Printf.sprintf "entry %d carries a negative duration" i)
          else if e.Obs.Ledger.gate_start < !last_start then
            bad :=
              Some
                (Printf.sprintf
                   "entry %d: gate start %d goes backwards (after %d)" i
                   e.Obs.Ledger.gate_start !last_start)
          else last_start := e.Obs.Ledger.gate_start)
      entries;
    (match !bad with
    | Some detail -> fail ~path ~family:"ledger" detail
    | None ->
      pass ~path ~family:"ledger"
        (Printf.sprintf "%d entries%s" (List.length entries)
           (no_trailer_note text)))
  | exception Failure message -> fail ~path ~family:"ledger" message

let check_file ~path =
  match read_file path with
  | exception Sys_error message -> fail ~path ~family:"unknown" message
  | text ->
    let line = first_line text in
    if is_prefix "ddsim-checkpoint " line then check_checkpoint ~path text
    else if is_prefix "{" line then begin
      match Obs.Json.parse line with
      | exception Failure _ ->
        fail ~path ~family:"unknown" "unparseable header line"
      | header -> (
        match Obs.Json.member header "schema" with
        | Some (Obs.Json.Str "ddsim-trace") -> check_trace ~path text
        | Some (Obs.Json.Str "ddsim-profile") -> check_profile ~path text
        | Some (Obs.Json.Str "ddsim-ledger") -> check_ledger ~path text
        | Some (Obs.Json.Str s) ->
          fail ~path ~family:"unknown"
            (Printf.sprintf "unrecognised schema %S" s)
        | _ -> fail ~path ~family:"unknown" "header line has no schema field")
    end
    else fail ~path ~family:"unknown" "unrecognised artifact format"
