(** The unified error layer of the simulation engine.

    Replaces the ad-hoc [failwith]/[Invalid_argument] raises on the
    engine's hot paths with one structured exception carrying enough
    context to act on a failure: which budget was breached, at which gate
    index, under which strategy, and how large the DDs were at that
    moment.  Callers can pattern-match to decide between resuming from a
    checkpoint, retrying with a different strategy, or surfacing the
    error. *)

type budget_kind =
  | Live_nodes  (** the {!Guard.t.max_live_nodes} memory budget *)
  | Matrix_nodes  (** the {!Guard.t.max_matrix_nodes} budget *)
  | Deadline  (** the {!Guard.t.deadline} wall-clock budget *)

type run_site = {
  gate_index : int;
      (** number of gates whose effect is in the state when the error was
          raised — also the resume point of the last usable checkpoint *)
  strategy : Strategy.t;
  state_nodes : int;  (** DD size of the state at the failure site *)
  matrix_nodes : int;
      (** DD size of the pending combined matrix, [0] when none *)
}

type t =
  | Budget_exhausted of {
      kind : budget_kind;
      limit : float;
      actual : float;
      site : run_site;
    }  (** A {!Guard.t} budget was breached and no fallback applied. *)
  | Renormalization_failed of { norm2 : float; site : run_site }
      (** The state norm drifted beyond tolerance and could not be
          renormalised (zero or non-finite squared norm). *)
  | Invalid_checkpoint of { source : string; message : string }
      (** A checkpoint file could not be parsed or does not match the
          engine it is being restored into. *)
  | Width_mismatch of { what : string; expected : int; actual : int }
      (** A circuit or state of the wrong qubit count was given to an
          engine. *)
  | Invalid_parameter of { what : string; message : string }
      (** A run-configuration value (qubit count, strategy parameter,
          checkpoint interval, resume point) is out of its domain.  These
          arrive from user input — CLI flags, config — so they are
          structured errors rather than assertions. *)
  | Audit_failure of { violations : string list; site : run_site }
      (** The invariant auditor ({!Dd.Audit}, [--audit-every]) found
          violations that survived the full recovery ladder
          (cache flush, canonical rebuild, renormalisation).  Each
          violation string names its fault site; the run state cannot be
          trusted past [site.gate_index] — resume from the last good
          checkpoint. *)
  | Worker_failure of { task : string; message : string }
      (** A task running on a pool worker domain raised.  The pool
          captures the exception (the domain itself survives and is
          joined normally); the engine re-raises it as this structured
          error naming the parallel section ([task]) and the printed
          original exception ([message]). *)

exception Error of t

val budget_kind_to_string : budget_kind -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val raise_error : t -> 'a
(** [raise_error e] raises {!Error}. *)

val invalid_parameter : what:string -> string -> 'a
(** [invalid_parameter ~what message] raises {!Error} with
    [Invalid_parameter]. *)
