(* ddsim — command-line front end for the DD-based quantum-circuit
   simulator.

     ddsim run --algo grover --qubits 10 --strategy size:256
     ddsim run --algo shor --modulus 21 --construct
     ddsim simulate circuit.qasm --strategy k:16 --samples 10
     ddsim export --algo ghz --qubits 4
     ddsim dot --algo ghz --qubits 3 -o state.dot *)

open Cmdliner

let strategy_conv =
  let parse text =
    match Dd_sim.Strategy.of_string text with
    | Ok strategy -> Ok strategy
    | Error message -> Error (`Msg message)
  in
  Arg.conv (parse, Dd_sim.Strategy.pp)

let strategy_arg =
  let doc =
    "Combination strategy: $(b,seq), $(b,k:N) (combine N gates) or \
     $(b,size:N) (combine until the product DD exceeds N nodes)."
  in
  Arg.(
    value
    & opt strategy_conv Dd_sim.Strategy.Sequential
    & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let repeating_arg =
  let doc = "Apply the DD-repeating treatment to repeated blocks." in
  Arg.(value & flag & info [ "repeating" ] ~doc)

let seed_arg =
  Arg.(
    value & opt int 0xDD
    & info [ "seed" ] ~docv:"SEED" ~doc:"Measurement RNG seed.")

let samples_arg =
  Arg.(
    value & opt int 0
    & info [ "samples" ] ~docv:"N" ~doc:"Print N measurement samples.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print simulation statistics.")

(* tracing and metrics, shared by run / simulate *)

let trace_arg =
  let doc =
    "Record a per-operation event timeline (gate applications, \
     matrix-vector and matrix-matrix multiplications, GC pauses, \
     fallbacks, checkpoints) and write it to $(docv); see --trace-format."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_format_arg =
  let doc =
    "Trace file format: $(b,jsonl) (stable line-oriented schema, consumed \
     by $(b,ddsim report)) or $(b,chrome) (Chrome trace-event JSON, \
     loadable in Perfetto / chrome://tracing)."
  in
  Arg.(
    value
    & opt (Arg.enum [ ("jsonl", `Jsonl); ("chrome", `Chrome) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT" ~doc)

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the unified metrics snapshot after the run.")

let attach_trace engine = function
  | None -> None
  | Some path ->
    let trace = Obs.Trace.create () in
    Dd_sim.Engine.set_trace engine trace;
    Some (path, trace)

let export_trace ~format ~meta = function
  | None -> ()
  | Some (path, trace) ->
    let contents =
      match format with
      | `Jsonl -> Obs.Trace_export.jsonl ~meta trace
      | `Chrome -> Obs.Trace_export.chrome ~meta trace
    in
    Obs.Trace_export.write_file path contents;
    Printf.printf "wrote trace %s (%d events, %d dropped)\n" path
      (Obs.Trace.length trace) (Obs.Trace.dropped trace)

let print_metrics engine =
  Format.printf "metrics:@.%a@?" Obs.Metrics.pp
    (Dd_sim.Telemetry.snapshot engine)

let stats_json_arg =
  let doc =
    "Write the unified metrics snapshot (counters, gauges, log2 \
     histograms) to $(docv) as one JSON object after the run."
  in
  Arg.(
    value & opt (some string) None
    & info [ "stats-json" ] ~docv:"FILE" ~doc)

let write_stats_json engine = function
  | None -> ()
  | Some path ->
    Obs.Safe_io.write_file path
      (Obs.Metrics.to_json (Dd_sim.Telemetry.snapshot engine) ^ "\n");
    Printf.printf "wrote metrics %s\n" path

(* structural DD profiling, shared by run / simulate *)

let profile_arg =
  let doc =
    "Snapshot the state DD's structure (per-level node/edge counts, \
     weight-magnitude histograms, sharing, identity fraction) during the \
     run and write a JSONL profile sidecar to $(docv); see \
     --profile-every and $(b,ddsim diff)."
  in
  Arg.(value & opt (some string) None & info [ "profile" ] ~docv:"FILE" ~doc)

let profile_every_arg =
  let doc =
    "Snapshot cadence for --profile: profile the state every $(docv) \
     applied gates (plus once at the end of the run)."
  in
  Arg.(value & opt int 1 & info [ "profile-every" ] ~docv:"K" ~doc)

let attach_profile engine ~every = function
  | None -> None
  | Some path ->
    let sink = Obs.Dd_profile.create ~every () in
    Dd_sim.Engine.set_profile engine sink;
    Some (path, sink)

let export_profile ~meta = function
  | None -> ()
  | Some (path, sink) ->
    Obs.Trace_export.write_file path (Obs.Dd_profile.jsonl ~meta sink);
    Printf.printf "wrote profile %s (%d snapshots, %d dropped)\n" path
      (Obs.Dd_profile.length sink)
      (Obs.Dd_profile.dropped sink)

(* strategy cost ledger, shared by run / simulate *)

let ledger_arg =
  let doc =
    "Record a per-window strategy cost ledger — mat-vec vs mat-mat \
     attribution with build/apply seconds, compute-table traffic, node \
     bulges and memory gauges — and write it to $(docv) as JSONL; read \
     it back with $(b,ddsim explain) and compare runs with \
     $(b,ddsim diff)."
  in
  Arg.(value & opt (some string) None & info [ "ledger" ] ~docv:"FILE" ~doc)

let attach_ledger engine = function
  | None -> None
  | Some path ->
    let sink = Obs.Ledger.create () in
    Dd_sim.Engine.set_ledger engine sink;
    Some (path, sink)

let export_ledger engine ~meta = function
  | None -> ()
  | Some (path, sink) ->
    (* the wall clock rides along so [ddsim explain] can report how much
       of the run the attributed spans actually cover *)
    let meta =
      meta
      @ [
          ( "wall_seconds",
            Printf.sprintf "%.6f"
              (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.wall_time_seconds
          );
        ]
    in
    Obs.Trace_export.write_file path (Obs.Ledger.jsonl ~meta sink);
    Printf.printf "wrote ledger %s (%d entries, %d dropped)\n" path
      (Obs.Ledger.length sink) (Obs.Ledger.dropped sink)

let no_fused_apply_arg =
  let doc =
    "Disable the structured-apply fast path: every gate is materialised \
     as an explicit n-qubit gate DD and applied with the generic \
     matrix-vector kernel (A/B measurement and debugging)."
  in
  Arg.(value & flag & info [ "no-fused-apply" ] ~doc)

let domains_arg =
  let doc =
    "Domain-pool size for the parallel kernel: k-operations window \
     products are tree-reduced over $(docv) domains and --samples shots \
     are drawn in parallel.  At 1 (the default) the engine takes the \
     sequential code paths and results are bitwise identical to the \
     pre-parallel kernel; above 1, final states agree within the \
     interning tolerance and sampling outcomes are exactly reproduced \
     whatever the pool size."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

(* resource budgets and checkpointing, shared by run / simulate *)

let max_nodes_arg =
  let doc =
    "Live-node budget: abort with a structured error when the DD package \
     holds more than $(docv) live nodes (one automatic garbage collection \
     is attempted first)."
  in
  Arg.(
    value & opt (some int) None
    & info [ "max-nodes" ] ~docv:"N" ~doc)

let max_matrix_arg =
  let doc =
    "Combined-matrix budget: when a combination window's partial product \
     exceeds $(docv) nodes, flush it and apply the rest of the window \
     sequentially instead of aborting (counted as fallbacks in --stats)."
  in
  Arg.(
    value & opt (some int) None
    & info [ "max-matrix" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget in seconds; exceeding it aborts with a structured \
     error (after writing a checkpoint when --checkpoint is given)."
  in
  Arg.(
    value & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let auto_gc_arg =
  let doc =
    "Collect garbage automatically whenever the package's live node count \
     exceeds $(docv)."
  in
  Arg.(
    value & opt (some int) None
    & info [ "auto-gc" ] ~docv:"N" ~doc)

let norm_tol_arg =
  let doc =
    "Renormalise the state whenever its norm drifts more than $(docv) \
     from 1; a norm that degenerates to zero aborts with a structured \
     error."
  in
  Arg.(
    value & opt (some float) None
    & info [ "norm-tol" ] ~docv:"TOL" ~doc)

let checkpoint_arg =
  let doc =
    "Write resumable checkpoints to $(docv): periodically (see \
     --checkpoint-every), at the end of the run, and immediately before \
     any budget abort.  Resume with --resume."
  in
  Arg.(
    value & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint every $(docv) applied gates (with --checkpoint)." in
  Arg.(
    value & opt int 1024
    & info [ "checkpoint-every" ] ~docv:"GATES" ~doc)

let resume_arg =
  let doc =
    "Resume from a checkpoint $(docv) written by --checkpoint: restores \
     the state vector, RNG and statistics, then skips the gates already \
     applied."
  in
  Arg.(
    value & opt (some string) None
    & info [ "resume" ] ~docv:"FILE" ~doc)

let guard_of_options max_nodes max_matrix deadline norm_tol auto_gc =
  Dd_sim.Guard.make ?max_live_nodes:max_nodes ?max_matrix_nodes:max_matrix
    ?deadline ?norm_tolerance:norm_tol ?gc_high_water:auto_gc ()

(* invariant auditing, shared by run / simulate *)

let audit_every_arg =
  let doc =
    "Run the DD invariant auditor every $(docv) applied gates: canonicity \
     of every reachable state-DD node, unique-/compute-table consistency, \
     and norm conservation (see --audit-tol), with automatic recovery \
     (cache flush, canonical rebuild, renormalisation).  Unrecoverable \
     violations abort with a structured error naming each fault.  0 \
     disables auditing (the default)."
  in
  Arg.(value & opt int 0 & info [ "audit-every" ] ~docv:"K" ~doc)

let audit_tol_arg =
  let doc =
    "Auditor norm tolerance: flag the recomputed state norm when it \
     drifts more than $(docv) from 1 (with --audit-every)."
  in
  Arg.(value & opt float 1e-6 & info [ "audit-tol" ] ~docv:"TOL" ~doc)

let arm_audit engine ~tolerance = function
  | 0 -> ()
  | every -> Dd_sim.Engine.set_audit engine ~tolerance every

(* dynamic variable reordering, shared by run / simulate / inspect *)

let reorder_arg =
  let doc =
    "Dynamic variable reordering policy: $(b,off) (never reorder, the \
     default), $(b,once) (sift at the first level bulge — or just apply \
     --order when one is given), or $(b,adaptive) (probe for level \
     bulges every --reorder-every gates and sift whenever one appears).  \
     Circuits are untouched: gates keep addressing qubits by index and \
     are retargeted through the live order."
  in
  Arg.(
    value
    & opt
        (Arg.enum [ ("off", `Off); ("once", `Once); ("adaptive", `Adaptive) ])
        `Off
    & info [ "reorder" ] ~docv:"POLICY" ~doc)

let order_arg =
  let doc =
    "Initial variable order: $(b,identity), or the qubit hosted at each \
     level from the terminal up, space- or comma-separated (e.g. \
     $(b,'2,0,1,3') puts qubit 2 at level 0).  Applied to the state \
     before the run by adjacent-level swaps."
  in
  Arg.(value & opt (some string) None & info [ "order" ] ~docv:"SPEC" ~doc)

let bulge_factor_arg =
  let doc =
    "Bulge threshold for --reorder: a level counts as bulging when it \
     holds more than $(docv) times the median per-level node count."
  in
  Arg.(value & opt float 4.0 & info [ "bulge-factor" ] ~docv:"F" ~doc)

let reorder_every_arg =
  let doc =
    "Minimum applied-gate gap between bulge probes (with --reorder; each \
     probe walks the state DD)."
  in
  Arg.(value & opt int 64 & info [ "reorder-every" ] ~docv:"K" ~doc)

let arm_reorder engine ~policy ~order ~bulge_factor ~every =
  (match policy with
  | `Off -> ()
  | `Once ->
    Dd_sim.Engine.set_reorder engine ~bulge_factor ~every
      Dd_sim.Engine.Reorder_once
  | `Adaptive ->
    Dd_sim.Engine.set_reorder engine ~bulge_factor ~every
      Dd_sim.Engine.Reorder_adaptive);
  match order with
  | None -> ()
  | Some spec ->
    ignore (Dd_sim.Engine.set_order engine (Dd.Order.of_string spec))

let reorder_to_string = function
  | `Off -> "off"
  | `Once -> "once"
  | `Adaptive -> "adaptive"

let guarded_run ?(use_repeating = false) engine circuit ~strategy ~guard
    ~checkpoint ~checkpoint_every ~resume =
  let start_gate =
    match resume with
    | None -> 0
    | Some path ->
      let loaded, generation =
        Dd_sim.Checkpoint.load_latest (Dd_sim.Engine.context engine) ~path
      in
      let start = Dd_sim.Checkpoint.restore engine loaded in
      Printf.printf "resumed from %s at gate %d%s\n" path start
        (match generation with
        | Dd_sim.Checkpoint.Current -> ""
        | Dd_sim.Checkpoint.Previous ->
          " (latest checkpoint unreadable; previous generation)");
      start
  in
  let on_checkpoint =
    Option.map
      (fun path ~gate_index ->
        Dd_sim.Checkpoint.save engine ~strategy ~gate_index ~path)
      checkpoint
  in
  Dd_sim.Engine.run ~strategy ~use_repeating ~guard ~checkpoint_every
    ?on_checkpoint ~start_gate engine circuit

(* budget aborts and bad checkpoints are expected outcomes, not crashes:
   report them on stderr with a distinct exit code *)
let with_structured_errors f =
  try f () with
  | Dd_sim.Error.Error e ->
    Printf.eprintf "ddsim: %s\n" (Dd_sim.Error.to_string e);
    exit 3
  | Dd.Dd_error.Error e ->
    Printf.eprintf "ddsim: %s\n" (Dd.Dd_error.to_string e);
    exit 2
  | Qasm.Parse_error { line; message } ->
    Printf.eprintf "ddsim: parse error at line %d: %s\n" line message;
    exit 2
  | Invalid_argument message ->
    Printf.eprintf "ddsim: %s\n" message;
    exit 2

(* circuit selection shared by run / export / dot *)

let algo_arg =
  let doc =
    "Benchmark circuit: $(b,ghz), $(b,bell), $(b,qft), $(b,bv), \
     $(b,grover), $(b,supremacy), $(b,random) or $(b,shor)."
  in
  Arg.(value & opt string "ghz" & info [ "a"; "algo" ] ~docv:"ALGO" ~doc)

let qubits_arg =
  Arg.(
    value & opt int 4 & info [ "n"; "qubits" ] ~docv:"N" ~doc:"Qubit count.")

let marked_arg =
  Arg.(
    value & opt int 1
    & info [ "marked" ] ~docv:"M" ~doc:"Grover: the marked element.")

let modulus_arg =
  Arg.(
    value & opt int 15
    & info [ "modulus" ] ~docv:"N" ~doc:"Shor: the number to factor.")

let base_arg =
  Arg.(
    value & opt (some int) None
    & info [ "base" ] ~docv:"A" ~doc:"Shor: the co-prime base a.")

let rows_arg =
  Arg.(value & opt int 4 & info [ "rows" ] ~docv:"R" ~doc:"Supremacy rows.")

let cols_arg =
  Arg.(value & opt int 4 & info [ "cols" ] ~docv:"C" ~doc:"Supremacy cols.")

let cycles_arg =
  Arg.(
    value & opt int 8 & info [ "cycles" ] ~docv:"D" ~doc:"Supremacy depth.")

let gates_arg =
  Arg.(
    value & opt int 50
    & info [ "gates" ] ~docv:"G" ~doc:"Random circuit: gate count.")

let circuit_of_options algo qubits marked rows cols cycles gates seed =
  match algo with
  | "ghz" -> Standard.ghz qubits
  | "bell" -> Standard.bell ()
  | "qft" -> Qft.circuit qubits
  | "bv" -> Standard.bernstein_vazirani ~n:qubits ~secret:marked
  | "grover" -> Grover.circuit ~n:qubits ~marked ()
  | "supremacy" -> Supremacy.circuit ~seed ~rows ~cols ~cycles ()
  | "random" -> Standard.random_circuit ~seed ~qubits ~gates ()
  | other -> failwith (Printf.sprintf "unknown algorithm %S" other)

let print_top_amplitudes engine =
  let n = Dd_sim.Engine.qubits engine in
  if n <= 16 then begin
    let probabilities = Dd_sim.Engine.probabilities engine in
    let indexed =
      Array.mapi (fun i p -> (p, i)) probabilities |> Array.to_list
    in
    let sorted = List.sort (fun (a, _) (b, _) -> compare b a) indexed in
    let top = List.filteri (fun i _ -> i < 8) sorted in
    Printf.printf "top basis states:\n";
    List.iter
      (fun (p, i) ->
        if p > 1e-9 then
          Printf.printf "  |%*d>  p = %.6f  amplitude %s\n" 6 i p
            (Dd_complex.Cnum.to_string (Dd_sim.Engine.amplitude engine i)))
      top
  end
  else
    Printf.printf "state DD has %d nodes (too wide to dump densely)\n"
      (Dd_sim.Engine.state_node_count engine)

let finish engine samples stats seconds =
  Printf.printf "simulation took %.3f s; state DD %d nodes\n" seconds
    (Dd_sim.Engine.state_node_count engine);
  print_top_amplitudes engine;
  if samples > 0 then begin
    Printf.printf "samples:";
    if Dd_sim.Engine.domains engine > 1 then
      Array.iter (Printf.printf " %d")
        (Dd_sim.Engine.sample_shots engine samples)
    else
      for _ = 1 to samples do
        Printf.printf " %d" (Dd_sim.Engine.sample engine)
      done;
    print_newline ()
  end;
  if stats then begin
    Format.printf "stats: %a@." Dd_sim.Sim_stats.pp (Dd_sim.Engine.stats engine);
    Format.printf "kernel:@.%a@." Dd.Context.pp_stats
      (Dd_sim.Engine.context engine)
  end

(* --- run ---------------------------------------------------------- *)

let run_shor modulus base strategy construct =
  let backend =
    if construct then Shor.Direct else Shor.Beauregard strategy
  in
  Printf.printf "factoring %d (%s backend, %d qubits)\n" modulus
    (if construct then "DD-construct" else "Beauregard")
    (if construct then Shor.direct_qubits modulus
     else Shor.beauregard_qubits modulus);
  let start = Unix.gettimeofday () in
  (match Shor.factor ?a:base ~backend modulus with
  | Some (p, q) -> Printf.printf "%d = %d * %d\n" modulus p q
  | None -> Printf.printf "no factors found\n");
  Printf.printf "took %.3f s\n" (Unix.gettimeofday () -. start)

let construct_arg =
  Arg.(
    value & flag
    & info [ "construct" ]
        ~doc:"Shor: use the DD-construct backend (n+1 qubits).")

let run_cmd =
  let action algo qubits marked modulus base rows cols cycles gates seed
      strategy repeating construct samples stats no_fused domains max_nodes
      max_matrix deadline norm_tol auto_gc checkpoint checkpoint_every
      resume trace trace_format metrics profile profile_every stats_json
      ledger audit_every audit_tol reorder order bulge_factor reorder_every =
    with_structured_errors @@ fun () ->
    if algo = "shor" then run_shor modulus base strategy construct
    else begin
      let circuit =
        circuit_of_options algo qubits marked rows cols cycles gates seed
      in
      Format.printf "%a@." Circuit.pp circuit;
      let engine = Dd_sim.Engine.create ~seed Circuit.(circuit.qubits) in
      if no_fused then Dd_sim.Engine.set_fused_apply engine false;
      Dd_sim.Engine.set_domains engine domains;
      arm_audit engine ~tolerance:audit_tol audit_every;
      arm_reorder engine ~policy:reorder ~order ~bulge_factor
        ~every:reorder_every;
      let traced = attach_trace engine trace in
      let profiled = attach_profile engine ~every:profile_every profile in
      let ledgered = attach_ledger engine ledger in
      let guard =
        guard_of_options max_nodes max_matrix deadline norm_tol auto_gc
      in
      let start = Obs.Clock.now () in
      guarded_run ~use_repeating:repeating engine circuit ~strategy ~guard
        ~checkpoint ~checkpoint_every ~resume;
      finish engine samples stats (Obs.Clock.now () -. start);
      let meta =
        [
          ("algo", algo);
          ("qubits", string_of_int Circuit.(circuit.qubits));
          ("strategy", Dd_sim.Strategy.to_string strategy);
          ("reorder", reorder_to_string reorder);
          ("domains", string_of_int domains);
        ]
      in
      export_trace ~format:trace_format ~meta traced;
      export_profile ~meta profiled;
      export_ledger engine ~meta ledgered;
      write_stats_json engine stats_json;
      if metrics then print_metrics engine
    end
  in
  let term =
    Term.(
      const action $ algo_arg $ qubits_arg $ marked_arg $ modulus_arg
      $ base_arg $ rows_arg $ cols_arg $ cycles_arg $ gates_arg $ seed_arg
      $ strategy_arg $ repeating_arg $ construct_arg $ samples_arg
      $ stats_arg $ no_fused_apply_arg $ domains_arg $ max_nodes_arg
      $ max_matrix_arg
      $ deadline_arg $ norm_tol_arg $ auto_gc_arg $ checkpoint_arg
      $ checkpoint_every_arg $ resume_arg $ trace_arg $ trace_format_arg
      $ metrics_arg $ profile_arg $ profile_every_arg $ stats_json_arg
      $ ledger_arg $ audit_every_arg $ audit_tol_arg $ reorder_arg
      $ order_arg $ bulge_factor_arg $ reorder_every_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate a built-in benchmark circuit.") term

(* --- simulate (qasm) ---------------------------------------------- *)

let qasm_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE.qasm" ~doc:"OpenQASM 2.0 input file.")

let detect_repeats_arg =
  Arg.(
    value & flag
    & info [ "detect-repeats" ]
        ~doc:
          "Recover repeated blocks from the gate stream and apply the \
           DD-repeating treatment to them.")

let simulate_cmd =
  let action file strategy seed samples stats no_fused domains detect
      max_nodes max_matrix deadline norm_tol auto_gc checkpoint
      checkpoint_every resume trace trace_format metrics profile
      profile_every stats_json ledger audit_every audit_tol reorder order
      bulge_factor reorder_every =
    with_structured_errors @@ fun () ->
    let source =
      let ic = open_in file in
      let length = in_channel_length ic in
      let text = really_input_string ic length in
      close_in ic;
      text
    in
    let circuit = Qasm.of_string ~name:file source in
    let circuit = if detect then Repeats.detect circuit else circuit in
    Format.printf "%a@." Circuit.pp circuit;
    let engine = Dd_sim.Engine.create ~seed Circuit.(circuit.qubits) in
    if no_fused then Dd_sim.Engine.set_fused_apply engine false;
    Dd_sim.Engine.set_domains engine domains;
    arm_audit engine ~tolerance:audit_tol audit_every;
    arm_reorder engine ~policy:reorder ~order ~bulge_factor
      ~every:reorder_every;
    let traced = attach_trace engine trace in
    let profiled = attach_profile engine ~every:profile_every profile in
    let ledgered = attach_ledger engine ledger in
    let guard =
      guard_of_options max_nodes max_matrix deadline norm_tol auto_gc
    in
    let start = Obs.Clock.now () in
    guarded_run ~use_repeating:detect engine circuit ~strategy ~guard
      ~checkpoint ~checkpoint_every ~resume;
    finish engine samples stats (Obs.Clock.now () -. start);
    let meta =
      [
        ("file", file);
        ("qubits", string_of_int Circuit.(circuit.qubits));
        ("strategy", Dd_sim.Strategy.to_string strategy);
        ("reorder", reorder_to_string reorder);
        ("domains", string_of_int domains);
      ]
    in
    export_trace ~format:trace_format ~meta traced;
    export_profile ~meta profiled;
    export_ledger engine ~meta ledgered;
    write_stats_json engine stats_json;
    if metrics then print_metrics engine
  in
  let term =
    Term.(
      const action $ qasm_file_arg $ strategy_arg $ seed_arg $ samples_arg
      $ stats_arg $ no_fused_apply_arg $ domains_arg $ detect_repeats_arg
      $ max_nodes_arg $ max_matrix_arg $ deadline_arg $ norm_tol_arg
      $ auto_gc_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ trace_arg
      $ trace_format_arg $ metrics_arg $ profile_arg $ profile_every_arg
      $ stats_json_arg $ ledger_arg $ audit_every_arg $ audit_tol_arg
      $ reorder_arg $ order_arg $ bulge_factor_arg $ reorder_every_arg)
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate an OpenQASM 2.0 file.") term

(* --- export -------------------------------------------------------- *)

let export_cmd =
  let action algo qubits marked rows cols cycles gates seed =
    let circuit =
      circuit_of_options algo qubits marked rows cols cycles gates seed
    in
    print_string (Qasm.to_string circuit)
  in
  let term =
    Term.(
      const action $ algo_arg $ qubits_arg $ marked_arg $ rows_arg $ cols_arg
      $ cycles_arg $ gates_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Print a built-in benchmark as OpenQASM 2.0.")
    term

(* --- dot ------------------------------------------------------------ *)

let output_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to FILE.")

let dot_cmd =
  let action algo qubits marked rows cols cycles gates seed output =
    let circuit =
      circuit_of_options algo qubits marked rows cols cycles gates seed
    in
    let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
    Dd_sim.Engine.run engine circuit;
    let dot =
      Dd.Dot.vector_to_dot
        ~order:(Dd.Context.order (Dd_sim.Engine.context engine))
        (Dd_sim.Engine.state engine)
    in
    match output with
    | None -> print_string dot
    | Some file ->
      Obs.Safe_io.write_file file dot;
      Printf.printf "wrote %s (%d state nodes)\n" file
        (Dd_sim.Engine.state_node_count engine)
  in
  let term =
    Term.(
      const action $ algo_arg $ qubits_arg $ marked_arg $ rows_arg $ cols_arg
      $ cycles_arg $ gates_arg $ seed_arg $ output_arg)
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Simulate a benchmark and export the final state DD as DOT.")
    term

(* --- optimize -------------------------------------------------------- *)

let read_source file =
  let ic = open_in file in
  let length = in_channel_length ic in
  let text = really_input_string ic length in
  close_in ic;
  text

let optimize_cmd =
  let action file =
    with_structured_errors @@ fun () ->
    let circuit = Qasm.of_string ~name:file (read_source file) in
    let optimized = Optimize.optimize circuit in
    Printf.eprintf "%d gates -> %d gates (verified equivalent: %b)\n"
      (Circuit.gate_count circuit)
      (Circuit.gate_count optimized)
      (Dd_sim.Equivalence.equivalent circuit optimized);
    print_string (Qasm.to_string optimized)
  in
  let term = Term.(const action $ qasm_file_arg) in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Peephole-optimise an OpenQASM file (cancellation, fusion, \
          identity removal) and print the result; equivalence is checked \
          with the DD-based verifier.")
    term

(* --- equiv ----------------------------------------------------------- *)

let second_file_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"OTHER.qasm" ~doc:"Second OpenQASM 2.0 file.")

let equiv_cmd =
  let action file_a file_b =
    with_structured_errors @@ fun () ->
    let a = Qasm.of_string ~name:file_a (read_source file_a) in
    let b = Qasm.of_string ~name:file_b (read_source file_b) in
    match Dd_sim.Equivalence.check a b with
    | Dd_sim.Equivalence.Equivalent ->
      print_endline "equivalent";
      exit 0
    | Dd_sim.Equivalence.Equivalent_up_to_phase phase ->
      Printf.printf "equivalent up to global phase %s\n"
        (Dd_complex.Cnum.to_string phase);
      exit 0
    | Dd_sim.Equivalence.Not_equivalent ->
      print_endline "NOT equivalent";
      exit 1
  in
  let term = Term.(const action $ qasm_file_arg $ second_file_arg) in
  Cmd.v
    (Cmd.info "equiv"
       ~doc:
         "Check two OpenQASM files for equivalence by building both \
          unitaries as DDs (matrix-matrix multiplication) and comparing \
          canonically.")
    term

(* --- plot ------------------------------------------------------------ *)

let figure_arg =
  Arg.(
    value & opt string "fig8"
    & info [ "figure" ] ~docv:"FIG" ~doc:"Which figure: $(b,fig8) or $(b,fig9).")

let plot_output_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE.svg" ~doc:"Write the SVG to FILE.")

let bench_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"BENCH_OUTPUT" ~doc:"Output of bench/main.exe.")

let plot_cmd =
  let action file figure output =
    let header, title, x_label =
      match figure with
      | "fig8" ->
        ("Fig. 8", "Fig. 8: k-operations speed-up over sequential", "k")
      | "fig9" ->
        ("Fig. 9", "Fig. 9: max-size speed-up over sequential", "s_max")
      | other -> failwith (Printf.sprintf "unknown figure %S" other)
    in
    let text = read_source file in
    let series = Dd_sim.Sweep_plot.parse_sweep_table ~header text in
    let svg = Dd_sim.Sweep_plot.render ~title ~x_label series in
    match output with
    | None -> print_string svg
    | Some path ->
      Obs.Safe_io.write_file path svg;
      Printf.printf "wrote %s (%d series)\n" path (List.length series)
  in
  let term =
    Term.(const action $ bench_file_arg $ figure_arg $ plot_output_arg)
  in
  Cmd.v
    (Cmd.info "plot"
       ~doc:
         "Render the Fig. 8 / Fig. 9 strategy sweeps from recorded \
          benchmark output as an SVG chart.")
    term

(* --- report ---------------------------------------------------------- *)

let trace_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl"
        ~doc:"JSONL trace written by $(b,run --trace) / $(b,simulate --trace).")

let report_cmd =
  let action file =
    let text = read_source file in
    if String.trim text = "" then
      (* a trace that never got a header is a run that recorded nothing,
         not a corrupt artifact: summarise and succeed *)
      print_string "trace report: no events (empty trace file)\n"
    else
      match Obs.Trace_report.parse_jsonl text with
      | run -> print_string (Obs.Trace_report.render run)
      | exception Failure message ->
        Printf.eprintf "ddsim: %s\n" message;
        exit 2
  in
  let term = Term.(const action $ trace_file_arg) in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Analyse a JSONL trace: per-phase time breakdown and the \
          per-gate state-DD node-count trajectory (the Fig. 3-style \
          curve), rendered for the terminal.")
    term

(* --- explain ---------------------------------------------------------- *)

let ledger_file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"LEDGER.jsonl"
        ~doc:
          "JSONL ledger written by $(b,run --ledger) / \
           $(b,simulate --ledger).")

let top_arg =
  Arg.(
    value & opt int 5
    & info [ "top" ] ~docv:"N"
        ~doc:"List the $(docv) most expensive windows (default 5).")

let explain_cmd =
  let action file top =
    match Obs.Ledger.parse_jsonl (read_source file) with
    | run -> print_string (Obs.Ledger.explain ~top run)
    | exception Failure message ->
      Printf.eprintf "ddsim: %s\n" message;
      exit 2
  in
  let term = Term.(const action $ ledger_file_arg $ top_arg) in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Analyse a strategy cost ledger: total mat-vec vs mat-mat time, \
          amortization per window size, the observed break-even k and \
          the most expensive windows with their node bulges — the \
          paper's matrix-vector vs matrix-matrix comparison measured on \
          an actual run.")
    term

(* --- diff ------------------------------------------------------------ *)

let diff_file_a_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"A.jsonl"
        ~doc:
          "First run: a JSONL trace (--trace), profile (--profile) or \
           ledger (--ledger).")

let diff_file_b_arg =
  Arg.(
    required
    & pos 1 (some file) None
    & info [] ~docv:"B.jsonl" ~doc:"Second run, same file family.")

(* both sidecar families are JSONL with a schema-carrying header line;
   peek at it to decide which parser applies *)
let sniff_schema path text =
  let first_line =
    String.split_on_char '\n' text
    |> List.find_opt (fun line -> String.trim line <> "")
  in
  match first_line with
  | None ->
    Printf.eprintf "ddsim: %s: empty file\n" path;
    exit 2
  | Some line -> (
    match Obs.Json.member (Obs.Json.parse line) "schema" with
    | Some (Obs.Json.Str s) -> s
    | Some _ | None ->
      Printf.eprintf "ddsim: %s: header line carries no \"schema\" field\n"
        path;
      exit 2
    | exception Failure message ->
      Printf.eprintf "ddsim: %s: %s\n" path message;
      exit 2)

let diff_cmd =
  let action path_a path_b =
    let text_a = read_source path_a and text_b = read_source path_b in
    let schema_a = sniff_schema path_a text_a in
    let schema_b = sniff_schema path_b text_b in
    if schema_a <> schema_b then begin
      Printf.eprintf
        "ddsim: cannot diff %S against %S (one is a %s, the other a %s)\n"
        path_a path_b schema_a schema_b;
      exit 2
    end;
    let report =
      try
        if schema_a = Obs.Trace_export.schema then
          Obs.Run_diff.render_traces ~label_a:path_a ~label_b:path_b
            (Obs.Trace_report.parse_jsonl text_a)
            (Obs.Trace_report.parse_jsonl text_b)
        else if schema_a = Obs.Dd_profile.schema then
          Obs.Run_diff.render_profiles ~label_a:path_a ~label_b:path_b
            (Obs.Dd_profile.parse_jsonl text_a)
            (Obs.Dd_profile.parse_jsonl text_b)
        else if schema_a = Obs.Ledger.schema then
          Obs.Run_diff.render_ledgers ~label_a:path_a ~label_b:path_b
            (Obs.Ledger.parse_jsonl text_a)
            (Obs.Ledger.parse_jsonl text_b)
        else begin
          Printf.eprintf "ddsim: cannot diff schema %S files\n" schema_a;
          exit 2
        end
      with Failure message ->
        Printf.eprintf "ddsim: %s\n" message;
        exit 2
    in
    print_string report
  in
  let term = Term.(const action $ diff_file_a_arg $ diff_file_b_arg) in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare two recorded runs (JSONL traces or structural profiles \
          of the same circuit): first divergence point, node-trajectory \
          overlay, per-phase time deltas, compute-table hit-rate deltas; \
          profiles additionally get a per-level breakdown at the \
          divergence.")
    term

(* --- bench-check ------------------------------------------------------ *)

let baseline_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:"Committed baseline BENCH_*.json to gate against.")

let bench_candidate_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"CANDIDATE.json"
        ~doc:"Freshly produced benchmark output, same schema.")

let time_ratio_arg =
  Arg.(
    value & opt float 10.
    & info [ "time-ratio" ] ~docv:"R"
        ~doc:"Allow candidate times up to R x baseline (faster always passes).")

let count_ratio_arg =
  Arg.(
    value & opt float 0.1
    & info [ "count-ratio" ] ~docv:"R"
        ~doc:"Allowed fractional drift of counter metrics (node counts, \
              multiplications, lookups).")

let rate_tol_arg =
  Arg.(
    value & opt float 0.15
    & info [ "rate-tol" ] ~docv:"T"
        ~doc:"Absolute tolerance for *_rate metrics.")

let bench_check_cmd =
  let action baseline candidate time_ratio count_ratio rate_tol =
    let tol = { Obs.Bench_check.time_ratio; count_ratio; rate_tol } in
    let findings =
      Obs.Bench_check.compare_strings ~tol
        ~baseline:(read_source baseline)
        (read_source candidate)
    in
    print_string (Obs.Bench_check.render findings);
    if Obs.Bench_check.regressed findings then exit 1
  in
  let term =
    Term.(
      const action $ baseline_arg $ bench_candidate_arg $ time_ratio_arg
      $ count_ratio_arg $ rate_tol_arg)
  in
  Cmd.v
    (Cmd.info "bench-check"
       ~doc:
         "Gate a fresh BENCH_*.json against a committed baseline: runs \
          are paired by identity, every numeric metric is classified \
          (time / rate / count) and compared under its tolerance; exits \
          non-zero on any regression.")
    term

(* --- fsck ------------------------------------------------------------- *)

let fsck_files_arg =
  Arg.(
    non_empty & pos_all string []
    & info [] ~docv:"FILE"
        ~doc:
          "Artifacts to validate: checkpoints (--checkpoint), JSONL \
           traces (--trace), structural profiles (--profile) and \
           strategy ledgers (--ledger).")

let fsck_cmd =
  let action files =
    let reports =
      List.map (fun path -> Dd_sim.Fsck.check_file ~path) files
    in
    List.iter (fun r -> print_endline (Dd_sim.Fsck.to_string r)) reports;
    if List.exists (fun r -> not r.Dd_sim.Fsck.ok) reports then exit 1
  in
  let term = Term.(const action $ fsck_files_arg) in
  Cmd.v
    (Cmd.info "fsck"
       ~doc:
         "Validate simulation artifacts at rest: checksum trailers, \
          schemas, full parses (checkpoints are reconstructed into a \
          throwaway DD context) and cheap semantic invariants such as \
          monotonic gate indices.  Prints one verdict line per file and \
          exits non-zero when any file fails.")
    term

(* --- inspect ---------------------------------------------------------- *)

let inspect_dot_arg =
  Arg.(
    value & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Also write an annotated DOT rendering of the final state DD \
           (weight magnitudes with log2 buckets on every edge, rank=same \
           rows per level) to $(docv).")

let inspect_cmd =
  let action algo qubits marked rows cols cycles gates seed strategy output
      reorder order bulge_factor reorder_every =
    with_structured_errors @@ fun () ->
    let circuit =
      circuit_of_options algo qubits marked rows cols cycles gates seed
    in
    let engine = Dd_sim.Engine.create ~seed Circuit.(circuit.qubits) in
    arm_reorder engine ~policy:reorder ~order ~bulge_factor
      ~every:reorder_every;
    Dd_sim.Engine.run ~strategy engine circuit;
    (* label each level with the qubit it hosts under the live order —
       under identity the two columns coincide, which is worth seeing *)
    let live_order = Dd.Context.order (Dd_sim.Engine.context engine) in
    Format.printf "%a@?" Dd.Profile.pp
      (Dd.Profile.vector ~order:live_order (Dd_sim.Engine.state engine));
    match output with
    | None -> ()
    | Some file ->
      let dot =
        Dd.Dot.vector_to_dot ~annotate:true ~order:live_order
          (Dd_sim.Engine.state engine)
      in
      Obs.Safe_io.write_file file dot;
      Printf.printf "wrote %s (annotated, %d state nodes)\n" file
        (Dd_sim.Engine.state_node_count engine)
  in
  let term =
    Term.(
      const action $ algo_arg $ qubits_arg $ marked_arg $ rows_arg $ cols_arg
      $ cycles_arg $ gates_arg $ seed_arg $ strategy_arg $ inspect_dot_arg
      $ reorder_arg $ order_arg $ bulge_factor_arg $ reorder_every_arg)
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Simulate a benchmark and print the structural profile of the \
          final state DD (per-level nodes/edges, weight-magnitude \
          histogram, sharing, identity fraction); --dot adds an annotated \
          Graphviz rendering.")
    term

let () =
  let doc = "decision-diagram based quantum-circuit simulator" in
  let info = Cmd.info "ddsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; simulate_cmd; export_cmd; dot_cmd; inspect_cmd;
            optimize_cmd; equiv_cmd; plot_cmd; report_cmd; explain_cmd;
            diff_cmd; bench_check_cmd; fsck_cmd ]))
