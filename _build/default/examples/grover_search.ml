(* Grover's database search under the paper's strategies: sequential
   (state of the art), the general combination strategies, and DD-repeating
   which combines the Grover iteration once and re-applies it.

   Run with: dune exec examples/grover_search.exe [-- n marked] *)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let () =
  let n, marked =
    match Sys.argv with
    | [| _; n; marked |] -> (int_of_string n, int_of_string marked)
    | _ -> (12, 1234)
  in
  let circuit = Grover.circuit ~n ~marked () in
  Format.printf "searching %d items for %d: %a (%d Grover iterations)@."
    (1 lsl n) marked Circuit.pp circuit (Grover.iterations n);

  let run label configure =
    let engine = Dd_sim.Engine.create n in
    let (), seconds = time (fun () -> configure engine circuit) in
    let stats = Dd_sim.Engine.stats engine in
    Format.printf
      "%-14s %8.3f s   success prob %.4f   mat-vec %6d   mat-mat %6d@."
      label seconds
      (Grover.success_probability engine ~marked)
      stats.Dd_sim.Sim_stats.mat_vec_mults
      stats.Dd_sim.Sim_stats.mat_mat_mults
  in
  run "sequential" (fun e c -> Dd_sim.Engine.run e c);
  run "k=16" (fun e c ->
      Dd_sim.Engine.run ~strategy:(Dd_sim.Strategy.K_operations 16) e c);
  run "size=1024" (fun e c ->
      Dd_sim.Engine.run ~strategy:(Dd_sim.Strategy.Max_size 1024) e c);
  run "DD-repeating" (fun e c -> Dd_sim.Engine.run ~use_repeating:true e c);

  (* and finally: actually find the item by measuring *)
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run ~use_repeating:true engine circuit;
  let found = Dd_sim.Engine.measure_all engine in
  Format.printf "measured %d (marked item was %d)@." found marked
