(* Circuit tooling built on the DD engine: peephole optimisation verified
   by DD-based equivalence checking, repeated-block detection feeding the
   DD-repeating strategy, and oracle serialisation.

   Run with: dune exec examples/circuit_tools.exe *)

let () =
  (* 1. optimise a deliberately wasteful circuit *)
  let wasteful =
    Circuit.of_gates ~qubits:3
      [
        Gate.h 0; Gate.h 0;                    (* cancels *)
        Gate.t_gate 1; Gate.s 1; Gate.tdg 1;   (* fuses *)
        Gate.rz 0. 2;                          (* identity *)
        Gate.cx 0 1; Gate.x 2; Gate.cx 0 1;    (* cancels across x 2 *)
        Gate.h 2;
      ]
  in
  let optimized = Optimize.optimize wasteful in
  Format.printf "optimiser: %d gates -> %d gates@."
    (Circuit.gate_count wasteful)
    (Circuit.gate_count optimized);
  (match Dd_sim.Equivalence.check wasteful optimized with
  | Dd_sim.Equivalence.Equivalent -> Format.printf "verified: equivalent@."
  | Dd_sim.Equivalence.Equivalent_up_to_phase phase ->
    Format.printf "verified: equivalent up to phase %a@." Dd_complex.Cnum.pp
      phase
  | Dd_sim.Equivalence.Not_equivalent ->
    Format.printf "BUG: optimiser changed the semantics!@.");

  (* 2. recover repeat structure from a flat gate stream *)
  let n = 10 and marked = 123 in
  let flat =
    Circuit.of_gates ~qubits:n
      (Circuit.flatten (Grover.circuit ~n ~marked ()))
  in
  let recovered = Repeats.detect flat in
  Format.printf "repeat detection on flattened grover_%d: %a@." n Circuit.pp
    recovered;
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run ~use_repeating:true engine recovered;
  let stats = Dd_sim.Engine.stats engine in
  Format.printf
    "DD-repeating on the recovered structure: %d mat-vec (the flat stream \
     would need %d), success probability %.4f@."
    stats.Dd_sim.Sim_stats.mat_vec_mults (Circuit.gate_count flat)
    (Grover.success_probability engine ~marked);

  (* 3. serialise a directly-constructed oracle and reload it *)
  let ctx = Dd.Context.create () in
  let oracle =
    Dd.Mdd.of_permutation ctx ~n:6 (fun x -> if x < 55 then x * 17 mod 55 else x)
  in
  let text = Dd.Serialize.matrix_to_string oracle in
  let ctx2 = Dd.Context.create () in
  let reloaded = Dd.Serialize.matrix_of_string ctx2 text in
  Format.printf
    "oracle x -> 17x mod 55 serialised to %d bytes; reloaded DD has %d \
     nodes (original %d)@."
    (String.length text)
    (Dd.Mdd.node_count reloaded)
    (Dd.Mdd.node_count oracle);

  (* 4. equivalence checking catches real differences *)
  let qft = Qft.circuit 4 in
  let broken =
    Circuit.of_gates ~qubits:4
      (Circuit.flatten qft @ [ Gate.t_gate 2 ])
  in
  Format.printf "qft vs qft-with-an-extra-t: %s@."
    (if Dd_sim.Equivalence.equivalent qft broken then "equivalent (?!)"
     else "not equivalent, as expected")
