(* Quickstart: build a small circuit, simulate it on the DD engine, inspect
   amplitudes, sample measurements, and peek at the decision diagram.

   Run with: dune exec examples/quickstart.exe *)

open Dd_complex

let () =
  (* A 3-qubit GHZ circuit: H on qubit 0, then a CX chain. *)
  let circuit =
    Circuit.of_gates ~name:"ghz3" ~qubits:3
      [ Gate.h 0; Gate.cx 0 1; Gate.cx 1 2 ]
  in
  Format.printf "circuit: %a@." Circuit.pp circuit;

  (* Simulate it. *)
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run engine circuit;

  (* Read amplitudes: GHZ = (|000> + |111>)/sqrt 2. *)
  Format.printf "amplitudes:@.";
  Array.iteri
    (fun i p ->
      if p > 1e-12 then
        Format.printf "  |%d%d%d>  amplitude %a  probability %.3f@."
          ((i lsr 2) land 1) ((i lsr 1) land 1) (i land 1)
          Cnum.pp
          (Dd_sim.Engine.amplitude engine i)
          p)
    (Dd_sim.Engine.probabilities engine);

  (* The state's decision diagram is tiny: 3 nodes for 8 amplitudes. *)
  Format.printf "state DD size: %d nodes (vs %d dense amplitudes)@."
    (Dd_sim.Engine.state_node_count engine)
    (1 lsl 3);

  (* Sample some measurements (no collapse). *)
  let counts = Hashtbl.create 4 in
  for _ = 1 to 1000 do
    let outcome = Dd_sim.Engine.sample engine in
    Hashtbl.replace counts outcome
      (1 + try Hashtbl.find counts outcome with Not_found -> 0)
  done;
  Format.printf "1000 samples:@.";
  Hashtbl.iter
    (fun k v ->
      Format.printf "  |%d%d%d>: %d@." ((k lsr 2) land 1) ((k lsr 1) land 1)
        (k land 1) v)
    counts;

  (* Export the state DD as Graphviz DOT. *)
  let dot = Dd.Dot.vector_to_dot (Dd_sim.Engine.state engine) in
  Format.printf "DOT export (%d characters); first line: %s@."
    (String.length dot)
    (List.hd (String.split_on_char '\n' dot));

  (* Strategies: the same circuit under k-operations combination. *)
  let engine2 = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run ~strategy:(Dd_sim.Strategy.K_operations 3) engine2 circuit;
  let stats = Dd_sim.Engine.stats engine2 in
  Format.printf "with k=3: %a@." Dd_sim.Sim_stats.pp stats
