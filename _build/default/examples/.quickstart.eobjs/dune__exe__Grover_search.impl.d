examples/grover_search.ml: Circuit Dd_sim Format Grover Sys Unix
