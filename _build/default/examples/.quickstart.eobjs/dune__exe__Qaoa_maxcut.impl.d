examples/qaoa_maxcut.ml: Dd_sim Format List Qaoa Sys
