examples/supremacy_strategies.ml: Circuit Dd_sim Format List Printf Supremacy Sys Unix
