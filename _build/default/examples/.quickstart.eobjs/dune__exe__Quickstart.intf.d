examples/quickstart.mli:
