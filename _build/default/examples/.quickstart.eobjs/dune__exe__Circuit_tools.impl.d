examples/circuit_tools.ml: Circuit Dd Dd_complex Dd_sim Format Gate Grover Optimize Qft Repeats String
