examples/circuit_tools.mli:
