examples/supremacy_strategies.mli:
