examples/shor_factor.ml: Dd_sim Format Ntheory Shor Sys Unix
