examples/quickstart.ml: Array Circuit Cnum Dd Dd_complex Dd_sim Format Gate Hashtbl List String
