(* Factoring with Shor's algorithm: the full Beauregard circuit (2n+3
   qubits, simulated gate by gate) versus the paper's DD-construct strategy
   (modular-exponentiation oracles built directly as permutation DDs on n+1
   qubits).

   Run with: dune exec examples/shor_factor.exe [-- N [a]] *)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let () =
  let modulus, a =
    match Sys.argv with
    | [| _; modulus |] -> (int_of_string modulus, None)
    | [| _; modulus; a |] -> (int_of_string modulus, Some (int_of_string a))
    | _ -> (15, Some 7)
  in
  Format.printf "factoring N = %d@." modulus;
  Format.printf "  Beauregard circuit needs %d qubits, DD-construct %d@."
    (Shor.beauregard_qubits modulus)
    (Shor.direct_qubits modulus);

  let report label backend =
    let result, seconds =
      time (fun () -> Shor.factor ?a ~backend modulus)
    in
    (match result with
    | Some (p, q) ->
      Format.printf "  %-24s %d = %d * %d   (%.3f s)@." label modulus p q
        seconds
    | None ->
      Format.printf "  %-24s no factors found (%.3f s)@." label seconds)
  in
  report "DD-construct (direct)" Shor.Direct;
  report "Beauregard, sequential" (Shor.Beauregard Dd_sim.Strategy.Sequential);
  report "Beauregard, max-size"
    (Shor.Beauregard (Dd_sim.Strategy.Max_size 512));

  (* one order-finding run in detail *)
  match a with
  | None -> ()
  | Some a ->
    let run = Shor.run_order_finding ~backend:Shor.Direct ~a modulus in
    Format.printf
      "order finding detail: measured phase %d/2^%d for a=%d; order %s \
       (true order %d)@."
      run.Shor.measured_phase run.Shor.phase_bits a
      (match run.Shor.order with
      | Some r -> string_of_int r
      | None -> "not recovered this run")
      (Ntheory.multiplicative_order a modulus)
