(* Quantum-supremacy-style random circuits: the workload from the paper's
   Example 3/Fig. 5 where intermediate states develop large DDs, making
   matrix-matrix combination pay off.  Prints the DD size of the state as
   the simulation progresses, then compares strategies.

   Run with: dune exec examples/supremacy_strategies.exe [-- rows cols cycles] *)

let time f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

let () =
  let rows, cols, cycles =
    match Sys.argv with
    | [| _; rows; cols; cycles |] ->
      (int_of_string rows, int_of_string cols, int_of_string cycles)
    | _ -> (4, 4, 12)
  in
  let circuit = Supremacy.circuit ~rows ~cols ~cycles () in
  Format.printf "%a@." Circuit.pp circuit;

  (* Growth of the state DD, gate by gate (every 20 gates). *)
  let n = rows * cols in
  let engine = Dd_sim.Engine.create n in
  Format.printf "state DD growth (gate index, nodes):@.";
  List.iteri
    (fun i gate ->
      Dd_sim.Engine.apply_gate engine gate;
      if i mod 20 = 19 then
        Format.printf "  %4d %6d@." (i + 1)
          (Dd_sim.Engine.state_node_count engine))
    (Circuit.flatten circuit);
  Format.printf "final state: %d nodes (dense would be %d amplitudes)@."
    (Dd_sim.Engine.state_node_count engine)
    (1 lsl n);

  (* Strategy comparison. *)
  let baseline = ref 1. in
  let run label strategy =
    let engine = Dd_sim.Engine.create n in
    let (), seconds =
      time (fun () -> Dd_sim.Engine.run ~strategy engine circuit)
    in
    let stats = Dd_sim.Engine.stats engine in
    if strategy = Dd_sim.Strategy.Sequential then baseline := seconds;
    Format.printf
      "%-12s %8.3f s   speed-up %5.2f   mat-vec %5d   mat-mat %5d@." label
      seconds (!baseline /. seconds) stats.Dd_sim.Sim_stats.mat_vec_mults
      stats.Dd_sim.Sim_stats.mat_mat_mults
  in
  run "sequential" Dd_sim.Strategy.Sequential;
  List.iter
    (fun k ->
      run (Printf.sprintf "k=%d" k) (Dd_sim.Strategy.K_operations k))
    [ 2; 4; 8; 16 ];
  List.iter
    (fun s ->
      run (Printf.sprintf "size=%d" s) (Dd_sim.Strategy.Max_size s))
    [ 64; 256; 1024 ]
