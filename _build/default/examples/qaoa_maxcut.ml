(* QAOA MaxCut: a variational workload on the DD engine.  Builds a ring
   plus chords, grid-searches one QAOA layer, reads the cut expectation
   through Pauli observables and samples candidate cuts.

   Run with: dune exec examples/qaoa_maxcut.exe [-- n] *)

let () =
  let n = match Sys.argv with [| _; n |] -> int_of_string n | _ -> 8 in
  (* ring + two chords *)
  let ring = List.init n (fun i -> (i, (i + 1) mod n)) in
  let graph = (0, n / 2) :: (1, (1 + (n / 2)) mod n) :: ring in
  Format.printf "MaxCut on %d qubits, %d edges@." n (List.length graph);
  let best_classical = Qaoa.max_cut_brute_force ~n graph in
  Format.printf "classical optimum (brute force): %d@." best_classical;

  let (gamma, beta), expectation = Qaoa.grid_search ~resolution:10 ~n graph () in
  Format.printf
    "best single-layer parameters: gamma = %.3f, beta = %.3f  ->  expected \
     cut %.3f (%.1f%% of optimum)@."
    gamma beta expectation
    (100. *. expectation /. float_of_int best_classical);

  (* two layers: reuse the layer-1 angles and refine the second *)
  let refine =
    List.init 5 (fun i ->
        let g2 = gamma *. (0.5 +. (0.25 *. float_of_int i)) in
        let b2 = beta *. (0.5 +. (0.25 *. float_of_int i)) in
        let engine = Qaoa.run ~n graph [ (gamma, beta); (g2, b2) ] in
        (Qaoa.cut_expectation engine graph, (g2, b2)))
  in
  let best2, _ = List.fold_left max (neg_infinity, (0., 0.)) refine in
  Format.printf "two layers reach expected cut %.3f@." best2;

  (* sample actual cuts from the optimised state *)
  let engine = Qaoa.run ~n graph [ (gamma, beta) ] in
  let cut_of bits =
    List.fold_left
      (fun acc (u, v) ->
        if (bits lsr u) land 1 <> (bits lsr v) land 1 then acc + 1 else acc)
      0 graph
  in
  let best_sampled = ref 0 in
  for _ = 1 to 200 do
    let cut = cut_of (Dd_sim.Engine.sample engine) in
    if cut > !best_sampled then best_sampled := cut
  done;
  Format.printf "best of 200 sampled cuts: %d (optimum %d)@." !best_sampled
    best_classical;

  (* per-edge correlations through the observable API *)
  Format.printf "per-edge <Z Z> correlations:@.";
  List.iter
    (fun (u, v) ->
      let zz =
        Dd_sim.Observable.expectation engine
          [ (u, Dd_sim.Observable.Z); (v, Dd_sim.Observable.Z) ]
      in
      Format.printf "  (%d,%d): %+.3f@." u v zz)
    graph
