open Dd_complex
open Util

(* dense DFT matrix: F[y][x] = exp(2 pi i x y / 2^n) / sqrt(2^n) *)
let dft_matrix n =
  let dim = 1 lsl n in
  let norm = 1. /. sqrt (float_of_int dim) in
  Array.init dim (fun y ->
      Array.init dim (fun x ->
          Cnum.of_polar norm
            (2. *. Float.pi *. float_of_int (x * y) /. float_of_int dim)))

let test_qft_matches_dft () =
  List.iter
    (fun n ->
      let expected = dft_matrix n in
      let actual = dense_circuit_matrix (Qft.circuit n) in
      Array.iteri
        (fun row erow ->
          Array.iteri
            (fun col e ->
              check_cnum
                (Printf.sprintf "qft_%d [%d,%d]" n row col)
                e
                actual.(row).(col))
            erow)
        expected)
    [ 1; 2; 3; 4 ]

let test_iqft_inverts () =
  let n = 4 in
  let circuit = Circuit.append (Qft.circuit n) (Qft.inverse_circuit n) in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.apply_gate engine (Gate.x 1);
  Dd_sim.Engine.apply_gate engine (Gate.x 3);
  Dd_sim.Engine.run engine circuit;
  check_float "QFT then iQFT is the identity" 1.
    (Cnum.mag2 (Dd_sim.Engine.amplitude engine 10))

let test_qft_of_zero_is_uniform () =
  let n = 5 in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run engine (Qft.circuit n) ;
  let amp = 1. /. float_of_int (1 lsl n) in
  for i = 0 to (1 lsl n) - 1 do
    check_float
      (Printf.sprintf "uniform amplitude %d" i)
      amp
      (Cnum.mag2 (Dd_sim.Engine.amplitude engine i))
  done

let test_qft_no_swaps_bit_reversed () =
  let n = 3 in
  let with_swaps = Qft.on_register (Array.init n (fun i -> i)) in
  let without = Qft.on_register ~swaps:false (Array.init n (fun i -> i)) in
  check_bool "swap variant has more gates" true
    (List.length with_swaps > List.length without)

let test_qft_on_sub_register () =
  (* QFT on qubits 1..2 of a 4-qubit system leaves qubits 0 and 3 alone *)
  let gates = Qft.on_register [| 1; 2 |] in
  let circuit = Circuit.of_gates ~qubits:4 gates in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.apply_gate engine (Gate.x 0);
  Dd_sim.Engine.apply_gate engine (Gate.x 3);
  Dd_sim.Engine.run engine circuit;
  (* qubits 0 and 3 still deterministic *)
  check_float "qubit 0 untouched" 1.
    (Dd_sim.Engine.probability_one engine ~qubit:0);
  check_float "qubit 3 untouched" 1.
    (Dd_sim.Engine.probability_one engine ~qubit:3)

let test_phase_gradient_state () =
  (* QFT |x> amplitudes all have magnitude 2^(-n/2) and the right phases *)
  let n = 3 in
  let x = 5 in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.set_state engine
    (Dd.Vdd.basis (Dd_sim.Engine.context engine) ~n x);
  Dd_sim.Engine.run engine (Qft.circuit n);
  let dim = 1 lsl n in
  for y = 0 to dim - 1 do
    let expected =
      Cnum.of_polar
        (1. /. sqrt (float_of_int dim))
        (2. *. Float.pi *. float_of_int (x * y) /. float_of_int dim)
    in
    check_cnum (Printf.sprintf "phase at %d" y) expected
      (Dd_sim.Engine.amplitude engine y)
  done

let suite =
  [
    Alcotest.test_case "qft_matches_dft" `Quick test_qft_matches_dft;
    Alcotest.test_case "iqft_inverts" `Quick test_iqft_inverts;
    Alcotest.test_case "qft_zero_uniform" `Quick test_qft_of_zero_is_uniform;
    Alcotest.test_case "qft_no_swaps" `Quick test_qft_no_swaps_bit_reversed;
    Alcotest.test_case "qft_sub_register" `Quick test_qft_on_sub_register;
    Alcotest.test_case "phase_gradient" `Quick test_phase_gradient_state;
  ]
