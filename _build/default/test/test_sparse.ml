open Dd_complex
open Util

let test_initial () =
  let state = Sparse_state.create 5 in
  check_int "support 1" 1 (Sparse_state.support_size state);
  check_cnum "amp |0>" Cnum.one (Sparse_state.amplitude state 0)

let test_x_keeps_support_one () =
  let state = Sparse_state.create 40 in
  Sparse_state.apply_gate state (Gate.x 35);
  check_int "support stays 1" 1 (Sparse_state.support_size state);
  check_cnum "moved amplitude" Cnum.one
    (Sparse_state.amplitude state (1 lsl 35))

let test_wide_register_basis_circuit () =
  (* 50 qubits: impossible densely, trivial sparsely *)
  let state = Sparse_state.create 50 in
  let gates = [ Gate.x 0; Gate.cx 0 49; Gate.ccx 0 49 25 ] in
  List.iter (Sparse_state.apply_gate state) gates;
  check_cnum "basis path tracked" Cnum.one
    (Sparse_state.amplitude state (1 lor (1 lsl 49) lor (1 lsl 25)));
  check_int "support still 1" 1 (Sparse_state.support_size state)

let test_h_doubles_support () =
  let state = Sparse_state.create 3 in
  Sparse_state.apply_gate state (Gate.h 0);
  Sparse_state.apply_gate state (Gate.h 1);
  check_int "two hadamards -> support 4" 4 (Sparse_state.support_size state)

let test_interference_shrinks_support () =
  let state = Sparse_state.create 1 in
  Sparse_state.apply_gate state (Gate.h 0);
  check_int "superposed" 2 (Sparse_state.support_size state);
  Sparse_state.apply_gate state (Gate.h 0);
  (* H H = I: the |1> amplitude cancels exactly and must be dropped *)
  check_int "interference cancels the |1> branch" 1
    (Sparse_state.support_size state);
  check_cnum "back to |0>" Cnum.one (Sparse_state.amplitude state 0)

let test_matches_dense_on_random () =
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:5 ~gates:40 () in
      let sparse = Sparse_state.create 5 in
      Sparse_state.run sparse circuit;
      check_cnum_array
        (Printf.sprintf "sparse vs dense, seed %d" seed)
        (dense_state_of_circuit circuit)
        (Sparse_state.to_array sparse))
    [ 1; 2; 3 ]

let test_matches_dd_on_ghz () =
  let circuit = Standard.ghz 6 in
  let sparse = Sparse_state.create 6 in
  Sparse_state.run sparse circuit;
  check_cnum_array "sparse vs dd on ghz" (dd_state_of_circuit circuit)
    (Sparse_state.to_array sparse);
  check_int "ghz support is 2" 2 (Sparse_state.support_size sparse)

let test_norm_preserved () =
  let circuit = Standard.random_circuit ~seed:9 ~qubits:6 ~gates:60 () in
  let sparse = Sparse_state.create 6 in
  Sparse_state.run sparse circuit;
  check_float "unitary norm" 1. (Sparse_state.norm2 sparse)

let suite =
  [
    Alcotest.test_case "initial" `Quick test_initial;
    Alcotest.test_case "x_support" `Quick test_x_keeps_support_one;
    Alcotest.test_case "wide_register" `Quick
      test_wide_register_basis_circuit;
    Alcotest.test_case "h_doubles" `Quick test_h_doubles_support;
    Alcotest.test_case "interference" `Quick
      test_interference_shrinks_support;
    Alcotest.test_case "matches_dense" `Quick test_matches_dense_on_random;
    Alcotest.test_case "matches_dd_ghz" `Quick test_matches_dd_on_ghz;
    Alcotest.test_case "norm_preserved" `Quick test_norm_preserved;
  ]
