open Util

let test_layer_pairs_adjacent () =
  for t = 0 to 7 do
    List.iter
      (fun (a, b) ->
        let ra = a / 5 and ca = a mod 5 in
        let rb = b / 5 and cb = b mod 5 in
        check_bool
          (Printf.sprintf "cycle %d pair (%d,%d) adjacent" t a b)
          true
          (abs (ra - rb) + abs (ca - cb) = 1))
      (Supremacy.cz_layer ~rows:4 ~cols:5 t)
  done

let test_layer_disjoint () =
  for t = 0 to 7 do
    let layer = Supremacy.cz_layer ~rows:4 ~cols:5 t in
    let touched = Hashtbl.create 16 in
    List.iter
      (fun (a, b) ->
        check_bool "no qubit reused within a layer" false
          (Hashtbl.mem touched a || Hashtbl.mem touched b);
        Hashtbl.add touched a ();
        Hashtbl.add touched b ())
      layer
  done

let test_all_edges_covered () =
  let rows = 4 and cols = 4 in
  let covered = Hashtbl.create 64 in
  for t = 0 to 7 do
    List.iter
      (fun pair -> Hashtbl.replace covered pair ())
      (Supremacy.cz_layer ~rows ~cols t)
  done;
  let expected_edges = (rows * (cols - 1)) + ((rows - 1) * cols) in
  check_int "every grid edge fires once per period" expected_edges
    (Hashtbl.length covered)

let test_layers_cycle () =
  check_bool "period 8" true
    (Supremacy.cz_layer ~rows:3 ~cols:3 2 = Supremacy.cz_layer ~rows:3 ~cols:3 10)

let test_circuit_shape () =
  let circuit = Supremacy.circuit ~rows:3 ~cols:3 ~cycles:8 () in
  check_int "grid qubits" 9 Circuit.(circuit.qubits);
  let counts = Circuit.counts_by_name circuit in
  check_int "one initial H per qubit" 9 (List.assoc "h" counts);
  check_bool "CZ gates present" true (List.mem_assoc "cz" counts)

let test_deterministic_per_seed () =
  let a = Supremacy.circuit ~seed:5 ~rows:3 ~cols:3 ~cycles:10 () in
  let b = Supremacy.circuit ~seed:5 ~rows:3 ~cols:3 ~cycles:10 () in
  check_bool "same seed, same circuit" true
    (Circuit.flatten a = Circuit.flatten b)

let test_seed_changes_instance () =
  let a = Supremacy.circuit ~seed:1 ~rows:3 ~cols:4 ~cycles:12 () in
  let b = Supremacy.circuit ~seed:2 ~rows:3 ~cols:4 ~cycles:12 () in
  check_bool "different seeds differ" false
    (Circuit.flatten a = Circuit.flatten b)

let test_t_before_sx_sy () =
  (* rule: a qubit's first non-H single-qubit gate is a T *)
  let circuit = Supremacy.circuit ~seed:3 ~rows:3 ~cols:3 ~cycles:16 () in
  let first_sq = Hashtbl.create 9 in
  List.iter
    (fun (gate : Gate.t) ->
      match gate.kind with
      | Gate.T | Gate.Sx | Gate.Sy ->
        if not (Hashtbl.mem first_sq gate.target) then
          Hashtbl.add first_sq gate.target gate.kind
      | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.Tdg
      | Gate.Sxdg | Gate.Sydg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _
      | Gate.Phase _ | Gate.Custom _ ->
        ())
    (Circuit.flatten circuit);
  Hashtbl.iter
    (fun qubit kind ->
      check_bool
        (Printf.sprintf "first single-qubit gate on %d is T" qubit)
        true (kind = Gate.T))
    first_sq

let test_matches_dense () =
  let circuit = Supremacy.circuit ~seed:7 ~rows:2 ~cols:3 ~cycles:10 () in
  check_cnum_array "supremacy instance vs dense"
    (dense_state_of_circuit circuit)
    (dd_state_of_circuit circuit)

let test_state_grows () =
  (* these circuits are designed to entangle: DD sizes must grow well
     beyond linear (the regime of the paper's Fig. 5) *)
  let circuit = Supremacy.circuit ~seed:1 ~rows:4 ~cols:4 ~cycles:12 () in
  let engine = Dd_sim.Engine.create 16 in
  Dd_sim.Engine.run engine circuit;
  check_bool "entangled state is much bigger than linear" true
    (Dd_sim.Engine.state_node_count engine > 64)

let suite =
  [
    Alcotest.test_case "layer_pairs_adjacent" `Quick
      test_layer_pairs_adjacent;
    Alcotest.test_case "layer_disjoint" `Quick test_layer_disjoint;
    Alcotest.test_case "all_edges_covered" `Quick test_all_edges_covered;
    Alcotest.test_case "layers_cycle" `Quick test_layers_cycle;
    Alcotest.test_case "circuit_shape" `Quick test_circuit_shape;
    Alcotest.test_case "deterministic_per_seed" `Quick
      test_deterministic_per_seed;
    Alcotest.test_case "seed_changes_instance" `Quick
      test_seed_changes_instance;
    Alcotest.test_case "t_before_sx_sy" `Quick test_t_before_sx_sy;
    Alcotest.test_case "matches_dense" `Quick test_matches_dense;
    Alcotest.test_case "state_grows" `Quick test_state_grows;
  ]
