open Util

let has_repeat circuit =
  List.exists
    (function Circuit.Repeat _ -> true | Circuit.Gate _ -> false)
    Circuit.(circuit.ops)

let test_detect_simple_loop () =
  let body = [ Gate.h 0; Gate.cx 0 1; Gate.t_gate 1 ] in
  let gates = List.concat (List.init 5 (fun _ -> body)) in
  let circuit = Circuit.of_gates ~qubits:2 gates in
  let detected = Repeats.detect circuit in
  check_bool "repeat found" true (has_repeat detected);
  check_bool "semantics preserved" true
    (Circuit.flatten detected = Circuit.flatten circuit)

let test_detect_recovers_grover_structure () =
  (* flatten grover (losing the Repeat), re-detect, and check that
     DD-repeating works again *)
  let n = 6 and marked = 22 in
  let structured = Grover.circuit ~n ~marked () in
  let flat = Circuit.of_gates ~qubits:n (Circuit.flatten structured) in
  check_bool "flattened circuit has no repeat" false (has_repeat flat);
  let detected = Repeats.detect flat in
  check_bool "detection recovers a repeat" true (has_repeat detected);
  check_bool "gate stream unchanged" true
    (Circuit.flatten detected = Circuit.flatten structured);
  (* and the recovered structure actually enables DD-repeating *)
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run ~use_repeating:true engine detected;
  check_bool "search still succeeds" true
    (Grover.success_probability engine ~marked > 0.9);
  let stats = Dd_sim.Engine.stats engine in
  check_bool "block was re-applied, not recombined" true
    (stats.Dd_sim.Sim_stats.mat_vec_mults
     < Circuit.gate_count structured / 4)

let test_no_false_positives () =
  let circuit = Standard.random_circuit ~seed:13 ~qubits:4 ~gates:40 () in
  let detected = Repeats.detect circuit in
  check_bool "random circuit gate stream unchanged" true
    (Circuit.flatten detected = Circuit.flatten circuit)

let test_min_gates_threshold () =
  (* a 2-gate body repeated twice covers 4 gates: below the default
     threshold of 8, so nothing is rewritten *)
  let body = [ Gate.h 0; Gate.x 1 ] in
  let circuit = Circuit.of_gates ~qubits:2 (body @ body) in
  check_bool "too small to rewrite" false
    (has_repeat (Repeats.detect circuit));
  check_bool "explicit lower threshold rewrites it" true
    (has_repeat (Repeats.detect ~min_gates:4 circuit))

let test_prefers_covering_run () =
  (* aaaa bbb: the aaaa run (period 1 not considered by default min_period
     2... use min_period 1) *)
  let gates = [ Gate.h 0; Gate.h 0; Gate.h 0; Gate.h 0; Gate.x 0 ] in
  let circuit = Circuit.of_gates ~qubits:1 gates in
  let detected = Repeats.detect ~min_period:1 ~min_gates:4 circuit in
  check_bool "period-1 run detected" true (has_repeat detected);
  check_bool "trailing gate kept" true
    (Circuit.flatten detected = gates)

let test_bad_bounds_rejected () =
  let circuit = Standard.bell () in
  Alcotest.check_raises "bad bounds"
    (Invalid_argument "Repeats.detect: bad period bounds") (fun () ->
      ignore (Repeats.detect ~min_period:5 ~max_period:2 circuit))

let suite =
  [
    Alcotest.test_case "detect_simple_loop" `Quick test_detect_simple_loop;
    Alcotest.test_case "recovers_grover" `Quick
      test_detect_recovers_grover_structure;
    Alcotest.test_case "no_false_positives" `Quick test_no_false_positives;
    Alcotest.test_case "min_gates_threshold" `Quick test_min_gates_threshold;
    Alcotest.test_case "prefers_covering_run" `Quick
      test_prefers_covering_run;
    Alcotest.test_case "bad_bounds" `Quick test_bad_bounds_rejected;
  ]
