(* The shipped benchmarks/*.qasm files must stay loadable and correct. *)

open Util

let load name =
  (* tests run from _build/default/test; the repository root is two up *)
  let candidates =
    [
      Filename.concat "../../../benchmarks" name;
      Filename.concat "benchmarks" name;
      Filename.concat "../benchmarks" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail (Printf.sprintf "cannot locate benchmarks/%s" name)
  | Some path ->
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Qasm.of_string ~name text

let test_ghz_12 () =
  let circuit = load "ghz_12.qasm" in
  check_int "width" 12 Circuit.(circuit.qubits);
  let engine = Dd_sim.Engine.create 12 in
  Dd_sim.Engine.run engine circuit;
  let p0 = Dd_complex.Cnum.mag2 (Dd_sim.Engine.amplitude engine 0) in
  let p1 =
    Dd_complex.Cnum.mag2 (Dd_sim.Engine.amplitude engine ((1 lsl 12) - 1))
  in
  check_float "half mass on |0...0>" 0.5 p0;
  check_float "half mass on |1...1>" 0.5 p1

let test_qft_8 () =
  let circuit = load "qft_8.qasm" in
  let engine = Dd_sim.Engine.create 8 in
  Dd_sim.Engine.run engine circuit;
  let expected = 1. /. 256. in
  check_float "uniform magnitude" expected
    (Dd_complex.Cnum.mag2 (Dd_sim.Engine.amplitude engine 137))

let test_bv_16 () =
  let circuit = load "bv_16_42.qasm" in
  let engine = Dd_sim.Engine.create 16 in
  Dd_sim.Engine.run engine circuit;
  check_float "measures the secret deterministically" 1.
    (Dd_complex.Cnum.mag2 (Dd_sim.Engine.amplitude engine 42))

let test_random_6_80 () =
  let circuit = load "random_6_80.qasm" in
  check_cnum_array "file matches the dense simulator"
    (dense_state_of_circuit circuit)
    (dd_state_of_circuit circuit)

let suite =
  [
    Alcotest.test_case "ghz_12" `Quick test_ghz_12;
    Alcotest.test_case "qft_8" `Quick test_qft_8;
    Alcotest.test_case "bv_16_42" `Quick test_bv_16;
    Alcotest.test_case "random_6_80" `Quick test_random_6_80;
  ]
