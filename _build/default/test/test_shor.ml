open Util

(* helpers: prepare a register value, run gates, read a register value *)

let set_register engine register value =
  Array.iteri
    (fun j qubit ->
      if (value lsr j) land 1 = 1 then
        Dd_sim.Engine.apply_gate engine (Gate.x qubit))
    register

let read_register engine register =
  (* the state is a basis state in these arithmetic tests *)
  let index = Dd_sim.Engine.sample engine in
  Array.to_list register
  |> List.mapi (fun j qubit -> ((index lsr qubit) land 1) lsl j)
  |> List.fold_left ( + ) 0

let run_gates engine gates =
  let circuit =
    Circuit.of_gates ~qubits:(Dd_sim.Engine.qubits engine) gates
  in
  Dd_sim.Engine.run engine circuit

let test_phi_add () =
  (* QFT; phi_add(a); iQFT == +a (mod 2^m) on a 4-qubit register *)
  let register = [| 0; 1; 2; 3 |] in
  List.iter
    (fun (b, a) ->
      let engine = Dd_sim.Engine.create 4 in
      set_register engine register b;
      run_gates engine (Qft.on_register register);
      run_gates engine (Shor.phi_add_gates ~register a);
      run_gates engine (Qft.inverse_on_register register);
      check_int
        (Printf.sprintf "%d + %d mod 16" b a)
        ((b + a) mod 16)
        (read_register engine register))
    [ (0, 5); (3, 4); (9, 9); (15, 1); (7, 0) ]

let test_phi_sub () =
  let register = [| 0; 1; 2 |] in
  let engine = Dd_sim.Engine.create 3 in
  set_register engine register 3;
  run_gates engine (Qft.on_register register);
  run_gates engine (Shor.phi_sub_gates ~register 5);
  run_gates engine (Qft.inverse_on_register register);
  check_int "3 - 5 mod 8" 6 (read_register engine register)

let test_phi_add_controlled () =
  let register = [| 1; 2; 3 |] in
  List.iter
    (fun (control_set, expected) ->
      let engine = Dd_sim.Engine.create 4 in
      if control_set then Dd_sim.Engine.apply_gate engine (Gate.x 0);
      set_register engine register 2;
      run_gates engine (Qft.on_register register);
      run_gates engine
        (Shor.phi_add_gates ~controls:[ Gate.ctrl 0 ] ~register 3);
      run_gates engine (Qft.inverse_on_register register);
      check_int
        (Printf.sprintf "controlled add, control=%b" control_set)
        expected
        (read_register engine register))
    [ (true, 5); (false, 2) ]

let modulus = 11 (* n = 4 bits; Beauregard layout has 11 qubits *)

let test_modular_adder () =
  let lay = Shor.layout modulus in
  let qubits = Shor.beauregard_qubits modulus in
  List.iter
    (fun (b, a) ->
      let engine = Dd_sim.Engine.create qubits in
      set_register engine lay.Shor.b b;
      run_gates engine (Qft.on_register lay.Shor.b);
      run_gates engine
        (Shor.modular_adder_gates ~layout:lay ~modulus a);
      run_gates engine (Qft.inverse_on_register lay.Shor.b);
      check_int
        (Printf.sprintf "%d + %d mod %d" b a modulus)
        ((b + a) mod modulus)
        (read_register engine lay.Shor.b);
      (* the comparison ancilla must be restored *)
      check_float "ancilla clean" 0.
        (Dd_sim.Engine.probability_one engine ~qubit:lay.Shor.ancilla))
    [ (0, 5); (6, 7); (10, 10); (3, 0); (0, 0); (10, 1) ]

let test_modular_adder_controls_off () =
  let lay = Shor.layout modulus in
  let qubits = Shor.beauregard_qubits modulus in
  let engine = Dd_sim.Engine.create qubits in
  set_register engine lay.Shor.b 6;
  run_gates engine (Qft.on_register lay.Shor.b);
  run_gates engine
    (Shor.modular_adder_gates
       ~controls:[ Gate.ctrl lay.Shor.control ]
       ~layout:lay ~modulus 7);
  run_gates engine (Qft.inverse_on_register lay.Shor.b);
  check_int "gadget is the identity when its controls are off" 6
    (read_register engine lay.Shor.b);
  check_float "ancilla clean" 0.
    (Dd_sim.Engine.probability_one engine ~qubit:lay.Shor.ancilla)

let test_cmult () =
  let lay = Shor.layout modulus in
  let qubits = Shor.beauregard_qubits modulus in
  List.iter
    (fun (x, a) ->
      let engine = Dd_sim.Engine.create qubits in
      Dd_sim.Engine.apply_gate engine (Gate.x lay.Shor.control);
      set_register engine lay.Shor.x x;
      run_gates engine
        (Shor.cmult_gates ~layout:lay ~control:lay.Shor.control ~modulus a);
      check_int
        (Printf.sprintf "b <- %d * %d mod %d" a x modulus)
        (a * x mod modulus)
        (read_register engine lay.Shor.b);
      check_int "x unchanged" x (read_register engine lay.Shor.x))
    [ (1, 3); (5, 4); (10, 10) ]

let test_controlled_ua () =
  let lay = Shor.layout modulus in
  let qubits = Shor.beauregard_qubits modulus in
  List.iter
    (fun (x, a) ->
      let engine = Dd_sim.Engine.create qubits in
      Dd_sim.Engine.apply_gate engine (Gate.x lay.Shor.control);
      set_register engine lay.Shor.x x;
      run_gates engine
        (Shor.controlled_ua_gates ~layout:lay ~control:lay.Shor.control
           ~modulus a);
      check_int
        (Printf.sprintf "x <- %d * %d mod %d" a x modulus)
        (a * x mod modulus)
        (read_register engine lay.Shor.x);
      check_int "b register back to zero" 0 (read_register engine lay.Shor.b))
    [ (1, 2); (4, 3); (7, 8) ]

let test_controlled_ua_control_off () =
  let lay = Shor.layout modulus in
  let qubits = Shor.beauregard_qubits modulus in
  let engine = Dd_sim.Engine.create qubits in
  set_register engine lay.Shor.x 6;
  run_gates engine
    (Shor.controlled_ua_gates ~layout:lay ~control:lay.Shor.control ~modulus 3);
  check_int "U_a is the identity when the control is off" 6
    (read_register engine lay.Shor.x)

let test_controlled_ua_rejects_non_coprime () =
  let lay = Shor.layout 15 in
  Alcotest.check_raises "a shares a factor"
    (Invalid_argument "Shor.controlled_ua_gates: base not coprime to modulus")
    (fun () ->
      ignore
        (Shor.controlled_ua_gates ~layout:lay ~control:lay.Shor.control
           ~modulus:15 5))

let test_qubit_counts () =
  check_int "Beauregard uses 2n+3" 11 (Shor.beauregard_qubits 11);
  check_int "direct uses n+1" 5 (Shor.direct_qubits 11);
  check_int "paper instance 11623 -> 31 qubits" 31
    (Shor.beauregard_qubits 11623);
  check_int "paper instance 11623 direct -> 15 qubits" 15
    (Shor.direct_qubits 11623)

let test_order_finding_direct_15 () =
  let run = Shor.run_order_finding ~backend:Shor.Direct ~a:7 15 in
  check_int "n+1 qubits" 5 run.Shor.engine_qubits;
  check_int "2n phase bits" 8 run.Shor.phase_bits

let test_find_order_direct () =
  List.iter
    (fun (modulus, a) ->
      let expected = Ntheory.multiplicative_order a modulus in
      check_bool
        (Printf.sprintf "order of %d mod %d" a modulus)
        true
        (Shor.find_order ~backend:Shor.Direct ~a modulus = Some expected))
    [ (15, 7); (15, 2); (21, 2); (21, 5); (33, 5) ]

let test_find_order_beauregard () =
  List.iter
    (fun strategy ->
      check_bool
        ("Beauregard order finding, strategy "
        ^ Dd_sim.Strategy.to_string strategy)
        true
        (Shor.find_order
           ~backend:(Shor.Beauregard strategy)
           ~a:7 15
        = Some 4))
    [ Dd_sim.Strategy.Sequential; Dd_sim.Strategy.K_operations 8 ]

let test_backends_agree () =
  (* same seed, same modulus: both backends must recover the true order *)
  let expected = Ntheory.multiplicative_order 2 15 in
  check_bool "direct" true
    (Shor.find_order ~backend:Shor.Direct ~a:2 15 = Some expected);
  check_bool "beauregard" true
    (Shor.find_order
       ~backend:(Shor.Beauregard (Dd_sim.Strategy.Max_size 512))
       ~a:2 15
    = Some expected)

let test_factor_direct () =
  List.iter
    (fun (modulus, p, q) ->
      check_bool
        (Printf.sprintf "factor %d" modulus)
        true
        (Shor.factor ~backend:Shor.Direct modulus = Some (p, q)))
    [ (15, 3, 5); (21, 3, 7); (33, 3, 11); (35, 5, 7) ]

let test_factor_beauregard () =
  check_bool "factor 15 via the full circuit" true
    (Shor.factor ~backend:(Shor.Beauregard Dd_sim.Strategy.Sequential) 15
    = Some (3, 5))

let test_factor_even_shortcut () =
  check_bool "even shortcut" true
    (Shor.factor ~backend:Shor.Direct 14 = Some (2, 7))

let test_factor_prime_rejected () =
  check_bool "primes have no factors" true
    (Shor.factor ~backend:Shor.Direct 13 = None)

let suite =
  [
    Alcotest.test_case "phi_add" `Quick test_phi_add;
    Alcotest.test_case "phi_sub" `Quick test_phi_sub;
    Alcotest.test_case "phi_add_controlled" `Quick test_phi_add_controlled;
    Alcotest.test_case "modular_adder" `Quick test_modular_adder;
    Alcotest.test_case "modular_adder_controls_off" `Quick
      test_modular_adder_controls_off;
    Alcotest.test_case "cmult" `Quick test_cmult;
    Alcotest.test_case "controlled_ua" `Quick test_controlled_ua;
    Alcotest.test_case "controlled_ua_off" `Quick
      test_controlled_ua_control_off;
    Alcotest.test_case "controlled_ua_non_coprime" `Quick
      test_controlled_ua_rejects_non_coprime;
    Alcotest.test_case "qubit_counts" `Quick test_qubit_counts;
    Alcotest.test_case "order_finding_direct_15" `Quick
      test_order_finding_direct_15;
    Alcotest.test_case "find_order_direct" `Quick test_find_order_direct;
    Alcotest.test_case "find_order_beauregard" `Slow
      test_find_order_beauregard;
    Alcotest.test_case "backends_agree" `Slow test_backends_agree;
    Alcotest.test_case "factor_direct" `Quick test_factor_direct;
    Alcotest.test_case "factor_beauregard" `Slow test_factor_beauregard;
    Alcotest.test_case "factor_even_shortcut" `Quick
      test_factor_even_shortcut;
    Alcotest.test_case "factor_prime_rejected" `Quick
      test_factor_prime_rejected;
  ]
