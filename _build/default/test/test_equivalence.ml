open Util

let check_result msg expected actual =
  let to_text = function
    | Dd_sim.Equivalence.Equivalent -> "equivalent"
    | Dd_sim.Equivalence.Equivalent_up_to_phase _ -> "up-to-phase"
    | Dd_sim.Equivalence.Not_equivalent -> "not-equivalent"
  in
  Alcotest.(check string) msg (to_text expected) (to_text actual)

let test_identical_circuits () =
  let circuit = Standard.random_circuit ~seed:4 ~qubits:4 ~gates:25 () in
  check_result "a circuit equals itself" Dd_sim.Equivalence.Equivalent
    (Dd_sim.Equivalence.check circuit circuit)

let test_padded_with_inverse_pairs () =
  let base = Standard.ghz 3 in
  let padded =
    Circuit.of_gates ~qubits:3
      (Circuit.flatten base @ [ Gate.cx 1 2; Gate.cx 1 2; Gate.h 0; Gate.h 0 ])
  in
  check_bool "identity padding is equivalent" true
    (Dd_sim.Equivalence.equivalent base padded)

let test_different_decompositions () =
  (* swap as 3 cx vs explicit permutation of two x gates on a basis state
     differ; instead compare: cz 0 1 == h 1; cx 0 1; h 1 *)
  let a = Circuit.of_gates ~qubits:2 [ Gate.cz 0 1 ] in
  let b = Circuit.of_gates ~qubits:2 [ Gate.h 1; Gate.cx 0 1; Gate.h 1 ] in
  check_result "cz = h cx h" Dd_sim.Equivalence.Equivalent
    (Dd_sim.Equivalence.check a b)

let test_global_phase_detected () =
  (* x z x z = -I: equivalent to the empty-ish circuit up to phase -1 *)
  let a =
    Circuit.of_gates ~qubits:1 [ Gate.x 0; Gate.z 0; Gate.x 0; Gate.z 0 ]
  in
  let b = Circuit.of_gates ~qubits:1 [ Gate.rz 0. 0 ] in
  (match Dd_sim.Equivalence.check a b with
  | Dd_sim.Equivalence.Equivalent_up_to_phase phase ->
    check_cnum "phase is -1" (Dd_complex.Cnum.of_float (-1.)) phase
  | Dd_sim.Equivalence.Equivalent | Dd_sim.Equivalence.Not_equivalent ->
    Alcotest.fail "expected phase equivalence");
  check_bool "up_to_phase=false rejects it" false
    (Dd_sim.Equivalence.equivalent ~up_to_phase:false a b);
  check_bool "up_to_phase=true accepts it" true
    (Dd_sim.Equivalence.equivalent a b)

let test_not_equivalent () =
  let a = Standard.ghz 3 in
  let b =
    Circuit.of_gates ~qubits:3 (Circuit.flatten (Standard.ghz 3) @ [ Gate.x 1 ])
  in
  check_result "an extra x is detected" Dd_sim.Equivalence.Not_equivalent
    (Dd_sim.Equivalence.check a b)

let test_subtle_difference () =
  (* identical except one rotation angle differs by 1e-3 *)
  let build theta =
    Circuit.of_gates ~qubits:2 [ Gate.h 0; Gate.rz theta 1; Gate.cx 0 1 ]
  in
  check_result "small angle difference detected"
    Dd_sim.Equivalence.Not_equivalent
    (Dd_sim.Equivalence.check (build 0.5) (build 0.501))

let test_width_mismatch () =
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Equivalence.check: circuit widths differ") (fun () ->
      ignore (Dd_sim.Equivalence.check (Standard.ghz 2) (Standard.ghz 3)))

let test_optimizer_verified_by_equivalence () =
  (* the two features validate each other: every optimised circuit must be
     equivalent to its original *)
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:4 ~gates:50 () in
      let optimized = Optimize.optimize circuit in
      check_bool
        (Printf.sprintf "optimizer output equivalent (seed %d)" seed)
        true
        (Dd_sim.Equivalence.equivalent circuit optimized))
    [ 11; 22; 33; 44 ]

let test_qft_iqft_is_identity () =
  let n = 4 in
  let round_trip = Circuit.append (Qft.circuit n) (Qft.inverse_circuit n) in
  let nothing = Circuit.of_gates ~qubits:n [ Gate.rz 0. 0 ] in
  check_bool "qft then iqft is the identity" true
    (Dd_sim.Equivalence.equivalent round_trip nothing)

let suite =
  [
    Alcotest.test_case "identical" `Quick test_identical_circuits;
    Alcotest.test_case "inverse_padding" `Quick
      test_padded_with_inverse_pairs;
    Alcotest.test_case "different_decompositions" `Quick
      test_different_decompositions;
    Alcotest.test_case "global_phase" `Quick test_global_phase_detected;
    Alcotest.test_case "not_equivalent" `Quick test_not_equivalent;
    Alcotest.test_case "subtle_difference" `Quick test_subtle_difference;
    Alcotest.test_case "width_mismatch" `Quick test_width_mismatch;
    Alcotest.test_case "optimizer_cross_check" `Quick
      test_optimizer_verified_by_equivalence;
    Alcotest.test_case "qft_roundtrip_identity" `Quick
      test_qft_iqft_is_identity;
  ]
