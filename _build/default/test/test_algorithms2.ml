(* QPE, Deutsch-Jozsa and QAOA. *)

open Util

(* --- QPE ------------------------------------------------------------ *)

let phase_gate_power theta ~control ~power =
  (* U = P(theta) on qubit 0; U^power = P(power * theta) *)
  [
    Gate.make ~controls:[ Gate.ctrl control ]
      (Gate.Phase (float_of_int power *. theta))
      0;
  ]

let test_qpe_exact_phase () =
  (* phi = k/16 is exactly representable with 4 counting bits *)
  List.iter
    (fun k ->
      let theta = 2. *. Float.pi *. float_of_int k /. 16. in
      let measured =
        Qpe.estimate ~prepare:[ Gate.x 0 ] ~precision:4 ~target_qubits:1
          ~controlled_power:(phase_gate_power theta) ()
      in
      check_int (Printf.sprintf "phase %d/16 recovered" k) k measured)
    [ 0; 1; 5; 8; 15 ]

let test_qpe_t_gate () =
  (* T has eigenphase 1/8 on |1> *)
  let theta = Float.pi /. 4. in
  let measured =
    Qpe.estimate ~prepare:[ Gate.x 0 ] ~precision:3 ~target_qubits:1
      ~controlled_power:(phase_gate_power theta) ()
  in
  check_int "T eigenphase = 1/8" 1 measured

let test_qpe_eigenstate_zero () =
  (* |0> has eigenvalue 1 for a phase gate: estimate must be 0 *)
  let theta = 1.234 in
  let measured =
    Qpe.estimate ~precision:4 ~target_qubits:1
      ~controlled_power:(phase_gate_power theta) ()
  in
  check_int "|0> eigenphase is 0" 0 measured

let test_qpe_register_helpers () =
  let counting = Qpe.counting_register ~precision:4 ~target_qubits:4 in
  check_int "counting register position" 4 counting.(0);
  check_int "counting register top" 7 counting.(3);
  Alcotest.check_raises "precision 0 rejected"
    (Invalid_argument "Qpe.circuit: need precision >= 1") (fun () ->
      ignore
        (Qpe.circuit ~precision:0 ~target_qubits:1
           ~controlled_power:(fun ~control:_ ~power:_ -> [])))

(* --- Deutsch-Jozsa --------------------------------------------------- *)

let test_dj_constant () =
  check_bool "f = const false" true
    (Deutsch_jozsa.run ~n:5 (fun _ -> false) = Deutsch_jozsa.Constant);
  check_bool "f = const true" true
    (Deutsch_jozsa.run ~n:5 (fun _ -> true) = Deutsch_jozsa.Constant)

let test_dj_balanced () =
  check_bool "f = lowest bit" true
    (Deutsch_jozsa.run ~n:5 (fun x -> x land 1 = 1) = Deutsch_jozsa.Balanced);
  check_bool "f = parity" true
    (Deutsch_jozsa.run ~n:4
       (fun x ->
         let rec parity x acc = if x = 0 then acc else parity (x lsr 1) (acc <> (x land 1 = 1)) in
         parity x false)
    = Deutsch_jozsa.Balanced);
  check_bool "f = x < half" true
    (Deutsch_jozsa.run ~n:6 (fun x -> x < 32) = Deutsch_jozsa.Balanced)

let test_dj_probabilities_sharp () =
  check_float "constant probability exactly 1" 1.
    (Deutsch_jozsa.classify_probability ~n:6 (fun _ -> true));
  check_float "balanced probability exactly 0" 0.
    (Deutsch_jozsa.classify_probability ~n:6 (fun x -> x land 1 = 1))

let test_dj_oracle_is_unitary () =
  let ctx = fresh_ctx () in
  let u = Deutsch_jozsa.oracle_dd ctx ~n:4 (fun x -> x mod 3 = 0) in
  check_bool "diagonal oracle is unitary" true
    (Dd.Mdd.equal (Dd.Mdd.identity ctx 4)
       (Dd.Mdd.mul ctx (Dd.Mdd.adjoint ctx u) u))

(* --- QAOA ------------------------------------------------------------ *)

let triangle = [ (0, 1); (1, 2); (0, 2) ]
let square = [ (0, 1); (1, 2); (2, 3); (3, 0) ]

let test_qaoa_uniform_start () =
  (* with zero angles the state stays uniform: every edge contributes 1/2 *)
  let engine = Qaoa.run ~n:4 square [ (0., 0.) ] in
  check_float "uniform cut expectation" 2. (Qaoa.cut_expectation engine square)

let test_qaoa_brute_force () =
  check_int "triangle max cut" 2 (Qaoa.max_cut_brute_force ~n:3 triangle);
  check_int "square max cut" 4 (Qaoa.max_cut_brute_force ~n:4 square)

let test_qaoa_single_edge_optimal () =
  (* p = 1 QAOA solves a single edge exactly; the default grid contains the
     optimal angles (gamma = pi/4, beta = pi/4) *)
  let graph = [ (0, 1) ] in
  let _params, best = Qaoa.grid_search ~resolution:12 ~n:2 graph () in
  check_bool
    (Printf.sprintf "single edge solved exactly (got %.4f)" best)
    true
    (best > 0.999)

let test_qaoa_grid_search_improves () =
  let (_params, best_value) = Qaoa.grid_search ~resolution:6 ~n:3 triangle () in
  let baseline =
    Qaoa.cut_expectation (Qaoa.run ~n:3 triangle [ (0., 0.) ]) triangle
  in
  check_bool "optimised parameters beat zero angles" true
    (best_value > baseline +. 0.1);
  check_bool "expectation below classical optimum" true
    (best_value
    <= float_of_int (Qaoa.max_cut_brute_force ~n:3 triangle) +. 1e-9)

let test_qaoa_expectation_matches_sampling () =
  let graph = square in
  let engine = Qaoa.run ~n:4 graph [ (0.6, 0.4) ] in
  let expectation = Qaoa.cut_expectation engine graph in
  (* estimate the same quantity by sampling *)
  let samples = 4000 in
  let total = ref 0 in
  for _ = 1 to samples do
    let bits = Dd_sim.Engine.sample engine in
    List.iter
      (fun (u, v) ->
        if (bits lsr u) land 1 <> (bits lsr v) land 1 then incr total)
      graph
  done;
  let sampled = float_of_int !total /. float_of_int samples in
  check_bool
    (Printf.sprintf "sampled %.3f vs expectation %.3f" sampled expectation)
    true
    (abs_float (sampled -. expectation) < 0.1)

let test_qaoa_rejects_bad_graph () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Qaoa: self loop") (fun () ->
      ignore (Qaoa.circuit ~n:3 [ (1, 1) ] [ (0.1, 0.1) ]))

let suite =
  [
    Alcotest.test_case "qpe_exact_phase" `Quick test_qpe_exact_phase;
    Alcotest.test_case "qpe_t_gate" `Quick test_qpe_t_gate;
    Alcotest.test_case "qpe_eigenstate_zero" `Quick test_qpe_eigenstate_zero;
    Alcotest.test_case "qpe_register_helpers" `Quick
      test_qpe_register_helpers;
    Alcotest.test_case "dj_constant" `Quick test_dj_constant;
    Alcotest.test_case "dj_balanced" `Quick test_dj_balanced;
    Alcotest.test_case "dj_sharp" `Quick test_dj_probabilities_sharp;
    Alcotest.test_case "dj_oracle_unitary" `Quick test_dj_oracle_is_unitary;
    Alcotest.test_case "qaoa_uniform" `Quick test_qaoa_uniform_start;
    Alcotest.test_case "qaoa_brute_force" `Quick test_qaoa_brute_force;
    Alcotest.test_case "qaoa_single_edge" `Quick
      test_qaoa_single_edge_optimal;
    Alcotest.test_case "qaoa_grid_search" `Quick
      test_qaoa_grid_search_improves;
    Alcotest.test_case "qaoa_sampling" `Quick
      test_qaoa_expectation_matches_sampling;
    Alcotest.test_case "qaoa_bad_graph" `Quick test_qaoa_rejects_bad_graph;
  ]
