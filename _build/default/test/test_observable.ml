open Util

let test_of_string () =
  let obs = Dd_sim.Observable.of_string "ZXI" in
  check_bool "qubit 0 is I (absent)" true
    (not (List.mem_assoc 0 obs));
  check_bool "qubit 1 is X" true
    (List.assoc 1 obs = Dd_sim.Observable.X);
  check_bool "qubit 2 is Z" true
    (List.assoc 2 obs = Dd_sim.Observable.Z)

let test_of_string_rejects () =
  Alcotest.check_raises "bad letter"
    (Invalid_argument "Observable.of_string: bad character 'Q'") (fun () ->
      ignore (Dd_sim.Observable.of_string "XQZ"))

let test_to_string_roundtrip () =
  Alcotest.(check string)
    "roundtrip" "ZXIY"
    (Dd_sim.Observable.to_string ~n:4
       (Dd_sim.Observable.of_string "ZXIY"))

let test_z_on_basis_states () =
  let engine = Dd_sim.Engine.create 2 in
  check_float "<00|Z0|00> = 1" 1.
    (Dd_sim.Observable.expectation engine [ (0, Dd_sim.Observable.Z) ]);
  Dd_sim.Engine.apply_gate engine (Gate.x 0);
  check_float "<01|Z0|01> = -1" (-1.)
    (Dd_sim.Observable.expectation engine [ (0, Dd_sim.Observable.Z) ]);
  check_float "<01|Z1|01> = 1" 1.
    (Dd_sim.Observable.expectation engine [ (1, Dd_sim.Observable.Z) ])

let test_x_on_plus_state () =
  let engine = Dd_sim.Engine.create 1 in
  Dd_sim.Engine.apply_gate engine (Gate.h 0);
  check_float "<+|X|+> = 1" 1.
    (Dd_sim.Observable.expectation engine [ (0, Dd_sim.Observable.X) ]);
  check_float "<+|Z|+> = 0" 0.
    (Dd_sim.Observable.expectation engine [ (0, Dd_sim.Observable.Z) ])

let test_bell_correlations () =
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine (Standard.bell ());
  let expectation s =
    Dd_sim.Observable.expectation engine (Dd_sim.Observable.of_string s)
  in
  check_float "<ZZ> = 1" 1. (expectation "ZZ");
  check_float "<XX> = 1" 1. (expectation "XX");
  check_float "<YY> = -1" (-1.) (expectation "YY");
  check_float "<ZI> = 0" 0. (expectation "ZI")

let test_matches_dense () =
  let circuit = Standard.random_circuit ~seed:21 ~qubits:4 ~gates:30 () in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.run engine circuit;
  let dense = dense_state_of_circuit circuit in
  (* dense <psi| Z2 X0 |psi> *)
  let dim = Array.length dense in
  let expectation_dense = ref 0. in
  for i = 0 to dim - 1 do
    let j = i lxor 1 in
    (* X on qubit 0 *)
    let sign = if (i lsr 2) land 1 = 1 then -1. else 1. in
    let term =
      Dd_complex.Cnum.mul
        (Dd_complex.Cnum.conj dense.(i))
        (Dd_complex.Cnum.scale sign dense.(j))
    in
    expectation_dense := !expectation_dense +. Dd_complex.Cnum.re term
  done;
  check_float "Z2 X0 matches dense" !expectation_dense
    (Dd_sim.Observable.expectation engine
       [ (2, Dd_sim.Observable.Z); (0, Dd_sim.Observable.X) ])

let test_duplicate_qubit_rejected () =
  let engine = Dd_sim.Engine.create 2 in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Observable.expectation: duplicate qubit") (fun () ->
      ignore
        (Dd_sim.Observable.expectation engine
           [ (0, Dd_sim.Observable.Z); (0, Dd_sim.Observable.X) ]))

let suite =
  [
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "of_string_rejects" `Quick test_of_string_rejects;
    Alcotest.test_case "to_string_roundtrip" `Quick test_to_string_roundtrip;
    Alcotest.test_case "z_on_basis" `Quick test_z_on_basis_states;
    Alcotest.test_case "x_on_plus" `Quick test_x_on_plus_state;
    Alcotest.test_case "bell_correlations" `Quick test_bell_correlations;
    Alcotest.test_case "matches_dense" `Quick test_matches_dense;
    Alcotest.test_case "duplicate_rejected" `Quick
      test_duplicate_qubit_rejected;
  ]
