open Dd_complex
open Util

let test_initial_state () =
  let state = Dense_state.create 3 in
  check_cnum "starts in |000>" Cnum.one (Dense_state.amplitude state 0);
  check_float "norm" 1. (Dense_state.norm2 state)

let test_bell () =
  let state = Dense_state.create 2 in
  Dense_state.run state (Standard.bell ());
  let amp = Cnum.of_float (1. /. sqrt 2.) in
  check_cnum "amp |00>" amp (Dense_state.amplitude state 0);
  check_cnum "amp |11>" amp (Dense_state.amplitude state 3);
  check_cnum "amp |01>" Cnum.zero (Dense_state.amplitude state 1)

let test_ghz () =
  let state = Dense_state.create 5 in
  Dense_state.run state (Standard.ghz 5);
  let amp = Cnum.of_float (1. /. sqrt 2.) in
  check_cnum "amp |00000>" amp (Dense_state.amplitude state 0);
  check_cnum "amp |11111>" amp (Dense_state.amplitude state 31)

let test_negative_control () =
  let state = Dense_state.create 2 in
  (* q1 = 0, so a negatively controlled X on q0 must fire *)
  Dense_state.apply_gate state (Gate.make ~controls:[ Gate.nctrl 1 ] Gate.X 0);
  check_cnum "fired" Cnum.one (Dense_state.amplitude state 1)

let test_norm_preserved () =
  let state = Dense_state.create 4 in
  Dense_state.run state (Standard.random_circuit ~seed:3 ~qubits:4 ~gates:60 ());
  check_float "unitary evolution preserves norm" 1. (Dense_state.norm2 state)

let test_probability_and_measure () =
  let rng = Random.State.make [| 11 |] in
  let state = Dense_state.create 2 in
  Dense_state.apply_gate state (Gate.h 0);
  check_float "p1 of |+>" 0.5 (Dense_state.probability_one state ~qubit:0);
  let outcome = Dense_state.measure_qubit rng state ~qubit:0 in
  let expected = if outcome then 1 else 0 in
  check_cnum "collapsed" Cnum.one (Dense_state.amplitude state expected);
  check_float "renormalised" 1. (Dense_state.norm2 state)

let test_sample_basis_state () =
  let rng = Random.State.make [| 1 |] in
  let state = Dense_state.create 3 in
  Dense_state.apply_gate state (Gate.x 1);
  check_int "deterministic sample" 2 (Dense_state.sample rng state)

let test_fidelity () =
  let a = Dense_state.create 2 and b = Dense_state.create 2 in
  check_float "identical states" 1. (Dense_state.fidelity a b);
  Dense_state.apply_gate b (Gate.x 0);
  check_float "orthogonal states" 0. (Dense_state.fidelity a b)

let test_of_amplitudes () =
  let amps = [| Cnum.of_float 0.6; Cnum.zero; Cnum.zero; Cnum.of_float 0.8 |] in
  let state = Dense_state.of_amplitudes amps in
  check_int "two qubits inferred" 2 (Dense_state.qubits state);
  check_float "p1 qubit 1" 0.64 (Dense_state.probability_one state ~qubit:1)

let test_matches_dd_on_random () =
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:5 ~gates:40 () in
      let dense = dense_state_of_circuit circuit in
      let dd = dd_state_of_circuit circuit in
      check_cnum_array
        (Printf.sprintf "dense vs dd, seed %d" seed)
        dense dd)
    [ 1; 2; 3; 4 ]

let suite =
  [
    Alcotest.test_case "initial_state" `Quick test_initial_state;
    Alcotest.test_case "bell" `Quick test_bell;
    Alcotest.test_case "ghz" `Quick test_ghz;
    Alcotest.test_case "negative_control" `Quick test_negative_control;
    Alcotest.test_case "norm_preserved" `Quick test_norm_preserved;
    Alcotest.test_case "probability_and_measure" `Quick
      test_probability_and_measure;
    Alcotest.test_case "sample_basis_state" `Quick test_sample_basis_state;
    Alcotest.test_case "fidelity" `Quick test_fidelity;
    Alcotest.test_case "of_amplitudes" `Quick test_of_amplitudes;
    Alcotest.test_case "matches_dd_on_random" `Quick
      test_matches_dd_on_random;
  ]
