open Dd_complex
open Util

let prepared amplitudes =
  let circuit = Stateprep.circuit amplitudes in
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run engine circuit;
  engine

let fidelity_with engine target =
  let norm =
    sqrt (Array.fold_left (fun acc a -> acc +. Cnum.mag2 a) 0. target)
  in
  let normalised = Array.map (fun a -> Cnum.scale (1. /. norm) a) target in
  Dd_sim.Engine.fidelity_dense engine normalised

let test_prepare_real_states () =
  List.iter
    (fun target ->
      let engine = prepared target in
      check_float "fidelity 1" 1. (fidelity_with engine target))
    [
      [| Cnum.of_float 0.6; Cnum.of_float 0.8 |];
      [| Cnum.of_float 1.; Cnum.of_float 1.; Cnum.of_float 1.; Cnum.of_float 1. |];
      [| Cnum.of_float 0.1; Cnum.of_float 0.; Cnum.of_float 0.7;
         Cnum.of_float 0.2 |];
      Array.init 8 (fun i -> Cnum.of_float (float_of_int (i + 1)));
    ]

let test_prepare_complex_states () =
  List.iter
    (fun target ->
      let engine = prepared target in
      check_float "fidelity 1" 1. (fidelity_with engine target))
    [
      [| Cnum.make 0.5 0.5; Cnum.make 0. 0.70710678 |];
      [| Cnum.make 0.1 0.3; Cnum.make (-0.2) 0.1; Cnum.make 0. 0.;
         Cnum.make 0.5 (-0.4) |];
      Array.init 16 (fun i ->
          Cnum.of_polar (1. +. (0.1 *. float_of_int i)) (0.37 *. float_of_int i));
    ]

let test_prepare_basis_state () =
  let target = Array.make 8 Cnum.zero in
  target.(5) <- Cnum.one;
  let engine = prepared target in
  check_float "prepares |101>" 1.
    (Cnum.mag2 (Dd_sim.Engine.amplitude engine 5))

let test_prepare_random () =
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let n = 1 + Random.State.int rng 4 in
    let target =
      Array.init (1 lsl n) (fun _ ->
          Cnum.make
            (Random.State.float rng 2. -. 1.)
            (Random.State.float rng 2. -. 1.))
    in
    (* avoid the zero-vector corner *)
    target.(0) <- Cnum.add target.(0) Cnum.one;
    let engine = prepared target in
    check_bool "random state prepared" true
      (fidelity_with engine target > 1. -. 1e-9)
  done

let test_w_state () =
  let n = 5 in
  let circuit = Stateprep.w_state n in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run engine circuit;
  let expected = 1. /. float_of_int n in
  for k = 0 to n - 1 do
    check_float
      (Printf.sprintf "weight-one index %d" (1 lsl k))
      expected
      (Cnum.mag2 (Dd_sim.Engine.amplitude engine (1 lsl k)))
  done;
  check_float "no |00000> component" 0.
    (Cnum.mag2 (Dd_sim.Engine.amplitude engine 0))

let test_rejects_bad_input () =
  Alcotest.check_raises "zero vector"
    (Invalid_argument "Stateprep.circuit: zero vector") (fun () ->
      ignore (Stateprep.circuit [| Cnum.zero; Cnum.zero |]));
  Alcotest.check_raises "bad length"
    (Invalid_argument "Stateprep.circuit: length must be a power of two")
    (fun () -> ignore (Stateprep.circuit (Array.make 3 Cnum.one)))

let suite =
  [
    Alcotest.test_case "real_states" `Quick test_prepare_real_states;
    Alcotest.test_case "complex_states" `Quick test_prepare_complex_states;
    Alcotest.test_case "basis_state" `Quick test_prepare_basis_state;
    Alcotest.test_case "random_states" `Quick test_prepare_random;
    Alcotest.test_case "w_state" `Quick test_w_state;
    Alcotest.test_case "rejects_bad_input" `Quick test_rejects_bad_input;
  ]
