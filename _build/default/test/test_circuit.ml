open Util

let test_create_validates_range () =
  Alcotest.check_raises "qubit out of range"
    (Invalid_argument "Circuit: qubit 2 out of range (2 qubits)") (fun () ->
      ignore (Circuit.of_gates ~qubits:2 [ Gate.x 2 ]))

let test_create_validates_duplicates () =
  Alcotest.check_raises "control equals target"
    (Invalid_argument "Circuit: gate touches the same qubit twice") (fun () ->
      ignore (Circuit.of_gates ~qubits:2 [ Gate.cx 1 1 ]))

let test_create_validates_nested_repeat () =
  Alcotest.check_raises "bad gate inside repeat"
    (Invalid_argument "Circuit: qubit 5 out of range (2 qubits)") (fun () ->
      ignore
        (Circuit.create ~qubits:2
           [ Circuit.repeat 2 [ Circuit.gate (Gate.h 5) ] ]))

let test_flatten_unrolls () =
  let circuit =
    Circuit.create ~qubits:2
      [
        Circuit.gate (Gate.h 0);
        Circuit.repeat 3
          [ Circuit.gate (Gate.x 0); Circuit.gate (Gate.cx 0 1) ];
        Circuit.gate (Gate.h 1);
      ]
  in
  let gates = Circuit.flatten circuit in
  check_int "flattened length" 8 (List.length gates);
  check_int "gate_count agrees" 8 (Circuit.gate_count circuit)

let test_flatten_nested_repeats () =
  let circuit =
    Circuit.create ~qubits:1
      [ Circuit.repeat 2 [ Circuit.repeat 3 [ Circuit.gate (Gate.x 0) ] ] ]
  in
  check_int "2 * 3 unrolled" 6 (List.length (Circuit.flatten circuit))

let test_repeat_zero () =
  let circuit =
    Circuit.create ~qubits:1
      [ Circuit.repeat 0 [ Circuit.gate (Gate.x 0) ] ]
  in
  check_int "zero repeats vanish" 0 (Circuit.gate_count circuit)

let test_depth_parallel_gates () =
  let circuit =
    Circuit.of_gates ~qubits:4 [ Gate.h 0; Gate.h 1; Gate.h 2; Gate.h 3 ]
  in
  check_int "parallel layer has depth 1" 1 (Circuit.depth circuit)

let test_depth_serial_dependency () =
  let circuit =
    Circuit.of_gates ~qubits:3 [ Gate.h 0; Gate.cx 0 1; Gate.cx 1 2 ]
  in
  check_int "chain has depth 3" 3 (Circuit.depth circuit)

let test_append () =
  let a = Circuit.of_gates ~qubits:2 [ Gate.h 0 ] in
  let b = Circuit.of_gates ~qubits:2 [ Gate.cx 0 1 ] in
  check_int "append concatenates" 2 (Circuit.gate_count (Circuit.append a b))

let test_append_mismatch () =
  let a = Circuit.of_gates ~qubits:2 [ Gate.h 0 ] in
  let b = Circuit.of_gates ~qubits:3 [ Gate.h 0 ] in
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Circuit.append: qubit counts differ") (fun () ->
      ignore (Circuit.append a b))

let test_adjoint_undoes () =
  let circuit =
    Circuit.of_gates ~qubits:3
      [ Gate.h 0; Gate.t_gate 1; Gate.cx 0 2; Gate.rz 0.7 2; Gate.s 1 ]
  in
  let round_trip = Circuit.append circuit (Circuit.adjoint circuit) in
  let state = dd_state_of_circuit round_trip in
  check_cnum "back to |000>" Dd_complex.Cnum.one state.(0);
  check_float "norm 1" 1.
    (Array.fold_left
       (fun acc amp -> acc +. Dd_complex.Cnum.mag2 amp)
       0. state)

let test_adjoint_preserves_repeat_structure () =
  let circuit =
    Circuit.create ~qubits:2
      [ Circuit.repeat 4 [ Circuit.gate (Gate.t_gate 0) ] ]
  in
  let inv = Circuit.adjoint circuit in
  check_int "same gate count" (Circuit.gate_count circuit)
    (Circuit.gate_count inv)

let test_counts_by_name () =
  let circuit =
    Circuit.of_gates ~qubits:2 [ Gate.h 0; Gate.h 1; Gate.cx 0 1 ]
  in
  let counts = Circuit.counts_by_name circuit in
  check_int "two H" 2 (List.assoc "h" counts);
  check_int "one cx" 1 (List.assoc "cx" counts)

let test_gate_names () =
  Alcotest.(check string) "plain" "h" (Gate.name (Gate.h 0));
  Alcotest.(check string) "controlled" "cx" (Gate.name (Gate.cx 0 1));
  Alcotest.(check string) "double control" "ccx" (Gate.name (Gate.ccx 0 1 2));
  Alcotest.(check string) "negative control" "nx"
    (Gate.name (Gate.make ~controls:[ Gate.nctrl 1 ] Gate.X 0))

let test_gate_adjoint_pairs () =
  let pairs =
    [
      (Gate.S, Gate.Sdg); (Gate.T, Gate.Tdg); (Gate.Sx, Gate.Sxdg);
      (Gate.Sy, Gate.Sydg);
    ]
  in
  List.iter
    (fun (a, b) ->
      check_bool "adjoint pairs" true
        (Gate.adjoint (Gate.make a 0) = Gate.make b 0))
    pairs;
  check_bool "self adjoint" true (Gate.adjoint (Gate.h 3) = Gate.h 3)

let suite =
  [
    Alcotest.test_case "create_validates_range" `Quick
      test_create_validates_range;
    Alcotest.test_case "create_validates_duplicates" `Quick
      test_create_validates_duplicates;
    Alcotest.test_case "create_validates_nested" `Quick
      test_create_validates_nested_repeat;
    Alcotest.test_case "flatten_unrolls" `Quick test_flatten_unrolls;
    Alcotest.test_case "flatten_nested" `Quick test_flatten_nested_repeats;
    Alcotest.test_case "repeat_zero" `Quick test_repeat_zero;
    Alcotest.test_case "depth_parallel" `Quick test_depth_parallel_gates;
    Alcotest.test_case "depth_serial" `Quick test_depth_serial_dependency;
    Alcotest.test_case "append" `Quick test_append;
    Alcotest.test_case "append_mismatch" `Quick test_append_mismatch;
    Alcotest.test_case "adjoint_undoes" `Quick test_adjoint_undoes;
    Alcotest.test_case "adjoint_repeat" `Quick
      test_adjoint_preserves_repeat_structure;
    Alcotest.test_case "counts_by_name" `Quick test_counts_by_name;
    Alcotest.test_case "gate_names" `Quick test_gate_names;
    Alcotest.test_case "gate_adjoint_pairs" `Quick test_gate_adjoint_pairs;
  ]
