open Dd_complex
open Util

let test_add () =
  check_cnum "1 + i" (Cnum.make 1. 1.)
    (Cnum.add Cnum.one (Cnum.make 0. 1.))

let test_sub () =
  check_cnum "(3+2i) - (1+5i)" (Cnum.make 2. (-3.))
    (Cnum.sub (Cnum.make 3. 2.) (Cnum.make 1. 5.))

let test_mul () =
  check_cnum "(1+i)(1-i) = 2" (Cnum.make 2. 0.)
    (Cnum.mul (Cnum.make 1. 1.) (Cnum.make 1. (-1.)));
  check_cnum "i*i = -1" (Cnum.make (-1.) 0.)
    (Cnum.mul (Cnum.make 0. 1.) (Cnum.make 0. 1.))

let test_div () =
  let a = Cnum.make 3. 7. and b = Cnum.make (-2.) 0.5 in
  check_cnum "a/b*b = a" a (Cnum.mul (Cnum.div a b) b)

let test_div_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Cnum.div Cnum.one Cnum.zero))

let test_conj () =
  check_cnum "conj" (Cnum.make 2. (-3.)) (Cnum.conj (Cnum.make 2. 3.))

let test_neg () =
  check_cnum "neg" (Cnum.make (-2.) 3.) (Cnum.neg (Cnum.make 2. (-3.)))

let test_scale () =
  check_cnum "scale" (Cnum.make 3. (-1.5)) (Cnum.scale 1.5 (Cnum.make 2. (-1.)))

let test_mag () =
  check_float "mag2 of 3+4i" 25. (Cnum.mag2 (Cnum.make 3. 4.));
  check_float "mag of 3+4i" 5. (Cnum.mag (Cnum.make 3. 4.))

let test_polar () =
  check_cnum "polar pi/2" (Cnum.make 0. 1.) (Cnum.of_polar 1. (Float.pi /. 2.));
  check_cnum "polar pi" (Cnum.make (-1.) 0.) (Cnum.of_polar 1. Float.pi)

let test_approx () =
  check_bool "approx zero" true (Cnum.approx_zero (Cnum.make 1e-15 (-1e-14)));
  check_bool "not approx zero" false (Cnum.approx_zero (Cnum.make 1e-3 0.));
  check_bool "approx equal" true
    (Cnum.approx_equal (Cnum.make 1. 1.) (Cnum.make (1. +. 1e-14) 1.))

let test_exact_flags () =
  check_bool "exact zero" true (Cnum.is_exact_zero Cnum.zero);
  check_bool "exact one" true (Cnum.is_exact_one Cnum.one);
  check_bool "tiny is not exact zero" false
    (Cnum.is_exact_zero (Cnum.make 1e-30 0.))

let test_compare_mag () =
  check_bool "larger magnitude wins" true
    (Cnum.compare_mag (Cnum.make 2. 0.) (Cnum.make 1. 1.) > 0);
  check_bool "ties broken by re" true
    (Cnum.compare_mag (Cnum.make 0. 1.) (Cnum.make 1. 0.) < 0)

let test_intern_constants () =
  let table = Ctable.create () in
  let z = Ctable.intern table (Cnum.make 0. 0.) in
  check_bool "interned zero is the exact constant" true (z == Cnum.zero);
  let o = Ctable.intern table (Cnum.make 1. 0.) in
  check_bool "interned one is the exact constant" true (o == Cnum.one)

let test_intern_snaps_noise () =
  let table = Ctable.create () in
  let z = Ctable.intern table (Cnum.make 1e-13 (-1e-13)) in
  check_bool "FP noise snaps to exact zero" true (Cnum.is_exact_zero z);
  let o = Ctable.intern table (Cnum.make (1. -. 1e-12) 1e-13) in
  check_bool "near-one snaps to exact one" true (Cnum.is_exact_one o)

let test_intern_shares () =
  let table = Ctable.create () in
  let a = Ctable.intern table (Cnum.make 0.25 0.75) in
  let b = Ctable.intern table (Cnum.make (0.25 +. 1e-12) 0.75) in
  check_bool "nearby values share one representative" true (a == b);
  check_int "same tag" (Cnum.tag a) (Cnum.tag b)

let test_intern_distinct () =
  let table = Ctable.create () in
  let a = Ctable.intern table (Cnum.make 0.25 0.) in
  let b = Ctable.intern table (Cnum.make 0.5 0.) in
  check_bool "distinct values get distinct tags" true
    (Cnum.tag a <> Cnum.tag b)

let test_intern_idempotent () =
  let table = Ctable.create () in
  let a = Ctable.intern table (Cnum.make 0.3 0.4) in
  let b = Ctable.intern table a in
  check_bool "interning a canonical value is the identity" true (a == b)

let test_table_size () =
  let table = Ctable.create () in
  let initial = Ctable.size table in
  ignore (Ctable.intern table (Cnum.make 0.123 0.));
  ignore (Ctable.intern table (Cnum.make 0.123 0.));
  check_int "size grows once per distinct value" (initial + 1)
    (Ctable.size table)

let test_bucket_boundary () =
  (* values straddling a bucket boundary but within tolerance must merge *)
  let table = Ctable.create ~tolerance:1e-6 () in
  let a = Ctable.intern table (Cnum.make (1.5e-6 +. 4.9e-7) 0.) in
  let b = Ctable.intern table (Cnum.make (1.5e-6 -. 4.9e-7) 0.) in
  check_bool "boundary straddlers merge" true (a == b)

let suite =
  [
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "sub" `Quick test_sub;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "div" `Quick test_div;
    Alcotest.test_case "div_by_zero" `Quick test_div_by_zero;
    Alcotest.test_case "conj" `Quick test_conj;
    Alcotest.test_case "neg" `Quick test_neg;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "mag" `Quick test_mag;
    Alcotest.test_case "polar" `Quick test_polar;
    Alcotest.test_case "approx" `Quick test_approx;
    Alcotest.test_case "exact_flags" `Quick test_exact_flags;
    Alcotest.test_case "compare_mag" `Quick test_compare_mag;
    Alcotest.test_case "intern_constants" `Quick test_intern_constants;
    Alcotest.test_case "intern_snaps_noise" `Quick test_intern_snaps_noise;
    Alcotest.test_case "intern_shares" `Quick test_intern_shares;
    Alcotest.test_case "intern_distinct" `Quick test_intern_distinct;
    Alcotest.test_case "intern_idempotent" `Quick test_intern_idempotent;
    Alcotest.test_case "table_size" `Quick test_table_size;
    Alcotest.test_case "bucket_boundary" `Quick test_bucket_boundary;
  ]
