open Util

let prepared_supremacy () =
  let circuit = Supremacy.circuit ~seed:4 ~rows:3 ~cols:3 ~cycles:14 () in
  let engine = Dd_sim.Engine.create 9 in
  Dd_sim.Engine.run engine circuit;
  engine

let test_ideal_sampler_scores_high () =
  let engine = prepared_supremacy () in
  let score = Xeb.sample_and_score ~shots:2000 engine in
  check_bool
    (Printf.sprintf "ideal sampler scores near 1 (got %.3f)" score)
    true
    (score > 0.5 && score < 1.6)

let test_uniform_sampler_scores_zero () =
  let engine = prepared_supremacy () in
  let score = Xeb.uniform_score ~shots:2000 engine in
  check_bool
    (Printf.sprintf "uniform sampler scores near 0 (got %.3f)" score)
    true
    (abs_float score < 0.25)

let test_basis_state_extremes () =
  (* for a basis state, sampling it gives the maximal score 2^n - 1,
     sampling anything else gives -1 *)
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.apply_gate engine (Gate.x 2);
  check_float "matching sample" (float_of_int ((1 lsl 4) - 1))
    (Xeb.linear_fidelity engine [ 4 ]);
  check_float "non-matching sample" (-1.) (Xeb.linear_fidelity engine [ 0 ])

let test_uniform_state_scores_zero_exactly () =
  (* on the uniform superposition every bitstring has p = 1/2^n: the score
     is exactly 0 for any sample set *)
  let engine = Dd_sim.Engine.create 5 in
  List.iter (Dd_sim.Engine.apply_gate engine) (List.init 5 Gate.h);
  check_float "uniform state" 0. (Xeb.linear_fidelity engine [ 0; 7; 31; 12 ])

let test_empty_samples_rejected () =
  let engine = Dd_sim.Engine.create 2 in
  Alcotest.check_raises "no samples"
    (Invalid_argument "Xeb.linear_fidelity: no samples") (fun () ->
      ignore (Xeb.linear_fidelity engine []))

let suite =
  [
    Alcotest.test_case "ideal_scores_high" `Quick
      test_ideal_sampler_scores_high;
    Alcotest.test_case "uniform_scores_zero" `Quick
      test_uniform_sampler_scores_zero;
    Alcotest.test_case "basis_extremes" `Quick test_basis_state_extremes;
    Alcotest.test_case "uniform_state_zero" `Quick
      test_uniform_state_scores_zero_exactly;
    Alcotest.test_case "empty_rejected" `Quick test_empty_samples_rejected;
  ]
