test/test_internals.ml: Alcotest Dd Dd_sim Format Gate Standard String Util
