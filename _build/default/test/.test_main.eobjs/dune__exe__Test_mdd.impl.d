test/test_mdd.ml: Alcotest Array Cnum Dd Dd_complex Gate List Printf Util
