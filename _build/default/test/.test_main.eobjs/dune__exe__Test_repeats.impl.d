test/test_repeats.ml: Alcotest Circuit Dd_sim Gate Grover List Repeats Standard Util
