test/test_dot.ml: Alcotest Dd Dd_complex Gate String Util
