test/test_sparse.ml: Alcotest Cnum Dd_complex Gate List Printf Sparse_state Standard Util
