test/test_xeb.ml: Alcotest Dd_sim Gate List Printf Supremacy Util Xeb
