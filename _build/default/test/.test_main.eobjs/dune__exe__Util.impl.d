test/util.ml: Alcotest Array Circuit Cnum Dd Dd_complex Dd_sim Dense_state Gate List Printf
