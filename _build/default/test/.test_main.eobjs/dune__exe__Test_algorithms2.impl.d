test/test_algorithms2.ml: Alcotest Array Dd Dd_sim Deutsch_jozsa Float Gate List Printf Qaoa Qpe Util
