test/test_benchmark_files.ml: Alcotest Circuit Dd_complex Dd_sim Filename List Printf Qasm Sys Util
