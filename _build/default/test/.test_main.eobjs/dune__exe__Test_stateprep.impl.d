test/test_stateprep.ml: Alcotest Array Circuit Cnum Dd_complex Dd_sim List Printf Random Stateprep Util
