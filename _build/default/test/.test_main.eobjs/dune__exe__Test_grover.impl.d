test/test_grover.ml: Alcotest Array Circuit Dd Dd_complex Dd_sim Gate Grover List Printf Util
