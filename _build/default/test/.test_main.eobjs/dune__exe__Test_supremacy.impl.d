test/test_supremacy.ml: Alcotest Circuit Dd_sim Gate Hashtbl List Printf Supremacy Util
