test/test_observable.ml: Alcotest Array Dd_complex Dd_sim Gate List Standard Util
