test/test_strategies.ml: Alcotest Circuit Dd Dd_sim Gate Grover List Printf Standard Util
