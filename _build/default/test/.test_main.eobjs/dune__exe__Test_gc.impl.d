test/test_gc.ml: Alcotest Circuit Dd Dd_complex Dd_sim Gate List Standard Util
