test/test_cnum.ml: Alcotest Cnum Ctable Dd_complex Float Util
