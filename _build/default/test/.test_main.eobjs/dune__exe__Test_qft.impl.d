test/test_qft.ml: Alcotest Array Circuit Cnum Dd Dd_complex Dd_sim Float Gate List Printf Qft Util
