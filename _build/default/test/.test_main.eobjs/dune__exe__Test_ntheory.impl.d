test/test_ntheory.ml: Alcotest List Ntheory Util
