test/test_props.ml: Array Circuit Cnum Dd Dd_complex Dd_sim Dense_state Gate List Ntheory Optimize Printf QCheck QCheck_alcotest Qasm Random Repeats Standard String
