test/test_qasm.ml: Alcotest Circuit Dd_complex Dd_sim Float Gate List Qasm Standard String Util
