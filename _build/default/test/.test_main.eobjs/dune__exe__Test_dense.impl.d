test/test_dense.ml: Alcotest Cnum Dd_complex Dense_state Gate List Printf Random Standard Util
