test/test_engine.ml: Alcotest Cnum Dd Dd_complex Dd_sim Gate List Printf Standard Util
