test/test_serialize.ml: Alcotest Array Circuit Dd Dd_sim Filename Printf Standard Sys Util
