test/test_plot.ml: Alcotest Dd_sim List String Util
