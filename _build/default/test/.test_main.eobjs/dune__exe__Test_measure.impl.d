test/test_measure.ml: Alcotest Array Cnum Dd Dd_complex Random Util
