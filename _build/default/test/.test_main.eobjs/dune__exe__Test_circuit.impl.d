test/test_circuit.ml: Alcotest Array Circuit Dd_complex Gate List Util
