test/test_shor.ml: Alcotest Array Circuit Dd_sim Gate List Ntheory Printf Qft Shor Util
