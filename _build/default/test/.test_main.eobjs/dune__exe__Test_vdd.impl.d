test/test_vdd.ml: Alcotest Array Cnum Dd Dd_complex Printf Util
