test/test_algorithms3.ml: Alcotest Counting Dd Dd_complex Dd_sim Gf2 List Printf Random Simon Util
