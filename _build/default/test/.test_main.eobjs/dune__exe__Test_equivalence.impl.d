test/test_equivalence.ml: Alcotest Circuit Dd_complex Dd_sim Gate List Optimize Printf Qft Standard Util
