test/test_optimize.ml: Alcotest Circuit Float Gate List Optimize Printf Standard Util
