test/test_approx.ml: Alcotest Array Cnum Dd Dd_complex Dd_sim Gate List Printf Qft Standard Supremacy Util
