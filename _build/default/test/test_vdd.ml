open Dd_complex
open Util

let c = Cnum.make
let r = Cnum.of_float

let test_basis_amplitudes () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:3 5 in
  let dense = Dd.Vdd.to_array e ~n:3 in
  Array.iteri
    (fun i amp ->
      check_cnum
        (Printf.sprintf "amplitude %d" i)
        (if i = 5 then Cnum.one else Cnum.zero)
        amp)
    dense

let test_basis_size_linear () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:10 123 in
  check_int "basis state has one node per qubit" 10 (Dd.Vdd.node_count e)

let test_roundtrip () =
  let ctx = fresh_ctx () in
  let v = [| c 0.5 0.; c 0. 0.5; c (-0.5) 0.; c 0. (-0.5) |] in
  check_cnum_array "of_array/to_array roundtrip" v
    (Dd.Vdd.to_array (Dd.Vdd.of_array ctx v) ~n:2)

let test_roundtrip_with_zero_block () =
  let ctx = fresh_ctx () in
  let v = [| r 0.; r 0.; r 0.; r 0.; r 0.5; r 0.5; r 0.5; r 0.5 |] in
  let e = Dd.Vdd.of_array ctx v in
  check_cnum_array "zero block preserved" v (Dd.Vdd.to_array e ~n:3);
  (* |1> (x) |++> needs one node per level only *)
  check_int "zero-stub vector is compact" 3 (Dd.Vdd.node_count e)

let test_amplitude_path () =
  let ctx = fresh_ctx () in
  let v = Array.init 8 (fun i -> r (float_of_int i /. 10.)) in
  let e = Dd.Vdd.of_array ctx v in
  for i = 0 to 7 do
    check_cnum
      (Printf.sprintf "amplitude %d" i)
      v.(i)
      (Dd.Vdd.amplitude e ~n:3 i)
  done

let test_canonicity () =
  (* the paper's Fig. 2c example: [0; 0; 0; 0; 1/2; -1/2; 1/2; 1/2] built
     in two different ways must produce the identical edge *)
  let ctx = fresh_ctx () in
  let v =
    [| r 0.; r 0.; r 0.; r 0.; r 0.5; r (-0.5); r 0.5; r 0.5 |]
  in
  let e1 = Dd.Vdd.of_array ctx v in
  let half = Dd.Vdd.of_array ctx (Array.map (fun x -> Cnum.scale 0.5 x) v) in
  let e2 = Dd.Vdd.scale ctx (r 2.) half in
  check_bool "same vector, same canonical edge" true (Dd.Vdd.equal e1 e2)

let test_sharing () =
  (* equal sub-vectors are shared: |+>^n has n nodes, not 2^n - 1 *)
  let ctx = fresh_ctx () in
  let n = 8 in
  let amp = r (1. /. sqrt (float_of_int (1 lsl n))) in
  let v = Array.make (1 lsl n) amp in
  check_int "uniform superposition is linear-size" n
    (Dd.Vdd.node_count (Dd.Vdd.of_array ctx v))

let test_add_matches_dense () =
  let ctx = fresh_ctx () in
  let va = [| c 0.1 0.2; c 0.3 0.; c 0. (-0.4); c 0.5 0.5 |] in
  let vb = [| c 0.9 0.; c (-0.3) 0.1; c 0.2 0.; c 0. 0. |] in
  let expected = Array.init 4 (fun i -> Cnum.add va.(i) vb.(i)) in
  let sum = Dd.Vdd.add ctx (Dd.Vdd.of_array ctx va) (Dd.Vdd.of_array ctx vb) in
  check_cnum_array "DD addition matches dense" expected
    (Dd.Vdd.to_array sum ~n:2)

let test_add_zero () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:4 7 in
  check_bool "x + 0 = x" true (Dd.Vdd.equal e (Dd.Vdd.add ctx e Dd.Vdd.zero));
  check_bool "0 + x = x" true (Dd.Vdd.equal e (Dd.Vdd.add ctx Dd.Vdd.zero e))

let test_add_commutative_canonical () =
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:3 1 in
  let b = Dd.Vdd.scale ctx (c 0. 1.) (Dd.Vdd.basis ctx ~n:3 6) in
  check_bool "a + b == b + a canonically" true
    (Dd.Vdd.equal (Dd.Vdd.add ctx a b) (Dd.Vdd.add ctx b a))

let test_add_cancellation () =
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:3 5 in
  let minus_a = Dd.Vdd.scale ctx (r (-1.)) a in
  check_bool "x + (-x) = 0" true
    (Dd.Types.v_is_zero (Dd.Vdd.add ctx a minus_a))

let test_scale_zero () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:2 3 in
  check_bool "0 * x = zero edge" true
    (Dd.Types.v_is_zero (Dd.Vdd.scale ctx Cnum.zero e))

let test_dot_orthonormal () =
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:3 2 and b = Dd.Vdd.basis ctx ~n:3 5 in
  check_cnum "<a|a> = 1" Cnum.one (Dd.Vdd.dot ctx a a);
  check_cnum "<a|b> = 0" Cnum.zero (Dd.Vdd.dot ctx a b)

let test_dot_conjugate_linear () =
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:2 1 in
  let ia = Dd.Vdd.scale ctx (c 0. 1.) a in
  check_cnum "<i a|a> = -i" (c 0. (-1.)) (Dd.Vdd.dot ctx ia a);
  check_cnum "<a|i a> = i" (c 0. 1.) (Dd.Vdd.dot ctx a ia)

let test_dot_matches_dense () =
  let ctx = fresh_ctx () in
  let va = [| c 0.1 0.2; c 0.3 0.; c 0. (-0.4); c 0.5 0.5 |] in
  let vb = [| c 0.9 0.; c (-0.3) 0.1; c 0.2 0.; c 0.1 0.7 |] in
  let expected = ref Cnum.zero in
  Array.iteri
    (fun i x -> expected := Cnum.add !expected (Cnum.mul (Cnum.conj x) vb.(i)))
    va;
  check_cnum "inner product matches dense" !expected
    (Dd.Vdd.dot ctx (Dd.Vdd.of_array ctx va) (Dd.Vdd.of_array ctx vb))

let test_of_array_bad_length () =
  let ctx = fresh_ctx () in
  Alcotest.check_raises "length 3 rejected"
    (Invalid_argument "Vdd.of_array: length must be a positive power of two")
    (fun () -> ignore (Dd.Vdd.of_array ctx [| r 1.; r 0.; r 0. |]))

let test_normalized_child_weight () =
  (* after normalisation the larger-magnitude child weight is exactly 1 *)
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.of_array ctx [| r 0.25; r 0.75 |] in
  let node = e.Dd.Types.vt in
  let larger = node.Dd.Types.v_high.Dd.Types.vw in
  check_bool "pivot child weight is exactly one" true
    (Cnum.is_exact_one larger);
  check_cnum "edge weight carries the factor" (r 0.75) e.Dd.Types.vw

let test_unique_table_hit () =
  let ctx = fresh_ctx () in
  let before = Dd.Context.v_unique_size ctx in
  let e1 = Dd.Vdd.basis ctx ~n:5 9 in
  let mid = Dd.Context.v_unique_size ctx in
  let e2 = Dd.Vdd.basis ctx ~n:5 9 in
  let after = Dd.Context.v_unique_size ctx in
  check_bool "same state" true (Dd.Vdd.equal e1 e2);
  check_bool "first build creates nodes" true (mid > before);
  check_int "second build reuses every node" mid after

let suite =
  [
    Alcotest.test_case "basis_amplitudes" `Quick test_basis_amplitudes;
    Alcotest.test_case "basis_size_linear" `Quick test_basis_size_linear;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "roundtrip_zero_block" `Quick
      test_roundtrip_with_zero_block;
    Alcotest.test_case "amplitude_path" `Quick test_amplitude_path;
    Alcotest.test_case "canonicity" `Quick test_canonicity;
    Alcotest.test_case "sharing" `Quick test_sharing;
    Alcotest.test_case "add_matches_dense" `Quick test_add_matches_dense;
    Alcotest.test_case "add_zero" `Quick test_add_zero;
    Alcotest.test_case "add_commutative" `Quick test_add_commutative_canonical;
    Alcotest.test_case "add_cancellation" `Quick test_add_cancellation;
    Alcotest.test_case "scale_zero" `Quick test_scale_zero;
    Alcotest.test_case "dot_orthonormal" `Quick test_dot_orthonormal;
    Alcotest.test_case "dot_conjugate_linear" `Quick
      test_dot_conjugate_linear;
    Alcotest.test_case "dot_matches_dense" `Quick test_dot_matches_dense;
    Alcotest.test_case "of_array_bad_length" `Quick test_of_array_bad_length;
    Alcotest.test_case "normalized_child_weight" `Quick
      test_normalized_child_weight;
    Alcotest.test_case "unique_table_hit" `Quick test_unique_table_hit;
  ]
