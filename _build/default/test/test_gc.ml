open Util

let test_collect_frees_dead_nodes () =
  let ctx = fresh_ctx () in
  (* build several throwaway states, keep only one *)
  let keep = Dd.Vdd.basis ctx ~n:6 21 in
  for i = 0 to 30 do
    ignore (Dd.Vdd.basis ctx ~n:6 i)
  done;
  let live_before = Dd.Context.live_v_nodes ctx in
  let removed_v, _removed_m =
    Dd.Context.collect ctx ~v_roots:[ keep ] ~m_roots:[]
  in
  check_bool "something was reclaimed" true (removed_v > 0);
  check_int "live = before - removed" (live_before - removed_v)
    (Dd.Context.live_v_nodes ctx);
  check_int "rooted state intact" 6 (Dd.Vdd.node_count keep)

let test_collect_keeps_rooted_matrix () =
  let ctx = fresh_ctx () in
  let keep = Dd.Mdd.gate ctx ~n:5 ~target:2 (Gate.matrix Gate.H) in
  ignore (Dd.Mdd.gate ctx ~n:5 ~target:0 (Gate.matrix Gate.X));
  ignore (Dd.Mdd.identity ctx 5);
  let _, removed_m = Dd.Context.collect ctx ~v_roots:[] ~m_roots:[ keep ] in
  check_bool "dead matrices reclaimed" true (removed_m > 0);
  (* the kept matrix still works *)
  let v = Dd.Vdd.basis ctx ~n:5 0 in
  let w = Dd.Mdd.apply ctx keep v in
  check_float "H still acts correctly" 0.5
    (Dd_complex.Cnum.mag2 (Dd.Vdd.amplitude w ~n:5 4))

let test_operations_after_collect () =
  (* hash-consing must still be canonical after sweeping *)
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:4 3 in
  ignore (Dd.Vdd.basis ctx ~n:4 9);
  ignore (Dd.Context.collect ctx ~v_roots:[ a ] ~m_roots:[]);
  let b = Dd.Vdd.basis ctx ~n:4 3 in
  check_bool "rebuilding a live state reuses it canonically" true
    (Dd.Vdd.equal a b);
  let again = Dd.Vdd.basis ctx ~n:4 9 in
  check_cnum "rebuilt dead state is correct" Dd_complex.Cnum.one
    (Dd.Vdd.amplitude again ~n:4 9)

let test_engine_collect () =
  let engine = Dd_sim.Engine.create 8 in
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:5 ~qubits:8 ~gates:150 ());
  let ctx = Dd_sim.Engine.context engine in
  let live_before = Dd.Context.live_v_nodes ctx in
  let reference = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:8 in
  let removed_v, _ = Dd_sim.Engine.collect_garbage engine in
  check_bool "intermediate states reclaimed" true (removed_v > 0);
  check_bool "live nodes dropped" true
    (Dd.Context.live_v_nodes ctx < live_before);
  (* state unchanged and engine fully functional afterwards *)
  check_cnum_array "state intact after GC" reference
    (Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:8);
  Dd_sim.Engine.apply_gate engine (Gate.h 0);
  check_float "still unitary after GC" 1.
    (Dd.Measure.norm2 ctx (Dd_sim.Engine.state engine))

let test_gc_mid_simulation_equivalence () =
  (* interleaving GC with simulation must not change the result *)
  let circuit = Standard.random_circuit ~seed:77 ~qubits:6 ~gates:60 () in
  let gates = Circuit.flatten circuit in
  let plain = Dd_sim.Engine.create 6 in
  List.iter (Dd_sim.Engine.apply_gate plain) gates;
  let collected = Dd_sim.Engine.create 6 in
  List.iteri
    (fun i gate ->
      Dd_sim.Engine.apply_gate collected gate;
      if i mod 10 = 9 then ignore (Dd_sim.Engine.collect_garbage collected))
    gates;
  check_cnum_array "same state with and without GC"
    (Dd.Vdd.to_array (Dd_sim.Engine.state plain) ~n:6)
    (Dd.Vdd.to_array (Dd_sim.Engine.state collected) ~n:6)

let test_collect_empty_roots () =
  let ctx = fresh_ctx () in
  ignore (Dd.Vdd.basis ctx ~n:3 1);
  ignore (Dd.Context.collect ctx ~v_roots:[] ~m_roots:[]);
  check_int "everything reclaimed with no roots" 0
    (Dd.Context.live_v_nodes ctx)

let suite =
  [
    Alcotest.test_case "collect_frees_dead" `Quick
      test_collect_frees_dead_nodes;
    Alcotest.test_case "collect_keeps_matrix" `Quick
      test_collect_keeps_rooted_matrix;
    Alcotest.test_case "operations_after_collect" `Quick
      test_operations_after_collect;
    Alcotest.test_case "engine_collect" `Quick test_engine_collect;
    Alcotest.test_case "gc_mid_simulation" `Quick
      test_gc_mid_simulation_equivalence;
    Alcotest.test_case "collect_empty_roots" `Quick test_collect_empty_roots;
  ]
