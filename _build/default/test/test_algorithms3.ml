(* GF(2) algebra, Simon's algorithm and quantum counting. *)

open Util

(* --- GF(2) ----------------------------------------------------------- *)

let test_gf2_dot () =
  check_bool "parity of 0b101 . 0b100" true (Gf2.dot 0b101 0b100);
  check_bool "parity of 0b101 . 0b101" false (Gf2.dot 0b101 0b101);
  check_bool "zero vector" false (Gf2.dot 0 0b111)

let test_gf2_rank () =
  let system = Gf2.create 4 in
  check_bool "first insert independent" true (Gf2.add_equation system 0b1010);
  check_bool "second insert independent" true (Gf2.add_equation system 0b0110);
  check_bool "xor of both is dependent" false
    (Gf2.add_equation system 0b1100);
  check_int "rank 2" 2 (Gf2.rank system)

let test_gf2_zero_rejected () =
  let system = Gf2.create 3 in
  check_bool "zero vector is dependent" false (Gf2.add_equation system 0)

let test_gf2_nullspace () =
  (* s = 0b101; equations orthogonal to s *)
  let system = Gf2.create 3 in
  ignore (Gf2.add_equation system 0b010);
  ignore (Gf2.add_equation system 0b111);
  (* rank 2 over 3 bits -> unique nullspace direction *)
  match Gf2.nullspace_vector system with
  | Some s ->
    check_int "recovered s" 0b101 s
  | None -> Alcotest.fail "expected a nullspace vector"

let test_gf2_nullspace_underdetermined () =
  let system = Gf2.create 4 in
  ignore (Gf2.add_equation system 0b0001);
  check_bool "too few equations" true (Gf2.nullspace_vector system = None)

let test_gf2_random_consistency () =
  (* for random full chains: every returned nullspace vector is orthogonal
     to all inserted equations *)
  let rng = Random.State.make [| 3 |] in
  for _ = 1 to 20 do
    let n = 2 + Random.State.int rng 8 in
    let s = 1 + Random.State.int rng ((1 lsl n) - 1) in
    let system = Gf2.create n in
    let guard = ref 0 in
    while Gf2.rank system < n - 1 && !guard < 1000 do
      incr guard;
      let v = Random.State.int rng (1 lsl n) in
      if not (Gf2.dot v s) then ignore (Gf2.add_equation system v)
    done;
    match Gf2.nullspace_vector system with
    | Some found -> check_int "recovers the planted s" s found
    | None -> Alcotest.fail "no solution found"
  done

(* --- Simon ----------------------------------------------------------- *)

let test_simon_canonical_function () =
  let f = Simon.canonical_function ~n:4 ~s:0b0110 in
  for x = 0 to 15 do
    check_int
      (Printf.sprintf "two-to-one at %d" x)
      (f x)
      (f (x lxor 0b0110))
  done

let test_simon_oracle_xors () =
  let ctx = fresh_ctx () in
  let n = 3 in
  let f x = (x * 3) land 7 in
  let oracle = Simon.oracle_dd ctx ~n f in
  (* check a few basis-state mappings: |x>|y> -> |x>|y xor f x> *)
  List.iter
    (fun (x, y) ->
      let input = x lor (y lsl n) in
      let expected = x lor ((y lxor f x) lsl n) in
      check_cnum
        (Printf.sprintf "oracle on x=%d y=%d" x y)
        Dd_complex.Cnum.one
        (Dd.Mdd.entry oracle ~n:(2 * n) ~row:expected ~col:input))
    [ (0, 0); (3, 5); (7, 7); (2, 1) ]

let test_simon_recovers_period () =
  List.iter
    (fun (n, s) ->
      let f = Simon.canonical_function ~n ~s in
      check_bool
        (Printf.sprintf "simon n=%d s=%d" n s)
        true
        (Simon.recover_period ~n f = Some s))
    [ (2, 1); (2, 3); (3, 5); (4, 9); (5, 21); (6, 42) ]

let test_simon_single_bit () =
  check_bool "n=1 periodic" true
    (Simon.recover_period ~n:1 (fun _ -> 0) = Some 1);
  check_bool "n=1 injective has no period" true
    (Simon.recover_period ~n:1 (fun x -> x) = None)

(* --- Quantum counting ------------------------------------------------ *)

let close_to expected actual slack = abs_float (expected -. actual) <= slack

let test_counting_zero_marked () =
  let result = Counting.estimate ~precision:6 ~n:4 ~marked:[] () in
  check_bool "no marked items -> count 0" true
    (close_to 0. result.Counting.estimated_count 0.2)

let test_counting_single_marked () =
  let result = Counting.estimate ~precision:6 ~n:4 ~marked:[ 11 ] () in
  check_bool
    (Printf.sprintf "one marked item (got %.3f)"
       result.Counting.estimated_count)
    true
    (close_to 1. result.Counting.estimated_count 0.6)

let test_counting_quarter_marked () =
  let result =
    Counting.estimate ~precision:7 ~n:4 ~marked:[ 1; 5; 9; 13 ] ()
  in
  check_bool
    (Printf.sprintf "four marked items (got %.3f)"
       result.Counting.estimated_count)
    true
    (close_to 4. result.Counting.estimated_count 0.8)

let test_counting_scales () =
  let result =
    Counting.estimate ~precision:7 ~n:5 ~marked:(List.init 8 (fun i -> 4 * i)) ()
  in
  check_bool
    (Printf.sprintf "eight of thirty-two (got %.3f)"
       result.Counting.estimated_count)
    true
    (close_to 8. result.Counting.estimated_count 1.5)

let test_counting_validates () =
  Alcotest.check_raises "duplicate marked"
    (Invalid_argument "Counting: duplicate marked element") (fun () ->
      ignore (Counting.estimate ~precision:4 ~n:3 ~marked:[ 1; 1 ] ()))

let test_grover_operator_unitary () =
  let engine = Dd_sim.Engine.create 4 in
  let ctx = Dd_sim.Engine.context engine in
  let g = Counting.grover_operator engine ~marked:[ 2; 7 ] in
  check_bool "G is unitary" true
    (Dd.Mdd.equal (Dd.Mdd.identity ctx 4)
       (Dd.Mdd.mul ctx (Dd.Mdd.adjoint ctx g) g))

let suite =
  [
    Alcotest.test_case "gf2_dot" `Quick test_gf2_dot;
    Alcotest.test_case "gf2_rank" `Quick test_gf2_rank;
    Alcotest.test_case "gf2_zero" `Quick test_gf2_zero_rejected;
    Alcotest.test_case "gf2_nullspace" `Quick test_gf2_nullspace;
    Alcotest.test_case "gf2_underdetermined" `Quick
      test_gf2_nullspace_underdetermined;
    Alcotest.test_case "gf2_random" `Quick test_gf2_random_consistency;
    Alcotest.test_case "simon_function" `Quick test_simon_canonical_function;
    Alcotest.test_case "simon_oracle" `Quick test_simon_oracle_xors;
    Alcotest.test_case "simon_recovers" `Quick test_simon_recovers_period;
    Alcotest.test_case "simon_single_bit" `Quick test_simon_single_bit;
    Alcotest.test_case "counting_zero" `Quick test_counting_zero_marked;
    Alcotest.test_case "counting_single" `Quick test_counting_single_marked;
    Alcotest.test_case "counting_quarter" `Quick
      test_counting_quarter_marked;
    Alcotest.test_case "counting_scales" `Quick test_counting_scales;
    Alcotest.test_case "counting_validates" `Quick test_counting_validates;
    Alcotest.test_case "grover_operator_unitary" `Quick
      test_grover_operator_unitary;
  ]
