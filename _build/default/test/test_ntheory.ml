open Util

let test_gcd () =
  check_int "gcd(12,18)" 6 (Ntheory.gcd 12 18);
  check_int "gcd(17,5)" 1 (Ntheory.gcd 17 5);
  check_int "gcd(0,7)" 7 (Ntheory.gcd 0 7)

let test_egcd () =
  let g, x, y = Ntheory.egcd 240 46 in
  check_int "gcd" 2 g;
  check_int "bezout identity" 2 ((240 * x) + (46 * y))

let test_mod_inv () =
  check_int "7^-1 mod 15" 13 (Ntheory.mod_inv 7 15);
  check_int "inverse works" 1 (7 * 13 mod 15);
  Alcotest.check_raises "non-coprime"
    (Invalid_argument "Ntheory.mod_inv: not coprime") (fun () ->
      ignore (Ntheory.mod_inv 6 15))

let test_mod_pow () =
  check_int "2^10 mod 1000" 24 (Ntheory.mod_pow 2 10 1000);
  check_int "a^0" 1 (Ntheory.mod_pow 5 0 21);
  check_int "fermat" 1 (Ntheory.mod_pow 3 16 17);
  check_int "big exponent" (Ntheory.mod_pow 7 100 11623)
    (let rec loop acc k = if k = 0 then acc else loop (acc * 7 mod 11623) (k - 1) in
     loop 1 100)

let test_is_prime () =
  check_bool "2" true (Ntheory.is_prime 2);
  check_bool "17" true (Ntheory.is_prime 17);
  check_bool "15" false (Ntheory.is_prime 15);
  check_bool "1" false (Ntheory.is_prime 1);
  check_bool "7919" true (Ntheory.is_prime 7919);
  check_bool "11623 = 59*197" false (Ntheory.is_prime 11623)

let test_bit_length () =
  check_int "1" 1 (Ntheory.bit_length 1);
  check_int "15" 4 (Ntheory.bit_length 15);
  check_int "16" 5 (Ntheory.bit_length 16);
  check_int "11623" 14 (Ntheory.bit_length 11623)

let test_multiplicative_order () =
  check_int "ord_15(7)" 4 (Ntheory.multiplicative_order 7 15);
  check_int "ord_15(2)" 4 (Ntheory.multiplicative_order 2 15);
  check_int "ord_15(4)" 2 (Ntheory.multiplicative_order 4 15);
  check_int "ord_n(1)" 1 (Ntheory.multiplicative_order 1 21);
  check_int "ord_21(2)" 6 (Ntheory.multiplicative_order 2 21)

let test_convergents () =
  (* 649/200 = [3;4,12,4]; convergents 3/1, 13/4, 159/49, 649/200 *)
  let cs = Ntheory.convergents 649 200 in
  check_bool "contains 13/4" true (List.mem (13, 4) cs);
  check_bool "contains 159/49" true (List.mem (159, 49) cs);
  check_bool "ends with the fraction itself" true (List.mem (649, 200) cs)

let test_order_from_phase_exact () =
  (* phase y/2^bits = 3/4 -> denominator 4 = order of 7 mod 15 *)
  let y = 3 * (1 lsl 6) in
  check_bool "recovers order 4" true
    (Ntheory.order_from_phase ~a:7 ~modulus:15 ~y ~bits:8 = Some 4)

let test_order_from_phase_near () =
  (* y near (1/6) * 2^10: order of 2 mod 21 is 6 *)
  let y = 171 in
  check_bool "recovers order 6 from rounded phase" true
    (Ntheory.order_from_phase ~a:2 ~modulus:21 ~y ~bits:10 = Some 6)

let test_order_from_phase_zero () =
  check_bool "y = 0 is uninformative" true
    (Ntheory.order_from_phase ~a:7 ~modulus:15 ~y:0 ~bits:8 = None)

let test_factor_from_order () =
  check_bool "15 = 3 * 5 from ord(7)=4" true
    (match Ntheory.factor_from_order ~a:7 ~modulus:15 ~order:4 with
    | Some (p, q) -> (p = 3 && q = 5) || (p = 5 && q = 3)
    | None -> false);
  check_bool "odd order gives nothing" true
    (Ntheory.factor_from_order ~a:2 ~modulus:7 ~order:3 = None)

let suite =
  [
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "egcd" `Quick test_egcd;
    Alcotest.test_case "mod_inv" `Quick test_mod_inv;
    Alcotest.test_case "mod_pow" `Quick test_mod_pow;
    Alcotest.test_case "is_prime" `Quick test_is_prime;
    Alcotest.test_case "bit_length" `Quick test_bit_length;
    Alcotest.test_case "multiplicative_order" `Quick
      test_multiplicative_order;
    Alcotest.test_case "convergents" `Quick test_convergents;
    Alcotest.test_case "order_from_phase_exact" `Quick
      test_order_from_phase_exact;
    Alcotest.test_case "order_from_phase_near" `Quick
      test_order_from_phase_near;
    Alcotest.test_case "order_from_phase_zero" `Quick
      test_order_from_phase_zero;
    Alcotest.test_case "factor_from_order" `Quick test_factor_from_order;
  ]
