(* top_amplitudes, truncation, and the unweighted-DD size comparison. *)

open Dd_complex
open Util

let r = Cnum.of_float

(* --- top_amplitudes --------------------------------------------------- *)

let test_top_amplitudes_order () =
  let ctx = fresh_ctx () in
  let v = [| r 0.1; r 0.7; r 0.2; r 0.3; r 0.5; r 0.05; r 0.25; r 0.15 |] in
  let e = Dd.Vdd.of_array ctx v in
  let top = Dd.Vdd.top_amplitudes ctx ~n:3 3 e in
  match top with
  | [ (i1, a1); (i2, a2); (i3, a3) ] ->
    check_int "largest" 1 i1;
    check_cnum "largest amplitude" (r 0.7) a1;
    check_int "second" 4 i2;
    check_cnum "second amplitude" (r 0.5) a2;
    check_int "third" 3 i3;
    check_cnum "third amplitude" (r 0.3) a3
  | _ -> Alcotest.fail "expected three results"

let test_top_amplitudes_matches_dense () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:17 ~qubits:6 ~gates:50 () in
  let engine = Dd_sim.Engine.create ~context:ctx 6 in
  Dd_sim.Engine.run engine circuit;
  let state = Dd_sim.Engine.state engine in
  let top = Dd.Vdd.top_amplitudes ctx ~n:6 5 state in
  let dense = Dd.Vdd.to_array state ~n:6 in
  let sorted =
    Array.mapi (fun i a -> (Cnum.mag2 a, i)) dense
    |> Array.to_list
    |> List.sort (fun (a, _) (b, _) -> compare b a)
  in
  List.iteri
    (fun rank (index, amp) ->
      let expected_mag2, _ = List.nth sorted rank in
      check_float
        (Printf.sprintf "rank %d magnitude" rank)
        expected_mag2 (Cnum.mag2 amp);
      check_float
        (Printf.sprintf "rank %d amplitude consistent" rank)
        (Cnum.mag2 dense.(index))
        (Cnum.mag2 amp))
    top

let test_top_amplitudes_wide_register () =
  (* 30 qubits: dense expansion impossible, DD search instant *)
  let ctx = fresh_ctx () in
  let n = 30 in
  let e = Dd.Vdd.basis ctx ~n 123456789 in
  match Dd.Vdd.top_amplitudes ctx ~n 1 e with
  | [ (index, amp) ] ->
    check_int "finds the basis state" 123456789 index;
    check_cnum "with amplitude one" Cnum.one amp
  | _ -> Alcotest.fail "expected one result"

let test_top_amplitudes_k_larger_than_support () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:3 2 in
  check_int "only one non-zero amplitude exists" 1
    (List.length (Dd.Vdd.top_amplitudes ctx ~n:3 10 e))

(* --- truncate ---------------------------------------------------------- *)

let test_truncate_removes_small_branches () =
  let ctx = fresh_ctx () in
  let eps = 1e-4 in
  let v = [| r (sqrt (1. -. (eps *. eps))); r 0.; r eps; r 0. |] in
  let e = Dd.Vdd.of_array ctx v in
  let truncated = Dd.Vdd.truncate ctx ~threshold:1e-3 e in
  check_cnum "small branch removed" Cnum.zero
    (Dd.Vdd.amplitude truncated ~n:2 2);
  check_float "renormalised" 1. (Dd.Measure.norm2 ctx truncated);
  check_float "dominant amplitude now exactly one" 1.
    (Cnum.mag2 (Dd.Vdd.amplitude truncated ~n:2 0))

let test_truncate_identity_when_threshold_tiny () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:23 ~qubits:5 ~gates:40 () in
  let engine = Dd_sim.Engine.create ~context:ctx 5 in
  Dd_sim.Engine.run engine circuit;
  let state = Dd_sim.Engine.state engine in
  let truncated = Dd.Vdd.truncate ctx ~threshold:1e-15 state in
  check_cnum_array "nothing removed below machine noise"
    (Dd.Vdd.to_array state ~n:5)
    (Dd.Vdd.to_array truncated ~n:5)

let test_truncate_preserves_fidelity () =
  let ctx = fresh_ctx () in
  let circuit = Supremacy.circuit ~seed:2 ~rows:3 ~cols:3 ~cycles:10 () in
  let engine = Dd_sim.Engine.create ~context:ctx 9 in
  Dd_sim.Engine.run engine circuit;
  let state = Dd_sim.Engine.state engine in
  let truncated = Dd.Vdd.truncate ctx ~threshold:0.02 state in
  let fidelity = Cnum.mag2 (Dd.Vdd.dot ctx state truncated) in
  check_bool
    (Printf.sprintf "mild truncation keeps high fidelity (%.4f)" fidelity)
    true (fidelity > 0.9);
  check_bool "and shrinks (or keeps) the DD" true
    (Dd.Vdd.node_count truncated <= Dd.Vdd.node_count state)

let test_truncate_rejects_overzealous () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:2 1 in
  Alcotest.check_raises "threshold kills the state"
    (Invalid_argument "Vdd.truncate: threshold removes the whole state")
    (fun () -> ignore (Dd.Vdd.truncate ctx ~threshold:2. e))

(* --- unweighted comparison --------------------------------------------- *)

let test_unweighted_roundtrip () =
  let ctx = fresh_ctx () in
  let v = [| r 0.; r 0.5; r (-0.5); r 0.; r 0.5; r 0.; r 0.; r 0.5 |] in
  let e = Dd.Vdd.of_array ctx v in
  check_cnum_array "unweighted expansion matches" v
    (Dd.Unweighted.to_array (Dd.Unweighted.of_vdd ctx e) ~n:3)

let test_unweighted_paper_figure_sizes () =
  (* the paper's Fig. 2 example vector: [0,0,0,0, 1/2,-1/2, 1/2,1/2] *)
  let ctx = fresh_ctx () in
  let v = [| r 0.; r 0.; r 0.; r 0.; r 0.5; r (-0.5); r 0.5; r 0.5 |] in
  let weighted = Dd.Vdd.of_array ctx v in
  let unweighted = Dd.Unweighted.of_vdd ctx weighted in
  (* weighted: 4 internal nodes + shared terminal; unweighted needs extra
     nodes because -1/2 sub-vectors cannot share with +1/2 ones *)
  check_int "weighted size (Fig. 2c)" 4 (Dd.Vdd.node_count weighted);
  check_bool "unweighted (Fig. 2b) is strictly bigger" true
    (Dd.Unweighted.total_count unweighted
    > Dd.Vdd.node_count weighted + 1);
  check_int "three distinct leaves (0, 1/2, -1/2)" 3
    (Dd.Unweighted.leaf_count unweighted)

let test_unweighted_phase_states_blow_up () =
  (* a phase-gradient state has a linear weighted DD but a large
     unweighted one: the motivation for edge weights *)
  let ctx = fresh_ctx () in
  let n = 6 in
  let engine = Dd_sim.Engine.create ~context:ctx n in
  (* QFT of |1> has 2^n distinct phases; QFT of |0> would be uniform and
     shareable even without weights *)
  Dd_sim.Engine.apply_gate engine (Gate.x 0);
  Dd_sim.Engine.run engine (Qft.circuit n);
  let state = Dd_sim.Engine.state engine in
  let unweighted = Dd.Unweighted.of_vdd ctx state in
  check_bool "weighted stays small" true (Dd.Vdd.node_count state <= 2 * n);
  check_bool "unweighted explodes" true
    (Dd.Unweighted.total_count unweighted > 4 * Dd.Vdd.node_count state)

let suite =
  [
    Alcotest.test_case "top_order" `Quick test_top_amplitudes_order;
    Alcotest.test_case "top_matches_dense" `Quick
      test_top_amplitudes_matches_dense;
    Alcotest.test_case "top_wide_register" `Quick
      test_top_amplitudes_wide_register;
    Alcotest.test_case "top_k_overflow" `Quick
      test_top_amplitudes_k_larger_than_support;
    Alcotest.test_case "truncate_small" `Quick
      test_truncate_removes_small_branches;
    Alcotest.test_case "truncate_identity" `Quick
      test_truncate_identity_when_threshold_tiny;
    Alcotest.test_case "truncate_fidelity" `Quick
      test_truncate_preserves_fidelity;
    Alcotest.test_case "truncate_rejects" `Quick
      test_truncate_rejects_overzealous;
    Alcotest.test_case "unweighted_roundtrip" `Quick
      test_unweighted_roundtrip;
    Alcotest.test_case "unweighted_fig2" `Quick
      test_unweighted_paper_figure_sizes;
    Alcotest.test_case "unweighted_blowup" `Quick
      test_unweighted_phase_states_blow_up;
  ]
