(* Shared helpers for the test suites. *)

open Dd_complex

let cnum_testable =
  Alcotest.testable Cnum.pp (fun a b -> Cnum.approx_equal ~tol:1e-9 a b)

let check_cnum = Alcotest.check cnum_testable
let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_cnum_array msg expected actual =
  Alcotest.(check int) (msg ^ " (length)") (Array.length expected)
    (Array.length actual);
  Array.iteri
    (fun i e -> check_cnum (Printf.sprintf "%s [%d]" msg i) e actual.(i))
    expected

(* Dense reference matrices. *)

let dense_id n =
  let dim = 1 lsl n in
  Array.init dim (fun r ->
      Array.init dim (fun c -> if r = c then Cnum.one else Cnum.zero))

let dense_matmul a b =
  let dim = Array.length a in
  Array.init dim (fun r ->
      Array.init dim (fun c ->
          let acc = ref Cnum.zero in
          for k = 0 to dim - 1 do
            acc := Cnum.add !acc (Cnum.mul a.(r).(k) b.(k).(c))
          done;
          !acc))

let dense_matvec m v =
  let dim = Array.length m in
  Array.init dim (fun r ->
      let acc = ref Cnum.zero in
      for c = 0 to dim - 1 do
        acc := Cnum.add !acc (Cnum.mul m.(r).(c) v.(c))
      done;
      !acc)

let dense_kron a b =
  let da = Array.length a and db = Array.length b in
  Array.init (da * db) (fun r ->
      Array.init (da * db) (fun c ->
          Cnum.mul a.(r / db).(c / db) b.(r mod db).(c mod db)))

(* Dense matrix of one gate on [n] qubits, built by Kronecker products and
   control masking — an independent construction path from Mdd.gate. *)
let dense_gate ~n (gate : Gate.t) =
  let dim = 1 lsl n in
  let m = Gate.matrix gate.kind in
  let controls_ok index =
    List.for_all
      (fun (c : Gate.control) ->
        ((index lsr c.qubit) land 1 = 1) = c.positive)
      gate.controls
  in
  Array.init dim (fun r ->
      Array.init dim (fun c ->
          let tbit = 1 lsl gate.target in
          if r land lnot tbit <> c land lnot tbit then Cnum.zero
          else if not (controls_ok c) then
            if r = c then Cnum.one else Cnum.zero
          else
            let ri = (r lsr gate.target) land 1
            and ci = (c lsr gate.target) land 1 in
            m.((ri * 2) + ci)))

let dense_circuit_matrix circuit =
  let n = Circuit.(circuit.qubits) in
  List.fold_left
    (fun acc gate -> dense_matmul (dense_gate ~n gate) acc)
    (dense_id n) (Circuit.flatten circuit)

(* Run a circuit on the DD engine and return the dense state. *)
let dd_state_of_circuit ?strategy circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run ?strategy engine circuit;
  Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:Circuit.(circuit.qubits)

(* Run a circuit on the dense simulator and return the state. *)
let dense_state_of_circuit circuit =
  let state = Dense_state.create Circuit.(circuit.qubits) in
  Dense_state.run state circuit;
  Dense_state.to_array state

let fresh_ctx () = Dd.Context.create ()
