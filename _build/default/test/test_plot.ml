open Util

let sample_output =
  "ddsim benchmark harness\n\n\
   === Fig. 8: strategy k-operations (combine k gates per step) ===\n\
   (speed-up ...)\n\
   k               grover_12     shor_15_7_11    average\n\
   seq[s]              0.089            0.083\n\
   1                    1.00             0.95       0.97\n\
   2                    1.10             1.05       1.07\n\
   4                    1.40                -       1.40\n\
   8                    1.20              nan       1.20\n\
   [fig8 completed in 1.0 s]\n\n\
   === Fig. 9: strategy max-size ===\n\
   s_max           grover_12    average\n\
   seq[s]              0.089\n\
   4                    0.90       0.90\n\
   256                  2.50       2.50\n\
   [fig9 completed in 1.0 s]\n"

let test_parse_fig8 () =
  let series = Dd_sim.Sweep_plot.parse_sweep_table ~header:"Fig. 8" sample_output in
  check_int "three series" 3 (List.length series);
  let grover = List.find (fun s -> s.Dd_sim.Sweep_plot.series_name = "grover_12") series in
  check_int "four k points" 4 (List.length grover.Dd_sim.Sweep_plot.points);
  check_bool "first point is (1, 1.0)" true
    (List.hd grover.Dd_sim.Sweep_plot.points = (1., 1.));
  let shor =
    List.find (fun s -> s.Dd_sim.Sweep_plot.series_name = "shor_15_7_11") series
  in
  (* the "-" at k=4 and "nan" at k=8 must be dropped *)
  check_int "skipped entries dropped" 2
    (List.length shor.Dd_sim.Sweep_plot.points)

let test_parse_fig9_stops_at_section () =
  let series = Dd_sim.Sweep_plot.parse_sweep_table ~header:"Fig. 9" sample_output in
  let grover = List.find (fun s -> s.Dd_sim.Sweep_plot.series_name = "grover_12") series in
  check_int "two s_max points" 2 (List.length grover.Dd_sim.Sweep_plot.points)

let test_parse_missing_section () =
  check_bool "missing section raises" true
    (try
       ignore (Dd_sim.Sweep_plot.parse_sweep_table ~header:"Fig. 77" sample_output);
       false
     with Not_found -> true)

let test_render_svg () =
  let series = Dd_sim.Sweep_plot.parse_sweep_table ~header:"Fig. 8" sample_output in
  let svg = Dd_sim.Sweep_plot.render ~title:"test" ~x_label:"k" series in
  let count sub =
    let n = String.length svg and m = String.length sub in
    let c = ref 0 in
    for i = 0 to n - m do
      if String.sub svg i m = sub then incr c
    done;
    !c
  in
  check_bool "svg document" true (count "<svg" = 1 && count "</svg>" = 1);
  check_int "one polyline per series" 3 (count "<polyline");
  check_bool "legend labels present" true (count "grover_12" >= 1);
  check_bool "data point markers present" true (count "<circle" >= 6)

let test_render_rejects_empty () =
  Alcotest.check_raises "no data"
    (Invalid_argument "Sweep_plot.render: no data") (fun () ->
      ignore (Dd_sim.Sweep_plot.render ~title:"t" ~x_label:"k" []))

let suite =
  [
    Alcotest.test_case "parse_fig8" `Quick test_parse_fig8;
    Alcotest.test_case "parse_fig9" `Quick test_parse_fig9_stops_at_section;
    Alcotest.test_case "parse_missing" `Quick test_parse_missing_section;
    Alcotest.test_case "render_svg" `Quick test_render_svg;
    Alcotest.test_case "render_empty" `Quick test_render_rejects_empty;
  ]
