open Util

let semantically_equal msg a b =
  check_cnum_array msg (dense_state_of_circuit a) (dense_state_of_circuit b)

let test_cancel_adjacent_pair () =
  let circuit = Circuit.of_gates ~qubits:2 [ Gate.h 0; Gate.h 0; Gate.x 1 ] in
  let optimized = Optimize.cancel_inverses circuit in
  check_int "h h cancels" 1 (Circuit.gate_count optimized);
  semantically_equal "semantics" circuit optimized

let test_cancel_s_sdg () =
  let circuit = Circuit.of_gates ~qubits:1 [ Gate.s 0; Gate.sdg 0 ] in
  check_int "s sdg cancels" 0
    (Circuit.gate_count (Optimize.cancel_inverses circuit))

let test_cancel_rotations () =
  let circuit = Circuit.of_gates ~qubits:1 [ Gate.rz 0.7 0; Gate.rz (-0.7) 0 ] in
  check_int "rz(t) rz(-t) cancels" 0
    (Circuit.gate_count (Optimize.cancel_inverses circuit))

let test_cancel_cx_pair () =
  let circuit = Circuit.of_gates ~qubits:2 [ Gate.cx 0 1; Gate.cx 0 1 ] in
  check_int "cx cx cancels" 0
    (Circuit.gate_count (Optimize.cancel_inverses circuit))

let test_cancel_slides_over_disjoint () =
  (* the pair is separated by a gate on another qubit *)
  let circuit =
    Circuit.of_gates ~qubits:3 [ Gate.h 0; Gate.cx 1 2; Gate.h 0 ]
  in
  let optimized = Optimize.cancel_inverses circuit in
  check_int "pair cancels across a disjoint gate" 1
    (Circuit.gate_count optimized);
  semantically_equal "semantics" circuit optimized

let test_cancel_blocked_by_overlap () =
  let circuit =
    Circuit.of_gates ~qubits:2 [ Gate.h 0; Gate.cx 0 1; Gate.h 0 ]
  in
  check_int "overlapping gate blocks cancellation" 3
    (Circuit.gate_count (Optimize.cancel_inverses circuit))

let test_fuse_run () =
  let circuit =
    Circuit.of_gates ~qubits:2
      [ Gate.h 0; Gate.t_gate 0; Gate.s 0; Gate.cx 0 1 ]
  in
  let optimized = Optimize.fuse_single_qubit circuit in
  check_int "three gates fuse into one" 2 (Circuit.gate_count optimized);
  semantically_equal "fusion preserves semantics" circuit optimized

let test_fuse_slides_over_disjoint () =
  let circuit =
    Circuit.of_gates ~qubits:2
      [ Gate.h 0; Gate.x 1; Gate.t_gate 0; Gate.z 1 ]
  in
  let optimized = Optimize.fuse_single_qubit circuit in
  (* h0/t0 fuse; x1 and z1 fuse too (second pass over the emitted list) *)
  check_bool "fewer gates" true (Circuit.gate_count optimized < 4);
  semantically_equal "fusion across disjoint gates" circuit optimized

let test_fuse_leaves_controlled () =
  let circuit = Circuit.of_gates ~qubits:2 [ Gate.cx 0 1; Gate.cx 0 1 ] in
  check_int "controlled gates are not fused" 2
    (Circuit.gate_count (Optimize.fuse_single_qubit circuit))

let test_drop_identity_rotations () =
  let circuit =
    Circuit.of_gates ~qubits:1
      [ Gate.rz 0. 0; Gate.phase 0. 0; Gate.h 0 ]
  in
  check_int "zero rotations dropped" 1
    (Circuit.gate_count (Optimize.drop_identities circuit))

let test_keep_controlled_phase () =
  (* a controlled rz(4 pi) is exactly the identity and may go; a controlled
     rz(2 pi) equals diag(1,1,-1,-1) on the pair and must stay *)
  let controlled theta =
    Circuit.of_gates ~qubits:2
      [ Gate.make ~controls:[ Gate.ctrl 0 ] (Gate.Rz theta) 1 ]
  in
  check_int "controlled rz(2pi) kept" 1
    (Circuit.gate_count
       (Optimize.drop_identities (controlled (2. *. Float.pi))));
  check_int "controlled rz(4pi) dropped" 0
    (Circuit.gate_count
       (Optimize.drop_identities (controlled (4. *. Float.pi))))

let test_optimize_fixpoint () =
  (* x z x z reduces: adjacent x..x blocked by z? cancel slides only over
     disjoint supports; but z z appears after fusing... the driver iterates
     to a fixpoint, so the whole thing collapses to a fused single gate or
     nothing *)
  let circuit =
    Circuit.of_gates ~qubits:1 [ Gate.x 0; Gate.z 0; Gate.z 0; Gate.x 0 ]
  in
  let optimized = Optimize.optimize circuit in
  check_bool "collapses" true (Circuit.gate_count optimized <= 1);
  semantically_equal "fixpoint preserves semantics" circuit optimized

let test_optimize_preserves_random () =
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:4 ~gates:60 () in
      let optimized = Optimize.optimize circuit in
      check_bool
        (Printf.sprintf "seed %d shrinks or stays" seed)
        true
        (Circuit.gate_count optimized <= Circuit.gate_count circuit);
      semantically_equal
        (Printf.sprintf "seed %d semantics" seed)
        circuit optimized)
    [ 1; 2; 3 ]

let test_optimize_inside_repeat () =
  let circuit =
    Circuit.create ~qubits:2
      [
        Circuit.repeat 3
          [
            Circuit.gate (Gate.h 0); Circuit.gate (Gate.h 0);
            Circuit.gate (Gate.cx 0 1);
          ];
      ]
  in
  let optimized = Optimize.optimize circuit in
  check_int "body optimised in place" 3 (Circuit.gate_count optimized);
  check_bool "repeat structure preserved" true
    (match Circuit.(optimized.ops) with
    | [ Circuit.Repeat { count = 3; body = _ } ] -> true
    | _ :: _ | [] -> false)

let suite =
  [
    Alcotest.test_case "cancel_adjacent_pair" `Quick
      test_cancel_adjacent_pair;
    Alcotest.test_case "cancel_s_sdg" `Quick test_cancel_s_sdg;
    Alcotest.test_case "cancel_rotations" `Quick test_cancel_rotations;
    Alcotest.test_case "cancel_cx_pair" `Quick test_cancel_cx_pair;
    Alcotest.test_case "cancel_slides" `Quick
      test_cancel_slides_over_disjoint;
    Alcotest.test_case "cancel_blocked" `Quick test_cancel_blocked_by_overlap;
    Alcotest.test_case "fuse_run" `Quick test_fuse_run;
    Alcotest.test_case "fuse_slides" `Quick test_fuse_slides_over_disjoint;
    Alcotest.test_case "fuse_leaves_controlled" `Quick
      test_fuse_leaves_controlled;
    Alcotest.test_case "drop_identity_rotations" `Quick
      test_drop_identity_rotations;
    Alcotest.test_case "keep_controlled_phase" `Quick
      test_keep_controlled_phase;
    Alcotest.test_case "optimize_fixpoint" `Quick test_optimize_fixpoint;
    Alcotest.test_case "optimize_preserves_random" `Quick
      test_optimize_preserves_random;
    Alcotest.test_case "optimize_inside_repeat" `Quick
      test_optimize_inside_repeat;
  ]
