open Util

let test_iterations () =
  check_int "n=2 needs one iteration" 1 (Grover.iterations 2);
  check_int "n=4" 3 (Grover.iterations 4);
  check_int "n=10" 25 (Grover.iterations 10)

let test_oracle_flips_only_marked () =
  let n = 3 in
  List.iter
    (fun marked ->
      let circuit = Circuit.of_gates ~qubits:n (Grover.oracle_gates ~n ~marked) in
      let matrix = dense_circuit_matrix circuit in
      for i = 0 to (1 lsl n) - 1 do
        let expected =
          if i = marked then Dd_complex.Cnum.of_float (-1.) else Dd_complex.Cnum.one
        in
        check_cnum
          (Printf.sprintf "marked=%d diag %d" marked i)
          expected
          matrix.(i).(i)
      done)
    [ 0; 3; 5; 7 ]

let test_oracle_diagonal () =
  let n = 3 in
  let circuit = Circuit.of_gates ~qubits:n (Grover.oracle_gates ~n ~marked:4) in
  let matrix = dense_circuit_matrix circuit in
  for r = 0 to 7 do
    for c = 0 to 7 do
      if r <> c then
        check_cnum
          (Printf.sprintf "off-diagonal %d %d" r c)
          Dd_complex.Cnum.zero
          matrix.(r).(c)
    done
  done

let test_search_finds_marked () =
  List.iter
    (fun (n, marked) ->
      let engine = Dd_sim.Engine.create n in
      Dd_sim.Engine.run engine (Grover.circuit ~n ~marked ());
      let p = Grover.success_probability engine ~marked in
      check_bool
        (Printf.sprintf "n=%d marked=%d: success prob %.3f high" n marked p)
        true (p > 0.8))
    [ (3, 6); (5, 17); (8, 200); (10, 777) ]

let test_single_qubit_search () =
  (* with one qubit the rotation angle is pi/4, so success probability is
     exactly 1/2 no matter how many iterations run *)
  let engine = Dd_sim.Engine.create 1 in
  Dd_sim.Engine.run engine (Grover.circuit ~n:1 ~marked:1 ());
  check_float "n=1 caps at one half" 0.5
    (Grover.success_probability engine ~marked:1)

let test_repeat_structure_present () =
  let circuit = Grover.circuit ~n:6 ~marked:11 () in
  let has_repeat =
    List.exists
      (function
        | Circuit.Repeat { count; body = _ } -> count = Grover.iterations 6
        | Circuit.Gate _ -> false)
      Circuit.(circuit.ops)
  in
  check_bool "grover emits a Repeat block" true has_repeat

let test_explicit_iteration_count () =
  let circuit = Grover.circuit ~iterations:2 ~n:4 ~marked:9 () in
  (* 4 H + 2 * (oracle + diffusion) *)
  let per_iteration =
    List.length (Grover.oracle_gates ~n:4 ~marked:9)
    + List.length (Grover.diffusion_gates ~n:4)
  in
  check_int "gate count" (4 + (2 * per_iteration))
    (Circuit.gate_count circuit)

let test_state_stays_compact () =
  (* the Grover state lives in a 2-dimensional subspace: its DD stays tiny,
     which is why even 29-qubit instances are easy for DDs *)
  let n = 12 in
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run engine (Grover.circuit ~n ~marked:1234 ());
  check_bool "state DD linear in n" true
    (Dd_sim.Engine.state_node_count engine <= 2 * n)

let test_matches_dense () =
  let n = 5 and marked = 19 in
  let circuit = Grover.circuit ~n ~marked () in
  check_cnum_array "grover vs dense simulator"
    (dense_state_of_circuit circuit)
    (dd_state_of_circuit circuit)

let suite =
  [
    Alcotest.test_case "iterations" `Quick test_iterations;
    Alcotest.test_case "oracle_flips_marked" `Quick
      test_oracle_flips_only_marked;
    Alcotest.test_case "oracle_diagonal" `Quick test_oracle_diagonal;
    Alcotest.test_case "search_finds_marked" `Quick test_search_finds_marked;
    Alcotest.test_case "single_qubit_search" `Quick test_single_qubit_search;
    Alcotest.test_case "repeat_structure" `Quick
      test_repeat_structure_present;
    Alcotest.test_case "explicit_iterations" `Quick
      test_explicit_iteration_count;
    Alcotest.test_case "state_compact" `Quick test_state_stays_compact;
    Alcotest.test_case "matches_dense" `Quick test_matches_dense;
  ]

(* DD-construct extension tests appended below; the suite is re-exported. *)

let test_oracle_dd_matches_gates () =
  let ctx = fresh_ctx () in
  let n = 4 and marked = 11 in
  let direct = Grover.oracle_dd ctx ~n ~marked in
  let engine = Dd_sim.Engine.create ~context:ctx n in
  let via_gates =
    Dd_sim.Engine.combine engine (Grover.oracle_gates ~n ~marked)
  in
  check_bool "directly constructed oracle equals the gate product" true
    (Dd.Mdd.equal direct via_gates)

let test_oracle_dd_compact () =
  let ctx = fresh_ctx () in
  let dd = Grover.oracle_dd ctx ~n:12 ~marked:1717 in
  check_bool "oracle DD is linear in n" true (Dd.Mdd.node_count dd <= 24)

let test_run_construct_agrees () =
  let n = 8 and marked = 99 in
  let via_gates = Dd_sim.Engine.create n in
  Dd_sim.Engine.run via_gates (Grover.circuit ~n ~marked ());
  let via_construct = Grover.run_construct ~n ~marked () in
  check_float "construct backend reaches the same success probability"
    (Grover.success_probability via_gates ~marked)
    (Grover.success_probability via_construct ~marked)

let test_run_construct_efficiency () =
  let n = 8 and marked = 42 in
  let engine = Grover.run_construct ~n ~marked () in
  let stats = Dd_sim.Engine.stats engine in
  (* H layer + one application per iteration *)
  check_int "one mat-vec per iteration plus the H layer"
    (n + Grover.iterations n)
    stats.Dd_sim.Sim_stats.mat_vec_mults

let suite =
  suite
  @ [
      Alcotest.test_case "oracle_dd_matches_gates" `Quick
        test_oracle_dd_matches_gates;
      Alcotest.test_case "oracle_dd_compact" `Quick test_oracle_dd_compact;
      Alcotest.test_case "run_construct_agrees" `Quick
        test_run_construct_agrees;
      Alcotest.test_case "run_construct_efficiency" `Quick
        test_run_construct_efficiency;
    ]

let test_state_stable_across_iterations () =
  (* regression: with a merge tolerance that is too coarse (1e-10),
     legitimately distinct amplitudes at the 2^(-n/2) scale get wrongly
     merged around n = 20, fragmenting the DD exponentially; the state
     must stay at exactly 2n - 1 nodes for every iteration *)
  let n = 20 in
  let engine = Dd_sim.Engine.create n in
  List.iter (Dd_sim.Engine.apply_gate engine) (List.init n Gate.h);
  let body = Grover.oracle_gates ~n ~marked:5 @ Grover.diffusion_gates ~n in
  for iteration = 1 to 8 do
    List.iter (Dd_sim.Engine.apply_gate engine) body;
    check_int
      (Printf.sprintf "iteration %d keeps 2n-1 nodes" iteration)
      ((2 * n) - 1)
      (Dd_sim.Engine.state_node_count engine)
  done

let suite =
  suite
  @ [
      Alcotest.test_case "state_stable_regression" `Quick
        test_state_stable_across_iterations;
    ]
