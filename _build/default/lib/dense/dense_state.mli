(** Array-based state-vector simulator — the "conventional" simulation style
    the paper contrasts DDs with (its references [13]-[17]), and the
    correctness oracle for the DD engine in this repository's tests.
    Memory is [2^(n+4)] bytes, so it is practical up to ~24 qubits. *)

open Dd_complex

type t

val create : int -> t
(** [create n]: [n]-qubit register initialised to [|0...0>]. *)

val of_amplitudes : Cnum.t array -> t
(** Start from a given state vector (length must be a power of two). *)

val qubits : t -> int

val apply_gate : t -> Gate.t -> unit
(** In-place application of an elementary gate (with its controls). *)

val run : t -> Circuit.t -> unit
(** Apply every gate of the (flattened) circuit. *)

val amplitude : t -> int -> Cnum.t
val to_array : t -> Cnum.t array
val norm2 : t -> float

val probability_one : t -> qubit:int -> float

val measure_qubit : Random.State.t -> t -> qubit:int -> bool
(** Sample one qubit and collapse the state in place. *)

val sample : Random.State.t -> t -> int
(** Sample a basis index from the current distribution (no collapse). *)

val fidelity : t -> t -> float
(** [|<a|b>|^2]. *)
