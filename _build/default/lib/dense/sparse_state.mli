(** Sparse state-vector simulator: a hash map from basis-state index to
    amplitude.  The third point of comparison next to the dense array
    simulator and the DD engine — it wins when states have few non-zero
    amplitudes (basis-state-like circuits), loses badly once superposition
    spreads: its size tracks the {e support}, where DDs track
    {e structure}.  Qubit counts are limited only by the support size, not
    by [2^n]. *)

type t

val create : int -> t
(** [create n]: [n]-qubit register in [|0...0>] (support size 1). *)

val qubits : t -> int

val support_size : t -> int
(** Number of non-zero amplitudes currently stored — the sparse analogue
    of the DD node count. *)

val apply_gate : t -> Gate.t -> unit
val run : t -> Circuit.t -> unit

val amplitude : t -> int -> Dd_complex.Cnum.t
val norm2 : t -> float

val to_array : t -> Dd_complex.Cnum.t array
(** Dense expansion (small [n] only; raises above 24 qubits). *)
