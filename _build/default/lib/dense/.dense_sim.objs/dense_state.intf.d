lib/dense/dense_state.mli: Circuit Cnum Dd_complex Gate Random
