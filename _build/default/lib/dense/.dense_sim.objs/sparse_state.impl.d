lib/dense/sparse_state.ml: Array Circuit Cnum Dd_complex Gate Hashtbl List
