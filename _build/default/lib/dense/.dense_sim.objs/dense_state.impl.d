lib/dense/dense_state.ml: Array Circuit Cnum Dd_complex Gate List Random
