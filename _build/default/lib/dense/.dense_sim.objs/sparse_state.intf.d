lib/dense/sparse_state.mli: Circuit Dd_complex Gate
