open Dd_complex

type t = { n : int; mutable amps : (int, Cnum.t) Hashtbl.t }

let cutoff = 1e-14

let create n =
  if n <= 0 || n > 62 then invalid_arg "Sparse_state.create";
  let amps = Hashtbl.create 64 in
  Hashtbl.add amps 0 Cnum.one;
  { n; amps }

let qubits state = state.n
let support_size state = Hashtbl.length state.amps

let get amps index =
  match Hashtbl.find_opt amps index with Some a -> a | None -> Cnum.zero

let controls_satisfied controls index =
  List.for_all
    (fun (c : Gate.control) ->
      ((index lsr c.qubit) land 1 = 1) = c.positive)
    controls

(* One pass over the support: every occupied index contributes to the two
   indices of its target-bit pair.  Building a fresh table keeps the
   iteration sound and drops amplitudes that cancel below the cutoff. *)
let apply_gate state (gate : Gate.t) =
  let m = Gate.matrix gate.kind in
  let tbit = 1 lsl gate.target in
  let next = Hashtbl.create (2 * Hashtbl.length state.amps) in
  let bump index delta =
    let updated = Cnum.add (get next index) delta in
    if Cnum.mag2 updated < cutoff *. cutoff then Hashtbl.remove next index
    else Hashtbl.replace next index updated
  in
  Hashtbl.iter
    (fun index amp ->
      if not (controls_satisfied gate.controls index) then bump index amp
      else if index land tbit = 0 then begin
        bump index (Cnum.mul m.(0) amp);
        bump (index lor tbit) (Cnum.mul m.(2) amp)
      end
      else begin
        bump (index land lnot tbit) (Cnum.mul m.(1) amp);
        bump index (Cnum.mul m.(3) amp)
      end)
    state.amps;
  state.amps <- next

let run state circuit =
  if Circuit.(circuit.qubits) <> state.n then
    invalid_arg "Sparse_state.run: qubit count mismatch";
  List.iter (apply_gate state) (Circuit.flatten circuit)

let amplitude state index = get state.amps index

let norm2 state =
  Hashtbl.fold (fun _ amp acc -> acc +. Cnum.mag2 amp) state.amps 0.

let to_array state =
  if state.n > 24 then invalid_arg "Sparse_state.to_array: too many qubits";
  let out = Array.make (1 lsl state.n) Cnum.zero in
  Hashtbl.iter (fun index amp -> out.(index) <- amp) state.amps;
  out
