open Dd_complex

type t = { n : int; re : float array; im : float array }

let create n =
  if n <= 0 || n > 26 then invalid_arg "Dense_state.create: bad qubit count";
  let size = 1 lsl n in
  let state = { n; re = Array.make size 0.; im = Array.make size 0. } in
  state.re.(0) <- 1.;
  state

let of_amplitudes amps =
  let size = Array.length amps in
  if size = 0 || size land (size - 1) <> 0 then
    invalid_arg "Dense_state.of_amplitudes: length must be a power of two";
  let rec log2 k acc = if k = 1 then acc else log2 (k lsr 1) (acc + 1) in
  {
    n = log2 size 0;
    re = Array.map Cnum.re amps;
    im = Array.map Cnum.im amps;
  }

let qubits state = state.n

let controls_satisfied controls index =
  List.for_all
    (fun (c : Gate.control) ->
      let bit = (index lsr c.qubit) land 1 = 1 in
      bit = c.positive)
    controls

(* For every pair of indices differing only in the target bit (and whose
   control bits are satisfied), apply the 2x2 matrix. *)
let apply_gate state (gate : Gate.t) =
  let m = Gate.matrix gate.kind in
  let m00r = Cnum.re m.(0) and m00i = Cnum.im m.(0) in
  let m01r = Cnum.re m.(1) and m01i = Cnum.im m.(1) in
  let m10r = Cnum.re m.(2) and m10i = Cnum.im m.(2) in
  let m11r = Cnum.re m.(3) and m11i = Cnum.im m.(3) in
  let size = 1 lsl state.n in
  let tbit = 1 lsl gate.target in
  let re = state.re and im = state.im in
  for i = 0 to size - 1 do
    if i land tbit = 0 && controls_satisfied gate.controls i then begin
      let j = i lor tbit in
      let ar = re.(i) and ai = im.(i) in
      let br = re.(j) and bi = im.(j) in
      re.(i) <- (m00r *. ar) -. (m00i *. ai) +. (m01r *. br) -. (m01i *. bi);
      im.(i) <- (m00r *. ai) +. (m00i *. ar) +. (m01r *. bi) +. (m01i *. br);
      re.(j) <- (m10r *. ar) -. (m10i *. ai) +. (m11r *. br) -. (m11i *. bi);
      im.(j) <- (m10r *. ai) +. (m10i *. ar) +. (m11r *. bi) +. (m11i *. br)
    end
  done

let run state circuit =
  if Circuit.(circuit.qubits) <> state.n then
    invalid_arg "Dense_state.run: qubit count mismatch";
  List.iter (apply_gate state) (Circuit.flatten circuit)

let amplitude state i = Cnum.make state.re.(i) state.im.(i)

let to_array state =
  Array.init (Array.length state.re) (fun i -> amplitude state i)

let norm2 state =
  let acc = ref 0. in
  Array.iteri
    (fun i r -> acc := !acc +. (r *. r) +. (state.im.(i) *. state.im.(i)))
    state.re;
  !acc

let probability_one state ~qubit =
  let bit = 1 lsl qubit in
  let acc = ref 0. in
  Array.iteri
    (fun i r ->
      if i land bit <> 0 then
        acc := !acc +. (r *. r) +. (state.im.(i) *. state.im.(i)))
    state.re;
  !acc /. norm2 state

let measure_qubit rng state ~qubit =
  let p1 = probability_one state ~qubit in
  let outcome = Random.State.float rng 1. < p1 in
  let bit = 1 lsl qubit in
  let keep = if outcome then bit else 0 in
  let p = if outcome then p1 else 1. -. p1 in
  let scale = 1. /. sqrt p in
  Array.iteri
    (fun i _ ->
      if i land bit = keep then begin
        state.re.(i) <- state.re.(i) *. scale;
        state.im.(i) <- state.im.(i) *. scale
      end
      else begin
        state.re.(i) <- 0.;
        state.im.(i) <- 0.
      end)
    state.re;
  outcome

let sample rng state =
  let total = norm2 state in
  let target = Random.State.float rng total in
  let acc = ref 0. in
  let result = ref (Array.length state.re - 1) in
  (try
     Array.iteri
       (fun i r ->
         acc := !acc +. (r *. r) +. (state.im.(i) *. state.im.(i));
         if !acc > target then begin
           result := i;
           raise Exit
         end)
       state.re
   with Exit -> ());
  !result

let fidelity a b =
  if a.n <> b.n then invalid_arg "Dense_state.fidelity: size mismatch";
  let dr = ref 0. and di = ref 0. in
  Array.iteri
    (fun i ar ->
      let ai = a.im.(i) and br = b.re.(i) and bi = b.im.(i) in
      dr := !dr +. (ar *. br) +. (ai *. bi);
      di := !di +. (ar *. bi) -. (ai *. br))
    a.re;
  (!dr *. !dr) +. (!di *. !di)
