(** Peephole circuit optimisation.

    Fewer elementary operations means fewer multiplications for the
    simulator, orthogonally to the paper's combination strategies.  Three
    passes are provided, plus a fixpoint driver:

    - {!cancel_inverses}: drop adjacent gate pairs [g; adjoint g] acting on
      the same qubits (e.g. [h q; h q] or [cx a b; cx a b]).
    - {!fuse_single_qubit}: merge runs of single-qubit, uncontrolled gates
      on one qubit into a single [Gate.Custom] 2x2 unitary.
    - {!drop_identities}: remove gates whose matrix is the identity up to
      global phase (e.g. [rz 0.], [phase 0.]).

    All passes preserve semantics exactly (same unitary, including global
    phase, except {!drop_identities} which may change the global phase).
    Repeat blocks are optimised within their bodies, never across their
    boundary, so the structure DD-repeating relies on survives. *)

val cancel_inverses : Circuit.t -> Circuit.t
val fuse_single_qubit : Circuit.t -> Circuit.t
val drop_identities : Circuit.t -> Circuit.t

val optimize : ?max_rounds:int -> Circuit.t -> Circuit.t
(** Run all passes to a fixpoint (bounded by [max_rounds], default 10). *)
