(** Elementary quantum gates: a single-qubit operation together with an
    arbitrary set of positive/negative controls.  This matches what QMDD
    packages treat as one elementary operation (one DD, one multiplication),
    e.g. a multi-controlled Z is a single gate here. *)

open Dd_complex

type kind =
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Sx  (** square root of X, used by the supremacy circuits *)
  | Sxdg
  | Sy  (** square root of Y *)
  | Sydg
  | Rx of float
  | Ry of float
  | Rz of float
  | Phase of float  (** diag(1, e^{i theta}) *)
  | Custom of { matrix : Cnum.t array; label : string }
      (** arbitrary unitary 2x2 row-major matrix *)

type control = { qubit : int; positive : bool }

type t = { kind : kind; target : int; controls : control list }

val make : ?controls:control list -> kind -> int -> t
(** [make ~controls kind target]. *)

val matrix : kind -> Cnum.t array
(** Row-major 2x2 matrix [|m00; m01; m10; m11|] of the base operation. *)

val adjoint : t -> t
(** Inverse gate (same target and controls, adjoint base operation). *)

val qubits : t -> int list
(** Target and control qubits, target first. *)

val max_qubit : t -> int

val name : t -> string
(** Human-readable name, e.g. ["h"], ["rz(0.7854)"], ["ccx"]. *)

val ctrl : int -> control
(** Positive control on a qubit. *)

val nctrl : int -> control
(** Negative control on a qubit. *)

(** Convenience constructors. *)

val x : int -> t
val y : int -> t
val z : int -> t
val h : int -> t
val s : int -> t
val sdg : int -> t
val t_gate : int -> t
val tdg : int -> t
val sx : int -> t
val sy : int -> t
val rx : float -> int -> t
val ry : float -> int -> t
val rz : float -> int -> t
val phase : float -> int -> t
val cx : int -> int -> t
(** [cx control target]. *)

val cz : int -> int -> t
val cphase : float -> int -> int -> t
(** [cphase theta control target]. *)

val ccx : int -> int -> int -> t
(** [ccx control1 control2 target]. *)

val mcz : int list -> int -> t
(** [mcz controls target] — multi-controlled Z. *)

val mcx : int list -> int -> t

val pp : Format.formatter -> t -> unit
