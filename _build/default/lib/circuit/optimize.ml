open Dd_complex

let qubit_sets_disjoint a b =
  List.for_all (fun q -> not (List.mem q b)) a

(* Map a pass over every contiguous gate run, recursing into repeat
   bodies.  [pass] receives and returns a plain gate list. *)
let rec map_runs pass ops =
  let flush run acc =
    match run with
    | [] -> acc
    | _ :: _ ->
      List.fold_left
        (fun acc g -> Circuit.Gate g :: acc)
        acc
        (pass (List.rev run))
  in
  let rec walk ops run acc =
    match ops with
    | [] -> List.rev (flush run acc)
    | Circuit.Gate g :: rest -> walk rest (g :: run) acc
    | Circuit.Repeat { count; body } :: rest ->
      let acc = flush run acc in
      let block = Circuit.Repeat { count; body = map_runs pass body } in
      walk rest [] (block :: acc)
  in
  walk ops [] []

let apply_pass pass circuit =
  Circuit.create
    ~name:Circuit.(circuit.name)
    ~qubits:Circuit.(circuit.qubits)
    (map_runs pass Circuit.(circuit.ops))

(* --- cancel adjacent inverse pairs --------------------------------- *)

(* For gate [g] at the head, search forward for [adjoint g], sliding over
   gates with disjoint qubit support (they commute with g, so the pair is
   effectively adjacent). *)
let cancel_pass gates =
  let rec try_cancel g rest skipped =
    match rest with
    | [] -> None
    | candidate :: tail ->
      if candidate = Gate.adjoint g then
        (* [skipped] was accumulated in reverse; restore the original
           order of the slid-over gates *)
        Some (List.rev_append skipped tail)
      else if qubit_sets_disjoint (Gate.qubits g) (Gate.qubits candidate)
      then try_cancel g tail (candidate :: skipped)
      else None
  in
  let rec walk = function
    | [] -> []
    | g :: rest -> (
      match try_cancel g rest [] with
      | Some remaining -> walk remaining
      | None -> g :: walk rest)
  in
  walk gates

let cancel_inverses circuit = apply_pass cancel_pass circuit

(* --- fuse single-qubit runs ----------------------------------------- *)

let mat_mul_2x2 a b =
  (* row-major [|m00;m01;m10;m11|]; result = a * b *)
  [|
    Cnum.add (Cnum.mul a.(0) b.(0)) (Cnum.mul a.(1) b.(2));
    Cnum.add (Cnum.mul a.(0) b.(1)) (Cnum.mul a.(1) b.(3));
    Cnum.add (Cnum.mul a.(2) b.(0)) (Cnum.mul a.(3) b.(2));
    Cnum.add (Cnum.mul a.(2) b.(1)) (Cnum.mul a.(3) b.(3));
  |]

let fusible (g : Gate.t) = g.controls = []

let fuse_pass gates =
  let rec collect qubit rest kept fused count =
    match rest with
    | [] -> (List.rev kept, fused, count)
    | (candidate : Gate.t) :: tail ->
      if fusible candidate && candidate.target = qubit then
        collect qubit tail kept
          (mat_mul_2x2 (Gate.matrix candidate.kind) fused)
          (count + 1)
      else if not (List.mem qubit (Gate.qubits candidate)) then
        collect qubit tail (candidate :: kept) fused count
      else (List.rev kept, fused, count)
  in
  let rec walk = function
    | [] -> []
    | (g : Gate.t) :: rest ->
      if not (fusible g) then g :: walk rest
      else begin
        let consumed_prefix, fused, count =
          collect g.target rest [] (Gate.matrix g.kind) 1
        in
        if count < 2 then g :: walk rest
        else begin
          (* [consumed_prefix] holds the slid-over gates in order; the
             remainder of the list starts after everything we visited *)
          let visited = count - 1 + List.length consumed_prefix in
          let rec drop k l =
            if k = 0 then l
            else match l with [] -> [] | _ :: t -> drop (k - 1) t
          in
          let tail = drop visited rest in
          let fused_gate =
            Gate.make
              (Gate.Custom { matrix = fused; label = "fused" })
              g.target
          in
          fused_gate :: walk (consumed_prefix @ tail)
        end
      end
  in
  walk gates

let fuse_single_qubit circuit = apply_pass fuse_pass circuit

(* --- drop (phase-)identity gates ------------------------------------ *)

let tol = 1e-12

let is_global_phase_identity m =
  Cnum.approx_zero ~tol m.(1)
  && Cnum.approx_zero ~tol m.(2)
  && Cnum.approx_equal ~tol m.(0) m.(3)

let is_exact_identity m =
  is_global_phase_identity m && Cnum.approx_equal ~tol m.(0) Cnum.one

let identity_pass gates =
  List.filter
    (fun (g : Gate.t) ->
      let m = Gate.matrix g.kind in
      (* a controlled "identity up to phase" is a relative phase and must
         stay; only the exact identity may be dropped *)
      if g.controls = [] then not (is_global_phase_identity m)
      else not (is_exact_identity m))
    gates

let drop_identities circuit = apply_pass identity_pass circuit

let optimize ?(max_rounds = 10) circuit =
  let rec loop circuit round =
    if round >= max_rounds then circuit
    else
      let before = Circuit.gate_count circuit in
      let circuit =
        circuit |> cancel_inverses |> drop_identities |> fuse_single_qubit
      in
      if Circuit.gate_count circuit >= before then circuit
      else loop circuit (round + 1)
  in
  loop circuit 0
