(* Greedy periodic-run detection on the flattened gate array.  At each
   position the candidate period maximising covered length (with at least
   two repetitions) wins; ties prefer the shorter period so that the block
   body stays small (a small body is what DD-repeating wants to combine). *)

let repetitions gates start period limit =
  let count = ref 1 in
  let matches offset =
    let rec loop i =
      i >= period
      || gates.(start + i) = gates.(start + offset + i) && loop (i + 1)
    in
    loop 0
  in
  let rec grow offset =
    if start + offset + period <= limit && matches offset then begin
      incr count;
      grow (offset + period)
    end
  in
  grow period;
  !count

let detect ?(min_period = 2) ?(max_period = 256) ?(min_gates = 8) circuit =
  if min_period < 1 || max_period < min_period then
    invalid_arg "Repeats.detect: bad period bounds";
  let gates = Array.of_list (Circuit.flatten circuit) in
  let total = Array.length gates in
  let ops = ref [] in
  let emit_gates first last =
    for i = last downto first do
      ops := Circuit.gate gates.(i) :: !ops
    done
  in
  let rec scan position =
    if position < total then begin
      let best = ref None in
      let upper = min max_period ((total - position) / 2) in
      for period = min_period to upper do
        let count = repetitions gates position period total in
        let covered = period * count in
        if count >= 2 && covered >= min_gates then
          match !best with
          | Some (_, best_covered) when best_covered >= covered -> ()
          | Some _ | None -> best := Some (period, covered)
      done;
      match !best with
      | Some (period, covered) ->
        let body =
          List.init period (fun i -> Circuit.gate gates.(position + i))
        in
        ops := Circuit.repeat (covered / period) body :: !ops;
        scan (position + covered)
      | None ->
        emit_gates position position;
        scan (position + 1)
    end
  in
  scan 0;
  Circuit.create
    ~name:(Circuit.(circuit.name) ^ "+repeats")
    ~qubits:Circuit.(circuit.qubits)
    (List.rev !ops)
