lib/circuit/optimize.ml: Array Circuit Cnum Dd_complex Gate List
