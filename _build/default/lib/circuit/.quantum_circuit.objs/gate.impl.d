lib/circuit/gate.ml: Array Cnum Dd_complex Float Format List Printf String
