lib/circuit/repeats.mli: Circuit
