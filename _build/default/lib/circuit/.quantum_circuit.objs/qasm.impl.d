lib/circuit/qasm.ml: Buffer Circuit Cnum Dd_complex Float Gate List Printf String
