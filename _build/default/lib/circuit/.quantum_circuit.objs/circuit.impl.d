lib/circuit/circuit.ml: Array Format Gate Hashtbl List Printf
