lib/circuit/gate.mli: Cnum Dd_complex Format
