lib/circuit/repeats.ml: Array Circuit List
