(** Automatic detection of repeated gate blocks.

    The paper's DD-repeating strategy needs to know that a sub-circuit
    repeats (Section IV-B, "there exist several quantum algorithms where
    identical sub-circuits are repeated several times").  Circuits built by
    [Grover.circuit] carry that structure explicitly; circuits loaded from
    OpenQASM do not.  This pass recovers it: a greedy left-to-right scan
    that, at each position, looks for the period whose consecutive
    repetitions cover the most gates and rewrites them into a
    [Circuit.Repeat] block. *)

val detect : ?min_period:int -> ?max_period:int -> ?min_gates:int ->
  Circuit.t -> Circuit.t
(** [detect circuit] rewrites maximal periodic runs of the flattened gate
    list into [Repeat] blocks.  A run is kept when it repeats at least
    twice and covers at least [min_gates] gates (default 8).  Periods
    between [min_period] (default 2) and [max_period] (default 256) gates
    are considered.  The result is semantically identical to the input
    ([flatten] yields the same gate list). *)
