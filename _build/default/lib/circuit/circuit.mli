(** Quantum circuits: sequences of gates with optional [Repeat] blocks.

    Repeat blocks preserve the structural knowledge ("identical sub-circuits
    repeated several times", paper Section IV-B) that the [DD-repeating]
    strategy exploits; flattening unrolls them for strategy-agnostic
    simulation. *)

type op = Gate of Gate.t | Repeat of { count : int; body : op list }

type t = private { qubits : int; name : string; ops : op list }

val create : ?name:string -> qubits:int -> op list -> t
(** Validates that every gate touches distinct, in-range qubits and that
    repeat counts are non-negative; raises [Invalid_argument] otherwise. *)

val of_gates : ?name:string -> qubits:int -> Gate.t list -> t

val gate : Gate.t -> op
val repeat : int -> op list -> op

val flatten : t -> Gate.t list
(** Unroll all repeat blocks into a flat gate list, in application order. *)

val gate_count : t -> int
(** Number of gates after unrolling. *)

val depth : t -> int
(** Circuit depth under the usual greedy qubit-availability schedule. *)

val append : t -> t -> t
(** Concatenate two circuits on the same number of qubits. *)

val adjoint : t -> t
(** Reverse the circuit and invert every gate. *)

val counts_by_name : t -> (string * int) list
(** Gate histogram (sorted by name), e.g. [("cx", 12); ("h", 4)]. *)

val pp : Format.formatter -> t -> unit
(** One-line summary: name, qubit count, gate count, depth. *)
