type op = Gate of Gate.t | Repeat of { count : int; body : op list }
type t = { qubits : int; name : string; ops : op list }

let rec validate_op qubits op =
  match op with
  | Gate gate ->
    let touched = Gate.qubits gate in
    List.iter
      (fun q ->
        if q < 0 || q >= qubits then
          invalid_arg
            (Printf.sprintf "Circuit: qubit %d out of range (%d qubits)" q
               qubits))
      touched;
    let sorted = List.sort compare touched in
    let rec dup = function
      | a :: (b :: _ as rest) -> a = b || dup rest
      | [ _ ] | [] -> false
    in
    if dup sorted then
      invalid_arg "Circuit: gate touches the same qubit twice"
  | Repeat { count; body } ->
    if count < 0 then invalid_arg "Circuit: negative repeat count";
    List.iter (validate_op qubits) body

let create ?(name = "circuit") ~qubits ops =
  if qubits <= 0 then invalid_arg "Circuit.create: need at least one qubit";
  List.iter (validate_op qubits) ops;
  { qubits; name; ops }

let of_gates ?name ~qubits gates =
  create ?name ~qubits (List.map (fun g -> Gate g) gates)

let gate g = Gate g
let repeat count body = Repeat { count; body }

let flatten circuit =
  let buf = ref [] in
  let rec walk op =
    match op with
    | Gate g -> buf := g :: !buf
    | Repeat { count; body } ->
      for _ = 1 to count do
        List.iter walk body
      done
  in
  List.iter walk circuit.ops;
  List.rev !buf

let rec op_gate_count = function
  | Gate _ -> 1
  | Repeat { count; body } ->
    count * List.fold_left (fun acc op -> acc + op_gate_count op) 0 body

let gate_count circuit =
  List.fold_left (fun acc op -> acc + op_gate_count op) 0 circuit.ops

let depth circuit =
  let level = Array.make circuit.qubits 0 in
  let place gate =
    let touched = Gate.qubits gate in
    let next = 1 + List.fold_left (fun acc q -> max acc level.(q)) 0 touched in
    List.iter (fun q -> level.(q) <- next) touched
  in
  List.iter place (flatten circuit);
  Array.fold_left max 0 level

let append a b =
  if a.qubits <> b.qubits then
    invalid_arg "Circuit.append: qubit counts differ";
  { a with name = a.name ^ "+" ^ b.name; ops = a.ops @ b.ops }

let adjoint circuit =
  let rec invert_ops ops = List.rev_map invert_op ops
  and invert_op = function
    | Gate g -> Gate (Gate.adjoint g)
    | Repeat { count; body } -> Repeat { count; body = invert_ops body }
  in
  { circuit with name = circuit.name ^ "_dg"; ops = invert_ops circuit.ops }

let counts_by_name circuit =
  let table = Hashtbl.create 32 in
  List.iter
    (fun g ->
      let key = Gate.name g in
      let current = try Hashtbl.find table key with Not_found -> 0 in
      Hashtbl.replace table key (current + 1))
    (flatten circuit);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort compare

let pp fmt circuit =
  Format.fprintf fmt "%s: %d qubits, %d gates, depth %d" circuit.name
    circuit.qubits (gate_count circuit) (depth circuit)
