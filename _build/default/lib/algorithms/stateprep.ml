open Dd_complex

(* The standard recursive scheme, processing qubits MSB first: at level k
   (qubit q = k), for every assignment [prefix] of the more significant
   qubits, rotate qubit q by the angle that splits the probability mass of
   that branch, under a control pattern selecting [prefix]; phases are
   applied the same way with controlled Phase gates at the leaves. *)

let circuit amplitudes =
  let size = Array.length amplitudes in
  if size = 0 || size land (size - 1) <> 0 then
    invalid_arg "Stateprep.circuit: length must be a power of two";
  let rec log2 k acc = if k = 1 then acc else log2 (k lsr 1) (acc + 1) in
  let n = log2 size 0 in
  if n > 12 then invalid_arg "Stateprep.circuit: too many qubits";
  if n = 0 then invalid_arg "Stateprep.circuit: need at least one qubit";
  let norm =
    sqrt (Array.fold_left (fun acc a -> acc +. Cnum.mag2 a) 0. amplitudes)
  in
  if norm < 1e-12 then invalid_arg "Stateprep.circuit: zero vector";
  let amps = Array.map (fun a -> Cnum.scale (1. /. norm) a) amplitudes in
  (* mass.(level) gives, per prefix, the probability mass of the block *)
  let mass level prefix =
    (* block of indices whose top (n - level) bits... level counts qubits
       remaining below: block size 2^level, starting at prefix * 2^level *)
    let start = prefix lsl level in
    let acc = ref 0. in
    for i = start to start + (1 lsl level) - 1 do
      acc := !acc +. Cnum.mag2 amps.(i)
    done;
    !acc
  in
  let gates = ref [] in
  let emit g = gates := g :: !gates in
  (* rotations, MSB (qubit n-1) downwards *)
  for qubit = n - 1 downto 0 do
    let prefix_bits = n - 1 - qubit in
    for prefix = 0 to (1 lsl prefix_bits) - 1 do
      let total = mass (qubit + 1) prefix in
      if total > 1e-24 then begin
        let p_one = mass qubit ((prefix lsl 1) lor 1) /. total in
        let theta = 2. *. asin (sqrt (Float.min 1. p_one)) in
        if abs_float theta > 1e-12 then begin
          let controls =
            List.init prefix_bits (fun j ->
                (* prefix bit j (MSB of the prefix first) sits on qubit
                   n-1-j *)
                let control_qubit = n - 1 - j in
                if (prefix lsr (prefix_bits - 1 - j)) land 1 = 1 then
                  Gate.ctrl control_qubit
                else Gate.nctrl control_qubit)
          in
          emit (Gate.make ~controls (Gate.Ry theta) qubit)
        end
      end
    done
  done;
  (* phases: one controlled Phase per basis state with non-trivial phase;
     when bit 0 of the index is 0, conjugating the target with X moves the
     phase to the right branch *)
  for index = 0 to size - 1 do
    let a = amps.(index) in
    if Cnum.mag a > 1e-12 then begin
      let phase = atan2 (Cnum.im a) (Cnum.re a) in
      if abs_float phase > 1e-12 then begin
        let controls =
          List.init (n - 1) (fun j ->
              let control_qubit = j + 1 in
              if (index lsr control_qubit) land 1 = 1 then
                Gate.ctrl control_qubit
              else Gate.nctrl control_qubit)
        in
        let phase_gate = Gate.make ~controls (Gate.Phase phase) 0 in
        if index land 1 = 1 then emit phase_gate
        else begin
          emit (Gate.x 0);
          emit phase_gate;
          emit (Gate.x 0)
        end
      end
    end
  done;
  Circuit.of_gates ~name:"stateprep" ~qubits:n (List.rev !gates)

let w_state n =
  if n < 1 then invalid_arg "Stateprep.w_state";
  let amp = Cnum.of_float (1. /. sqrt (float_of_int n)) in
  let amplitudes =
    Array.init (1 lsl n) (fun i ->
        (* exactly one bit set *)
        if i land (i - 1) = 0 && i <> 0 then amp else Cnum.zero)
  in
  circuit amplitudes
