(** State preparation: synthesise a circuit that maps [|0...0>] to a given
    amplitude vector (Shende-Bullock-Markov-style multiplexed rotations;
    the multiplexors are expressed directly as gates with mixed-polarity
    control patterns, which the DD gate builder handles natively). *)

val circuit : Dd_complex.Cnum.t array -> Circuit.t
(** [circuit amplitudes] — amplitudes must have power-of-two length and
    non-zero norm (they are normalised internally).  The resulting circuit
    has O(2^n) gates, so this is for small registers (raises above 12
    qubits).  The prepared state equals the normalised input up to global
    phase. *)

val w_state : int -> Circuit.t
(** The n-qubit W state [(|100...> + |010...> + ... + |0...01>)/sqrt n],
    prepared through {!circuit}. *)
