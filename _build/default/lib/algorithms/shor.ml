type backend = Beauregard of Dd_sim.Strategy.t | Direct

type layout = {
  n : int;
  x : int array;
  b : int array;
  ancilla : int;
  control : int;
}

let layout modulus =
  if modulus < 3 then invalid_arg "Shor.layout: modulus too small";
  let n = Ntheory.bit_length modulus in
  {
    n;
    x = Array.init n (fun i -> i);
    b = Array.init (n + 1) (fun i -> n + i);
    ancilla = (2 * n) + 1;
    control = (2 * n) + 2;
  }

let beauregard_qubits modulus = (2 * Ntheory.bit_length modulus) + 3
let direct_qubits modulus = Ntheory.bit_length modulus + 1

(* ------------------------------------------------------------------ *)
(* Beauregard building blocks                                          *)
(* ------------------------------------------------------------------ *)

let two_pi = 2. *. Float.pi

(* Adding a classical constant to a Fourier-transformed register is
   diagonal: multiply the |y> amplitude by exp(2 pi i a y / 2^m), i.e. one
   phase gate per register bit. *)
let phi_add_gates ?(controls = []) ~register a =
  let m = Array.length register in
  let mask = (1 lsl m) - 1 in
  let a = a land mask in
  let gates = ref [] in
  for j = 0 to m - 1 do
    let contribution = a * (1 lsl j) land mask in
    if contribution <> 0 then begin
      let theta = two_pi *. float_of_int contribution /. float_of_int (mask + 1) in
      gates := Gate.make ~controls (Gate.Phase theta) register.(j) :: !gates
    end
  done;
  List.rev !gates

let phi_sub_gates ?controls ~register a =
  List.rev_map Gate.adjoint (phi_add_gates ?controls ~register a)

let qft_b layout = Qft.on_register layout.b
let iqft_b layout = Qft.inverse_on_register layout.b

(* Beauregard Fig. 5: controlled phi-ADD(a) mod N on the Fourier-space b
   register; the ancilla records the comparison and is restored to |0>. *)
let modular_adder_gates ?(controls = []) ~layout ~modulus a =
  let msb = layout.b.(layout.n) in
  let anc = layout.ancilla in
  List.concat
    [
      phi_add_gates ~controls ~register:layout.b a;
      phi_sub_gates ~register:layout.b modulus;
      iqft_b layout;
      [ Gate.cx msb anc ];
      qft_b layout;
      phi_add_gates ~controls:[ Gate.ctrl anc ] ~register:layout.b modulus;
      phi_sub_gates ~controls ~register:layout.b a;
      iqft_b layout;
      [ Gate.x msb; Gate.cx msb anc; Gate.x msb ];
      qft_b layout;
      phi_add_gates ~controls ~register:layout.b a;
    ]

(* Beauregard Fig. 6: b <- b + a*x mod N, controlled on [control]. *)
let cmult_gates ~layout ~control ~modulus a =
  let adders =
    List.concat
      (List.init layout.n (fun i ->
           let summand = a * (1 lsl i) mod modulus in
           modular_adder_gates
             ~controls:[ Gate.ctrl control; Gate.ctrl layout.x.(i) ]
             ~layout ~modulus summand))
  in
  List.concat [ qft_b layout; adders; iqft_b layout ]

let cswap_gates ~control p q =
  [ Gate.cx q p; Gate.ccx control p q; Gate.cx q p ]

(* Beauregard Fig. 7: controlled x <- a*x mod N via multiply, swap,
   inverse-multiply with a^-1. *)
let controlled_ua_gates ~layout ~control ~modulus a =
  if Ntheory.gcd a modulus <> 1 then
    invalid_arg "Shor.controlled_ua_gates: base not coprime to modulus";
  let a = a mod modulus in
  let a_inv = Ntheory.mod_inv a modulus in
  let swaps =
    List.concat
      (List.init layout.n (fun i ->
           cswap_gates ~control layout.x.(i) layout.b.(i)))
  in
  List.concat
    [
      cmult_gates ~layout ~control ~modulus a;
      swaps;
      List.rev_map Gate.adjoint (cmult_gates ~layout ~control ~modulus a_inv);
    ]

(* ------------------------------------------------------------------ *)
(* Order finding                                                       *)
(* ------------------------------------------------------------------ *)

type order_run = {
  modulus : int;
  base : int;
  phase_bits : int;
  measured_phase : int;
  order : int option;
  engine_qubits : int;
}

(* Iterative (semiclassical) phase estimation shared by both backends.
   Round k (k = bits-1 downto 0) applies controlled-U^(2^k) and measures
   bit (bits-1-k) of the phase numerator y, correcting with the already
   measured lower bits first. *)
let iterative_phase_estimation ~bits ~control ~apply_controlled_power engine =
  let measured = ref 0 in
  for k = bits - 1 downto 0 do
    Dd_sim.Engine.apply_gate engine (Gate.h control);
    apply_controlled_power k;
    let bit_index = bits - 1 - k in
    let known = !measured land ((1 lsl bit_index) - 1) in
    if known <> 0 then begin
      let theta =
        -.two_pi *. float_of_int known /. float_of_int (1 lsl (bit_index + 1))
      in
      Dd_sim.Engine.apply_gate engine (Gate.phase theta control)
    end;
    Dd_sim.Engine.apply_gate engine (Gate.h control);
    let outcome = Dd_sim.Engine.measure_qubit engine ~qubit:control in
    if outcome then begin
      measured := !measured lor (1 lsl bit_index);
      Dd_sim.Engine.apply_gate engine (Gate.x control)
    end
  done;
  !measured

let run_beauregard ~seed ~strategy ~a modulus =
  let lay = layout modulus in
  let qubits = beauregard_qubits modulus in
  let bits = 2 * lay.n in
  let engine = Dd_sim.Engine.create ~seed qubits in
  Dd_sim.Engine.apply_gate engine (Gate.x lay.x.(0));
  let apply_controlled_power k =
    let multiplier = Ntheory.mod_pow a (1 lsl k) modulus in
    let gates =
      controlled_ua_gates ~layout:lay ~control:lay.control ~modulus multiplier
    in
    let segment =
      Circuit.of_gates ~name:"cua" ~qubits gates
    in
    Dd_sim.Engine.run ~strategy engine segment
  in
  let y =
    iterative_phase_estimation ~bits ~control:lay.control
      ~apply_controlled_power engine
  in
  (y, bits, qubits)

let run_direct ~seed ~a modulus =
  let n = Ntheory.bit_length modulus in
  let qubits = n + 1 in
  let control = n in
  let bits = 2 * n in
  let engine = Dd_sim.Engine.create ~seed qubits in
  let ctx = Dd_sim.Engine.context engine in
  Dd_sim.Engine.apply_gate engine (Gate.x 0);
  let oracle_cache = Hashtbl.create 16 in
  let controlled_oracle multiplier =
    match Hashtbl.find_opt oracle_cache multiplier with
    | Some dd -> dd
    | None ->
      let f x = if x < modulus then x * multiplier mod modulus else x in
      let u = Dd.Mdd.of_permutation ctx ~n f in
      let cu = Dd.Mdd.control_top ctx ~n u in
      Hashtbl.add oracle_cache multiplier cu;
      cu
  in
  let apply_controlled_power k =
    let multiplier = Ntheory.mod_pow a (1 lsl k) modulus in
    Dd_sim.Engine.apply_matrix engine (controlled_oracle multiplier)
  in
  let y =
    iterative_phase_estimation ~bits ~control ~apply_controlled_power engine
  in
  (y, bits, qubits)

let run_order_finding ?(seed = 97) ~backend ~a modulus =
  if modulus < 3 then invalid_arg "Shor.run_order_finding: modulus too small";
  if a < 2 || a >= modulus then
    invalid_arg "Shor.run_order_finding: base out of range";
  if Ntheory.gcd a modulus <> 1 then
    invalid_arg "Shor.run_order_finding: base shares a factor";
  let y, bits, engine_qubits =
    match backend with
    | Beauregard strategy -> run_beauregard ~seed ~strategy ~a modulus
    | Direct -> run_direct ~seed ~a modulus
  in
  let order = Ntheory.order_from_phase ~a ~modulus ~y ~bits in
  {
    modulus;
    base = a;
    phase_bits = bits;
    measured_phase = y;
    order;
    engine_qubits;
  }

let find_order ?(seed = 97) ?(attempts = 8) ~backend ~a modulus =
  let rec loop attempt =
    if attempt >= attempts then None
    else
      let run = run_order_finding ~seed:(seed + (131 * attempt)) ~backend ~a
          modulus
      in
      match run.order with Some r -> Some r | None -> loop (attempt + 1)
  in
  loop 0

let factor ?(seed = 97) ?(attempts = 8) ?a ~backend modulus =
  if modulus < 4 then invalid_arg "Shor.factor: nothing to factor";
  if modulus mod 2 = 0 then Some (2, modulus / 2)
  else if Ntheory.is_prime modulus then None
  else begin
    let rng = Random.State.make [| seed; modulus |] in
    let candidate attempt =
      match (a, attempt) with
      | Some fixed, 0 -> fixed
      | _, _ -> 2 + Random.State.int rng (modulus - 3)
    in
    let rec loop attempt =
      if attempt >= attempts then None
      else
        let base = candidate attempt in
        let g = Ntheory.gcd base modulus in
        if g > 1 && g < modulus then Some (g, modulus / g)
        else
          let next () = loop (attempt + 1) in
          match
            find_order ~seed:(seed + (977 * attempt)) ~attempts:4 ~backend
              ~a:base modulus
          with
          | None -> next ()
          | Some order -> (
            match Ntheory.factor_from_order ~a:base ~modulus ~order with
            | Some (p, q) -> Some (min p q, max p q)
            | None -> next ())
    in
    loop 0
  end
