type system = { n : int; mutable rows : int list (* in echelon form *) }

let create n =
  if n < 1 || n > 62 then invalid_arg "Gf2.create";
  { n; rows = [] }

let dot a b =
  let rec parity x acc =
    if x = 0 then acc else parity (x lsr 1) (acc <> (x land 1 = 1))
  in
  parity (a land b) false

let leading_bit v =
  let rec loop k = if v lsr k = 1 then k else loop (k + 1) in
  loop 0

(* reduce [v] against the echelon rows; insert if a non-zero remainder *)
let add_equation system v =
  let reduced =
    List.fold_left
      (fun v row ->
        if v <> 0 && leading_bit v = leading_bit row then v lxor row else v)
      v
      (List.sort (fun a b -> compare (leading_bit b) (leading_bit a)) system.rows)
  in
  if reduced = 0 then false
  else begin
    system.rows <- reduced :: system.rows;
    true
  end

let rank system = List.length system.rows

let nullspace_vector system =
  if rank system <> system.n - 1 then None
  else begin
    (* back-substitution: find the free column, set it to 1, solve *)
    let rows =
      List.sort (fun a b -> compare (leading_bit b) (leading_bit a))
        system.rows
    in
    let pivots = List.map leading_bit rows in
    let free =
      let rec find k =
        if k >= system.n then None
        else if List.mem k pivots then find (k + 1)
        else Some k
      in
      find 0
    in
    match free with
    | None -> None
    | Some free ->
      let s = ref (1 lsl free) in
      (* process rows from the lowest pivot upwards so each substitution
         sees the already-fixed lower bits *)
      let ascending = List.rev rows in
      List.iter
        (fun row ->
          let pivot = leading_bit row in
          if dot row !s then s := !s lxor (1 lsl pivot))
        ascending;
      if !s = 0 then None else Some !s
  end
