open Dd_complex

let probability engine index =
  Cnum.mag2 (Dd_sim.Engine.amplitude engine index)

let linear_fidelity engine samples =
  match samples with
  | [] -> invalid_arg "Xeb.linear_fidelity: no samples"
  | _ :: _ ->
    let n = Dd_sim.Engine.qubits engine in
    let mean =
      List.fold_left (fun acc x -> acc +. probability engine x) 0. samples
      /. float_of_int (List.length samples)
    in
    (float_of_int (1 lsl n) *. mean) -. 1.

let sample_and_score ?(shots = 500) engine =
  linear_fidelity engine
    (List.init shots (fun _ -> Dd_sim.Engine.sample engine))

let uniform_score ?(shots = 500) ?(seed = 0xAB) engine =
  let n = Dd_sim.Engine.qubits engine in
  let rng = Random.State.make [| seed |] in
  linear_fidelity engine
    (List.init shots (fun _ -> Random.State.int rng (1 lsl n)))
