(** Shor's algorithm with two interchangeable order-finding backends:

    - {e Beauregard}: the full 2n+3-qubit circuit of the paper's reference
      [27] (QFT-based constant adders, doubly-controlled modular adders,
      controlled modular multipliers, one re-used phase-estimation qubit
      with intermediate measurement).  Its gate stream is simulated under a
      configurable {!Dd_sim.Strategy.t} — this is the [t_sota] /
      [t_general] configuration of the paper's Table II.
    - {e Direct} (the paper's {e DD-construct} strategy): the modular
      exponentiation oracle [x -> a^(2^k) * x mod N] is built directly as a
      permutation DD on [n] qubits, so the whole algorithm runs on [n + 1]
      qubits with one matrix-vector multiplication per phase-estimation
      round — no gate decomposition, no working qubits.

    Register conventions for the Beauregard circuit (N has [n] bits):
    qubits [0..n-1] hold [x] (initialised to 1), qubits [n..2n] are the
    [n+1]-bit adder target [b], qubit [2n+1] is the comparison ancilla, and
    qubit [2n+2] is the re-used control. *)

type backend = Beauregard of Dd_sim.Strategy.t | Direct

type layout = {
  n : int;  (** bits of the modulus *)
  x : int array;  (** multiplier register, element 0 = LSB *)
  b : int array;  (** adder target (n+1 qubits) *)
  ancilla : int;
  control : int;
}

val layout : int -> layout
(** [layout modulus] — the Beauregard register layout for that modulus. *)

val beauregard_qubits : int -> int
(** Total qubit count [2n + 3] for a modulus. *)

val direct_qubits : int -> int
(** Total qubit count [n + 1] for the DD-construct backend. *)

(** {2 Circuit building blocks (exposed for tests and ablations)} *)

val phi_add_gates :
  ?controls:Gate.control list -> register:int array -> int -> Gate.t list
(** Draper constant adder in Fourier space: adds the classical constant
    modulo [2^m] to an [m]-qubit register that is QFT-transformed (with
    swaps). *)

val phi_sub_gates :
  ?controls:Gate.control list -> register:int array -> int -> Gate.t list

val modular_adder_gates :
  ?controls:Gate.control list -> layout:layout -> modulus:int -> int ->
  Gate.t list
(** Beauregard's (doubly) controlled [phi-ADD(a) mod N] gadget; acts on the
    Fourier-transformed [b] register and the ancilla. *)

val cmult_gates :
  layout:layout -> control:int -> modulus:int -> int -> Gate.t list
(** Controlled [b <- b + a*x mod N] (with the QFT pair around the modular
    adders included). *)

val controlled_ua_gates :
  layout:layout -> control:int -> modulus:int -> int -> Gate.t list
(** Controlled [x <- a*x mod N] ([gcd a N = 1] required): multiplier,
    controlled swap, inverse multiplier with [a^-1]. *)

(** {2 Order finding and factoring} *)

type order_run = {
  modulus : int;
  base : int;
  phase_bits : int;  (** 2n bits of precision *)
  measured_phase : int;  (** the y with phi ~ y / 2^phase_bits *)
  order : int option;  (** recovered order, verified *)
  engine_qubits : int;
}

val run_order_finding :
  ?seed:int -> backend:backend -> a:int -> int -> order_run
(** One quantum order-finding run for [a] modulo the given modulus. *)

val find_order : ?seed:int -> ?attempts:int -> backend:backend -> a:int ->
  int -> int option
(** Repeat {!run_order_finding} (fresh randomness per attempt, default 8
    attempts) until an order is recovered. *)

val factor :
  ?seed:int -> ?attempts:int -> ?a:int -> backend:backend -> int ->
  (int * int) option
(** Full Shor: returns a non-trivial factor pair of an odd composite.  When
    [a] is supplied it is tried first (paper benchmarks fix [a]). *)
