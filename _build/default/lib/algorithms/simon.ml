let canonical_function ~n ~s x =
  if s <= 0 || s >= 1 lsl n then invalid_arg "Simon: bad period";
  min x (x lxor s)

let oracle_dd ctx ~n f =
  if n < 1 || n > 12 then invalid_arg "Simon.oracle_dd: bad width";
  let mask = (1 lsl n) - 1 in
  let permutation z =
    let x = z land mask in
    let y = z lsr n in
    let image = f x in
    if image land lnot mask <> 0 then
      invalid_arg "Simon.oracle_dd: image out of range";
    x lor ((y lxor image) lsl n)
  in
  Dd.Mdd.of_permutation ctx ~n:(2 * n) permutation

let sample_orthogonal engine ~n oracle =
  Dd_sim.Engine.reset engine;
  for q = 0 to n - 1 do
    Dd_sim.Engine.apply_gate engine (Gate.h q)
  done;
  Dd_sim.Engine.apply_matrix engine oracle;
  for q = 0 to n - 1 do
    Dd_sim.Engine.apply_gate engine (Gate.h q)
  done;
  let rec read q acc =
    if q >= n then acc
    else
      let bit = Dd_sim.Engine.measure_qubit engine ~qubit:q in
      read (q + 1) (if bit then acc lor (1 lsl q) else acc)
  in
  read 0 0

let recover_period ?(seed = 0xDD) ?max_rounds ~n f =
  let max_rounds =
    match max_rounds with Some m -> m | None -> 20 * n
  in
  if n = 1 then
    (* one-bit period can only be 1; verify against the function *)
    if f 0 = f 1 then Some 1 else None
  else begin
    let engine = Dd_sim.Engine.create ~seed (2 * n) in
    let ctx = Dd_sim.Engine.context engine in
    let oracle = oracle_dd ctx ~n f in
    let system = Gf2.create n in
    let rec loop rounds =
      if Gf2.rank system = n - 1 then Gf2.nullspace_vector system
      else if rounds >= max_rounds then None
      else begin
        let v = sample_orthogonal engine ~n oracle in
        if v <> 0 then ignore (Gf2.add_equation system v);
        loop (rounds + 1)
      end
    in
    loop 0
  end
