open Dd_complex

type verdict = Constant | Balanced

let oracle_dd ctx ~n f =
  let minus_one = Cnum.of_float (-1.) in
  Dd.Mdd.of_diagonal ctx ~n (fun x -> if f x then minus_one else Cnum.one)

let final_engine ~n f =
  let engine = Dd_sim.Engine.create n in
  let ctx = Dd_sim.Engine.context engine in
  let hadamards = List.init n Gate.h in
  List.iter (Dd_sim.Engine.apply_gate engine) hadamards;
  Dd_sim.Engine.apply_matrix engine (oracle_dd ctx ~n f);
  List.iter (Dd_sim.Engine.apply_gate engine) hadamards;
  engine

let classify_probability ~n f =
  if n < 1 || n > 24 then invalid_arg "Deutsch_jozsa: bad width";
  let engine = final_engine ~n f in
  Cnum.mag2 (Dd_sim.Engine.amplitude engine 0)

let run ~n f =
  if classify_probability ~n f > 0.5 then Constant else Balanced
