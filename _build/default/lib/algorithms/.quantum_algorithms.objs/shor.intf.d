lib/algorithms/shor.mli: Dd_sim Gate
