lib/algorithms/qpe.ml: Array Circuit Dd_sim Gate List Qft
