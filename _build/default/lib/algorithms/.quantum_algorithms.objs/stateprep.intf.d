lib/algorithms/stateprep.mli: Circuit Dd_complex
