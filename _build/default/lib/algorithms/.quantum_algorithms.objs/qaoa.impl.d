lib/algorithms/qaoa.ml: Circuit Dd_sim Float Gate List Printf
