lib/algorithms/grover.mli: Circuit Dd Dd_sim Gate
