lib/algorithms/gf2.mli:
