lib/algorithms/qft.mli: Circuit Gate
