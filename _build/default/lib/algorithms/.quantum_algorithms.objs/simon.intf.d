lib/algorithms/simon.mli: Dd Dd_sim
