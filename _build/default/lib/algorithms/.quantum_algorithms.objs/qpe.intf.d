lib/algorithms/qpe.mli: Circuit Dd_sim Gate
