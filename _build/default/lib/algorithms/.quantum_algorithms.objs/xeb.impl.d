lib/algorithms/xeb.ml: Cnum Dd_complex Dd_sim List Random
