lib/algorithms/standard.mli: Circuit
