lib/algorithms/shor.ml: Array Circuit Dd Dd_sim Float Gate Hashtbl List Ntheory Qft Random
