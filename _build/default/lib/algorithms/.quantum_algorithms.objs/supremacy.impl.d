lib/algorithms/supremacy.ml: Array Circuit Gate List Printf Random
