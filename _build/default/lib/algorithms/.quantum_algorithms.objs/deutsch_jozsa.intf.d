lib/algorithms/deutsch_jozsa.mli: Dd
