lib/algorithms/gf2.ml: List
