lib/algorithms/ntheory.mli:
