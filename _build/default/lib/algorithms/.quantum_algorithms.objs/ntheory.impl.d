lib/algorithms/ntheory.ml: List
