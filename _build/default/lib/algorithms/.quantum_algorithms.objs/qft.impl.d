lib/algorithms/qft.ml: Array Circuit Float Gate List Printf
