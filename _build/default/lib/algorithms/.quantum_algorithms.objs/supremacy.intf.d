lib/algorithms/supremacy.mli: Circuit
