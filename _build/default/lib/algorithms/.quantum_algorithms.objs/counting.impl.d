lib/algorithms/counting.ml: Array Circuit Cnum Dd Dd_complex Dd_sim Float Gate Grover List Qft Qpe
