lib/algorithms/standard.ml: Circuit Float Gate List Printf Random
