lib/algorithms/counting.mli: Dd Dd_sim
