lib/algorithms/qaoa.mli: Circuit Dd_sim
