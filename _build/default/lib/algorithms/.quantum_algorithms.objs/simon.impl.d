lib/algorithms/simon.ml: Dd Dd_sim Gate Gf2
