lib/algorithms/stateprep.ml: Array Circuit Cnum Dd_complex Float Gate List
