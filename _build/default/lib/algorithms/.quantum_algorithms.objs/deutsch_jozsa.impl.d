lib/algorithms/deutsch_jozsa.ml: Cnum Dd Dd_complex Dd_sim Gate List
