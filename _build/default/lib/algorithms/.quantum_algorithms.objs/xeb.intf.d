lib/algorithms/xeb.mli: Dd_sim
