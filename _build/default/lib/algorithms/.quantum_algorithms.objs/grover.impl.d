lib/algorithms/grover.ml: Circuit Dd Dd_complex Dd_sim Float Gate List Printf
