let counting_register ~precision ~target_qubits =
  Array.init precision (fun j -> target_qubits + j)

let circuit ~precision ~target_qubits ~controlled_power =
  if precision < 1 then invalid_arg "Qpe.circuit: need precision >= 1";
  if target_qubits < 0 then invalid_arg "Qpe.circuit: bad target width";
  let counting = counting_register ~precision ~target_qubits in
  let hadamards = Array.to_list (Array.map Gate.h counting) in
  let powers =
    List.concat
      (List.init precision (fun j ->
           controlled_power ~control:counting.(j) ~power:(1 lsl j)))
  in
  let gates =
    hadamards @ powers @ Qft.inverse_on_register counting
  in
  Circuit.of_gates ~name:"qpe"
    ~qubits:(target_qubits + precision)
    gates

let read_phase engine ~precision ~target_qubits =
  let counting = counting_register ~precision ~target_qubits in
  Array.to_list counting
  |> List.mapi (fun j qubit ->
         if Dd_sim.Engine.measure_qubit engine ~qubit then 1 lsl j else 0)
  |> List.fold_left ( + ) 0

let estimate ?(prepare = []) ~precision ~target_qubits ~controlled_power () =
  let qubits = target_qubits + precision in
  let engine = Dd_sim.Engine.create qubits in
  List.iter (Dd_sim.Engine.apply_gate engine) prepare;
  Dd_sim.Engine.run engine (circuit ~precision ~target_qubits ~controlled_power);
  read_phase engine ~precision ~target_qubits
