(** Generic quantum phase estimation.

    The counting register occupies the [precision] qubits above the target
    register; the caller supplies the controlled powers of the unitary (as
    gate lists), exactly like Shor's order finding does with its modular
    multipliers. *)

val counting_register : precision:int -> target_qubits:int -> int array
(** Engine qubits of the counting register, least significant first. *)

val circuit :
  precision:int ->
  target_qubits:int ->
  controlled_power:(control:int -> power:int -> Gate.t list) ->
  Circuit.t
(** Textbook QPE: Hadamards on the counting register, controlled
    [U^(2^j)] from counting qubit [j], inverse QFT on the counting
    register.  [controlled_power ~control ~power] must return gates
    applying [U^power] to the target register under [control].  The
    eigenstate preparation on the target register is the caller's job
    (prepend it to the returned circuit). *)

val read_phase : Dd_sim.Engine.t -> precision:int -> target_qubits:int -> int
(** Measure the counting register; the phase estimate is
    [result / 2^precision]. *)

val estimate :
  ?prepare:Gate.t list ->
  precision:int ->
  target_qubits:int ->
  controlled_power:(control:int -> power:int -> Gate.t list) ->
  unit ->
  int
(** Convenience driver: fresh engine, optional eigenstate preparation,
    QPE circuit, measurement. *)
