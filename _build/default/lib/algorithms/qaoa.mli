(** QAOA for MaxCut: parameterised circuits whose cost expectation is read
    back through {!Dd_sim.Observable} — a variational workload where many
    short simulations run against the same circuit skeleton. *)

type graph = (int * int) list
(** Undirected edges over qubits [0 .. n-1]. *)

val validate_graph : n:int -> graph -> unit
(** Raises [Invalid_argument] on out-of-range or self-loop edges. *)

val circuit : n:int -> graph -> (float * float) list -> Circuit.t
(** [circuit ~n graph params]: H layer, then per [(gamma, beta)] layer the
    cost evolution [exp(-i gamma Z_u Z_v)] on every edge (as CX-RZ-CX)
    followed by the [RX(2 beta)] mixer on every qubit. *)

val cut_expectation : Dd_sim.Engine.t -> graph -> float
(** Expected cut value [sum over edges of (1 - <Z_u Z_v>) / 2] in the
    engine's current state. *)

val run : n:int -> graph -> (float * float) list -> Dd_sim.Engine.t
(** Simulate the QAOA circuit and return the engine. *)

val grid_search :
  ?resolution:int -> n:int -> graph -> unit -> (float * float) * float
(** One-layer parameter grid search; returns the best [(gamma, beta)] and
    its cut expectation. *)

val max_cut_brute_force : n:int -> graph -> int
(** Classical exhaustive MaxCut (for comparing against the quantum
    expectation in tests and examples). *)
