(** Quantum counting: estimate how many basis states an oracle marks, by
    phase estimation on the Grover iteration operator.

    The controlled powers [G^(2^j)] are built as matrix DDs by repeated
    squaring — matrix-matrix multiplication again doing the heavy lifting —
    and lifted into the full register with Kronecker products and a top
    control. *)

type estimate = {
  searched : int;  (** N = 2^n *)
  marked : int;  (** the true count (from the oracle set) *)
  measured_phase : int;
  estimated_count : float;  (** N * sin^2(pi * y / 2^precision) *)
}

val grover_operator : Dd_sim.Engine.t -> marked:int list -> Dd.Mdd.edge
(** The Grover iteration [D x O] as one matrix on the engine's width, with
    an oracle marking the given set. *)

val estimate :
  ?seed:int -> precision:int -> n:int -> marked:int list -> unit -> estimate
(** Run quantum counting with [precision] phase bits over an [n]-qubit
    search space.  Raises [Invalid_argument] on duplicate or out-of-range
    marked elements. *)
