(** Cross-entropy benchmarking (XEB) for random-circuit sampling, the
    figure of merit of the supremacy experiments the paper's [supremacy]
    benchmarks come from.

    The linear XEB fidelity of samples [x_1..x_m] against an ideal state is
    [2^n * mean(p(x_i)) - 1]: about [1] for samples drawn from the ideal
    (Porter-Thomas) distribution, [0] for uniform noise.  Amplitude lookups
    are single DD path walks, so scoring is cheap even for wide
    registers. *)

val linear_fidelity : Dd_sim.Engine.t -> int list -> float
(** Score a list of sampled basis-state indices against the engine's
    current state. *)

val sample_and_score : ?shots:int -> Dd_sim.Engine.t -> float
(** Draw [shots] (default 500) samples from the engine's own state and
    score them — an ideal sampler, expected to score near 1 on
    Porter-Thomas-shaped states. *)

val uniform_score : ?shots:int -> ?seed:int -> Dd_sim.Engine.t -> float
(** Score uniformly random bitstrings — a maximally noisy sampler,
    expected to score near 0. *)
