(** Grover's database search (paper Section IV-B, Fig. 6): the Grover
    iteration (oracle + diffusion) is emitted as a [Circuit.Repeat] block so
    the engine's DD-repeating treatment can combine it once and re-apply
    it. *)

val iterations : int -> int
(** Optimal iteration count [round(pi/4 * sqrt(2^n))] for one marked item. *)

val oracle_gates : n:int -> marked:int -> Gate.t list
(** Phase oracle flipping the sign of [|marked>]: one multi-controlled Z
    with polarities matching the bits of [marked]. *)

val diffusion_gates : n:int -> Gate.t list
(** Inversion about the mean. *)

val circuit : ?iterations:int -> n:int -> marked:int -> unit -> Circuit.t
(** Full search circuit: uniform superposition, then a [Repeat] block of
    Grover iterations (default count {!iterations}). *)

val success_probability : Dd_sim.Engine.t -> marked:int -> float
(** Probability of measuring the marked element in the engine's current
    state. *)

(** {2 DD-construct extension}

    The paper applies its DD-construct strategy only to Shor's oracle; the
    same idea transfers to Grover: the phase oracle is a diagonal matrix
    built directly with {!Dd.Mdd.of_diagonal}, skipping the multi-controlled
    gate entirely. *)

val oracle_dd : Dd.Context.t -> n:int -> marked:int -> Dd.Mdd.edge
(** The oracle [diag(1, ..., -1 at marked, ..., 1)] built directly. *)

val iteration_dd : Dd_sim.Engine.t -> marked:int -> Dd.Mdd.edge
(** One full Grover iteration (oracle then diffusion) as a single matrix:
    the combined operator DD-repeating re-applies. *)

val run_construct :
  ?iterations:int -> n:int -> marked:int -> unit -> Dd_sim.Engine.t
(** Grover with the directly-constructed iteration operator: H layer, then
    [iterations] applications of {!iteration_dd}. *)
