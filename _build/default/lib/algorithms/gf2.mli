(** Linear algebra over GF(2) on bit-vectors packed into ints — the
    classical post-processing half of Simon's algorithm. *)

type system
(** A growing system of GF(2) linear equations [v . s = 0]. *)

val create : int -> system
(** [create n]: empty system over [n]-bit vectors. *)

val add_equation : system -> int -> bool
(** Insert a constraint vector (row-reduced on the fly).  Returns [true] if
    the vector was independent of the existing rows. *)

val rank : system -> int

val nullspace_vector : system -> int option
(** A non-zero [s] with [v . s = 0] for every inserted [v], if the system's
    rank is [n - 1] (the Simon situation); [None] while the nullspace has
    dimension other than one. *)

val dot : int -> int -> bool
(** GF(2) inner product (parity of the AND). *)
