type graph = (int * int) list

let validate_graph ~n graph =
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Qaoa: edge endpoint out of range";
      if u = v then invalid_arg "Qaoa: self loop")
    graph

(* exp(-i gamma Z_u Z_v) up to global phase: CX u->v, RZ(2 gamma) v,
   CX u->v. *)
let cost_layer graph gamma =
  List.concat_map
    (fun (u, v) -> [ Gate.cx u v; Gate.rz (2. *. gamma) v; Gate.cx u v ])
    graph

let mixer_layer n beta = List.init n (fun q -> Gate.rx (2. *. beta) q)

let circuit ~n graph params =
  validate_graph ~n graph;
  let layers =
    List.concat_map
      (fun (gamma, beta) -> cost_layer graph gamma @ mixer_layer n beta)
      params
  in
  Circuit.of_gates
    ~name:(Printf.sprintf "qaoa_p%d" (List.length params))
    ~qubits:n
    (List.init n Gate.h @ layers)

let cut_expectation engine graph =
  List.fold_left
    (fun acc (u, v) ->
      let zz =
        Dd_sim.Observable.expectation engine
          [ (u, Dd_sim.Observable.Z); (v, Dd_sim.Observable.Z) ]
      in
      acc +. ((1. -. zz) /. 2.))
    0. graph

let run ~n graph params =
  let engine = Dd_sim.Engine.create n in
  Dd_sim.Engine.run engine (circuit ~n graph params);
  engine

let grid_search ?(resolution = 12) ~n graph () =
  validate_graph ~n graph;
  let best = ref ((0., 0.), neg_infinity) in
  for i = 0 to resolution - 1 do
    for j = 0 to resolution - 1 do
      let gamma = Float.pi *. float_of_int i /. float_of_int resolution in
      let beta =
        Float.pi /. 2. *. float_of_int j /. float_of_int resolution
      in
      let engine = run ~n graph [ (gamma, beta) ] in
      let value = cut_expectation engine graph in
      let _, best_value = !best in
      if value > best_value then best := ((gamma, beta), value)
    done
  done;
  !best

let max_cut_brute_force ~n graph =
  validate_graph ~n graph;
  if n > 20 then invalid_arg "Qaoa.max_cut_brute_force: too many qubits";
  let best = ref 0 in
  for assignment = 0 to (1 lsl n) - 1 do
    let cut =
      List.fold_left
        (fun acc (u, v) ->
          if (assignment lsr u) land 1 <> (assignment lsr v) land 1 then
            acc + 1
          else acc)
        0 graph
    in
    if cut > !best then best := cut
  done;
  !best
