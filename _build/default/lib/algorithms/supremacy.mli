(** Random-circuit workloads in the style of the Google quantum-supremacy
    proposal (Boixo et al., the paper's reference [11]): a 2D qubit grid,
    cyclically staggered CZ layers, and single-qubit gates drawn from
    {T, sqrt(X), sqrt(Y)} under the published placement rules.  These are
    the "supremacy_depth_qubits" benchmarks of the paper's evaluation —
    their states develop large DDs quickly, which is exactly the regime
    where combining operations pays off.

    Instance-level randomness necessarily differs from Google's original
    circuit files (see DESIGN.md, substitutions). *)

val cz_layer : rows:int -> cols:int -> int -> (int * int) list
(** [cz_layer ~rows ~cols t]: the CZ pairs (as qubit-index pairs) of the
    configuration used at cycle [t] (configurations repeat with period 8).
    Qubit index is [row * cols + col]. *)

val circuit :
  ?seed:int -> rows:int -> cols:int -> cycles:int -> unit -> Circuit.t
(** Full instance: an initial Hadamard layer followed by [cycles] cycles of
    a CZ layer plus rule-driven single-qubit gates. *)
