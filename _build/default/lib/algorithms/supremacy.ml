(* Eight staggered CZ configurations: four vertical and four horizontal,
   each activating every fourth bond with a per-row/column offset so that
   every grid edge fires once per period. *)
let cz_layer ~rows ~cols t =
  let qubit r c = (r * cols) + c in
  let conf = ((t mod 8) + 8) mod 8 in
  let pairs = ref [] in
  if conf < 4 then begin
    let residue = [| 0; 2; 1; 3 |].(conf) in
    for r = 0 to rows - 2 do
      for c = 0 to cols - 1 do
        if (r + (2 * (c mod 2))) mod 4 = residue then
          pairs := (qubit r c, qubit (r + 1) c) :: !pairs
      done
    done
  end
  else begin
    let residue = [| 0; 2; 1; 3 |].(conf - 4) in
    for r = 0 to rows - 1 do
      for c = 0 to cols - 2 do
        if (c + (2 * (r mod 2))) mod 4 = residue then
          pairs := (qubit r c, qubit r (c + 1)) :: !pairs
      done
    done
  end;
  List.rev !pairs

type last_gate = Was_h | Was_t | Was_sx | Was_sy | Was_cz of last_gate
(* [Was_cz previous] remembers the last single-qubit gate through CZ
   cycles, so "different from the previous single-qubit gate" works. *)

let circuit ?(seed = 2019) ~rows ~cols ~cycles () =
  if rows < 1 || cols < 1 then invalid_arg "Supremacy.circuit";
  let qubits = rows * cols in
  let rng = Random.State.make [| seed |] in
  let last = Array.make qubits Was_h in
  let had_t = Array.make qubits false in
  let in_previous_cz = Array.make qubits false in
  let gates = ref [] in
  let emit gate = gates := gate :: !gates in
  List.iter emit (List.init qubits Gate.h);
  for t = 0 to cycles - 1 do
    let layer = cz_layer ~rows ~cols t in
    let in_current_cz = Array.make qubits false in
    List.iter
      (fun (a, b) ->
        in_current_cz.(a) <- true;
        in_current_cz.(b) <- true)
      layer;
    (* single-qubit gates go on qubits that rested this cycle but
       interacted in the previous one *)
    for q = 0 to qubits - 1 do
      if in_previous_cz.(q) && not in_current_cz.(q) then
        if not had_t.(q) then begin
          emit (Gate.t_gate q);
          had_t.(q) <- true;
          last.(q) <- Was_t
        end
        else begin
          let rec strip = function Was_cz prev -> strip prev | g -> g in
          let pick_sx =
            match strip last.(q) with
            | Was_sx -> false
            | Was_sy -> true
            | Was_h | Was_t | Was_cz _ -> Random.State.bool rng
          in
          if pick_sx then begin
            emit (Gate.sx q);
            last.(q) <- Was_sx
          end
          else begin
            emit (Gate.sy q);
            last.(q) <- Was_sy
          end
        end
    done;
    List.iter
      (fun (a, b) ->
        emit (Gate.cz a b);
        last.(a) <- Was_cz last.(a);
        last.(b) <- Was_cz last.(b))
      layer;
    Array.blit in_current_cz 0 in_previous_cz 0 qubits
  done;
  Circuit.of_gates
    ~name:(Printf.sprintf "supremacy_%dx%d_d%d" rows cols cycles)
    ~qubits
    (List.rev !gates)
