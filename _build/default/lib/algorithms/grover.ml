let iterations n =
  if n < 1 then invalid_arg "Grover.iterations";
  let amplitude_angle = asin (1. /. sqrt (float_of_int (1 lsl n))) in
  max 1 (int_of_float (Float.pi /. (4. *. amplitude_angle)))

(* Sign flip on |marked>: Z on qubit 0 whose controls select the bits of
   [marked] on qubits 1..n-1; when bit 0 of [marked] is 0, conjugating the
   target with X moves the flip to the right branch. *)
let oracle_gates ~n ~marked =
  if n < 1 || marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.oracle_gates";
  let controls =
    List.init (n - 1) (fun i ->
        let qubit = i + 1 in
        if (marked lsr qubit) land 1 = 1 then Gate.ctrl qubit
        else Gate.nctrl qubit)
  in
  let flip = Gate.make ~controls Gate.Z 0 in
  if marked land 1 = 1 then [ flip ] else [ Gate.x 0; flip; Gate.x 0 ]

let diffusion_gates ~n =
  if n < 1 then invalid_arg "Grover.diffusion_gates";
  let hs = List.init n Gate.h in
  let xs = List.init n Gate.x in
  let flip = Gate.mcz (List.init (n - 1) (fun i -> i + 1)) 0 in
  hs @ xs @ [ flip ] @ xs @ hs

let circuit ?iterations:count ~n ~marked () =
  let count = match count with Some c -> c | None -> iterations n in
  let init = List.map Circuit.gate (List.init n Gate.h) in
  let body =
    List.map Circuit.gate (oracle_gates ~n ~marked @ diffusion_gates ~n)
  in
  Circuit.create
    ~name:(Printf.sprintf "grover_%d" n)
    ~qubits:n
    (init @ [ Circuit.repeat count body ])

let success_probability engine ~marked =
  Dd_complex.Cnum.mag2 (Dd_sim.Engine.amplitude engine marked)

let oracle_dd ctx ~n ~marked =
  if n < 1 || marked < 0 || marked >= 1 lsl n then
    invalid_arg "Grover.oracle_dd";
  let minus_one = Dd_complex.Cnum.of_float (-1.) in
  Dd.Mdd.of_diagonal ctx ~n (fun i ->
      if i = marked then minus_one else Dd_complex.Cnum.one)

let iteration_dd engine ~marked =
  let n = Dd_sim.Engine.qubits engine in
  let ctx = Dd_sim.Engine.context engine in
  let oracle = oracle_dd ctx ~n ~marked in
  let diffusion = Dd_sim.Engine.combine engine (diffusion_gates ~n) in
  Dd.Mdd.mul ctx diffusion oracle

let run_construct ?iterations:count ~n ~marked () =
  let count = match count with Some c -> c | None -> iterations n in
  let engine = Dd_sim.Engine.create n in
  List.iter (Dd_sim.Engine.apply_gate engine) (List.init n Gate.h);
  let iteration = iteration_dd engine ~marked in
  for _ = 1 to count do
    Dd_sim.Engine.apply_matrix engine iteration
  done;
  engine
