let swap_gates a b = [ Gate.cx a b; Gate.cx b a; Gate.cx a b ]

(* MSB-first cascade: H on the most significant remaining bit, then
   controlled phases from every lower bit, finally a bit-order reversal. *)
let on_register ?(swaps = true) register =
  let m = Array.length register in
  if m = 0 then invalid_arg "Qft.on_register: empty register";
  let gates = ref [] in
  let emit gate = gates := gate :: !gates in
  for j = m - 1 downto 0 do
    emit (Gate.h register.(j));
    for k = j - 1 downto 0 do
      let theta = Float.pi /. float_of_int (1 lsl (j - k)) in
      emit (Gate.cphase theta register.(k) register.(j))
    done
  done;
  if swaps then
    for i = 0 to (m / 2) - 1 do
      List.iter emit (swap_gates register.(i) register.(m - 1 - i))
    done;
  List.rev !gates

let inverse_on_register ?swaps register =
  List.rev_map Gate.adjoint (on_register ?swaps register)

let circuit n =
  Circuit.of_gates ~name:(Printf.sprintf "qft_%d" n) ~qubits:n
    (on_register (Array.init n (fun i -> i)))

let inverse_circuit n =
  Circuit.of_gates ~name:(Printf.sprintf "iqft_%d" n) ~qubits:n
    (inverse_on_register (Array.init n (fun i -> i)))
