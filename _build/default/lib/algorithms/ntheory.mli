(** Classical number theory needed by Shor's algorithm: modular arithmetic,
    continued fractions, and order/factor extraction.  Works on native ints;
    moduli up to 2^20 are safe (intermediate products stay below 2^62). *)

val gcd : int -> int -> int

val egcd : int -> int -> int * int * int
(** [egcd a b = (g, x, y)] with [a*x + b*y = g]. *)

val mod_inv : int -> int -> int
(** [mod_inv a n]: inverse of [a] modulo [n]; raises [Invalid_argument] when
    [gcd a n <> 1]. *)

val mod_pow : int -> int -> int -> int
(** [mod_pow base exponent n]. *)

val is_prime : int -> bool
(** Deterministic trial division; fine for the sizes used here. *)

val bit_length : int -> int
(** Bits needed to represent a positive integer. *)

val multiplicative_order : int -> int -> int
(** [multiplicative_order a n]: smallest [r > 0] with [a^r = 1 (mod n)];
    raises [Invalid_argument] when [gcd a n <> 1]. *)

val convergents : int -> int -> (int * int) list
(** [convergents num den]: the continued-fraction convergents [(p, q)] of
    [num/den], in order of increasing [q]. *)

val order_from_phase : a:int -> modulus:int -> y:int -> bits:int -> int option
(** Recover the multiplicative order of [a] mod [modulus] from a phase
    measurement [y] out of [2^bits], via continued fractions (checking
    convergent denominators and their small multiples). *)

val factor_from_order : a:int -> modulus:int -> order:int -> (int * int) option
(** The classical post-processing step of Shor: non-trivial factors from an
    even order, if [a^(order/2) <> -1 (mod modulus)]. *)
