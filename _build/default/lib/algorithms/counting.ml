open Dd_complex

type estimate = {
  searched : int;
  marked : int;
  measured_phase : int;
  estimated_count : float;
}

let oracle_dd ctx ~n marked =
  let size = 1 lsl n in
  let flags = Array.make size false in
  List.iter
    (fun m ->
      if m < 0 || m >= size then invalid_arg "Counting: marked out of range";
      if flags.(m) then invalid_arg "Counting: duplicate marked element";
      flags.(m) <- true)
    marked;
  let minus_one = Cnum.of_float (-1.) in
  Dd.Mdd.of_diagonal ctx ~n (fun x -> if flags.(x) then minus_one else Cnum.one)

let grover_operator engine ~marked =
  let n = Dd_sim.Engine.qubits engine in
  let ctx = Dd_sim.Engine.context engine in
  let oracle = oracle_dd ctx ~n marked in
  let diffusion = Dd_sim.Engine.combine engine (Grover.diffusion_gates ~n) in
  (* the gate realisation of the diffusion is -(2|s><s| - I); the global
     sign is irrelevant for searching but becomes a relative phase once the
     operator is controlled, so normalise to the textbook G here *)
  Dd.Mdd.scale ctx (Cnum.of_float (-1.)) (Dd.Mdd.mul ctx diffusion oracle)

(* G^(2^j), controlled from counting qubit j, lifted to the full
   (n + precision)-qubit register: identity on the counting qubits below
   the control, a top control, identity above. *)
let lifted_controlled_power ctx ~n ~precision ~j power_dd =
  let inner = Dd.Mdd.kron ctx (Dd.Mdd.identity ctx j) power_dd in
  let controlled = Dd.Mdd.control_top ctx ~n:(n + j) inner in
  Dd.Mdd.kron ctx (Dd.Mdd.identity ctx (precision - 1 - j)) controlled

let estimate ?(seed = 0xC0) ~precision ~n ~marked () =
  if precision < 1 then invalid_arg "Counting: need precision >= 1";
  if n < 1 then invalid_arg "Counting: need a search register";
  let qubits = n + precision in
  let engine = Dd_sim.Engine.create ~seed qubits in
  let ctx = Dd_sim.Engine.context engine in
  (* uniform superposition on the search register, H on counting *)
  for q = 0 to qubits - 1 do
    Dd_sim.Engine.apply_gate engine (Gate.h q)
  done;
  let grover =
    let search_engine = Dd_sim.Engine.create ~context:ctx n in
    grover_operator search_engine ~marked
  in
  let power = ref grover in
  for j = 0 to precision - 1 do
    let lifted = lifted_controlled_power ctx ~n ~precision ~j !power in
    Dd_sim.Engine.apply_matrix engine lifted;
    if j < precision - 1 then power := Dd.Mdd.mul ctx !power !power
  done;
  let counting = Qpe.counting_register ~precision ~target_qubits:n in
  let iqft =
    Circuit.of_gates ~qubits (Qft.inverse_on_register counting)
  in
  Dd_sim.Engine.run engine iqft;
  let y = Qpe.read_phase engine ~precision ~target_qubits:n in
  let theta =
    Float.pi *. float_of_int y /. float_of_int (1 lsl precision)
  in
  let count = float_of_int (1 lsl n) *. (sin theta *. sin theta) in
  {
    searched = 1 lsl n;
    marked = List.length marked;
    measured_phase = y;
    estimated_count = count;
  }
