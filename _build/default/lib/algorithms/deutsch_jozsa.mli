(** Deutsch-Jozsa in the phase-oracle formulation, with the oracle built
    directly as a diagonal DD ({!Dd.Mdd.of_diagonal}) — the DD-construct
    treatment applied to a textbook algorithm: no ancilla qubit, no gate
    decomposition of the Boolean function. *)

type verdict = Constant | Balanced

val oracle_dd : Dd.Context.t -> n:int -> (int -> bool) -> Dd.Mdd.edge
(** The phase oracle [|x> -> (-1)^(f x) |x>]. *)

val run : n:int -> (int -> bool) -> verdict
(** Decide whether [f] (promised constant or balanced on [2^n] inputs) is
    constant, with one oracle application. *)

val classify_probability : n:int -> (int -> bool) -> float
(** Probability of measuring all-zeros (the "constant" outcome): [1] for a
    constant [f], [0] for a balanced one; exposed for testing the promise
    boundary. *)
