let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let rec egcd a b =
  if b = 0 then (a, 1, 0)
  else
    let g, x, y = egcd b (a mod b) in
    (g, y, x - (a / b * y))

let mod_inv a n =
  let g, x, _ = egcd (((a mod n) + n) mod n) n in
  if g <> 1 then invalid_arg "Ntheory.mod_inv: not coprime"
  else ((x mod n) + n) mod n

let mod_pow base exponent n =
  if n <= 0 then invalid_arg "Ntheory.mod_pow: modulus must be positive";
  let rec loop base exponent acc =
    if exponent = 0 then acc
    else
      let acc = if exponent land 1 = 1 then acc * base mod n else acc in
      loop (base * base mod n) (exponent lsr 1) acc
  in
  loop (((base mod n) + n) mod n) exponent (1 mod n)

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let rec loop d = d * d > n || (n mod d <> 0 && loop (d + 2)) in
    loop 3

let bit_length n =
  if n <= 0 then invalid_arg "Ntheory.bit_length: need a positive integer";
  let rec loop n acc = if n = 0 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let multiplicative_order a n =
  if gcd a n <> 1 then invalid_arg "Ntheory.multiplicative_order: not coprime";
  let a = ((a mod n) + n) mod n in
  (* invariant: x = a^r mod n *)
  let rec loop x r = if x = 1 then r else loop (x * a mod n) (r + 1) in
  loop a 1

let convergents num den =
  (* standard recurrence p_k = a_k p_{k-1} + p_{k-2} on the quotient
     sequence of the Euclidean algorithm *)
  let rec loop num den p1 p0 q1 q0 acc =
    if den = 0 then List.rev acc
    else
      let a = num / den in
      let p = (a * p1) + p0 and q = (a * q1) + q0 in
      loop den (num mod den) p p1 q q1 ((p, q) :: acc)
  in
  loop num den 1 0 0 1 []

let order_from_phase ~a ~modulus ~y ~bits =
  if y = 0 then None
  else
    let candidates =
      convergents y (1 lsl bits)
      |> List.concat_map (fun (_, q) -> [ q; 2 * q; 3 * q; 4 * q ])
      |> List.filter (fun q -> q > 0 && q < 2 * modulus)
      |> List.sort_uniq compare
    in
    List.find_opt (fun q -> mod_pow a q modulus = 1) candidates

let factor_from_order ~a ~modulus ~order =
  if order mod 2 = 1 then None
  else
    let half = mod_pow a (order / 2) modulus in
    if half = modulus - 1 then None
    else
      let p = gcd (half - 1) modulus and q = gcd (half + 1) modulus in
      let nontrivial f = f > 1 && f < modulus in
      if nontrivial p then Some (p, modulus / p)
      else if nontrivial q then Some (q, modulus / q)
      else None
