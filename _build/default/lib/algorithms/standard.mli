(** Small standard circuits used by the examples and tests. *)

val bell : unit -> Circuit.t
(** Two-qubit Bell pair |00> + |11>. *)

val ghz : int -> Circuit.t
(** n-qubit GHZ state. *)

val bernstein_vazirani : n:int -> secret:int -> Circuit.t
(** Bernstein-Vazirani on an [n]-bit secret with a phase-oracle formulation
    (no ancilla): measuring all qubits yields [secret] with certainty. *)

val random_circuit :
  ?seed:int -> qubits:int -> gates:int -> unit -> Circuit.t
(** Random circuit over {H, T, S, X, Rz, CX, CZ} — a correctness workload
    for comparing simulators. *)
