(** Simon's problem: recover the hidden period [s] of a 2-to-1 function
    [f] with [f x = f (x XOR s)].

    The XOR oracle [|x>|y> -> |x>|f x XOR y>] on [2n] qubits is built
    directly as a permutation DD (the DD-construct treatment again — no
    gate decomposition of [f]); each quantum round yields a vector
    orthogonal to [s] over GF(2), and {!Gf2} solves for [s] after [n - 1]
    independent rounds. *)

val canonical_function : n:int -> s:int -> int -> int
(** The standard 2-to-1 instance with period [s]: maps [x] to
    [min x (x XOR s)]. *)

val oracle_dd : Dd.Context.t -> n:int -> (int -> int) -> Dd.Mdd.edge
(** XOR oracle on [2n] qubits (input register low, output register high);
    [f] must map [n]-bit values to [n]-bit values. *)

val sample_orthogonal : Dd_sim.Engine.t -> n:int -> Dd.Mdd.edge -> int
(** One Simon round on a [2n]-qubit engine (which is reset): returns a
    measured vector [v] with [v . s = 0]. *)

val recover_period : ?seed:int -> ?max_rounds:int -> n:int -> (int -> int)
  -> int option
(** Full algorithm: repeat rounds until [n - 1] independent equations are
    collected (at most [max_rounds], default [20 n]), then solve.  The
    returned [s] satisfies [f x = f (x XOR s)] by construction of the
    instance; [None] if the rounds never produced enough equations. *)
