let bell () =
  Circuit.of_gates ~name:"bell" ~qubits:2 [ Gate.h 0; Gate.cx 0 1 ]

let ghz n =
  if n < 1 then invalid_arg "Standard.ghz";
  let chain = List.init (n - 1) (fun i -> Gate.cx i (i + 1)) in
  Circuit.of_gates ~name:(Printf.sprintf "ghz_%d" n) ~qubits:n
    (Gate.h 0 :: chain)

let bernstein_vazirani ~n ~secret =
  if n < 1 || secret < 0 || secret >= 1 lsl n then
    invalid_arg "Standard.bernstein_vazirani";
  let hs = List.init n Gate.h in
  let oracle =
    List.filteri (fun i _ -> (secret lsr i) land 1 = 1) (List.init n Gate.z)
  in
  Circuit.of_gates
    ~name:(Printf.sprintf "bv_%d_%d" n secret)
    ~qubits:n
    (hs @ oracle @ hs)

let random_circuit ?(seed = 1) ~qubits ~gates () =
  if qubits < 1 then invalid_arg "Standard.random_circuit";
  let rng = Random.State.make [| seed |] in
  let random_qubit () = Random.State.int rng qubits in
  let random_gate () =
    let target = random_qubit () in
    match Random.State.int rng (if qubits >= 2 then 8 else 6) with
    | 0 -> Gate.h target
    | 1 -> Gate.t_gate target
    | 2 -> Gate.s target
    | 3 -> Gate.x target
    | 4 -> Gate.rz (Random.State.float rng (2. *. Float.pi)) target
    | 5 -> Gate.ry (Random.State.float rng (2. *. Float.pi)) target
    | pick ->
      let rec other () =
        let q = random_qubit () in
        if q = target then other () else q
      in
      let control = other () in
      if pick = 6 then Gate.cx control target else Gate.cz control target
  in
  Circuit.of_gates
    ~name:(Printf.sprintf "random_%d_%d_%d" qubits gates seed)
    ~qubits
    (List.init gates (fun _ -> random_gate ()))
