(** Quantum Fourier transform circuits.

    Conventions: a register is an array of engine qubit indices with element
    [0] the least significant bit.  [QFT |x> = 2^(-m/2) sum_y
    exp(2 pi i x y / 2^m) |y>]; with [~swaps:true] (the default) output bit
    [j] ends up on register element [j]. *)

val on_register : ?swaps:bool -> int array -> Gate.t list
(** QFT gate sequence on the given register. *)

val inverse_on_register : ?swaps:bool -> int array -> Gate.t list
(** Adjoint of {!on_register}. *)

val circuit : int -> Circuit.t
(** QFT (with swaps) on a full [n]-qubit register. *)

val inverse_circuit : int -> Circuit.t
