lib/cnum/cnum.mli: Format
