lib/cnum/ctable.ml: Cnum Hashtbl
