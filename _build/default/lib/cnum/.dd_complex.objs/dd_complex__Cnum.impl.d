lib/cnum/cnum.ml: Format Printf
