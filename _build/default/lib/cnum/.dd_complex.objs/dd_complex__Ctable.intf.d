lib/cnum/ctable.mli: Cnum
