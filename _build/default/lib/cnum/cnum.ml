type t = { re : float; im : float; tag : int }

(* Tags 0 and 1 are reserved; Ctable registers zero and one under them when a
   table is created, so the constants below are canonical in every table. *)
let zero = { re = 0.; im = 0.; tag = 0 }
let one = { re = 1.; im = 0.; tag = 1 }

let make re im = { re; im; tag = -1 }
let of_float x = make x 0.
let of_polar r theta = make (r *. cos theta) (r *. sin theta)

let re z = z.re
let im z = z.im
let tag z = z.tag
let with_tag z tag = { z with tag }

let add a b = make (a.re +. b.re) (a.im +. b.im)
let sub a b = make (a.re -. b.re) (a.im -. b.im)

let mul a b =
  make ((a.re *. b.re) -. (a.im *. b.im)) ((a.re *. b.im) +. (a.im *. b.re))

let div a b =
  let d = (b.re *. b.re) +. (b.im *. b.im) in
  if d = 0. then raise Division_by_zero;
  make
    (((a.re *. b.re) +. (a.im *. b.im)) /. d)
    (((a.im *. b.re) -. (a.re *. b.im)) /. d)

let neg a = make (-.a.re) (-.a.im)
let conj a = make a.re (-.a.im)
let scale s a = make (s *. a.re) (s *. a.im)
let mag2 a = (a.re *. a.re) +. (a.im *. a.im)
let mag a = sqrt (mag2 a)

let default_tolerance = 1e-12

let approx_zero ?(tol = default_tolerance) a =
  abs_float a.re <= tol && abs_float a.im <= tol

let approx_equal ?(tol = default_tolerance) a b =
  abs_float (a.re -. b.re) <= tol && abs_float (a.im -. b.im) <= tol

let is_exact_zero a = a.re = 0. && a.im = 0.
let is_exact_one a = a.re = 1. && a.im = 0.

let compare_mag a b =
  let c = compare (mag2 a) (mag2 b) in
  if c <> 0 then c
  else
    let c = compare a.re b.re in
    if c <> 0 then c else compare a.im b.im

let to_string a = Printf.sprintf "%.10g%+.10gi" a.re a.im
let pp fmt a = Format.pp_print_string fmt (to_string a)
