(** Complex numbers for decision-diagram edge weights.

    A value carries a [tag]: [-1] for a freshly computed (uninterned) number,
    or a unique non-negative identifier once canonicalised through
    {!Ctable.intern}.  Interned values of (numerically) equal numbers are
    physically equal and share the same tag, so weight equality inside the DD
    package is a single integer comparison. *)

type t = private { re : float; im : float; tag : int }

val zero : t
(** [0 + 0i], pre-tagged with {!Ctable.zero_tag}. *)

val one : t
(** [1 + 0i], pre-tagged with {!Ctable.one_tag}. *)

val make : float -> float -> t
(** [make re im] is the uninterned complex number [re + im*i]. *)

val of_float : float -> t
(** [of_float x] is [make x 0.]. *)

val of_polar : float -> float -> t
(** [of_polar r theta] is [r * (cos theta + i sin theta)]. *)

val re : t -> float
val im : t -> float
val tag : t -> int

val with_tag : t -> int -> t
(** [with_tag z tag] re-labels [z]; reserved for {!Ctable}. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] when [b] is exactly zero. *)

val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

val mag2 : t -> float
(** Squared magnitude [re*re + im*im]. *)

val mag : t -> float

val default_tolerance : float
(** Tolerance used for approximate comparisons, [1e-12]. *)

val approx_zero : ?tol:float -> t -> bool
(** Component-wise comparison against zero. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison. *)

val is_exact_zero : t -> bool
val is_exact_one : t -> bool

val compare_mag : t -> t -> int
(** Total order by squared magnitude, then by real part, then imaginary
    part; used for deterministic normalisation tie-breaks. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
