open Dd_complex

type cache_stats = { mutable hits : int; mutable misses : int }

type stats = {
  mutable v_nodes_created : int;
  mutable m_nodes_created : int;
  add_v : cache_stats;
  add_m : cache_stats;
  mul_mv : cache_stats;
  mul_mm : cache_stats;
}

type t = {
  ctable : Ctable.t;
  v_unique : (int * int * int * int * int, Types.vnode) Hashtbl.t;
  m_unique :
    ( int * int * int * int * int * int * int * int * int,
      Types.mnode )
    Hashtbl.t;
  mutable next_vid : int;
  mutable next_mid : int;
  add_v_cache : (int * int * int, Types.vedge) Hashtbl.t;
  add_m_cache : (int * int * int, Types.medge) Hashtbl.t;
  mul_mv_cache : (int * int, Types.vedge) Hashtbl.t;
  mul_mm_cache : (int * int, Types.medge) Hashtbl.t;
  adjoint_cache : (int, Types.medge) Hashtbl.t;
  dot_cache : (int * int, Cnum.t) Hashtbl.t;
  norm_cache : (int, float) Hashtbl.t;
  max_mag_cache : (int, float) Hashtbl.t;
  identity_cache : (int, Types.medge) Hashtbl.t;
  stats : stats;
}

let fresh_stats () =
  {
    v_nodes_created = 0;
    m_nodes_created = 0;
    add_v = { hits = 0; misses = 0 };
    add_m = { hits = 0; misses = 0 };
    mul_mv = { hits = 0; misses = 0 };
    mul_mm = { hits = 0; misses = 0 };
  }

let create ?tolerance () =
  {
    ctable = Ctable.create ?tolerance ();
    v_unique = Hashtbl.create 65536;
    m_unique = Hashtbl.create 65536;
    next_vid = 1;
    next_mid = 1;
    add_v_cache = Hashtbl.create 65536;
    add_m_cache = Hashtbl.create 65536;
    mul_mv_cache = Hashtbl.create 65536;
    mul_mm_cache = Hashtbl.create 65536;
    adjoint_cache = Hashtbl.create 1024;
    dot_cache = Hashtbl.create 1024;
    norm_cache = Hashtbl.create 65536;
    max_mag_cache = Hashtbl.create 65536;
    identity_cache = Hashtbl.create 64;
    stats = fresh_stats ();
  }

let cnum ctx z = Ctable.intern ctx.ctable z

let clear_compute_caches ctx =
  Hashtbl.reset ctx.add_v_cache;
  Hashtbl.reset ctx.add_m_cache;
  Hashtbl.reset ctx.mul_mv_cache;
  Hashtbl.reset ctx.mul_mm_cache;
  Hashtbl.reset ctx.adjoint_cache;
  Hashtbl.reset ctx.dot_cache;
  Hashtbl.reset ctx.norm_cache;
  Hashtbl.reset ctx.max_mag_cache

let v_unique_size ctx = ctx.next_vid - 1
let m_unique_size ctx = ctx.next_mid - 1

let reset_stats ctx =
  let s = ctx.stats in
  s.v_nodes_created <- 0;
  s.m_nodes_created <- 0;
  List.iter
    (fun c ->
      c.hits <- 0;
      c.misses <- 0)
    [ s.add_v; s.add_m; s.mul_mv; s.mul_mm ]

let pp_stats fmt ctx =
  let s = ctx.stats in
  let line name c =
    Format.fprintf fmt "%s: %d hits / %d misses@\n" name c.hits c.misses
  in
  Format.fprintf fmt "nodes created: %d vector, %d matrix@\n"
    s.v_nodes_created s.m_nodes_created;
  line "add_v " s.add_v;
  line "add_m " s.add_m;
  line "mul_mv" s.mul_mv;
  line "mul_mm" s.mul_mm

let live_v_nodes ctx = Hashtbl.length ctx.v_unique
let live_m_nodes ctx = Hashtbl.length ctx.m_unique

let collect ctx ~v_roots ~m_roots =
  let v_marked = Hashtbl.create 4096 in
  let m_marked = Hashtbl.create 4096 in
  let rec mark_v (node : Types.vnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem v_marked node.Types.vid)
    then begin
      Hashtbl.add v_marked node.Types.vid ();
      mark_v node.Types.v_low.Types.vt;
      mark_v node.Types.v_high.Types.vt
    end
  in
  let rec mark_m (node : Types.mnode) =
    if node.Types.level >= 0 && not (Hashtbl.mem m_marked node.Types.mid)
    then begin
      Hashtbl.add m_marked node.Types.mid ();
      mark_m node.Types.m00.Types.mt;
      mark_m node.Types.m01.Types.mt;
      mark_m node.Types.m10.Types.mt;
      mark_m node.Types.m11.Types.mt
    end
  in
  List.iter (fun (e : Types.vedge) -> mark_v e.Types.vt) v_roots;
  List.iter (fun (e : Types.medge) -> mark_m e.Types.mt) m_roots;
  let v_before = Hashtbl.length ctx.v_unique in
  let m_before = Hashtbl.length ctx.m_unique in
  let keep_v _key (node : Types.vnode) =
    if Hashtbl.mem v_marked node.Types.vid then Some node else None
  in
  let keep_m _key (node : Types.mnode) =
    if Hashtbl.mem m_marked node.Types.mid then Some node else None
  in
  Hashtbl.filter_map_inplace keep_v ctx.v_unique;
  Hashtbl.filter_map_inplace keep_m ctx.m_unique;
  (* the compute caches and the identity cache may hold dead nodes *)
  clear_compute_caches ctx;
  Hashtbl.reset ctx.identity_cache;
  ( v_before - Hashtbl.length ctx.v_unique,
    m_before - Hashtbl.length ctx.m_unique )
