(** Decision diagrams {e without} edge weights — the representation of the
    paper's Fig. 2b, where only exactly-equal sub-vectors can be shared and
    each distinct amplitude needs its own terminal.  Provided for the size
    comparison the paper draws against the edge-weighted Fig. 2c: convert a
    weighted DD and compare node counts ("adding weights ... leads to a
    more compact representation"). *)

type t

val of_vdd : Context.t -> Vdd.edge -> t
(** Convert a weighted vector DD by pushing the accumulated edge weights
    down to the terminals.  Sub-vectors that were shared only because they
    are {e multiples} of each other become distinct nodes here. *)

val node_count : t -> int
(** Internal (branching) nodes. *)

val leaf_count : t -> int
(** Distinct terminal values (the paper counts these as nodes too). *)

val total_count : t -> int
(** [node_count + leaf_count]. *)

val to_array : t -> n:int -> Dd_complex.Cnum.t array
(** Dense expansion (tests; small [n]). *)
