(** Node and edge representations shared by the whole DD package.

    Levels count from the bottom: the node adjacent to the terminal has
    level [0]; a DD over [n] qubits is rooted at level [n - 1].  Qubit [k]
    corresponds to bit [k] of a basis-state index (qubit [n-1] is the most
    significant).  There is no level skipping: every non-zero edge leaving a
    node at level [l] targets a node at level [l - 1] (or the terminal when
    [l = 0]).  Zero sub-vectors/sub-matrices are represented by {e zero
    edges} — weight exactly [Cnum.zero], target the terminal — the "0-stubs"
    of the paper's Fig. 2c.

    All edge weights are canonical values produced by {!Ctable.intern}, so
    two edges are equal iff their targets' ids and their weights' tags
    agree. *)

open Dd_complex

type vnode = { vid : int; level : int; v_low : vedge; v_high : vedge }
and vedge = { vw : Cnum.t; vt : vnode }

type mnode = {
  mid : int;
  level : int;
  m00 : medge;  (** upper-left quadrant *)
  m01 : medge;  (** upper-right quadrant *)
  m10 : medge;  (** lower-left quadrant *)
  m11 : medge;  (** lower-right quadrant *)
}
and medge = { mw : Cnum.t; mt : mnode }

val v_terminal : vnode
(** The unique vector terminal (level [-1], id [0]). *)

val m_terminal : mnode
(** The unique matrix terminal (level [-1], id [0]). *)

val v_zero : vedge
(** Canonical zero vector edge. *)

val m_zero : medge
(** Canonical zero matrix edge. *)

val v_is_terminal : vnode -> bool
val m_is_terminal : mnode -> bool

val v_is_zero : vedge -> bool
(** True iff the edge is a zero stub (weight exactly zero). *)

val m_is_zero : medge -> bool

val v_edge_equal : vedge -> vedge -> bool
(** Structural edge equality via node ids and weight tags. *)

val m_edge_equal : medge -> medge -> bool

val v_height : vedge -> int
(** Number of qubits spanned by a non-zero edge; [0] for scalars. Zero edges
    span any height and report [0]. *)

val m_height : medge -> int
