lib/dd/unweighted.mli: Context Dd_complex Vdd
