lib/dd/context.ml: Cnum Ctable Dd_complex Format Hashtbl List Types
