lib/dd/types.mli: Cnum Dd_complex
