lib/dd/mdd.mli: Cnum Context Dd_complex Types Vdd
