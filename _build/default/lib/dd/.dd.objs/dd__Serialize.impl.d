lib/dd/serialize.ml: Buffer Cnum Context Dd_complex Hashtbl List Mdd Printf String Types Vdd
