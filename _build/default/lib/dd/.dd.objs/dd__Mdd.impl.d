lib/dd/mdd.ml: Array Cnum Context Dd_complex Hashtbl List Types Vdd
