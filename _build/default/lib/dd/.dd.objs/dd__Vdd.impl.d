lib/dd/vdd.ml: Array Cnum Context Dd_complex Float Hashtbl List Set Types
