lib/dd/context.mli: Cnum Ctable Dd_complex Format Hashtbl Types
