lib/dd/dot.mli: Mdd Vdd
