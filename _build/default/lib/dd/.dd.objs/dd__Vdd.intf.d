lib/dd/vdd.mli: Cnum Context Dd_complex Types
