lib/dd/types.ml: Cnum Dd_complex
