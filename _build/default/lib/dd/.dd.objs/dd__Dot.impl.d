lib/dd/dot.ml: Buffer Cnum Dd_complex Mdd Printf Types Vdd
