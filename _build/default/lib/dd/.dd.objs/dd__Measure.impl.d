lib/dd/measure.ml: Array Cnum Context Dd_complex Hashtbl Random Types Vdd
