lib/dd/measure.mli: Context Random Vdd
