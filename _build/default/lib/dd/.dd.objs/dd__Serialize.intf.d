lib/dd/serialize.mli: Context Mdd Vdd
