lib/dd/unweighted.ml: Array Cnum Context Dd_complex Hashtbl Types
