open Dd_complex
open Types

type node =
  | Leaf of { value : Cnum.t; leaf_id : int }
  | Branch of { id : int; level : int; low : node; high : node }

type t = { root : node; nodes : int; leaves : int }

let node_id = function Leaf { leaf_id; _ } -> -1 - leaf_id | Branch { id; _ } -> id

(* Conversion pushes the accumulated path weight towards the terminals;
   hash-consing uses (level, child ids) for branches and the canonical
   weight tag for leaves, so sharing happens exactly when sub-vectors are
   equal — not merely proportional. *)
let of_vdd ctx edge =
  let leaf_table : (int, node) Hashtbl.t = Hashtbl.create 256 in
  let branch_table : (int * int * int, node) Hashtbl.t = Hashtbl.create 256 in
  let memo : (int * int, node) Hashtbl.t = Hashtbl.create 1024 in
  let next_leaf = ref 0 in
  let next_branch = ref 0 in
  let leaf value =
    let value = Context.cnum ctx value in
    match Hashtbl.find_opt leaf_table (Cnum.tag value) with
    | Some node -> node
    | None ->
      let node = Leaf { value; leaf_id = !next_leaf } in
      incr next_leaf;
      Hashtbl.add leaf_table (Cnum.tag value) node;
      node
  in
  let branch level low high =
    let key = (level, node_id low, node_id high) in
    match Hashtbl.find_opt branch_table key with
    | Some node -> node
    | None ->
      let node = Branch { id = !next_branch; level; low; high } in
      incr next_branch;
      Hashtbl.add branch_table key node;
      node
  in
  let rec convert (vnode : vnode) (weight : Cnum.t) =
    if v_is_terminal vnode then leaf weight
    else
      let key = (vnode.vid, Cnum.tag weight) in
      match Hashtbl.find_opt memo key with
      | Some node -> node
      | None ->
        let child (e : vedge) =
          if v_is_zero e then zero_subtree (vnode.level - 1)
          else convert e.vt (Context.cnum ctx (Cnum.mul weight e.vw))
        in
        let node = branch vnode.level (child vnode.v_low) (child vnode.v_high) in
        Hashtbl.replace memo key node;
        node
  and zero_subtree level =
    if level < 0 then leaf Cnum.zero
    else
      let below = zero_subtree (level - 1) in
      branch level below below
  in
  let root =
    if v_is_zero edge then
      (* an all-zero vector of unknown height: represent as single leaf *)
      leaf Cnum.zero
    else convert edge.vt (Context.cnum ctx edge.vw)
  in
  { root; nodes = !next_branch; leaves = !next_leaf }

let node_count t = t.nodes
let leaf_count t = t.leaves
let total_count t = t.nodes + t.leaves

let to_array t ~n =
  if n > 20 then invalid_arg "Unweighted.to_array: too many qubits";
  let out = Array.make (1 lsl n) Cnum.zero in
  let rec fill node offset =
    match node with
    | Leaf { value; _ } -> out.(offset) <- value
    | Branch { level; low; high; _ } ->
      fill low offset;
      fill high (offset + (1 lsl level))
  in
  fill t.root 0;
  out
