(** Graphviz export of decision diagrams, for inspecting the size effects
    the paper illustrates in Fig. 2 and Fig. 5. *)

val vector_to_dot : ?name:string -> Vdd.edge -> string
(** DOT source for a vector DD; edge labels carry the weights (weights equal
    to one are omitted, zero stubs are drawn as small boxes, as in the
    paper's drawing convention). *)

val matrix_to_dot : ?name:string -> Mdd.edge -> string
(** DOT source for a matrix DD; the four out-edges are labelled 00/01/10/11
    for the quadrants. *)
