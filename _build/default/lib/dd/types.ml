open Dd_complex

type vnode = { vid : int; level : int; v_low : vedge; v_high : vedge }
and vedge = { vw : Cnum.t; vt : vnode }

type mnode = {
  mid : int;
  level : int;
  m00 : medge;
  m01 : medge;
  m10 : medge;
  m11 : medge;
}
and medge = { mw : Cnum.t; mt : mnode }

let rec v_terminal =
  {
    vid = 0;
    level = -1;
    v_low = { vw = Cnum.zero; vt = v_terminal };
    v_high = { vw = Cnum.zero; vt = v_terminal };
  }

let rec m_terminal =
  {
    mid = 0;
    level = -1;
    m00 = { mw = Cnum.zero; mt = m_terminal };
    m01 = { mw = Cnum.zero; mt = m_terminal };
    m10 = { mw = Cnum.zero; mt = m_terminal };
    m11 = { mw = Cnum.zero; mt = m_terminal };
  }

let v_zero = { vw = Cnum.zero; vt = v_terminal }
let m_zero = { mw = Cnum.zero; mt = m_terminal }
let v_is_terminal (node : vnode) = node.level < 0
let m_is_terminal (node : mnode) = node.level < 0
let v_is_zero edge = Cnum.is_exact_zero edge.vw
let m_is_zero edge = Cnum.is_exact_zero edge.mw

let v_edge_equal a b =
  a.vt.vid = b.vt.vid && Cnum.tag a.vw = Cnum.tag b.vw

let m_edge_equal a b =
  a.mt.mid = b.mt.mid && Cnum.tag a.mw = Cnum.tag b.mw

let v_height edge = edge.vt.level + 1
let m_height edge = edge.mt.level + 1
