(** Shared state of a DD package instance: the canonical complex table, the
    unique (hash-consing) tables for vector and matrix nodes, and the compute
    caches that memoise addition and multiplication — the machinery the paper
    relies on when it argues that "re-occurring sub-products only have to be
    computed once". *)

open Dd_complex

type cache_stats = { mutable hits : int; mutable misses : int }

type stats = {
  mutable v_nodes_created : int;
  mutable m_nodes_created : int;
  add_v : cache_stats;
  add_m : cache_stats;
  mul_mv : cache_stats;
  mul_mm : cache_stats;
}

type t = {
  ctable : Ctable.t;
  v_unique : (int * int * int * int * int, Types.vnode) Hashtbl.t;
  m_unique :
    ( int * int * int * int * int * int * int * int * int,
      Types.mnode )
    Hashtbl.t;
  mutable next_vid : int;
  mutable next_mid : int;
  add_v_cache : (int * int * int, Types.vedge) Hashtbl.t;
  add_m_cache : (int * int * int, Types.medge) Hashtbl.t;
  mul_mv_cache : (int * int, Types.vedge) Hashtbl.t;
  mul_mm_cache : (int * int, Types.medge) Hashtbl.t;
  adjoint_cache : (int, Types.medge) Hashtbl.t;
  dot_cache : (int * int, Cnum.t) Hashtbl.t;
  norm_cache : (int, float) Hashtbl.t;
  max_mag_cache : (int, float) Hashtbl.t;
  identity_cache : (int, Types.medge) Hashtbl.t;
  stats : stats;
}

val create : ?tolerance:float -> unit -> t
(** Fresh package instance.  [tolerance] is forwarded to {!Ctable.create}. *)

val cnum : t -> Cnum.t -> Cnum.t
(** Intern a complex number in this context's table. *)

val clear_compute_caches : t -> unit
(** Drop all memoisation caches (unique tables are kept, so canonicity is
    unaffected).  Useful between timed runs. *)

val v_unique_size : t -> int
(** Number of distinct vector nodes ever created. *)

val m_unique_size : t -> int

val reset_stats : t -> unit

val pp_stats : Format.formatter -> t -> unit

val live_v_nodes : t -> int
(** Vector nodes currently resident in the unique table. *)

val live_m_nodes : t -> int

val collect : t -> v_roots:Types.vedge list -> m_roots:Types.medge list ->
  int * int
(** Mark-and-sweep garbage collection: every node unreachable from the
    given root edges is dropped from the unique tables, and all compute
    caches (which may reference dead nodes) are cleared.  Long-running
    simulations call this periodically with the current state (and any
    cached oracle matrices) as roots.  Returns the numbers of vector and
    matrix nodes removed. *)
