lib/core/engine.ml: Array Circuit Cnum Dd Dd_complex Gate List Random Sim_stats Strategy
