lib/core/observable.ml: Bytes Cnum Dd Dd_complex Engine Gate Hashtbl List Printf String
