lib/core/sim_stats.mli: Format
