lib/core/engine.mli: Circuit Dd Dd_complex Gate Random Sim_stats Strategy
