lib/core/equivalence.mli: Circuit Dd Dd_complex
