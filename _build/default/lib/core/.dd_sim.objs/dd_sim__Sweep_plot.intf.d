lib/core/sweep_plot.mli:
