lib/core/sweep_plot.ml: Array Buffer Float List Printf String
