lib/core/equivalence.ml: Circuit Cnum Dd Dd_complex Engine Float Random
