lib/core/sim_stats.ml: Format
