lib/core/observable.mli: Engine
