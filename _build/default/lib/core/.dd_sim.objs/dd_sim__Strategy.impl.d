lib/core/strategy.ml: Format Printf String
