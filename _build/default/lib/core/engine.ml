open Dd_complex

type t = {
  context : Dd.Context.t;
  n : int;
  mutable state_edge : Dd.Vdd.edge;
  rng_state : Random.State.t;
  stats : Sim_stats.t;
  mutable track_peaks : bool;
}

let create ?(seed = 0xDD) ?context n =
  if n <= 0 then invalid_arg "Engine.create: need at least one qubit";
  let context =
    match context with Some c -> c | None -> Dd.Context.create ()
  in
  {
    context;
    n;
    state_edge = Dd.Vdd.basis context ~n 0;
    rng_state = Random.State.make [| seed |];
    stats = Sim_stats.create ();
    track_peaks = false;
  }

let context engine = engine.context
let qubits engine = engine.n
let stats engine = engine.stats
let rng engine = engine.rng_state
let state engine = engine.state_edge

let set_state engine edge =
  if Dd.Types.v_height edge <> engine.n then
    invalid_arg "Engine.set_state: height mismatch";
  engine.state_edge <- edge

let reset engine =
  engine.state_edge <- Dd.Vdd.basis engine.context ~n:engine.n 0;
  Sim_stats.reset engine.stats

let set_track_peaks engine flag = engine.track_peaks <- flag

let note_state_peak engine =
  if engine.track_peaks then
    engine.stats.peak_state_nodes <-
      max engine.stats.peak_state_nodes
        (Dd.Vdd.node_count engine.state_edge)

let note_matrix_peak engine matrix =
  if engine.track_peaks then
    engine.stats.peak_matrix_nodes <-
      max engine.stats.peak_matrix_nodes (Dd.Mdd.node_count matrix)

let gate_dd engine (gate : Gate.t) =
  let controls =
    List.map
      (fun (c : Gate.control) ->
        { Dd.Mdd.c_qubit = c.qubit; c_positive = c.positive })
      gate.controls
  in
  Dd.Mdd.gate engine.context ~n:engine.n ~target:gate.target ~controls
    (Gate.matrix gate.kind)

let apply_matrix engine matrix =
  engine.state_edge <- Dd.Mdd.apply engine.context matrix engine.state_edge;
  engine.stats.mat_vec_mults <- engine.stats.mat_vec_mults + 1;
  note_matrix_peak engine matrix;
  note_state_peak engine

let apply_gate engine gate =
  engine.stats.gates_seen <- engine.stats.gates_seen + 1;
  apply_matrix engine (gate_dd engine gate)

let multiply_onto engine gate product =
  engine.stats.mat_mat_mults <- engine.stats.mat_mat_mults + 1;
  let result = Dd.Mdd.mul engine.context gate product in
  note_matrix_peak engine result;
  result

let combine engine gates =
  match gates with
  | [] -> Dd.Mdd.identity engine.context engine.n
  | first :: rest ->
    engine.stats.gates_seen <- engine.stats.gates_seen + List.length gates;
    List.fold_left
      (fun product gate -> multiply_onto engine (gate_dd engine gate) product)
      (gate_dd engine first) rest

(* Window-combination driver shared by the k-operations and max-size
   strategies: gates accumulate into a pending product (mat-mat
   multiplications); the product is flushed onto the state (one mat-vec)
   when the strategy's bound is reached or the gate stream ends. *)
let run ?(strategy = Strategy.Sequential) ?(use_repeating = false) engine
    circuit =
  Strategy.validate strategy;
  if Circuit.(circuit.qubits) <> engine.n then
    invalid_arg "Engine.run: circuit width does not match engine";
  let pending = ref None in
  let pending_count = ref 0 in
  let flush () =
    match !pending with
    | None -> ()
    | Some product ->
      if !pending_count > 1 then
        engine.stats.combined_applications <-
          engine.stats.combined_applications + 1;
      apply_matrix engine product;
      pending := None;
      pending_count := 0
  in
  let absorb gate =
    engine.stats.gates_seen <- engine.stats.gates_seen + 1;
    let gate_matrix = gate_dd engine gate in
    match strategy with
    | Strategy.Sequential -> apply_matrix engine gate_matrix
    | Strategy.K_operations k ->
      (match !pending with
      | None ->
        pending := Some gate_matrix;
        pending_count := 1
      | Some product ->
        pending := Some (multiply_onto engine gate_matrix product);
        incr pending_count);
      if !pending_count >= k then flush ()
    | Strategy.Max_size bound -> (
      match !pending with
      | None ->
        pending := Some gate_matrix;
        pending_count := 1;
        if Dd.Mdd.node_count gate_matrix > bound then flush ()
      | Some product ->
        let product = multiply_onto engine gate_matrix product in
        pending := Some product;
        incr pending_count;
        if Dd.Mdd.node_count product > bound then flush ())
  in
  let rec walk op =
    match op with
    | Circuit.Gate gate -> absorb gate
    | Circuit.Repeat { count; body } ->
      if use_repeating && count > 1 then begin
        flush ();
        let gates = body_gates body in
        let block = combine engine gates in
        engine.stats.combined_applications <-
          engine.stats.combined_applications + count;
        for _ = 1 to count do
          apply_matrix engine block
        done
      end
      else
        for _ = 1 to count do
          List.iter walk body
        done
  and body_gates body =
    let circuit = Circuit.create ~qubits:engine.n body in
    Circuit.flatten circuit
  in
  List.iter walk Circuit.(circuit.ops);
  flush ()

let amplitude engine index =
  Dd.Vdd.amplitude engine.state_edge ~n:engine.n index

let probability_one engine ~qubit =
  Dd.Measure.probability_one engine.context engine.state_edge ~qubit

let probabilities engine =
  Dd.Measure.probabilities engine.state_edge ~n:engine.n

let state_node_count engine = Dd.Vdd.node_count engine.state_edge

let measure_qubit engine ~qubit =
  let outcome, collapsed =
    Dd.Measure.measure_qubit engine.context engine.rng_state
      engine.state_edge ~qubit
  in
  engine.state_edge <- collapsed;
  outcome

let measure_all engine =
  let rec loop qubit acc =
    if qubit >= engine.n then acc
    else
      let bit = measure_qubit engine ~qubit in
      loop (qubit + 1) (if bit then acc lor (1 lsl qubit) else acc)
  in
  loop 0 0

let sample engine =
  Dd.Measure.sample engine.context engine.rng_state engine.state_edge

let fidelity_dense engine reference =
  if Array.length reference <> 1 lsl engine.n then
    invalid_arg "Engine.fidelity_dense: length mismatch";
  let reference_edge = Dd.Vdd.of_array engine.context reference in
  let overlap = Dd.Vdd.dot engine.context reference_edge engine.state_edge in
  Cnum.mag2 overlap

let collect_garbage engine =
  Dd.Context.collect engine.context ~v_roots:[ engine.state_edge ]
    ~m_roots:[]
