type t = {
  mutable mat_vec_mults : int;
  mutable mat_mat_mults : int;
  mutable gates_seen : int;
  mutable combined_applications : int;
  mutable peak_state_nodes : int;
  mutable peak_matrix_nodes : int;
}

let create () =
  {
    mat_vec_mults = 0;
    mat_mat_mults = 0;
    gates_seen = 0;
    combined_applications = 0;
    peak_state_nodes = 0;
    peak_matrix_nodes = 0;
  }

let reset stats =
  stats.mat_vec_mults <- 0;
  stats.mat_mat_mults <- 0;
  stats.gates_seen <- 0;
  stats.combined_applications <- 0;
  stats.peak_state_nodes <- 0;
  stats.peak_matrix_nodes <- 0

let copy stats = { stats with mat_vec_mults = stats.mat_vec_mults }

let pp fmt stats =
  Format.fprintf fmt
    "gates=%d mat-vec=%d mat-mat=%d combined-applications=%d \
     peak-state-nodes=%d peak-matrix-nodes=%d"
    stats.gates_seen stats.mat_vec_mults stats.mat_mat_mults
    stats.combined_applications stats.peak_state_nodes
    stats.peak_matrix_nodes
