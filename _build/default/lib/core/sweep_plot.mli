(** Render strategy-sweep results (the paper's Fig. 8 / Fig. 9 scatter
    plots) as standalone SVG charts: one polyline per benchmark over a
    log-scaled parameter axis, plus the per-parameter average the paper
    overlays as a line. *)

type series = {
  series_name : string;
  points : (float * float) list;  (** (parameter value, speed-up) *)
}

val render :
  title:string -> x_label:string -> series list -> string
(** Standalone SVG document.  The x axis is log2-scaled; a horizontal
    rule marks speed-up 1 (the sequential baseline).  Series with no
    points are skipped. *)

val parse_sweep_table : header:string -> string -> series list
(** Extract a sweep table from benchmark-harness output ([bench_output.txt]
    style): [header] identifies the section (e.g. ["Fig. 8"]); rows with
    [-] entries (skipped points) are omitted from the affected series.
    Returns the benchmark series plus the ["average"] series.  Raises
    [Not_found] if the section is absent. *)
