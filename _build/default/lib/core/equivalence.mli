(** DD-based circuit equivalence checking.

    The complementary application of matrix-matrix multiplication on DDs:
    two circuits are equivalent iff the product [U_b^dagger x U_a] is the
    identity.  Because DDs are canonical, the comparison after building the
    product is a constant-time edge comparison — the same effect the
    paper's combination strategies exploit, used for verification instead
    of simulation. *)

type result =
  | Equivalent
  | Equivalent_up_to_phase of Dd_complex.Cnum.t
      (** differ only by the reported global phase *)
  | Not_equivalent

val check : ?context:Dd.Context.t -> Circuit.t -> Circuit.t -> result
(** [check a b] builds both circuit matrices with mat-mat multiplication
    and compares them canonically.  Raises [Invalid_argument] when the
    circuits have different widths. *)

val equivalent : ?up_to_phase:bool -> Circuit.t -> Circuit.t -> bool
(** Boolean convenience wrapper ([up_to_phase] defaults to [true]). *)
