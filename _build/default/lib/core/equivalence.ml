open Dd_complex

type result =
  | Equivalent
  | Equivalent_up_to_phase of Cnum.t
  | Not_equivalent

let circuit_matrix engine circuit =
  Engine.combine engine (Circuit.flatten circuit)

(* Random product state |p> = (x) (cos t |0> + e^{if} sin t |1>), cheap as
   a DD (one node per level) and sensitive to every matrix column. *)
let probe_state ctx ~n rng =
  let rec build level edge =
    if level >= n then edge
    else
      let theta = Random.State.float rng Float.pi in
      let phi = Random.State.float rng (2. *. Float.pi) in
      let low = Dd.Vdd.scale ctx (Cnum.of_float (cos theta)) edge in
      let high = Dd.Vdd.scale ctx (Cnum.of_polar (sin theta) phi) edge in
      build (level + 1) (Dd.Vdd.make ctx level low high)
  in
  build 0 { Dd.Types.vw = Cnum.one; vt = Dd.Types.v_terminal }

(* |<w1|w2>| = |w1| |w2|  iff  w1 and w2 are parallel. *)
let proportional ctx w1 w2 =
  let n1 = Dd.Measure.norm2 ctx w1 and n2 = Dd.Measure.norm2 ctx w2 in
  if n1 < 1e-18 || n2 < 1e-18 then
    if n1 < 1e-18 && n2 < 1e-18 then Some Cnum.one else None
  else
    let overlap = Dd.Vdd.dot ctx w1 w2 in
    if abs_float (Cnum.mag2 overlap -. (n1 *. n2)) < 1e-9 *. n1 *. n2 then
      (* w2 = phase * w1 with phase = <w1|w2> / |w1|^2 *)
      Some (Cnum.scale (1. /. n1) overlap)
    else None

let check ?context a b =
  if Circuit.(a.qubits) <> Circuit.(b.qubits) then
    invalid_arg "Equivalence.check: circuit widths differ";
  let n = Circuit.(a.qubits) in
  let context =
    match context with Some c -> c | None -> Dd.Context.create ()
  in
  let engine = Engine.create ~context n in
  let ua = circuit_matrix engine a in
  let ub = circuit_matrix engine b in
  if Dd.Mdd.equal ua ub then Equivalent
  else begin
    (* canonicity can be broken by floating-point pivot ties, so decide
       with random probe states instead of declaring non-equivalence *)
    let rng = Random.State.make [| 0x51; n |] in
    let rec probes k phase =
      if k = 0 then
        match phase with
        | Some p when Cnum.approx_equal ~tol:1e-9 p Cnum.one -> Equivalent
        | Some p -> Equivalent_up_to_phase p
        | None -> Not_equivalent
      else
        let v = probe_state context ~n rng in
        let w1 = Dd.Mdd.apply context ua v in
        let w2 = Dd.Mdd.apply context ub v in
        match proportional context w2 w1 with
        | None -> Not_equivalent
        | Some p -> (
          match phase with
          | None -> probes (k - 1) (Some p)
          | Some previous ->
            if Cnum.approx_equal ~tol:1e-8 previous p then
              probes (k - 1) (Some previous)
            else Not_equivalent)
    in
    probes 4 None
  end

let equivalent ?(up_to_phase = true) a b =
  match check a b with
  | Equivalent -> true
  | Equivalent_up_to_phase _ -> up_to_phase
  | Not_equivalent -> false
