type series = { series_name : string; points : (float * float) list }

(* ------------------------------------------------------------------ *)
(* SVG rendering                                                       *)
(* ------------------------------------------------------------------ *)

let width = 760.
let height = 460.
let margin_left = 64.
let margin_right = 170.
let margin_top = 48.
let margin_bottom = 56.

let palette =
  [|
    "#1f77b4"; "#ff7f0e"; "#2ca02c"; "#d62728"; "#9467bd"; "#8c564b";
    "#e377c2"; "#7f7f7f";
  |]

let log2 x = log x /. log 2.

let render ~title ~x_label series =
  let series = List.filter (fun s -> s.points <> []) series in
  let all_points = List.concat_map (fun s -> s.points) series in
  if all_points = [] then invalid_arg "Sweep_plot.render: no data";
  let xs = List.map fst all_points and ys = List.map snd all_points in
  let x_min = log2 (List.fold_left Float.min infinity xs) in
  let x_max = log2 (List.fold_left Float.max neg_infinity xs) in
  let y_max = Float.max 1.5 (List.fold_left Float.max neg_infinity ys) in
  let y_min = 0. in
  let x_span = Float.max 1e-9 (x_max -. x_min) in
  let plot_w = width -. margin_left -. margin_right in
  let plot_h = height -. margin_top -. margin_bottom in
  let px x = margin_left +. ((log2 x -. x_min) /. x_span *. plot_w) in
  let py y =
    margin_top +. ((y_max -. y) /. (y_max -. y_min) *. plot_h)
  in
  let buf = Buffer.create 8192 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" \
     height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\" font-family=\"sans-serif\">\n"
    width height width height;
  out "<rect width=\"%.0f\" height=\"%.0f\" fill=\"white\"/>\n" width height;
  out
    "<text x=\"%.0f\" y=\"26\" font-size=\"16\" text-anchor=\"middle\">%s</text>\n"
    (width /. 2.) title;
  (* axes *)
  out
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n"
    margin_left (py y_min) (margin_left +. plot_w) (py y_min);
  out
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"/>\n"
    margin_left (py y_min) margin_left (py y_max);
  (* speed-up = 1 guide line *)
  out
    "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
     stroke=\"#999\" stroke-dasharray=\"5,4\"/>\n"
    margin_left (py 1.) (margin_left +. plot_w) (py 1.);
  (* x ticks at powers of two present in the data *)
  let tick_values =
    List.sort_uniq compare (List.map fst all_points)
  in
  List.iter
    (fun v ->
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"black\"/>\n"
        (px v) (py y_min) (px v)
        (py y_min +. 5.);
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" \
         text-anchor=\"middle\">%g</text>\n"
        (px v)
        (py y_min +. 20.)
        v)
    tick_values;
  out
    "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\">%s \
     (log scale)</text>\n"
    (margin_left +. (plot_w /. 2.))
    (height -. 12.) x_label;
  (* y ticks *)
  let y_ticks =
    let step = if y_max > 8. then 2. else if y_max > 4. then 1. else 0.5 in
    let rec build v acc = if v > y_max then acc else build (v +. step) (v :: acc) in
    build 0. []
  in
  List.iter
    (fun v ->
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"black\"/>\n"
        (margin_left -. 5.) (py v) margin_left (py v);
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\" \
         text-anchor=\"end\">%g</text>\n"
        (margin_left -. 9.)
        (py v +. 4.)
        v)
    y_ticks;
  out
    "<text x=\"18\" y=\"%.1f\" font-size=\"12\" text-anchor=\"middle\" \
     transform=\"rotate(-90 18 %.1f)\">speed-up vs sequential</text>\n"
    (margin_top +. (plot_h /. 2.))
    (margin_top +. (plot_h /. 2.));
  (* series *)
  List.iteri
    (fun i s ->
      let average = s.series_name = "average" in
      let color =
        if average then "#000000"
        else palette.(i mod Array.length palette)
      in
      let path =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y))
             (List.sort compare s.points))
      in
      out
        "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" \
         stroke-width=\"%s\"%s/>\n"
        path color
        (if average then "2.5" else "1.5")
        (if average then "" else " opacity=\"0.85\"");
      List.iter
        (fun (x, y) ->
          out
            "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n"
            (px x) (py y) color)
        s.points;
      (* legend *)
      let ly = margin_top +. (float_of_int i *. 18.) in
      let lx = margin_left +. plot_w +. 12. in
      out
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
         stroke=\"%s\" stroke-width=\"2\"/>\n"
        lx ly (lx +. 18.) ly color;
      out
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%s</text>\n"
        (lx +. 24.) (ly +. 4.) s.series_name)
    series;
  out "</svg>\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing bench output                                                 *)
(* ------------------------------------------------------------------ *)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_sweep_table ~header text =
  let lines = String.split_on_char '\n' text in
  (* find the section *)
  let rec find_section = function
    | [] -> raise Not_found
    | line :: rest ->
      let found =
        let n = String.length line and m = String.length header in
        let rec scan i =
          i + m <= n && (String.sub line i m = header || scan (i + 1))
        in
        scan 0
      in
      if found then rest else find_section rest
  in
  let rec find_header_row = function
    | [] -> raise Not_found
    | line :: rest -> (
      match tokens line with
      | axis :: names when (axis = "k" || axis = "s_max") && names <> [] ->
        (names, rest)
      | _ -> find_header_row rest)
  in
  let section = find_section lines in
  let names, rest = find_header_row section in
  let columns = Array.of_list names in
  let points = Array.make (Array.length columns) [] in
  let rec read_rows = function
    | [] -> ()
    | line :: rest -> (
      match tokens line with
      | first :: cells when (match float_of_string_opt first with
                            | Some _ -> true
                            | None -> false)
                            && List.length cells = Array.length columns ->
        let x = float_of_string first in
        List.iteri
          (fun i cell ->
            match float_of_string_opt cell with
            | Some y when Float.is_finite y ->
              points.(i) <- (x, y) :: points.(i)
            | Some _ | None -> (* a skipped "-" or nan entry *) ())
          cells;
        read_rows rest
      | [ "seq[s]" ] | _ ->
        (* stop at the first line that is not a data row, except the
           seq[s] baseline row which precedes the data *)
        (match tokens line with
        | "seq[s]" :: _ -> read_rows rest
        | [] -> read_rows rest
        | _ -> ()))
  in
  read_rows rest;
  Array.to_list
    (Array.mapi
       (fun i name -> { series_name = name; points = List.rev points.(i) })
       columns)
