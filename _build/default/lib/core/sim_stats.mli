(** Instrumentation counters for a simulation run: how many matrix-vector
    and matrix-matrix multiplications were performed, and (optionally) the
    peak DD sizes encountered — the quantities Section III of the paper
    reasons about. *)

type t = {
  mutable mat_vec_mults : int;
  mutable mat_mat_mults : int;
  mutable gates_seen : int;
  mutable combined_applications : int;
      (** matrix-vector products whose matrix combined >= 2 gates *)
  mutable peak_state_nodes : int;
  mutable peak_matrix_nodes : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
