(** Pauli-string observables evaluated directly on the DD state — no dense
    expansion, one matrix-vector multiplication plus one inner product. *)

type pauli = I | X | Y | Z

type t = (int * pauli) list
(** Qubit/operator pairs; unlisted qubits are implicitly [I].  A qubit may
    appear at most once. *)

val of_string : string -> t
(** [of_string "ZXI"]: rightmost character acts on qubit 0.  Raises
    [Invalid_argument] on characters outside [IXYZ]. *)

val to_string : n:int -> t -> string

val expectation : Engine.t -> t -> float
(** [expectation engine obs] is [<psi| P |psi>] for the engine's current
    (normalised) state; always real since Pauli strings are Hermitian. *)
