type t = Sequential | K_operations of int | Max_size of int

let to_string = function
  | Sequential -> "seq"
  | K_operations k -> Printf.sprintf "k:%d" k
  | Max_size s -> Printf.sprintf "size:%d" s

let of_string text =
  let int_suffix prefix =
    let plen = String.length prefix in
    if String.length text > plen && String.sub text 0 plen = prefix then
      int_of_string_opt (String.sub text plen (String.length text - plen))
    else None
  in
  if text = "seq" || text = "sequential" then Ok Sequential
  else
    match int_suffix "k:" with
    | Some k when k >= 1 -> Ok (K_operations k)
    | Some _ -> Error "k must be >= 1"
    | None -> (
      match int_suffix "size:" with
      | Some s when s >= 1 -> Ok (Max_size s)
      | Some _ -> Error "size must be >= 1"
      | None -> Error (Printf.sprintf "cannot parse strategy %S" text))

let pp fmt strategy = Format.pp_print_string fmt (to_string strategy)

let validate = function
  | Sequential -> ()
  | K_operations k ->
    if k < 1 then invalid_arg "Strategy: k must be >= 1"
  | Max_size s -> if s < 1 then invalid_arg "Strategy: size must be >= 1"
