open Dd_complex

type pauli = I | X | Y | Z
type t = (int * pauli) list

let of_string text =
  let n = String.length text in
  let rec build i acc =
    if i >= n then acc
    else
      let qubit = n - 1 - i in
      let acc =
        match text.[i] with
        | 'I' | 'i' -> acc
        | 'X' | 'x' -> (qubit, X) :: acc
        | 'Y' | 'y' -> (qubit, Y) :: acc
        | 'Z' | 'z' -> (qubit, Z) :: acc
        | c ->
          invalid_arg
            (Printf.sprintf "Observable.of_string: bad character %C" c)
      in
      build (i + 1) acc
  in
  build 0 []

let to_string ~n obs =
  let letters = Bytes.make n 'I' in
  List.iter
    (fun (qubit, pauli) ->
      let letter =
        match pauli with I -> 'I' | X -> 'X' | Y -> 'Y' | Z -> 'Z'
      in
      Bytes.set letters (n - 1 - qubit) letter)
    obs;
  Bytes.to_string letters

let gate_kind = function
  | I -> None
  | X -> Some Gate.X
  | Y -> Some Gate.Y
  | Z -> Some Gate.Z

let expectation engine obs =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (qubit, _) ->
      if qubit < 0 || qubit >= Engine.qubits engine then
        invalid_arg "Observable.expectation: qubit out of range";
      if Hashtbl.mem seen qubit then
        invalid_arg "Observable.expectation: duplicate qubit";
      Hashtbl.add seen qubit ())
    obs;
  let ctx = Engine.context engine in
  let state = Engine.state engine in
  let transformed =
    List.fold_left
      (fun v (qubit, pauli) ->
        match gate_kind pauli with
        | None -> v
        | Some kind ->
          let dd = Engine.gate_dd engine (Gate.make kind qubit) in
          Dd.Mdd.apply ctx dd v)
      state obs
  in
  Cnum.re (Dd.Vdd.dot ctx state transformed)
