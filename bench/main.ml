(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Zulehner & Wille, DATE 2019):

     Fig. 5   - DD sizes under Eq. 1 vs Eq. 2 (qualitative, node counts)
     Fig. 8   - speed-up of the k-operations strategy, per k
     Fig. 9   - speed-up of the max-size strategy, per s_max
     Table I  - grover benchmarks: sota / general / DD-repeating
     Table II - shor benchmarks: sota / general / DD-construct

   Usage: dune exec bench/main.exe [-- fig5|fig8|fig9|table1|table2|ablation|backends|guard|kernel|kernel-smoke|apply|apply-smoke|reorder|reorder-smoke|parallel|parallel-smoke|bechamel]*
                                   [-- --paper]

   [kernel] runs the shipped benchmarks/ circuits with a low GC
   high-water mark and records per-compute-table hit rates, evictions and
   GC pauses to BENCH_kernel.json; [kernel-smoke] is the single-run CI
   variant (written to BENCH_kernel_smoke.json so the committed full
   matrix is never clobbered).

   [apply] A/B-measures the structured-apply fast path against the
   explicit-gate-DD path (BENCH_apply.json); [apply-smoke] is the small
   CI variant (BENCH_apply_smoke.json), whose fast and generic sequential
   runs must agree on the final state DD node-for-node.

   With no arguments every experiment runs on default (laptop-scale)
   instances.  [--paper] switches to the paper's instance sizes — expect
   hours, exactly as the paper's 2-CPU-hour timeout suggests.  Absolute
   times differ from the paper (different machine/DD package); the shapes
   are the reproduction target (see EXPERIMENTS.md). *)

let wall f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. start)

(* ------------------------------------------------------------------ *)
(* Benchmark cases: a name plus a strategy-parameterised run            *)
(* ------------------------------------------------------------------ *)

type case = { case_name : string; run : Dd_sim.Strategy.t -> unit }

let grover_case n =
  let marked = (0x5a5a5a lsr 2) land ((1 lsl n) - 1) in
  let circuit = Grover.circuit ~n ~marked () in
  {
    case_name = Printf.sprintf "grover_%d" n;
    run =
      (fun strategy ->
        let engine = Dd_sim.Engine.create n in
        Dd_sim.Engine.run ~strategy engine circuit);
  }

let shor_case (modulus, a) =
  {
    case_name =
      Printf.sprintf "shor_%d_%d_%d" modulus a (Shor.beauregard_qubits modulus);
    run =
      (fun strategy ->
        ignore
          (Shor.run_order_finding ~seed:11
             ~backend:(Shor.Beauregard strategy)
             ~a modulus));
  }

let supremacy_case (rows, cols, cycles) =
  let circuit = Supremacy.circuit ~rows ~cols ~cycles () in
  {
    case_name = Printf.sprintf "supremacy_%d_%d" cycles (rows * cols);
    run =
      (fun strategy ->
        let engine = Dd_sim.Engine.create (rows * cols) in
        Dd_sim.Engine.run ~strategy engine circuit);
  }

let default_cases () =
  [
    grover_case 12;
    grover_case 14;
    shor_case (15, 7);
    shor_case (21, 2);
    supremacy_case (4, 4, 8);
    supremacy_case (4, 4, 10);
  ]

let paper_cases () =
  [
    grover_case 23;
    grover_case 25;
    shor_case (1007, 602);
    shor_case (1851, 17);
    supremacy_case (5, 4, 15);
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 8 / Fig. 9: strategy sweeps                                     *)
(* ------------------------------------------------------------------ *)

(* Short runs are re-measured (best of three) to dampen allocator noise;
   once a strategy point blows past its per-case budget the larger
   parameter values for that case are skipped and printed as "-" (the
   moral equivalent of the paper's timeout column). *)
let timed_run run strategy =
  let (), t1 = wall (fun () -> run strategy) in
  if t1 >= 0.3 then t1
  else begin
    let (), t2 = wall (fun () -> run strategy) in
    let (), t3 = wall (fun () -> run strategy) in
    min t1 (min t2 t3)
  end

let sweep ~title ~axis ~to_strategy ~values cases =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "(speed-up of the strategy over sequential simulation; >1 \
                 is faster; - means the point exceeded its time budget and \
                 larger values were skipped)\n";
  let baselines =
    List.map
      (fun case -> (case.case_name, timed_run case.run Dd_sim.Strategy.Sequential))
      cases
  in
  let saturated = Hashtbl.create 8 in
  Printf.printf "%-8s" axis;
  List.iter (fun case -> Printf.printf " %16s" case.case_name) cases;
  Printf.printf " %10s\n" "average";
  Printf.printf "%-8s" "seq[s]";
  List.iter
    (fun (_, seconds) -> Printf.printf " %16.3f" seconds)
    baselines;
  Printf.printf "\n";
  List.iter
    (fun value ->
      Printf.printf "%-8d" value;
      let speedups =
        List.map
          (fun case ->
            if Hashtbl.mem saturated case.case_name then None
            else begin
              let baseline = List.assoc case.case_name baselines in
              let seconds = timed_run case.run (to_strategy value) in
              let budget = Float.max 5. (5. *. baseline) in
              if seconds > budget then
                Hashtbl.replace saturated case.case_name ();
              Some (baseline /. seconds)
            end)
          cases
      in
      let shown = List.filter_map (fun s -> s) speedups in
      List.iter
        (function
          | Some s -> Printf.printf " %16.2f" s
          | None -> Printf.printf " %16s" "-")
        speedups;
      let avg =
        match shown with
        | [] -> nan
        | _ :: _ ->
          List.fold_left ( +. ) 0. shown /. float_of_int (List.length shown)
      in
      Printf.printf " %10.2f\n" avg;
      flush stdout)
    values

let fig8 ~paper () =
  let cases = if paper then paper_cases () else default_cases () in
  sweep ~title:"Fig. 8: strategy k-operations (combine k gates per step)"
    ~axis:"k"
    ~to_strategy:(fun k -> Dd_sim.Strategy.K_operations k)
    ~values:
      (if paper then [ 1; 2; 4; 8; 16; 32; 64; 128 ]
       else [ 1; 2; 4; 8; 16; 32; 64 ])
    cases

let fig9 ~paper () =
  (* grover circuits pair tiny states with thousands of gates: large
     combined products make every further mat-mat expensive, so the big
     grover_12 instance is dropped from the default max-size sweep (the
     paper's Fig. 9 likewise shows grover gaining least from max-size) *)
  let cases =
    if paper then paper_cases ()
    else
      List.filter
        (fun case -> case.case_name <> "grover_12")
        (default_cases ())
  in
  sweep
    ~title:"Fig. 9: strategy max-size (combine until the product exceeds \
            s_max nodes)"
    ~axis:"s_max"
    ~to_strategy:(fun s -> Dd_sim.Strategy.Max_size s)
    ~values:[ 4; 16; 64; 256; 1024 ]
    cases

(* ------------------------------------------------------------------ *)
(* Fig. 5: node counts under Eq. 1 vs Eq. 2                             *)
(* ------------------------------------------------------------------ *)

let fig5 ~paper () =
  let rows, cols, cycles = if paper then (5, 4, 15) else (4, 4, 10) in
  let circuit = Supremacy.circuit ~rows ~cols ~cycles () in
  let n = rows * cols in
  let gates = Circuit.flatten circuit in
  let prefix_len = (List.length gates * 7) / 10 in
  let prefix = List.filteri (fun i _ -> i < prefix_len) gates in
  let rest = List.filteri (fun i _ -> i >= prefix_len) gates in
  let m1_gate, m2_gate =
    match rest with
    | a :: b :: _ -> (a, b)
    | [ _ ] | [] -> failwith "fig5: circuit too short"
  in
  Printf.printf
    "\n=== Fig. 5: computational effect of rearranging parentheses ===\n";
  Printf.printf
    "(supremacy %dx%d depth %d; v_i is the state after %d of %d gates)\n"
    rows cols cycles prefix_len (List.length gates);
  let engine = Dd_sim.Engine.create n in
  List.iter (Dd_sim.Engine.apply_gate engine) prefix;
  let ctx = Dd_sim.Engine.context engine in
  let v = Dd_sim.Engine.state engine in
  let m1 = Dd_sim.Engine.gate_dd engine m1_gate in
  let m2 = Dd_sim.Engine.gate_dd engine m2_gate in
  Printf.printf "  %-26s = %6d nodes\n" "|v_i|" (Dd.Vdd.node_count v);
  Printf.printf "  %-26s = %6d nodes\n"
    (Printf.sprintf "|M_i+1| (%s)" (Gate.name m1_gate))
    (Dd.Mdd.node_count m1);
  Printf.printf "  %-26s = %6d nodes\n"
    (Printf.sprintf "|M_i+2| (%s)" (Gate.name m2_gate))
    (Dd.Mdd.node_count m2);
  (* Eq. 1: two matrix-vector multiplications on the large vector *)
  Dd.Context.clear_compute_caches ctx;
  let (v1, t_mv1) = wall (fun () -> Dd.Mdd.apply ctx m1 v) in
  let (v2, t_mv2) = wall (fun () -> Dd.Mdd.apply ctx m2 v1) in
  Printf.printf "  %-26s = %6d nodes  (%.4f s)\n" "Eq.1: |M_i+1 x v_i|"
    (Dd.Vdd.node_count v1) t_mv1;
  Printf.printf "  %-26s = %6d nodes  (%.4f s)\n" "Eq.1: |M_i+2 x (...)|"
    (Dd.Vdd.node_count v2) t_mv2;
  (* Eq. 2: one matrix-matrix on small DDs, one matrix-vector *)
  Dd.Context.clear_compute_caches ctx;
  let (m21, t_mm) = wall (fun () -> Dd.Mdd.mul ctx m2 m1) in
  let (v2', t_mv) = wall (fun () -> Dd.Mdd.apply ctx m21 v) in
  Printf.printf "  %-26s = %6d nodes  (%.4f s)\n" "Eq.2: |M_i+2 x M_i+1|"
    (Dd.Mdd.node_count m21) t_mm;
  Printf.printf "  %-26s = %6d nodes  (%.4f s)\n" "Eq.2: |(M x M) x v_i|"
    (Dd.Vdd.node_count v2') t_mv;
  Printf.printf
    "  -> the combined matrix stays tiny while the state is large: one\n\
    \     traversal of the big vector instead of two (paper, Example 3)\n"

(* ------------------------------------------------------------------ *)
(* Table I: grover with DD-repeating                                    *)
(* ------------------------------------------------------------------ *)

let general_strategies =
  [
    Dd_sim.Strategy.K_operations 8;
    Dd_sim.Strategy.K_operations 32;
    Dd_sim.Strategy.Max_size 128;
  ]

let best_general run =
  List.fold_left
    (fun (best_strategy, best_time) strategy ->
      let (), seconds = wall (fun () -> run strategy) in
      if seconds < best_time then (strategy, seconds)
      else (best_strategy, best_time))
    (Dd_sim.Strategy.Sequential, infinity)
    general_strategies

let table1 ~paper () =
  let sizes = if paper then [ 23; 25; 27; 29 ] else [ 12; 14; 16; 18 ] in
  Printf.printf "\n=== Table I: grover benchmarks (strategy DD-repeating) ===\n";
  Printf.printf "%-12s %12s %12s %16s\n" "Benchmark" "t_sota[s]" "t_general[s]"
    "t_DD-repeating[s]";
  List.iter
    (fun n ->
      let case = grover_case n in
      let (), t_sota = wall (fun () -> case.run Dd_sim.Strategy.Sequential) in
      let _, t_general = best_general case.run in
      let marked = (0x5a5a5a lsr 2) land ((1 lsl n) - 1) in
      let circuit = Grover.circuit ~n ~marked () in
      let (), t_repeating =
        wall (fun () ->
            let engine = Dd_sim.Engine.create n in
            Dd_sim.Engine.run ~use_repeating:true engine circuit)
      in
      Printf.printf "%-12s %12.3f %12.3f %16.3f\n" case.case_name t_sota
        t_general t_repeating;
      flush stdout)
    sizes

(* ------------------------------------------------------------------ *)
(* Table II: shor with DD-construct                                     *)
(* ------------------------------------------------------------------ *)

let table2 ~paper () =
  let instances =
    if paper then
      [ (1007, 602); (1851, 17); (2561, 2409); (8193, 1024) ]
    else [ (15, 7); (21, 2); (33, 5); (55, 17) ]
  in
  Printf.printf "\n=== Table II: shor benchmarks (strategy DD-construct) ===\n";
  Printf.printf "%-18s %12s %12s %16s\n" "Benchmark" "t_sota[s]"
    "t_general[s]" "t_DD-construct[s]";
  List.iter
    (fun (modulus, a) ->
      let case = shor_case (modulus, a) in
      let (), t_sota = wall (fun () -> case.run Dd_sim.Strategy.Sequential) in
      let _, t_general = best_general case.run in
      let (), t_construct =
        wall (fun () ->
            ignore
              (Shor.run_order_finding ~seed:11 ~backend:Shor.Direct ~a modulus))
      in
      Printf.printf "%-18s %12.3f %12.3f %16.4f\n" case.case_name t_sota
        t_general t_construct;
      flush stdout)
    instances

(* ------------------------------------------------------------------ *)
(* Ablations: the design choices DESIGN.md calls out                    *)
(* ------------------------------------------------------------------ *)

(* (a) compute caches: the memoisation of sub-products is what makes DD
   multiplication cheap; dropping the caches after every gate shows how
   much of the paper's effect depends on them.
   (b) DD-repeating re-use: combining the repeated block each iteration
   (mat-mat work every time) vs combining once and re-applying shows the
   "can be easily re-used for all further iterations" benefit.
   (c) DD-construct on Grover: the oracle as a directly-built diagonal
   (this repository's extension of the paper's Shor-only DD-construct). *)

let ablation () =
  Printf.printf "\n=== Ablations ===\n";
  (* (a) compute caches *)
  let circuit = Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 () in
  let gates = Circuit.flatten circuit in
  let run_with_caches ~keep =
    let engine = Dd_sim.Engine.create 16 in
    let ctx = Dd_sim.Engine.context engine in
    List.iter
      (fun gate ->
        Dd_sim.Engine.apply_gate engine gate;
        if not keep then Dd.Context.clear_compute_caches ctx)
      gates
  in
  let (), with_caches = wall (fun () -> run_with_caches ~keep:true) in
  let (), without_caches = wall (fun () -> run_with_caches ~keep:false) in
  Printf.printf
    "  compute caches (supremacy 4x4 d8, sequential):\n\
    \    kept across gates   %8.3f s\n\
    \    dropped after each  %8.3f s   (%.2fx slower)\n"
    with_caches without_caches (without_caches /. with_caches);
  (* (b) DD-repeating re-use *)
  let n = 14 in
  let marked = 1 lsl (n - 2) in
  let grover = Grover.circuit ~n ~marked () in
  let (), reuse = wall (fun () ->
      let engine = Dd_sim.Engine.create n in
      Dd_sim.Engine.run ~use_repeating:true engine grover)
  in
  let (), recombine = wall (fun () ->
      let engine = Dd_sim.Engine.create n in
      List.iter (Dd_sim.Engine.apply_gate engine) (List.init n Gate.h);
      let body = Grover.oracle_gates ~n ~marked @ Grover.diffusion_gates ~n in
      for _ = 1 to Grover.iterations n do
        (* rebuild the combined block every iteration: no re-use *)
        Dd_sim.Engine.apply_matrix engine (Dd_sim.Engine.combine engine body)
      done)
  in
  Printf.printf
    "  DD-repeating re-use (grover_%d):\n\
    \    combine once, re-apply      %8.3f s\n\
    \    recombine every iteration   %8.3f s   (%.2fx slower)\n"
    n reuse recombine (recombine /. reuse);
  (* (c) DD-construct for the Grover oracle *)
  let (), via_gates = wall (fun () ->
      let engine = Dd_sim.Engine.create n in
      Dd_sim.Engine.run ~use_repeating:true engine grover)
  in
  let (), via_construct = wall (fun () ->
      ignore (Grover.run_construct ~n ~marked ()))
  in
  Printf.printf
    "  DD-construct extension (grover_%d oracle as direct diagonal):\n\
    \    gate-built oracle, DD-repeating  %8.3f s\n\
    \    directly-constructed iteration   %8.3f s\n"
    n via_gates via_construct;
  (* (d') complex-number merge tolerance (the accuracy/compactness
     trade-off of the paper's reference [21]): a radius of 1e-10 wrongly
     merges distinct amplitudes at the 2^(-n/2) scale and fragments the
     grover_20 state; 1e-12 keeps it at exactly 2n-1 nodes *)
  Printf.printf
    "  complex merge tolerance (grover_20 state nodes per iteration):\n";
  List.iter
    (fun tolerance ->
      let ctx = Dd.Context.create ~tolerance () in
      let engine = Dd_sim.Engine.create ~context:ctx 20 in
      List.iter (Dd_sim.Engine.apply_gate engine) (List.init 20 Gate.h);
      let body =
        Grover.oracle_gates ~n:20 ~marked:5 @ Grover.diffusion_gates ~n:20
      in
      Printf.printf "    tol=%-8g" tolerance;
      for _ = 1 to 4 do
        List.iter (Dd_sim.Engine.apply_gate engine) body;
        Printf.printf " %6d" (Dd_sim.Engine.state_node_count engine)
      done;
      Printf.printf "\n")
    [ 1e-10; 1e-12 ];
  (* (d) edge weights: the paper's Fig. 2 size argument on real states *)
  Printf.printf
    "  edge weights (weighted vs unweighted DD size of final states):\n";
  let compare_sizes label prepare =
    let engine, width = prepare () in
    let state = Dd_sim.Engine.state engine in
    let unweighted =
      Dd.Unweighted.of_vdd (Dd_sim.Engine.context engine) state
    in
    Printf.printf "    %-22s %8d weighted   %8d unweighted nodes\n" label
      (Dd.Vdd.node_count state)
      (Dd.Unweighted.total_count unweighted);
    ignore width
  in
  compare_sizes "qft_12 of |1>" (fun () ->
      let engine = Dd_sim.Engine.create 12 in
      Dd_sim.Engine.apply_gate engine (Gate.x 0);
      Dd_sim.Engine.run engine (Qft.circuit 12);
      (engine, 12));
  compare_sizes "grover_12 final" (fun () ->
      let engine = Dd_sim.Engine.create 12 in
      Dd_sim.Engine.run engine (Grover.circuit ~n:12 ~marked:1234 ());
      (engine, 12));
  compare_sizes "supremacy 4x4 d8" (fun () ->
      let engine = Dd_sim.Engine.create 16 in
      Dd_sim.Engine.run engine
        (Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 ());
      (engine, 16));
  (* (e) approximation: truncation threshold vs fidelity and DD size *)
  Printf.printf
    "  truncation (supremacy 3x3 d12 state; threshold -> nodes, fidelity):\n";
  let engine = Dd_sim.Engine.create 9 in
  Dd_sim.Engine.run engine (Supremacy.circuit ~rows:3 ~cols:3 ~cycles:12 ());
  let ctx = Dd_sim.Engine.context engine in
  let state = Dd_sim.Engine.state engine in
  List.iter
    (fun threshold ->
      let truncated = Dd.Vdd.truncate ctx ~threshold state in
      let fidelity =
        Dd_complex.Cnum.mag2 (Dd.Vdd.dot ctx state truncated)
      in
      Printf.printf "    %-9g %6d nodes (of %d)   fidelity %.4f\n" threshold
        (Dd.Vdd.node_count truncated)
        (Dd.Vdd.node_count state) fidelity)
    [ 1e-6; 1e-3; 1e-2; 3e-2; 1e-1 ]

(* ------------------------------------------------------------------ *)
(* Backend comparison: DD vs dense array vs sparse hash map             *)
(* ------------------------------------------------------------------ *)

(* The paper's Section III motivation in miniature: representation size
   drives cost, and which representation is small depends on the state's
   structure, not its width. *)
let backends () =
  Printf.printf "\n=== Backend comparison (DD vs dense array vs sparse) ===\n";
  Printf.printf "%-18s %10s %8s %10s %10s %10s\n" "benchmark" "dd[s]"
    "dd-nodes" "dense[s]" "sparse[s]" "support";
  let row ?(sparse = true) name circuit =
    let n = Circuit.(circuit.qubits) in
    let (dd_nodes, dd_time) =
      wall (fun () ->
          let engine = Dd_sim.Engine.create n in
          Dd_sim.Engine.run engine circuit;
          Dd_sim.Engine.state_node_count engine)
    in
    let dense_cell =
      if n > 24 then "      (2^n)"
      else begin
        let ((), dense_time) =
          wall (fun () ->
              let state = Dense_state.create n in
              Dense_state.run state circuit)
        in
        Printf.sprintf "%10.3f" dense_time
      end
    in
    let sparse_cells =
      if not sparse then "         -          -"
      else begin
        let (support, sparse_time) =
          wall (fun () ->
              let state = Sparse_state.create n in
              Sparse_state.run state circuit;
              Sparse_state.support_size state)
        in
        Printf.sprintf "%10.3f %10d" sparse_time support
      end
    in
    Printf.printf "%-18s %10.3f %8d %s %s\n" name dd_time dd_nodes
      dense_cell sparse_cells;
    flush stdout
  in
  row "ghz_20" (Standard.ghz 20);
  row "ghz_48" (Standard.ghz 48);
  row "qft_14 (of |1>)"
    (Circuit.of_gates ~qubits:14
       (Gate.x 0 :: Circuit.flatten (Qft.circuit 14)));
  row "grover_12" (Grover.circuit ~n:12 ~marked:1234 ());
  (* sparse would need the full 2^28 support here: skipped *)
  row ~sparse:false "grover_28"
    (Grover.circuit ~iterations:50 ~n:28 ~marked:12345 ());
  row "supremacy_4x4_8" (Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 ());
  Printf.printf
    "  -> representation sizes track structure, not width: the dense \
     array always pays 2^n and cannot go past ~30 qubits at all, while \
     the structured rows (ghz_48, grover_28) keep DD sizes linear; \
     sparsity helps only while the support stays small; unstructured \
     supremacy states are where all representations degrade and the \
     paper's combination strategies matter.\n"

(* ------------------------------------------------------------------ *)
(* Guard overhead: the resilience layer must be zero-cost when off      *)
(* ------------------------------------------------------------------ *)

let guard_overhead () =
  Printf.printf "\n=== Guard overhead (resource-governed runtime) ===\n";
  Printf.printf
    "(budget checks run between multiplications; with no budgets set they \
     must cost nothing measurable)\n";
  let circuit = Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 () in
  let n = 16 in
  let strategy = Dd_sim.Strategy.K_operations 8 in
  let best runner =
    let t () = snd (wall runner) in
    min (t ()) (min (t ()) (t ()))
  in
  let time_with ?guard () =
    best (fun () ->
        let engine = Dd_sim.Engine.create n in
        Dd_sim.Engine.run ~strategy ?guard engine circuit)
  in
  let unguarded = time_with () in
  let explicit_none = time_with ~guard:Dd_sim.Guard.none () in
  let armed =
    time_with
      ~guard:
        (Dd_sim.Guard.make ~deadline:3600. ~norm_tolerance:0.5
           ~gc_high_water:max_int ~max_live_nodes:max_int ())
      ()
  in
  Printf.printf
    "  supremacy 4x4 d8, k:8:\n\
    \    no guard argument      %8.3f s\n\
    \    Guard.none             %8.3f s   (%.2fx)\n\
    \    all budgets armed,     %8.3f s   (%.2fx)\n\
    \    none binding\n"
    unguarded explicit_none
    (explicit_none /. unguarded)
    armed (armed /. unguarded);
  (* graceful degradation at work: a tight combined-matrix budget turns
     combination windows into sequential tails instead of failures *)
  let fallback_engine = Dd_sim.Engine.create n in
  let (), fallback_seconds =
    wall (fun () ->
        Dd_sim.Engine.run ~strategy
          ~guard:(Dd_sim.Guard.make ~max_matrix_nodes:16 ())
          fallback_engine circuit)
  in
  let stats = Dd_sim.Engine.stats fallback_engine in
  Printf.printf
    "    16-node matrix budget  %8.3f s   (%d windows fell back to \
     sequential; state exact)\n"
    fallback_seconds stats.Dd_sim.Sim_stats.fallbacks

(* ------------------------------------------------------------------ *)
(* Kernel observability: machine-readable BENCH_kernel.json             *)
(* ------------------------------------------------------------------ *)

(* One run per (shipped benchmark circuit, strategy) pair, with a low GC
   high-water mark so the generation-aware sweeps actually execute; the
   per-table counters and pause totals land in BENCH_kernel.json for
   regression tracking. *)

let load_benchmark name =
  (* works both from the repository root and from _build/default/bench *)
  let candidates =
    [
      Filename.concat "benchmarks" name;
      Filename.concat "../benchmarks" name;
      Filename.concat "../../../benchmarks" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> failwith (Printf.sprintf "cannot locate benchmarks/%s" name)
  | Some path ->
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Qasm.of_string ~name text

let kernel_run_json ~benchmark ~strategy =
  let circuit = load_benchmark (benchmark ^ ".qasm") in
  let ctx = Dd.Context.create () in
  let engine = Dd_sim.Engine.create ~context:ctx Circuit.(circuit.qubits) in
  Dd_sim.Engine.set_track_peaks engine true;
  let guard = Dd_sim.Guard.make ~gc_high_water:512 () in
  let (), seconds =
    wall (fun () -> Dd_sim.Engine.run ~strategy ~guard engine circuit)
  in
  let stats = Dd_sim.Engine.stats engine in
  let gc = Dd.Context.gc_stats ctx in
  let table_json (s : Dd.Compute_table.stats) =
    let rate =
      if s.Dd.Compute_table.lookups = 0 then 0.
      else
        float_of_int s.Dd.Compute_table.hits
        /. float_of_int s.Dd.Compute_table.lookups
    in
    Printf.sprintf
      "{\"name\": %S, \"lookups\": %d, \"hits\": %d, \"hit_rate\": %.6f, \
       \"stores\": %d, \"evictions\": %d, \"invalidated\": %d, \
       \"entries\": %d}"
      s.Dd.Compute_table.table s.Dd.Compute_table.lookups
      s.Dd.Compute_table.hits rate s.Dd.Compute_table.stores
      s.Dd.Compute_table.evictions s.Dd.Compute_table.invalidated
      s.Dd.Compute_table.entries
  in
  let tables =
    Dd.Context.table_stats ctx |> List.map table_json
    |> String.concat ",\n        "
  in
  Printf.sprintf
    "    {\n\
     \      \"benchmark\": %S,\n\
     \      \"strategy\": %S,\n\
     \      \"wall_seconds\": %.6f,\n\
     \      \"final_state_nodes\": %d,\n\
     \      \"peak_state_nodes\": %d,\n\
     \      \"peak_matrix_nodes\": %d,\n\
     \      \"auto_gcs\": %d,\n\
     \      \"gc_collections\": %d,\n\
     \      \"gc_pause_seconds\": %.6f,\n\
     \      \"gc_reclaimed_nodes\": %d,\n\
     \      \"tables\": [\n\
     \        %s\n\
     \      ]\n\
     \    }"
    benchmark
    (Dd_sim.Strategy.to_string strategy)
    seconds
    (Dd_sim.Engine.state_node_count engine)
    stats.Dd_sim.Sim_stats.peak_state_nodes
    stats.Dd_sim.Sim_stats.peak_matrix_nodes
    stats.Dd_sim.Sim_stats.auto_gcs gc.Dd.Context.collections
    gc.Dd.Context.pause_total stats.Dd_sim.Sim_stats.gc_reclaimed_nodes
    tables

(* the smoke variant writes to its own file so a CI run can never clobber
   the committed full-matrix BENCH_kernel.json *)
let kernel ~smoke () =
  let out = if smoke then "BENCH_kernel_smoke.json" else "BENCH_kernel.json" in
  Printf.printf "\n=== Kernel observability (%s) ===\n" out;
  let benchmarks =
    if smoke then [ "ghz_12" ]
    else [ "ghz_12"; "qft_8"; "bv_16_42"; "random_6_80" ]
  in
  let strategies =
    if smoke then [ Dd_sim.Strategy.Sequential ]
    else [ Dd_sim.Strategy.Sequential; Dd_sim.Strategy.K_operations 4 ]
  in
  let runs =
    List.concat_map
      (fun benchmark ->
        List.map
          (fun strategy ->
            Printf.printf "  %s / %s\n" benchmark
              (Dd_sim.Strategy.to_string strategy);
            flush stdout;
            kernel_run_json ~benchmark ~strategy)
          strategies)
      benchmarks
  in
  let json =
    Printf.sprintf
      "{\n\
       \  \"schema\": \"ddsim-kernel-bench-1\",\n\
       \  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" runs)
  in
  Obs.Safe_io.write_file out json;
  Printf.printf "  wrote %s (%d runs)\n" out (List.length runs)

(* ------------------------------------------------------------------ *)
(* Structured-apply fast path: BENCH_apply.json                         *)
(* ------------------------------------------------------------------ *)

(* Each circuit runs three ways: sequential with the structured-apply
   kernel (the default), sequential through explicit gate DDs
   (--no-fused-apply), and a k-operations window run (where only the
   sequential tails of breached windows can use the fast path).  The
   fast and generic sequential runs must agree on the final state DD
   exactly; CI checks that invariant on the smoke variant. *)

let apply_run_json ~circuit_name ~mode ~strategy ~fused circuit =
  (* best of three, each in a fresh package instance (same policy as
     [timed_run]); counters are identical across repetitions, so they are
     reported from the last one *)
  let one ?ledger () =
    let ctx = Dd.Context.create () in
    let engine =
      Dd_sim.Engine.create ~context:ctx Circuit.(circuit.qubits)
    in
    Dd_sim.Engine.set_fused_apply engine fused;
    (match ledger with
    | None -> ()
    | Some sink -> Dd_sim.Engine.set_ledger engine sink);
    let (), seconds =
      wall (fun () -> Dd_sim.Engine.run ~strategy engine circuit)
    in
    (ctx, engine, seconds)
  in
  let _, _, t1 = one () in
  let _, _, t2 = one () in
  (* the strategy ledger rides on the last repetition only; its timing
     columns are attribution data (bench-check informational), while
     min-of-three keeps the wall_seconds column honest *)
  let ledger = Obs.Ledger.create () in
  let ctx, engine, t3 = one ~ledger () in
  let seconds = min t1 (min t2 t3) in
  let stats = Dd_sim.Engine.stats engine in
  let table name =
    List.find
      (fun (s : Dd.Compute_table.stats) -> s.Dd.Compute_table.table = name)
      (Dd.Context.table_stats ctx)
  in
  let mul_mv = table "mul_mv" and apply = table "apply" in
  let apply_hit_rate =
    if apply.Dd.Compute_table.lookups = 0 then 0.
    else
      float_of_int apply.Dd.Compute_table.hits
      /. float_of_int apply.Dd.Compute_table.lookups
  in
  let lt = Obs.Ledger.totals (Obs.Ledger.entries ledger) in
  let attributed =
    Obs.Ledger.total_build_seconds ledger
    +. Obs.Ledger.total_apply_seconds ledger
  in
  let coverage =
    let wall = stats.Dd_sim.Sim_stats.wall_time_seconds in
    if wall > 0. then attributed /. wall else 0.
  in
  Printf.sprintf
    "    {\n\
     \      \"circuit\": %S,\n\
     \      \"mode\": %S,\n\
     \      \"strategy\": %S,\n\
     \      \"fused\": %b,\n\
     \      \"wall_seconds\": %.6f,\n\
     \      \"final_state_nodes\": %d,\n\
     \      \"mat_vec_mults\": %d,\n\
     \      \"fast_path_applies\": %d,\n\
     \      \"generic_applies\": %d,\n\
     \      \"apply_ident_skips\": %d,\n\
     \      \"mul_mv_lookups\": %d,\n\
     \      \"apply_lookups\": %d,\n\
     \      \"apply_hits\": %d,\n\
     \      \"apply_hit_rate\": %.6f,\n\
     \      \"apply_evictions\": %d,\n\
     \      \"ledger_windows\": %d,\n\
     \      \"ledger_fallbacks\": %d,\n\
     \      \"ledger_mat_vec_seconds\": %.6f,\n\
     \      \"ledger_mat_mat_build_seconds\": %.6f,\n\
     \      \"ledger_mat_mat_apply_seconds\": %.6f,\n\
     \      \"ledger_wall_coverage\": %.6f\n\
     \    }"
    circuit_name mode
    (Dd_sim.Strategy.to_string strategy)
    fused seconds
    (Dd_sim.Engine.state_node_count engine)
    stats.Dd_sim.Sim_stats.mat_vec_mults
    stats.Dd_sim.Sim_stats.fast_path_applies
    stats.Dd_sim.Sim_stats.generic_applies
    (Dd.Context.apply_skips ctx) mul_mv.Dd.Compute_table.lookups
    apply.Dd.Compute_table.lookups apply.Dd.Compute_table.hits apply_hit_rate
    apply.Dd.Compute_table.evictions lt.Obs.Ledger.mm_entries
    lt.Obs.Ledger.fb_entries
    (lt.Obs.Ledger.mv_build +. lt.Obs.Ledger.mv_apply)
    lt.Obs.Ledger.mm_build lt.Obs.Ledger.mm_apply coverage

let apply_bench ~smoke () =
  let out = if smoke then "BENCH_apply_smoke.json" else "BENCH_apply.json" in
  Printf.printf "\n=== Structured-apply fast path (%s) ===\n" out;
  let circuits =
    if smoke then
      [
        ("ghz_12", Standard.ghz 12);
        ("qft_8", Qft.circuit 8);
        ("grover_8", Grover.circuit ~n:8 ~marked:5 ());
      ]
    else
      [
        ("ghz_20", Standard.ghz 20);
        ("qft_14", Qft.circuit 14);
        ("grover_16", Grover.circuit ~n:16 ~marked:12345 ());
        ("supremacy_4x4_8", Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 ());
      ]
  in
  let modes =
    [
      ("seq_fast", Dd_sim.Strategy.Sequential, true);
      ("seq_generic", Dd_sim.Strategy.Sequential, false);
      ("k4_fast", Dd_sim.Strategy.K_operations 4, true);
    ]
  in
  let runs =
    List.concat_map
      (fun (circuit_name, circuit) ->
        List.map
          (fun (mode, strategy, fused) ->
            Printf.printf "  %s / %s\n" circuit_name mode;
            flush stdout;
            apply_run_json ~circuit_name ~mode ~strategy ~fused circuit)
          modes)
      circuits
  in
  let json =
    Printf.sprintf
      "{\n\
       \  \"schema\": \"ddsim-apply-bench-1\",\n\
       \  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" runs)
  in
  Obs.Safe_io.write_file out json;
  Printf.printf "  wrote %s (%d runs)\n" out (List.length runs)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per table/figure            *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let test_fig8 =
    Test.make ~name:"fig8/k-operations grover_10"
      (Staged.stage (fun () ->
           (grover_case 10).run (Dd_sim.Strategy.K_operations 16)))
  in
  let test_fig9 =
    Test.make ~name:"fig9/max-size supremacy_3x3"
      (Staged.stage (fun () ->
           (supremacy_case (3, 3, 8)).run (Dd_sim.Strategy.Max_size 256)))
  in
  let test_table1 =
    Test.make ~name:"table1/DD-repeating grover_10"
      (Staged.stage (fun () ->
           let circuit = Grover.circuit ~n:10 ~marked:333 () in
           let engine = Dd_sim.Engine.create 10 in
           Dd_sim.Engine.run ~use_repeating:true engine circuit))
  in
  let test_table2 =
    Test.make ~name:"table2/DD-construct shor_15"
      (Staged.stage (fun () ->
           ignore
             (Shor.run_order_finding ~seed:11 ~backend:Shor.Direct ~a:7 15)))
  in
  let test_fig5 =
    Test.make ~name:"fig5/mat-mat vs mat-vec supremacy_3x3"
      (Staged.stage (fun () ->
           (supremacy_case (3, 3, 8)).run (Dd_sim.Strategy.K_operations 2)))
  in
  let grouped =
    Test.make_grouped ~name:"ddsim"
      [ test_fig5; test_fig8; test_fig9; test_table1; test_table2 ]
  in
  Printf.printf "\n=== Bechamel micro-benchmarks (one per table/figure) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc -> (name, ols_result) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-44s %16s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with
        | Some (value :: _) -> value
        | Some [] | None -> nan
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r2 -> r2
        | None -> nan
      in
      Printf.printf "%-44s %13.3f ms %8.4f\n" name (estimate /. 1e6) r2)
    rows

(* ------------------------------------------------------------------ *)
(* Trace trajectories: BENCH_trace.json                                 *)
(* ------------------------------------------------------------------ *)

(* One traced run per (circuit, strategy): the per-gate state-DD
   node-count trajectory — the Fig. 3-style curve, DD size over the
   *course* of the simulation rather than just at its end — is extracted
   from the recorded event timeline with the same analysis `ddsim report`
   uses, then downsampled to a bounded number of points.  Downsampling
   keeps each bucket's maximum (the peak survives exactly) plus the final
   point. *)

let downsample_trajectory ~max_points points =
  let n = List.length points in
  if n <= max_points then points
  else begin
    let samples = Array.of_list points in
    let bucket = Array.make max_points None in
    Array.iteri
      (fun i (g, v) ->
        let c = i * max_points / n in
        match bucket.(c) with
        | Some (_, best) when best >= v -> ()
        | _ -> bucket.(c) <- Some (g, v))
      samples;
    let kept = Array.to_list bucket |> List.filter_map (fun p -> p) in
    let final = samples.(n - 1) in
    if List.mem final kept then kept else kept @ [ final ]
  end

let trace_run_json ~circuit_name ~strategy circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  let trace = Obs.Trace.create () in
  Dd_sim.Engine.set_trace engine trace;
  let (), seconds =
    wall (fun () -> Dd_sim.Engine.run ~strategy engine circuit)
  in
  let run =
    {
      Obs.Trace_report.version = Obs.Trace_export.version;
      meta = [];
      events = Array.to_list (Obs.Trace.events trace);
      dropped = Obs.Trace.dropped trace;
    }
  in
  let trajectory =
    downsample_trajectory ~max_points:240 (Obs.Trace_report.trajectory run)
  in
  let stats = Dd_sim.Engine.stats engine in
  Printf.sprintf
    "    {\n\
     \      \"circuit\": \"%s\",\n\
     \      \"strategy\": \"%s\",\n\
     \      \"qubits\": %d,\n\
     \      \"gates\": %d,\n\
     \      \"events\": %d,\n\
     \      \"wall_seconds\": %.6f,\n\
     \      \"peak_state_nodes\": %d,\n\
     \      \"final_state_nodes\": %d,\n\
     \      \"trajectory\": [%s]\n\
     \    }"
    circuit_name
    (Dd_sim.Strategy.to_string strategy)
    Circuit.(circuit.qubits)
    (Circuit.gate_count circuit)
    (Obs.Trace.length trace) seconds
    stats.Dd_sim.Sim_stats.peak_state_nodes
    (Dd_sim.Engine.state_node_count engine)
    (String.concat ","
       (List.map (fun (g, v) -> Printf.sprintf "[%d,%d]" g v) trajectory))

let trace_bench () =
  let out = "BENCH_trace.json" in
  Printf.printf "\n=== Trace trajectories (%s) ===\n" out;
  let circuits =
    [
      ("ghz_20", Standard.ghz 20);
      ("qft_14", Qft.circuit 14);
      ("grover_16", Grover.circuit ~n:16 ~marked:12345 ());
    ]
  in
  let strategies =
    [ Dd_sim.Strategy.Sequential; Dd_sim.Strategy.K_operations 4 ]
  in
  let runs =
    List.concat_map
      (fun (circuit_name, circuit) ->
        List.map
          (fun strategy ->
            Printf.printf "  %s / %s\n" circuit_name
              (Dd_sim.Strategy.to_string strategy);
            flush stdout;
            trace_run_json ~circuit_name ~strategy circuit)
          strategies)
      circuits
  in
  let json =
    Printf.sprintf
      "{\n\
       \  \"schema\": \"ddsim-trace-bench-1\",\n\
       \  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" runs)
  in
  Obs.Safe_io.write_file out json;
  Printf.printf "  wrote %s (%d runs)\n" out (List.length runs)

(* ------------------------------------------------------------------ *)
(* Dynamic variable reordering: BENCH_reorder.json                      *)
(* ------------------------------------------------------------------ *)

(* Each circuit runs under up to three reorder treatments:
     off      - identity order (the baseline every other bench uses)
     once     - a hand-picked good order installed up front (the CLI's
                --reorder once --order SPEC path); the orders below were
                discovered by sifting the final state and then frozen,
                so the peaks are reproducible constants
     adaptive - bulge-triggered sifting mid-run
   Peak state-DD node count is the figure of merit: the order layer's
   acceptance bar is a >= 2x peak reduction of the fixed order over
   identity on a supremacy grid.  The per-run "reorder" field is part of
   the bench-check identity, so off/once/adaptive pair independently
   against the committed baseline. *)

let reorder_run_json ~circuit_name ~reorder ~order circuit =
  let one () =
    let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
    Dd_sim.Engine.set_track_peaks engine true;
    (match reorder, order with
    | `Once, Some spec ->
      ignore (Dd_sim.Engine.set_order engine (Dd.Order.of_string spec))
    | `Adaptive, _ ->
      Dd_sim.Engine.set_reorder engine ~bulge_factor:1.5 ~every:8
        Dd_sim.Engine.Reorder_adaptive
    | (`Off | `Once), _ -> ());
    let (), seconds = wall (fun () -> Dd_sim.Engine.run engine circuit) in
    (engine, seconds)
  in
  let _, t1 = one () in
  let _, t2 = one () in
  let engine, t3 = one () in
  let seconds = min t1 (min t2 t3) in
  let stats = Dd_sim.Engine.stats engine in
  let reorder_name =
    match reorder with `Off -> "off" | `Once -> "once" | `Adaptive -> "adaptive"
  in
  Printf.sprintf
    "    {\n\
     \      \"circuit\": %S,\n\
     \      \"reorder\": %S,\n\
     \      \"order\": %S,\n\
     \      \"final_order\": %S,\n\
     \      \"wall_seconds\": %.6f,\n\
     \      \"peak_state_nodes\": %d,\n\
     \      \"final_state_nodes\": %d,\n\
     \      \"reorders_run\": %d,\n\
     \      \"reorder_swaps\": %d,\n\
     \      \"reorder_nodes_before\": %d,\n\
     \      \"reorder_nodes_after\": %d\n\
     \    }"
    circuit_name reorder_name
    (match order with Some spec -> spec | None -> "identity")
    (Dd.Order.to_string (Dd.Context.order (Dd_sim.Engine.context engine)))
    seconds stats.Dd_sim.Sim_stats.peak_state_nodes
    (Dd_sim.Engine.state_node_count engine)
    stats.Dd_sim.Sim_stats.reorders_run stats.Dd_sim.Sim_stats.reorder_swaps
    stats.Dd_sim.Sim_stats.reorder_nodes_before
    stats.Dd_sim.Sim_stats.reorder_nodes_after

let reorder_bench ~smoke () =
  let out =
    if smoke then "BENCH_reorder_smoke.json" else "BENCH_reorder.json"
  in
  Printf.printf "\n=== Dynamic variable reordering (%s) ===\n" out;
  (* (circuit, hand-picked order or None) — None skips the "once" row *)
  let circuits =
    if smoke then
      [
        ( "supremacy_3x3_4",
          Supremacy.circuit ~rows:3 ~cols:3 ~cycles:4 (),
          (* column-major: the staggered CZ layers bond along columns
             first, so hosting each column contiguously cuts the peak *)
          Some "0 3 6 1 4 7 2 5 8" );
        ("qft_8", Qft.circuit 8, None);
      ]
    else
      [
        ("qft_14", Qft.circuit 14, None);
        ( "supremacy_4x4_4",
          Supremacy.circuit ~rows:4 ~cols:4 ~cycles:4 (),
          Some "0 4 8 12 1 5 9 13 2 6 10 14 3 7 11 15" );
        ( "supremacy_4x4_6",
          Supremacy.circuit ~rows:4 ~cols:4 ~cycles:6 (),
          (* sift-discovered on the final state, then frozen: 16x below
             the identity-order peak, the fixed-order acceptance bar *)
          Some "0 1 5 4 8 9 12 13 11 10 15 14 7 2 3 6" );
      ]
  in
  let runs =
    List.concat_map
      (fun (circuit_name, circuit, picked) ->
        let modes =
          [ (`Off, None); (`Adaptive, None) ]
          @ match picked with Some spec -> [ (`Once, Some spec) ] | None -> []
        in
        List.map
          (fun (reorder, order) ->
            Printf.printf "  %s / %s\n" circuit_name
              (match reorder with
              | `Off -> "off"
              | `Once -> "once"
              | `Adaptive -> "adaptive");
            flush stdout;
            reorder_run_json ~circuit_name ~reorder ~order circuit)
          modes)
      circuits
  in
  let json =
    Printf.sprintf
      "{\n\
       \  \"schema\": \"ddsim-reorder-bench-1\",\n\
       \  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" runs)
  in
  Obs.Safe_io.write_file out json;
  Printf.printf "  wrote %s (%d runs)\n" out (List.length runs)

(* ------------------------------------------------------------------ *)
(* Domain-parallel kernel: BENCH_parallel.json                          *)
(* ------------------------------------------------------------------ *)

(* Each circuit runs under a k-operations strategy at several domain-pool
   sizes; domains:1 is the sequential kernel every other bench measures
   and is the speedup baseline.  The "domains" field joins the bench-check
   identity (value "1" is dropped so older baselines still pair).  The
   acceptance bar for the parallel kernel is >= 1.5x wall-clock on
   qft_14 / k:4 at 4 domains. *)

let parallel_run_json ~circuit_name ~k ~domains circuit =
  let one ?ledger () =
    let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
    Dd_sim.Engine.set_domains engine domains;
    (match ledger with
    | None -> ()
    | Some sink -> Dd_sim.Engine.set_ledger engine sink);
    let (), seconds =
      wall (fun () ->
          Dd_sim.Engine.run
            ~strategy:(Dd_sim.Strategy.K_operations k)
            engine circuit)
    in
    (engine, seconds)
  in
  let _, t1 = one () in
  let _, t2 = one () in
  (* ledger on the last repetition only, as in the apply bench *)
  let ledger = Obs.Ledger.create () in
  let engine, t3 = one ~ledger () in
  let seconds = min t1 (min t2 t3) in
  let stats = Dd_sim.Engine.stats engine in
  (* concurrency section (last repetition only): pool utilization from
     Sim_stats plus lock contention summed over every lockable shared
     structure.  pool_* / lock_* leaves are the bench-check
     "informational" class — recorded, never gated. *)
  let lock_acq, lock_cont, lock_wait =
    List.fold_left
      (fun (a, c, w) (_, (l : Dd.Compute_table.lock_stats)) ->
        (a + l.acquisitions, c + l.contended, w +. l.wait_seconds))
      (0, 0, 0.)
      (Dd.Context.lock_stats (Dd_sim.Engine.context engine))
  in
  let lt = Obs.Ledger.totals (Obs.Ledger.entries ledger) in
  let attributed =
    Obs.Ledger.total_build_seconds ledger
    +. Obs.Ledger.total_apply_seconds ledger
  in
  let coverage =
    let wall = stats.Dd_sim.Sim_stats.wall_time_seconds in
    if wall > 0. then attributed /. wall else 0.
  in
  ( seconds,
    Printf.sprintf
      "    {\n\
       \      \"circuit\": %S,\n\
       \      \"strategy\": %S,\n\
       \      \"domains\": \"%d\",\n\
       \      \"wall_seconds\": %.6f,\n\
       \      \"final_state_nodes\": %d,\n\
       \      \"mat_mat_mults\": %d,\n\
       \      \"combined_applications\": %d,\n\
       \      \"ledger_windows\": %d,\n\
       \      \"ledger_fallbacks\": %d,\n\
       \      \"ledger_mat_vec_seconds\": %.6f,\n\
       \      \"ledger_mat_mat_build_seconds\": %.6f,\n\
       \      \"ledger_mat_mat_apply_seconds\": %.6f,\n\
       \      \"ledger_wall_coverage\": %.6f,\n\
       \      \"parallel\": {\n\
       \        \"pool_batches\": %d,\n\
       \        \"pool_tasks\": %d,\n\
       \        \"pool_busy_seconds\": %.6f,\n\
       \        \"pool_idle_seconds\": %.6f,\n\
       \        \"pool_section_seconds\": %.6f,\n\
       \        \"lock_acquisitions\": %d,\n\
       \        \"lock_contended\": %d,\n\
       \        \"lock_wait_seconds\": %.6f\n\
       \      }\n\
       \    }"
      circuit_name
      (Dd_sim.Strategy.to_string (Dd_sim.Strategy.K_operations k))
      domains seconds
      (Dd_sim.Engine.state_node_count engine)
      stats.Dd_sim.Sim_stats.mat_mat_mults
      stats.Dd_sim.Sim_stats.combined_applications
      lt.Obs.Ledger.mm_entries lt.Obs.Ledger.fb_entries
      (lt.Obs.Ledger.mv_build +. lt.Obs.Ledger.mv_apply)
      lt.Obs.Ledger.mm_build lt.Obs.Ledger.mm_apply coverage
      stats.Dd_sim.Sim_stats.pool_batches
      stats.Dd_sim.Sim_stats.pool_tasks
      stats.Dd_sim.Sim_stats.pool_busy_seconds
      stats.Dd_sim.Sim_stats.pool_idle_seconds
      stats.Dd_sim.Sim_stats.pool_section_seconds
      lock_acq lock_cont lock_wait )

let parallel_bench ~smoke () =
  let out =
    if smoke then "BENCH_parallel_smoke.json" else "BENCH_parallel.json"
  in
  Printf.printf "\n=== Domain-parallel kernel (%s) ===\n" out;
  let circuits =
    if smoke then
      [ ("qft_8", Qft.circuit 8); ("grover_8", Grover.circuit ~n:8 ~marked:5 ()) ]
    else
      [
        ("qft_14", Qft.circuit 14);
        ("grover_16", Grover.circuit ~n:16 ~marked:12345 ());
        ("supremacy_4x4_8", Supremacy.circuit ~rows:4 ~cols:4 ~cycles:8 ());
      ]
  in
  let ks = if smoke then [ 4 ] else [ 2; 4 ] in
  let domain_counts = if smoke then [ 1; 4 ] else [ 1; 2; 4 ] in
  let runs =
    List.concat_map
      (fun (circuit_name, circuit) ->
        List.concat_map
          (fun k ->
            let baseline = ref None in
            List.map
              (fun domains ->
                Printf.printf "  %s / k:%d / %d domain%s" circuit_name k
                  domains
                  (if domains = 1 then "" else "s");
                flush stdout;
                let seconds, json =
                  parallel_run_json ~circuit_name ~k ~domains circuit
                in
                (match !baseline with
                | None ->
                  baseline := Some seconds;
                  Printf.printf "  (%.3f s)\n" seconds
                | Some base ->
                  Printf.printf "  (%.3f s, %.2fx)\n" seconds (base /. seconds));
                flush stdout;
                json)
              domain_counts)
          ks)
      circuits
  in
  let json =
    Printf.sprintf
      "{\n\
       \  \"schema\": \"ddsim-parallel-bench-1\",\n\
       \  \"runs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" runs)
  in
  Obs.Safe_io.write_file out json;
  Printf.printf "  wrote %s (%d runs)\n" out (List.length runs)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let paper = List.mem "--paper" args in
  let selected = List.filter (fun a -> a <> "--paper") args in
  let all = selected = [] in
  let want name = all || List.mem name selected in
  Printf.printf
    "ddsim benchmark harness — reproducing Zulehner & Wille, DATE 2019\n";
  if paper then
    Printf.printf
      "running PAPER-SCALE instances; this mirrors the paper's 2-CPU-hour \
       regime\n";
  let timed name f =
    if want name then begin
      let (), seconds = wall f in
      Printf.printf "[%s completed in %.1f s]\n" name seconds;
      flush stdout
    end
  in
  timed "fig5" (fun () -> fig5 ~paper ());
  timed "fig8" (fun () -> fig8 ~paper ());
  timed "fig9" (fun () -> fig9 ~paper ());
  timed "table1" (fun () -> table1 ~paper ());
  timed "table2" (fun () -> table2 ~paper ());
  timed "ablation" (fun () -> ablation ());
  timed "backends" (fun () -> backends ());
  timed "guard" (fun () -> guard_overhead ());
  (* the -smoke variants are CI-only and never part of the default sweep *)
  if List.mem "kernel-smoke" selected then begin
    let (), seconds = wall (fun () -> kernel ~smoke:true ()) in
    Printf.printf "[kernel-smoke completed in %.1f s]\n" seconds
  end
  else timed "kernel" (fun () -> kernel ~smoke:false ());
  if List.mem "apply-smoke" selected then begin
    let (), seconds = wall (fun () -> apply_bench ~smoke:true ()) in
    Printf.printf "[apply-smoke completed in %.1f s]\n" seconds
  end
  else timed "apply" (fun () -> apply_bench ~smoke:false ());
  if List.mem "reorder-smoke" selected then begin
    let (), seconds = wall (fun () -> reorder_bench ~smoke:true ()) in
    Printf.printf "[reorder-smoke completed in %.1f s]\n" seconds
  end
  else timed "reorder" (fun () -> reorder_bench ~smoke:false ());
  if List.mem "parallel-smoke" selected then begin
    let (), seconds = wall (fun () -> parallel_bench ~smoke:true ()) in
    Printf.printf "[parallel-smoke completed in %.1f s]\n" seconds
  end
  else timed "parallel" (fun () -> parallel_bench ~smoke:false ());
  timed "trace" (fun () -> trace_bench ());
  timed "bechamel" (fun () -> bechamel_suite ());
  Printf.printf "\ndone.\n"
