(* Baseline comparator for the committed BENCH_*.json files.

     dune exec bench/compare.exe -- --baseline BENCH_apply_smoke.json \
         fresh_apply_smoke.json [--time-ratio 25] [--count-ratio 0.5] \
         [--rate-tol 0.3]

   Exits 1 on any regression (see Obs.Bench_check for the metric
   classes); `ddsim bench-check` is the same comparator behind the main
   CLI.

   Runs are paired across files by their identity fields (name /
   benchmark / circuit / mode / strategy / reorder).  The "reorder"
   dimension postdates some committed baselines: a baseline run without
   the field pairs with a candidate run carrying reorder:"off", so
   regrowing the bench matrix does not spuriously fail old baselines. *)

let read_file path =
  let ic = open_in path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let () =
  let baseline = ref "" in
  let candidate = ref "" in
  let tol = ref Obs.Bench_check.default in
  let spec =
    [
      ( "--baseline",
        Arg.String (fun p -> baseline := p),
        "FILE committed baseline BENCH_*.json" );
      ( "--time-ratio",
        Arg.Float (fun r -> tol := { !tol with time_ratio = r }),
        "R allow candidate times up to R x baseline (default 10)" );
      ( "--count-ratio",
        Arg.Float (fun r -> tol := { !tol with count_ratio = r }),
        "R allowed fractional drift of counter metrics (default 0.1)" );
      ( "--rate-tol",
        Arg.Float (fun r -> tol := { !tol with rate_tol = r }),
        "T absolute tolerance for *_rate metrics (default 0.15)" );
    ]
  in
  let usage = "compare.exe --baseline BASELINE.json CANDIDATE.json" in
  Arg.parse spec (fun anon -> candidate := anon) usage;
  if !baseline = "" || !candidate = "" then begin
    prerr_endline usage;
    exit 2
  end;
  let findings =
    Obs.Bench_check.compare_strings ~tol:!tol
      ~baseline:(read_file !baseline)
      (read_file !candidate)
  in
  print_string (Obs.Bench_check.render findings);
  exit (if Obs.Bench_check.regressed findings then 1 else 0)
