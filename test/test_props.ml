(* Property-based tests (QCheck) on the invariants the paper's approach
   rests on: DD canonicity, associativity of the multiplication chain
   (Eq. 1 = Eq. 2), unitarity, and the arithmetic substrate. *)

open Dd_complex

let amplitude_gen =
  QCheck.Gen.(
    map2 (fun re im -> Cnum.make re im) (float_range (-1.) 1.)
      (float_range (-1.) 1.))

let vector_gen n =
  QCheck.Gen.(array_size (return (1 lsl n)) amplitude_gen)

let vector_arb n =
  QCheck.make ~print:(fun v ->
      String.concat "; " (Array.to_list (Array.map Cnum.to_string v)))
    (vector_gen n)

let circuit_arb ~qubits ~gates =
  QCheck.make ~print:(fun seed -> Printf.sprintf "random_circuit seed %d" seed)
    QCheck.Gen.(0 -- 10000)
  |> QCheck.map_keep_input (fun seed ->
         Standard.random_circuit ~seed ~qubits ~gates ())

let close a b = Cnum.approx_equal ~tol:1e-8 a b

let arrays_close xs ys =
  Array.length xs = Array.length ys
  && Array.for_all2 (fun a b -> close a b) xs ys

let prop_roundtrip =
  QCheck.Test.make ~name:"of_array/to_array is the identity" ~count:100
    (vector_arb 4) (fun v ->
      let ctx = Dd.Context.create () in
      arrays_close v (Dd.Vdd.to_array (Dd.Vdd.of_array ctx v) ~n:4))

let prop_canonicity =
  QCheck.Test.make ~name:"equal vectors build the identical edge" ~count:100
    (vector_arb 3) (fun v ->
      let ctx = Dd.Context.create () in
      let e1 = Dd.Vdd.of_array ctx v in
      (* build the same vector from scaled halves *)
      let scaled = Array.map (fun x -> Cnum.scale 4. x) v in
      let e2 =
        Dd.Vdd.scale ctx (Cnum.of_float 0.25) (Dd.Vdd.of_array ctx scaled)
      in
      Dd.Vdd.equal e1 e2)

let prop_add_commutes =
  QCheck.Test.make ~name:"DD addition is commutative (canonically)"
    ~count:100
    (QCheck.pair (vector_arb 3) (vector_arb 3))
    (fun (va, vb) ->
      let ctx = Dd.Context.create () in
      let a = Dd.Vdd.of_array ctx va and b = Dd.Vdd.of_array ctx vb in
      Dd.Vdd.equal (Dd.Vdd.add ctx a b) (Dd.Vdd.add ctx b a))

let prop_add_associates =
  QCheck.Test.make ~name:"DD addition is associative (numerically)"
    ~count:60
    (QCheck.triple (vector_arb 3) (vector_arb 3) (vector_arb 3))
    (fun (va, vb, vc) ->
      let ctx = Dd.Context.create () in
      let a = Dd.Vdd.of_array ctx va
      and b = Dd.Vdd.of_array ctx vb
      and c = Dd.Vdd.of_array ctx vc in
      let left = Dd.Vdd.add ctx (Dd.Vdd.add ctx a b) c in
      let right = Dd.Vdd.add ctx a (Dd.Vdd.add ctx b c) in
      arrays_close (Dd.Vdd.to_array left ~n:3) (Dd.Vdd.to_array right ~n:3))

let prop_eq1_equals_eq2 =
  (* the paper's pivotal identity: (M2 x M1) x v  =  M2 x (M1 x v).
     Compared numerically: canonical structural equality can be broken by
     floating-point pivot ties (the accuracy/compactness trade-off of the
     paper's reference [21]). *)
  QCheck.Test.make ~name:"matrix chain re-parenthesisation (Eq.1 = Eq.2)"
    ~count:60
    (circuit_arb ~qubits:4 ~gates:12)
    (fun (_, circuit) ->
      let ctx = Dd.Context.create () in
      let engine_seq = Dd_sim.Engine.create ~context:ctx 4 in
      Dd_sim.Engine.run engine_seq circuit;
      let engine_comb = Dd_sim.Engine.create ~context:ctx 4 in
      let product =
        Dd_sim.Engine.combine engine_comb (Circuit.flatten circuit)
      in
      Dd_sim.Engine.apply_matrix engine_comb product;
      arrays_close
        (Dd.Vdd.to_array (Dd_sim.Engine.state engine_seq) ~n:4)
        (Dd.Vdd.to_array (Dd_sim.Engine.state engine_comb) ~n:4))

let prop_strategies_preserve_norm =
  QCheck.Test.make ~name:"every strategy preserves the norm" ~count:40
    (circuit_arb ~qubits:4 ~gates:20)
    (fun (seed, circuit) ->
      let strategy =
        match seed mod 3 with
        | 0 -> Dd_sim.Strategy.Sequential
        | 1 -> Dd_sim.Strategy.K_operations (1 + (seed mod 7))
        | _ -> Dd_sim.Strategy.Max_size (1 + (seed mod 100))
      in
      let engine = Dd_sim.Engine.create 4 in
      Dd_sim.Engine.run ~strategy engine circuit;
      let norm =
        Dd.Measure.norm2
          (Dd_sim.Engine.context engine)
          (Dd_sim.Engine.state engine)
      in
      abs_float (norm -. 1.) < 1e-8)

let prop_gate_dd_unitary =
  QCheck.Test.make ~name:"random gate DDs are unitary (U+ U == I)" ~count:80
    (QCheck.make QCheck.Gen.(0 -- 100000) ~print:string_of_int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let circuit = Standard.random_circuit ~seed ~qubits:4 ~gates:1 () in
      ignore rng;
      let engine = Dd_sim.Engine.create 4 in
      let ctx = Dd_sim.Engine.context engine in
      match Circuit.flatten circuit with
      | [ gate ] ->
        let u = Dd_sim.Engine.gate_dd engine gate in
        Dd.Mdd.equal (Dd.Mdd.identity ctx 4)
          (Dd.Mdd.mul ctx (Dd.Mdd.adjoint ctx u) u)
      | [] | _ :: _ -> false)

let prop_permutation_unitary =
  QCheck.Test.make ~name:"permutation DDs are unitary" ~count:50
    (QCheck.make QCheck.Gen.(0 -- 100000) ~print:string_of_int)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 in
      let size = 1 lsl n in
      let perm = Array.init size (fun i -> i) in
      for i = size - 1 downto 1 do
        let j = Random.State.int rng (i + 1) in
        let tmp = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- tmp
      done;
      let ctx = Dd.Context.create () in
      let u = Dd.Mdd.of_permutation ctx ~n (fun x -> perm.(x)) in
      Dd.Mdd.equal (Dd.Mdd.identity ctx n)
        (Dd.Mdd.mul ctx (Dd.Mdd.adjoint ctx u) u))

let prop_measure_distribution_sums =
  QCheck.Test.make ~name:"outcome probabilities sum to the squared norm"
    ~count:60 (vector_arb 4) (fun v ->
      let ctx = Dd.Context.create () in
      let e = Dd.Vdd.of_array ctx v in
      let total = Array.fold_left (fun acc x -> acc +. Cnum.mag2 x) 0. v in
      abs_float (Dd.Measure.norm2 ctx e -. total) < 1e-8)

let prop_convergents_reconstruct =
  QCheck.Test.make ~name:"last continued-fraction convergent is the fraction"
    ~count:200
    (QCheck.pair QCheck.(1 -- 5000) QCheck.(1 -- 5000))
    (fun (num, den) ->
      match List.rev (Ntheory.convergents num den) with
      | (p, q) :: _ ->
        let g = Ntheory.gcd num den in
        p = num / g && q = den / g
      | [] -> false)

let prop_mod_pow_agrees =
  QCheck.Test.make ~name:"mod_pow matches naive exponentiation" ~count:200
    (QCheck.triple QCheck.(2 -- 50) QCheck.(0 -- 40) QCheck.(2 -- 97))
    (fun (base, exponent, modulus) ->
      let naive = ref (1 mod modulus) in
      for _ = 1 to exponent do
        naive := !naive * base mod modulus
      done;
      Ntheory.mod_pow base exponent modulus = !naive)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_roundtrip;
      prop_canonicity;
      prop_add_commutes;
      prop_add_associates;
      prop_eq1_equals_eq2;
      prop_strategies_preserve_norm;
      prop_gate_dd_unitary;
      prop_permutation_unitary;
      prop_measure_distribution_sums;
      prop_convergents_reconstruct;
      prop_mod_pow_agrees;
    ]

(* properties of the tooling layer, appended; suite re-exported *)

(* [Optimize.drop_identities] is documented to be free to change the
   global phase (it removes e^{i.phi}*I gates), so the optimizer is only
   required to preserve semantics up to one: align both states on the
   first non-negligible reference amplitude before comparing. *)
let arrays_close_up_to_phase xs ys =
  Array.length xs = Array.length ys
  &&
  let pivot = ref (-1) in
  Array.iteri
    (fun i x -> if !pivot < 0 && not (Cnum.approx_zero ~tol:1e-8 x) then pivot := i)
    xs;
  if !pivot < 0 then arrays_close xs ys
  else
    let phase = Cnum.div ys.(!pivot) xs.(!pivot) in
    Array.for_all2 (fun a b -> close (Cnum.mul phase a) b) xs ys

let prop_optimizer_preserves_semantics =
  QCheck.Test.make ~name:"optimizer preserves circuit semantics" ~count:40
    (circuit_arb ~qubits:4 ~gates:30)
    (fun (_, circuit) ->
      let optimized = Optimize.optimize circuit in
      let dense circuit =
        let state = Dense_state.create 4 in
        Dense_state.run state circuit;
        Dense_state.to_array state
      in
      arrays_close_up_to_phase (dense circuit) (dense optimized))

let prop_optimizer_never_grows =
  QCheck.Test.make ~name:"optimizer never increases the gate count"
    ~count:40
    (circuit_arb ~qubits:4 ~gates:30)
    (fun (_, circuit) ->
      Circuit.gate_count (Optimize.optimize circuit)
      <= Circuit.gate_count circuit)

let prop_repeat_detection_identity =
  QCheck.Test.make ~name:"repeat detection preserves the gate stream"
    ~count:40
    (circuit_arb ~qubits:3 ~gates:40)
    (fun (_, circuit) ->
      Circuit.flatten (Repeats.detect circuit) = Circuit.flatten circuit)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialisation round-trips vectors" ~count:40
    (vector_arb 4) (fun v ->
      let ctx = Dd.Context.create () in
      let e = Dd.Vdd.of_array ctx v in
      let reloaded =
        Dd.Serialize.vector_of_string ctx (Dd.Serialize.vector_to_string e)
      in
      arrays_close (Dd.Vdd.to_array e ~n:4) (Dd.Vdd.to_array reloaded ~n:4))

let prop_qasm_roundtrip =
  QCheck.Test.make ~name:"QASM export/import round-trips random circuits"
    ~count:30
    (circuit_arb ~qubits:4 ~gates:25)
    (fun (_, circuit) ->
      let reloaded = Qasm.of_string (Qasm.to_string circuit) in
      let dense circuit =
        let state = Dense_state.create 4 in
        Dense_state.run state circuit;
        Dense_state.to_array state
      in
      arrays_close (dense circuit) (dense reloaded))

let prop_equivalence_accepts_identity_padding =
  QCheck.Test.make ~name:"equivalence accepts inverse-pair padding"
    ~count:30
    (circuit_arb ~qubits:3 ~gates:20)
    (fun (seed, circuit) ->
      let rng = Random.State.make [| seed |] in
      let q = Random.State.int rng 3 in
      let padded =
        Circuit.of_gates ~qubits:3
          (Circuit.flatten circuit @ [ Gate.h q; Gate.h q ])
      in
      Dd_sim.Equivalence.equivalent circuit padded)

let prop_gc_preserves_state =
  QCheck.Test.make ~name:"garbage collection never changes the state"
    ~count:30
    (circuit_arb ~qubits:4 ~gates:30)
    (fun (_, circuit) ->
      let engine = Dd_sim.Engine.create 4 in
      Dd_sim.Engine.run engine circuit;
      let before = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:4 in
      ignore (Dd_sim.Engine.collect_garbage engine);
      let after = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:4 in
      arrays_close before after)

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_optimizer_preserves_semantics;
        prop_optimizer_never_grows;
        prop_repeat_detection_identity;
        prop_serialize_roundtrip;
        prop_qasm_roundtrip;
        prop_equivalence_accepts_identity_padding;
        prop_gc_preserves_state;
      ]
