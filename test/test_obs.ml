(* The tracing layer's own invariants: a monotone clock, a disabled trace
   that costs nothing, an event timeline whose spans nest and whose
   completion times are ordered, exporters that round-trip, and — the
   cross-check that makes the trace trustworthy — event counts and node
   trajectories that agree exactly with the Sim_stats aggregates the
   engine has always maintained. *)

open Util

let traced_run ?strategy ?max_events circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  let trace = Obs.Trace.create ?max_events () in
  Dd_sim.Engine.set_trace engine trace;
  Dd_sim.Engine.run ?strategy engine circuit;
  (engine, trace)

(* -- clock ---------------------------------------------------------- *)

let test_clock_monotone () =
  let previous = ref (Obs.Clock.now ()) in
  for _ = 1 to 1000 do
    let t = Obs.Clock.now () in
    check_bool "clock never goes backwards" true (t >= !previous);
    previous := t
  done

(* -- disabled tracing costs nothing --------------------------------- *)

let test_null_trace_is_off () =
  check_bool "null trace is off" false (Obs.Trace.is_on Obs.Trace.null);
  Obs.Trace.set_enabled Obs.Trace.null true;
  check_bool "null trace cannot be enabled" false
    (Obs.Trace.is_on Obs.Trace.null);
  Obs.Trace.instant Obs.Trace.null Obs.Trace.Gate_applied ~gate:0
    ~state_nodes:0 ~matrix_nodes:0 ~detail:"";
  check_int "null trace records nothing" 0 (Obs.Trace.length Obs.Trace.null)

let test_disabled_emission_allocates_nothing () =
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t false;
  (* warm up so any one-time allocation is outside the measured window *)
  Obs.Trace.instant t Obs.Trace.Gate_applied ~gate:1 ~state_nodes:2
    ~matrix_nodes:3 ~detail:"x";
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    Obs.Trace.instant t Obs.Trace.Gate_applied ~gate:i ~state_nodes:2
      ~matrix_nodes:3 ~detail:"x"
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "100k disabled instants allocated %.0f words" allocated)
    true (allocated < 256.);
  check_int "nothing was recorded" 0 (Obs.Trace.length t)

let test_engine_without_trace_stays_null () =
  let circuit = Standard.ghz 4 in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.run engine circuit;
  check_bool "default engine trace is off" false
    (Obs.Trace.is_on (Dd_sim.Engine.trace engine));
  check_int "no dropped counter without a trace" 0
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.trace_events_dropped

(* -- event ordering invariants -------------------------------------- *)

let test_event_ordering () =
  let _, trace =
    traced_run
      ~strategy:(Dd_sim.Strategy.K_operations 4)
      (Grover.circuit ~n:6 ~marked:11 ())
  in
  let events = Obs.Trace.events trace in
  check_bool "a real run records events" true (Array.length events > 0);
  (* spans are emitted at completion, so completion times are monotone in
     buffer order *)
  let previous_end = ref neg_infinity in
  Array.iter
    (fun (e : Obs.Trace.event) ->
      check_bool "timestamps are non-negative" true (e.t >= 0.);
      check_bool "durations are non-negative" true (e.dur >= 0.);
      let finish = e.t +. e.dur in
      check_bool "completion times are monotone" true
        (finish >= !previous_end -. 1e-9);
      previous_end := finish)
    events;
  (* proper nesting: sort spans by (start asc, end desc) and sweep with a
     stack — every span must lie inside the enclosing open span *)
  let spans =
    Array.to_list events
    |> List.filter (fun (e : Obs.Trace.event) -> e.dur > 0.)
    |> List.sort (fun (a : Obs.Trace.event) (b : Obs.Trace.event) ->
           if a.t <> b.t then compare a.t b.t
           else compare (b.t +. b.dur) (a.t +. a.dur))
  in
  let eps = 1e-9 in
  let stack = ref [] in
  List.iter
    (fun (e : Obs.Trace.event) ->
      let finish = e.t +. e.dur in
      (* a span ending exactly where the next starts is adjacent, not
         enclosing — the clock only has microsecond resolution *)
      while
        match !stack with
        | top_end :: _ -> top_end <= e.t +. eps
        | [] -> false
      do
        stack := List.tl !stack
      done;
      (match !stack with
      | top_end :: _ ->
        check_bool "spans nest (no partial overlap)" true
          (finish <= top_end +. eps)
      | [] -> ());
      stack := finish :: !stack)
    spans

(* -- exporters ------------------------------------------------------ *)

let kinds_equal a b = Obs.Trace_export.kind_to_string a = Obs.Trace_export.kind_to_string b

let test_kind_string_roundtrip () =
  List.iter
    (fun kind ->
      match Obs.Trace_export.kind_of_string (Obs.Trace_export.kind_to_string kind) with
      | Some back -> check_bool "kind round-trips" true (kinds_equal kind back)
      | None -> Alcotest.fail "kind failed to round-trip")
    [
      Obs.Trace.Gate_applied;
      Obs.Trace.Window_combined;
      Obs.Trace.Mat_vec;
      Obs.Trace.Mat_mat;
      Obs.Trace.Gc;
      Obs.Trace.Fallback;
      Obs.Trace.Renormalize;
      Obs.Trace.Checkpoint;
      Obs.Trace.Measure;
    ];
  check_bool "unknown kind rejected" true
    (Obs.Trace_export.kind_of_string "nonsense" = None)

let test_jsonl_roundtrip () =
  let _, trace =
    traced_run ~strategy:(Dd_sim.Strategy.K_operations 3) (Qft.circuit 5)
  in
  let meta = [ ("algo", "qft"); ("note", "with \"quotes\" and\nnewline") ] in
  let text = Obs.Trace_export.jsonl ~meta trace in
  let parsed = Obs.Trace_report.parse_jsonl text in
  check_int "schema version" Obs.Trace_export.version
    parsed.Obs.Trace_report.version;
  check_bool "meta survives escaping" true
    (parsed.Obs.Trace_report.meta = meta);
  check_int "dropped count" (Obs.Trace.dropped trace)
    parsed.Obs.Trace_report.dropped;
  let original = Obs.Trace.events trace in
  let reloaded = Array.of_list parsed.Obs.Trace_report.events in
  check_int "event count" (Array.length original) (Array.length reloaded);
  Array.iteri
    (fun i (e : Obs.Trace.event) ->
      let r = reloaded.(i) in
      check_bool "kind" true (kinds_equal e.kind r.Obs.Trace.kind);
      check_int "gate" e.gate_index r.Obs.Trace.gate_index;
      check_int "state nodes" e.state_nodes r.Obs.Trace.state_nodes;
      check_int "matrix nodes" e.matrix_nodes r.Obs.Trace.matrix_nodes;
      check_int "hits" e.hits r.Obs.Trace.hits;
      check_int "misses" e.misses r.Obs.Trace.misses;
      check_bool "detail" true (e.detail = r.Obs.Trace.detail);
      check_bool "start time" true (Float.abs (e.t -. r.Obs.Trace.t) < 1e-8);
      check_bool "duration" true (Float.abs (e.dur -. r.Obs.Trace.dur) < 1e-8))
    original

let test_jsonl_rejects_bad_input () =
  let rejects text =
    match Obs.Trace_report.parse_jsonl text with
    | _ -> Alcotest.fail "malformed trace accepted"
    | exception Failure _ -> ()
  in
  rejects "";
  rejects "{\"schema\":\"something-else\",\"version\":1,\"meta\":{}}";
  rejects "{\"schema\":\"ddsim-trace\",\"version\":99,\"meta\":{}}";
  rejects "not json at all"

let test_chrome_export_is_valid_json () =
  let _, trace =
    traced_run ~strategy:(Dd_sim.Strategy.K_operations 4) (Standard.ghz 6)
  in
  let json = Obs.Json.parse (Obs.Trace_export.chrome ~meta:[ ("a", "b") ] trace) in
  let events =
    match Obs.Json.member json "traceEvents" with
    | Some v -> Obs.Json.to_list v
    | None -> Alcotest.fail "no traceEvents array"
  in
  check_int "one chrome event per trace event" (Obs.Trace.length trace)
    (List.length events);
  List.iter
    (fun e ->
      let phase =
        match Obs.Json.member e "ph" with
        | Some v -> Obs.Json.to_str v
        | None -> Alcotest.fail "chrome event without ph"
      in
      check_bool "phase is X or i" true (phase = "X" || phase = "i");
      check_bool "ts present" true (Obs.Json.member e "ts" <> None))
    events;
  match Obs.Json.member json "otherData" with
  | Some other ->
    check_bool "schema tag in otherData" true
      (Obs.Json.member other "schema"
      = Some (Obs.Json.Str Obs.Trace_export.schema))
  | None -> Alcotest.fail "no otherData"

let test_summary_lists_kinds () =
  let _, trace =
    traced_run ~strategy:(Dd_sim.Strategy.K_operations 4) (Standard.ghz 6)
  in
  let summary = Obs.Trace_export.summary trace in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "summary mentions mat_vec" true (contains "mat_vec" summary);
  check_bool "summary mentions gate_applied" true
    (contains "gate_applied" summary)

(* -- trace agrees with the aggregate counters ----------------------- *)

let count_kind trace kind =
  let n = ref 0 in
  Obs.Trace.iter
    (fun (e : Obs.Trace.event) -> if kinds_equal e.kind kind then incr n)
    trace;
  !n

let check_trajectory_peak ~strategy circuit =
  let engine, trace = traced_run ~strategy circuit in
  let run =
    {
      Obs.Trace_report.version = Obs.Trace_export.version;
      meta = [];
      events = Array.to_list (Obs.Trace.events trace);
      dropped = Obs.Trace.dropped trace;
    }
  in
  let stats = Dd_sim.Engine.stats engine in
  (match Obs.Trace_report.peak_state_nodes run with
  | Some (_, peak) ->
    check_int "trajectory peak equals Sim_stats.peak_state_nodes"
      stats.Dd_sim.Sim_stats.peak_state_nodes peak
  | None -> Alcotest.fail "trace carries no node counts");
  check_int "one Mat_vec event per mat-vec multiplication"
    stats.Dd_sim.Sim_stats.mat_vec_mults
    (count_kind trace Obs.Trace.Mat_vec);
  check_int "one Mat_mat event per mat-mat multiplication"
    stats.Dd_sim.Sim_stats.mat_mat_mults
    (count_kind trace Obs.Trace.Mat_mat);
  check_int "one Gate_applied event per gate"
    stats.Dd_sim.Sim_stats.gates_seen
    (count_kind trace Obs.Trace.Gate_applied)

let test_trajectory_peak_matches_stats () =
  let circuit = Grover.circuit ~n:8 ~marked:5 () in
  check_trajectory_peak ~strategy:Dd_sim.Strategy.Sequential circuit;
  check_trajectory_peak ~strategy:(Dd_sim.Strategy.K_operations 4) circuit

let test_report_render () =
  let _, trace =
    traced_run ~strategy:(Dd_sim.Strategy.K_operations 4)
      (Grover.circuit ~n:6 ~marked:3 ())
  in
  let text = Obs.Trace_export.jsonl ~meta:[ ("algo", "grover") ] trace in
  let rendered =
    Obs.Trace_report.render (Obs.Trace_report.parse_jsonl text)
  in
  let contains needle haystack =
    let nl = String.length needle and hl = String.length haystack in
    let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "report names the peak" true
    (contains "peak state nodes:" rendered);
  check_bool "report renders the trajectory plot" true
    (contains "#" rendered);
  check_bool "report carries the meta" true (contains "grover" rendered)

let test_dropped_events_are_counted () =
  let engine, trace =
    traced_run ~max_events:8 ~strategy:Dd_sim.Strategy.Sequential
      (Standard.ghz 8)
  in
  check_int "buffer capped at max_events" 8 (Obs.Trace.length trace);
  check_bool "overflow is counted" true (Obs.Trace.dropped trace > 0);
  check_int "dropped count lands in Sim_stats"
    (Obs.Trace.dropped trace)
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.trace_events_dropped

let test_gc_span_recorded () =
  let circuit = Standard.ghz 10 in
  let engine = Dd_sim.Engine.create 10 in
  let trace = Obs.Trace.create () in
  Dd_sim.Engine.set_trace engine trace;
  Dd_sim.Engine.run engine circuit;
  let _ = Dd_sim.Engine.collect_garbage engine in
  check_bool "explicit collection emits a Gc event" true
    (count_kind trace Obs.Trace.Gc >= 1)

(* -- metrics -------------------------------------------------------- *)

let test_metrics_registry () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "ops" in
  Obs.Metrics.add c 3;
  Obs.Metrics.add c 4;
  check_int "counter accumulates" 7 (Obs.Metrics.count c);
  let g = Obs.Metrics.gauge r "load" in
  Obs.Metrics.set g 1.5;
  let h = Obs.Metrics.histogram r "latency" in
  Obs.Metrics.observe h 0.75;
  Obs.Metrics.observe h 3.0;
  let snap = Obs.Metrics.snapshot r in
  check_bool "counter in snapshot" true
    (Obs.Metrics.find snap "ops" = Some (Obs.Metrics.Count 7));
  check_bool "gauge in snapshot" true
    (Obs.Metrics.find snap "load" = Some (Obs.Metrics.Value 1.5));
  (match Obs.Metrics.find snap "latency" with
  | Some (Obs.Metrics.Histogram { count; sum; buckets }) ->
    check_int "histogram count" 2 count;
    check_bool "histogram sum" true (Float.abs (sum -. 3.75) < 1e-12);
    check_bool "histogram buckets" true (buckets = [ (0, 1); (2, 1) ])
  | _ -> Alcotest.fail "histogram missing");
  (* same name, same kind: the same instrument comes back *)
  Obs.Metrics.add (Obs.Metrics.counter r "ops") 1;
  check_int "re-registration returns the same counter" 8
    (Obs.Metrics.count c);
  (* same name, different kind: refused *)
  match Obs.Metrics.gauge r "ops" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ()

let test_bucket_exponent () =
  (* bucket e holds observations in [2^(e-1), 2^e) — Float.frexp's
     exponent, clamped to the 64-bucket range *)
  check_int "0.75 -> 0" 0 (Obs.Metrics.bucket_exponent 0.75);
  check_int "1.0 -> 1" 1 (Obs.Metrics.bucket_exponent 1.0);
  check_int "1.5 -> 1" 1 (Obs.Metrics.bucket_exponent 1.5);
  check_int "2.0 -> 2" 2 (Obs.Metrics.bucket_exponent 2.0);
  check_int "3.0 -> 2" 2 (Obs.Metrics.bucket_exponent 3.0);
  check_int "non-positive -> floor" (-32) (Obs.Metrics.bucket_exponent 0.);
  check_int "tiny -> floor" (-32) (Obs.Metrics.bucket_exponent 1e-300);
  check_int "huge -> ceiling" 31 (Obs.Metrics.bucket_exponent 1e300)

let test_metrics_diff () =
  let r = Obs.Metrics.create () in
  let c = Obs.Metrics.counter r "ops" in
  let g = Obs.Metrics.gauge r "load" in
  let h = Obs.Metrics.histogram r "lat" in
  Obs.Metrics.add c 5;
  Obs.Metrics.set g 1.0;
  Obs.Metrics.observe h 1.0;
  let before = Obs.Metrics.snapshot r in
  Obs.Metrics.add c 2;
  Obs.Metrics.set g 9.0;
  Obs.Metrics.observe h 1.0;
  Obs.Metrics.observe h 4.0;
  let after = Obs.Metrics.snapshot r in
  let d = Obs.Metrics.diff ~before ~after in
  check_bool "counter diff subtracts" true
    (Obs.Metrics.find d "ops" = Some (Obs.Metrics.Count 2));
  check_bool "gauge diff keeps the after reading" true
    (Obs.Metrics.find d "load" = Some (Obs.Metrics.Value 9.0));
  match Obs.Metrics.find d "lat" with
  | Some (Obs.Metrics.Histogram { count; buckets; _ }) ->
    check_int "histogram diff count" 2 count;
    check_bool "histogram diff buckets" true (buckets = [ (1, 1); (3, 1) ])
  | _ -> Alcotest.fail "histogram diff missing"

let test_telemetry_snapshot () =
  let circuit = Qft.circuit 5 in
  let engine = Dd_sim.Engine.create 5 in
  Dd_sim.Engine.run ~strategy:(Dd_sim.Strategy.K_operations 3) engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  let snap = Dd_sim.Telemetry.snapshot engine in
  check_bool "mat_vec_mults bridged" true
    (Obs.Metrics.find snap "sim.mat_vec_mults"
    = Some (Obs.Metrics.Count stats.Dd_sim.Sim_stats.mat_vec_mults));
  check_bool "mat_mat_mults bridged" true
    (Obs.Metrics.find snap "sim.mat_mat_mults"
    = Some (Obs.Metrics.Count stats.Dd_sim.Sim_stats.mat_mat_mults));
  check_bool "per-table hits bridged" true
    (match Obs.Metrics.find snap "table.mul_mm.hits" with
    | Some (Obs.Metrics.Count _) -> true
    | _ -> false);
  (* re-populating one registry must replace, not accumulate *)
  let r = Obs.Metrics.create () in
  Dd_sim.Telemetry.populate r engine;
  Dd_sim.Telemetry.populate r engine;
  check_bool "populate is idempotent" true
    (Obs.Metrics.find (Obs.Metrics.snapshot r) "sim.mat_vec_mults"
    = Some (Obs.Metrics.Count stats.Dd_sim.Sim_stats.mat_vec_mults))

(* -- Sim_stats additions -------------------------------------------- *)

let pp_to_string stats = Format.asprintf "%a" Dd_sim.Sim_stats.pp stats

let contains needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_stats_pp_fast_path_percentage () =
  let stats = Dd_sim.Sim_stats.create () in
  stats.Dd_sim.Sim_stats.fast_path_applies <- 3;
  stats.Dd_sim.Sim_stats.generic_applies <- 1;
  stats.Dd_sim.Sim_stats.mat_vec_mults <- 4;
  check_bool "pp prints the fast-path split" true
    (contains "75.0% fast" (pp_to_string stats));
  let zero = Dd_sim.Sim_stats.create () in
  check_bool "pp handles zero mat-vecs" true
    (contains "0.0% fast" (pp_to_string zero))

let test_stats_pp_wall_and_dropped () =
  let stats = Dd_sim.Sim_stats.create () in
  check_bool "no wall field when zero" false
    (contains "wall=" (pp_to_string stats));
  stats.Dd_sim.Sim_stats.wall_time_seconds <- 1.25;
  stats.Dd_sim.Sim_stats.trace_events_dropped <- 7;
  let text = pp_to_string stats in
  check_bool "wall time printed" true (contains "wall=1.250s" text);
  check_bool "dropped events printed" true (contains "trace-dropped=7" text)

let test_stats_pp_gc_pause () =
  let stats = Dd_sim.Sim_stats.create () in
  stats.Dd_sim.Sim_stats.auto_gcs <- 2;
  stats.Dd_sim.Sim_stats.gc_pause_seconds <- 0.004;
  stats.Dd_sim.Sim_stats.gc_reclaimed_nodes <- 123;
  let text = pp_to_string stats in
  check_bool "gc pause printed" true (contains "gc-pause=4.000ms" text);
  check_bool "gc reclaimed printed" true (contains "gc-reclaimed=123" text)

let test_wall_time_accumulates () =
  let circuit = Standard.ghz 8 in
  let engine = Dd_sim.Engine.create 8 in
  Dd_sim.Engine.run engine circuit;
  let first = (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.wall_time_seconds in
  check_bool "run records wall time" true (first >= 0.);
  Dd_sim.Engine.run engine circuit;
  let second =
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.wall_time_seconds
  in
  check_bool "wall time accumulates across runs" true (second >= first)

(* -- checkpoint v5 -------------------------------------------------- *)

let test_checkpoint_v4_roundtrip () =
  let circuit = Standard.ghz 6 in
  let engine = Dd_sim.Engine.create 6 in
  Dd_sim.Engine.run engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  stats.Dd_sim.Sim_stats.trace_events_dropped <- 42;
  stats.Dd_sim.Sim_stats.wall_time_seconds <- 0.125;
  let checkpoint =
    Dd_sim.Checkpoint.snapshot engine ~strategy:Dd_sim.Strategy.Sequential
      ~gate_index:6
  in
  let text = Dd_sim.Checkpoint.to_string checkpoint in
  check_bool "v7 header" true (contains "ddsim-checkpoint 7" text);
  check_bool "checksum trailer present" true (contains "\nchecksum " text);
  let reloaded =
    Dd_sim.Checkpoint.of_string (fresh_ctx ()) ~source:"<test>" text
  in
  let restored = reloaded.Dd_sim.Checkpoint.stats in
  check_int "trace_events_dropped round-trips" 42
    restored.Dd_sim.Sim_stats.trace_events_dropped;
  check_bool "wall_time_seconds round-trips losslessly" true
    (restored.Dd_sim.Sim_stats.wall_time_seconds = 0.125);
  check_int "older counters still round-trip"
    stats.Dd_sim.Sim_stats.mat_vec_mults
    restored.Dd_sim.Sim_stats.mat_vec_mults

let test_checkpoint_reads_v3 () =
  (* downgrade a freshly written v5 checkpoint to the v3 text format: v3
     headers carried 14 stats fields, no trace/wall/audit data and no
     checksum trailer *)
  let circuit = Standard.ghz 5 in
  let engine = Dd_sim.Engine.create 5 in
  Dd_sim.Engine.run engine circuit;
  (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.trace_events_dropped <- 9;
  let checkpoint =
    Dd_sim.Checkpoint.snapshot engine ~strategy:Dd_sim.Strategy.Sequential
      ~gate_index:5
  in
  let v4 = Dd_sim.Checkpoint.to_string checkpoint in
  let v3 =
    String.split_on_char '\n' v4
    |> List.filter (fun line ->
           not
             ((String.length line > 9 && String.sub line 0 9 = "checksum ")
             || (String.length line > 6 && String.sub line 0 6 = "order ")))
    |> List.map (fun line ->
           if line = "ddsim-checkpoint 7" then "ddsim-checkpoint 3"
           else if String.length line > 6 && String.sub line 0 6 = "stats " then
             String.concat " "
               (String.split_on_char ' ' line
               |> List.filteri (fun i _ -> i < 15))
           else line)
    |> String.concat "\n"
  in
  let reloaded =
    Dd_sim.Checkpoint.of_string (fresh_ctx ()) ~source:"<v3>" v3
  in
  let restored = reloaded.Dd_sim.Checkpoint.stats in
  check_int "v3 restores trace_events_dropped as zero" 0
    restored.Dd_sim.Sim_stats.trace_events_dropped;
  check_bool "v3 restores wall_time_seconds as zero" true
    (restored.Dd_sim.Sim_stats.wall_time_seconds = 0.);
  check_int "v3 counters restore"
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.mat_vec_mults
    restored.Dd_sim.Sim_stats.mat_vec_mults

(* -- QCheck: the trace is a faithful ledger of the aggregates -------- *)

let circuit_arb ~qubits ~gates =
  QCheck.make
    ~print:(fun seed -> Printf.sprintf "random_circuit seed %d" seed)
    QCheck.Gen.(0 -- 10000)
  |> QCheck.map_keep_input (fun seed ->
         Standard.random_circuit ~seed ~qubits ~gates ())

let prop_trace_counts_match_stats =
  QCheck.Test.make
    ~name:"trace event counts reproduce Sim_stats on random circuits"
    ~count:30
    (QCheck.pair
       (circuit_arb ~qubits:4 ~gates:30)
       (QCheck.oneofl
          [
            Dd_sim.Strategy.Sequential;
            Dd_sim.Strategy.K_operations 3;
            Dd_sim.Strategy.Max_size 64;
          ]))
  @@ fun ((_, circuit), strategy) ->
  let engine, trace = traced_run ~strategy circuit in
  let stats = Dd_sim.Engine.stats engine in
  count_kind trace Obs.Trace.Mat_vec = stats.Dd_sim.Sim_stats.mat_vec_mults
  && count_kind trace Obs.Trace.Mat_mat = stats.Dd_sim.Sim_stats.mat_mat_mults
  && count_kind trace Obs.Trace.Gate_applied
     = stats.Dd_sim.Sim_stats.gates_seen


(* -- per-domain trace lanes and schema v2 ---------------------------- *)

let test_lane_arming_and_merge () =
  let t = Obs.Trace.create () in
  check_bool "fresh trace is unarmed" false (Obs.Trace.lanes_armed t);
  check_bool "lane of an unarmed trace is the trace itself" true
    (Obs.Trace.lane t 2 == t);
  Obs.Trace.arm_lanes t 3;
  check_bool "arming a live trace works" true (Obs.Trace.lanes_armed t);
  let l1 = Obs.Trace.lane t 1 in
  let l2 = Obs.Trace.lane t 2 in
  check_bool "lanes are private buffers" true
    (l1 != t && l2 != t && l1 != l2);
  check_bool "caller lane 0 is private too" true (Obs.Trace.lane t 0 != t);
  check_bool "out-of-range lane falls back to the trace" true
    (Obs.Trace.lane t 7 == t);
  (* emission order across lanes: l2 first, then l1 *)
  Obs.Trace.instant l2 Obs.Trace.Mat_mat ~gate:1 ~state_nodes:(-1)
    ~matrix_nodes:3 ~detail:"on lane 2";
  Obs.Trace.instant l1 Obs.Trace.Mat_mat ~gate:1 ~state_nodes:(-1)
    ~matrix_nodes:4 ~detail:"on lane 1";
  check_int "nothing reaches the main buffer during the section" 0
    (Obs.Trace.length t);
  Obs.Trace.merge_lanes t;
  check_bool "merge disarms" false (Obs.Trace.lanes_armed t);
  let events = Obs.Trace.events t in
  check_int "both lane events merged" 2 (Array.length events);
  let domains =
    Array.map (fun (e : Obs.Trace.event) -> e.domain) events
    |> Array.to_list |> List.sort compare
  in
  check_bool "events are stamped with their lane" true (domains = [ 1; 2 ]);
  let previous = ref neg_infinity in
  Array.iter
    (fun (e : Obs.Trace.event) ->
      let finish = e.t +. e.dur in
      check_bool "merged end times stay monotone" true
        (finish >= !previous -. 1e-9);
      previous := finish)
    events;
  (* main-buffer emissions carry domain 0 *)
  Obs.Trace.instant t Obs.Trace.Pool_section ~gate:1 ~state_nodes:(-1)
    ~matrix_nodes:(-1) ~detail:"section";
  let events = Obs.Trace.events t in
  check_int "direct emission is domain 0" 0
    events.(Array.length events - 1).Obs.Trace.domain;
  (* disabled and null traces cannot be armed, and emissions stay free *)
  let off = Obs.Trace.create () in
  Obs.Trace.set_enabled off false;
  Obs.Trace.arm_lanes off 4;
  check_bool "arming a disabled trace is a no-op" false
    (Obs.Trace.lanes_armed off);
  check_bool "disabled lane is the trace itself" true
    (Obs.Trace.lane off 1 == off);
  Obs.Trace.arm_lanes Obs.Trace.null 4;
  check_bool "null cannot be armed" false
    (Obs.Trace.lanes_armed Obs.Trace.null)

let test_lane_lookup_allocates_nothing () =
  (* [lane] on an unarmed trace is the hot path of every worker-task
     emission at --domains 1 tracing-off: it must stay allocation-free *)
  let t = Obs.Trace.create () in
  Obs.Trace.set_enabled t false;
  ignore (Sys.opaque_identity (Obs.Trace.lane t 0));
  let before = Gc.minor_words () in
  for i = 0 to 99_999 do
    ignore (Sys.opaque_identity (Obs.Trace.lane t (i land 3)))
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "100k lane lookups allocated %.0f words" allocated)
    true (allocated < 256.)

let test_jsonl_v2_domain_roundtrip () =
  check_int "exporter writes schema v2" 2 Obs.Trace_export.version;
  let t = Obs.Trace.create () in
  Obs.Trace.arm_lanes t 2;
  Obs.Trace.instant (Obs.Trace.lane t 1) Obs.Trace.Mat_mat ~gate:3
    ~state_nodes:(-1) ~matrix_nodes:5 ~detail:"worker";
  Obs.Trace.merge_lanes t;
  Obs.Trace.instant t Obs.Trace.Pool_section ~gate:3 ~state_nodes:(-1)
    ~matrix_nodes:(-1) ~detail:"section";
  let text = Obs.Trace_export.jsonl ~meta:[] t in
  let parsed = Obs.Trace_report.parse_jsonl text in
  check_int "v2 parses as v2" 2 parsed.Obs.Trace_report.version;
  let events = Array.of_list parsed.Obs.Trace_report.events in
  check_int "two events" 2 (Array.length events);
  check_int "worker-lane domain survives the round-trip" 1
    events.(0).Obs.Trace.domain;
  check_int "main-lane event stays domain 0" 0 events.(1).Obs.Trace.domain;
  check_bool "pool_section kind round-trips" true
    (kinds_equal Obs.Trace.Pool_section events.(1).Obs.Trace.kind);
  (* the domain-0 event line must not carry a domain field at all, so a
     single-lane v2 trace is byte-identical to v1 events *)
  let lines = String.split_on_char '\n' text in
  let section_line =
    List.find (fun l -> contains "pool_section" l) lines
  in
  check_bool "domain field omitted for domain 0" false
    (contains "\"domain\"" section_line)

let test_parses_v1_header () =
  (* a hand-built v1 document (the committed fixture format) must keep
     parsing, defaulting [domain] to 0 *)
  let v1 =
    "{\"schema\":\"ddsim-trace\",\"version\":1,\"events\":1,\"dropped\":0,\"meta\":{}}\n\
     {\"kind\":\"mat_vec\",\"t\":0.5,\"dur\":0.25,\"gate\":3,\"state_nodes\":7,\"matrix_nodes\":-1,\"hits\":1,\"misses\":2,\"detail\":\"x\"}\n"
  in
  let run = Obs.Trace_report.parse_jsonl v1 in
  check_int "v1 version preserved" 1 run.Obs.Trace_report.version;
  match run.Obs.Trace_report.events with
  | [ e ] ->
    check_int "v1 events default to domain 0" 0 e.Obs.Trace.domain;
    check_int "other fields parse" 3 e.Obs.Trace.gate_index
  | events -> Alcotest.failf "expected 1 event, got %d" (List.length events)

let lane_event ?(domain = 0) ?(dur = 0.) ~kind ~t () : Obs.Trace.event =
  {
    kind;
    t;
    dur;
    gate_index = 0;
    state_nodes = -1;
    matrix_nodes = -1;
    hits = 0;
    misses = 0;
    domain;
    detail = "";
  }

let test_serial_fraction_and_lane_phases () =
  let run =
    {
      Obs.Trace_report.version = 2;
      meta = [];
      dropped = 0;
      events =
        [
          lane_event ~kind:Obs.Trace.Mat_vec ~t:0. ~dur:10. ();
          lane_event ~kind:Obs.Trace.Pool_section ~t:2. ~dur:3. ();
          lane_event ~kind:Obs.Trace.Mat_mat ~t:2. ~dur:1. ~domain:1 ();
        ];
    }
  in
  (match Obs.Trace_report.serial_fraction run with
  | Some f ->
    check_bool
      (Printf.sprintf "serial fraction = (10 - 3) / 10, got %f" f)
      true
      (Float.abs (f -. 0.7) < 1e-9)
  | None -> Alcotest.fail "serial fraction missing on a pooled run");
  let lanes = Obs.Trace_report.lane_phases run in
  check_int "two lanes observed" 2 (List.length lanes);
  check_bool "lane ids are 0 and 1" true
    (List.map fst lanes = [ 0; 1 ]);
  let rendered = Obs.Trace_report.render run in
  check_bool "report prints the per-lane breakdown" true
    (contains "lane 1" rendered);
  check_bool "report prints the caller lane" true
    (contains "lane 0 (caller)" rendered);
  check_bool "report prints the serial fraction" true
    (contains "estimated serial fraction" rendered);
  (* no pool section -> no estimate, no lane table *)
  let sequential =
    {
      Obs.Trace_report.version = 2;
      meta = [];
      dropped = 0;
      events = [ lane_event ~kind:Obs.Trace.Mat_vec ~t:0. ~dur:10. () ];
    }
  in
  check_bool "no pool sections, no serial fraction" true
    (Obs.Trace_report.serial_fraction sequential = None);
  let rendered = Obs.Trace_report.render sequential in
  check_bool "single-lane report unchanged" false (contains "lane 0" rendered)

let test_telemetry_concurrency_families () =
  let circuit = Qft.circuit 5 in
  let engine = Dd_sim.Engine.create 5 in
  Dd_sim.Engine.run ~strategy:(Dd_sim.Strategy.K_operations 3) engine circuit;
  let snap = Dd_sim.Telemetry.snapshot engine in
  (* present on every run; all-zero on a sequential one *)
  check_bool "pool.batches bridged" true
    (Obs.Metrics.find snap "pool.batches" = Some (Obs.Metrics.Count 0));
  check_bool "pool.tasks bridged" true
    (Obs.Metrics.find snap "pool.tasks" = Some (Obs.Metrics.Count 0));
  check_bool "pool.busy_seconds bridged" true
    (Obs.Metrics.find snap "pool.busy_seconds" = Some (Obs.Metrics.Value 0.));
  check_bool "lock.cnum.acquisitions bridged" true
    (Obs.Metrics.find snap "lock.cnum.acquisitions"
    = Some (Obs.Metrics.Count 0));
  check_bool "lock.unique_v.contended bridged" true
    (Obs.Metrics.find snap "lock.unique_v.contended"
    = Some (Obs.Metrics.Count 0));
  check_bool "per-table lock family bridged" true
    (Obs.Metrics.find snap "lock.mul_mm.acquisitions"
    = Some (Obs.Metrics.Count 0))

let test_stats_pp_pool_fields () =
  let stats = Dd_sim.Sim_stats.create () in
  check_bool "no pool fields when idle" false
    (contains "pool-batches" (pp_to_string stats));
  stats.Dd_sim.Sim_stats.pool_batches <- 3;
  stats.Dd_sim.Sim_stats.pool_tasks <- 24;
  check_bool "pool fields printed once batches ran" true
    (contains "pool-batches=3" (pp_to_string stats))

let suite =
  [
    Alcotest.test_case "clock_monotone" `Quick test_clock_monotone;
    Alcotest.test_case "null_trace_is_off" `Quick test_null_trace_is_off;
    Alcotest.test_case "disabled_emission_allocates_nothing" `Quick
      test_disabled_emission_allocates_nothing;
    Alcotest.test_case "engine_without_trace_stays_null" `Quick
      test_engine_without_trace_stays_null;
    Alcotest.test_case "event_ordering" `Quick test_event_ordering;
    Alcotest.test_case "kind_string_roundtrip" `Quick
      test_kind_string_roundtrip;
    Alcotest.test_case "jsonl_roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "jsonl_rejects_bad_input" `Quick
      test_jsonl_rejects_bad_input;
    Alcotest.test_case "chrome_export_is_valid_json" `Quick
      test_chrome_export_is_valid_json;
    Alcotest.test_case "summary_lists_kinds" `Quick test_summary_lists_kinds;
    Alcotest.test_case "trajectory_peak_matches_stats" `Quick
      test_trajectory_peak_matches_stats;
    Alcotest.test_case "report_render" `Quick test_report_render;
    Alcotest.test_case "dropped_events_are_counted" `Quick
      test_dropped_events_are_counted;
    Alcotest.test_case "gc_span_recorded" `Quick test_gc_span_recorded;
    Alcotest.test_case "metrics_registry" `Quick test_metrics_registry;
    Alcotest.test_case "bucket_exponent" `Quick test_bucket_exponent;
    Alcotest.test_case "metrics_diff" `Quick test_metrics_diff;
    Alcotest.test_case "telemetry_snapshot" `Quick test_telemetry_snapshot;
    Alcotest.test_case "stats_pp_fast_path_percentage" `Quick
      test_stats_pp_fast_path_percentage;
    Alcotest.test_case "stats_pp_wall_and_dropped" `Quick
      test_stats_pp_wall_and_dropped;
    Alcotest.test_case "stats_pp_gc_pause" `Quick test_stats_pp_gc_pause;
    Alcotest.test_case "wall_time_accumulates" `Quick
      test_wall_time_accumulates;
    Alcotest.test_case "checkpoint_v4_roundtrip" `Quick
      test_checkpoint_v4_roundtrip;
    Alcotest.test_case "checkpoint_reads_v3" `Quick test_checkpoint_reads_v3;
    Alcotest.test_case "lane_arming_and_merge" `Quick
      test_lane_arming_and_merge;
    Alcotest.test_case "lane_lookup_allocates_nothing" `Quick
      test_lane_lookup_allocates_nothing;
    Alcotest.test_case "jsonl_v2_domain_roundtrip" `Quick
      test_jsonl_v2_domain_roundtrip;
    Alcotest.test_case "parses_v1_header" `Quick test_parses_v1_header;
    Alcotest.test_case "serial_fraction_and_lane_phases" `Quick
      test_serial_fraction_and_lane_phases;
    Alcotest.test_case "telemetry_concurrency_families" `Quick
      test_telemetry_concurrency_families;
    Alcotest.test_case "stats_pp_pool_fields" `Quick
      test_stats_pp_pool_fields;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_trace_counts_match_stats ]
