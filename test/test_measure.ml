open Dd_complex
open Util

let r = Cnum.of_float

let superposition ctx amps = Dd.Vdd.of_array ctx (Array.map r amps)

let test_norm_basis () =
  let ctx = fresh_ctx () in
  check_float "basis state norm" 1.
    (Dd.Measure.norm2 ctx (Dd.Vdd.basis ctx ~n:4 11))

let test_norm_superposition () =
  let ctx = fresh_ctx () in
  let e = superposition ctx [| 0.5; 0.5; 0.5; 0.5 |] in
  check_float "uniform norm" 1. (Dd.Measure.norm2 ctx e);
  let unnormalised = superposition ctx [| 1.; 2.; 2.; 0. |] in
  check_float "unnormalised norm" 9. (Dd.Measure.norm2 ctx unnormalised)

let test_norm_zero () =
  let ctx = fresh_ctx () in
  check_float "zero vector norm" 0. (Dd.Measure.norm2 ctx Dd.Vdd.zero)

let test_probability_one () =
  let ctx = fresh_ctx () in
  (* |psi> = sqrt(0.36)|00> + sqrt(0.64)|11>, qubit 0 and 1 marginals 0.64 *)
  let e = superposition ctx [| 0.6; 0.; 0.; 0.8 |] in
  check_float "qubit 0 marginal" 0.64
    (Dd.Measure.probability_one ctx e ~qubit:0);
  check_float "qubit 1 marginal" 0.64
    (Dd.Measure.probability_one ctx e ~qubit:1)

let test_probability_unnormalised () =
  let ctx = fresh_ctx () in
  let e = superposition ctx [| 1.; 0.; 0.; 3. |] in
  check_float "marginal of unnormalised state" 0.9
    (Dd.Measure.probability_one ctx e ~qubit:1)

let test_collapse () =
  let ctx = fresh_ctx () in
  let e = superposition ctx [| 0.6; 0.; 0.; 0.8 |] in
  let collapsed = Dd.Measure.collapse ctx e ~qubit:0 ~outcome:true in
  check_float "collapsed norm" 1. (Dd.Measure.norm2 ctx collapsed);
  check_cnum "collapsed amplitude" Cnum.one
    (Dd.Vdd.amplitude collapsed ~n:2 3)

let test_collapse_middle_qubit () =
  let ctx = fresh_ctx () in
  let amps = [| 0.5; 0.; 0.5; 0.; 0.; 0.5; 0.; 0.5 |] in
  let e = superposition ctx amps in
  let collapsed = Dd.Measure.collapse ctx e ~qubit:1 ~outcome:true in
  check_float "norm after collapse" 1. (Dd.Measure.norm2 ctx collapsed);
  (* only indices with bit 1 set survive: 2 and 7 here *)
  check_float "p(idx 2)" 0.5
    (Cnum.mag2 (Dd.Vdd.amplitude collapsed ~n:3 2));
  check_float "p(idx 7)" 0.5
    (Cnum.mag2 (Dd.Vdd.amplitude collapsed ~n:3 7));
  check_cnum "erased branch" Cnum.zero (Dd.Vdd.amplitude collapsed ~n:3 0)

let test_collapse_impossible () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:2 0 in
  Alcotest.check_raises "zero-probability collapse"
    (Dd.Dd_error.Error
       (Dd.Dd_error.Degenerate_state
          { operation = "Measure.collapse";
            message = "zero-probability outcome" }))
    (fun () -> ignore (Dd.Measure.collapse ctx e ~qubit:1 ~outcome:true))

let test_measure_qubit_deterministic () =
  let ctx = fresh_ctx () in
  let rng = Random.State.make [| 5 |] in
  let e = Dd.Vdd.basis ctx ~n:3 5 in
  let b0, e = Dd.Measure.measure_qubit ctx rng e ~qubit:0 in
  let b1, e = Dd.Measure.measure_qubit ctx rng e ~qubit:1 in
  let b2, _ = Dd.Measure.measure_qubit ctx rng e ~qubit:2 in
  check_bool "bit0" true b0;
  check_bool "bit1" false b1;
  check_bool "bit2" true b2

let test_sample_distribution () =
  let ctx = fresh_ctx () in
  let rng = Random.State.make [| 42 |] in
  (* bell-like state: only 0 and 3 can be sampled, roughly evenly *)
  let e = superposition ctx [| sqrt 0.5; 0.; 0.; sqrt 0.5 |] in
  let counts = Array.make 4 0 in
  for _ = 1 to 2000 do
    let idx = Dd.Measure.sample ctx rng e in
    counts.(idx) <- counts.(idx) + 1
  done;
  check_int "no |01> samples" 0 counts.(1);
  check_int "no |10> samples" 0 counts.(2);
  check_bool "roughly balanced" true
    (abs (counts.(0) - counts.(3)) < 300)

let test_sample_respects_weights () =
  let ctx = fresh_ctx () in
  let rng = Random.State.make [| 9 |] in
  let e = superposition ctx [| 0.1; 0.; 0.; 0.994987 |] in
  let ones = ref 0 in
  for _ = 1 to 500 do
    if Dd.Measure.sample ctx rng e = 3 then incr ones
  done;
  check_bool "heavy outcome dominates" true (!ones > 450)

let test_probabilities () =
  let ctx = fresh_ctx () in
  let e = superposition ctx [| 0.6; 0.; 0.; 0.8 |] in
  let p = Dd.Measure.probabilities e ~n:2 in
  check_float "p0" 0.36 p.(0);
  check_float "p3" 0.64 p.(3)

(* -- measurement under a non-identity variable order -------------------
   Measurement addresses qubits; the order layer must make the level
   translation invisible.  0.6|001> + 0.8|100> is asymmetric enough that
   any level/qubit mix-up changes every marginal. *)

let reordered_state ctx =
  let e = superposition ctx [| 0.; 0.6; 0.; 0.; 0.8; 0.; 0.; 0. |] in
  let e, _ =
    Dd.Reorder.apply_order ctx e (Dd.Order.of_qubit_of_level [| 2; 1; 0 |])
  in
  e

let test_probability_one_under_order () =
  let ctx = fresh_ctx () in
  let e = reordered_state ctx in
  check_float "qubit 0 marginal survives reordering" 0.36
    (Dd.Measure.probability_one ctx e ~qubit:0);
  check_float "qubit 1 marginal survives reordering" 0.
    (Dd.Measure.probability_one ctx e ~qubit:1);
  check_float "qubit 2 marginal survives reordering" 0.64
    (Dd.Measure.probability_one ctx e ~qubit:2)

let test_collapse_under_order () =
  let ctx = fresh_ctx () in
  let e = reordered_state ctx in
  let collapsed = Dd.Measure.collapse ctx e ~qubit:0 ~outcome:true in
  check_float "norm after collapse" 1. (Dd.Measure.norm2 ctx collapsed);
  check_cnum "collapse lands on |001>" Cnum.one
    (Dd.Vdd.amplitude ~order:(Dd.Context.order ctx) collapsed ~n:3 1)

let test_sample_under_order () =
  let ctx = fresh_ctx () in
  let rng = Random.State.make [| 11 |] in
  let e = reordered_state ctx in
  for _ = 1 to 200 do
    let idx = Dd.Measure.sample ctx rng e in
    check_bool "samples are qubit-space indices" true (idx = 1 || idx = 4)
  done

let test_probabilities_under_order () =
  let ctx = fresh_ctx () in
  let e = reordered_state ctx in
  let p = Dd.Measure.probabilities ~order:(Dd.Context.order ctx) e ~n:3 in
  check_float "p(|001>)" 0.36 p.(1);
  check_float "p(|100>)" 0.64 p.(4);
  check_float "p(|000>)" 0. p.(0)

let suite =
  [
    Alcotest.test_case "norm_basis" `Quick test_norm_basis;
    Alcotest.test_case "norm_superposition" `Quick test_norm_superposition;
    Alcotest.test_case "norm_zero" `Quick test_norm_zero;
    Alcotest.test_case "probability_one" `Quick test_probability_one;
    Alcotest.test_case "probability_unnormalised" `Quick
      test_probability_unnormalised;
    Alcotest.test_case "collapse" `Quick test_collapse;
    Alcotest.test_case "collapse_middle_qubit" `Quick
      test_collapse_middle_qubit;
    Alcotest.test_case "collapse_impossible" `Quick test_collapse_impossible;
    Alcotest.test_case "measure_qubit_deterministic" `Quick
      test_measure_qubit_deterministic;
    Alcotest.test_case "sample_distribution" `Quick test_sample_distribution;
    Alcotest.test_case "sample_respects_weights" `Quick
      test_sample_respects_weights;
    Alcotest.test_case "probabilities" `Quick test_probabilities;
    Alcotest.test_case "probability_one under non-identity order" `Quick
      test_probability_one_under_order;
    Alcotest.test_case "collapse under non-identity order" `Quick
      test_collapse_under_order;
    Alcotest.test_case "sample under non-identity order" `Quick
      test_sample_under_order;
    Alcotest.test_case "probabilities under non-identity order" `Quick
      test_probabilities_under_order;
  ]
