open Util

let roundtrip circuit =
  Qasm.of_string (Qasm.to_string circuit)

let states_agree msg a b =
  check_cnum_array msg (dense_state_of_circuit a) (dense_state_of_circuit b)

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec loop i = i + m <= n && (String.sub text i m = sub || loop (i + 1)) in
  loop 0

let test_export_header () =
  let text = Qasm.to_string (Standard.bell ()) in
  check_bool "version line" true
    (String.length text > 12 && String.sub text 0 12 = "OPENQASM 2.0");
  check_bool "declares the register" true (contains_sub text "qreg q[2];")

let test_roundtrip_bell () =
  states_agree "bell roundtrip" (Standard.bell ()) (roundtrip (Standard.bell ()))

let test_roundtrip_parameterised () =
  let circuit =
    Circuit.of_gates ~qubits:3
      [
        Gate.rx 0.123 0; Gate.ry (-2.5) 1; Gate.rz 1.7 2;
        Gate.phase 0.333 0; Gate.cphase 0.75 0 2;
        Gate.make ~controls:[ Gate.ctrl 1 ] (Gate.Rz 0.5) 2;
      ]
  in
  states_agree "parameterised roundtrip" circuit (roundtrip circuit)

let test_roundtrip_controlled () =
  let circuit =
    Circuit.of_gates ~qubits:3
      [ Gate.cx 0 1; Gate.cz 1 2; Gate.ccx 0 1 2; Gate.h 0 ]
  in
  states_agree "controlled roundtrip" circuit (roundtrip circuit)

let test_negative_control_lowering () =
  (* export lowers negative controls with X conjugation; semantics must be
     preserved *)
  let circuit =
    Circuit.of_gates ~qubits:2
      [ Gate.h 1; Gate.make ~controls:[ Gate.nctrl 1 ] Gate.X 0 ]
  in
  states_agree "negative control lowering" circuit (roundtrip circuit)

let test_unsupported_export () =
  let circuit = Circuit.of_gates ~qubits:1 [ Gate.sy 0 ] in
  check_bool "sy has no spelling" true
    (try
       ignore (Qasm.to_string circuit);
       false
     with Qasm.Unsupported _ -> true)

let test_unsupported_many_controls () =
  let circuit = Circuit.of_gates ~qubits:4 [ Gate.mcz [ 0; 1; 2 ] 3 ] in
  check_bool "3-controlled z rejected" true
    (try
       ignore (Qasm.to_string circuit);
       false
     with Qasm.Unsupported _ -> true)

let test_parse_expressions () =
  let source =
    "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[1];\n\
     rz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(2*pi/8) q[0];\nrz(0.5e-1) q[0];\n"
  in
  let circuit = Qasm.of_string source in
  let angles =
    List.filter_map
      (fun (g : Gate.t) ->
        match g.kind with
        | Gate.Rz theta -> Some theta
        | Gate.X | Gate.Y | Gate.Z | Gate.H | Gate.S | Gate.Sdg | Gate.T
        | Gate.Tdg | Gate.Sx | Gate.Sxdg | Gate.Sy | Gate.Sydg | Gate.Rx _
        | Gate.Ry _ | Gate.Phase _ | Gate.Custom _ ->
          None)
      (Circuit.flatten circuit)
  in
  match angles with
  | [ a; b; c; d ] ->
    check_float "pi/2" (Float.pi /. 2.) a;
    check_float "-pi/4" (-.Float.pi /. 4.) b;
    check_float "2*pi/8" (Float.pi /. 4.) c;
    check_float "0.5e-1" 0.05 d
  | _ -> Alcotest.fail "expected four rz gates"

let test_parse_swap_and_comments () =
  let source =
    "// a comment\nOPENQASM 2.0;\nqreg q[2];\nx q[0];\nswap q[0],q[1]; // swap\n"
  in
  let circuit = Qasm.of_string source in
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine circuit;
  check_cnum "swap moved the excitation" Dd_complex.Cnum.one
    (Dd_sim.Engine.amplitude engine 2)

let test_parse_ignores_measure_and_creg () =
  let source =
    "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\nh q[0];\nmeasure q[0] -> c[0];\n\
     barrier q[0],q[1];\n"
  in
  check_int "only the h survives" 1 (Circuit.gate_count (Qasm.of_string source))

let test_parse_error_reports_line () =
  let source = "OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];\n" in
  check_bool "unknown gate raises with position" true
    (try
       ignore (Qasm.of_string source);
       false
     with Qasm.Parse_error { line = _; message } ->
       String.length message > 0)

let test_parse_requires_qreg () =
  check_bool "no qreg is an error" true
    (try
       ignore (Qasm.of_string "OPENQASM 2.0;\n");
       false
     with Qasm.Parse_error _ -> true)

let suite =
  [
    Alcotest.test_case "export_header" `Quick test_export_header;
    Alcotest.test_case "roundtrip_bell" `Quick test_roundtrip_bell;
    Alcotest.test_case "roundtrip_parameterised" `Quick
      test_roundtrip_parameterised;
    Alcotest.test_case "roundtrip_controlled" `Quick
      test_roundtrip_controlled;
    Alcotest.test_case "negative_control_lowering" `Quick
      test_negative_control_lowering;
    Alcotest.test_case "unsupported_export" `Quick test_unsupported_export;
    Alcotest.test_case "unsupported_many_controls" `Quick
      test_unsupported_many_controls;
    Alcotest.test_case "parse_expressions" `Quick test_parse_expressions;
    Alcotest.test_case "parse_swap" `Quick test_parse_swap_and_comments;
    Alcotest.test_case "parse_ignores_measure" `Quick
      test_parse_ignores_measure_and_creg;
    Alcotest.test_case "parse_error_line" `Quick test_parse_error_reports_line;
    Alcotest.test_case "parse_requires_qreg" `Quick test_parse_requires_qreg;
  ]

(* extended gate-set coverage appended; suite re-exported *)

let test_parse_u3_and_u2 () =
  let source =
    "OPENQASM 2.0;\nqreg q[1];\nu3(pi/2,0,pi) q[0];\n"
  in
  (* u3(pi/2, 0, pi) = H up to global phase *)
  let circuit = Qasm.of_string source in
  let reference = Circuit.of_gates ~qubits:1 [ Gate.h 0 ] in
  check_bool "u3(pi/2,0,pi) is H" true
    (Dd_sim.Equivalence.equivalent circuit reference);
  let u2 = Qasm.of_string "OPENQASM 2.0;\nqreg q[1];\nu2(0,pi) q[0];\n" in
  check_bool "u2(0,pi) is H" true
    (Dd_sim.Equivalence.equivalent u2 reference)

let test_parse_crx_cry () =
  let source =
    "OPENQASM 2.0;\nqreg q[2];\ncrx(0.7) q[0],q[1];\ncry(-0.3) q[1],q[0];\n"
  in
  let circuit = Qasm.of_string source in
  let reference =
    Circuit.of_gates ~qubits:2
      [
        Gate.make ~controls:[ Gate.ctrl 0 ] (Gate.Rx 0.7) 1;
        Gate.make ~controls:[ Gate.ctrl 1 ] (Gate.Ry (-0.3)) 0;
      ]
  in
  check_cnum_array "controlled rotations"
    (dense_state_of_circuit reference)
    (dense_state_of_circuit circuit)

let test_parse_rzz () =
  let source = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[1];\nrzz(0.9) q[0],q[1];\n" in
  let circuit = Qasm.of_string source in
  let reference =
    Circuit.of_gates ~qubits:2
      [ Gate.h 0; Gate.h 1; Gate.cx 0 1; Gate.rz 0.9 1; Gate.cx 0 1 ]
  in
  check_cnum_array "rzz decomposition"
    (dense_state_of_circuit reference)
    (dense_state_of_circuit circuit)

let test_parse_cswap () =
  let source = "OPENQASM 2.0;\nqreg q[3];\nx q[0];\nx q[1];\ncswap q[0],q[1],q[2];\n" in
  let circuit = Qasm.of_string source in
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run engine circuit;
  (* control q0=1: q1 and q2 swap: |011> -> |101> = index 5 *)
  check_cnum "fredkin fired" Dd_complex.Cnum.one
    (Dd_sim.Engine.amplitude engine 5)

let test_parse_bad_arity () =
  check_bool "u3 with two params rejected" true
    (try
       ignore (Qasm.of_string "OPENQASM 2.0;\nqreg q[1];\nu3(1,2) q[0];\n");
       false
     with Qasm.Parse_error _ -> true)

(* malformed-input coverage: errors must carry the offending line and a
   message naming what went wrong, and bad qubit indices must be caught at
   parse time rather than corrupting the simulation *)

let parse_error_of source =
  match Qasm.of_string source with
  | (_ : Circuit.t) -> Alcotest.fail "malformed source was accepted"
  | exception Qasm.Parse_error { line; message } -> (line, message)

let test_parse_truncated_file () =
  let line, message = parse_error_of "OPENQASM 2.0;\nqreg q[2];\nh q[" in
  check_int "truncated file located at its last line" 3 line;
  check_bool "message mentions end of input" true
    (contains_sub message "end of input")

let test_parse_unknown_gate () =
  let line, message =
    parse_error_of "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nfrob q[0];\n"
  in
  check_int "unknown gate located" 4 line;
  check_bool "message names the gate" true
    (contains_sub message "unsupported gate: frob")

let test_parse_qubit_index_out_of_range () =
  let line, message =
    parse_error_of "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[5];\n"
  in
  check_int "bad index located" 3 line;
  check_bool "message names the index and register size" true
    (contains_sub message "qubit index 5 out of range"
    && contains_sub message "has 2 qubits")

let test_parse_fractional_qubit_index () =
  let _, message = parse_error_of "OPENQASM 2.0;\nqreg q[2];\nh q[0.5];\n" in
  check_bool "fractional index rejected" true
    (contains_sub message "not an integer")

let test_parse_bad_register_size () =
  let _, message = parse_error_of "OPENQASM 2.0;\nqreg q[0];\nh q[0];\n" in
  check_bool "degenerate register size rejected" true
    (contains_sub message "not a positive integer")

let test_parse_error_names_token () =
  (* expect-failures report the token actually found *)
  let _, message = parse_error_of "OPENQASM 2.0;\nqreg q[2];\nh q 0];\n" in
  check_bool "message shows the offending token" true
    (contains_sub message "got")

let suite =
  suite
  @ [
      Alcotest.test_case "parse_u3_u2" `Quick test_parse_u3_and_u2;
      Alcotest.test_case "parse_crx_cry" `Quick test_parse_crx_cry;
      Alcotest.test_case "parse_rzz" `Quick test_parse_rzz;
      Alcotest.test_case "parse_cswap" `Quick test_parse_cswap;
      Alcotest.test_case "parse_bad_arity" `Quick test_parse_bad_arity;
      Alcotest.test_case "parse_truncated_file" `Quick
        test_parse_truncated_file;
      Alcotest.test_case "parse_unknown_gate" `Quick test_parse_unknown_gate;
      Alcotest.test_case "parse_index_out_of_range" `Quick
        test_parse_qubit_index_out_of_range;
      Alcotest.test_case "parse_fractional_index" `Quick
        test_parse_fractional_qubit_index;
      Alcotest.test_case "parse_bad_register_size" `Quick
        test_parse_bad_register_size;
      Alcotest.test_case "parse_error_names_token" `Quick
        test_parse_error_names_token;
    ]

(* -- fuzz: mutated programs may only fail with a located Parse_error ----- *)

(* A base program touching every statement form the parser knows: version
   header, include, registers, plain/controlled/parameterised gates,
   expressions, measure with arrow, comments. *)
let fuzz_base =
  "OPENQASM 2.0;\n\
   include \"qelib1.inc\";\n\
   // a comment line\n\
   qreg q[4];\n\
   creg c[4];\n\
   h q[0];\n\
   cx q[0],q[1];\n\
   u3(pi/2,0.1,-0.2) q[2];\n\
   crx(0.5) q[1],q[3];\n\
   rzz(pi/4) q[2],q[3];\n\
   ccx q[0],q[1],q[2];\n\
   swap q[1],q[3];\n\
   barrier q;\n\
   measure q -> c;\n"

let mutate_once source op a b =
  let n = String.length source in
  if n = 0 then source
  else
    let a = a mod n and b = b mod n in
    match op mod 5 with
    | 0 ->
      (* delete one character *)
      String.sub source 0 a ^ String.sub source (a + 1) (n - a - 1)
    | 1 ->
      (* insert one printable character *)
      String.sub source 0 a
      ^ String.make 1 (Char.chr (32 + (b mod 95)))
      ^ String.sub source a (n - a)
    | 2 ->
      (* swap two characters *)
      let bytes = Bytes.of_string source in
      let tmp = Bytes.get bytes a in
      Bytes.set bytes a (Bytes.get bytes b);
      Bytes.set bytes b tmp;
      Bytes.to_string bytes
    | 3 -> (* truncate *) String.sub source 0 a
    | _ ->
      (* splice a slice of the program over another position *)
      let lo = min a b and hi = max a b in
      String.sub source 0 lo
      ^ String.sub source lo (hi - lo)
      ^ String.sub source lo (n - lo)

let mutation_arb =
  (* up to three stacked mutations, each (op, position, position) *)
  QCheck.make
    ~print:(fun muts ->
      String.concat "; "
        (List.map
           (fun (op, a, b) -> Printf.sprintf "(%d,%d,%d)" op a b)
           muts))
    QCheck.Gen.(
      list_size (1 -- 3)
        (triple (0 -- 4) (0 -- 1000) (0 -- 1000)))

let prop_mutations_fail_located =
  QCheck.Test.make
    ~name:"mutated QASM: parses, or raises a located Parse_error" ~count:800
    mutation_arb
    (fun muts ->
      let source =
        List.fold_left
          (fun s (op, a, b) -> mutate_once s op a b)
          fuzz_base muts
      in
      match Qasm.of_string source with
      | _ -> true
      | exception Qasm.Parse_error { line; message } ->
        line >= 1 && String.length message > 0)

let test_duplicate_qubit_is_parse_error () =
  (* the concrete corruption the fuzzer is most likely to hit: an index
     mutated into a collision must not leak Invalid_argument from the
     circuit layer *)
  let _, message =
    parse_error_of "OPENQASM 2.0;\nqreg q[2];\ncx q[0],q[0];\n"
  in
  check_bool "duplicate argument named" true
    (contains_sub message "duplicate qubit argument")

let suite =
  suite
  @ [
      Alcotest.test_case "parse_duplicate_qubit" `Quick
        test_duplicate_qubit_is_parse_error;
      QCheck_alcotest.to_alcotest prop_mutations_fail_located;
    ]
