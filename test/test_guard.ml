open Util

(* The resilience layer: budget-governed runs must degrade gracefully —
   never silently wrong.  A guarded run that completes must produce exactly
   the state an unguarded run produces; a guarded run that cannot complete
   must abort with a structured error at a resumable point. *)

let final_array engine =
  Dd.Vdd.to_array
    (Dd_sim.Engine.state engine)
    ~n:(Dd_sim.Engine.qubits engine)

let run_plain ?strategy circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run ?strategy engine circuit;
  engine

(* -- graceful fallback under a matrix budget ----------------------------- *)

let test_qft_k16_matrix_budget_falls_back () =
  (* the acceptance scenario: an 8-qubit QFT under k:16 with a 64-node
     combined-matrix budget must complete via sequential fallback and agree
     with the unguarded sequential run *)
  let circuit = Qft.circuit 8 in
  let strategy = Dd_sim.Strategy.K_operations 16 in
  let guard = Dd_sim.Guard.make ~max_matrix_nodes:64 () in
  let guarded = Dd_sim.Engine.create 8 in
  Dd_sim.Engine.run ~strategy ~guard guarded circuit;
  let reference = run_plain circuit in
  check_cnum_array "guarded k:16 equals unguarded sequential"
    (final_array reference) (final_array guarded);
  let stats = Dd_sim.Engine.stats guarded in
  check_bool "fallbacks were taken" true
    (stats.Dd_sim.Sim_stats.fallbacks > 0)

let test_max_size_matrix_budget_falls_back () =
  let circuit = Standard.random_circuit ~seed:31 ~qubits:6 ~gates:60 () in
  let strategy = Dd_sim.Strategy.Max_size 4096 in
  let guard = Dd_sim.Guard.make ~max_matrix_nodes:24 () in
  let guarded = Dd_sim.Engine.create 6 in
  Dd_sim.Engine.run ~strategy ~guard guarded circuit;
  let reference = run_plain circuit in
  check_cnum_array "guarded size:4096 equals unguarded sequential"
    (final_array reference) (final_array guarded);
  check_bool "fallbacks were taken" true
    ((Dd_sim.Engine.stats guarded).Dd_sim.Sim_stats.fallbacks > 0)

let test_tiny_budget_degrades_to_sequential () =
  (* a 1-node budget rejects every partial product: every window falls
     back, so the run does one mat-vec per gate, like Sequential *)
  let gates = 20 in
  let circuit = Standard.random_circuit ~seed:5 ~qubits:4 ~gates () in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.run
    ~strategy:(Dd_sim.Strategy.K_operations 4)
    ~guard:(Dd_sim.Guard.make ~max_matrix_nodes:1 ())
    engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  check_int "one mat-vec per gate" gates stats.Dd_sim.Sim_stats.mat_vec_mults;
  let reference = run_plain circuit in
  check_cnum_array "state still exact" (final_array reference)
    (final_array engine)

(* -- structured aborts --------------------------------------------------- *)

let test_deadline_zero_aborts_at_gate_zero () =
  let engine = Dd_sim.Engine.create 3 in
  let guard = Dd_sim.Guard.make ~deadline:0. () in
  match Dd_sim.Engine.run ~guard engine (Standard.ghz 3) with
  | () -> Alcotest.fail "deadline 0 did not abort"
  | exception
      Dd_sim.Error.Error
        (Dd_sim.Error.Budget_exhausted { kind = Dd_sim.Error.Deadline; site; _ })
    ->
    check_int "aborted before the first gate" 0
      site.Dd_sim.Error.gate_index

let test_live_node_budget_aborts () =
  let circuit = Standard.random_circuit ~seed:3 ~qubits:6 ~gates:30 () in
  let engine = Dd_sim.Engine.create 6 in
  let guard = Dd_sim.Guard.make ~max_live_nodes:1 () in
  check_bool "live-node budget exhausted" true
    (match Dd_sim.Engine.run ~guard engine circuit with
    | () -> false
    | exception
        Dd_sim.Error.Error
          (Dd_sim.Error.Budget_exhausted
             { kind = Dd_sim.Error.Live_nodes; _ }) ->
      true)

let test_auto_gc_triggers () =
  let circuit = Standard.random_circuit ~seed:17 ~qubits:5 ~gates:40 () in
  let engine = Dd_sim.Engine.create 5 in
  let guard = Dd_sim.Guard.make ~gc_high_water:8 () in
  Dd_sim.Engine.run ~guard engine circuit;
  check_bool "automatic collections happened" true
    ((Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.auto_gcs > 0);
  let reference = run_plain circuit in
  check_cnum_array "collection never changes the state"
    (final_array reference) (final_array engine)

(* -- norm drift ---------------------------------------------------------- *)

let test_norm_drift_renormalized () =
  let engine = Dd_sim.Engine.create 2 in
  let ctx = Dd_sim.Engine.context engine in
  (* inject drift: a state of norm 2 *)
  Dd_sim.Engine.set_state engine
    (Dd.Vdd.scale ctx
       (Dd_complex.Cnum.of_float 2.)
       (Dd_sim.Engine.state engine));
  let guard = Dd_sim.Guard.make ~norm_tolerance:0.1 () in
  Dd_sim.Engine.run ~guard engine (Standard.bell ());
  let stats = Dd_sim.Engine.stats engine in
  check_bool "a renormalization was applied" true
    (stats.Dd_sim.Sim_stats.renormalizations > 0);
  check_float "final norm is 1" 1.
    (Dd.Measure.norm2 ctx (Dd_sim.Engine.state engine));
  let reference = run_plain (Standard.bell ()) in
  check_cnum_array "renormalized run equals clean run"
    (final_array reference) (final_array engine)

let test_norm_collapse_is_structured_abort () =
  let engine = Dd_sim.Engine.create 2 in
  let ctx = Dd_sim.Engine.context engine in
  (* an infinite amplitude has no finite norm: renormalization is
     impossible and must be reported, not papered over *)
  Dd_sim.Engine.set_state engine
    (Dd.Vdd.scale ctx
       (Dd_complex.Cnum.of_float infinity)
       (Dd_sim.Engine.state engine));
  let guard = Dd_sim.Guard.make ~norm_tolerance:0.1 () in
  check_bool "renormalization failure is structured" true
    (match Dd_sim.Engine.run ~guard engine (Standard.bell ()) with
    | () -> false
    | exception
        Dd_sim.Error.Error (Dd_sim.Error.Renormalization_failed _) ->
      true)

(* -- the disabled guard costs nothing and changes nothing ---------------- *)

let test_guard_none_is_identity () =
  let circuit = Standard.random_circuit ~seed:8 ~qubits:5 ~gates:30 () in
  let plain = run_plain ~strategy:(Dd_sim.Strategy.K_operations 4) circuit in
  let guarded = Dd_sim.Engine.create 5 in
  Dd_sim.Engine.run
    ~strategy:(Dd_sim.Strategy.K_operations 4)
    ~guard:Dd_sim.Guard.none guarded circuit;
  check_cnum_array "Guard.none run is bit-identical"
    (final_array plain) (final_array guarded);
  let p = Dd_sim.Engine.stats plain
  and g = Dd_sim.Engine.stats guarded in
  check_int "same mat-vec count" p.Dd_sim.Sim_stats.mat_vec_mults
    g.Dd_sim.Sim_stats.mat_vec_mults;
  check_int "same mat-mat count" p.Dd_sim.Sim_stats.mat_mat_mults
    g.Dd_sim.Sim_stats.mat_mat_mults;
  check_int "no fallbacks" 0 g.Dd_sim.Sim_stats.fallbacks;
  check_int "no auto gcs" 0 g.Dd_sim.Sim_stats.auto_gcs;
  check_int "no renormalizations" 0 g.Dd_sim.Sim_stats.renormalizations

(* -- checkpoint / resume ------------------------------------------------- *)

let samples engine count = List.init count (fun _ -> Dd_sim.Engine.sample engine)

let test_checkpoint_resume_matches_uninterrupted () =
  (* the acceptance scenario: interrupt a Grover run mid-flight, resume in
     a fresh context, and demand identical amplitudes AND identical
     measurement samples (same RNG stream) as the uninterrupted run *)
  let circuit = Grover.circuit ~n:7 ~marked:5 () in
  let strategy = Dd_sim.Strategy.K_operations 4 in
  let uninterrupted = Dd_sim.Engine.create ~seed:42 7 in
  Dd_sim.Engine.run ~strategy uninterrupted circuit;
  let flat = Circuit.flatten circuit in
  let cut = List.length flat / 2 in
  let prefix =
    Circuit.of_gates ~qubits:7 (List.filteri (fun i _ -> i < cut) flat)
  in
  let interrupted = Dd_sim.Engine.create ~seed:42 7 in
  Dd_sim.Engine.run ~strategy interrupted prefix;
  let path = Filename.temp_file "ddsim" ".ckpt" in
  Dd_sim.Checkpoint.save interrupted ~strategy ~gate_index:cut ~path;
  (* resume in a brand-new context with a different seed: everything that
     matters must come from the checkpoint *)
  let resumed = Dd_sim.Engine.create ~seed:7 7 in
  let checkpoint =
    Dd_sim.Checkpoint.load (Dd_sim.Engine.context resumed) ~path
  in
  Sys.remove path;
  check_int "checkpoint remembers the cut" cut
    checkpoint.Dd_sim.Checkpoint.gate_index;
  let start_gate = Dd_sim.Checkpoint.restore resumed checkpoint in
  Dd_sim.Engine.run ~strategy:checkpoint.Dd_sim.Checkpoint.strategy
    ~start_gate resumed circuit;
  check_cnum_array "resumed state equals uninterrupted state"
    (final_array uninterrupted) (final_array resumed);
  check_bool "identical measurement samples" true
    (samples uninterrupted 20 = samples resumed 20)

let test_abort_writes_resumable_checkpoint () =
  (* a structured abort must leave a checkpoint behind when one is
     configured, and resuming from it must complete the run exactly *)
  let circuit = Standard.random_circuit ~seed:23 ~qubits:5 ~gates:30 () in
  let path = Filename.temp_file "ddsim" ".ckpt" in
  let strategy = Dd_sim.Strategy.Sequential in
  let engine = Dd_sim.Engine.create 5 in
  let on_checkpoint ~gate_index =
    Dd_sim.Checkpoint.save engine ~strategy ~gate_index ~path
  in
  let guard = Dd_sim.Guard.make ~deadline:0. () in
  (match Dd_sim.Engine.run ~strategy ~guard ~on_checkpoint engine circuit with
  | () -> Alcotest.fail "expected a deadline abort"
  | exception Dd_sim.Error.Error (Dd_sim.Error.Budget_exhausted _) -> ());
  let resumed = Dd_sim.Engine.create 5 in
  let checkpoint =
    Dd_sim.Checkpoint.load (Dd_sim.Engine.context resumed) ~path
  in
  Sys.remove path;
  let start_gate = Dd_sim.Checkpoint.restore resumed checkpoint in
  Dd_sim.Engine.run ~strategy ~start_gate resumed circuit;
  let reference = run_plain circuit in
  check_cnum_array "resumed-after-abort equals clean run"
    (final_array reference) (final_array resumed)

let test_periodic_checkpoints_fire () =
  let gates = 40 in
  let circuit = Standard.random_circuit ~seed:11 ~qubits:4 ~gates () in
  let engine = Dd_sim.Engine.create 4 in
  let calls = ref [] in
  Dd_sim.Engine.run ~checkpoint_every:8
    ~on_checkpoint:(fun ~gate_index -> calls := gate_index :: !calls)
    engine circuit;
  let calls = List.rev !calls in
  check_bool "several periodic checkpoints" true (List.length calls >= 4);
  check_int "final checkpoint covers the whole run" gates
    (List.nth calls (List.length calls - 1));
  check_int "stats counted them" (List.length calls)
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.checkpoints_written

let test_resume_mid_repeat_block () =
  (* a resume point inside a Repeat block must work under DD-repeating:
     the partial repetition is finished gate by gate, the rest by the
     combined block matrix *)
  let circuit =
    Circuit.create ~qubits:3
      [
        Circuit.gate (Gate.h 0);
        Circuit.repeat 6
          [ Circuit.gate (Gate.h 1); Circuit.gate (Gate.cx 1 2) ];
      ]
  in
  let reference = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run ~use_repeating:true reference circuit;
  (* cut at gate 4: inside the second repetition (1 + 2*2 - 1 gates) *)
  let cut = 4 in
  let flat = Circuit.flatten circuit in
  let prefix =
    Circuit.of_gates ~qubits:3 (List.filteri (fun i _ -> i < cut) flat)
  in
  let resumed = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run resumed prefix;
  Dd_sim.Engine.run ~use_repeating:true ~start_gate:cut resumed circuit;
  check_cnum_array "mid-block resume equals uninterrupted"
    (final_array reference) (final_array resumed)

let test_invalid_checkpoint_rejected () =
  let reject name text =
    let ctx = fresh_ctx () in
    check_bool name true
      (match Dd_sim.Checkpoint.of_string ctx text with
      | (_ : Dd_sim.Checkpoint.t) -> false
      | exception
          Dd_sim.Error.Error (Dd_sim.Error.Invalid_checkpoint _) ->
        true)
  in
  reject "garbage" "not a checkpoint at all";
  reject "truncated" "ddsim-checkpoint 1\nqubits 3";
  reject "bad header" "ddsim-checkpoint 99\nqubits 3";
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine (Standard.bell ());
  let good =
    Dd_sim.Checkpoint.to_string
      (Dd_sim.Checkpoint.snapshot engine
         ~strategy:Dd_sim.Strategy.Sequential ~gate_index:2)
  in
  (* corrupt one field of an otherwise-valid checkpoint *)
  let corrupted =
    String.split_on_char '\n' good
    |> List.map (fun line ->
           if String.length line >= 6 && String.sub line 0 6 = "stats " then
             "stats 1 2 three"
           else line)
    |> String.concat "\n"
  in
  reject "corrupt stats" corrupted

let test_checkpoint_roundtrip_fields () =
  let engine = Dd_sim.Engine.create ~seed:5 3 in
  Dd_sim.Engine.run engine (Standard.ghz 3) ~strategy:(Dd_sim.Strategy.K_operations 2);
  let strategy = Dd_sim.Strategy.K_operations 2 in
  let checkpoint = Dd_sim.Checkpoint.snapshot engine ~strategy ~gate_index:3 in
  let text = Dd_sim.Checkpoint.to_string checkpoint in
  let ctx = fresh_ctx () in
  let loaded = Dd_sim.Checkpoint.of_string ctx text in
  check_int "qubits survive" 3 loaded.Dd_sim.Checkpoint.qubits;
  check_int "gate index survives" 3 loaded.Dd_sim.Checkpoint.gate_index;
  check_bool "strategy survives" true
    (loaded.Dd_sim.Checkpoint.strategy = strategy);
  check_cnum_array "state survives re-canonicalisation"
    (Dd.Vdd.to_array checkpoint.Dd_sim.Checkpoint.state ~n:3)
    (Dd.Vdd.to_array loaded.Dd_sim.Checkpoint.state ~n:3);
  check_int "stats survive"
    checkpoint.Dd_sim.Checkpoint.stats.Dd_sim.Sim_stats.mat_vec_mults
    loaded.Dd_sim.Checkpoint.stats.Dd_sim.Sim_stats.mat_vec_mults

let test_checkpoint_width_mismatch () =
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine (Standard.bell ());
  let checkpoint =
    Dd_sim.Checkpoint.snapshot engine ~strategy:Dd_sim.Strategy.Sequential
      ~gate_index:2
  in
  let wrong = Dd_sim.Engine.create 3 in
  Alcotest.check_raises "restore into wrong width"
    (Dd_sim.Error.Error
       (Dd_sim.Error.Width_mismatch
          { what = "Checkpoint.restore"; expected = 3; actual = 2 }))
    (fun () -> ignore (Dd_sim.Checkpoint.restore wrong checkpoint))

(* -- guard construction -------------------------------------------------- *)

let test_guard_validation_and_printing () =
  check_bool "none prints unguarded" true
    (Dd_sim.Guard.to_string Dd_sim.Guard.none = "unguarded");
  let guard =
    Dd_sim.Guard.make ~max_live_nodes:1000 ~deadline:2.5 ()
  in
  check_bool "fields print" true
    (Dd_sim.Guard.to_string guard = "max-live-nodes=1000 deadline=2.5s");
  Alcotest.check_raises "zero budget rejected"
    (Invalid_argument "Guard.make: max_matrix_nodes must be >= 1")
    (fun () -> ignore (Dd_sim.Guard.make ~max_matrix_nodes:0 ()))

let suite =
  [
    Alcotest.test_case "qft_k16_budget_fallback" `Quick
      test_qft_k16_matrix_budget_falls_back;
    Alcotest.test_case "max_size_budget_fallback" `Quick
      test_max_size_matrix_budget_falls_back;
    Alcotest.test_case "tiny_budget_sequential" `Quick
      test_tiny_budget_degrades_to_sequential;
    Alcotest.test_case "deadline_zero_aborts" `Quick
      test_deadline_zero_aborts_at_gate_zero;
    Alcotest.test_case "live_node_budget_aborts" `Quick
      test_live_node_budget_aborts;
    Alcotest.test_case "auto_gc_triggers" `Quick test_auto_gc_triggers;
    Alcotest.test_case "norm_drift_renormalized" `Quick
      test_norm_drift_renormalized;
    Alcotest.test_case "norm_collapse_aborts" `Quick
      test_norm_collapse_is_structured_abort;
    Alcotest.test_case "guard_none_identity" `Quick test_guard_none_is_identity;
    Alcotest.test_case "checkpoint_resume_grover" `Quick
      test_checkpoint_resume_matches_uninterrupted;
    Alcotest.test_case "abort_leaves_checkpoint" `Quick
      test_abort_writes_resumable_checkpoint;
    Alcotest.test_case "periodic_checkpoints" `Quick
      test_periodic_checkpoints_fire;
    Alcotest.test_case "resume_mid_repeat" `Quick test_resume_mid_repeat_block;
    Alcotest.test_case "invalid_checkpoint" `Quick
      test_invalid_checkpoint_rejected;
    Alcotest.test_case "checkpoint_roundtrip" `Quick
      test_checkpoint_roundtrip_fields;
    Alcotest.test_case "checkpoint_width_mismatch" `Quick
      test_checkpoint_width_mismatch;
    Alcotest.test_case "guard_validation" `Quick
      test_guard_validation_and_printing;
  ]
