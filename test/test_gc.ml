open Util

let test_collect_frees_dead_nodes () =
  let ctx = fresh_ctx () in
  (* build several throwaway states, keep only one *)
  let keep = Dd.Vdd.basis ctx ~n:6 21 in
  for i = 0 to 30 do
    ignore (Dd.Vdd.basis ctx ~n:6 i)
  done;
  let live_before = Dd.Context.live_v_nodes ctx in
  let removed_v, _removed_m =
    Dd.Context.collect ctx ~v_roots:[ keep ] ~m_roots:[]
  in
  check_bool "something was reclaimed" true (removed_v > 0);
  check_int "live = before - removed" (live_before - removed_v)
    (Dd.Context.live_v_nodes ctx);
  check_int "rooted state intact" 6 (Dd.Vdd.node_count keep)

let test_collect_keeps_rooted_matrix () =
  let ctx = fresh_ctx () in
  let keep = Dd.Mdd.gate ctx ~n:5 ~target:2 (Gate.matrix Gate.H) in
  ignore (Dd.Mdd.gate ctx ~n:5 ~target:0 (Gate.matrix Gate.X));
  ignore (Dd.Mdd.identity ctx 5);
  let _, removed_m = Dd.Context.collect ctx ~v_roots:[] ~m_roots:[ keep ] in
  check_bool "dead matrices reclaimed" true (removed_m > 0);
  (* the kept matrix still works *)
  let v = Dd.Vdd.basis ctx ~n:5 0 in
  let w = Dd.Mdd.apply ctx keep v in
  check_float "H still acts correctly" 0.5
    (Dd_complex.Cnum.mag2 (Dd.Vdd.amplitude w ~n:5 4))

let test_operations_after_collect () =
  (* hash-consing must still be canonical after sweeping *)
  let ctx = fresh_ctx () in
  let a = Dd.Vdd.basis ctx ~n:4 3 in
  ignore (Dd.Vdd.basis ctx ~n:4 9);
  ignore (Dd.Context.collect ctx ~v_roots:[ a ] ~m_roots:[]);
  let b = Dd.Vdd.basis ctx ~n:4 3 in
  check_bool "rebuilding a live state reuses it canonically" true
    (Dd.Vdd.equal a b);
  let again = Dd.Vdd.basis ctx ~n:4 9 in
  check_cnum "rebuilt dead state is correct" Dd_complex.Cnum.one
    (Dd.Vdd.amplitude again ~n:4 9)

let test_engine_collect () =
  let engine = Dd_sim.Engine.create 8 in
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:5 ~qubits:8 ~gates:150 ());
  let ctx = Dd_sim.Engine.context engine in
  let live_before = Dd.Context.live_v_nodes ctx in
  let reference = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:8 in
  let removed_v, _ = Dd_sim.Engine.collect_garbage engine in
  check_bool "intermediate states reclaimed" true (removed_v > 0);
  check_bool "live nodes dropped" true
    (Dd.Context.live_v_nodes ctx < live_before);
  (* state unchanged and engine fully functional afterwards *)
  check_cnum_array "state intact after GC" reference
    (Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:8);
  Dd_sim.Engine.apply_gate engine (Gate.h 0);
  check_float "still unitary after GC" 1.
    (Dd.Measure.norm2 ctx (Dd_sim.Engine.state engine))

let test_gc_mid_simulation_equivalence () =
  (* interleaving GC with simulation must not change the result *)
  let circuit = Standard.random_circuit ~seed:77 ~qubits:6 ~gates:60 () in
  let gates = Circuit.flatten circuit in
  let plain = Dd_sim.Engine.create 6 in
  List.iter (Dd_sim.Engine.apply_gate plain) gates;
  let collected = Dd_sim.Engine.create 6 in
  List.iteri
    (fun i gate ->
      Dd_sim.Engine.apply_gate collected gate;
      if i mod 10 = 9 then ignore (Dd_sim.Engine.collect_garbage collected))
    gates;
  check_cnum_array "same state with and without GC"
    (Dd.Vdd.to_array (Dd_sim.Engine.state plain) ~n:6)
    (Dd.Vdd.to_array (Dd_sim.Engine.state collected) ~n:6)

let test_collect_keeps_caches_warm () =
  (* generation-aware sweeping: a compute-table entry whose operands and
     result survive the collection must still hit afterwards *)
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 4 in
  let gate = Dd_sim.Engine.gate_dd engine (Gate.h 2) in
  let v = Dd_sim.Engine.state engine in
  ignore (Dd.Mdd.apply ctx gate v);
  ignore (Dd.Context.collect ctx ~v_roots:[ v ] ~m_roots:[ gate ]);
  let stats () = Dd.Compute_table.stats ctx.Dd.Context.mul_mv in
  check_bool "entries survive the collection" true
    ((stats ()).Dd.Compute_table.entries > 0);
  let hits_before = (stats ()).Dd.Compute_table.hits in
  ignore (Dd.Mdd.apply ctx gate v);
  check_bool "repeating the multiplication still hits after GC" true
    ((stats ()).Dd.Compute_table.hits > hits_before)

let test_auto_gc_cache_hit_rate () =
  (* a guarded run that actually collects must keep a non-zero hit rate:
     wholesale cache flushing on every collection would show up here *)
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 6 in
  let guard = Dd_sim.Guard.make ~gc_high_water:64 () in
  Dd_sim.Engine.run ~guard engine
    (Standard.random_circuit ~seed:13 ~qubits:6 ~gates:120 ());
  let stats = Dd_sim.Engine.stats engine in
  check_bool "auto-GC actually fired" true
    (stats.Dd_sim.Sim_stats.auto_gcs > 0);
  check_bool "collections recorded in kernel stats" true
    ((Dd.Context.gc_stats ctx).Dd.Context.collections > 0);
  check_bool "gc pause accounted" true
    (stats.Dd_sim.Sim_stats.gc_pause_seconds >= 0.);
  (* sequential single-target gates run through the structured-apply
     kernel, so the apply table is the one that must stay warm *)
  check_bool "compute caches stayed warm across collections" true
    (Dd.Compute_table.hit_rate ctx.Dd.Context.apply_v > 0.)

let test_identity_cache_survives_collect () =
  let ctx = fresh_ctx () in
  let identity = Dd.Mdd.identity ctx 4 in
  let cached_before = Hashtbl.length ctx.Dd.Context.identity_cache in
  check_bool "identity is cached" true (cached_before > 0);
  (* no explicit roots: the identity cache itself roots its entries *)
  ignore (Dd.Context.collect ctx ~v_roots:[] ~m_roots:[]);
  check_int "identity cache entries survive" cached_before
    (Hashtbl.length ctx.Dd.Context.identity_cache);
  check_bool "cached identity edge is still canonical" true
    (Dd.Mdd.equal identity (Dd.Mdd.identity ctx 4))

let test_collect_empty_roots () =
  let ctx = fresh_ctx () in
  ignore (Dd.Vdd.basis ctx ~n:3 1);
  ignore (Dd.Context.collect ctx ~v_roots:[] ~m_roots:[]);
  check_int "everything reclaimed with no roots" 0
    (Dd.Context.live_v_nodes ctx)

let suite =
  [
    Alcotest.test_case "collect_frees_dead" `Quick
      test_collect_frees_dead_nodes;
    Alcotest.test_case "collect_keeps_matrix" `Quick
      test_collect_keeps_rooted_matrix;
    Alcotest.test_case "operations_after_collect" `Quick
      test_operations_after_collect;
    Alcotest.test_case "engine_collect" `Quick test_engine_collect;
    Alcotest.test_case "gc_mid_simulation" `Quick
      test_gc_mid_simulation_equivalence;
    Alcotest.test_case "collect_empty_roots" `Quick test_collect_empty_roots;
    Alcotest.test_case "caches_stay_warm" `Quick
      test_collect_keeps_caches_warm;
    Alcotest.test_case "auto_gc_hit_rate" `Quick
      test_auto_gc_cache_hit_rate;
    Alcotest.test_case "identity_cache_survives" `Quick
      test_identity_cache_survives_collect;
  ]
