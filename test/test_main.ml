let () =
  Alcotest.run "ddsim"
    [
      ("cnum", Test_cnum.suite);
      ("vdd", Test_vdd.suite);
      ("mdd", Test_mdd.suite);
      ("measure", Test_measure.suite);
      ("circuit", Test_circuit.suite);
      ("qasm", Test_qasm.suite);
      ("benchmark_files", Test_benchmark_files.suite);
      ("dense", Test_dense.suite);
      ("sparse", Test_sparse.suite);
      ("engine", Test_engine.suite);
      ("strategies", Test_strategies.suite);
      ("guard", Test_guard.suite);
      ("qft", Test_qft.suite);
      ("ntheory", Test_ntheory.suite);
      ("grover", Test_grover.suite);
      ("supremacy", Test_supremacy.suite);
      ("shor", Test_shor.suite);
      ("algorithms2", Test_algorithms2.suite);
      ("algorithms3", Test_algorithms3.suite);
      ("stateprep", Test_stateprep.suite);
      ("dot", Test_dot.suite);
      ("optimize", Test_optimize.suite);
      ("equivalence", Test_equivalence.suite);
      ("repeats", Test_repeats.suite);
      ("observable", Test_observable.suite);
      ("compute_table", Test_compute_table.suite);
      ("apply", Test_apply.suite);
      ("gc", Test_gc.suite);
      ("internals", Test_internals.suite);
      ("plot", Test_plot.suite);
      ("serialize", Test_serialize.suite);
      ("approx", Test_approx.suite);
      ("xeb", Test_xeb.suite);
      ("properties", Test_props.suite);
    ]
