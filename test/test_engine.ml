open Dd_complex
open Util

let test_initial_state () =
  let engine = Dd_sim.Engine.create 4 in
  check_cnum "starts in |0000>" Cnum.one (Dd_sim.Engine.amplitude engine 0);
  check_int "linear initial DD" 4 (Dd_sim.Engine.state_node_count engine)

let test_apply_gate () =
  let engine = Dd_sim.Engine.create 1 in
  Dd_sim.Engine.apply_gate engine (Gate.h 0);
  let amp = Cnum.of_float (1. /. sqrt 2.) in
  check_cnum "H|0> low" amp (Dd_sim.Engine.amplitude engine 0);
  check_cnum "H|0> high" amp (Dd_sim.Engine.amplitude engine 1)

let test_run_matches_dense () =
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:6 ~gates:50 () in
      let dense = dense_state_of_circuit circuit in
      let engine = Dd_sim.Engine.create 6 in
      Dd_sim.Engine.run engine circuit;
      check_float
        (Printf.sprintf "fidelity with dense reference, seed %d" seed)
        1.
        (Dd_sim.Engine.fidelity_dense engine dense))
    [ 10; 20; 30 ]

let test_sequential_stats () =
  let circuit = Standard.random_circuit ~seed:5 ~qubits:4 ~gates:25 () in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.run engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  check_int "one mat-vec per gate" 25 stats.Dd_sim.Sim_stats.mat_vec_mults;
  check_int "no mat-mat in sequential mode" 0
    stats.Dd_sim.Sim_stats.mat_mat_mults;
  check_int "gates seen" 25 stats.Dd_sim.Sim_stats.gates_seen

let test_reset () =
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run engine (Standard.ghz 3);
  Dd_sim.Engine.reset engine;
  check_cnum "back to |000>" Cnum.one (Dd_sim.Engine.amplitude engine 0);
  check_int "stats cleared" 0
    (Dd_sim.Engine.stats engine).Dd_sim.Sim_stats.mat_vec_mults

let test_run_width_mismatch () =
  let engine = Dd_sim.Engine.create 2 in
  Alcotest.check_raises "width mismatch"
    (Dd_sim.Error.Error
       (Dd_sim.Error.Width_mismatch
          { what = "Engine.run"; expected = 2; actual = 3 }))
    (fun () -> Dd_sim.Engine.run engine (Standard.ghz 3))

let test_set_state_validation () =
  let engine = Dd_sim.Engine.create 3 in
  let ctx = Dd_sim.Engine.context engine in
  Alcotest.check_raises "height mismatch"
    (Dd_sim.Error.Error
       (Dd_sim.Error.Width_mismatch
          { what = "Engine.set_state"; expected = 3; actual = 2 }))
    (fun () -> Dd_sim.Engine.set_state engine (Dd.Vdd.basis ctx ~n:2 0))

let test_measure_ghz_correlated () =
  (* GHZ measurement must give all zeros or all ones *)
  List.iter
    (fun seed ->
      let engine = Dd_sim.Engine.create ~seed 5 in
      Dd_sim.Engine.run engine (Standard.ghz 5);
      let outcome = Dd_sim.Engine.measure_all engine in
      check_bool
        (Printf.sprintf "GHZ collapse, seed %d" seed)
        true
        (outcome = 0 || outcome = 31))
    [ 1; 2; 3; 4; 5; 6 ]

let test_measure_qubit_collapses () =
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine (Standard.bell ());
  let first = Dd_sim.Engine.measure_qubit engine ~qubit:0 in
  let second = Dd_sim.Engine.measure_qubit engine ~qubit:1 in
  check_bool "bell bits agree" true (first = second)

let test_probability_one () =
  let engine = Dd_sim.Engine.create 2 in
  Dd_sim.Engine.run engine (Standard.bell ());
  check_float "bell marginal" 0.5
    (Dd_sim.Engine.probability_one engine ~qubit:1)

let test_sample_deterministic_state () =
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.apply_gate engine (Gate.x 2);
  check_int "sampling a basis state" 4 (Dd_sim.Engine.sample engine)

let test_combine_equals_sequential () =
  let gates =
    [ Gate.h 0; Gate.cx 0 1; Gate.t_gate 1; Gate.cz 1 2; Gate.h 2 ]
  in
  let engine_a = Dd_sim.Engine.create 3 in
  List.iter (Dd_sim.Engine.apply_gate engine_a) gates;
  let engine_b = Dd_sim.Engine.create 3 in
  let product = Dd_sim.Engine.combine engine_b gates in
  Dd_sim.Engine.apply_matrix engine_b product;
  check_cnum_array "combined product equals gate-by-gate"
    (Dd.Vdd.to_array (Dd_sim.Engine.state engine_a) ~n:3)
    (Dd.Vdd.to_array (Dd_sim.Engine.state engine_b) ~n:3)

let test_combine_empty_is_identity () =
  let engine = Dd_sim.Engine.create 3 in
  let product = Dd_sim.Engine.combine engine [] in
  check_bool "empty product is the identity" true
    (Dd.Mdd.equal product (Dd.Mdd.identity (Dd_sim.Engine.context engine) 3))

let test_track_peaks () =
  (* with the fused fast path no gate DD is built, so matrix peaks stay 0;
     state peaks are tracked either way *)
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_track_peaks engine true;
  Dd_sim.Engine.run engine
    (Standard.random_circuit ~seed:8 ~qubits:4 ~gates:30 ());
  let stats = Dd_sim.Engine.stats engine in
  check_bool "peak state nodes recorded" true
    (stats.Dd_sim.Sim_stats.peak_state_nodes >= 1);
  check_int "fused run builds no gate DDs" 0
    stats.Dd_sim.Sim_stats.peak_matrix_nodes;
  let generic = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_fused_apply generic false;
  Dd_sim.Engine.set_track_peaks generic true;
  Dd_sim.Engine.run generic
    (Standard.random_circuit ~seed:8 ~qubits:4 ~gates:30 ());
  let gstats = Dd_sim.Engine.stats generic in
  check_bool "generic run records matrix peaks" true
    (gstats.Dd_sim.Sim_stats.peak_matrix_nodes >= 1)

let test_apply_matrix_direct () =
  (* DD-construct style: apply a permutation built directly *)
  let engine = Dd_sim.Engine.create 3 in
  let ctx = Dd_sim.Engine.context engine in
  let shift = Dd.Mdd.of_permutation ctx ~n:3 (fun x -> (x + 1) mod 8) in
  Dd_sim.Engine.apply_matrix engine shift;
  Dd_sim.Engine.apply_matrix engine shift;
  check_cnum "|0> shifted twice" Cnum.one (Dd_sim.Engine.amplitude engine 2)

let suite =
  [
    Alcotest.test_case "initial_state" `Quick test_initial_state;
    Alcotest.test_case "apply_gate" `Quick test_apply_gate;
    Alcotest.test_case "run_matches_dense" `Quick test_run_matches_dense;
    Alcotest.test_case "sequential_stats" `Quick test_sequential_stats;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "run_width_mismatch" `Quick test_run_width_mismatch;
    Alcotest.test_case "set_state_validation" `Quick
      test_set_state_validation;
    Alcotest.test_case "measure_ghz_correlated" `Quick
      test_measure_ghz_correlated;
    Alcotest.test_case "measure_qubit_collapses" `Quick
      test_measure_qubit_collapses;
    Alcotest.test_case "probability_one" `Quick test_probability_one;
    Alcotest.test_case "sample_deterministic" `Quick
      test_sample_deterministic_state;
    Alcotest.test_case "combine_equals_sequential" `Quick
      test_combine_equals_sequential;
    Alcotest.test_case "combine_empty" `Quick test_combine_empty_is_identity;
    Alcotest.test_case "track_peaks" `Quick test_track_peaks;
    Alcotest.test_case "apply_matrix_direct" `Quick test_apply_matrix_direct;
  ]
