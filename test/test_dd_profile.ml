(* Structural DD profiling: the walks on states whose shape is known in
   closed form, the cadence sink the engine emits through, the JSONL
   sidecar round-trip with located parse errors, and — the guarantee that
   makes always-on profiling hooks acceptable — a disabled profiler that
   allocates nothing. *)

open Util

let run_circuit ?strategy circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run ?strategy engine circuit;
  engine

(* -- walks over known states ----------------------------------------- *)

let test_ghz_profile () =
  let engine = run_circuit (Standard.ghz 4) in
  let s = Dd.Profile.vector (Dd_sim.Engine.state engine) in
  check_int "nodes" 7 s.Obs.Dd_profile.nodes;
  check_int "levels" 4 (List.length s.levels);
  (match s.levels with
  | top :: rest ->
    check_int "root level" 3 top.Obs.Dd_profile.level;
    check_int "one root node" 1 top.nodes;
    List.iter
      (fun (l : Obs.Dd_profile.level) ->
        check_int
          (Printf.sprintf "two nodes at level %d" l.level)
          2 l.nodes)
      rest
  | [] -> Alcotest.fail "no levels");
  check_float "GHZ branches share nothing" 1.0 s.sharing;
  check_float "no identity-region nodes" 0.0 s.identity_fraction

let test_plus_state_profile () =
  (* H on every qubit: one node per level, low = high everywhere, so the
     identity fraction is exactly 1 and every level holds one node *)
  let n = 5 in
  let circuit =
    Circuit.of_gates ~qubits:n (List.init n (fun q -> Gate.h q))
  in
  let engine = run_circuit circuit in
  let s = Dd.Profile.vector (Dd_sim.Engine.state engine) in
  check_int "one node per level" n s.Obs.Dd_profile.nodes;
  check_float "every node is identity-region" 1.0 s.identity_fraction;
  List.iter
    (fun (l : Obs.Dd_profile.level) ->
      check_int "single node" 1 l.nodes;
      check_int "two non-zero edges" 2 l.edges;
      check_int "no zero stubs" 0 l.zero_edges)
    s.levels

let test_basis_state_profile () =
  let n = 4 in
  let circuit = Circuit.of_gates ~qubits:n [ Gate.x 2 ] in
  let engine = run_circuit circuit in
  let s = Dd.Profile.vector (Dd_sim.Engine.state engine) in
  check_int "a path: one node per level" n s.Obs.Dd_profile.nodes;
  check_float "paths have no identity nodes" 0.0 s.identity_fraction;
  (* each node has exactly one non-zero edge and one zero stub *)
  List.iter
    (fun (l : Obs.Dd_profile.level) ->
      check_int "one live edge" 1 l.edges;
      check_int "one zero stub" 1 l.zero_edges)
    s.levels

let test_edge_totals_consistent () =
  let engine = run_circuit (Grover.circuit ~n:6 ~marked:13 ()) in
  let s = Dd.Profile.vector (Dd_sim.Engine.state engine) in
  let level_edges =
    List.fold_left
      (fun acc (l : Obs.Dd_profile.level) -> acc + l.edges)
      0 s.Obs.Dd_profile.levels
  in
  (* snapshot total includes the root edge on top of per-level out-edges *)
  check_int "totals add up" (level_edges + 1) s.edges;
  check_int "node count matches engine" (Dd_sim.Engine.state_node_count engine)
    s.nodes;
  check_bool "weights histogram is populated" true
    (List.exists
       (fun (l : Obs.Dd_profile.level) -> l.weights <> [])
       s.levels)

let test_matrix_profile_identity () =
  (* the identity matrix DD: every node is identity-region *)
  let ctx = fresh_ctx () in
  let e = Dd.Mdd.identity ctx 3 in
  let s = Dd.Profile.matrix e in
  check_int "identity has one node per level" 3 s.Obs.Dd_profile.nodes;
  check_float "all nodes identity-region" 1.0 s.identity_fraction;
  check_bool "dd kind is matrix" true (s.dd = "matrix")

(* -- sink cadence ----------------------------------------------------- *)

let test_null_sink_is_off () =
  check_bool "null sink is off" false (Obs.Dd_profile.is_on Obs.Dd_profile.null);
  check_bool "null sink is never due" false
    (Obs.Dd_profile.due Obs.Dd_profile.null ~gate:123);
  check_int "null sink records nothing" 0
    (Obs.Dd_profile.length Obs.Dd_profile.null)

let test_disabled_probe_allocates_nothing () =
  (* warm-up, then 100k probes of a disabled (null) sink must stay under
     the noise floor — the probe is one load and one branch *)
  ignore (Obs.Dd_profile.due Obs.Dd_profile.null ~gate:0);
  let before = Gc.minor_words () in
  for i = 1 to 100_000 do
    ignore (Obs.Dd_profile.due Obs.Dd_profile.null ~gate:i)
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "100k disabled probes allocated %.0f words" allocated)
    true (allocated < 256.)

let snapshot_gates sink =
  List.map
    (fun (s : Obs.Dd_profile.snapshot) -> s.gate_index)
    (Obs.Dd_profile.snapshots sink)

let test_cadence () =
  let sink = Obs.Dd_profile.create ~every:3 () in
  check_bool "fresh sink is due" true (Obs.Dd_profile.due sink ~gate:0);
  let emit gate =
    if Obs.Dd_profile.due sink ~gate then
      Obs.Dd_profile.emit sink
        {
          Obs.Dd_profile.gate_index = gate;
          t = 0.;
          dd = "vector";
          nodes = 1;
          edges = 1;
          sharing = 1.;
          identity_fraction = 0.;
          levels = [];
        }
  in
  for gate = 0 to 10 do
    emit gate
  done;
  check_bool "snapshots every 3 gates"
    true
    (snapshot_gates sink = [ 0; 3; 6; 9 ]);
  check_int "last gate" 9 (Obs.Dd_profile.last_gate sink)

let test_max_snapshots_drops () =
  let sink = Obs.Dd_profile.create ~every:1 ~max_snapshots:2 () in
  for gate = 0 to 4 do
    Obs.Dd_profile.emit sink
      {
        Obs.Dd_profile.gate_index = gate;
        t = 0.;
        dd = "vector";
        nodes = 1;
        edges = 1;
        sharing = 1.;
        identity_fraction = 0.;
        levels = [];
      }
  done;
  check_int "stored at most max_snapshots" 2 (Obs.Dd_profile.length sink);
  check_int "excess counted as dropped" 3 (Obs.Dd_profile.dropped sink)

(* -- engine integration ----------------------------------------------- *)

let profiled_run ?strategy ~every circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  let sink = Obs.Dd_profile.create ~every () in
  Dd_sim.Engine.set_profile engine sink;
  Dd_sim.Engine.run ?strategy engine circuit;
  (engine, sink)

let test_engine_emits_profile () =
  let circuit = Grover.circuit ~n:6 ~marked:5 () in
  let total = Circuit.gate_count circuit in
  let engine, sink = profiled_run ~every:4 circuit in
  let gates = snapshot_gates sink in
  check_bool "snapshots were taken" true (List.length gates > 2);
  check_bool "gates ascend" true (List.sort compare gates = gates);
  (* the run always closes with a final snapshot of the end state *)
  check_int "final snapshot at the last gate" total
    (Obs.Dd_profile.last_gate sink);
  let final = List.nth (Obs.Dd_profile.snapshots sink) (List.length gates - 1) in
  check_int "final snapshot profiles the end state"
    (Dd_sim.Engine.state_node_count engine)
    final.Obs.Dd_profile.nodes

let test_engine_profile_under_combining () =
  (* with a combining strategy, snapshots only land on exact gate
     prefixes, but the final state must still be profiled *)
  let circuit = Standard.ghz 6 in
  let engine, sink =
    profiled_run ~strategy:(Dd_sim.Strategy.K_operations 4) ~every:1 circuit
  in
  let final =
    List.nth
      (Obs.Dd_profile.snapshots sink)
      (Obs.Dd_profile.length sink - 1)
  in
  check_int "final snapshot matches state"
    (Dd_sim.Engine.state_node_count engine)
    final.Obs.Dd_profile.nodes;
  check_int "final gate is the full circuit" (Circuit.gate_count circuit)
    (Obs.Dd_profile.last_gate sink)

let test_default_engine_profile_is_null () =
  let engine = Dd_sim.Engine.create 3 in
  check_bool "default profile sink is off" false
    (Obs.Dd_profile.is_on (Dd_sim.Engine.profile engine))

(* -- JSONL sidecar ---------------------------------------------------- *)

let test_jsonl_round_trip () =
  let circuit = Grover.circuit ~n:5 ~marked:9 () in
  let _, sink = profiled_run ~every:2 circuit in
  let text = Obs.Dd_profile.jsonl ~meta:[ ("algo", "grover") ] sink in
  let run = Obs.Dd_profile.parse_jsonl text in
  check_int "version survives" Obs.Dd_profile.version run.run_version;
  check_int "every survives" 2 run.run_every;
  check_bool "meta survives" true (run.run_meta = [ ("algo", "grover") ]);
  check_int "snapshot count survives" (Obs.Dd_profile.length sink)
    (List.length run.run_snapshots);
  List.iter2
    (fun (a : Obs.Dd_profile.snapshot) (b : Obs.Dd_profile.snapshot) ->
      check_int "gate survives" a.gate_index b.gate_index;
      check_int "nodes survive" a.nodes b.nodes;
      check_int "edges survive" a.edges b.edges;
      check_bool "levels survive" true (a.levels = b.levels);
      check_bool "sharing survives" true
        (Float.abs (a.sharing -. b.sharing) < 1e-5))
    (Obs.Dd_profile.snapshots sink)
    run.run_snapshots

let expect_located_failure name expected_fragment thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected a Failure")
  | exception Failure message ->
    check_bool
      (Printf.sprintf "%s: %S mentions %S" name message expected_fragment)
      true
      (let n = String.length expected_fragment in
       let rec scan i =
         i + n <= String.length message
         && (String.sub message i n = expected_fragment || scan (i + 1))
       in
       scan 0)

let test_parse_errors_are_located () =
  expect_located_failure "empty" "empty" (fun () ->
      Obs.Dd_profile.parse_jsonl "");
  expect_located_failure "foreign schema" "profile:1" (fun () ->
      Obs.Dd_profile.parse_jsonl
        "{\"schema\":\"something-else\",\"version\":1}\n");
  expect_located_failure "bad version" "unsupported schema version" (fun () ->
      Obs.Dd_profile.parse_jsonl
        "{\"schema\":\"ddsim-profile\",\"version\":99}\n");
  expect_located_failure "malformed snapshot line" "profile:3" (fun () ->
      Obs.Dd_profile.parse_jsonl
        ("{\"schema\":\"ddsim-profile\",\"version\":1,\"every\":1}\n"
       ^ "{\"gate\":0,\"nodes\":1}\n" ^ "{not json\n"))

let suite =
  [
    Alcotest.test_case "ghz profile" `Quick test_ghz_profile;
    Alcotest.test_case "plus-state profile" `Quick test_plus_state_profile;
    Alcotest.test_case "basis-state profile" `Quick test_basis_state_profile;
    Alcotest.test_case "edge totals consistent" `Quick
      test_edge_totals_consistent;
    Alcotest.test_case "matrix identity profile" `Quick
      test_matrix_profile_identity;
    Alcotest.test_case "null sink off" `Quick test_null_sink_is_off;
    Alcotest.test_case "disabled probe allocates nothing" `Quick
      test_disabled_probe_allocates_nothing;
    Alcotest.test_case "cadence" `Quick test_cadence;
    Alcotest.test_case "max snapshots drops" `Quick test_max_snapshots_drops;
    Alcotest.test_case "engine emits profile" `Quick test_engine_emits_profile;
    Alcotest.test_case "profile under combining" `Quick
      test_engine_profile_under_combining;
    Alcotest.test_case "default engine sink is null" `Quick
      test_default_engine_profile_is_null;
    Alcotest.test_case "jsonl round trip" `Quick test_jsonl_round_trip;
    Alcotest.test_case "parse errors located" `Quick
      test_parse_errors_are_located;
  ]
