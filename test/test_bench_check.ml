(* The bench regression gate: metric classification, identity-keyed run
   pairing, tolerance semantics, and the committed BENCH_*.json baselines
   comparing clean against themselves. *)

open Util

let load name =
  let candidates =
    [
      Filename.concat "../../.." name;
      name;
      Filename.concat ".." name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail (Printf.sprintf "cannot locate %s" name)
  | Some path ->
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text

let compare ?tol baseline candidate =
  Obs.Bench_check.compare_strings ?tol ~baseline candidate

let regression_paths findings =
  List.filter_map
    (fun (f : Obs.Bench_check.finding) ->
      if f.severity = Obs.Bench_check.Regression then Some f.path else None)
    findings

(* -- committed baselines are self-clean -------------------------------- *)

let test_committed_baselines_self_compare () =
  List.iter
    (fun name ->
      let text = load name in
      let findings = compare text text in
      check_bool
        (Printf.sprintf "%s vs itself is clean" name)
        false
        (Obs.Bench_check.regressed findings))
    [ "BENCH_apply_smoke.json"; "BENCH_kernel_smoke.json" ]

(* -- tolerance semantics ----------------------------------------------- *)

let doc ~nodes ~seconds ~rate =
  Printf.sprintf
    "{\"schema\":\"test\",\"runs\":[{\"name\":\"r1\",\"final_state_nodes\":%d,\"wall_seconds\":%g,\"hit_rate\":%g}]}"
    nodes seconds rate

let base = doc ~nodes:100 ~seconds:1.0 ~rate:0.5

let test_identical_passes () =
  check_bool "identical docs are clean" false
    (Obs.Bench_check.regressed (compare base base))

let test_count_drift () =
  check_bool "5% node drift passes" false
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:105 ~seconds:1.0 ~rate:0.5)));
  let findings = compare base (doc ~nodes:150 ~seconds:1.0 ~rate:0.5) in
  check_bool "50% node drift fails" true (Obs.Bench_check.regressed findings);
  check_bool "finding names the metric" true
    (List.exists
       (fun path -> path = "$.runs[r1].final_state_nodes")
       (regression_paths findings))

let test_time_only_fails_when_slower () =
  check_bool "5x slower passes under the 10x budget" false
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:100 ~seconds:5.0 ~rate:0.5)));
  check_bool "20x slower fails" true
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:100 ~seconds:20.0 ~rate:0.5)));
  check_bool "100x faster passes" false
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:100 ~seconds:0.01 ~rate:0.5)))

let test_time_absolute_floor () =
  (* microsecond-scale smoke timings may blow the ratio but stay under
     the 0.1 s absolute floor *)
  let fast = doc ~nodes:100 ~seconds:1e-5 ~rate:0.5 in
  let jittery = doc ~nodes:100 ~seconds:9e-3 ~rate:0.5 in
  check_bool "sub-floor jitter passes despite a 900x ratio" false
    (Obs.Bench_check.regressed (compare fast jittery))

let test_rate_tolerance () =
  check_bool "rate moved 0.1 passes under 0.15" false
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:100 ~seconds:1.0 ~rate:0.6)));
  check_bool "rate moved 0.3 fails" true
    (Obs.Bench_check.regressed
       (compare base (doc ~nodes:100 ~seconds:1.0 ~rate:0.2)))

let test_custom_tolerances () =
  let tol =
    { Obs.Bench_check.time_ratio = 2.; count_ratio = 0.01; rate_tol = 0.01 }
  in
  check_bool "5% drift fails under a 1% budget" true
    (Obs.Bench_check.regressed
       (compare ~tol base (doc ~nodes:105 ~seconds:1.0 ~rate:0.5)))

(* -- structural failures ----------------------------------------------- *)

let test_missing_run_fails () =
  let two =
    "{\"runs\":[{\"name\":\"r1\",\"nodes\":5},{\"name\":\"r2\",\"nodes\":7}]}"
  in
  let one = "{\"runs\":[{\"name\":\"r1\",\"nodes\":5}]}" in
  let findings = compare two one in
  check_bool "dropped run fails" true (Obs.Bench_check.regressed findings);
  check_bool "finding names the run" true
    (List.exists (fun p -> p = "$.runs[r2]") (regression_paths findings))

let test_new_run_is_note_only () =
  let one = "{\"runs\":[{\"name\":\"r1\",\"nodes\":5}]}" in
  let two =
    "{\"runs\":[{\"name\":\"r1\",\"nodes\":5},{\"name\":\"r2\",\"nodes\":7}]}"
  in
  let findings = compare one two in
  check_bool "extra run does not fail" false
    (Obs.Bench_check.regressed findings);
  check_bool "but is noted" true
    (List.exists
       (fun (f : Obs.Bench_check.finding) ->
         f.severity = Obs.Bench_check.Note && f.path = "$.runs[r2]")
       findings)

let test_missing_metric_fails () =
  let findings =
    compare "{\"runs\":[{\"name\":\"r1\",\"nodes\":5,\"edges\":9}]}"
      "{\"runs\":[{\"name\":\"r1\",\"nodes\":5}]}"
  in
  check_bool "dropped metric fails" true (Obs.Bench_check.regressed findings)

let test_changed_identity_string_fails () =
  check_bool "changed strategy string fails" true
    (Obs.Bench_check.regressed
       (compare "{\"strategy\":\"seq\"}" "{\"strategy\":\"k:4\"}"))

let test_numeric_arrays_are_data () =
  (* trajectories are data, not metrics: element changes don't regress *)
  check_bool "numeric array changes pass" false
    (Obs.Bench_check.regressed
       (compare "{\"trajectory\":[1,2,3]}" "{\"trajectory\":[4,5,6,7]}"))

let test_parse_failure_is_a_finding () =
  let findings = compare "{not json" base in
  check_bool "parse failure regresses" true
    (Obs.Bench_check.regressed findings)

let test_render_verdict () =
  let clean = Obs.Bench_check.render (compare base base) in
  check_bool "clean verdict" true
    (String.length clean >= 14 && String.sub clean 0 14 = "bench-check OK");
  let failed =
    Obs.Bench_check.render
      (compare base (doc ~nodes:999 ~seconds:1.0 ~rate:0.5))
  in
  check_bool "failed verdict mentions REGRESSION" true
    (String.length failed >= 10 && String.sub failed 0 10 = "REGRESSION")


let test_informational_metrics_never_gate () =
  (* pool_* / lock_* leaves are scheduling-dependent: any drift passes,
     even wild ones, and produces no finding at all *)
  let doc busy contended =
    Printf.sprintf
      "{\"runs\":[{\"name\":\"r1\",\"nodes\":5,\"parallel\":{\"pool_busy_seconds\":%g,\"pool_tasks\":%d,\"lock_contended\":%d}}]}"
      busy (int_of_float (busy *. 100.)) contended
  in
  let findings = compare (doc 0.001 0) (doc 50.0 99999) in
  check_bool "wild informational drift passes" false
    (Obs.Bench_check.regressed findings);
  check_bool "and produces no finding" true (findings = []);
  (* pool_busy_seconds contains "seconds": the informational class must
     win over the time class, so even a >10x-with-floor move passes *)
  check_bool "informational beats the time classifier" false
    (Obs.Bench_check.regressed (compare (doc 0.01 0) (doc 10.0 0)));
  (* a *missing* informational metric is still a structural failure *)
  let without =
    "{\"runs\":[{\"name\":\"r1\",\"nodes\":5,\"parallel\":{\"pool_tasks\":1,\"lock_contended\":0}}]}"
  in
  check_bool "dropping an informational metric still fails" true
    (Obs.Bench_check.regressed (compare (doc 1.0 0) without))

let suite =
  [
    Alcotest.test_case "committed baselines self-compare" `Quick
      test_committed_baselines_self_compare;
    Alcotest.test_case "identical passes" `Quick test_identical_passes;
    Alcotest.test_case "count drift" `Quick test_count_drift;
    Alcotest.test_case "time only fails when slower" `Quick
      test_time_only_fails_when_slower;
    Alcotest.test_case "time absolute floor" `Quick test_time_absolute_floor;
    Alcotest.test_case "rate tolerance" `Quick test_rate_tolerance;
    Alcotest.test_case "custom tolerances" `Quick test_custom_tolerances;
    Alcotest.test_case "missing run fails" `Quick test_missing_run_fails;
    Alcotest.test_case "new run is note only" `Quick test_new_run_is_note_only;
    Alcotest.test_case "missing metric fails" `Quick test_missing_metric_fails;
    Alcotest.test_case "changed identity fails" `Quick
      test_changed_identity_string_fails;
    Alcotest.test_case "numeric arrays are data" `Quick
      test_numeric_arrays_are_data;
    Alcotest.test_case "parse failure is a finding" `Quick
      test_parse_failure_is_a_finding;
    Alcotest.test_case "render verdict" `Quick test_render_verdict;
    Alcotest.test_case "informational metrics never gate" `Quick
      test_informational_metrics_never_gate;
  ]
