open Util

(* The heart of the paper: every combination strategy must produce exactly
   the same final state as the sequential baseline — matrix multiplication
   is associative (Eq. 1 vs Eq. 2) — while trading matrix-vector for
   matrix-matrix multiplications. *)

let strategies =
  [
    Dd_sim.Strategy.Sequential;
    Dd_sim.Strategy.K_operations 1;
    Dd_sim.Strategy.K_operations 2;
    Dd_sim.Strategy.K_operations 3;
    Dd_sim.Strategy.K_operations 8;
    Dd_sim.Strategy.K_operations 1000;
    Dd_sim.Strategy.Max_size 1;
    Dd_sim.Strategy.Max_size 16;
    Dd_sim.Strategy.Max_size 4096;
  ]

let run_with strategy circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.run ~strategy engine circuit;
  engine

let test_all_strategies_agree () =
  List.iter
    (fun seed ->
      let circuit = Standard.random_circuit ~seed ~qubits:5 ~gates:40 () in
      let reference = dense_state_of_circuit circuit in
      List.iter
        (fun strategy ->
          let engine = run_with strategy circuit in
          check_float
            (Printf.sprintf "seed %d, strategy %s" seed
               (Dd_sim.Strategy.to_string strategy))
            1.
            (Dd_sim.Engine.fidelity_dense engine reference))
        strategies)
    [ 100; 200 ]

let test_strategies_agree_canonically () =
  (* not just numerically equal: the canonical DD edges must coincide *)
  let circuit = Standard.random_circuit ~seed:77 ~qubits:5 ~gates:30 () in
  let ctx = fresh_ctx () in
  let run strategy =
    let engine = Dd_sim.Engine.create ~context:ctx 5 in
    Dd_sim.Engine.run ~strategy engine circuit;
    Dd_sim.Engine.state engine
  in
  let reference = run Dd_sim.Strategy.Sequential in
  List.iter
    (fun strategy ->
      check_bool
        ("canonical equality for " ^ Dd_sim.Strategy.to_string strategy)
        true
        (Dd.Vdd.equal reference (run strategy)))
    [ Dd_sim.Strategy.K_operations 4; Dd_sim.Strategy.Max_size 64 ]

let test_k_operations_counts () =
  let gates = 24 and k = 4 in
  let circuit = Standard.random_circuit ~seed:9 ~qubits:4 ~gates () in
  let engine = run_with (Dd_sim.Strategy.K_operations k) circuit in
  let stats = Dd_sim.Engine.stats engine in
  check_int "mat-vec count is gates/k" (gates / k)
    stats.Dd_sim.Sim_stats.mat_vec_mults;
  check_int "mat-mat count is gates - gates/k" (gates - (gates / k))
    stats.Dd_sim.Sim_stats.mat_mat_mults

let test_k_operations_remainder_flushed () =
  let circuit = Standard.random_circuit ~seed:9 ~qubits:4 ~gates:10 () in
  let engine = run_with (Dd_sim.Strategy.K_operations 4) circuit in
  let stats = Dd_sim.Engine.stats engine in
  (* 10 gates with k=4: windows of 4, 4, 2 -> 3 applications *)
  check_int "trailing partial window applied" 3
    stats.Dd_sim.Sim_stats.mat_vec_mults

let test_k1_equals_sequential_counts () =
  let circuit = Standard.random_circuit ~seed:4 ~qubits:4 ~gates:15 () in
  let engine = run_with (Dd_sim.Strategy.K_operations 1) circuit in
  let stats = Dd_sim.Engine.stats engine in
  check_int "k=1 does one mat-vec per gate" 15
    stats.Dd_sim.Sim_stats.mat_vec_mults;
  check_int "k=1 does no mat-mat" 0 stats.Dd_sim.Sim_stats.mat_mat_mults

let test_max_size_combines () =
  let circuit = Standard.random_circuit ~seed:6 ~qubits:5 ~gates:40 () in
  let engine = run_with (Dd_sim.Strategy.Max_size 4096) circuit in
  let stats = Dd_sim.Engine.stats engine in
  check_bool "a generous bound combines down to few applications" true
    (stats.Dd_sim.Sim_stats.mat_vec_mults
     < stats.Dd_sim.Sim_stats.gates_seen);
  check_bool "mat-mat multiplications happened" true
    (stats.Dd_sim.Sim_stats.mat_mat_mults > 0)

let test_max_size_tiny_bound_is_sequentialish () =
  let circuit = Standard.random_circuit ~seed:6 ~qubits:5 ~gates:40 () in
  let engine = run_with (Dd_sim.Strategy.Max_size 1) circuit in
  let stats = Dd_sim.Engine.stats engine in
  (* every single-gate DD already exceeds one node, so no combination *)
  check_int "bound 1 applies every gate individually" 40
    stats.Dd_sim.Sim_stats.mat_vec_mults

let test_use_repeating_agrees () =
  let circuit = Grover.circuit ~n:7 ~marked:5 () in
  let plain = run_with Dd_sim.Strategy.Sequential circuit in
  let repeating = Dd_sim.Engine.create 7 in
  Dd_sim.Engine.run ~use_repeating:true repeating circuit;
  check_cnum_array "DD-repeating result equals sequential"
    (Dd.Vdd.to_array (Dd_sim.Engine.state plain) ~n:7)
    (Dd.Vdd.to_array (Dd_sim.Engine.state repeating) ~n:7)

let test_use_repeating_reduces_matvecs () =
  let circuit = Grover.circuit ~n:7 ~marked:3 () in
  let plain = run_with Dd_sim.Strategy.Sequential circuit in
  let repeating = Dd_sim.Engine.create 7 in
  Dd_sim.Engine.run ~use_repeating:true repeating circuit;
  let p = Dd_sim.Engine.stats plain and r = Dd_sim.Engine.stats repeating in
  check_bool "one mat-vec per iteration instead of per gate" true
    (r.Dd_sim.Sim_stats.mat_vec_mults < p.Dd_sim.Sim_stats.mat_vec_mults / 4)

let test_repeating_combines_once () =
  let circuit =
    Circuit.create ~qubits:3
      [
        Circuit.repeat 10
          [ Circuit.gate (Gate.h 0); Circuit.gate (Gate.cx 0 1) ];
      ]
  in
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.run ~use_repeating:true engine circuit;
  let stats = Dd_sim.Engine.stats engine in
  (* body of 2 gates -> 1 mat-mat, then 10 mat-vec applications *)
  check_int "mat-mat once" 1 stats.Dd_sim.Sim_stats.mat_mat_mults;
  check_int "mat-vec per repetition" 10 stats.Dd_sim.Sim_stats.mat_vec_mults

let test_strategy_parsing () =
  let roundtrip s = Dd_sim.Strategy.(of_string (to_string s)) in
  check_bool "seq" true (roundtrip Dd_sim.Strategy.Sequential = Ok Dd_sim.Strategy.Sequential);
  check_bool "k" true
    (roundtrip (Dd_sim.Strategy.K_operations 7)
    = Ok (Dd_sim.Strategy.K_operations 7));
  check_bool "size" true
    (roundtrip (Dd_sim.Strategy.Max_size 99)
    = Ok (Dd_sim.Strategy.Max_size 99));
  check_bool "garbage rejected" true
    (match Dd_sim.Strategy.of_string "bogus" with
    | Error _ -> true
    | Ok _ -> false);
  check_bool "k:0 rejected" true
    (match Dd_sim.Strategy.of_string "k:0" with
    | Error _ -> true
    | Ok _ -> false)

let test_strategy_roundtrip_all () =
  List.iter
    (fun strategy ->
      check_bool
        ("round-trip " ^ Dd_sim.Strategy.to_string strategy)
        true
        (Dd_sim.Strategy.(of_string (to_string strategy)) = Ok strategy))
    strategies

let test_degenerate_strategy_strings_rejected () =
  let rejected_with input expected =
    match Dd_sim.Strategy.of_string input with
    | Ok _ -> Alcotest.fail (input ^ " was accepted")
    | Error message ->
      Alcotest.(check string) (input ^ " message") expected message
  in
  rejected_with "k:0" "k must be >= 1 (got 0)";
  rejected_with "size:-5" "size must be >= 1 (got -5)";
  rejected_with "k:99999999999999999999"
    "k parameter \"99999999999999999999\" is not a representable integer";
  rejected_with "size:1e3"
    "size parameter \"1e3\" is not a representable integer";
  rejected_with "k:" "cannot parse strategy \"k:\" (expected seq, k:N or size:N)"

let test_invalid_strategy_rejected () =
  let engine = Dd_sim.Engine.create 2 in
  Alcotest.check_raises "k=0"
    (Dd_sim.Error.Error
       (Dd_sim.Error.Invalid_parameter
          { what = "Strategy"; message = "k must be >= 1 (got 0)" }))
    (fun () ->
      Dd_sim.Engine.run
        ~strategy:(Dd_sim.Strategy.K_operations 0)
        engine (Standard.bell ()))

let suite =
  [
    Alcotest.test_case "all_strategies_agree" `Quick
      test_all_strategies_agree;
    Alcotest.test_case "canonical_agreement" `Quick
      test_strategies_agree_canonically;
    Alcotest.test_case "k_operations_counts" `Quick test_k_operations_counts;
    Alcotest.test_case "k_remainder_flushed" `Quick
      test_k_operations_remainder_flushed;
    Alcotest.test_case "k1_equals_sequential" `Quick
      test_k1_equals_sequential_counts;
    Alcotest.test_case "max_size_combines" `Quick test_max_size_combines;
    Alcotest.test_case "max_size_tiny_bound" `Quick
      test_max_size_tiny_bound_is_sequentialish;
    Alcotest.test_case "use_repeating_agrees" `Quick
      test_use_repeating_agrees;
    Alcotest.test_case "repeating_reduces_matvecs" `Quick
      test_use_repeating_reduces_matvecs;
    Alcotest.test_case "repeating_combines_once" `Quick
      test_repeating_combines_once;
    Alcotest.test_case "strategy_parsing" `Quick test_strategy_parsing;
    Alcotest.test_case "strategy_roundtrip_all" `Quick
      test_strategy_roundtrip_all;
    Alcotest.test_case "degenerate_strategy_strings" `Quick
      test_degenerate_strategy_strings_rejected;
    Alcotest.test_case "invalid_strategy" `Quick
      test_invalid_strategy_rejected;
  ]
