(* The domain-parallel kernel's contract: a pool run must be an
   *observationally* faithful replacement for the sequential one.  At
   [--domains 1] the engine takes the legacy code paths, so the tests
   concentrate on what multi-domain runs promise — final amplitudes equal
   within the interning tolerance, sampling outcomes *exactly* identical
   across pool sizes, structured [Worker_failure] (never a crash or a
   leaked domain) when a task dies in a worker, and a pool whose results
   come back in submission order with exceptions captured per-task. *)

open Util

let with_fault ?seed plan body =
  Fault.arm ?seed plan;
  Fun.protect ~finally:Fault.disarm body

let amplitudes engine =
  let n = Dd_sim.Engine.qubits engine in
  Array.init (1 lsl n) (fun i -> Dd_sim.Engine.amplitude engine i)

let run_with ~domains ~k circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.set_domains engine domains;
  Dd_sim.Engine.run
    ~strategy:(Dd_sim.Strategy.K_operations k)
    engine circuit;
  engine

(* -- the pool itself ------------------------------------------------- *)

let test_pool_results_in_order () =
  let pool = Dd_sim.Domain_pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Dd_sim.Domain_pool.shutdown pool)
    (fun () ->
      check_int "pool size" 3 (Dd_sim.Domain_pool.size pool);
      let results =
        Dd_sim.Domain_pool.run_all pool
          (Array.init 20 (fun i () -> i * i))
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int (Printf.sprintf "task %d result" i) (i * i) v
          | Error e -> Alcotest.failf "task %d raised %s" i (Printexc.to_string e))
        results;
      (* a raising task is captured, not propagated, and its neighbours
         still complete *)
      let mixed =
        Dd_sim.Domain_pool.run_all pool
          [|
            (fun () -> 1);
            (fun () -> failwith "boom");
            (fun () -> 3);
          |]
      in
      (match mixed.(0) with
      | Ok 1 -> ()
      | _ -> Alcotest.fail "task 0 should succeed");
      (match mixed.(1) with
      | Error (Failure msg) when msg = "boom" -> ()
      | _ -> Alcotest.fail "task 1 exception should be captured");
      match mixed.(2) with
      | Ok 3 -> ()
      | _ -> Alcotest.fail "task 2 should succeed")

let test_pool_shutdown_idempotent () =
  let pool = Dd_sim.Domain_pool.create ~domains:2 in
  let r = Dd_sim.Domain_pool.run_all pool [| (fun () -> 42) |] in
  (match r.(0) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "single task");
  Dd_sim.Domain_pool.shutdown pool;
  Dd_sim.Domain_pool.shutdown pool;
  check_bool "invalid size rejected" true
    (match Dd_sim.Domain_pool.create ~domains:0 with
    | exception Invalid_argument _ -> true
    | pool ->
        Dd_sim.Domain_pool.shutdown pool;
        false)

let test_set_domains_validates () =
  let engine = Dd_sim.Engine.create 2 in
  check_int "default domains" 1 (Dd_sim.Engine.domains engine);
  Dd_sim.Engine.set_domains engine 4;
  check_int "domains recorded" 4 (Dd_sim.Engine.domains engine);
  check_bool "zero rejected" true
    (match Dd_sim.Engine.set_domains engine 0 with
    | exception Dd_sim.Error.Error (Dd_sim.Error.Invalid_parameter _) -> true
    | () -> false)

(* -- parallel runs agree with sequential ones ------------------------ *)

let test_run_matches_sequential () =
  let circuit = Standard.random_circuit ~seed:7 ~qubits:5 ~gates:40 () in
  let seq = run_with ~domains:1 ~k:4 circuit in
  let par = run_with ~domains:4 ~k:4 circuit in
  check_cnum_array "k:4 amplitudes, 4 domains vs 1" (amplitudes seq)
    (amplitudes par);
  check_int "stats record the pool size" 4
    (Dd_sim.Engine.stats par).Dd_sim.Sim_stats.domains;
  check_int "same gates seen"
    (Dd_sim.Engine.stats seq).Dd_sim.Sim_stats.gates_seen
    (Dd_sim.Engine.stats par).Dd_sim.Sim_stats.gates_seen

let test_combine_parallel_matches_combine () =
  let circuit = Standard.random_circuit ~seed:11 ~qubits:4 ~gates:12 () in
  let gates = Circuit.flatten circuit in
  let seq = Dd_sim.Engine.create 4 in
  let combined_seq = Dd_sim.Engine.combine seq gates in
  Dd_sim.Engine.apply_matrix seq combined_seq;
  let par = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_domains par 4;
  let mats = List.map (Dd_sim.Engine.gate_dd par) gates in
  let combined_par = Dd_sim.Engine.combine_parallel par mats in
  Dd_sim.Engine.apply_matrix par combined_par;
  check_cnum_array "tree-reduced product acts like the sequential fold"
    (amplitudes seq) (amplitudes par)

let prop_parallel_run_matches =
  QCheck.Test.make
    ~name:"parallel k-window runs match sequential amplitudes"
    ~count:15
    (QCheck.triple
       (QCheck.make
          ~print:(fun seed -> Printf.sprintf "random_circuit seed %d" seed)
          QCheck.Gen.(0 -- 10000))
       (QCheck.oneofl [ 2; 4 ])
       (QCheck.oneofl [ 2; 4 ]))
  @@ fun (seed, k, domains) ->
  let circuit = Standard.random_circuit ~seed ~qubits:4 ~gates:24 () in
  let seq = run_with ~domains:1 ~k circuit in
  let par = run_with ~domains ~k circuit in
  let a = amplitudes seq and b = amplitudes par in
  Array.for_all2
    (fun x y -> Dd_complex.Cnum.approx_equal ~tol:1e-9 x y)
    a b

(* -- sampling is exactly deterministic across pool sizes ------------- *)

let test_sample_shots_pool_independent () =
  let circuit = Standard.random_circuit ~seed:3 ~qubits:6 ~gates:50 () in
  let shots_with domains =
    let engine = Dd_sim.Engine.create ~seed:0xBEEF Circuit.(circuit.qubits) in
    Dd_sim.Engine.run engine circuit;
    Dd_sim.Engine.set_domains engine domains;
    Dd_sim.Engine.sample_shots engine 128
  in
  let one = shots_with 1 in
  let three = shots_with 3 in
  let four = shots_with 4 in
  check_int "shot count" 128 (Array.length one);
  check_bool "1 domain = 3 domains, bitwise" true (one = three);
  check_bool "1 domain = 4 domains, bitwise" true (one = four)

let test_sample_shots_edges () =
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.set_domains engine 4;
  check_int "zero shots" 0 (Array.length (Dd_sim.Engine.sample_shots engine 0));
  check_bool "negative shots rejected" true
    (match Dd_sim.Engine.sample_shots engine (-1) with
    | exception Dd_sim.Error.Error (Dd_sim.Error.Invalid_parameter _) -> true
    | _ -> false);
  (* |000> state: every shot is 0, whatever the pool size *)
  let shots = Dd_sim.Engine.sample_shots engine 17 in
  Array.iteri (fun i s -> check_int (Printf.sprintf "shot %d" i) 0 s) shots

(* -- a task dying in a worker surfaces as Worker_failure ------------- *)

let test_worker_alloc_failure_is_structured () =
  (* Build the operation DDs *before* arming so construction cannot trip
     the fault; the first fresh product node inside the pooled reduction
     then hits [Alloc_fail] and must come back as the structured error,
     with every worker domain joined (combine_parallel's protect). *)
  let circuit = Standard.random_circuit ~seed:5 ~qubits:4 ~gates:8 () in
  let gates = Circuit.flatten circuit in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_domains engine 2;
  let mats = List.map (Dd_sim.Engine.gate_dd engine) gates in
  (match
     with_fault
       [ (Fault.Alloc_fail, Fault.Always) ]
       (fun () -> Dd_sim.Engine.combine_parallel engine mats)
   with
  | exception Dd_sim.Error.Error (Dd_sim.Error.Worker_failure { task; message })
    ->
      check_bool "failure names the parallel section" true
        (task = "window product");
      check_bool "failure carries the original exception" true
        (String.length message > 0)
  | exception e ->
      Alcotest.failf "expected Worker_failure, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Worker_failure, combine succeeded");
  (* the engine and its tables survive the failed attempt: the same
     combination succeeds once the fault is disarmed *)
  let combined = Dd_sim.Engine.combine_parallel engine mats in
  Dd_sim.Engine.apply_matrix engine combined;
  let seq = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.apply_matrix seq (Dd_sim.Engine.combine seq gates);
  check_cnum_array "post-fault combine still correct" (amplitudes seq)
    (amplitudes engine)

let test_audit_passes_after_parallel_run () =
  let circuit = Standard.random_circuit ~seed:13 ~qubits:5 ~gates:60 () in
  let engine = run_with ~domains:4 ~k:4 circuit in
  check_int "auditor finds no violations after concurrent interning" 0
    (Dd_sim.Engine.audit_now engine)

let suite =
  [
    Alcotest.test_case "pool returns results in submission order" `Quick
      test_pool_results_in_order;
    Alcotest.test_case "pool shutdown is idempotent; size validated" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "set_domains validates its argument" `Quick
      test_set_domains_validates;
    Alcotest.test_case "4-domain k-window run matches sequential" `Quick
      test_run_matches_sequential;
    Alcotest.test_case "combine_parallel matches combine" `Quick
      test_combine_parallel_matches_combine;
    Alcotest.test_case "sample_shots is independent of the pool size" `Quick
      test_sample_shots_pool_independent;
    Alcotest.test_case "sample_shots edge cases" `Quick test_sample_shots_edges;
    Alcotest.test_case "worker allocation failure is a structured error"
      `Quick test_worker_alloc_failure_is_structured;
    Alcotest.test_case "auditor is clean after a parallel run" `Quick
      test_audit_passes_after_parallel_run;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_parallel_run_matches ]
