(* The domain-parallel kernel's contract: a pool run must be an
   *observationally* faithful replacement for the sequential one.  At
   [--domains 1] the engine takes the legacy code paths, so the tests
   concentrate on what multi-domain runs promise — final amplitudes equal
   within the interning tolerance, sampling outcomes *exactly* identical
   across pool sizes, structured [Worker_failure] (never a crash or a
   leaked domain) when a task dies in a worker, and a pool whose results
   come back in submission order with exceptions captured per-task. *)

open Util

let with_fault ?seed plan body =
  Fault.arm ?seed plan;
  Fun.protect ~finally:Fault.disarm body

let amplitudes engine =
  let n = Dd_sim.Engine.qubits engine in
  Array.init (1 lsl n) (fun i -> Dd_sim.Engine.amplitude engine i)

let run_with ~domains ~k circuit =
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.set_domains engine domains;
  Dd_sim.Engine.run
    ~strategy:(Dd_sim.Strategy.K_operations k)
    engine circuit;
  engine

(* -- the pool itself ------------------------------------------------- *)

let test_pool_results_in_order () =
  let pool = Dd_sim.Domain_pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Dd_sim.Domain_pool.shutdown pool)
    (fun () ->
      check_int "pool size" 3 (Dd_sim.Domain_pool.size pool);
      let results =
        Dd_sim.Domain_pool.run_all pool
          (Array.init 20 (fun i () -> i * i))
      in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int (Printf.sprintf "task %d result" i) (i * i) v
          | Error e -> Alcotest.failf "task %d raised %s" i (Printexc.to_string e))
        results;
      (* a raising task is captured, not propagated, and its neighbours
         still complete *)
      let mixed =
        Dd_sim.Domain_pool.run_all pool
          [|
            (fun () -> 1);
            (fun () -> failwith "boom");
            (fun () -> 3);
          |]
      in
      (match mixed.(0) with
      | Ok 1 -> ()
      | _ -> Alcotest.fail "task 0 should succeed");
      (match mixed.(1) with
      | Error (Failure msg) when msg = "boom" -> ()
      | _ -> Alcotest.fail "task 1 exception should be captured");
      match mixed.(2) with
      | Ok 3 -> ()
      | _ -> Alcotest.fail "task 2 should succeed")

let test_pool_shutdown_idempotent () =
  let pool = Dd_sim.Domain_pool.create ~domains:2 in
  let r = Dd_sim.Domain_pool.run_all pool [| (fun () -> 42) |] in
  (match r.(0) with
  | Ok 42 -> ()
  | _ -> Alcotest.fail "single task");
  Dd_sim.Domain_pool.shutdown pool;
  Dd_sim.Domain_pool.shutdown pool;
  check_bool "invalid size rejected" true
    (match Dd_sim.Domain_pool.create ~domains:0 with
    | exception Invalid_argument _ -> true
    | pool ->
        Dd_sim.Domain_pool.shutdown pool;
        false)

let test_set_domains_validates () =
  let engine = Dd_sim.Engine.create 2 in
  check_int "default domains" 1 (Dd_sim.Engine.domains engine);
  Dd_sim.Engine.set_domains engine 4;
  check_int "domains recorded" 4 (Dd_sim.Engine.domains engine);
  check_bool "zero rejected" true
    (match Dd_sim.Engine.set_domains engine 0 with
    | exception Dd_sim.Error.Error (Dd_sim.Error.Invalid_parameter _) -> true
    | () -> false)

(* -- parallel runs agree with sequential ones ------------------------ *)

let test_run_matches_sequential () =
  let circuit = Standard.random_circuit ~seed:7 ~qubits:5 ~gates:40 () in
  let seq = run_with ~domains:1 ~k:4 circuit in
  let par = run_with ~domains:4 ~k:4 circuit in
  check_cnum_array "k:4 amplitudes, 4 domains vs 1" (amplitudes seq)
    (amplitudes par);
  check_int "stats record the pool size" 4
    (Dd_sim.Engine.stats par).Dd_sim.Sim_stats.domains;
  check_int "same gates seen"
    (Dd_sim.Engine.stats seq).Dd_sim.Sim_stats.gates_seen
    (Dd_sim.Engine.stats par).Dd_sim.Sim_stats.gates_seen

let test_combine_parallel_matches_combine () =
  let circuit = Standard.random_circuit ~seed:11 ~qubits:4 ~gates:12 () in
  let gates = Circuit.flatten circuit in
  let seq = Dd_sim.Engine.create 4 in
  let combined_seq = Dd_sim.Engine.combine seq gates in
  Dd_sim.Engine.apply_matrix seq combined_seq;
  let par = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_domains par 4;
  let mats = List.map (Dd_sim.Engine.gate_dd par) gates in
  let combined_par = Dd_sim.Engine.combine_parallel par mats in
  Dd_sim.Engine.apply_matrix par combined_par;
  check_cnum_array "tree-reduced product acts like the sequential fold"
    (amplitudes seq) (amplitudes par)

let prop_parallel_run_matches =
  QCheck.Test.make
    ~name:"parallel k-window runs match sequential amplitudes"
    ~count:15
    (QCheck.triple
       (QCheck.make
          ~print:(fun seed -> Printf.sprintf "random_circuit seed %d" seed)
          QCheck.Gen.(0 -- 10000))
       (QCheck.oneofl [ 2; 4 ])
       (QCheck.oneofl [ 2; 4 ]))
  @@ fun (seed, k, domains) ->
  let circuit = Standard.random_circuit ~seed ~qubits:4 ~gates:24 () in
  let seq = run_with ~domains:1 ~k circuit in
  let par = run_with ~domains ~k circuit in
  let a = amplitudes seq and b = amplitudes par in
  Array.for_all2
    (fun x y -> Dd_complex.Cnum.approx_equal ~tol:1e-9 x y)
    a b

(* -- sampling is exactly deterministic across pool sizes ------------- *)

let test_sample_shots_pool_independent () =
  let circuit = Standard.random_circuit ~seed:3 ~qubits:6 ~gates:50 () in
  let shots_with domains =
    let engine = Dd_sim.Engine.create ~seed:0xBEEF Circuit.(circuit.qubits) in
    Dd_sim.Engine.run engine circuit;
    Dd_sim.Engine.set_domains engine domains;
    Dd_sim.Engine.sample_shots engine 128
  in
  let one = shots_with 1 in
  let three = shots_with 3 in
  let four = shots_with 4 in
  check_int "shot count" 128 (Array.length one);
  check_bool "1 domain = 3 domains, bitwise" true (one = three);
  check_bool "1 domain = 4 domains, bitwise" true (one = four)

let test_sample_shots_edges () =
  let engine = Dd_sim.Engine.create 3 in
  Dd_sim.Engine.set_domains engine 4;
  check_int "zero shots" 0 (Array.length (Dd_sim.Engine.sample_shots engine 0));
  check_bool "negative shots rejected" true
    (match Dd_sim.Engine.sample_shots engine (-1) with
    | exception Dd_sim.Error.Error (Dd_sim.Error.Invalid_parameter _) -> true
    | _ -> false);
  (* |000> state: every shot is 0, whatever the pool size *)
  let shots = Dd_sim.Engine.sample_shots engine 17 in
  Array.iteri (fun i s -> check_int (Printf.sprintf "shot %d" i) 0 s) shots

(* -- a task dying in a worker surfaces as Worker_failure ------------- *)

let test_worker_alloc_failure_is_structured () =
  (* Build the operation DDs *before* arming so construction cannot trip
     the fault; the first fresh product node inside the pooled reduction
     then hits [Alloc_fail] and must come back as the structured error,
     with every worker domain joined (combine_parallel's protect). *)
  let circuit = Standard.random_circuit ~seed:5 ~qubits:4 ~gates:8 () in
  let gates = Circuit.flatten circuit in
  let engine = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.set_domains engine 2;
  let mats = List.map (Dd_sim.Engine.gate_dd engine) gates in
  (match
     with_fault
       [ (Fault.Alloc_fail, Fault.Always) ]
       (fun () -> Dd_sim.Engine.combine_parallel engine mats)
   with
  | exception Dd_sim.Error.Error (Dd_sim.Error.Worker_failure { task; message })
    ->
      check_bool "failure names the parallel section" true
        (task = "window product");
      check_bool "failure carries the original exception" true
        (String.length message > 0)
  | exception e ->
      Alcotest.failf "expected Worker_failure, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Worker_failure, combine succeeded");
  (* the engine and its tables survive the failed attempt: the same
     combination succeeds once the fault is disarmed *)
  let combined = Dd_sim.Engine.combine_parallel engine mats in
  Dd_sim.Engine.apply_matrix engine combined;
  let seq = Dd_sim.Engine.create 4 in
  Dd_sim.Engine.apply_matrix seq (Dd_sim.Engine.combine seq gates);
  check_cnum_array "post-fault combine still correct" (amplitudes seq)
    (amplitudes engine)

let test_audit_passes_after_parallel_run () =
  let circuit = Standard.random_circuit ~seed:13 ~qubits:5 ~gates:60 () in
  let engine = run_with ~domains:4 ~k:4 circuit in
  check_int "auditor finds no violations after concurrent interning" 0
    (Dd_sim.Engine.audit_now engine)


(* -- utilization accounting ------------------------------------------ *)

let test_pool_utilization_accounting () =
  check_int "the caller's crew index is 0" 0 (Dd_sim.Domain_pool.self_index ());
  let pool = Dd_sim.Domain_pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Dd_sim.Domain_pool.shutdown pool)
    (fun () ->
      let indices = Array.make 24 (-1) in
      ignore
        (Dd_sim.Domain_pool.run_all pool
           (Array.init 24 (fun i () ->
                indices.(i) <- Dd_sim.Domain_pool.self_index ())));
      Array.iteri
        (fun i idx ->
          check_bool
            (Printf.sprintf "task %d ran on a crew index in [0,3)" i)
            true
            (idx >= 0 && idx < 3))
        indices;
      (* a raising task still counts toward utilization (a faulted run
         must report the time its crew actually spent) *)
      ignore
        (Dd_sim.Domain_pool.run_all pool
           [| (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) |]);
      let s = Dd_sim.Domain_pool.stats pool in
      check_int "batches counted" 2 s.Dd_sim.Domain_pool.batches;
      check_int "tasks counted, including the one that raised" 27
        (Array.fold_left ( + ) 0 s.Dd_sim.Domain_pool.worker_tasks);
      check_int "one task slot per crew member" 3
        (Array.length s.Dd_sim.Domain_pool.worker_tasks);
      check_int "one busy slot per crew member" 3
        (Array.length s.Dd_sim.Domain_pool.worker_busy_seconds);
      check_bool "busy time is non-negative" true
        (Array.for_all
           (fun b -> b >= 0.)
           s.Dd_sim.Domain_pool.worker_busy_seconds);
      check_bool "section time is non-negative" true
        (s.Dd_sim.Domain_pool.section_seconds >= 0.);
      Dd_sim.Domain_pool.reset_stats pool;
      let s = Dd_sim.Domain_pool.stats pool in
      check_int "reset clears batches" 0 s.Dd_sim.Domain_pool.batches;
      check_int "reset clears tasks" 0
        (Array.fold_left ( + ) 0 s.Dd_sim.Domain_pool.worker_tasks))

let test_run_absorbs_pool_stats () =
  let circuit = Standard.random_circuit ~seed:21 ~qubits:5 ~gates:40 () in
  let par = run_with ~domains:3 ~k:4 circuit in
  let stats = Dd_sim.Engine.stats par in
  check_bool "pool batches recorded" true
    (stats.Dd_sim.Sim_stats.pool_batches > 0);
  check_bool "pool tasks recorded" true
    (stats.Dd_sim.Sim_stats.pool_tasks > 0);
  check_bool "pool section time recorded" true
    (stats.Dd_sim.Sim_stats.pool_section_seconds > 0.);
  check_bool "busy fits inside crew capacity" true
    (stats.Dd_sim.Sim_stats.pool_busy_seconds
    <= (stats.Dd_sim.Sim_stats.pool_section_seconds *. 3.) +. 1e-3);
  check_bool "idle is non-negative" true
    (stats.Dd_sim.Sim_stats.pool_idle_seconds >= 0.);
  (* shared tables were armed, so stripe acquisitions were counted *)
  let total_acquisitions =
    List.fold_left
      (fun acc (_, (l : Dd.Compute_table.lock_stats)) ->
        acc + l.acquisitions)
      0
      (Dd.Context.lock_stats (Dd_sim.Engine.context par))
  in
  check_bool "parallel run counts lock acquisitions" true
    (total_acquisitions > 0)

let test_sequential_run_leaves_instrumentation_dark () =
  let circuit = Standard.random_circuit ~seed:21 ~qubits:5 ~gates:40 () in
  let seq = run_with ~domains:1 ~k:4 circuit in
  let stats = Dd_sim.Engine.stats seq in
  check_int "no pool batches at domains 1" 0
    stats.Dd_sim.Sim_stats.pool_batches;
  check_int "no pool tasks at domains 1" 0 stats.Dd_sim.Sim_stats.pool_tasks;
  check_bool "no pool time at domains 1" true
    (stats.Dd_sim.Sim_stats.pool_section_seconds = 0.);
  List.iter
    (fun (label, (l : Dd.Compute_table.lock_stats)) ->
      check_int
        (Printf.sprintf "no %s lock acquisitions at domains 1" label)
        0 l.acquisitions;
      check_int
        (Printf.sprintf "no %s contention at domains 1" label)
        0 l.contended;
      check_bool
        (Printf.sprintf "no %s wait time at domains 1" label)
        true
        (l.wait_seconds = 0.))
    (Dd.Context.lock_stats (Dd_sim.Engine.context seq))

let test_sequential_table_ops_allocate_nothing () =
  (* the stripe-lock counters are compiled into the hot find/store paths;
     with [set_parallel] off they must cost nothing — no locks taken, no
     allocation (the pre-instrumentation behaviour, bitwise) *)
  let table = Dd.Compute_table.create ~name:"zeroalloc" ~bits:8 ~dummy:0 in
  Dd.Compute_table.store table ~k1:1 ~k2:2 ~k3:3 42;
  ignore (Sys.opaque_identity (Dd.Compute_table.find table ~k1:9 ~k2:9 ~k3:9));
  let before = Gc.minor_words () in
  for _ = 1 to 100_000 do
    Dd.Compute_table.store table ~k1:1 ~k2:2 ~k3:3 42;
    ignore
      (Sys.opaque_identity (Dd.Compute_table.find table ~k1:9 ~k2:9 ~k3:9))
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "100k sequential find/store allocated %.0f words"
       allocated)
    true (allocated < 256.);
  let l = Dd.Compute_table.lock_stats table in
  check_int "sequential traffic never touches the lock counters" 0
    l.Dd.Compute_table.acquisitions

let test_parallel_trace_has_lanes () =
  let circuit = Standard.random_circuit ~seed:17 ~qubits:5 ~gates:40 () in
  let engine = Dd_sim.Engine.create Circuit.(circuit.qubits) in
  Dd_sim.Engine.set_domains engine 4;
  let trace = Obs.Trace.create () in
  Dd_sim.Engine.set_trace engine trace;
  Dd_sim.Engine.run
    ~strategy:(Dd_sim.Strategy.K_operations 4)
    engine circuit;
  check_bool "lanes were merged back before the run returned" false
    (Obs.Trace.lanes_armed trace);
  let events = Obs.Trace.events trace in
  let sections =
    Array.fold_left
      (fun n (e : Obs.Trace.event) ->
        if e.kind = Obs.Trace.Pool_section then n + 1 else n)
      0 events
  in
  check_bool "pool sections were traced" true (sections > 0);
  (* completion order must survive the lane merge *)
  let previous = ref neg_infinity in
  Array.iter
    (fun (e : Obs.Trace.event) ->
      let finish = e.t +. e.dur in
      check_bool "end times stay monotone after merging" true
        (finish >= !previous -. 1e-9);
      previous := finish)
    events

let suite =
  [
    Alcotest.test_case "pool returns results in submission order" `Quick
      test_pool_results_in_order;
    Alcotest.test_case "pool shutdown is idempotent; size validated" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "set_domains validates its argument" `Quick
      test_set_domains_validates;
    Alcotest.test_case "4-domain k-window run matches sequential" `Quick
      test_run_matches_sequential;
    Alcotest.test_case "combine_parallel matches combine" `Quick
      test_combine_parallel_matches_combine;
    Alcotest.test_case "sample_shots is independent of the pool size" `Quick
      test_sample_shots_pool_independent;
    Alcotest.test_case "sample_shots edge cases" `Quick test_sample_shots_edges;
    Alcotest.test_case "worker allocation failure is a structured error"
      `Quick test_worker_alloc_failure_is_structured;
    Alcotest.test_case "auditor is clean after a parallel run" `Quick
      test_audit_passes_after_parallel_run;
    Alcotest.test_case "pool utilization accounting" `Quick
      test_pool_utilization_accounting;
    Alcotest.test_case "run absorbs pool stats" `Quick
      test_run_absorbs_pool_stats;
    Alcotest.test_case "sequential run leaves instrumentation dark" `Quick
      test_sequential_run_leaves_instrumentation_dark;
    Alcotest.test_case "sequential table ops allocate nothing" `Quick
      test_sequential_table_ops_allocate_nothing;
    Alcotest.test_case "parallel traced run has lanes" `Quick
      test_parallel_trace_has_lanes;
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_parallel_run_matches ]
