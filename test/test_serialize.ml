open Util

let test_vector_roundtrip_same_context () =
  let ctx = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:8 ~qubits:5 ~gates:30 () in
  let engine = Dd_sim.Engine.create ~context:ctx 5 in
  Dd_sim.Engine.run engine circuit;
  let original = Dd_sim.Engine.state engine in
  let text = Dd.Serialize.vector_to_string original in
  let reloaded = Dd.Serialize.vector_of_string ctx text in
  check_bool "round trip is canonical within one context" true
    (Dd.Vdd.equal original reloaded)

let test_vector_roundtrip_fresh_context () =
  let ctx1 = fresh_ctx () and ctx2 = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:9 ~qubits:4 ~gates:25 () in
  let engine = Dd_sim.Engine.create ~context:ctx1 4 in
  Dd_sim.Engine.run engine circuit;
  let original = Dd_sim.Engine.state engine in
  let text = Dd.Serialize.vector_to_string original in
  let reloaded = Dd.Serialize.vector_of_string ctx2 text in
  check_cnum_array "same amplitudes in a different context"
    (Dd.Vdd.to_array original ~n:4)
    (Dd.Vdd.to_array reloaded ~n:4)

let test_vector_zero_stubs_preserved () =
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:6 37 in
  let reloaded =
    Dd.Serialize.vector_of_string ctx (Dd.Serialize.vector_to_string e)
  in
  check_bool "basis state survives" true (Dd.Vdd.equal e reloaded)

let test_matrix_roundtrip () =
  let ctx = fresh_ctx () in
  let engine = Dd_sim.Engine.create ~context:ctx 4 in
  let product =
    Dd_sim.Engine.combine engine
      (Circuit.flatten (Standard.random_circuit ~seed:5 ~qubits:4 ~gates:15 ()))
  in
  let text = Dd.Serialize.matrix_to_string product in
  let reloaded = Dd.Serialize.matrix_of_string ctx text in
  check_bool "matrix round trip" true (Dd.Mdd.equal product reloaded)

let test_matrix_roundtrip_oracle () =
  (* the DD-construct use case: cache a modular-multiplication oracle *)
  let ctx1 = fresh_ctx () and ctx2 = fresh_ctx () in
  let f x = if x < 13 then x * 6 mod 13 else x in
  let oracle = Dd.Mdd.of_permutation ctx1 ~n:4 f in
  let text = Dd.Serialize.matrix_to_string oracle in
  let reloaded = Dd.Serialize.matrix_of_string ctx2 text in
  let expected = Dd.Mdd.to_dense oracle ~n:4 in
  let actual = Dd.Mdd.to_dense reloaded ~n:4 in
  Array.iteri
    (fun r row ->
      Array.iteri
        (fun c v -> check_cnum (Printf.sprintf "entry %d %d" r c) v actual.(r).(c))
        row)
    expected

let test_vector_roundtrip_under_order () =
  (* serialization is purely structural (level-indexed); a state built
     under a non-identity order must reload bit-identically, and its
     qubit-space amplitudes are recovered by pairing the reloaded
     structure with the same order *)
  let ctx1 = fresh_ctx () and ctx2 = fresh_ctx () in
  let circuit = Standard.random_circuit ~seed:21 ~qubits:5 ~gates:30 () in
  let engine = Dd_sim.Engine.create ~context:ctx1 5 in
  Dd_sim.Engine.run engine circuit;
  let qubit_space = Dd.Vdd.to_array (Dd_sim.Engine.state engine) ~n:5 in
  let order = Dd.Order.of_qubit_of_level [| 4; 2; 0; 3; 1 |] in
  let original, _ =
    Dd.Reorder.apply_order ctx1 (Dd_sim.Engine.state engine) order
  in
  let text = Dd.Serialize.vector_to_string original in
  let same_ctx = Dd.Serialize.vector_of_string ctx1 text in
  check_bool "round trip is canonical under a non-identity order" true
    (Dd.Vdd.equal original same_ctx);
  let reloaded = Dd.Serialize.vector_of_string ctx2 text in
  check_cnum_array
    "reloaded structure + the same order = the original qubit amplitudes"
    qubit_space
    (Dd.Vdd.to_array ~order reloaded ~n:5)

let test_malformed_rejected () =
  let ctx = fresh_ctx () in
  check_bool "garbage rejected" true
    (try
       ignore (Dd.Serialize.vector_of_string ctx "nonsense 1 2 3\n");
       false
     with Dd.Dd_error.Error (Dd.Dd_error.Malformed_dd _) -> true);
  check_bool "missing root rejected" true
    (try
       ignore (Dd.Serialize.vector_of_string ctx "ddvec 0\n");
       false
     with Dd.Dd_error.Error (Dd.Dd_error.Malformed_dd _) -> true)

let test_file_helpers () =
  let path = Filename.temp_file "ddsim" ".dd" in
  let ctx = fresh_ctx () in
  let e = Dd.Vdd.basis ctx ~n:3 5 in
  Dd.Serialize.write_file path (Dd.Serialize.vector_to_string e);
  let reloaded = Dd.Serialize.vector_of_string ctx (Dd.Serialize.read_file path) in
  Sys.remove path;
  check_bool "file round trip" true (Dd.Vdd.equal e reloaded)

let suite =
  [
    Alcotest.test_case "vector_same_context" `Quick
      test_vector_roundtrip_same_context;
    Alcotest.test_case "vector_fresh_context" `Quick
      test_vector_roundtrip_fresh_context;
    Alcotest.test_case "vector_zero_stubs" `Quick
      test_vector_zero_stubs_preserved;
    Alcotest.test_case "matrix_roundtrip" `Quick test_matrix_roundtrip;
    Alcotest.test_case "matrix_oracle" `Quick test_matrix_roundtrip_oracle;
    Alcotest.test_case "vector_roundtrip_under_order" `Quick
      test_vector_roundtrip_under_order;
    Alcotest.test_case "malformed_rejected" `Quick test_malformed_rejected;
    Alcotest.test_case "file_helpers" `Quick test_file_helpers;
  ]
