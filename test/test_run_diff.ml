(* Cross-run diffing: divergence detection and alignment on synthetic
   trajectories, and — the property [ddsim diff] leans on — byte-exact
   deterministic rendering of the committed sample traces/profiles in
   test/data/. *)

open Util

let contains_sub text sub =
  let n = String.length text and m = String.length sub in
  let rec scan i = i + m <= n && (String.sub text i m = sub || scan (i + 1)) in
  scan 0

let check_contains name text sub =
  check_bool (Printf.sprintf "%s contains %S" name sub) true
    (contains_sub text sub)

let load name =
  (* tests run from _build/default/test; the repository root is two up *)
  let candidates =
    [
      Filename.concat "../../../test/data" name;
      Filename.concat "test/data" name;
      Filename.concat "data" name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | None -> Alcotest.fail (Printf.sprintf "cannot locate test/data/%s" name)
  | Some path ->
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text

(* -- first_divergence -------------------------------------------------- *)

let test_no_divergence () =
  let t = [ (0, 3); (1, 5); (2, 4) ] in
  check_bool "identical trajectories agree" true
    (Obs.Run_diff.first_divergence t t = None)

let test_first_divergence () =
  let a = [ (0, 3); (1, 5); (2, 4); (3, 9) ] in
  let b = [ (0, 3); (1, 5); (2, 7); (3, 2) ] in
  match Obs.Run_diff.first_divergence a b with
  | Some d ->
    check_int "diverges at gate 2" 2 d.Obs.Run_diff.gate;
    check_int "a nodes" 4 d.nodes_a;
    check_int "b nodes" 7 d.nodes_b
  | None -> Alcotest.fail "expected a divergence"

let test_divergence_skips_unaligned_gates () =
  (* gate 1 exists only in a, gate 2 only in b: neither can diverge *)
  let a = [ (0, 3); (1, 99); (3, 4) ] in
  let b = [ (0, 3); (2, 42); (3, 8) ] in
  match Obs.Run_diff.first_divergence a b with
  | Some d -> check_int "first aligned disagreement" 3 d.Obs.Run_diff.gate
  | None -> Alcotest.fail "expected a divergence at gate 3"

(* -- overlay plot ------------------------------------------------------ *)

let test_overlay_plot_shape () =
  let a = [ (0, 1); (1, 8); (2, 3) ] in
  let b = [ (0, 1); (1, 2); (2, 6) ] in
  let plot = Obs.Run_diff.overlay_plot ~a ~b in
  check_contains "plot" plot "gate 0 .. 2";
  check_contains "plot" plot "a";
  check_contains "plot" plot "b";
  check_contains "plot" plot "*";
  (* 12 rows + axis + caption, plus the empty split after the trailing
     newline *)
  check_int "plot line count" 15
    (List.length (String.split_on_char '\n' plot))

let test_overlay_plot_empty () =
  check_contains "empty plot"
    (Obs.Run_diff.overlay_plot ~a:[] ~b:[])
    "no node-count samples"

(* -- deterministic rendering of the committed samples ------------------ *)

let test_trace_diff_is_deterministic () =
  let run_a = Obs.Trace_report.parse_jsonl (load "diff_trace_a.jsonl") in
  let run_b = Obs.Trace_report.parse_jsonl (load "diff_trace_b.jsonl") in
  let render () =
    Obs.Run_diff.render_traces ~label_a:"diff_trace_a.jsonl"
      ~label_b:"diff_trace_b.jsonl" run_a run_b
  in
  let report = render () in
  check_bool "rendering twice is byte-identical" true (report = render ());
  check_bool "matches the committed expectation" true
    (report = load "diff_trace_expected.txt");
  check_contains "report" report
    "first divergence: gate 2 (ccx) — 6 nodes (a) vs 8 nodes (b)";
  check_contains "report" report "compute-table hit rates:";
  check_contains "report" report "strategy=k:2"

let test_profile_diff_is_deterministic () =
  let run_a = Obs.Dd_profile.parse_jsonl (load "diff_profile_a.jsonl") in
  let run_b = Obs.Dd_profile.parse_jsonl (load "diff_profile_b.jsonl") in
  let report =
    Obs.Run_diff.render_profiles ~label_a:"diff_profile_a.jsonl"
      ~label_b:"diff_profile_b.jsonl" run_a run_b
  in
  check_bool "matches the committed expectation" true
    (report = load "diff_profile_expected.txt");
  check_contains "report" report "per-level breakdown at gate 2";
  check_contains "report" report "<-- diverges"

let test_profile_diff_without_divergence_compares_finals () =
  let run = Obs.Dd_profile.parse_jsonl (load "diff_profile_a.jsonl") in
  let report = Obs.Run_diff.render_profiles run run in
  check_contains "report" report "first divergence: none";
  (* the final snapshots are still broken down level by level *)
  check_contains "report" report "per-level breakdown at gate 2"

(* -- trace report error paths (the located-message guarantee) ---------- *)

let expect_failure name fragment thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected a Failure")
  | exception Failure message ->
    check_bool
      (Printf.sprintf "%s: %S mentions %S" name message fragment)
      true (contains_sub message fragment)

let trace_header = "{\"schema\":\"ddsim-trace\",\"version\":1}"

let test_trace_report_locates_errors () =
  expect_failure "empty trace" "empty" (fun () ->
      Obs.Trace_report.parse_jsonl "  \n \n");
  expect_failure "foreign schema" "trace:1" (fun () ->
      Obs.Trace_report.parse_jsonl
        "{\"schema\":\"ddsim-profile\",\"version\":1}\n");
  expect_failure "unknown version" "unsupported schema version" (fun () ->
      Obs.Trace_report.parse_jsonl
        "{\"schema\":\"ddsim-trace\",\"version\":42}\n");
  expect_failure "truncated event line" "trace:2" (fun () ->
      Obs.Trace_report.parse_jsonl
        (trace_header ^ "\n{\"kind\":\"mat_vec\",\"t\":0.1"));
  expect_failure "malformed third line" "trace:3" (fun () ->
      Obs.Trace_report.parse_jsonl
        (trace_header
       ^ "\n{\"kind\":\"gate_applied\",\"t\":0.1,\"dur\":0,\"gate\":0}\n\
          garbage"));
  expect_failure "unknown event kind" "unknown event kind" (fun () ->
      Obs.Trace_report.parse_jsonl
        (trace_header ^ "\n{\"kind\":\"not_a_kind\",\"t\":0.1}"));
  expect_failure "event without kind" "trace:2" (fun () ->
      Obs.Trace_report.parse_jsonl (trace_header ^ "\n{\"t\":0.1}"))

let suite =
  [
    Alcotest.test_case "no divergence" `Quick test_no_divergence;
    Alcotest.test_case "first divergence" `Quick test_first_divergence;
    Alcotest.test_case "divergence skips unaligned" `Quick
      test_divergence_skips_unaligned_gates;
    Alcotest.test_case "overlay plot shape" `Quick test_overlay_plot_shape;
    Alcotest.test_case "overlay plot empty" `Quick test_overlay_plot_empty;
    Alcotest.test_case "trace diff deterministic" `Quick
      test_trace_diff_is_deterministic;
    Alcotest.test_case "profile diff deterministic" `Quick
      test_profile_diff_is_deterministic;
    Alcotest.test_case "profile diff without divergence" `Quick
      test_profile_diff_without_divergence_compares_finals;
    Alcotest.test_case "trace report locates errors" `Quick
      test_trace_report_locates_errors;
  ]
